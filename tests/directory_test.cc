#include "src/sim/directory.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(DirectoryTest, InsertLookupRemove) {
  Directory dir;
  EXPECT_TRUE(dir.Insert("a", 10));
  EXPECT_TRUE(dir.Insert("b", 11));
  EXPECT_EQ(dir.entry_count(), 2u);
  EXPECT_EQ(dir.Lookup("a"), std::optional<InodeId>(10));
  EXPECT_EQ(dir.Lookup("b"), std::optional<InodeId>(11));
  EXPECT_EQ(dir.Lookup("c"), std::nullopt);
  EXPECT_EQ(dir.Remove("a"), std::optional<InodeId>(10));
  EXPECT_EQ(dir.Lookup("a"), std::nullopt);
  EXPECT_EQ(dir.entry_count(), 1u);
}

TEST(DirectoryTest, DuplicateInsertRejected) {
  Directory dir;
  EXPECT_TRUE(dir.Insert("a", 10));
  EXPECT_FALSE(dir.Insert("a", 11));
  EXPECT_EQ(dir.Lookup("a"), std::optional<InodeId>(10));
}

TEST(DirectoryTest, RemoveMissingReturnsNullopt) {
  Directory dir;
  EXPECT_EQ(dir.Remove("nope"), std::nullopt);
}

TEST(DirectoryTest, SlotsAssignedInOrder) {
  Directory dir;
  dir.Insert("a", 1);
  dir.Insert("b", 2);
  dir.Insert("c", 3);
  EXPECT_EQ(dir.SlotOf("a"), std::optional<uint64_t>(0));
  EXPECT_EQ(dir.SlotOf("b"), std::optional<uint64_t>(1));
  EXPECT_EQ(dir.SlotOf("c"), std::optional<uint64_t>(2));
}

TEST(DirectoryTest, HolesAreReused) {
  Directory dir;
  dir.Insert("a", 1);
  dir.Insert("b", 2);
  dir.Insert("c", 3);
  dir.Remove("b");
  EXPECT_EQ(dir.slot_count(), 3u);  // hole keeps the slot count
  dir.Insert("d", 4);
  EXPECT_EQ(dir.SlotOf("d"), std::optional<uint64_t>(1));  // reused slot 1
  EXPECT_EQ(dir.slot_count(), 3u);
}

TEST(DirectoryTest, BlockCountGrowsWithSlots) {
  Directory dir;
  EXPECT_EQ(dir.BlockCount(64), 1u);  // empty dir still has one block
  for (int i = 0; i < 64; ++i) {
    dir.Insert("f" + std::to_string(i), i + 1);
  }
  EXPECT_EQ(dir.BlockCount(64), 1u);
  dir.Insert("overflow", 1000);
  EXPECT_EQ(dir.BlockCount(64), 2u);
}

TEST(DirectoryTest, ListReturnsLiveNamesInSlotOrder) {
  Directory dir;
  dir.Insert("a", 1);
  dir.Insert("b", 2);
  dir.Insert("c", 3);
  dir.Remove("b");
  const std::vector<std::string> names = dir.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "c");
}

TEST(DirectoryTest, HeterogeneousStringViewLookups) {
  Directory dir;
  const std::string stored = "component";
  ASSERT_TRUE(dir.Insert(stored, 42));
  // Probe with a string_view carved out of a larger path buffer — no
  // std::string materialisation anywhere on the lookup side.
  const std::string path = "/parent/component/child";
  const std::string_view view = std::string_view(path).substr(8, 9);
  EXPECT_EQ(view, "component");
  EXPECT_EQ(dir.Lookup(view), std::optional<InodeId>(42));
  EXPECT_EQ(dir.SlotOf(view), std::optional<uint64_t>(0));
  const auto entry = dir.Find(view);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->slot, 0u);
  EXPECT_EQ(entry->ino, 42u);
  EXPECT_EQ(dir.Find(std::string_view("componen")), std::nullopt);
  EXPECT_EQ(dir.Remove(view), std::optional<InodeId>(42));
  EXPECT_EQ(dir.Lookup(stored), std::nullopt);
}

TEST(DirectoryTest, FindReturnsSlotAndInodeTogether) {
  Directory dir;
  dir.Insert("a", 10);
  dir.Insert("b", 11);
  dir.Remove("a");
  dir.Insert("c", 12);  // reuses a's slot 0
  const auto entry = dir.Find("c");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->slot, 0u);
  EXPECT_EQ(entry->ino, 12u);
}

TEST(DirectoryTest, IndexSurvivesGrowthAndChurn) {
  // Push the open-addressing index through several growth rounds with
  // interleaved removals; every live name must stay reachable.
  Directory dir;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::string name = "r" + std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(dir.Insert(name, round * 1000 + i + 1));
    }
    for (int i = 0; i < 200; i += 3) {
      ASSERT_TRUE(dir.Remove("r" + std::to_string(round) + "_" + std::to_string(i)).has_value());
    }
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::string name = "r" + std::to_string(round) + "_" + std::to_string(i);
      const auto found = dir.Lookup(name);
      if (i % 3 == 0) {
        EXPECT_EQ(found, std::nullopt) << name;
      } else {
        ASSERT_TRUE(found.has_value()) << name;
        EXPECT_EQ(*found, static_cast<InodeId>(round * 1000 + i + 1)) << name;
      }
    }
  }
}

TEST(DirectoryTest, ManyEntriesStressHoles) {
  Directory dir;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dir.Insert("f" + std::to_string(i), i + 1));
  }
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(dir.Remove("f" + std::to_string(i)).has_value());
  }
  EXPECT_EQ(dir.entry_count(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(dir.Insert("g" + std::to_string(i), 2000 + i));
  }
  // All holes reused: slot count unchanged.
  EXPECT_EQ(dir.slot_count(), 1000u);
  EXPECT_EQ(dir.entry_count(), 1000u);
}

}  // namespace
}  // namespace fsbench
