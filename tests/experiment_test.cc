#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include "src/core/workloads/random_read.h"

namespace fsbench {
namespace {

MachineFactory PaperMachine(FsKind kind = FsKind::kExt2) {
  return [kind](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

WorkloadFactory SmallRandomRead(Bytes file_size = 32 * kMiB) {
  return [file_size] {
    RandomReadConfig config;
    config.file_size = file_size;
    return std::make_unique<RandomReadWorkload>(config);
  };
}

TEST(ExperimentTest, RunsRequestedNumberOfRuns) {
  ExperimentConfig config;
  config.runs = 4;
  config.duration = 2 * kSecond;
  config.prewarm = true;
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), SmallRandomRead());
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_TRUE(result.AllOk());
  EXPECT_EQ(result.throughput.count, 4u);
}

TEST(ExperimentTest, DeterministicForSameConfig) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 2 * kSecond;
  config.prewarm = true;
  const ExperimentResult a = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  const ExperimentResult b = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.runs[i].ops_per_second, b.runs[i].ops_per_second);
    EXPECT_EQ(a.runs[i].ops, b.runs[i].ops);
  }
}

TEST(ExperimentTest, DifferentBaseSeedChangesResults) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 2 * kSecond;
  config.prewarm = true;
  const ExperimentResult a = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  config.base_seed = 999;
  const ExperimentResult b = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  EXPECT_NE(a.runs[0].ops, b.runs[0].ops);
}

TEST(ExperimentTest, PrewarmedSmallFileRunsAtMemorySpeed) {
  ExperimentConfig config;
  config.runs = 3;
  config.duration = 5 * kSecond;
  config.prewarm = true;
  const ExperimentResult result = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  // ~103 us per op -> ~9.7 kops/s; allow slack for jitter.
  EXPECT_GT(result.throughput.mean, 9000.0);
  EXPECT_LT(result.throughput.mean, 10500.0);
  EXPECT_DOUBLE_EQ(result.runs[0].cache_hit_ratio, 1.0);
}

TEST(ExperimentTest, ColdLargeFileIsDiskBound) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 5 * kSecond;
  config.prewarm = false;
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), SmallRandomRead(1 * kGiB));
  EXPECT_LT(result.throughput.mean, 500.0);
}

TEST(ExperimentTest, FrameworkOverheadBoundsThroughput) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 2 * kSecond;
  config.prewarm = true;
  config.framework_overhead = 1 * kMillisecond;
  const ExperimentResult result = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  EXPECT_LT(result.throughput.mean, 1100.0);
  EXPECT_GT(result.throughput.mean, 900.0);
}

TEST(ExperimentTest, LatencyHistogramExcludesFrameworkOverhead) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 2 * kSecond;
  config.prewarm = true;
  config.framework_overhead = 10 * kMillisecond;
  const ExperimentResult result = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  // All ops are cache hits (~4 us): the histogram must show them there, not
  // at the 10 ms framework period.
  EXPECT_LE(result.merged_histogram.LastBucket(), 14);
}

TEST(ExperimentTest, MaxOpsCapStopsEarly) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 1000 * kSecond;
  config.prewarm = true;
  config.max_ops = 100;
  const ExperimentResult result = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  EXPECT_EQ(result.runs[0].ops, 100u);
}

TEST(ExperimentTest, WarmupWindowExcludedFromMetrics) {
  ExperimentConfig cold;
  cold.runs = 1;
  cold.duration = 5 * kSecond;
  ExperimentConfig warmed = cold;
  warmed.warmup = 200 * kSecond;  // enough to warm a 32 MiB file
  const ExperimentResult cold_result =
      Experiment(cold).Run(PaperMachine(), SmallRandomRead());
  const ExperimentResult warm_result =
      Experiment(warmed).Run(PaperMachine(), SmallRandomRead());
  // With the warm-up excluded, measured throughput is memory-bound even
  // though the run started cold.
  EXPECT_GT(warm_result.throughput.mean, 5.0 * cold_result.throughput.mean);
}

TEST(ExperimentTest, TimelineSeriesCoversDuration) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 10 * kSecond;
  config.timeline_interval = 1 * kSecond;
  config.prewarm = true;
  const ExperimentResult result = Experiment(config).Run(PaperMachine(), SmallRandomRead());
  EXPECT_GE(result.runs[0].throughput_series.size(), 10u);
  EXPECT_LE(result.runs[0].throughput_series.size(), 11u);
}

TEST(ExperimentTest, FailedSetupIsReportedNotCrashed) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 1 * kSecond;
  // File far larger than the device: MakeFile must fail with ENOSPC.
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), SmallRandomRead(300 * kGiB));
  EXPECT_FALSE(result.AllOk());
  EXPECT_EQ(result.runs[0].error, FsStatus::kNoSpace);
  EXPECT_EQ(result.throughput.count, 0u);
}

TEST(ExperimentTest, ThroughputSamplesSkipFailedRuns) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 1 * kSecond;
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), SmallRandomRead(300 * kGiB));
  EXPECT_TRUE(result.ThroughputSamples().empty());
}

}  // namespace
}  // namespace fsbench
