#include "src/sim/filesystem.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/disk_model.h"
#include "src/sim/ext2fs.h"
#include "src/sim/ext3fs.h"
#include "src/sim/xfsfs.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

constexpr Bytes kDevice = 4 * kGiB;

std::unique_ptr<FileSystem> MakeFs(FsKind kind, VirtualClock* clock = nullptr) {
  const FsLayoutParams params;
  switch (kind) {
    case FsKind::kExt2:
      return std::make_unique<Ext2Fs>(kDevice, params, clock);
    case FsKind::kExt3:
      return std::make_unique<Ext3Fs>(kDevice, params, clock);
    case FsKind::kXfs:
      return std::make_unique<XfsFs>(kDevice, params, clock);
  }
  return nullptr;
}

class FileSystemSweep : public ::testing::TestWithParam<FsKind> {
 protected:
  std::unique_ptr<FileSystem> fs_ = MakeFs(GetParam());
};

TEST_P(FileSystemSweep, RootExistsAndIsConsistent) {
  EXPECT_NE(fs_->FindInode(kRootInode), nullptr);
  std::string error;
  EXPECT_TRUE(fs_->CheckConsistency(&error)) << error;
}

TEST_P(FileSystemSweep, CreateLookupStat) {
  MetaIo io;
  const auto created = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(created.ok());
  const auto found = fs_->Lookup(kRootInode, "file", &io);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value, created.value);
  const auto attr = fs_->Stat(found.value, &io);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.type, FileType::kRegular);
  EXPECT_EQ(attr.value.size, 0u);
  EXPECT_EQ(attr.value.link_count, 1u);
}

TEST_P(FileSystemSweep, CreateDuplicateFails) {
  MetaIo io;
  ASSERT_TRUE(fs_->Create(kRootInode, "file", FileType::kRegular, &io).ok());
  EXPECT_EQ(fs_->Create(kRootInode, "file", FileType::kRegular, &io).status,
            FsStatus::kExists);
}

TEST_P(FileSystemSweep, LookupMissingFails) {
  MetaIo io;
  EXPECT_EQ(fs_->Lookup(kRootInode, "ghost", &io).status, FsStatus::kNotFound);
}

TEST_P(FileSystemSweep, InvalidNamesRejected) {
  MetaIo io;
  EXPECT_EQ(fs_->Create(kRootInode, "", FileType::kRegular, &io).status, FsStatus::kInvalid);
  EXPECT_EQ(fs_->Create(kRootInode, "a/b", FileType::kRegular, &io).status,
            FsStatus::kInvalid);
}

TEST_P(FileSystemSweep, CreateUnderFileFails) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(fs_->Create(file.value, "child", FileType::kRegular, &io).status,
            FsStatus::kNotDir);
}

TEST_P(FileSystemSweep, UnlinkFreesEverything) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  for (uint64_t page = 0; page < 40; ++page) {
    ASSERT_TRUE(fs_->AllocatePage(file.value, page, &io).ok());
  }
  ASSERT_EQ(fs_->SetSize(file.value, 40 * 4096, &io), FsStatus::kOk);
  const uint64_t used_before = fs_->allocator().used_blocks();
  MetaIo unlink_io;
  ASSERT_EQ(fs_->Unlink(kRootInode, "file", &unlink_io), FsStatus::kOk);
  EXPECT_LT(fs_->allocator().used_blocks(), used_before);
  EXPECT_EQ(fs_->FindInode(file.value), nullptr);
  ASSERT_EQ(unlink_io.drop_files.size(), 1u);
  EXPECT_EQ(unlink_io.drop_files[0], file.value);
  std::string error;
  EXPECT_TRUE(fs_->CheckConsistency(&error)) << error;
}

TEST_P(FileSystemSweep, UnlinkMissingFails) {
  MetaIo io;
  EXPECT_EQ(fs_->Unlink(kRootInode, "ghost", &io), FsStatus::kNotFound);
}

TEST_P(FileSystemSweep, RmdirOnlyWhenEmpty) {
  MetaIo io;
  const auto dir = fs_->Create(kRootInode, "dir", FileType::kDirectory, &io);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(fs_->Create(dir.value, "child", FileType::kRegular, &io).ok());
  EXPECT_EQ(fs_->Unlink(kRootInode, "dir", &io), FsStatus::kNotEmpty);
  ASSERT_EQ(fs_->Unlink(dir.value, "child", &io), FsStatus::kOk);
  EXPECT_EQ(fs_->Unlink(kRootInode, "dir", &io), FsStatus::kOk);
  std::string error;
  EXPECT_TRUE(fs_->CheckConsistency(&error)) << error;
}

TEST_P(FileSystemSweep, ReadDirListsEntries) {
  MetaIo io;
  ASSERT_TRUE(fs_->Create(kRootInode, "a", FileType::kRegular, &io).ok());
  ASSERT_TRUE(fs_->Create(kRootInode, "b", FileType::kRegular, &io).ok());
  const auto entries = fs_->ReadDir(kRootInode, &io);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value.size(), 2u);
}

TEST_P(FileSystemSweep, MapPageHoleSemantics) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  const auto hole = fs_->MapPage(file.value, 5, &io);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(hole.value, kInvalidBlock);
  const auto block = fs_->AllocatePage(file.value, 5, &io);
  ASSERT_TRUE(block.ok());
  EXPECT_NE(block.value, kInvalidBlock);
  const auto mapped = fs_->MapPage(file.value, 5, &io);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value, block.value);
  // Pages around the allocation remain holes.
  EXPECT_EQ(fs_->MapPage(file.value, 4, &io).value, kInvalidBlock);
}

TEST_P(FileSystemSweep, AllocatePageIsIdempotent) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  const auto first = fs_->AllocatePage(file.value, 0, &io);
  const auto second = fs_->AllocatePage(file.value, 0, &io);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value, second.value);
}

TEST_P(FileSystemSweep, SequentialAllocationIsMostlyContiguous) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  BlockId last = kInvalidBlock;
  uint64_t contiguous = 0;
  constexpr uint64_t kPages = 256;
  for (uint64_t page = 0; page < kPages; ++page) {
    const auto block = fs_->AllocatePage(file.value, page, &io);
    ASSERT_TRUE(block.ok());
    if (last != kInvalidBlock && block.value == last + 1) {
      ++contiguous;
    }
    last = block.value;
  }
  // Good layout: the vast majority of successive pages are physically
  // adjacent (occasional jumps over meta blocks are fine).
  EXPECT_GT(contiguous, kPages * 9 / 10);
}

TEST_P(FileSystemSweep, TruncateShrinkFreesBlocks) {
  MetaIo io;
  const auto file = fs_->Create(kRootInode, "file", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  for (uint64_t page = 0; page < 20; ++page) {
    ASSERT_TRUE(fs_->AllocatePage(file.value, page, &io).ok());
  }
  ASSERT_EQ(fs_->SetSize(file.value, 20 * 4096, &io), FsStatus::kOk);
  const uint64_t used_full = fs_->allocator().used_blocks();
  MetaIo shrink_io;
  ASSERT_EQ(fs_->SetSize(file.value, 5 * 4096, &shrink_io), FsStatus::kOk);
  EXPECT_LT(fs_->allocator().used_blocks(), used_full);
  EXPECT_FALSE(shrink_io.invalidations.empty());
  // Pages below the cut survive.
  EXPECT_NE(fs_->MapPage(file.value, 4, &io).value, kInvalidBlock);
  EXPECT_EQ(fs_->MapPage(file.value, 5, &io).value, kInvalidBlock);
  std::string error;
  EXPECT_TRUE(fs_->CheckConsistency(&error)) << error;
}

TEST_P(FileSystemSweep, SetSizeOnDirectoryFails) {
  MetaIo io;
  EXPECT_EQ(fs_->SetSize(kRootInode, 100, &io), FsStatus::kIsDir);
}

TEST_P(FileSystemSweep, LookupChargesDirectoryReads) {
  MetaIo io;
  // Populate enough entries to span several directory blocks.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs_->Create(kRootInode, "f" + std::to_string(i), FileType::kRegular, &io).ok());
  }
  MetaIo hit_io;
  ASSERT_TRUE(fs_->Lookup(kRootInode, "f0", &hit_io).ok());
  MetaIo miss_io;
  ASSERT_EQ(fs_->Lookup(kRootInode, "nope", &miss_io).status, FsStatus::kNotFound);
  EXPECT_FALSE(miss_io.reads.empty());
}

TEST_P(FileSystemSweep, RandomChurnStaysConsistent) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  MetaIo io;
  std::vector<std::string> live;
  for (int step = 0; step < 600; ++step) {
    if (rng.NextDouble() < 0.6 || live.empty()) {
      const std::string name = "n" + std::to_string(step);
      const auto created = fs_->Create(kRootInode, name, FileType::kRegular, &io);
      ASSERT_TRUE(created.ok());
      // Give it some blocks.
      const uint64_t pages = rng.NextBelow(8);
      for (uint64_t p = 0; p < pages; ++p) {
        ASSERT_TRUE(fs_->AllocatePage(created.value, p, &io).ok());
      }
      ASSERT_EQ(fs_->SetSize(created.value, pages * 4096, &io), FsStatus::kOk);
      live.push_back(name);
    } else {
      const size_t idx = rng.NextBelow(live.size());
      ASSERT_EQ(fs_->Unlink(kRootInode, live[idx], &io), FsStatus::kOk);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  std::string error;
  EXPECT_TRUE(fs_->CheckConsistency(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(AllFs, FileSystemSweep,
                         ::testing::Values(FsKind::kExt2, FsKind::kExt3, FsKind::kXfs),
                         [](const auto& info) { return FsKindName(info.param); });

// --- FS-specific structure ---

TEST(Ext2FsTest, IndirectSlotNumbering) {
  Ext2Fs fs(kDevice, FsLayoutParams{}, nullptr);
  std::vector<uint64_t> slots;
  fs.IndirectSlotsFor(0, &slots);
  EXPECT_TRUE(slots.empty());  // direct
  slots.clear();
  fs.IndirectSlotsFor(11, &slots);
  EXPECT_TRUE(slots.empty());
  slots.clear();
  fs.IndirectSlotsFor(12, &slots);
  ASSERT_EQ(slots.size(), 1u);  // single indirect
  EXPECT_EQ(slots[0], 0u);
  slots.clear();
  fs.IndirectSlotsFor(12 + 1024, &slots);
  ASSERT_EQ(slots.size(), 2u);  // double indirect: root + leaf
  EXPECT_EQ(slots[0], 1u);
  EXPECT_EQ(slots[1], 2u);
  slots.clear();
  fs.IndirectSlotsFor(12 + 1024 + 1024 * 1024, &slots);
  ASSERT_EQ(slots.size(), 3u);  // triple indirect
}

TEST(Ext2FsTest, LargeFileChargesIndirectMetaReads) {
  Ext2Fs fs(kDevice, FsLayoutParams{}, nullptr);
  MetaIo io;
  const auto file = fs.Create(kRootInode, "big", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(fs.AllocatePage(file.value, 2000, &io).ok());
  MetaIo map_io;
  ASSERT_TRUE(fs.MapPage(file.value, 2000, &map_io).ok());
  // itable + double-indirect root + leaf.
  EXPECT_GE(map_io.reads.size(), 3u);
}

TEST(XfsFsTest, ChunkedAllocationBuildsFewExtents) {
  XfsFs fs(kDevice, FsLayoutParams{}, nullptr);
  MetaIo io;
  const auto file = fs.Create(kRootInode, "big", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  for (uint64_t page = 0; page < 256; ++page) {
    ASSERT_TRUE(fs.AllocatePage(file.value, page, &io).ok());
  }
  const Inode* inode = fs.FindInode(file.value);
  ASSERT_NE(inode, nullptr);
  // 256 pages in 16-block chunks, merged when physically adjacent.
  EXPECT_LE(inode->extents.size(), 16u);
  EXPECT_GE(inode->allocated_blocks, 256u);
}

TEST(XfsFsTest, SparseAllocationRespectsLogicalGaps) {
  XfsFs fs(kDevice, FsLayoutParams{}, nullptr);
  MetaIo io;
  const auto file = fs.Create(kRootInode, "sparse", FileType::kRegular, &io);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(fs.AllocatePage(file.value, 100, &io).ok());
  ASSERT_TRUE(fs.AllocatePage(file.value, 0, &io).ok());
  // Page 0's extent must not spill into page 100's logical range... and the
  // gap pages stay holes.
  EXPECT_EQ(fs.MapPage(file.value, 50, &io).value, kInvalidBlock);
  EXPECT_NE(fs.MapPage(file.value, 100, &io).value, kInvalidBlock);
  std::string error;
  EXPECT_TRUE(fs.CheckConsistency(&error)) << error;
}

TEST(Ext3FsTest, JournalRegionIsReserved) {
  Ext3Fs fs(kDevice, FsLayoutParams{}, nullptr, 1024);
  const Extent region = fs.journal_region();
  EXPECT_EQ(region.count, 1024u);
  for (BlockId b = region.start; b < region.start + 16; ++b) {
    EXPECT_TRUE(fs.allocator().IsAllocated(b));
  }
  std::string error;
  EXPECT_TRUE(fs.CheckConsistency(&error)) << error;
}

TEST(Ext3FsTest, JournalAttachment) {
  Ext3Fs fs(kDevice, FsLayoutParams{}, nullptr);
  EXPECT_EQ(fs.journal(), nullptr);
  DiskParams params;
  VirtualClock clock;
  DiskModel disk(params, 1);
  IoScheduler scheduler(&disk);
  fs.AttachJournal(std::make_unique<JbdJournal>(&scheduler, &clock, fs.journal_region(),
                                                JournalConfig{}));
  EXPECT_NE(fs.journal(), nullptr);
}

TEST(FsKindTest, Names) {
  EXPECT_STREQ(FsKindName(FsKind::kExt2), "ext2");
  EXPECT_STREQ(FsKindName(FsKind::kExt3), "ext3");
  EXPECT_STREQ(FsKindName(FsKind::kXfs), "xfs");
}

}  // namespace
}  // namespace fsbench
