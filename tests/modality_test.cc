#include "src/core/modality.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

LatencyHistogram MakeHistogram(const std::vector<std::pair<Nanos, int>>& spec) {
  LatencyHistogram h;
  for (const auto& [latency, count] : spec) {
    for (int i = 0; i < count; ++i) {
      h.Add(latency);
    }
  }
  return h;
}

TEST(ModalityTest, EmptyHistogramHasNoModes) {
  LatencyHistogram h;
  EXPECT_TRUE(DetectModes(h).empty());
  EXPECT_FALSE(IsMultimodal(h));
}

TEST(ModalityTest, SinglePeakIsUnimodal) {
  const LatencyHistogram h = MakeHistogram({{4100, 1000}});
  const std::vector<Mode> modes = DetectModes(h);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_EQ(modes[0].peak_bucket, 12);
  EXPECT_NEAR(modes[0].mass, 100.0, 1e-9);
  EXPECT_FALSE(IsMultimodal(h));
}

TEST(ModalityTest, CacheVsDiskIsBimodal) {
  // The paper's Figure 3(b): ~half hits at ~4us, half misses at ~8ms.
  const LatencyHistogram h = MakeHistogram({{4100, 500}, {9'000'000, 500}});
  const std::vector<Mode> modes = DetectModes(h);
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_EQ(modes[0].peak_bucket, 12);
  EXPECT_EQ(modes[1].peak_bucket, 23);
  EXPECT_NEAR(modes[0].mass, 50.0, 1.0);
  EXPECT_NEAR(modes[1].mass, 50.0, 1.0);
  EXPECT_TRUE(IsMultimodal(h));
}

TEST(ModalityTest, TinySecondPeakBelowThresholdIsIgnored) {
  // 2% of ops in the second peak: below the 5% default threshold.
  const LatencyHistogram h = MakeHistogram({{4100, 980}, {9'000'000, 20}});
  EXPECT_EQ(DetectModes(h).size(), 1u);
}

TEST(ModalityTest, SmallButRealSecondPeakIsFound) {
  const LatencyHistogram h = MakeHistogram({{4100, 800}, {9'000'000, 200}});
  EXPECT_EQ(DetectModes(h).size(), 2u);
}

TEST(ModalityTest, AdjacentBucketsMergeIntoOneMode) {
  // Mass spread across adjacent buckets (disk latency straddling a power of
  // two) must not be counted as two modes.
  const LatencyHistogram h = MakeHistogram({{7'000'000, 400}, {9'000'000, 600}});
  const std::vector<Mode> modes = DetectModes(h);
  EXPECT_EQ(modes.size(), 1u);
}

TEST(ModalityTest, WellSeparatedThreeModes) {
  const LatencyHistogram h =
      MakeHistogram({{100, 300}, {100'000, 300}, {50'000'000, 400}});
  const std::vector<Mode> modes = DetectModes(h);
  EXPECT_EQ(modes.size(), 3u);
}

TEST(ModalityTest, ModeRegionsPartitionMass) {
  const LatencyHistogram h = MakeHistogram({{4100, 600}, {9'000'000, 400}});
  double total = 0.0;
  for (const Mode& mode : DetectModes(h)) {
    total += mode.mass;
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(ModalityTest, ThresholdConfigurable) {
  const LatencyHistogram h = MakeHistogram({{4100, 980}, {9'000'000, 20}});
  ModalityConfig config;
  config.min_peak_share = 0.5;
  EXPECT_EQ(DetectModes(h, config).size(), 2u);
}

}  // namespace
}  // namespace fsbench
