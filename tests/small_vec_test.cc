#include "src/sim/small_vec.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace fsbench {
namespace {

TEST(SmallVecTest, InlineThenSpill) {
  SmallVec<int, 4> vec;
  EXPECT_TRUE(vec.empty());
  for (int i = 0; i < 10; ++i) {
    vec.push_back(i);
  }
  EXPECT_EQ(vec.size(), 10u);
  for (uint32_t i = 0; i < vec.size(); ++i) {
    EXPECT_EQ(vec[i], static_cast<int>(i));
  }
  EXPECT_EQ(vec.back(), 9);
}

TEST(SmallVecTest, IterationCrossesTheInlineBoundary) {
  SmallVec<int, 3> vec;
  for (int i = 1; i <= 7; ++i) {
    vec.push_back(i);
  }
  int sum = 0;
  for (const int v : vec) {
    sum += v;
  }
  EXPECT_EQ(sum, 28);
}

TEST(SmallVecTest, ClearRetainsWarmCapacity) {
  SmallVec<int, 2> vec;
  for (int i = 0; i < 50; ++i) {
    vec.push_back(i);
  }
  EXPECT_EQ(vec.warm_capacity(), 50u);
  vec.clear();
  EXPECT_TRUE(vec.empty());
  EXPECT_EQ(vec.warm_capacity(), 50u);  // spill storage kept for reuse
  for (int i = 0; i < 50; ++i) {
    vec.push_back(100 + i);
  }
  EXPECT_EQ(vec.warm_capacity(), 50u);  // refill allocated nothing new
  EXPECT_EQ(vec[0], 100);
  EXPECT_EQ(vec[49], 149);
}

TEST(SmallVecTest, CopyPreservesContents) {
  SmallVec<int, 2> vec;
  for (int i = 0; i < 6; ++i) {
    vec.push_back(i * i);
  }
  const SmallVec<int, 2> copy = vec;
  vec.clear();
  ASSERT_EQ(copy.size(), 6u);
  for (uint32_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy[i], static_cast<int>(i * i));
  }
}

TEST(SmallVecTest, MutableIndexing) {
  SmallVec<int, 2> vec;
  vec.push_back(1);
  vec.push_back(2);
  vec.push_back(3);  // spilled
  vec[0] = 10;
  vec[2] = 30;
  EXPECT_EQ(vec[0], 10);
  EXPECT_EQ(vec[1], 2);
  EXPECT_EQ(vec[2], 30);
}

}  // namespace
}  // namespace fsbench
