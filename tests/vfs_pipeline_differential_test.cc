// Differential trace test for the allocation-free VFS operation pipeline.
//
// ReferenceVfs below is the pre-refactor pipeline's mechanics, kept verbatim
// as an oracle (the same role tests/reference_policies.h plays for the slab
// page cache): a fresh MetaIo per FileSystem call, ProcessMetaIo after every
// path component, std::string copies of every component and leaf, a fresh
// writeback vector per flush. The production Vfs replaces all of that with
// reusable scratch (SmallVec MetaIo, accumulated walk processing,
// string_view plumbing, the transparent directory index) — and this test
// replays randomized namespace/data traces through both, asserting that op
// results, VFS and disk stats counters, and the virtual clock stay
// *identical after every single operation*.
//
// The oracle deliberately shares the pipeline's three acknowledged semantic
// fixes, each covered by its own targeted tests in vfs_test.cc:
//   - Open(create) resolves parent + leaf in one walk (the old double full
//     resolution re-charged cached intermediate lookups),
//   - readahead windows anchor at the page the decision was made for (the
//     old code issued them from the last page of a coalesced demand batch),
//   - Fsync writes back only the file's own dirty pages (the old full-dirty
//     flush was stricter than POSIX).
// Everything else — every charge, every meta-page touch, every eviction —
// must match byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/sim/ext2fs.h"
#include "src/sim/ext3fs.h"
#include "src/sim/vfs.h"
#include "src/sim/xfsfs.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

constexpr Bytes kDevice = 2 * kGiB;

// --- the pre-refactor pipeline, retained as an oracle -----------------------

class ReferenceVfs {
 public:
  ReferenceVfs(VirtualClock* clock, IoScheduler* scheduler, FileSystem* fs,
               const VfsConfig& config)
      : clock_(clock),
        scheduler_(scheduler),
        fs_(fs),
        config_(config),
        cache_(config.cache_capacity_pages, config.eviction),
        readahead_(config.readahead_override.value_or(fs->readahead_config())) {
    dirty_limit_ = config_.dirty_limit_pages != 0 ? config_.dirty_limit_pages
                                                  : std::max<size_t>(1, cache_.capacity() / 10);
  }

  FsResult<int> Open(const std::string& path, bool create = false) {
    ++stats_.opens;
    ChargeCpu(config_.syscall_overhead);
    InodeId parent = kInvalidInode;
    std::string leaf;
    FsResult<InodeId> ino = ResolvePath(path, Mode::kOpen, &parent, &leaf);
    if (!ino.ok() && create && ino.status == FsStatus::kNotFound && parent != kInvalidInode) {
      MetaIo io;
      ino = fs_->Create(parent, leaf, FileType::kRegular, &io);
      const FsStatus meta = ProcessMetaIo(io);
      if (meta != FsStatus::kOk) {
        return FsResult<int>::Error(meta);
      }
      ++stats_.creates;
      JournalTick();
    }
    if (!ino.ok()) {
      return FsResult<int>::Error(ino.status);
    }
    for (size_t fd = 0; fd < fd_table_.size(); ++fd) {
      if (!fd_table_[fd].has_value()) {
        fd_table_[fd] = OpenFile{ino.value, {}};
        return FsResult<int>::Ok(static_cast<int>(fd));
      }
    }
    fd_table_.push_back(OpenFile{ino.value, {}});
    return FsResult<int>::Ok(static_cast<int>(fd_table_.size() - 1));
  }

  FsStatus Close(int fd) {
    if (FileFor(fd) == nullptr) {
      return FsStatus::kBadHandle;
    }
    ChargeCpu(config_.syscall_overhead);
    fd_table_[fd].reset();
    return FsStatus::kOk;
  }

  FsResult<Bytes> Read(int fd, Bytes offset, Bytes length) {
    OpenFile* file = FileFor(fd);
    if (file == nullptr) {
      return FsResult<Bytes>::Error(FsStatus::kBadHandle);
    }
    ++stats_.reads;
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());

    MetaIo size_io;
    const FsResult<FileAttr> attr = fs_->Stat(file->ino, &size_io);
    if (!attr.ok()) {
      return FsResult<Bytes>::Error(attr.status);
    }
    if (ProcessMetaIo(size_io) != FsStatus::kOk) {
      return FsResult<Bytes>::Error(FsStatus::kIoError);
    }
    if (offset >= attr.value.size) {
      return FsResult<Bytes>::Ok(0);
    }
    length = std::min<Bytes>(length, attr.value.size - offset);
    if (length == 0) {
      return FsResult<Bytes>::Ok(0);
    }

    const Bytes page_size = config_.page_size;
    const uint64_t first_page = offset / page_size;
    const uint64_t last_page = (offset + length - 1) / page_size;

    for (uint64_t page = first_page; page <= last_page; ++page) {
      const PageKey key{file->ino, page};
      const uint64_t ra_anchor = page;
      const uint32_t ra_pages = readahead_.OnAccess(file->readahead, page);
      if (cache_.Lookup(key)) {
        ++stats_.data_page_hits;
        ChargeCpu(config_.page_copy_cost);
        continue;
      }
      ++stats_.data_page_misses;
      MetaIo io;
      const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &io);
      if (!mapping.ok()) {
        return FsResult<Bytes>::Error(mapping.status);
      }
      const FsStatus meta = ProcessMetaIo(io);
      if (meta != FsStatus::kOk) {
        return FsResult<Bytes>::Error(meta);
      }
      if (mapping.value == kInvalidBlock) {
        InsertPage(key, kInvalidBlock, /*dirty=*/false);
        ChargeCpu(config_.page_copy_cost);
        continue;
      }
      uint32_t batch = 1;
      while (batch < config_.max_demand_batch && page + batch <= last_page) {
        const PageKey next_key{file->ino, page + batch};
        if (cache_.Contains(next_key)) {
          break;
        }
        MetaIo next_io;
        const FsResult<BlockId> next_map = fs_->MapPage(file->ino, page + batch, &next_io);
        if (!next_map.ok() || next_map.value != mapping.value + batch) {
          break;
        }
        if (ProcessMetaIo(next_io) != FsStatus::kOk) {
          break;
        }
        ++batch;
      }
      const FsStatus read_status = DemandRead(mapping.value, batch);
      if (read_status != FsStatus::kOk) {
        return FsResult<Bytes>::Error(read_status);
      }
      for (uint32_t i = 0; i < batch; ++i) {
        InsertPage(PageKey{file->ino, page + i}, mapping.value + i, /*dirty=*/false);
        ChargeCpu(config_.page_copy_cost);
      }
      if (batch > 1) {
        stats_.data_page_misses += batch - 1;
        page += batch - 1;
      }
      if (ra_pages > 0) {
        IssueReadahead(*file, ra_anchor, ra_pages);
      }
    }

    stats_.bytes_read += length;
    JournalTick();
    return FsResult<Bytes>::Ok(length);
  }

  FsResult<Bytes> Write(int fd, Bytes offset, Bytes length) {
    OpenFile* file = FileFor(fd);
    if (file == nullptr) {
      return FsResult<Bytes>::Error(FsStatus::kBadHandle);
    }
    if (length == 0) {
      return FsResult<Bytes>::Ok(0);
    }
    ++stats_.writes;
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());

    MetaIo size_io;
    const FsResult<FileAttr> attr = fs_->Stat(file->ino, &size_io);
    if (!attr.ok()) {
      return FsResult<Bytes>::Error(attr.status);
    }
    if (ProcessMetaIo(size_io) != FsStatus::kOk) {
      return FsResult<Bytes>::Error(FsStatus::kIoError);
    }
    const Bytes old_size = attr.value.size;

    const Bytes page_size = config_.page_size;
    const uint64_t first_page = offset / page_size;
    const uint64_t last_page = (offset + length - 1) / page_size;
    Journal* journal = fs_->journal();

    for (uint64_t page = first_page; page <= last_page; ++page) {
      const PageKey key{file->ino, page};
      const Bytes page_start = page * page_size;
      const bool partial = (page == first_page && offset > page_start) ||
                           (page == last_page && offset + length < page_start + page_size);
      if (cache_.Lookup(key)) {
        ++stats_.data_page_hits;
        cache_.MarkDirty(key);
        ChargeCpu(config_.page_copy_cost);
      } else {
        ++stats_.data_page_misses;
        MetaIo io;
        if (partial && page_start < old_size) {
          const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &io);
          if (!mapping.ok()) {
            return FsResult<Bytes>::Error(mapping.status);
          }
          if (ProcessMetaIo(io) != FsStatus::kOk) {
            return FsResult<Bytes>::Error(FsStatus::kIoError);
          }
          if (mapping.value != kInvalidBlock) {
            const FsStatus read_status = DemandRead(mapping.value, 1);
            if (read_status != FsStatus::kOk) {
              return FsResult<Bytes>::Error(read_status);
            }
          }
          io = MetaIo{};
        }
        const FsResult<BlockId> block = fs_->AllocatePage(file->ino, page, &io);
        if (!block.ok()) {
          return FsResult<Bytes>::Error(block.status);
        }
        if (ProcessMetaIo(io) != FsStatus::kOk) {
          return FsResult<Bytes>::Error(FsStatus::kIoError);
        }
        InsertPage(key, block.value, /*dirty=*/true);
        ChargeCpu(config_.page_copy_cost);
        if (journal != nullptr) {
          journal->LogData(MetaRef{file->ino, page, block.value});
        }
      }
    }

    if (offset + length > old_size) {
      MetaIo io;
      const FsStatus status = fs_->SetSize(file->ino, offset + length, &io);
      if (status != FsStatus::kOk) {
        return FsResult<Bytes>::Error(status);
      }
      if (ProcessMetaIo(io) != FsStatus::kOk) {
        return FsResult<Bytes>::Error(FsStatus::kIoError);
      }
    }

    stats_.bytes_written += length;
    MaybeWriteback();
    JournalTick();
    return FsResult<Bytes>::Ok(length);
  }

  FsStatus CreateFile(const std::string& path) {
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    InodeId parent = kInvalidInode;
    std::string leaf;
    const FsResult<InodeId> parent_result = ResolvePath(path, Mode::kParent, &parent, &leaf);
    if (!parent_result.ok()) {
      return parent_result.status;
    }
    MetaIo io;
    const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kRegular, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return meta;
    }
    if (!created.ok()) {
      return created.status;
    }
    ++stats_.creates;
    MaybeWriteback();
    JournalTick();
    return FsStatus::kOk;
  }

  FsStatus Mkdir(const std::string& path) {
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    InodeId parent = kInvalidInode;
    std::string leaf;
    const FsResult<InodeId> parent_result = ResolvePath(path, Mode::kParent, &parent, &leaf);
    if (!parent_result.ok()) {
      return parent_result.status;
    }
    MetaIo io;
    const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kDirectory, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return meta;
    }
    JournalTick();
    return created.ok() ? FsStatus::kOk : created.status;
  }

  FsStatus Unlink(const std::string& path) {
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    InodeId parent = kInvalidInode;
    std::string leaf;
    const FsResult<InodeId> parent_result = ResolvePath(path, Mode::kParent, &parent, &leaf);
    if (!parent_result.ok()) {
      return parent_result.status;
    }
    MetaIo io;
    const FsStatus status = fs_->Unlink(parent, leaf, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (status != FsStatus::kOk) {
      return status;
    }
    if (meta != FsStatus::kOk) {
      return meta;
    }
    ++stats_.unlinks;
    MaybeWriteback();
    JournalTick();
    return FsStatus::kOk;
  }

  FsResult<FileAttr> Stat(const std::string& path) {
    ++stats_.stats_calls;
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    const FsResult<InodeId> ino = ResolvePath(path, Mode::kFull, nullptr, nullptr);
    if (!ino.ok()) {
      return FsResult<FileAttr>::Error(ino.status);
    }
    MetaIo io;
    const FsResult<FileAttr> attr = fs_->Stat(ino.value, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return FsResult<FileAttr>::Error(meta);
    }
    return attr;
  }

  FsResult<std::vector<std::string>> ReadDir(const std::string& path) {
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    const FsResult<InodeId> ino = ResolvePath(path, Mode::kFull, nullptr, nullptr);
    if (!ino.ok()) {
      return FsResult<std::vector<std::string>>::Error(ino.status);
    }
    MetaIo io;
    FsResult<std::vector<std::string>> entries = fs_->ReadDir(ino.value, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return FsResult<std::vector<std::string>>::Error(meta);
    }
    return entries;
  }

  FsStatus Truncate(const std::string& path, Bytes new_size) {
    ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
    const FsResult<InodeId> ino = ResolvePath(path, Mode::kFull, nullptr, nullptr);
    if (!ino.ok()) {
      return ino.status;
    }
    MetaIo io;
    const FsStatus status = fs_->SetSize(ino.value, new_size, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (status != FsStatus::kOk) {
      return status;
    }
    JournalTick();
    return meta;
  }

  FsStatus Fsync(int fd) {
    OpenFile* file = FileFor(fd);
    if (file == nullptr) {
      return FsStatus::kBadHandle;
    }
    ++stats_.fsyncs;
    ChargeCpu(config_.syscall_overhead);
    std::vector<PageCache::Evicted> batch;
    cache_.TakeDirtyFile(file->ino, &batch);
    if (const Inode* inode = fs_->FindInode(file->ino); inode != nullptr) {
      cache_.TakeDirtyPage(PageKey{kMetaInode, inode->itable_block}, &batch);
      for (const BlockId block : inode->indirect_blocks) {
        if (block != kInvalidBlock) {
          cache_.TakeDirtyPage(PageKey{kMetaInode, block}, &batch);
        }
      }
      for (const BlockId block : inode->extent_meta_blocks) {
        cache_.TakeDirtyPage(PageKey{kMetaInode, block}, &batch);
      }
    }
    SubmitWriteback(batch);
    clock_->AdvanceTo(scheduler_->Drain(clock_->now()));
    if (Journal* journal = fs_->journal(); journal != nullptr) {
      clock_->AdvanceTo(journal->CommitSync());
    }
    return FsStatus::kOk;
  }

  void SyncAll() {
    std::vector<PageCache::Evicted> batch;
    cache_.TakeDirty(cache_.capacity(), &batch);
    SubmitWriteback(batch);
    clock_->AdvanceTo(scheduler_->Drain(clock_->now()));
    if (Journal* journal = fs_->journal(); journal != nullptr) {
      clock_->AdvanceTo(journal->CommitSync());
    }
  }

  FsStatus MakeFile(const std::string& path, Bytes size) {
    std::vector<std::string> parts = Split(path);
    if (parts.empty()) {
      return FsStatus::kInvalid;
    }
    InodeId current = kRootInode;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      MetaIo io;
      const FsResult<InodeId> next = fs_->Lookup(current, parts[i], &io);
      if (!next.ok()) {
        return next.status;
      }
      current = next.value;
    }
    MetaIo io;
    const FsResult<InodeId> created =
        fs_->Create(current, parts.back(), FileType::kRegular, &io);
    if (!created.ok()) {
      return created.status;
    }
    const uint64_t pages = CeilDiv(size, config_.page_size);
    for (uint64_t page = 0; page < pages; ++page) {
      MetaIo alloc_io;
      const FsResult<BlockId> block = fs_->AllocatePage(created.value, page, &alloc_io);
      if (!block.ok()) {
        return block.status;
      }
    }
    MetaIo size_io;
    return fs_->SetSize(created.value, size, &size_io);
  }

  FsStatus PrewarmFile(const std::string& path) {
    std::vector<std::string> parts = Split(path);
    InodeId current = kRootInode;
    for (const std::string& part : parts) {
      MetaIo io;
      const FsResult<InodeId> next = fs_->Lookup(current, part, &io);
      if (!next.ok()) {
        return next.status;
      }
      current = next.value;
    }
    MetaIo stat_io;
    const FsResult<FileAttr> attr = fs_->Stat(current, &stat_io);
    if (!attr.ok()) {
      return attr.status;
    }
    const uint64_t pages = CeilDiv(attr.value.size, config_.page_size);
    for (uint64_t page = 0; page < pages; ++page) {
      MetaIo io;
      const FsResult<BlockId> mapping = fs_->MapPage(current, page, &io);
      if (!mapping.ok()) {
        return mapping.status;
      }
      for (const MetaRef& ref : io.reads) {
        cache_.Insert(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/false, nullptr);
      }
      cache_.Insert(PageKey{current, page}, mapping.value, /*dirty=*/false, nullptr);
    }
    return FsStatus::kOk;
  }

  void DropCaches() { cache_.Clear(); }

  PageCache& cache() { return cache_; }
  const VfsStats& stats() const { return stats_; }

 private:
  struct OpenFile {
    InodeId ino = kInvalidInode;
    ReadaheadState readahead;
  };
  enum class Mode { kFull, kParent, kOpen };

  static std::vector<std::string> Split(const std::string& path) {
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos < path.size()) {
      while (pos < path.size() && path[pos] == '/') {
        ++pos;
      }
      const size_t start = pos;
      while (pos < path.size() && path[pos] != '/') {
        ++pos;
      }
      if (pos > start) {
        parts.push_back(path.substr(start, pos - start));
      }
    }
    return parts;
  }

  void ChargeCpu(Nanos cost) {
    clock_->Advance(static_cast<Nanos>(static_cast<double>(cost) * config_.cpu_cost_multiplier));
  }

  FsStatus DemandRead(BlockId block, uint32_t count) {
    ++stats_.demand_requests;
    const IoRequest req{IoKind::kRead, block * fs_->sectors_per_block(),
                        count * fs_->sectors_per_block()};
    const std::optional<Nanos> completion = scheduler_->SubmitSync(req, clock_->now());
    if (!completion.has_value()) {
      ++stats_.io_errors;
      return FsStatus::kIoError;
    }
    clock_->AdvanceTo(*completion);
    return FsStatus::kOk;
  }

  void HandleEvictions(const PageCache::EvictedBatch& evicted) {
    Journal* journal = fs_->journal();
    for (const PageCache::Evicted& page : evicted) {
      if (page.dirty && page.block != kInvalidBlock) {
        scheduler_->SubmitAsync(IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                                          fs_->sectors_per_block()},
                                clock_->now());
        ++stats_.writeback_pages;
        if (journal != nullptr) {
          journal->NoteHomeWrite(page.block);
        }
      }
    }
  }

  void InsertPage(const PageKey& key, BlockId block, bool dirty) {
    PageCache::EvictedBatch evicted;
    cache_.Insert(key, block, dirty, &evicted);
    if (!evicted.empty()) {
      HandleEvictions(evicted);
    }
  }

  FsStatus ProcessMetaIo(const MetaIo& io) {
    for (const MetaRef& ref : io.reads) {
      ChargeCpu(config_.meta_touch_cost);
      const PageKey key{ref.ino, ref.index};
      if (!cache_.Lookup(key)) {
        const FsStatus status = DemandRead(ref.block, 1);
        if (status != FsStatus::kOk) {
          return status;
        }
        InsertPage(key, ref.block, /*dirty=*/false);
      }
    }
    Journal* journal = fs_->journal();
    for (const MetaRef& ref : io.writes) {
      ChargeCpu(config_.meta_touch_cost);
      InsertPage(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/true);
      if (journal != nullptr) {
        journal->LogMetadata(ref);
      }
    }
    for (const MetaRef& ref : io.invalidations) {
      cache_.Remove(PageKey{ref.ino, ref.index});
      if (journal != nullptr) {
        journal->NoteHomeWrite(ref.block);
      }
    }
    for (const InodeId ino : io.drop_files) {
      cache_.RemoveFile(ino);
    }
    return FsStatus::kOk;
  }

  void SubmitWriteback(std::vector<PageCache::Evicted>& batch) {
    std::sort(batch.begin(), batch.end(),
              [](const PageCache::Evicted& a, const PageCache::Evicted& b) {
                return a.block < b.block;
              });
    Journal* journal = fs_->journal();
    for (const PageCache::Evicted& page : batch) {
      if (page.block == kInvalidBlock) {
        continue;
      }
      scheduler_->SubmitAsync(IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                                        fs_->sectors_per_block()},
                              clock_->now());
      ++stats_.writeback_pages;
      if (journal != nullptr) {
        journal->NoteHomeWrite(page.block);
      }
    }
  }

  void MaybeWriteback() {
    if (cache_.dirty_count() <= dirty_limit_) {
      return;
    }
    std::vector<PageCache::Evicted> batch;
    cache_.TakeDirty(config_.writeback_batch_pages, &batch);
    SubmitWriteback(batch);
  }

  void JournalTick() {
    if (Journal* journal = fs_->journal(); journal != nullptr) {
      journal->MaybePeriodicCommit();
    }
  }

  void IssueReadahead(OpenFile& file, uint64_t index, uint32_t pages) {
    BlockId run_start = kInvalidBlock;
    uint32_t run_len = 0;
    auto flush_run = [&] {
      if (run_len > 0) {
        scheduler_->SubmitAsync(IoRequest{IoKind::kRead, run_start * fs_->sectors_per_block(),
                                          run_len * fs_->sectors_per_block()},
                                clock_->now());
        run_start = kInvalidBlock;
        run_len = 0;
      }
    };
    for (uint64_t j = index + 1; j <= index + pages; ++j) {
      const PageKey key{file.ino, j};
      if (cache_.Contains(key)) {
        continue;
      }
      MetaIo io;
      const FsResult<BlockId> mapping = fs_->MapPage(file.ino, j, &io);
      if (ProcessMetaIo(io) != FsStatus::kOk || !mapping.ok() ||
          mapping.value == kInvalidBlock) {
        break;
      }
      if (run_len > 0 && mapping.value == run_start + run_len) {
        ++run_len;
      } else {
        flush_run();
        run_start = mapping.value;
        run_len = 1;
      }
      InsertPage(key, mapping.value, /*dirty=*/false);
      ++stats_.readahead_pages;
    }
    flush_run();
  }

  // One ProcessMetaIo per component, fresh MetaIo per call — the mechanics
  // under test replace exactly this.
  FsResult<InodeId> ResolvePath(const std::string& path, Mode mode, InodeId* parent_out,
                                std::string* leaf_out) {
    if (parent_out != nullptr) {
      *parent_out = kInvalidInode;
    }
    const std::vector<std::string> parts = Split(path);
    if (parts.empty()) {
      if (mode == Mode::kParent) {
        return FsResult<InodeId>::Error(FsStatus::kInvalid);
      }
      return FsResult<InodeId>::Ok(kRootInode);
    }
    InodeId current = kRootInode;
    for (size_t i = 0; i < parts.size(); ++i) {
      const bool is_leaf = i + 1 == parts.size();
      if (is_leaf) {
        if (parent_out != nullptr) {
          *parent_out = current;
          *leaf_out = parts[i];
        }
        if (mode == Mode::kParent) {
          return FsResult<InodeId>::Ok(current);
        }
      }
      MetaIo io;
      const FsResult<InodeId> next = fs_->Lookup(current, parts[i], &io);
      const FsStatus meta = ProcessMetaIo(io);
      if (meta != FsStatus::kOk) {
        return FsResult<InodeId>::Error(meta);
      }
      if (!next.ok()) {
        return next;
      }
      current = next.value;
      if (is_leaf) {
        return FsResult<InodeId>::Ok(current);
      }
    }
    return FsResult<InodeId>::Ok(current);
  }

  OpenFile* FileFor(int fd) {
    if (fd < 0 || static_cast<size_t>(fd) >= fd_table_.size() || !fd_table_[fd].has_value()) {
      return nullptr;
    }
    return &*fd_table_[fd];
  }

  VirtualClock* clock_;
  IoScheduler* scheduler_;
  FileSystem* fs_;
  VfsConfig config_;
  PageCache cache_;
  ReadaheadPolicy readahead_;
  std::vector<std::optional<OpenFile>> fd_table_;
  size_t dirty_limit_;
  VfsStats stats_;
};

// --- twin stacks ------------------------------------------------------------

struct Stack {
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;
  std::unique_ptr<FileSystem> fs;

  Stack(FsKind kind, uint64_t disk_seed) : disk(DiskParams{}, disk_seed), scheduler(&disk) {
    switch (kind) {
      case FsKind::kExt2:
        fs = std::make_unique<Ext2Fs>(kDevice, FsLayoutParams{}, &clock);
        break;
      case FsKind::kExt3: {
        auto ext3 = std::make_unique<Ext3Fs>(kDevice, FsLayoutParams{}, &clock);
        ext3->AttachJournal(std::make_unique<JbdJournal>(&scheduler, &clock,
                                                         ext3->journal_region(),
                                                         JournalConfig{}));
        fs = std::move(ext3);
        break;
      }
      case FsKind::kXfs:
        fs = std::make_unique<XfsFs>(kDevice, FsLayoutParams{}, &clock);
        break;
    }
  }
};

void ExpectStatsEqual(const VfsStats& a, const VfsStats& b, uint64_t step) {
  EXPECT_EQ(a.reads, b.reads) << "step " << step;
  EXPECT_EQ(a.writes, b.writes) << "step " << step;
  EXPECT_EQ(a.creates, b.creates) << "step " << step;
  EXPECT_EQ(a.unlinks, b.unlinks) << "step " << step;
  EXPECT_EQ(a.stats_calls, b.stats_calls) << "step " << step;
  EXPECT_EQ(a.opens, b.opens) << "step " << step;
  EXPECT_EQ(a.fsyncs, b.fsyncs) << "step " << step;
  EXPECT_EQ(a.bytes_read, b.bytes_read) << "step " << step;
  EXPECT_EQ(a.bytes_written, b.bytes_written) << "step " << step;
  EXPECT_EQ(a.data_page_hits, b.data_page_hits) << "step " << step;
  EXPECT_EQ(a.data_page_misses, b.data_page_misses) << "step " << step;
  EXPECT_EQ(a.demand_requests, b.demand_requests) << "step " << step;
  EXPECT_EQ(a.readahead_pages, b.readahead_pages) << "step " << step;
  EXPECT_EQ(a.writeback_pages, b.writeback_pages) << "step " << step;
  EXPECT_EQ(a.io_errors, b.io_errors) << "step " << step;
}

void ExpectDiskStatsEqual(const DiskStats& a, const DiskStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.sectors_read, b.sectors_read);
  EXPECT_EQ(a.sectors_written, b.sectors_written);
  EXPECT_EQ(a.seeks, b.seeks);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.sequential_hits, b.sequential_hits);
  EXPECT_EQ(a.total_service_time, b.total_service_time);
}

class PipelineDifferential
    : public ::testing::TestWithParam<std::tuple<FsKind, EvictionPolicyKind, uint64_t>> {};

TEST_P(PipelineDifferential, RandomTraceMatchesReferencePipeline) {
  const auto [kind, policy, seed] = GetParam();

  // Tiny cache so the trace exercises eviction, writeback and re-reads.
  VfsConfig config;
  config.cache_capacity_pages = 128;
  config.eviction = policy;

  Stack prod_stack(kind, /*disk_seed=*/seed);
  Stack ref_stack(kind, /*disk_seed=*/seed);
  Vfs prod(&prod_stack.clock, &prod_stack.scheduler, prod_stack.fs.get(), config);
  ReferenceVfs ref(&ref_stack.clock, &ref_stack.scheduler, ref_stack.fs.get(), config);

  // Namespace pool: a few directories, nested once, plus ENOENT probes.
  const std::vector<std::string> dirs = {"/d0", "/d1", "/d2", "/d0/sub"};
  for (const std::string& dir : dirs) {
    ASSERT_EQ(prod.Mkdir(dir), ref.Mkdir(dir));
  }
  std::vector<std::string> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(dirs[i % dirs.size()] + "/f" + std::to_string(i));
  }
  pool.push_back("/top");

  std::vector<int> fds;  // both sides return identical fd numbers
  Rng rng(seed * 7919 + 17);

  for (uint64_t step = 0; step < 4000; ++step) {
    const std::string& path = pool[rng.NextBelow(pool.size())];
    const uint64_t op = rng.NextBelow(100);
    if (op < 18) {
      const bool create = rng.NextBelow(2) == 0;
      const FsResult<int> a = prod.Open(path, create);
      const FsResult<int> b = ref.Open(path, create);
      ASSERT_EQ(a.status, b.status) << "step " << step << " open " << path;
      ASSERT_EQ(a.value, b.value) << "step " << step;
      if (a.ok()) {
        fds.push_back(a.value);
      }
    } else if (op < 36 && !fds.empty()) {
      const int fd = fds[rng.NextBelow(fds.size())];
      const Bytes offset = rng.NextBelow(40) * 1024;
      const Bytes length = (1 + rng.NextBelow(24)) * 1024;
      const FsResult<Bytes> a = prod.Read(fd, offset, length);
      const FsResult<Bytes> b = ref.Read(fd, offset, length);
      ASSERT_EQ(a.status, b.status) << "step " << step;
      ASSERT_EQ(a.value, b.value) << "step " << step;
    } else if (op < 54 && !fds.empty()) {
      const int fd = fds[rng.NextBelow(fds.size())];
      const Bytes offset = rng.NextBelow(40) * 1024;
      const Bytes length = (1 + rng.NextBelow(24)) * 1024;
      const FsResult<Bytes> a = prod.Write(fd, offset, length);
      const FsResult<Bytes> b = ref.Write(fd, offset, length);
      ASSERT_EQ(a.status, b.status) << "step " << step;
      ASSERT_EQ(a.value, b.value) << "step " << step;
    } else if (op < 62) {
      const FsResult<FileAttr> a = prod.Stat(path);
      const FsResult<FileAttr> b = ref.Stat(path);
      ASSERT_EQ(a.status, b.status) << "step " << step << " stat " << path;
      if (a.ok()) {
        ASSERT_EQ(a.value.ino, b.value.ino);
        ASSERT_EQ(a.value.size, b.value.size);
        ASSERT_EQ(a.value.mtime, b.value.mtime);
      }
    } else if (op < 68) {
      ASSERT_EQ(prod.CreateFile(path), ref.CreateFile(path)) << "step " << step;
    } else if (op < 76) {
      ASSERT_EQ(prod.Unlink(path), ref.Unlink(path)) << "step " << step << " unlink " << path;
    } else if (op < 80) {
      const Bytes new_size = rng.NextBelow(30) * 1024;
      ASSERT_EQ(prod.Truncate(path, new_size), ref.Truncate(path, new_size)) << "step " << step;
    } else if (op < 84) {
      const std::string& dir = dirs[rng.NextBelow(dirs.size())];
      const auto a = prod.ReadDir(dir);
      const auto b = ref.ReadDir(dir);
      ASSERT_EQ(a.status, b.status);
      if (a.ok()) {
        ASSERT_EQ(a.value, b.value) << "step " << step;
      }
    } else if (op < 88 && !fds.empty()) {
      const int fd = fds[rng.NextBelow(fds.size())];
      ASSERT_EQ(prod.Fsync(fd), ref.Fsync(fd)) << "step " << step;
    } else if (op < 92 && !fds.empty()) {
      const size_t idx = rng.NextBelow(fds.size());
      const int fd = fds[idx];
      ASSERT_EQ(prod.Close(fd), ref.Close(fd)) << "step " << step;
      fds[idx] = fds.back();
      fds.pop_back();
    } else if (op < 94) {
      const std::string missing = path + "/nope";
      ASSERT_EQ(prod.Stat(missing).status, ref.Stat(missing).status) << "step " << step;
    } else if (op < 96) {
      prod.DropCaches();
      ref.DropCaches();
    } else {
      prod.SyncAll();
      ref.SyncAll();
    }

    // The virtual clock is the strongest equivalence check: any divergence in
    // charges, misses or I/O ordering shows up here immediately.
    ASSERT_EQ(prod_stack.clock.now(), ref_stack.clock.now()) << "step " << step << " op " << op;
    ASSERT_EQ(prod.cache().size(), ref.cache().size()) << "step " << step;
    ASSERT_EQ(prod.cache().dirty_count(), ref.cache().dirty_count()) << "step " << step;
  }

  ExpectStatsEqual(prod.stats(), ref.stats(), /*step=*/~0ULL);
  ExpectDiskStatsEqual(prod_stack.disk.stats(), ref_stack.disk.stats());
  EXPECT_EQ(prod.cache().stats().hits, ref.cache().stats().hits);
  EXPECT_EQ(prod.cache().stats().misses, ref.cache().stats().misses);
  EXPECT_EQ(prod.cache().stats().evictions, ref.cache().stats().evictions);

  std::string error;
  EXPECT_TRUE(prod_stack.fs->CheckConsistency(&error)) << error;
  EXPECT_TRUE(ref_stack.fs->CheckConsistency(&error)) << error;
  EXPECT_TRUE(prod.cache().CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Traces, PipelineDifferential,
    ::testing::Values(
        std::make_tuple(FsKind::kExt2, EvictionPolicyKind::kLru, 1ULL),
        std::make_tuple(FsKind::kExt2, EvictionPolicyKind::kArc, 2ULL),
        std::make_tuple(FsKind::kExt3, EvictionPolicyKind::kLru, 3ULL),
        std::make_tuple(FsKind::kExt3, EvictionPolicyKind::kTwoQueue, 4ULL),
        std::make_tuple(FsKind::kXfs, EvictionPolicyKind::kLru, 5ULL),
        std::make_tuple(FsKind::kXfs, EvictionPolicyKind::kClock, 6ULL)),
    [](const auto& info) {
      return std::string(FsKindName(std::get<0>(info.param))) + "_" +
             EvictionPolicyKindName(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace fsbench
