// Differential oracle for the transaction-log refactor: ReferenceJournal
// below is the pre-refactor ext3 journal (an unordered_set block bag flushed
// as descriptor + blocks + commit record at a silently-wrapping head), kept
// verbatim behind the new Journal interface — the same role ReferenceVfs
// plays in tests/vfs_pipeline_differential_test.cc and OldSingleThreadLoop
// in tests/mt_engine_test.cc.
//
// On randomized ext3 traces without log pressure (checkpointing keeps up,
// so the new log never stalls), the JbdJournal-over-TxnLog machine must be
// byte-identical to the old journal: clock, VfsStats, DiskStats, scheduler
// stats and journal commit counts. This pins down that space accounting,
// checkpoint coupling and recovery bookkeeping are pure bookkeeping on the
// non-crash path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

// --- the pre-refactor journal, retained as the oracle ------------------------

class ReferenceJournal : public Journal {
 public:
  ReferenceJournal(IoScheduler* scheduler, VirtualClock* clock, Extent region,
                   const JournalConfig& config)
      : Journal(config), scheduler_(scheduler), clock_(clock), region_(region) {}

  void BindClock(VirtualClock* clock) override { clock_ = clock; }

  void LogMetadata(const MetaRef& ref) override { current_tx_.insert(ref.block); }

  void LogData(const MetaRef& ref) override {
    if (config_.mode == JournalMode::kJournaled) {
      current_tx_.insert(ref.block);
    }
  }

  void MaybePeriodicCommit() override {
    if (clock_->now() - last_commit_time_ >= config_.commit_interval) {
      WriteTransaction(/*sync=*/false);
    }
  }

  Nanos CommitSync() override {
    ++stats_.sync_commits;
    return WriteTransaction(/*sync=*/true);
  }

  void NoteHomeWrite(BlockId block) override { (void)block; }  // old model: none

  size_t pending_blocks() const override { return current_tx_.size(); }

 private:
  Nanos WriteTransaction(bool sync) {
    if (current_tx_.empty()) {
      return clock_->now();
    }
    const uint64_t blocks_to_write = current_tx_.size() + 2;
    Nanos completion = clock_->now();
    for (uint64_t i = 0; i < blocks_to_write; ++i) {
      const uint64_t offset = (head_block_ + i) % region_.count;
      const IoRequest req{IoKind::kWrite,
                          (region_.start + offset) * config_.block_sectors,
                          config_.block_sectors};
      if (sync && i + 1 == blocks_to_write) {
        if (const auto done = scheduler_->SubmitSync(req, clock_->now()); done.has_value()) {
          completion = *done;
        }
      } else {
        scheduler_->SubmitAsync(req, clock_->now());
      }
    }
    head_block_ = (head_block_ + blocks_to_write) % region_.count;
    stats_.blocks_logged += current_tx_.size();
    ++stats_.commits;
    current_tx_.clear();
    last_commit_time_ = clock_->now();
    return completion;
  }

  IoScheduler* scheduler_;
  VirtualClock* clock_;
  Extent region_;
  uint64_t head_block_ = 0;
  Nanos last_commit_time_ = 0;
  std::unordered_set<BlockId> current_tx_;
};

// --- randomized trace driver -------------------------------------------------

// The same op mix the MT-engine differential uses, driven directly against
// the VFS (both machines see an identical call sequence from twin RNGs).
class TraceDriver {
 public:
  explicit TraceDriver(Vfs* vfs) : vfs_(vfs) {}

  FsStatus Setup() {
    for (const char* dir : {"/d0", "/d1", "/d2", "/d0/sub"}) {
      const FsStatus status = vfs_->Mkdir(dir);
      if (status != FsStatus::kOk && status != FsStatus::kExists) {
        return status;
      }
      dirs_.emplace_back(dir);
    }
    for (int i = 0; i < 19; ++i) {
      pool_.push_back(dirs_[i % dirs_.size()] + "/f" + std::to_string(i));
    }
    pool_.push_back("/top");
    return FsStatus::kOk;
  }

  void Step(Rng& rng) {
    Vfs& vfs = *vfs_;
    const std::string& path = pool_[rng.NextBelow(pool_.size())];
    const uint64_t op = rng.NextBelow(100);
    if (op < 18) {
      const bool create = rng.NextBelow(2) == 0;
      const FsResult<int> fd = vfs.Open(path, create);
      if (fd.ok()) {
        fds_.push_back(fd.value);
      }
    } else if (op < 36 && !fds_.empty()) {
      (void)vfs.Read(fds_[rng.NextBelow(fds_.size())], rng.NextBelow(40) * 1024,
                     (1 + rng.NextBelow(24)) * 1024);
    } else if (op < 58 && !fds_.empty()) {
      (void)vfs.Write(fds_[rng.NextBelow(fds_.size())], rng.NextBelow(40) * 1024,
                      (1 + rng.NextBelow(24)) * 1024);
    } else if (op < 64) {
      (void)vfs.Stat(path);
    } else if (op < 70) {
      (void)vfs.CreateFile(path);
    } else if (op < 78) {
      (void)vfs.Unlink(path);
    } else if (op < 82) {
      (void)vfs.Truncate(path, rng.NextBelow(30) * 1024);
    } else if (op < 90 && !fds_.empty()) {
      (void)vfs.Fsync(fds_[rng.NextBelow(fds_.size())]);
    } else if (op < 94 && !fds_.empty()) {
      const size_t idx = rng.NextBelow(fds_.size());
      (void)vfs.Close(fds_[idx]);
      fds_[idx] = fds_.back();
      fds_.pop_back();
    } else {
      vfs.SyncAll();
    }
  }

 private:
  Vfs* vfs_;
  std::vector<std::string> dirs_;
  std::vector<std::string> pool_;
  std::vector<int> fds_;
};

// Small cache (1 MiB, jitter-free) so writeback — and with it checkpoint
// reclaim — runs constantly, as on a loaded machine.
std::unique_ptr<Machine> SmallCacheExt3(uint64_t seed, JournalMode mode) {
  MachineConfig config;
  config.ram = 103 * kMiB;
  config.os_reserved = 102 * kMiB;
  config.os_reserve_jitter = 0;
  config.journal.mode = mode;
  config.seed = seed;
  return std::make_unique<Machine>(FsKind::kExt3, config);
}

class JournalEquivalence
    : public ::testing::TestWithParam<std::tuple<JournalMode, uint64_t>> {};

TEST_P(JournalEquivalence, NewLogMatchesPreRefactorJournalByteForByte) {
  const auto [mode, seed] = GetParam();
  constexpr int kSteps = 4000;

  // Stock machine: JbdJournal over the transaction log, checkpoint sink
  // wired — the production configuration.
  std::unique_ptr<Machine> stock = SmallCacheExt3(seed, mode);

  // Twin machine with the journal swapped for the pre-refactor oracle.
  std::unique_ptr<Machine> old = SmallCacheExt3(seed, mode);
  auto& ext3 = dynamic_cast<Ext3Fs&>(old->fs());
  JournalConfig journal_config;
  journal_config.mode = mode;
  ext3.AttachJournal(std::make_unique<ReferenceJournal>(
      &old->scheduler(), &old->clock(), ext3.journal_region(), journal_config));

  TraceDriver stock_driver(&stock->vfs());
  TraceDriver old_driver(&old->vfs());
  ASSERT_EQ(stock_driver.Setup(), FsStatus::kOk);
  ASSERT_EQ(old_driver.Setup(), FsStatus::kOk);

  Rng stock_rng(seed * 977);
  Rng old_rng(seed * 977);
  for (int step = 0; step < kSteps; ++step) {
    stock_driver.Step(stock_rng);
    old_driver.Step(old_rng);
    ASSERT_EQ(stock->clock().now(), old->clock().now()) << "step " << step;
  }

  // The strongest checks: any divergence in commit timing, write ordering
  // or checkpoint-induced extra I/O lands in one of these.
  EXPECT_EQ(stock->clock().now(), old->clock().now());
  const VfsStats& sv = stock->vfs().stats();
  const VfsStats& ov = old->vfs().stats();
  EXPECT_EQ(sv.writeback_pages, ov.writeback_pages);
  EXPECT_EQ(sv.data_page_hits, ov.data_page_hits);
  EXPECT_EQ(sv.data_page_misses, ov.data_page_misses);
  EXPECT_EQ(sv.demand_requests, ov.demand_requests);
  EXPECT_EQ(sv.readahead_pages, ov.readahead_pages);
  EXPECT_EQ(sv.io_errors, ov.io_errors);

  const DiskStats& sd = stock->disk().stats();
  const DiskStats& od = old->disk().stats();
  EXPECT_EQ(sd.reads, od.reads);
  EXPECT_EQ(sd.writes, od.writes);
  EXPECT_EQ(sd.sectors_written, od.sectors_written);
  EXPECT_EQ(sd.seeks, od.seeks);
  EXPECT_EQ(sd.total_service_time, od.total_service_time);

  const IoSchedulerStats& ss = stock->scheduler().stats();
  const IoSchedulerStats& os = old->scheduler().stats();
  EXPECT_EQ(ss.sync_requests, os.sync_requests);
  EXPECT_EQ(ss.async_requests, os.async_requests);
  EXPECT_EQ(ss.total_sync_wait, os.total_sync_wait);
  EXPECT_EQ(ss.max_queue_depth, os.max_queue_depth);

  const JournalStats& sj = stock->fs().journal()->stats();
  const JournalStats& oj = old->fs().journal()->stats();
  EXPECT_EQ(sj.commits, oj.commits);
  EXPECT_EQ(sj.sync_commits, oj.sync_commits);
  EXPECT_EQ(sj.blocks_logged, oj.blocks_logged);

  // And the refactor's whole point: the stock log did all that while also
  // keeping its accounting — no stall, space bounded, transactions
  // reclaimed as writeback confirmed their home blocks.
  const TxnLog* log = stock->fs().journal()->txn_log();
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->stats().log_stalls, 0u);
  EXPECT_GT(log->stats().reclaimed_txns, 0u);
  EXPECT_LE(log->stats().max_used_blocks, log->capacity_blocks());

  std::string error;
  EXPECT_TRUE(stock->fs().CheckConsistency(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Traces, JournalEquivalence,
    ::testing::Values(std::make_tuple(JournalMode::kOrdered, 41ULL),
                      std::make_tuple(JournalMode::kOrdered, 42ULL),
                      std::make_tuple(JournalMode::kJournaled, 43ULL)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == JournalMode::kOrdered ? "ordered"
                                                                          : "journaled") +
             "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fsbench
