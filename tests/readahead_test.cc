#include "src/sim/readahead.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(ReadaheadTest, NonePolicyNeverPrefetches) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kNone, 8, 4, 32, 2});
  ReadaheadState state;
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.OnAccess(state, i), 0u);
  }
}

TEST(ReadaheadTest, FixedPolicyAlwaysPrefetchesSameAmount) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kFixed, 8, 4, 32, 2});
  ReadaheadState state;
  EXPECT_EQ(policy.OnAccess(state, 0), 8u);
  EXPECT_EQ(policy.OnAccess(state, 100), 8u);
  EXPECT_EQ(policy.OnAccess(state, 101), 8u);
}

TEST(ReadaheadTest, AdaptiveRandomAccessUsesCluster) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kAdaptive, 8, 4, 32, 2});
  ReadaheadState state;
  EXPECT_EQ(policy.OnAccess(state, 50), 2u);
  EXPECT_EQ(policy.OnAccess(state, 10), 2u);
  EXPECT_EQ(policy.OnAccess(state, 99), 2u);
}

TEST(ReadaheadTest, AdaptiveSequentialWindowRampsAndSaturates) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kAdaptive, 8, 4, 32, 2});
  ReadaheadState state;
  policy.OnAccess(state, 0);  // first access: no history
  // First sequential access continues the cluster; from streak 2 the window
  // ramps 4 -> 8 -> 16 -> 32 -> 32 ...
  EXPECT_EQ(policy.OnAccess(state, 1), 2u);
  EXPECT_EQ(policy.OnAccess(state, 2), 4u);
  EXPECT_EQ(policy.OnAccess(state, 3), 8u);
  EXPECT_EQ(policy.OnAccess(state, 4), 16u);
  EXPECT_EQ(policy.OnAccess(state, 5), 32u);
  EXPECT_EQ(policy.OnAccess(state, 6), 32u);
}

TEST(ReadaheadTest, AdaptiveResetsOnSeek) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kAdaptive, 8, 4, 32, 2});
  ReadaheadState state;
  for (uint64_t i = 0; i < 6; ++i) {
    policy.OnAccess(state, i);
  }
  EXPECT_GT(state.window, 0u);
  // A random jump resets the streak and window.
  EXPECT_EQ(policy.OnAccess(state, 1000), 2u);
  EXPECT_EQ(state.streak, 0u);
  EXPECT_EQ(state.window, 0u);
  // Ramping starts over.
  EXPECT_EQ(policy.OnAccess(state, 1001), 2u);
  EXPECT_EQ(policy.OnAccess(state, 1002), 4u);
}

TEST(ReadaheadTest, PerFileStateIsIndependent) {
  ReadaheadPolicy policy(ReadaheadConfig{ReadaheadKind::kAdaptive, 8, 4, 32, 2});
  ReadaheadState a;
  ReadaheadState b;
  for (uint64_t i = 0; i < 5; ++i) {
    policy.OnAccess(a, i);
  }
  // b has no history: random-access behaviour.
  EXPECT_EQ(policy.OnAccess(b, 0), 2u);
  EXPECT_GT(a.window, b.window);
}

}  // namespace
}  // namespace fsbench
