#include "src/sim/flash_tier.h"

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/workloads/random_read.h"
#include "src/sim/machine.h"

namespace fsbench {
namespace {

FlashTierConfig SmallTier(size_t pages) {
  FlashTierConfig config;
  config.capacity = pages * 4 * kKiB;
  return config;
}

PageKey Key(uint64_t index) { return PageKey{1, index}; }

// RemoveFile (and everything downstream of it) must not depend on the hash
// table's bucket count: two tiers — one freshly built, one pre-rehashed to a
// much larger table, so every key lands in different buckets in a different
// order — are driven through an identical op sequence with a mid-stream
// RemoveFile, and must agree on every stat and every membership probe. This
// is the regression test for the old hash-order RemoveFile walk.
TEST(FlashTierTest, RemoveFileDeterministicAcrossRehash) {
  const FlashTierConfig config = SmallTier(32);
  FlashTier fresh(config);
  FlashTier rehashed(config);
  rehashed.RehashForTest(4096);

  auto drive = [](FlashTier& tier) {
    // Interleave three files so RemoveFile has scattered matches.
    for (uint64_t i = 0; i < 24; ++i) {
      tier.Insert(PageKey{1, i}, 100 + i);
      tier.Insert(PageKey{2, i}, 200 + i);
      tier.Insert(PageKey{3, i}, 300 + i);  // overflows capacity: evictions
    }
    tier.RemoveFile(2);
    // Post-removal traffic: hit/miss pattern and further evictions must be
    // unaffected by the bucket count the removal walked.
    for (uint64_t i = 0; i < 24; ++i) {
      tier.LookupAndPromote(PageKey{1, i});
      tier.LookupAndPromote(PageKey{2, i});
      tier.Insert(PageKey{4, i}, 400 + i);
    }
  };
  drive(fresh);
  drive(rehashed);

  EXPECT_EQ(fresh.stats().hits, rehashed.stats().hits);
  EXPECT_EQ(fresh.stats().misses, rehashed.stats().misses);
  EXPECT_EQ(fresh.stats().insertions, rehashed.stats().insertions);
  EXPECT_EQ(fresh.stats().evictions, rehashed.stats().evictions);
  EXPECT_EQ(fresh.size(), rehashed.size());
  for (uint64_t ino = 1; ino <= 4; ++ino) {
    for (uint64_t i = 0; i < 24; ++i) {
      EXPECT_EQ(fresh.Contains(PageKey{ino, i}), rehashed.Contains(PageKey{ino, i}))
          << "ino " << ino << " page " << i;
    }
  }
  // No entry of the removed file survives in either tier.
  for (uint64_t i = 0; i < 24; ++i) {
    EXPECT_FALSE(fresh.Contains(PageKey{2, i}));
  }
}

TEST(FlashTierTest, MissThenHit) {
  FlashTier tier(SmallTier(8));
  EXPECT_FALSE(tier.LookupAndPromote(Key(0)));
  tier.Insert(Key(0), 100);
  EXPECT_TRUE(tier.Contains(Key(0)));
  EXPECT_TRUE(tier.LookupAndPromote(Key(0)));
  // Exclusive tiering: the promotion removed the page.
  EXPECT_FALSE(tier.Contains(Key(0)));
  EXPECT_EQ(tier.stats().hits, 1u);
  EXPECT_EQ(tier.stats().misses, 1u);
}

TEST(FlashTierTest, CapacityEnforcedLru) {
  FlashTier tier(SmallTier(3));
  tier.Insert(Key(0), 0);
  tier.Insert(Key(1), 1);
  tier.Insert(Key(2), 2);
  tier.Insert(Key(3), 3);  // evicts 0 (LRU)
  EXPECT_EQ(tier.size(), 3u);
  EXPECT_FALSE(tier.Contains(Key(0)));
  EXPECT_TRUE(tier.Contains(Key(1)));
  EXPECT_EQ(tier.stats().evictions, 1u);
}

TEST(FlashTierTest, ReinsertRefreshesRecency) {
  FlashTier tier(SmallTier(2));
  tier.Insert(Key(0), 0);
  tier.Insert(Key(1), 1);
  tier.Insert(Key(0), 0);  // refresh: 1 is now LRU
  tier.Insert(Key(2), 2);
  EXPECT_TRUE(tier.Contains(Key(0)));
  EXPECT_FALSE(tier.Contains(Key(1)));
}

TEST(FlashTierTest, RemoveAndRemoveFile) {
  FlashTier tier(SmallTier(8));
  tier.Insert(PageKey{1, 0}, 0);
  tier.Insert(PageKey{1, 1}, 1);
  tier.Insert(PageKey{2, 0}, 2);
  tier.Remove(PageKey{1, 0});
  EXPECT_FALSE(tier.Contains(PageKey{1, 0}));
  tier.RemoveFile(1);
  EXPECT_FALSE(tier.Contains(PageKey{1, 1}));
  EXPECT_TRUE(tier.Contains(PageKey{2, 0}));
  tier.Clear();
  EXPECT_EQ(tier.size(), 0u);
}

TEST(FlashTierTest, RamEvictionsDemoteThroughTheBatchSink) {
  // Regression for the slab cache's EvictedBatch reporting: pages evicted
  // from a full RAM cache must still reach the flash tier with their backing
  // block intact.
  PageCache ram(2, EvictionPolicyKind::kLru);
  FlashTier tier(SmallTier(8));
  PageCache::EvictedBatch evicted;
  for (uint64_t i = 0; i < 5; ++i) {
    evicted.clear();
    ram.Insert(Key(i), 100 + i, /*dirty=*/false, &evicted);
    for (const PageCache::Evicted& page : evicted) {
      ASSERT_NE(page.block, kInvalidBlock);
      tier.Insert(page.key, page.block);
    }
  }
  // Keys 0..2 were evicted (in LRU order) and demoted; 3 and 4 are in RAM.
  EXPECT_EQ(tier.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(tier.Contains(Key(i))) << i;
  }
  EXPECT_TRUE(ram.Contains(Key(3)));
  EXPECT_TRUE(ram.Contains(Key(4)));
}

// --- End-to-end through Machine/Vfs ---

MachineFactory FlashMachine(Bytes flash_capacity = 1 * kGiB) {
  return [flash_capacity](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    FlashTierConfig flash;
    flash.capacity = flash_capacity;
    config.flash = flash;
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
}

TEST(FlashMachineTest, MachineExposesTheTier) {
  MachineConfig config = PaperTestbedConfig();
  Machine plain(FsKind::kExt2, config);
  EXPECT_EQ(plain.flash(), nullptr);
  config.flash = FlashTierConfig{};
  Machine tiered(FsKind::kExt2, config);
  ASSERT_NE(tiered.flash(), nullptr);
  EXPECT_EQ(tiered.flash()->capacity_pages(), (1 * kGiB) / (4 * kKiB));
}

TEST(FlashMachineTest, EvictionsDemoteIntoFlash) {
  // File slightly larger than RAM: prewarm spills the head into flash.
  auto machine = FlashMachine()(1);
  Vfs& vfs = machine->vfs();
  const Bytes file_size = 512 * kMiB;
  ASSERT_EQ(vfs.MakeFile("/big", file_size), FsStatus::kOk);
  ASSERT_EQ(vfs.PrewarmFile("/big"), FsStatus::kOk);
  EXPECT_GT(machine->flash()->size(), 0u);
}

TEST(FlashMachineTest, FlashHitIsMuchFasterThanDisk) {
  auto machine = FlashMachine()(1);
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/big", 512 * kMiB), FsStatus::kOk);
  ASSERT_EQ(vfs.PrewarmFile("/big"), FsStatus::kOk);
  const auto fd = vfs.Open("/big");
  ASSERT_TRUE(fd.ok());
  // Page 0 was evicted from RAM into flash during prewarm.
  ASSERT_TRUE(machine->flash()->Contains(
      PageKey{vfs.Stat("/big").value.ino, 0}));
  const Nanos t0 = machine->clock().now();
  ASSERT_TRUE(vfs.Read(fd.value, 0, 4 * kKiB).ok());
  const Nanos latency = machine->clock().now() - t0;
  EXPECT_GT(latency, 50 * kMicrosecond);   // slower than RAM
  EXPECT_LT(latency, 1 * kMillisecond);    // far faster than disk
  EXPECT_EQ(vfs.stats().flash_hits, 1u);
}

TEST(FlashMachineTest, SteadyStateThroughputHasAMiddleStep) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 5 * kSecond;
  config.prewarm = true;
  auto run = [&config](const MachineFactory& factory, Bytes file_size) {
    RandomReadConfig workload_config;
    workload_config.file_size = file_size;
    return Experiment(config)
        .Run(factory,
             [workload_config] { return std::make_unique<RandomReadWorkload>(workload_config); })
        .throughput.mean;
  };
  const MachineFactory plain = [](uint64_t seed) {
    MachineConfig machine_config = PaperTestbedConfig();
    machine_config.seed = seed;
    return std::make_unique<Machine>(FsKind::kExt2, machine_config);
  };
  // 768 MiB: fits in RAM+flash but not in RAM.
  const double with_flash = run(FlashMachine(), 768 * kMiB);
  const double without = run(plain, 768 * kMiB);
  EXPECT_GT(with_flash, 10.0 * without);  // flash step vs disk
  // And well below the RAM plateau.
  const double ram_speed = run(FlashMachine(), 64 * kMiB);
  EXPECT_LT(with_flash, 0.8 * ram_speed);
}

TEST(FlashMachineTest, UnlinkPurgesFlashResidents) {
  auto machine = FlashMachine()(1);
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/victim", 512 * kMiB), FsStatus::kOk);
  ASSERT_EQ(vfs.PrewarmFile("/victim"), FsStatus::kOk);
  ASSERT_GT(machine->flash()->size(), 0u);
  ASSERT_EQ(vfs.Unlink("/victim"), FsStatus::kOk);
  EXPECT_EQ(machine->flash()->size(), 0u);
}

TEST(FlashMachineTest, DropCachesClearsBothTiers) {
  auto machine = FlashMachine()(1);
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/big", 512 * kMiB), FsStatus::kOk);
  ASSERT_EQ(vfs.PrewarmFile("/big"), FsStatus::kOk);
  vfs.DropCaches();
  EXPECT_EQ(vfs.cache().size(), 0u);
  EXPECT_EQ(machine->flash()->size(), 0u);
}

}  // namespace
}  // namespace fsbench
