#include "src/core/self_scaling.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fsbench {
namespace {

TEST(SelfScalingTest, FindsAStepFunctionCliff) {
  // Step at 417.3: high plateau before, low after (the Fig 1 shape).
  const auto metric = [](double x) { return x < 417.3 ? 9700.0 : 170.0; };
  SelfScalingProbe::Options options;
  options.coarse_steps = 8;
  options.resolution = 1.0;
  const TransitionResult result = SelfScalingProbe::FindTransition(metric, 384, 448, options);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.param_lo, 417.3);
  EXPECT_GE(result.param_hi, 417.3);
  EXPECT_LE(result.width(), 1.0);
  EXPECT_NEAR(result.drop_factor, 9700.0 / 170.0, 1.0);
}

TEST(SelfScalingTest, MonotoneFlatHasNoTransition) {
  const auto metric = [](double) { return 100.0; };
  const TransitionResult result =
      SelfScalingProbe::FindTransition(metric, 0, 100, {8, 1.0, 64});
  EXPECT_FALSE(result.found);
}

TEST(SelfScalingTest, GentleSlopeBelowThresholdIgnored) {
  const auto metric = [](double x) { return 100.0 - 0.01 * x; };
  const TransitionResult result =
      SelfScalingProbe::FindTransition(metric, 0, 100, {8, 1.0, 64});
  EXPECT_FALSE(result.found);
}

TEST(SelfScalingTest, IncreasingMetricHasNoDownwardTransition) {
  const auto metric = [](double x) { return 10.0 + x * x; };
  const TransitionResult result =
      SelfScalingProbe::FindTransition(metric, 1, 100, {8, 1.0, 64});
  EXPECT_FALSE(result.found);
}

TEST(SelfScalingTest, SigmoidTransitionBracketsMidpoint) {
  // Smooth transition centered at 50 with width ~4.
  const auto metric = [](double x) { return 1000.0 / (1.0 + std::exp((x - 50.0) / 2.0)) + 10.0; };
  const TransitionResult result =
      SelfScalingProbe::FindTransition(metric, 0, 100, {11, 2.0, 64});
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.param_hi, 40.0);
  EXPECT_LT(result.param_lo, 60.0);
  // Across a ~2-wide bracket of a smooth sigmoid the local factor is
  // modest; the knee must still register.
  EXPECT_GT(result.drop_factor, 1.2);
}

TEST(SelfScalingTest, SamplesAreRecorded) {
  const auto metric = [](double x) { return x < 50 ? 100.0 : 1.0; };
  const TransitionResult result =
      SelfScalingProbe::FindTransition(metric, 0, 100, {5, 0.5, 64});
  ASSERT_TRUE(result.found);
  EXPECT_GE(result.samples.size(), 5u);
  // Bisection evaluations beyond the grid.
  EXPECT_GT(result.samples.size(), 5u);
}

TEST(SelfScalingTest, EvaluationCapRespected) {
  int evaluations = 0;
  const auto metric = [&evaluations](double x) {
    ++evaluations;
    return x < 50 ? 100.0 : 1.0;
  };
  SelfScalingProbe::Options options;
  options.coarse_steps = 4;
  options.resolution = 1e-9;  // would bisect forever
  options.max_evaluations = 12;
  const TransitionResult result = SelfScalingProbe::FindTransition(metric, 0, 100, options);
  EXPECT_TRUE(result.found);
  EXPECT_LE(evaluations, 12);
}

}  // namespace
}  // namespace fsbench
