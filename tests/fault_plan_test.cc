// The seeded fault engine's contracts, from the plan's pure-function verdicts
// up through the disk model's charging and the block layer's retry/remap
// policy: persistent damage is a stateless function of (seed, region),
// transient draws are seed-deterministic, failed attempts cost real device
// time (plus the drive's error-recovery grind), and only a request that
// exhausts the policy surfaces as an error.
#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/workloads/random_read.h"
#include "src/sim/disk_model.h"
#include "src/sim/fault_plan.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/machine.h"

namespace fsbench {
namespace {

// --- FaultPlan: pure (config, seed) verdicts ---

TEST(FaultPlanTest, PersistentVerdictIsStatelessAndOrderIndependent) {
  FaultPlanConfig config;
  config.persistent_rate = 0.2;
  const FaultPlan forward(config, /*seed=*/7);
  const FaultPlan backward(config, /*seed=*/7);

  constexpr uint64_t kRegions = 300;
  uint64_t bad = 0;
  for (uint64_t r = 0; r < kRegions; ++r) {
    const uint64_t lba_fwd = r * config.region_sectors;
    const uint64_t lba_bwd = (kRegions - 1 - r) * config.region_sectors;
    // Same region queried on different plans, in opposite orders, at
    // different offsets inside the region: one verdict.
    EXPECT_EQ(forward.RegionIsBad(lba_fwd, 0), backward.RegionIsBad(lba_fwd, 0)) << "region " << r;
    EXPECT_EQ(forward.RegionIsBad(lba_fwd, 0), forward.RegionIsBad(lba_fwd + 17, 0)) << "region " << r;
    EXPECT_EQ(backward.RegionIsBad(lba_bwd, 0), forward.RegionIsBad(lba_bwd, 0));
    bad += forward.RegionIsBad(lba_fwd, 0) ? 1 : 0;
  }
  // The bad set at rate 0.2 is some but not all of the media.
  EXPECT_GT(bad, 0u);
  EXPECT_LT(bad, kRegions);
}

TEST(FaultPlanTest, TransientDrawsAreSeedDeterministic) {
  FaultPlanConfig config;
  config.transient_rate = 0.3;
  FaultPlan a(config, 21);
  FaultPlan b(config, 21);
  FaultPlan other(config, 22);

  uint64_t divergences = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const FaultDecision da = a.Evaluate(i * 8, 0, false);
    const FaultDecision db = b.Evaluate(i * 8, 0, false);
    const FaultDecision dc = other.Evaluate(i * 8, 0, false);
    EXPECT_EQ(da.kind, db.kind) << "draw " << i;
    divergences += da.kind != dc.kind ? 1 : 0;
  }
  EXPECT_EQ(a.stats().transient_faults, b.stats().transient_faults);
  EXPECT_GT(a.stats().transient_faults, 0u);
  // A different seed is a different fault history.
  EXPECT_GT(divergences, 0u);
}

TEST(FaultPlanTest, BurstWindowMultipliesTransientRate) {
  FaultPlanConfig config;
  config.transient_rate = 0.1;
  config.burst_start = 1 * kSecond;
  config.burst_duration = 1 * kSecond;
  config.burst_factor = 10.0;  // 0.1 * 10 = certainty inside the window
  FaultPlan plan(config, 5);

  // Outside the window the base rate applies: most draws pass.
  uint64_t outside_faults = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    outside_faults += plan.Evaluate(i * 8, 0, false).kind == FaultKind::kTransient ? 1 : 0;
  }
  EXPECT_LT(outside_faults, 50u);
  EXPECT_EQ(plan.stats().burst_faults, 0u);

  // Inside the window every draw clears the multiplied rate.
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.Evaluate(i * 8, 1 * kSecond + 500 * kMillisecond, false).kind,
              FaultKind::kTransient);
  }
  EXPECT_EQ(plan.stats().burst_faults, 50u);

  // One nanosecond past the window the base rate is back.
  uint64_t after_faults = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    after_faults += plan.Evaluate(i * 8, 2 * kSecond, false).kind == FaultKind::kTransient ? 1 : 0;
  }
  EXPECT_LT(after_faults, 50u);
  EXPECT_EQ(plan.stats().burst_faults, 50u);
}

// --- DiskModel: fault charging and remapping ---

// First LBA whose fault region is persistently bad (or good, when
// `want_bad` is false), scanning from the start of the device.
uint64_t FindRegion(const DiskModel& disk, bool want_bad) {
  const FaultPlan* plan = disk.fault_plan();
  EXPECT_NE(plan, nullptr);
  const uint64_t region_sectors = plan->config().region_sectors;
  for (uint64_t lba = 0; lba < disk.total_sectors(); lba += region_sectors) {
    if (plan->RegionIsBad(lba, 0) == want_bad) {
      return lba;
    }
  }
  ADD_FAILURE() << "no such region";
  return 0;
}

TEST(FaultPlanTest, PersistentRegionFailsUntilRemapped) {
  DiskModel disk(DiskParams{}, 3);
  FaultPlanConfig config;
  config.persistent_rate = 0.1;
  disk.EnableFaults(config, 3);
  const uint64_t bad = FindRegion(disk, /*want_bad=*/true);

  const IoRequest req{IoKind::kRead, bad, 8};
  const AccessResult failed = disk.AccessEx(req, 0);
  EXPECT_FALSE(failed.service.has_value());
  EXPECT_EQ(failed.fault, FaultKind::kPersistent);
  EXPECT_GT(failed.fail_time, 0);  // the doomed attempt occupied the device
  EXPECT_EQ(disk.stats().errors, 1u);
  EXPECT_EQ(disk.stats().total_fault_time, failed.fail_time);

  ASSERT_TRUE(disk.RemapRegion(bad));
  EXPECT_EQ(disk.remapped_regions(), 1u);
  // The redirected request reads the spare, not the bad media.
  EXPECT_TRUE(disk.AccessEx(req, 0).service.has_value());
  EXPECT_EQ(disk.stats().errors, 1u);
}

TEST(FaultPlanTest, GrownDefectsDevelopAtSeededOnsetTimes) {
  FaultPlanConfig config;
  config.persistent_rate = 1.0;               // every region is fated to go bad...
  config.defect_onset_spread = 10 * kSecond;  // ...at some seeded point in 10 s
  const FaultPlan plan(config, 11);

  constexpr uint64_t kRegions = 200;
  uint64_t bad_at_start = 0;
  uint64_t bad_midway = 0;
  for (uint64_t r = 0; r < kRegions; ++r) {
    const uint64_t lba = r * config.region_sectors;
    if (plan.RegionIsBad(lba, 5 * kSecond)) {
      // Monotone: a developed defect stays bad.
      EXPECT_TRUE(plan.RegionIsBad(lba, 9 * kSecond)) << "region " << r;
      ++bad_midway;
    }
    bad_at_start += plan.RegionIsBad(lba, 0) ? 1 : 0;
    // By the end of the spread, every fated region has developed.
    EXPECT_TRUE(plan.RegionIsBad(lba, config.defect_onset_spread)) << "region " << r;
  }
  // Onsets are spread across the window: almost none at t=0, roughly half
  // midway through.
  EXPECT_LT(bad_at_start, kRegions / 10);
  EXPECT_GT(bad_midway, kRegions / 4);
  EXPECT_LT(bad_midway, 3 * kRegions / 4);
}

TEST(FaultPlanTest, SpareExhaustionSurfacesAsUnremappable) {
  DiskModel disk(DiskParams{}, 9);
  FaultPlanConfig config;
  config.persistent_rate = 0.3;
  config.spare_regions = 1;
  disk.EnableFaults(config, 9);

  const uint64_t first = FindRegion(disk, /*want_bad=*/true);
  uint64_t second = 0;
  for (uint64_t lba = first + config.region_sectors; lba < disk.total_sectors();
       lba += config.region_sectors) {
    if (disk.fault_plan()->RegionIsBad(lba, 0)) {
      second = lba;
      break;
    }
  }
  ASSERT_GT(second, first);

  ASSERT_TRUE(disk.RemapRegion(first));
  EXPECT_EQ(disk.spare_regions_left(), 0u);
  // The single spare is spent: the second bad region cannot be rescued and
  // keeps faulting.
  EXPECT_FALSE(disk.RemapRegion(second));
  EXPECT_FALSE(disk.AccessEx(IoRequest{IoKind::kRead, second, 8}, 0).service.has_value());
  // Re-remapping an already-remapped region stays true (idempotent).
  EXPECT_TRUE(disk.RemapRegion(first));
  EXPECT_EQ(disk.remapped_regions(), 1u);
}

TEST(FaultPlanTest, SlowFaultMultipliesServiceTimeExactly) {
  DiskParams params;
  DiskModel clean(params, 17);
  DiskModel slow(params, 17);
  FaultPlanConfig config;
  config.slow_rate = 1.0;
  config.slow_multiplier = 8.0;
  slow.EnableFaults(config, 17);

  // Same seed: the rotational draw comes from the disk's own stream, which
  // the plan's dedicated stream must not perturb.
  const IoRequest req{IoKind::kRead, 4096, 8};
  const AccessResult base = clean.AccessEx(req, 0);
  const AccessResult hit = slow.AccessEx(req, 0);
  ASSERT_TRUE(base.service.has_value());
  ASSERT_TRUE(hit.service.has_value());
  EXPECT_TRUE(hit.slow);
  EXPECT_EQ(*hit.service, *base.service * 8);
}

TEST(FaultPlanTest, ErrorRecoveryTimeIsChargedPerFailedAttempt) {
  DiskParams quick;
  DiskParams grinding;
  grinding.error_recovery_time = FromMillis(50);
  DiskModel a(quick, 23);
  DiskModel b(grinding, 23);
  a.InjectError(2048);
  b.InjectError(2048);

  const IoRequest req{IoKind::kRead, 2048, 8};
  const AccessResult fast = a.AccessEx(req, 0);
  const AccessResult deep = b.AccessEx(req, 0);
  ASSERT_FALSE(fast.service.has_value());
  ASSERT_FALSE(deep.service.has_value());
  // Same seed, same mechanical draws: the only difference is the drive's
  // internal error-recovery budget.
  EXPECT_EQ(deep.fail_time - fast.fail_time, FromMillis(50));
}

TEST(FaultPlanTest, InjectErrorSpansWholeBlockAndExplicitRanges) {
  DiskModel disk(DiskParams{}, 1);
  // Default span is one fs block (8 sectors): [1000, 1008).
  disk.InjectError(1000);
  // A request whose middle sectors cross the extent fails even though its
  // first sector is clean.
  EXPECT_FALSE(disk.AccessEx(IoRequest{IoKind::kRead, 996, 8}, 0).service.has_value());
  EXPECT_FALSE(disk.AccessEx(IoRequest{IoKind::kRead, 1004, 8}, 0).service.has_value());
  // Adjacent requests ending at or starting past the extent succeed.
  EXPECT_TRUE(disk.AccessEx(IoRequest{IoKind::kRead, 992, 8}, 0).service.has_value());
  EXPECT_TRUE(disk.AccessEx(IoRequest{IoKind::kRead, 1008, 8}, 0).service.has_value());

  // Explicit two-sector extent in the middle of a multi-sector request.
  disk.InjectError(2000, 2);
  EXPECT_FALSE(disk.AccessEx(IoRequest{IoKind::kRead, 1998, 8}, 0).service.has_value());
  EXPECT_TRUE(disk.AccessEx(IoRequest{IoKind::kRead, 2002, 8}, 0).service.has_value());
}

TEST(FaultPlanTest, LifetimeErrorCounterSurvivesClearErrors) {
  DiskModel disk(DiskParams{}, 1);
  disk.InjectError(512);
  EXPECT_FALSE(disk.AccessEx(IoRequest{IoKind::kRead, 512, 8}, 0).service.has_value());
  EXPECT_EQ(disk.stats().errors, 1u);
  disk.ClearErrors();
  // The damage is gone but the SMART-style lifetime tally is not.
  EXPECT_TRUE(disk.AccessEx(IoRequest{IoKind::kRead, 512, 8}, 0).service.has_value());
  EXPECT_EQ(disk.stats().errors, 1u);
}

// --- IoScheduler: the block layer's retry/remap policy ---

TEST(FaultPlanTest, SchedulerFailsPersistentFaultsFastWithoutRemap) {
  DiskModel disk(DiskParams{}, 4);
  disk.InjectError(4096);
  IoScheduler scheduler(&disk);
  scheduler.set_retry_policy(RetryPolicy{4, FromMillis(1), 2.0, /*remap=*/false});

  // A medium error is deterministic: re-issuing can only burn device time,
  // so no retries are spent on it.
  EXPECT_FALSE(scheduler.SubmitSync(IoRequest{IoKind::kRead, 4096, 8}, 0).has_value());
  EXPECT_EQ(scheduler.stats().sync_errors, 1u);
  EXPECT_EQ(scheduler.stats().retries, 0u);
  EXPECT_EQ(scheduler.stats().retry_backoff_time, 0);
  // The doomed attempt still occupied the device.
  EXPECT_GT(scheduler.busy_until(), 0);
}

TEST(FaultPlanTest, SchedulerRemapRescuesPersistentFaults) {
  DiskModel disk(DiskParams{}, 4);
  disk.InjectError(4096);
  IoScheduler scheduler(&disk);
  scheduler.set_retry_policy(RetryPolicy{4, FromMillis(1), 2.0, /*remap=*/true});

  const auto first = scheduler.SubmitSync(IoRequest{IoKind::kRead, 4096, 8}, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(scheduler.stats().remaps, 1u);
  EXPECT_EQ(scheduler.stats().sync_errors, 0u);
  EXPECT_EQ(disk.remapped_regions(), 1u);
  // The region stays remapped: later requests hit the spare directly.
  EXPECT_TRUE(scheduler.SubmitSync(IoRequest{IoKind::kRead, 4096, 8}, *first).has_value());
  EXPECT_EQ(scheduler.stats().remaps, 1u);
}

TEST(FaultPlanTest, RetryPolicyExhaustsOnPermanentTransientStorm) {
  DiskModel disk(DiskParams{}, 4);
  FaultPlanConfig config;
  config.transient_rate = 1.0;  // every attempt fails: the policy must give up
  disk.EnableFaults(config, 4);
  IoScheduler scheduler(&disk);
  scheduler.set_retry_policy(RetryPolicy{3, FromMillis(1), 2.0, /*remap=*/false});

  EXPECT_FALSE(scheduler.SubmitSync(IoRequest{IoKind::kRead, 0, 8}, 0).has_value());
  EXPECT_EQ(scheduler.stats().sync_errors, 1u);
  // 3 attempts = 2 retries, backing off 1 ms then 2 ms.
  EXPECT_EQ(scheduler.stats().retries, 2u);
  EXPECT_EQ(scheduler.stats().retry_backoff_time, FromMillis(3));
}

// --- Experiment: FaultSummary propagation into RunResult ---

TEST(FaultPlanTest, FaultSummaryPropagatesIntoRunResult) {
  const MachineFactory faulty = [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    config.faults.transient_rate = 0.2;
    config.faults.persistent_rate = 0.02;
    config.faults.slow_rate = 0.05;
    config.retry = RetryPolicy{4, FromMillis(0.1), 2.0, /*remap=*/true};
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 10 * kSecond;
  config.continue_on_error = true;
  const ExperimentResult result = Experiment(config).Run(faulty, [] {
    RandomReadConfig workload_config;
    workload_config.file_size = 8 * kMiB;
    return std::make_unique<RandomReadWorkload>(workload_config);
  });
  ASSERT_EQ(result.runs.size(), 1u);
  const RunResult& run = result.runs[0];
  const FaultSummary& fault = run.fault;
  // The machinery engaged and the summary mirrors the per-layer counters it
  // was assembled from.
  EXPECT_GT(fault.device_errors, 0u);
  EXPECT_EQ(fault.device_errors, run.disk_stats.errors);
  EXPECT_GT(fault.transient_faults, 0u);
  EXPECT_GT(fault.retries, 0u);
  EXPECT_EQ(fault.retries, run.scheduler_stats.retries);
  EXPECT_EQ(fault.retry_backoff_time, run.scheduler_stats.retry_backoff_time);
  // Remap bookkeeping balances against the configured spare pool.
  EXPECT_EQ(fault.remapped_regions + fault.spare_regions_left, 64u);
  EXPECT_EQ(fault.failed_ops, run.failed_ops);
  EXPECT_EQ(fault.sync_io_failures, run.scheduler_stats.sync_errors);
  EXPECT_EQ(fault.async_io_failures, run.scheduler_stats.async_errors);
}

}  // namespace
}  // namespace fsbench
