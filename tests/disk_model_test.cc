#include "src/sim/disk_model.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

DiskParams TestParams() {
  DiskParams params;  // Maxtor-ish defaults
  return params;
}

// These unit tests exercise the mechanical model in isolation: every request
// is issued at now = 0 against a fault-free disk, so only the service value
// of AccessEx matters.
std::optional<Nanos> Access(DiskModel& disk, const IoRequest& req) {
  return disk.AccessEx(req, 0).service;
}

TEST(DiskModelTest, GeometryDerivation) {
  DiskModel disk(TestParams(), 1);
  EXPECT_EQ(disk.total_sectors(), TestParams().capacity / 512);
  EXPECT_GT(disk.total_cylinders(), 100000u);
  EXPECT_EQ(disk.revolution_time(), kSecond * 60 / 7200);
}

TEST(DiskModelTest, SeekTimeZeroForSameCylinder) {
  DiskModel disk(TestParams(), 1);
  EXPECT_EQ(disk.SeekTime(100, 100), 0);
}

TEST(DiskModelTest, SeekTimeMonotonicInDistance) {
  DiskModel disk(TestParams(), 1);
  Nanos last = 0;
  for (uint64_t d = 1; d < disk.total_cylinders(); d *= 4) {
    const Nanos t = disk.SeekTime(0, d);
    EXPECT_GE(t, last) << "distance " << d;
    last = t;
  }
}

TEST(DiskModelTest, SeekTimeCappedAtFullStroke) {
  const DiskParams params = TestParams();
  DiskModel disk(params, 1);
  EXPECT_LE(disk.SeekTime(0, disk.total_cylinders() - 1), params.full_stroke_seek);
  EXPECT_GE(disk.SeekTime(0, 1), params.track_to_track_seek);
}

TEST(DiskModelTest, TransferTimeProportionalToSectors) {
  DiskModel disk(TestParams(), 1);
  const Nanos one = disk.TransferTime(8);
  const Nanos four = disk.TransferTime(32);
  EXPECT_NEAR(static_cast<double>(four), 4.0 * static_cast<double>(one),
              static_cast<double>(one));
}

TEST(DiskModelTest, SequentialStreamingSkipsSeekAndRotation) {
  DiskModel disk(TestParams(), 1);
  const uint64_t lba = disk.total_sectors() / 2;
  // Position the head.
  ASSERT_TRUE(Access(disk,{IoKind::kRead, lba, 8}).has_value());
  // Streaming continuation should cost roughly command + transfer only.
  const auto streaming = Access(disk,{IoKind::kWrite, lba + 8, 8});
  ASSERT_TRUE(streaming.has_value());
  EXPECT_LT(*streaming, TestParams().command_overhead + disk.TransferTime(8) + 100000);
  EXPECT_GE(disk.stats().sequential_hits, 1u);
}

TEST(DiskModelTest, RandomAccessCostsMechanicalTime) {
  DiskModel disk(TestParams(), 1);
  const uint64_t far_a = disk.total_sectors() / 10;
  const uint64_t far_b = disk.total_sectors() / 2;
  ASSERT_TRUE(Access(disk,{IoKind::kRead, far_a, 8}).has_value());
  const auto random = Access(disk,{IoKind::kRead, far_b, 8});
  ASSERT_TRUE(random.has_value());
  // Must include a multi-ms seek.
  EXPECT_GT(*random, FromMillis(2.0));
}

TEST(DiskModelTest, TrackBufferHitIsFast) {
  DiskModel disk(TestParams(), 1);
  const uint64_t lba = disk.total_sectors() / 3;
  ASSERT_TRUE(Access(disk,{IoKind::kRead, lba, 8}).has_value());
  // Re-reading the same sectors hits the track buffer.
  const auto hit = Access(disk,{IoKind::kRead, lba, 8});
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(*hit, FromMillis(1.0));
  EXPECT_EQ(disk.stats().buffer_hits, 1u);
}

TEST(DiskModelTest, WriteInvalidatesOverlappingBuffer) {
  DiskModel disk(TestParams(), 1);
  const uint64_t lba = disk.total_sectors() / 3;
  ASSERT_TRUE(Access(disk,{IoKind::kRead, lba, 8}).has_value());
  ASSERT_TRUE(Access(disk,{IoKind::kWrite, lba, 8}).has_value());
  const auto reread = Access(disk,{IoKind::kRead, lba, 8});
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(disk.stats().buffer_hits, 0u);
}

TEST(DiskModelTest, DeterministicForSeed) {
  DiskModel a(TestParams(), 42);
  DiskModel b(TestParams(), 42);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t lba = rng.NextBelow(a.total_sectors() - 8);
    const IoRequest req{IoKind::kRead, lba, 8};
    EXPECT_EQ(Access(a, req), Access(b, req));
  }
}

TEST(DiskModelTest, ErrorInjectionFailsOverlappingRequests) {
  DiskModel disk(TestParams(), 1);
  disk.InjectError(1000);
  EXPECT_FALSE(Access(disk,{IoKind::kRead, 996, 8}).has_value());
  EXPECT_TRUE(Access(disk,{IoKind::kRead, 1008, 8}).has_value());
  EXPECT_EQ(disk.stats().errors, 1u);
  disk.ClearErrors();
  EXPECT_TRUE(Access(disk,{IoKind::kRead, 996, 8}).has_value());
}

TEST(DiskModelTest, StatsAccumulate) {
  DiskModel disk(TestParams(), 1);
  ASSERT_TRUE(Access(disk,{IoKind::kRead, 0, 8}).has_value());
  ASSERT_TRUE(Access(disk,{IoKind::kWrite, 100000, 16}).has_value());
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().sectors_read, 8u);
  EXPECT_EQ(disk.stats().sectors_written, 16u);
  EXPECT_GT(disk.stats().total_service_time, 0);
}

// Property: mean random 4KiB access time within a small span is in the
// short-seek regime, and grows as the span grows.
class DiskSpanSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiskSpanSweep, MeanAccessTimeGrowsWithSpan) {
  const uint64_t span_mib = GetParam();
  DiskModel disk(TestParams(), 9);
  Rng rng(11);
  const uint64_t span_sectors = span_mib * 2048;
  Nanos total = 0;
  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t lba = rng.NextBelow(span_sectors / 8) * 8;
    const auto t = Access(disk,{IoKind::kRead, lba, 8});
    ASSERT_TRUE(t.has_value());
    total += *t;
  }
  const double mean_ms = static_cast<double>(total) / kOps / 1e6;
  // Bounded between rotation-only and full-stroke regimes.
  EXPECT_GT(mean_ms, 3.0);
  EXPECT_LT(mean_ms, 22.0);
}

INSTANTIATE_TEST_SUITE_P(Spans, DiskSpanSweep, ::testing::Values(64, 1024, 25600, 102400));

}  // namespace
}  // namespace fsbench
