// DeviceModel conformance suite: contracts every device kind (rotational
// DiskModel, multi-channel SsdModel) must honour identically, because the
// block layer, fault engine and redundancy layer program against the base
// class — determinism from (params, seed), fault-plan verdict parity across
// kinds, remap/spare accounting, the whole-device death latch, and the
// purity of the scrub's RegionLatentBad probe. Plus the SSD-specific
// physics: channel striping, flat latencies, and GC write amplification.
#include "src/sim/device_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/sim/ssd_model.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

constexpr Bytes kSmallCapacity = 256 * kMiB;

std::unique_ptr<DeviceModel> MakeDevice(DeviceKind kind, uint64_t seed) {
  if (kind == DeviceKind::kSsd) {
    SsdParams params;
    params.capacity = kSmallCapacity;
    return std::make_unique<SsdModel>(params);
  }
  DiskParams params;
  params.capacity = kSmallCapacity;
  return std::make_unique<DiskModel>(params, seed);
}

class DeviceConformance : public ::testing::TestWithParam<DeviceKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, DeviceConformance,
                         ::testing::Values(DeviceKind::kHdd, DeviceKind::kSsd),
                         [](const ::testing::TestParamInfo<DeviceKind>& info) {
                           return info.param == DeviceKind::kSsd ? "Ssd" : "Hdd";
                         });

TEST_P(DeviceConformance, DeterministicFromParamsAndSeed) {
  auto a = MakeDevice(GetParam(), 42);
  auto b = MakeDevice(GetParam(), 42);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const uint64_t lba = rng.NextBelow(a->total_sectors() / 8 - 8) * 8;
    const IoKind kind = rng.NextBelow(2) == 0 ? IoKind::kRead : IoKind::kWrite;
    const IoRequest req{kind, lba, 8};
    const AccessResult ra = a->AccessEx(req, 0);
    const AccessResult rb = b->AccessEx(req, 0);
    ASSERT_EQ(ra.service, rb.service) << "op " << i;
    ASSERT_EQ(ra.fault, rb.fault) << "op " << i;
  }
  EXPECT_EQ(a->stats().total_service_time, b->stats().total_service_time);
  EXPECT_EQ(a->stats().reads, b->stats().reads);
  EXPECT_EQ(a->stats().writes, b->stats().writes);
}

TEST_P(DeviceConformance, FaultPlanVerdictsMatchAcrossKinds) {
  // The plan's verdicts are a pure function of (config, seed) and the call
  // sequence — never of the device kind consuming them. An HDD and an SSD
  // with the same plan must agree on every region verdict and every
  // per-request fault kind.
  FaultPlanConfig config;
  config.persistent_rate = 0.1;
  config.transient_rate = 0.05;
  auto device = MakeDevice(GetParam(), 3);
  auto hdd_ref = MakeDevice(DeviceKind::kHdd, 3);
  device->EnableFaults(config, 77);
  hdd_ref->EnableFaults(config, 77);

  for (uint64_t lba = 0; lba < device->total_sectors(); lba += 16 * config.region_sectors) {
    EXPECT_EQ(device->fault_plan()->RegionIsBad(lba, 0),
              hdd_ref->fault_plan()->RegionIsBad(lba, 0))
        << "lba " << lba;
  }
  // Same request sequence, same transient draw stream: fault kinds agree
  // one-to-one even though service times differ wildly across kinds.
  Rng rng(11);
  uint64_t faults = 0;
  for (int i = 0; i < 300; ++i) {
    const uint64_t lba = rng.NextBelow(device->total_sectors() / 8 - 8) * 8;
    const IoRequest req{IoKind::kRead, lba, 8};
    const AccessResult rd = device->AccessEx(req, 0);
    const AccessResult rh = hdd_ref->AccessEx(req, 0);
    ASSERT_EQ(rd.fault, rh.fault) << "op " << i;
    faults += rd.fault != FaultKind::kNone ? 1 : 0;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_EQ(device->stats().errors, hdd_ref->stats().errors);
}

TEST_P(DeviceConformance, InjectedErrorFailsUntilRemappedWithSpareAccounting) {
  auto device = MakeDevice(GetParam(), 5);
  device->ConfigureSpares(/*region_sectors=*/2048, /*spare_regions=*/2);
  const uint64_t bad = 8 * 2048;  // region 8
  device->InjectError(bad);

  const IoRequest req{IoKind::kRead, bad, 8};
  const AccessResult failed = device->AccessEx(req, 0);
  EXPECT_FALSE(failed.service.has_value());
  EXPECT_EQ(failed.fault, FaultKind::kPersistent);
  EXPECT_GT(failed.fail_time, 0);  // the doomed attempt occupied the device
  EXPECT_EQ(device->stats().errors, 1u);
  EXPECT_EQ(device->stats().total_fault_time, failed.fail_time);

  ASSERT_TRUE(device->RemapRegion(bad));
  EXPECT_EQ(device->remapped_regions(), 1u);
  EXPECT_EQ(device->spare_regions_left(), 1u);
  // The redirected request reads the spare, not the bad media.
  EXPECT_TRUE(device->AccessEx(req, 0).service.has_value());
  // Idempotent re-remap spends no second spare.
  EXPECT_TRUE(device->RemapRegion(bad));
  EXPECT_EQ(device->spare_regions_left(), 1u);
}

TEST_P(DeviceConformance, DeviceDeathLatches) {
  FaultPlanConfig config;
  config.device_kill_time = 1 * kSecond;
  auto device = MakeDevice(GetParam(), 9);
  device->EnableFaults(config, 9);

  EXPECT_FALSE(device->IsDead(500 * kMillisecond));
  EXPECT_TRUE(device->AccessEx({IoKind::kRead, 0, 8}, 0).service.has_value());
  EXPECT_TRUE(device->IsDead(2 * kSecond));
  // Latched: an earlier `now` cannot resurrect the device.
  EXPECT_TRUE(device->IsDead(0));
  EXPECT_TRUE(device->dead());
  const AccessResult dead = device->AccessEx({IoKind::kRead, 0, 8}, 2 * kSecond);
  EXPECT_FALSE(dead.service.has_value());
  // A dead device has nothing to remap to.
  EXPECT_FALSE(device->RemapRegion(0));
}

TEST_P(DeviceConformance, RegionLatentBadIsAPureProbe) {
  FaultPlanConfig config;
  config.persistent_rate = 0.2;
  auto device = MakeDevice(GetParam(), 13);
  device->EnableFaults(config, 13);

  uint64_t bad_lba = ~0ULL;
  for (uint64_t lba = 0; lba < device->total_sectors(); lba += config.region_sectors) {
    if (device->RegionLatentBad(lba, 0)) {
      bad_lba = lba;
      break;
    }
  }
  ASSERT_NE(bad_lba, ~0ULL);
  const DiskStats before = device->stats();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(device->RegionLatentBad(bad_lba, 0));
  }
  // No stats movement, no state movement: probing is free and repeatable.
  EXPECT_EQ(device->stats().errors, before.errors);
  EXPECT_EQ(device->stats().reads, before.reads);
  EXPECT_EQ(device->stats().total_service_time, before.total_service_time);
  // A remapped region stops reporting latent-bad (it is repaired).
  ASSERT_TRUE(device->RemapRegion(bad_lba));
  EXPECT_FALSE(device->RegionLatentBad(bad_lba, 0));
}

// --- SSD-specific physics ---

TEST(SsdModelTest, ChannelStripingRoundRobin) {
  SsdParams params;
  params.capacity = kSmallCapacity;
  SsdModel ssd(params);
  EXPECT_EQ(ssd.channels(), params.channels);
  const uint64_t page_sectors = ssd.sectors_per_page();
  for (uint64_t page = 0; page < 64; ++page) {
    EXPECT_EQ(ssd.ChannelOf(page * page_sectors), page % params.channels) << "page " << page;
  }
}

TEST(SsdModelTest, FlatReadLatencyIndependentOfDistance) {
  SsdParams params;
  params.capacity = kSmallCapacity;
  SsdModel ssd(params);
  const IoRequest near{IoKind::kRead, 0, 8};
  const IoRequest far{IoKind::kRead, ssd.total_sectors() - 8, 8};
  const auto a = ssd.AccessEx(near, 0);
  const auto b = ssd.AccessEx(far, 0);
  ASSERT_TRUE(a.service.has_value());
  ASSERT_TRUE(b.service.has_value());
  // No seek, no rotation: distance costs nothing.
  EXPECT_EQ(*a.service, *b.service);
  EXPECT_EQ(*a.service,
            params.command_overhead + params.read_latency + ssd.page_transfer_time());
  EXPECT_EQ(ssd.stats().seeks, 0u);
  EXPECT_EQ(ssd.stats().total_seek_time, 0);
  EXPECT_EQ(ssd.stats().total_rotation_time, 0);
}

TEST(SsdModelTest, LargeRequestPaysPerChannelTransferShare) {
  SsdParams params;
  params.capacity = kSmallCapacity;
  SsdModel ssd(params);
  // 16 pages spread over 8 channels: 2 pages per channel move serially.
  const uint32_t sectors = static_cast<uint32_t>(16 * ssd.sectors_per_page());
  const auto big = ssd.AccessEx({IoKind::kRead, 0, sectors}, 0);
  ASSERT_TRUE(big.service.has_value());
  EXPECT_EQ(*big.service,
            params.command_overhead + params.read_latency + 2 * ssd.page_transfer_time());
}

TEST(SsdModelTest, SustainedRandomWritesTriggerGcAndChargeTheWriter) {
  SsdParams params;
  params.capacity = 16 * kMiB;  // tiny device: GC pressure arrives fast
  params.overprovision = 0.10;
  SsdModel ssd(params);
  const uint64_t pages = params.capacity / params.page_bytes;
  Rng rng(3);
  Nanos clean_write = 0;
  Nanos max_write = 0;
  // Overwrite randomly at ~3x logical capacity: must exhaust free blocks.
  for (uint64_t i = 0; i < pages * 3; ++i) {
    const uint64_t page = rng.NextBelow(pages);
    const auto w = ssd.AccessEx(
        {IoKind::kWrite, page * ssd.sectors_per_page(), static_cast<uint32_t>(ssd.sectors_per_page())}, 0);
    ASSERT_TRUE(w.service.has_value());
    if (i == 0) {
      clean_write = *w.service;
    }
    max_write = std::max(max_write, *w.service);
  }
  EXPECT_GT(ssd.stats().gc_erases, 0u);
  EXPECT_GT(ssd.stats().gc_page_moves, 0u);
  EXPECT_GT(ssd.stats().total_gc_time, 0);
  // Some write visibly stalled behind a reclaim (write amplification).
  EXPECT_GT(max_write, clean_write);
  // Reads never pay GC.
  const DiskStats before = ssd.stats();
  ASSERT_TRUE(ssd.AccessEx({IoKind::kRead, 0, 8}, 0).service.has_value());
  EXPECT_EQ(ssd.stats().total_gc_time, before.total_gc_time);
}

TEST(SsdModelTest, GcKeepsFreeBlocksAboveFloor) {
  SsdParams params;
  params.capacity = 16 * kMiB;
  SsdModel ssd(params);
  const uint64_t pages = params.capacity / params.page_bytes;
  Rng rng(5);
  for (uint64_t i = 0; i < pages * 4; ++i) {
    const uint64_t page = rng.NextBelow(pages);
    ASSERT_TRUE(ssd.AccessEx({IoKind::kWrite, page * ssd.sectors_per_page(),
                              static_cast<uint32_t>(ssd.sectors_per_page())},
                             0)
                    .service.has_value());
  }
  // GC's contract: the pool never wedges at zero — every channel can still
  // take a host write.
  for (uint32_t c = 0; c < params.channels; ++c) {
    EXPECT_GT(ssd.FreeBlocks(c), 0u) << "channel " << c;
  }
}

TEST(SsdModelTest, FaultedWriteLeavesFtlUntouched) {
  SsdParams params;
  params.capacity = kSmallCapacity;
  SsdModel a(params);
  SsdModel b(params);
  b.InjectError(0);
  const uint32_t page_sectors = static_cast<uint32_t>(a.sectors_per_page());
  // b's first write fails (no FTL movement); after clearing, both devices
  // see the same request sequence and must land in identical states.
  EXPECT_FALSE(b.AccessEx({IoKind::kWrite, 0, page_sectors}, 0).service.has_value());
  EXPECT_EQ(b.stats().gc_erases, 0u);
  b.ClearErrors();
  for (uint64_t i = 0; i < 32; ++i) {
    const IoRequest req{IoKind::kWrite, i * page_sectors, page_sectors};
    ASSERT_EQ(a.AccessEx(req, 0).service, b.AccessEx(req, 0).service) << "op " << i;
  }
}

}  // namespace
}  // namespace fsbench
