#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace fsbench {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  uint64_t s1 = 1;
  uint64_t s2 = 2;
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SeedsProduceDistinctStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.05) << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextExponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(31);
  constexpr uint64_t kN = 1000;
  std::vector<int> counts(kN, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = rng.NextZipf(kN, 0.9);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Rank 0 must dominate, and the head must hold far more than its uniform
  // share.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  int head = 0;
  for (int i = 0; i < 10; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, kSamples / 5);  // 1% of ranks, >20% of mass
}

TEST(RngTest, ZipfThetaCacheHandlesParameterChange) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.NextZipf(10, 0.5), 10u);
    EXPECT_LT(rng.NextZipf(100000, 0.99), 100000u);
  }
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(41);
  Rng b(41);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
  // The fork differs from the parent's continued stream.
  Rng c(41);
  Rng fc = c.Fork();
  EXPECT_NE(fc.NextU64(), c.NextU64());
}

class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, MeanIsNearHalfBound) {
  const uint64_t bound = GetParam();
  Rng rng(bound);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextBelow(bound));
  }
  const double expected = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(sum / kSamples, expected, std::max(1.0, expected * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 7, 64, 1000, 4096, 1000000));

}  // namespace
}  // namespace fsbench
