#include "src/core/histogram.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(HistogramTest, EmptyState) {
  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.FirstBucket(), -1);
  EXPECT_EQ(h.LastBucket(), -1);
  EXPECT_EQ(h.ApproxPercentile(0.5), 0);
  EXPECT_EQ(h.ApproxMean(), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(3), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketFor(4095), 11);
  EXPECT_EQ(LatencyHistogram::BucketFor(4096), 12);
  EXPECT_EQ(LatencyHistogram::BucketFor(4097), 12);
}

TEST(HistogramTest, HugeLatencySaturatesLastBucket) {
  LatencyHistogram h;
  h.Add(INT64_MAX);
  EXPECT_EQ(h.count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(HistogramTest, LowerBoundRoundTrip) {
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::BucketFor(LatencyHistogram::BucketLowerBound(b)), b);
  }
}

TEST(HistogramTest, SharesSumToHundred) {
  LatencyHistogram h;
  h.Add(100);
  h.Add(5000);
  h.Add(5000);
  h.Add(9'000'000);
  double total = 0.0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    total += h.SharePct(b);
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, MergeAddsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Add(10);
  b.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(LatencyHistogram::BucketFor(10)), 2u);
  EXPECT_EQ(a.count(LatencyHistogram::BucketFor(1000)), 1u);
}

TEST(HistogramTest, FirstAndLastBucket) {
  LatencyHistogram h;
  h.Add(4100);       // bucket 12
  h.Add(9'000'000);  // bucket 23
  EXPECT_EQ(h.FirstBucket(), 12);
  EXPECT_EQ(h.LastBucket(), 23);
}

TEST(HistogramTest, PercentileOrdersBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Add(4100);  // fast mode
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(9'000'000);  // slow tail
  }
  EXPECT_LT(h.ApproxPercentile(0.5), 10'000);
  EXPECT_GT(h.ApproxPercentile(0.95), 1'000'000);
}

// Regression: a truncating rank (floor(q*n)) let q=0 and small nonzero q
// stop on empty bucket 0 and report its midpoint instead of a real sample's.
TEST(HistogramTest, PercentileExtremeQuantilesLandOnOccupiedBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Add(4100);  // bucket 12
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(9'000'000);  // bucket 23
  }
  const Nanos fast_lo = LatencyHistogram::BucketLowerBound(12);
  const Nanos fast_hi = LatencyHistogram::BucketLowerBound(13);
  const Nanos slow_lo = LatencyHistogram::BucketLowerBound(23);
  const Nanos slow_hi = LatencyHistogram::BucketLowerBound(24);
  // q=0 and q just above 0 must resolve to the first occupied bucket.
  EXPECT_GE(h.ApproxPercentile(0.0), fast_lo);
  EXPECT_LT(h.ApproxPercentile(0.0), fast_hi);
  EXPECT_GE(h.ApproxPercentile(1e-9), fast_lo);
  EXPECT_LT(h.ApproxPercentile(1e-9), fast_hi);
  // q=1 must resolve to the last occupied bucket.
  EXPECT_GE(h.ApproxPercentile(1.0), slow_lo);
  EXPECT_LT(h.ApproxPercentile(1.0), slow_hi);
}

TEST(HistogramTest, PercentileSingleSample) {
  LatencyHistogram h;
  h.Add(4100);  // bucket 12
  const Nanos lo = LatencyHistogram::BucketLowerBound(12);
  const Nanos hi = LatencyHistogram::BucketLowerBound(13);
  for (double q : {0.0, 1e-9, 0.5, 1.0}) {
    EXPECT_GE(h.ApproxPercentile(q), lo) << "q=" << q;
    EXPECT_LT(h.ApproxPercentile(q), hi) << "q=" << q;
  }
}

TEST(HistogramTest, ApproxMeanBetweenModes) {
  LatencyHistogram h;
  h.Add(4100);
  h.Add(9'000'000);
  const double mean = h.ApproxMean();
  EXPECT_GT(mean, 4100.0);
  EXPECT_LT(mean, 9'000'000.0);
}

TEST(HistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Add(100);
  h.Clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.FirstBucket(), -1);
}

// Property sweep: for any value v in [2^k, 2^(k+1)), BucketFor(v) == k.
class HistogramBucketSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramBucketSweep, AllValuesInBucketRangeMapToBucket) {
  const int bucket = GetParam();
  const Nanos lo = LatencyHistogram::BucketLowerBound(bucket);
  const Nanos hi = bucket + 1 < LatencyHistogram::kBuckets
                       ? LatencyHistogram::BucketLowerBound(bucket + 1)
                       : lo * 2;
  EXPECT_EQ(LatencyHistogram::BucketFor(lo), bucket);
  EXPECT_EQ(LatencyHistogram::BucketFor(lo + (hi - lo) / 2), bucket);
  EXPECT_EQ(LatencyHistogram::BucketFor(hi - 1), bucket);
}

INSTANTIATE_TEST_SUITE_P(Buckets, HistogramBucketSweep,
                         ::testing::Range(1, LatencyHistogram::kBuckets - 1));

}  // namespace
}  // namespace fsbench
