// Differential property test: the three file systems differ in layout and
// cost, never in semantics. A random operation sequence applied to ext2,
// ext3 and xfs must produce identical logical state (same status codes,
// same namespace, same sizes) even though physical placement and virtual
// time differ.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

struct Logical {
  std::map<std::string, Bytes> files;  // path -> size
  std::vector<std::string> dirs;
};

Logical Snapshot(Vfs& vfs, const std::vector<std::string>& dirs) {
  Logical state;
  for (const std::string& dir : dirs) {
    const auto entries = vfs.ReadDir(dir);
    if (!entries.ok()) {
      continue;
    }
    state.dirs.push_back(dir);
    for (const std::string& name : entries.value) {
      const std::string path = dir == "/" ? "/" + name : dir + "/" + name;
      const auto attr = vfs.Stat(path);
      if (attr.ok() && attr.value.type == FileType::kRegular) {
        state.files[path] = attr.value.size;
      }
    }
  }
  std::sort(state.dirs.begin(), state.dirs.end());
  return state;
}

class DifferentialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweep, SameOpsSameLogicalState) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = GetParam();
  Machine ext2(FsKind::kExt2, config);
  Machine ext3(FsKind::kExt3, config);
  Machine xfs(FsKind::kXfs, config);
  Machine* machines[] = {&ext2, &ext3, &xfs};

  const std::vector<std::string> dirs = {"/", "/d0", "/d1", "/d2"};
  for (size_t d = 1; d < dirs.size(); ++d) {
    for (Machine* machine : machines) {
      ASSERT_EQ(machine->vfs().Mkdir(dirs[d]), FsStatus::kOk);
    }
  }

  // One RNG drives the *choice* of operations; each machine executes the
  // same op. Status codes must agree everywhere.
  Rng rng(GetParam() * 7919 + 13);
  for (int step = 0; step < 500; ++step) {
    const std::string dir = dirs[rng.NextBelow(dirs.size())];
    const std::string path =
        (dir == "/" ? "" : dir) + "/f" + std::to_string(rng.NextBelow(40));
    const double action = rng.NextDouble();
    FsStatus expected = FsStatus::kInvalid;
    for (size_t m = 0; m < 3; ++m) {
      Vfs& vfs = machines[m]->vfs();
      FsStatus status;
      if (action < 0.35) {
        status = vfs.CreateFile(path);
      } else if (action < 0.55) {
        status = vfs.Unlink(path);
      } else if (action < 0.80) {
        const auto fd = vfs.Open(path);
        status = fd.status;
        if (fd.ok()) {
          vfs.Close(fd.value);
        }
      } else {
        status = vfs.Stat(path).status;
      }
      if (m == 0) {
        expected = status;
      } else {
        ASSERT_EQ(status, expected)
            << "step " << step << " op " << action << " path " << path << " fs "
            << machines[m]->fs().name();
      }
    }
  }

  // Writes with shared parameters: draw once, apply to all machines.
  for (int step = 0; step < 200; ++step) {
    const std::string path = "/d0/w" + std::to_string(rng.NextBelow(20));
    const Bytes offset = rng.NextBelow(32) * 4 * kKiB;
    const Bytes length = (rng.NextBelow(4) + 1) * 4 * kKiB;
    FsStatus expected = FsStatus::kInvalid;
    for (size_t m = 0; m < 3; ++m) {
      Vfs& vfs = machines[m]->vfs();
      const auto fd = vfs.Open(path, /*create=*/true);
      ASSERT_TRUE(fd.ok());
      const auto written = vfs.Write(fd.value, offset, length);
      vfs.Close(fd.value);
      if (m == 0) {
        expected = written.status;
      } else {
        ASSERT_EQ(written.status, expected) << "write step " << step;
      }
    }
  }

  // Final logical state identical across all three.
  const Logical reference = Snapshot(ext2.vfs(), dirs);
  EXPECT_FALSE(reference.files.empty());
  for (Machine* machine : {&ext3, &xfs}) {
    const Logical other = Snapshot(machine->vfs(), dirs);
    EXPECT_EQ(other.files, reference.files) << machine->fs().name();
    EXPECT_EQ(other.dirs, reference.dirs) << machine->fs().name();
  }
  // And all three images are internally consistent.
  for (Machine* machine : machines) {
    std::string error;
    EXPECT_TRUE(machine->fs().CheckConsistency(&error))
        << machine->fs().name() << ": " << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace fsbench
