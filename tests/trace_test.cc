#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace fsbench {
namespace {

std::unique_ptr<Machine> SmallMachine(uint64_t seed = 1) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = seed;
  return std::make_unique<Machine>(FsKind::kExt2, config);
}

TEST(TraceTest, SerializeParseRoundTrip) {
  Trace trace;
  trace.Append({0, OpType::kCreate, "/a", 0, 0});
  trace.Append({1000, OpType::kWrite, "/a", 0, 4096});
  trace.Append({2000, OpType::kRead, "/a", 0, 4096});
  trace.Append({3000, OpType::kStat, "/a", 0, 0});
  trace.Append({4000, OpType::kUnlink, "/a", 0, 0});
  const std::string text = trace.Serialize();
  const auto parsed = Trace::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed->records()[i].timestamp, trace.records()[i].timestamp);
    EXPECT_EQ(parsed->records()[i].op, trace.records()[i].op);
    EXPECT_EQ(parsed->records()[i].path, trace.records()[i].path);
    EXPECT_EQ(parsed->records()[i].offset, trace.records()[i].offset);
    EXPECT_EQ(parsed->records()[i].length, trace.records()[i].length);
  }
}

TEST(TraceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Trace::Parse("not a trace line").has_value());
  EXPECT_FALSE(Trace::Parse("0 explode /a 0 0").has_value());
  EXPECT_FALSE(Trace::Parse("x read /a 0 0").has_value());
}

TEST(TraceTest, ParseSkipsBlankLines) {
  const auto parsed = Trace::Parse("0 create /a 0 0\n\n1 stat /a 0 0\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceRecorderTest, RecordsWhileForwarding) {
  auto machine = SmallMachine();
  TraceRecorder recorder(&machine->vfs(), &machine->clock());
  ASSERT_EQ(recorder.Create("/f"), FsStatus::kOk);
  ASSERT_TRUE(recorder.Write("/f", 0, 8192).ok());
  ASSERT_TRUE(recorder.Read("/f", 0, 4096).ok());
  ASSERT_TRUE(recorder.Stat("/f").ok());
  ASSERT_EQ(recorder.Unlink("/f"), FsStatus::kOk);
  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.records()[0].op, OpType::kCreate);
  EXPECT_EQ(trace.records()[1].op, OpType::kWrite);
  EXPECT_EQ(trace.records()[2].op, OpType::kRead);
  EXPECT_EQ(trace.records()[3].op, OpType::kStat);
  EXPECT_EQ(trace.records()[4].op, OpType::kUnlink);
  // The operations really happened.
  EXPECT_EQ(machine->vfs().Stat("/f").status, FsStatus::kNotFound);
  // Timestamps are monotonically non-decreasing virtual times.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace.records()[i].timestamp, trace.records()[i - 1].timestamp);
  }
}

TEST(TraceReplayerTest, ReplaysOntoFreshMachine) {
  // Record on one machine...
  auto source = SmallMachine(1);
  TraceRecorder recorder(&source->vfs(), &source->clock());
  ASSERT_EQ(recorder.Create("/data"), FsStatus::kOk);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(recorder.Write("/data", static_cast<Bytes>(i) * 4096, 4096).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(recorder.Read("/data", static_cast<Bytes>(i) * 4096, 4096).ok());
  }
  const Trace trace = recorder.TakeTrace();

  // ...replay on another (different FS even).
  MachineConfig config = PaperTestbedConfig();
  config.seed = 2;
  Machine target(FsKind::kXfs, config);
  TraceReplayer replayer;
  const ReplayResult result =
      replayer.Replay(target.vfs(), target.clock(), trace, /*paced=*/false);
  EXPECT_EQ(result.ops, trace.size());
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.ops_per_second, 0.0);
  const auto attr = target.vfs().Stat("/data");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 8u * 4096);
}

TEST(TraceReplayerTest, PacedReplayHonoursTimestamps) {
  Trace trace;
  trace.Append({0, OpType::kCreate, "/x", 0, 0});
  trace.Append({10 * kSecond, OpType::kStat, "/x", 0, 0});
  trace.Append({20 * kSecond, OpType::kStat, "/x", 0, 0});
  auto machine = SmallMachine();
  TraceReplayer replayer;
  const ReplayResult paced =
      replayer.Replay(machine->vfs(), machine->clock(), trace, /*paced=*/true);
  EXPECT_GE(paced.replay_duration, 20 * kSecond);
  auto fast_machine = SmallMachine();
  const ReplayResult fast =
      replayer.Replay(fast_machine->vfs(), fast_machine->clock(), trace, /*paced=*/false);
  EXPECT_LT(fast.replay_duration, kSecond);
}

TEST(TraceReplayerTest, ErrorsAreCountedNotFatal) {
  Trace trace;
  trace.Append({0, OpType::kUnlink, "/missing", 0, 0});
  trace.Append({1, OpType::kCreate, "/ok", 0, 0});
  auto machine = SmallMachine();
  TraceReplayer replayer;
  const ReplayResult result =
      replayer.Replay(machine->vfs(), machine->clock(), trace, /*paced=*/false);
  EXPECT_EQ(result.ops, 2u);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_TRUE(machine->vfs().Stat("/ok").ok());
}

TEST(TraceReplayerTest, EmptyTraceIsNoop) {
  auto machine = SmallMachine();
  TraceReplayer replayer;
  const ReplayResult result =
      replayer.Replay(machine->vfs(), machine->clock(), Trace{}, /*paced=*/true);
  EXPECT_EQ(result.ops, 0u);
}

}  // namespace
}  // namespace fsbench
