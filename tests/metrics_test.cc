#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

MetricsConfig Config(Nanos origin = 0) {
  MetricsConfig config;
  config.timeline_interval = kSecond;
  config.histogram_slice = 2 * kSecond;
  config.origin = origin;
  return config;
}

TEST(MetricsTest, EmptyCollector) {
  MetricsCollector metrics(Config());
  EXPECT_EQ(metrics.total_ops(), 0u);
  EXPECT_EQ(metrics.latency().count(), 0u);
  EXPECT_EQ(metrics.histogram().total(), 0u);
}

TEST(MetricsTest, AggregatesAcrossOpTypes) {
  MetricsCollector metrics(Config());
  metrics.Record(OpType::kRead, 0, 4100);
  metrics.Record(OpType::kRead, 100'000, 4100);
  metrics.Record(OpType::kWrite, 200'000, 9'000'000);
  EXPECT_EQ(metrics.total_ops(), 3u);
  EXPECT_EQ(metrics.ops_for(OpType::kRead), 2u);
  EXPECT_EQ(metrics.ops_for(OpType::kWrite), 1u);
  EXPECT_EQ(metrics.ops_for(OpType::kStat), 0u);
  EXPECT_EQ(metrics.latency().count(), 3u);
  EXPECT_DOUBLE_EQ(metrics.latency_for(OpType::kRead).mean(), 4100.0);
  EXPECT_DOUBLE_EQ(metrics.latency_for(OpType::kWrite).mean(), 9'000'000.0);
}

TEST(MetricsTest, HistogramMatchesRecordedLatencies) {
  MetricsCollector metrics(Config());
  metrics.Record(OpType::kRead, 0, 4100);
  metrics.Record(OpType::kRead, 1, 9'000'000);
  EXPECT_EQ(metrics.histogram().count(12), 1u);
  EXPECT_EQ(metrics.histogram().count(23), 1u);
}

TEST(MetricsTest, TimelineBucketsByCompletion) {
  MetricsCollector metrics(Config());
  // Op starts at 0.9 s and takes 0.2 s: completes in interval 1.
  metrics.Record(OpType::kRead, 900 * kMillisecond, 200 * kMillisecond);
  ASSERT_EQ(metrics.timeline().interval_count(), 2u);
  EXPECT_EQ(metrics.timeline().count(0), 0u);
  EXPECT_EQ(metrics.timeline().count(1), 1u);
  EXPECT_EQ(metrics.last_completion(), 1100 * kMillisecond);
}

TEST(MetricsTest, OriginDropsEarlierOps) {
  MetricsCollector metrics(Config(/*origin=*/10 * kSecond));
  metrics.Record(OpType::kRead, 5 * kSecond, 100);   // before origin: dropped
  metrics.Record(OpType::kRead, 11 * kSecond, 100);  // counted
  EXPECT_EQ(metrics.total_ops(), 1u);
  EXPECT_EQ(metrics.histogram().total(), 1u);
}

TEST(MetricsTest, HistogramTimelineSlices) {
  MetricsCollector metrics(Config());
  metrics.Record(OpType::kRead, 0, 4100);                 // slice 0
  metrics.Record(OpType::kRead, 3 * kSecond, 9'000'000);  // slice 1
  ASSERT_EQ(metrics.histogram_timeline().slices().size(), 2u);
  EXPECT_EQ(metrics.histogram_timeline().slices()[0].FirstBucket(), 12);
  EXPECT_EQ(metrics.histogram_timeline().slices()[1].FirstBucket(), 23);
}

TEST(MetricsTest, OpTypeNamesAreStable) {
  EXPECT_STREQ(OpTypeName(OpType::kRead), "read");
  EXPECT_STREQ(OpTypeName(OpType::kUnlink), "unlink");
  EXPECT_STREQ(OpTypeName(OpType::kReadDir), "readdir");
  EXPECT_STREQ(OpTypeName(OpType::kOther), "other");
}

}  // namespace
}  // namespace fsbench
