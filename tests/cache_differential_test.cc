// Differential test: the slab-backed PageCache vs. the retained pre-slab
// reference implementations (tests/reference_policies.h). Over randomized
// access traces, for all four policies, the two caches must agree on every
// observable decision:
//   - every Insert's victim sequence (key, block, dirty bit, order),
//   - every Lookup/Contains/MarkDirty result,
//   - resident size and dirty count after every operation,
//   - ARC's adaptive T1 target p (bit-identical: same arithmetic, same
//     order), proving ghost-hit adaptation carried over.
// The slab rewrite changes mechanics only; decisions are provably unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/page_cache.h"
#include "src/util/rng.h"
#include "tests/reference_policies.h"

namespace fsbench {
namespace {

struct TraceParam {
  EvictionPolicyKind kind;
  size_t capacity;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<TraceParam>& info) {
  return std::string(EvictionPolicyKindName(info.param.kind)) + "_cap" +
         std::to_string(info.param.capacity) + "_seed" + std::to_string(info.param.seed);
}

BlockId BlockFor(const PageKey& key) { return key.ino * 1000 + key.index; }

bool EvictedEqual(const PageCache::Evicted& a, const reference::ReferencePageCache::Evicted& b) {
  return a.key == b.key && a.block == b.block && a.dirty == b.dirty;
}

class CacheDifferential : public ::testing::TestWithParam<TraceParam> {};

TEST_P(CacheDifferential, IdenticalVictimSequencesOverRandomTrace) {
  const TraceParam param = GetParam();
  PageCache cache(param.capacity, param.kind);
  reference::ReferencePageCache oracle(param.capacity, param.kind);

  // Key space ~4x the capacity across a handful of inodes, so the trace
  // exercises residency churn, ghost hits and whole-file drops.
  const uint64_t inodes = 4;
  const uint64_t pages_per_inode = std::max<uint64_t>(1, param.capacity * 4 / inodes);
  Rng rng(param.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  auto random_key = [&] {
    return PageKey{1 + rng.NextBelow(inodes), rng.NextBelow(pages_per_inode)};
  };

  bool arc_p_moved = false;
  std::vector<PageCache::Evicted> scratch;
  constexpr int kSteps = 12000;
  for (int step = 0; step < kSteps; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.70) {
      // Touch: lookup, insert on miss (30% of inserts dirty).
      const PageKey key = random_key();
      const bool hit = cache.Lookup(key);
      ASSERT_EQ(hit, oracle.Lookup(key)) << "step " << step;
      if (!hit) {
        const bool dirty = rng.NextDouble() < 0.3;
        const PageCache::EvictedBatch evicted = cache.Insert(key, BlockFor(key), dirty);
        const auto expected = oracle.Insert(key, BlockFor(key), dirty);
        ASSERT_EQ(evicted.size(), expected.size()) << "step " << step;
        for (uint32_t i = 0; i < evicted.size(); ++i) {
          ASSERT_TRUE(EvictedEqual(evicted[i], expected[i]))
              << "step " << step << " victim " << i << ": slab {" << evicted[i].key.ino << ","
              << evicted[i].key.index << "} vs oracle {" << expected[i].key.ino << ","
              << expected[i].key.index << "}";
        }
      }
    } else if (action < 0.78) {
      // Re-insert (refresh or ghost revival) without a preceding lookup.
      const PageKey key = random_key();
      const PageCache::EvictedBatch evicted = cache.Insert(key, BlockFor(key), false);
      const auto expected = oracle.Insert(key, BlockFor(key), false);
      ASSERT_EQ(evicted.size(), expected.size()) << "step " << step;
      for (uint32_t i = 0; i < evicted.size(); ++i) {
        ASSERT_TRUE(EvictedEqual(evicted[i], expected[i])) << "step " << step;
      }
    } else if (action < 0.88) {
      const PageKey key = random_key();
      ASSERT_EQ(cache.MarkDirty(key), oracle.MarkDirty(key)) << "step " << step;
    } else if (action < 0.93) {
      const PageKey key = random_key();
      ASSERT_EQ(cache.Contains(key), oracle.Contains(key)) << "step " << step;
      cache.Remove(key);
      oracle.Remove(key);
    } else if (action < 0.97) {
      // TakeDirty drains in different orders (the oracle inherits
      // unordered_map iteration when partial), so compare full drains as
      // key-sorted sets.
      cache.TakeDirty(cache.size() + 1, &scratch);
      auto expected = oracle.TakeDirty(oracle.size() + 1);
      ASSERT_EQ(scratch.size(), expected.size()) << "step " << step;
      auto by_key = [](const auto& a, const auto& b) {
        return a.key.ino != b.key.ino ? a.key.ino < b.key.ino : a.key.index < b.key.index;
      };
      std::sort(scratch.begin(), scratch.end(), by_key);
      std::sort(expected.begin(), expected.end(), by_key);
      for (size_t i = 0; i < scratch.size(); ++i) {
        ASSERT_TRUE(EvictedEqual(scratch[i], expected[i])) << "step " << step;
      }
    } else {
      const InodeId ino = 1 + rng.NextBelow(inodes);
      cache.RemoveFile(ino);
      oracle.RemoveFile(ino);
    }

    ASSERT_EQ(cache.size(), oracle.size()) << "step " << step;
    ASSERT_EQ(cache.dirty_count(), oracle.dirty_count()) << "step " << step;
    if (param.kind == EvictionPolicyKind::kArc) {
      ASSERT_EQ(cache.arc_target_t1(), oracle.policy()->target_t1()) << "step " << step;
      arc_p_moved = arc_p_moved || cache.arc_target_t1() != 0.0;
    }
    if (step % 997 == 0) {
      ASSERT_TRUE(cache.CheckInvariants()) << "step " << step;
    }
  }
  ASSERT_TRUE(cache.CheckInvariants());
  if (param.kind == EvictionPolicyKind::kArc) {
    // The trace must actually have exercised ghost-hit adaptation.
    EXPECT_TRUE(arc_p_moved) << "ARC target_t1 never adapted; trace too tame";
  }
}

// A denser unlink-heavy trace: RemoveFile interleaved with inserts, the
// create/delete pattern where the old full-table scan was hottest.
TEST_P(CacheDifferential, RemoveFileLockstep) {
  const TraceParam param = GetParam();
  PageCache cache(param.capacity, param.kind);
  reference::ReferencePageCache oracle(param.capacity, param.kind);
  Rng rng(param.seed + 99);
  for (int step = 0; step < 3000; ++step) {
    const PageKey key{1 + rng.NextBelow(3), rng.NextBelow(param.capacity * 2)};
    if (rng.NextDouble() < 0.9) {
      if (!cache.Contains(key)) {
        const PageCache::EvictedBatch evicted = cache.Insert(key, BlockFor(key), false);
        const auto expected = oracle.Insert(key, BlockFor(key), false);
        ASSERT_EQ(evicted.size(), expected.size()) << "step " << step;
        for (uint32_t i = 0; i < evicted.size(); ++i) {
          ASSERT_TRUE(EvictedEqual(evicted[i], expected[i])) << "step " << step;
        }
      } else {
        oracle.Lookup(key);
        cache.Lookup(key);
      }
    } else {
      const InodeId ino = 1 + rng.NextBelow(3);
      cache.RemoveFile(ino);
      oracle.RemoveFile(ino);
    }
    ASSERT_EQ(cache.size(), oracle.size()) << "step " << step;
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Traces, CacheDifferential,
    ::testing::Values(TraceParam{EvictionPolicyKind::kLru, 64, 1},
                      TraceParam{EvictionPolicyKind::kLru, 4, 2},
                      TraceParam{EvictionPolicyKind::kClock, 64, 1},
                      TraceParam{EvictionPolicyKind::kClock, 4, 2},
                      TraceParam{EvictionPolicyKind::kTwoQueue, 64, 1},
                      TraceParam{EvictionPolicyKind::kTwoQueue, 4, 2},
                      TraceParam{EvictionPolicyKind::kArc, 64, 1},
                      TraceParam{EvictionPolicyKind::kArc, 4, 2},
                      TraceParam{EvictionPolicyKind::kArc, 48, 3}),
    ParamName);

}  // namespace
}  // namespace fsbench
