#include "src/core/comparison.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

ExperimentResult MakeResult(const std::vector<double>& throughputs,
                            const std::vector<Nanos>& latencies = {}) {
  ExperimentResult result;
  for (double t : throughputs) {
    RunResult run;
    run.ok = true;
    run.ops_per_second = t;
    for (Nanos latency : latencies) {
      run.histogram.Add(latency);
      result.merged_histogram.Add(latency);
    }
    result.runs.push_back(std::move(run));
  }
  result.throughput = Summarize(throughputs);
  return result;
}

TEST(ComparisonTest, IdenticalSystemsTie) {
  const ExperimentResult a = MakeResult({100.0, 101.0, 99.0, 100.5, 99.5});
  const ComparisonReport report = CompareThroughput("ext2", a, "ext3", a);
  EXPECT_EQ(report.verdict, "tie");
  EXPECT_FALSE(report.welch.Significant());
}

TEST(ComparisonTest, ClearWinnerIsNamed) {
  const ExperimentResult fast = MakeResult({1000.0, 1010.0, 990.0, 1005.0, 995.0});
  const ExperimentResult slow = MakeResult({100.0, 101.0, 99.0, 100.5, 99.5});
  const ComparisonReport report = CompareThroughput("xfs", fast, "ext2", slow);
  EXPECT_EQ(report.verdict, "xfs");
  const ComparisonReport reverse = CompareThroughput("ext2", slow, "xfs", fast);
  EXPECT_EQ(reverse.verdict, "xfs");
}

TEST(ComparisonTest, BimodalLatencyGetsCaveat) {
  std::vector<Nanos> bimodal;
  for (int i = 0; i < 50; ++i) {
    bimodal.push_back(4100);
    bimodal.push_back(9'000'000);
  }
  const ExperimentResult a = MakeResult({1000.0, 1001.0, 999.0}, bimodal);
  const ExperimentResult b = MakeResult({100.0, 101.0, 99.0});
  const ComparisonReport report = CompareThroughput("a", a, "b", b);
  bool found = false;
  for (const std::string& caveat : report.caveats) {
    if (caveat.find("multimodal") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ComparisonTest, HighVarianceGetsFragilityCaveat) {
  // Relative stddev far above 10%: the paper's transition-region signature.
  const ExperimentResult fragile = MakeResult({1000.0, 3000.0, 5000.0, 500.0, 4000.0});
  const ExperimentResult stable = MakeResult({100.0, 101.0, 99.0, 100.0, 100.0});
  const ComparisonReport report = CompareThroughput("fragile", fragile, "stable", stable);
  bool found = false;
  for (const std::string& caveat : report.caveats) {
    if (caveat.find("fragile") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ComparisonTest, SummariesCarriedThrough) {
  const ExperimentResult a = MakeResult({10.0, 12.0, 11.0});
  const ExperimentResult b = MakeResult({20.0, 22.0, 21.0});
  const ComparisonReport report = CompareThroughput("a", a, "b", b);
  EXPECT_NEAR(report.a.mean, 11.0, 1e-9);
  EXPECT_NEAR(report.b.mean, 21.0, 1e-9);
  EXPECT_NEAR(report.welch.mean_diff, -10.0, 1e-9);
}

}  // namespace
}  // namespace fsbench
