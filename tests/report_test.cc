#include "src/core/report.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

SweepRow MakeRow(Bytes size, double mean, double stddev) {
  SweepRow row;
  row.file_size = size;
  row.throughput = Summarize({mean - stddev, mean, mean + stddev});
  row.cache_hit_ratio = 0.5;
  return row;
}

TEST(ReportTest, SweepTableContainsSizesAndNumbers) {
  const std::string out =
      RenderSweepTable({MakeRow(64 * kMiB, 9700.0, 100.0), MakeRow(1 * kGiB, 162.0, 8.0)});
  EXPECT_NE(out.find("64MiB"), std::string::npos);
  EXPECT_NE(out.find("1GiB"), std::string::npos);
  EXPECT_NE(out.find("9700"), std::string::npos);
  EXPECT_NE(out.find("rel stddev %"), std::string::npos);
}

TEST(ReportTest, SweepCsvIsParsableShape) {
  const std::string csv = CsvSweep({MakeRow(64 * kMiB, 100.0, 1.0)});
  // Header + one data line.
  EXPECT_NE(csv.find("file_size_mib,ops_per_sec"), std::string::npos);
  EXPECT_NE(csv.find("\n64,"), std::string::npos);
}

TEST(ReportTest, HistogramShowsBucketsAndModes) {
  LatencyHistogram histogram;
  for (int i = 0; i < 60; ++i) {
    histogram.Add(4100);
  }
  for (int i = 0; i < 40; ++i) {
    histogram.Add(9'000'000);
  }
  const std::string out = RenderHistogram(histogram);
  EXPECT_NE(out.find("4.10us"), std::string::npos);
  EXPECT_NE(out.find("8.39ms"), std::string::npos);
  EXPECT_NE(out.find("modes: 2"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(ReportTest, HistogramCsvHasEveryBucket) {
  LatencyHistogram histogram;
  histogram.Add(100);
  const std::string csv = CsvHistogram(histogram);
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 1 + LatencyHistogram::kBuckets);
}

TEST(ReportTest, TimelinesAlignMultipleSeries) {
  const std::string out =
      RenderTimelines({"ext2", "xfs"}, {{100.0, 200.0, 300.0}, {150.0, 250.0}}, 10 * kSecond);
  EXPECT_NE(out.find("ext2"), std::string::npos);
  EXPECT_NE(out.find("xfs"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);  // third interval at t=30s
  const std::string csv = CsvTimelines({"a"}, {{1.0, 2.0}}, kSecond);
  EXPECT_NE(csv.find("t_seconds,a"), std::string::npos);
}

TEST(ReportTest, HistogramTimelineRendersOneRowPerSlice) {
  std::vector<LatencyHistogram> slices(3);
  slices[0].Add(9'000'000);
  slices[1].Add(9'000'000);
  slices[1].Add(4100);
  slices[2].Add(4100);
  const std::string out = RenderHistogramTimeline(slices, 20 * kSecond);
  int rows = 0;
  size_t pos = 0;
  while ((pos = out.find('|', pos)) != std::string::npos) {
    ++rows;
    ++pos;
  }
  EXPECT_EQ(rows, 1 + 3);  // header + one per slice
}

TEST(ReportTest, TransitionRendering) {
  TransitionResult transition;
  transition.found = true;
  transition.param_lo = 410.0 * 1024 * 1024;
  transition.param_hi = 416.0 * 1024 * 1024;
  transition.metric_lo = 9700.0;
  transition.metric_hi = 1000.0;
  transition.drop_factor = 9.7;
  transition.samples = {{384.0, 9700.0}, {448.0, 1000.0}};
  const std::string out = RenderTransition(transition, "MiB", 1024.0 * 1024.0);
  EXPECT_NE(out.find("410.00"), std::string::npos);
  EXPECT_NE(out.find("9.7x"), std::string::npos);
  TransitionResult none;
  EXPECT_NE(RenderTransition(none, "MiB", 1.0).find("no transition"), std::string::npos);
}

TEST(ReportTest, NanoSuiteGroupsByDimension) {
  NanoResult io;
  io.name = "io.test";
  io.dimension = Dimension::kIo;
  io.value = 1.0;
  io.unit = "x";
  NanoResult cache = io;
  cache.name = "cache.test";
  cache.dimension = Dimension::kCaching;
  const std::string out = RenderNanoSuite({io, cache});
  EXPECT_NE(out.find("I/O"), std::string::npos);
  EXPECT_NE(out.find("Caching"), std::string::npos);
  EXPECT_LT(out.find("io.test"), out.find("cache.test"));
}

TEST(ReportTest, ComparisonShowsVerdictAndCaveats) {
  ComparisonReport report;
  report.name_a = "ext2";
  report.name_b = "xfs";
  report.a = Summarize({100.0, 101.0, 99.0});
  report.b = Summarize({200.0, 202.0, 198.0});
  report.welch = WelchTTest({100.0, 101.0, 99.0}, {200.0, 202.0, 198.0});
  report.verdict = "xfs";
  report.caveats.push_back("something to worry about");
  const std::string out = RenderComparison(report);
  EXPECT_NE(out.find("verdict: xfs"), std::string::npos);
  EXPECT_NE(out.find("caveat: something to worry about"), std::string::npos);
  EXPECT_NE(out.find("Welch t"), std::string::npos);
}

}  // namespace
}  // namespace fsbench
