#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include "src/core/workloads/random_read.h"

namespace fsbench {
namespace {

MachineFactory PaperMachine() {
  return [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
}

SweepMatrixResult SmallSweep() {
  SweepMatrix matrix("file MiB", {32, 64}, "io KiB", {4, 16, 64});
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 1 * kSecond;
  config.prewarm = true;
  return matrix.Run(config, PaperMachine(), [](double file, double io) {
    RandomReadConfig workload_config;
    workload_config.file_size = static_cast<Bytes>(file) * kMiB;
    workload_config.io_size = static_cast<Bytes>(io) * kKiB;
    return std::make_unique<RandomReadWorkload>(workload_config);
  });
}

TEST(SweepMatrixTest, RunsEveryCell) {
  const SweepMatrixResult result = SmallSweep();
  ASSERT_EQ(result.cells.size(), 6u);
  for (const SweepCell& cell : result.cells) {
    EXPECT_TRUE(cell.ok);
    EXPECT_GT(cell.throughput.mean, 0.0);
    EXPECT_EQ(cell.throughput.count, 2u);
  }
}

TEST(SweepMatrixTest, CellsIndexedRowMajor) {
  const SweepMatrixResult result = SmallSweep();
  EXPECT_EQ(result.at(0, 0).row_param, 32.0);
  EXPECT_EQ(result.at(0, 2).col_param, 64.0);
  EXPECT_EQ(result.at(1, 0).row_param, 64.0);
}

TEST(SweepMatrixTest, LargerIoMeansFewerOps) {
  // Per-op cost grows with pages copied: 64 KiB ops must be slower in
  // ops/s than 4 KiB ops on a fully cached file.
  const SweepMatrixResult result = SmallSweep();
  EXPECT_GT(result.at(0, 0).throughput.mean, result.at(0, 2).throughput.mean);
}

TEST(SweepMatrixTest, FailedCellsMarkedNotOk) {
  SweepMatrix matrix("file GiB", {500.0}, "io KiB", {4});  // file > device
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 1 * kSecond;
  const SweepMatrixResult result =
      matrix.Run(config, PaperMachine(), [](double file, double io) {
        RandomReadConfig workload_config;
        workload_config.file_size = static_cast<Bytes>(file) * kGiB;
        workload_config.io_size = static_cast<Bytes>(io) * kKiB;
        return std::make_unique<RandomReadWorkload>(workload_config);
      });
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_NE(RenderSweepMatrix(result).find("FAIL"), std::string::npos);
}

TEST(SweepMatrixTest, RenderShowsParamsAndFragileFlag) {
  SweepMatrixResult result;
  result.row_label = "rows";
  result.col_label = "cols";
  result.row_params = {1.0};
  result.col_params = {2.0};
  SweepCell cell;
  cell.ok = true;
  cell.row_param = 1.0;
  cell.col_param = 2.0;
  cell.throughput = Summarize({100.0, 300.0, 200.0});  // very noisy
  result.cells.push_back(cell);
  const std::string out = RenderSweepMatrix(result, 10.0);
  EXPECT_NE(out.find("rows \\ cols"), std::string::npos);
  EXPECT_NE(out.find("200!"), std::string::npos);  // flagged fragile
  const std::string csv = CsvSweepMatrix(result);
  EXPECT_NE(csv.find("rows,cols"), std::string::npos);
  EXPECT_NE(csv.find("1.00,2.00,200.00"), std::string::npos);
}

}  // namespace
}  // namespace fsbench
