// Differential + determinism tests for the event-driven multi-thread
// simulation core (src/core/sim_engine.h).
//
// OldSingleThreadLoop below is the pre-refactor experiment step loop, kept
// verbatim as an oracle (the same role ReferenceVfs plays in
// tests/vfs_pipeline_differential_test.cc): one workload driven directly on
// the machine's base clock, `while (clock.now() < end)`, record, advance
// framework overhead. The engine replaces that with per-thread clock
// cursors dispatched smallest-local-time-first through Machine::BindCursor —
// and at N=1 that machinery must be a proven no-op: clock, VfsStats,
// DiskStats, scheduler stats and cache state byte-identical on randomized
// traces across ext2/ext3/xfs.
//
// The remaining tests pin down the multi-thread semantics themselves:
// determinism (same seed => bit-identical results, N=4 run twice) and
// contention visibility (disk-bound threads queue against the shared device
// timeline: real queue depths > 1 and sub-linear aggregate scaling).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/sim_engine.h"
#include "src/core/workloads/compile_like.h"
#include "src/core/workloads/postmark_like.h"
#include "src/sim/machine.h"

namespace fsbench {
namespace {

// --- randomized trace workload ---------------------------------------------

// One random namespace/data operation per Step, drawn from ctx.rng: the same
// mix the VFS pipeline differential uses, tolerant of expected errors
// (ENOENT probes, unlinking open files) so traces can run for thousands of
// steps. All state lives in the instance, so two instances fed the same rng
// stream issue identical call sequences.
class RandomTraceWorkload : public Workload {
 public:
  const char* name() const override { return "random-trace"; }

  FsStatus Setup(WorkloadContext& ctx) override {
    for (const char* dir : {"/d0", "/d1", "/d2", "/d0/sub"}) {
      const FsStatus status = ctx.vfs->Mkdir(dir);
      if (status != FsStatus::kOk && status != FsStatus::kExists) {
        return status;
      }
      dirs_.emplace_back(dir);
    }
    for (int i = 0; i < 19; ++i) {
      pool_.push_back(dirs_[i % dirs_.size()] + "/f" + std::to_string(i));
    }
    pool_.push_back("/top");
    return FsStatus::kOk;
  }

  FsResult<OpType> Step(WorkloadContext& ctx) override {
    Vfs& vfs = *ctx.vfs;
    const std::string& path = pool_[ctx.rng.NextBelow(pool_.size())];
    const uint64_t op = ctx.rng.NextBelow(100);
    if (op < 18) {
      const bool create = ctx.rng.NextBelow(2) == 0;
      const FsResult<int> fd = vfs.Open(path, create);
      if (fd.ok()) {
        fds_.push_back(fd.value);
      }
      return FsResult<OpType>::Ok(OpType::kOpen);
    }
    if (op < 36 && !fds_.empty()) {
      const int fd = fds_[ctx.rng.NextBelow(fds_.size())];
      const Bytes offset = ctx.rng.NextBelow(40) * 1024;
      const Bytes length = (1 + ctx.rng.NextBelow(24)) * 1024;
      const FsResult<Bytes> read = vfs.Read(fd, offset, length);
      if (read.status == FsStatus::kIoError) {
        return FsResult<OpType>::Error(read.status);
      }
      return FsResult<OpType>::Ok(OpType::kRead);
    }
    if (op < 54 && !fds_.empty()) {
      const int fd = fds_[ctx.rng.NextBelow(fds_.size())];
      const Bytes offset = ctx.rng.NextBelow(40) * 1024;
      const Bytes length = (1 + ctx.rng.NextBelow(24)) * 1024;
      const FsResult<Bytes> written = vfs.Write(fd, offset, length);
      if (written.status == FsStatus::kIoError) {
        return FsResult<OpType>::Error(written.status);
      }
      return FsResult<OpType>::Ok(OpType::kWrite);
    }
    if (op < 62) {
      (void)vfs.Stat(path);
      return FsResult<OpType>::Ok(OpType::kStat);
    }
    if (op < 68) {
      (void)vfs.CreateFile(path);
      return FsResult<OpType>::Ok(OpType::kCreate);
    }
    if (op < 76) {
      (void)vfs.Unlink(path);
      return FsResult<OpType>::Ok(OpType::kUnlink);
    }
    if (op < 80) {
      (void)vfs.Truncate(path, ctx.rng.NextBelow(30) * 1024);
      return FsResult<OpType>::Ok(OpType::kOther);
    }
    if (op < 84) {
      (void)vfs.ReadDir(dirs_[ctx.rng.NextBelow(dirs_.size())]);
      return FsResult<OpType>::Ok(OpType::kReadDir);
    }
    if (op < 88 && !fds_.empty()) {
      (void)vfs.Fsync(fds_[ctx.rng.NextBelow(fds_.size())]);
      return FsResult<OpType>::Ok(OpType::kFsync);
    }
    if (op < 92 && !fds_.empty()) {
      const size_t idx = ctx.rng.NextBelow(fds_.size());
      (void)vfs.Close(fds_[idx]);
      fds_[idx] = fds_.back();
      fds_.pop_back();
      return FsResult<OpType>::Ok(OpType::kClose);
    }
    if (op < 96) {
      (void)vfs.Stat(path + "/nope");
      return FsResult<OpType>::Ok(OpType::kStat);
    }
    vfs.SyncAll();
    return FsResult<OpType>::Ok(OpType::kOther);
  }

 private:
  std::vector<std::string> dirs_;
  std::vector<std::string> pool_;
  std::vector<int> fds_;
};

// Small cache (1 MiB, jitter-free) so traces exercise eviction, writeback
// and demand misses on every file system.
MachineFactory SmallCacheMachine(FsKind kind) {
  return [kind](uint64_t seed) {
    MachineConfig config;
    config.ram = 103 * kMiB;
    config.os_reserved = 102 * kMiB;
    config.os_reserve_jitter = 0;
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

// --- the pre-refactor single-threaded loop, retained as the oracle ----------

struct OldLoopResult {
  bool ok = false;
  uint64_t ops = 0;
  Nanos measure_from = 0;
};

OldLoopResult OldSingleThreadLoop(Machine& machine, Workload& workload, uint64_t ctx_seed,
                                  Nanos duration, Nanos framework_overhead, uint64_t max_ops,
                                  MetricsCollector* metrics) {
  OldLoopResult result;
  WorkloadContext ctx(&machine, ctx_seed);
  if (workload.Setup(ctx) != FsStatus::kOk) {
    return result;
  }
  VirtualClock& clock = machine.clock();
  const Nanos measure_from = clock.now();
  const Nanos end = measure_from + duration;
  result.measure_from = measure_from;
  const double cpu_multiplier = machine.vfs().config().cpu_cost_multiplier;
  const auto overhead =
      static_cast<Nanos>(static_cast<double>(framework_overhead) * cpu_multiplier);
  uint64_t ops = 0;
  while (clock.now() < end) {
    if (max_ops != 0 && ops >= max_ops) {
      break;
    }
    const Nanos start = clock.now();
    const FsResult<OpType> op = workload.Step(ctx);
    if (!op.ok()) {
      return result;
    }
    metrics->Record(op.value, start, clock.now() - start);
    clock.Advance(overhead);
    ++ops;
  }
  result.ops = ops;
  result.ok = true;
  return result;
}

void ExpectVfsStatsEqual(const VfsStats& a, const VfsStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.creates, b.creates);
  EXPECT_EQ(a.unlinks, b.unlinks);
  EXPECT_EQ(a.stats_calls, b.stats_calls);
  EXPECT_EQ(a.opens, b.opens);
  EXPECT_EQ(a.fsyncs, b.fsyncs);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.data_page_hits, b.data_page_hits);
  EXPECT_EQ(a.data_page_misses, b.data_page_misses);
  EXPECT_EQ(a.demand_requests, b.demand_requests);
  EXPECT_EQ(a.readahead_pages, b.readahead_pages);
  EXPECT_EQ(a.writeback_pages, b.writeback_pages);
  EXPECT_EQ(a.io_errors, b.io_errors);
}

void ExpectDiskStatsEqual(const DiskStats& a, const DiskStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.sectors_read, b.sectors_read);
  EXPECT_EQ(a.sectors_written, b.sectors_written);
  EXPECT_EQ(a.seeks, b.seeks);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.sequential_hits, b.sequential_hits);
  EXPECT_EQ(a.total_service_time, b.total_service_time);
  EXPECT_EQ(a.total_seek_time, b.total_seek_time);
}

class EngineEquivalence : public ::testing::TestWithParam<std::tuple<FsKind, uint64_t>> {};

TEST_P(EngineEquivalence, SingleThreadEngineMatchesOldLoop) {
  const auto [kind, seed] = GetParam();
  constexpr Nanos kDuration = 40 * kSecond;
  constexpr Nanos kOverhead = 99 * kMicrosecond;
  constexpr uint64_t kMaxOps = 3000;
  const uint64_t ctx_seed = seed ^ 0x9e3779b97f4a7c15ULL;

  const MachineFactory factory = SmallCacheMachine(kind);
  MetricsConfig metrics_config;

  // Oracle: the old loop, directly on the base clock.
  std::unique_ptr<Machine> old_machine = factory(seed);
  RandomTraceWorkload old_workload;
  MetricsCollector old_metrics(metrics_config);
  const OldLoopResult old_result = OldSingleThreadLoop(
      *old_machine, old_workload, ctx_seed, kDuration, kOverhead, kMaxOps, &old_metrics);
  ASSERT_TRUE(old_result.ok);
  ASSERT_GT(old_result.ops, 0u);

  // Engine at N=1 on an identically seeded twin stack.
  std::unique_ptr<Machine> new_machine = factory(seed);
  SimEngineConfig engine_config;
  engine_config.duration = kDuration;
  engine_config.framework_overhead = kOverhead;
  engine_config.max_ops = kMaxOps;
  SimEngine engine(new_machine.get(), engine_config);
  engine.AddThread(std::make_unique<RandomTraceWorkload>(), ctx_seed);
  ASSERT_EQ(engine.Prepare(), FsStatus::kOk);
  MetricsCollector new_metrics(metrics_config);
  const SimEngineResult engine_result = engine.Run(&new_metrics);
  ASSERT_TRUE(engine_result.ok);

  // Clock identity — the strongest check: any divergence in charging order,
  // queueing or commit timing lands here.
  EXPECT_EQ(new_machine->clock().now(), old_machine->clock().now());
  EXPECT_EQ(engine_result.total_ops, old_result.ops);

  ExpectVfsStatsEqual(new_machine->vfs().stats(), old_machine->vfs().stats());
  ExpectDiskStatsEqual(new_machine->disk().stats(), old_machine->disk().stats());

  const IoSchedulerStats& ns = new_machine->scheduler().stats();
  const IoSchedulerStats& os = old_machine->scheduler().stats();
  EXPECT_EQ(ns.sync_requests, os.sync_requests);
  EXPECT_EQ(ns.async_requests, os.async_requests);
  EXPECT_EQ(ns.async_serviced, os.async_serviced);
  EXPECT_EQ(ns.total_sync_wait, os.total_sync_wait);
  EXPECT_EQ(ns.total_sync_queue_delay, os.total_sync_queue_delay);
  EXPECT_EQ(ns.max_queue_depth, os.max_queue_depth);

  // Cache state identity.
  const PageCache& nc = new_machine->vfs().cache();
  const PageCache& oc = old_machine->vfs().cache();
  EXPECT_EQ(nc.size(), oc.size());
  EXPECT_EQ(nc.dirty_count(), oc.dirty_count());
  EXPECT_EQ(nc.stats().hits, oc.stats().hits);
  EXPECT_EQ(nc.stats().misses, oc.stats().misses);
  EXPECT_EQ(nc.stats().evictions, oc.stats().evictions);

  // Metric aggregation identity (recording order is the dispatch order).
  EXPECT_EQ(new_metrics.total_ops(), old_metrics.total_ops());
  EXPECT_EQ(new_metrics.latency().count(), old_metrics.latency().count());
  EXPECT_EQ(new_metrics.latency().mean(), old_metrics.latency().mean());
  EXPECT_EQ(new_metrics.latency().min(), old_metrics.latency().min());
  EXPECT_EQ(new_metrics.latency().max(), old_metrics.latency().max());
  EXPECT_EQ(new_metrics.latency().sum(), old_metrics.latency().sum());

  std::string error;
  EXPECT_TRUE(new_machine->fs().CheckConsistency(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Traces, EngineEquivalence,
                         ::testing::Values(std::make_tuple(FsKind::kExt2, 11ULL),
                                           std::make_tuple(FsKind::kExt2, 12ULL),
                                           std::make_tuple(FsKind::kExt3, 13ULL),
                                           std::make_tuple(FsKind::kExt3, 14ULL),
                                           std::make_tuple(FsKind::kXfs, 15ULL),
                                           std::make_tuple(FsKind::kXfs, 16ULL)),
                         [](const auto& info) {
                           return std::string(FsKindName(std::get<0>(info.param))) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(MtEngineTest, SingleThreadEngineMatchesOldLoopOnCpuBoundWorkload) {
  // compile_like burns most of its time as a direct cursor Advance, not
  // through the VFS: this pins the cursor plumbing for workloads that
  // charge time themselves. (A leak onto the base clock would let the
  // engine's cursor-terminated loop run vastly more ops than the oracle.)
  constexpr Nanos kDuration = 20 * kSecond;
  constexpr Nanos kOverhead = 99 * kMicrosecond;
  constexpr uint64_t kMaxOps = 2000;
  const uint64_t seed = 21;
  const uint64_t ctx_seed = seed ^ 0x9e3779b97f4a7c15ULL;
  CompileLikeConfig compile;
  compile.source_files = 60;
  const MachineFactory factory = SmallCacheMachine(FsKind::kExt2);
  MetricsConfig metrics_config;

  std::unique_ptr<Machine> old_machine = factory(seed);
  CompileLikeWorkload old_workload(compile);
  MetricsCollector old_metrics(metrics_config);
  const OldLoopResult old_result = OldSingleThreadLoop(
      *old_machine, old_workload, ctx_seed, kDuration, kOverhead, kMaxOps, &old_metrics);
  ASSERT_TRUE(old_result.ok);
  ASSERT_GT(old_result.ops, 0u);

  std::unique_ptr<Machine> new_machine = factory(seed);
  SimEngineConfig engine_config;
  engine_config.duration = kDuration;
  engine_config.framework_overhead = kOverhead;
  engine_config.max_ops = kMaxOps;
  SimEngine engine(new_machine.get(), engine_config);
  engine.AddThread(std::make_unique<CompileLikeWorkload>(compile), ctx_seed);
  ASSERT_EQ(engine.Prepare(), FsStatus::kOk);
  MetricsCollector new_metrics(metrics_config);
  const SimEngineResult engine_result = engine.Run(&new_metrics);
  ASSERT_TRUE(engine_result.ok);

  EXPECT_EQ(new_machine->clock().now(), old_machine->clock().now());
  EXPECT_EQ(engine_result.total_ops, old_result.ops);
  EXPECT_EQ(new_metrics.latency().mean(), old_metrics.latency().mean());
  ExpectVfsStatsEqual(new_machine->vfs().stats(), old_machine->vfs().stats());
  ExpectDiskStatsEqual(new_machine->disk().stats(), old_machine->disk().stats());
}

// --- multi-thread semantics -------------------------------------------------

MachineFactory TinyCachePaperMachine() {
  return [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.ram = 120 * kMiB;  // ~10-18 MiB page cache: disk-bound postmark
    config.seed = seed;
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
}

ExperimentResult RunMtPostmark(int threads, Nanos duration) {
  ExperimentConfig config;
  config.runs = 2;
  config.duration = duration;
  config.threads = threads;
  config.max_ops = 0;
  Experiment experiment(config);
  PostmarkConfig pm;
  pm.initial_files = 300;
  pm.min_size = 512;
  pm.max_size = 48 * kKiB;
  return experiment.Run(TinyCachePaperMachine(), MtPostmarkFactory(pm));
}

TEST(MtEngineTest, FourThreadRunIsDeterministic) {
  const ExperimentResult a = RunMtPostmark(4, 2 * kSecond);
  const ExperimentResult b = RunMtPostmark(4, 2 * kSecond);
  ASSERT_TRUE(a.AllOk());
  ASSERT_TRUE(b.AllOk());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t run = 0; run < a.runs.size(); ++run) {
    const RunResult& ra = a.runs[run];
    const RunResult& rb = b.runs[run];
    EXPECT_EQ(ra.ops, rb.ops);
    EXPECT_EQ(ra.measured_duration, rb.measured_duration);
    EXPECT_EQ(ra.ops_per_second, rb.ops_per_second);  // exact: same bits
    EXPECT_EQ(ra.latency.count(), rb.latency.count());
    EXPECT_EQ(ra.latency.mean(), rb.latency.mean());
    EXPECT_EQ(ra.latency.sum(), rb.latency.sum());
    EXPECT_EQ(ra.per_thread_ops, rb.per_thread_ops);
    EXPECT_EQ(ra.throughput_series, rb.throughput_series);
    EXPECT_EQ(ra.vfs_stats.data_page_hits, rb.vfs_stats.data_page_hits);
    EXPECT_EQ(ra.vfs_stats.data_page_misses, rb.vfs_stats.data_page_misses);
    EXPECT_EQ(ra.disk_stats.total_service_time, rb.disk_stats.total_service_time);
    EXPECT_EQ(ra.scheduler_stats.max_queue_depth, rb.scheduler_stats.max_queue_depth);
    EXPECT_EQ(ra.scheduler_stats.total_sync_wait, rb.scheduler_stats.total_sync_wait);
  }
  EXPECT_EQ(a.throughput.mean, b.throughput.mean);
  EXPECT_EQ(a.mean_latency_ns.mean, b.mean_latency_ns.mean);
}

TEST(MtEngineTest, DiskBoundThreadsContendOnTheDeviceTimeline) {
  const ExperimentResult one = RunMtPostmark(1, 2 * kSecond);
  const ExperimentResult four = RunMtPostmark(4, 2 * kSecond);
  ASSERT_TRUE(one.AllOk());
  ASSERT_TRUE(four.AllOk());

  // Every thread did work.
  const RunResult& rep = four.representative();
  ASSERT_EQ(rep.per_thread_ops.size(), 4u);
  for (uint64_t ops : rep.per_thread_ops) {
    EXPECT_GT(ops, 0u);
  }

  // Contention is visible: the shared device's queue exceeds one request,
  // sync requests pay queueing delay, and aggregate throughput scales
  // sub-linearly in thread count.
  EXPECT_GT(rep.scheduler_stats.max_queue_depth, 1u);
  EXPECT_GT(rep.scheduler_stats.total_sync_queue_delay, 0);
  EXPECT_LT(four.throughput.mean, 4.0 * one.throughput.mean);
}

MachineFactory TinyCacheSsdMachine() {
  return [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.ram = 120 * kMiB;  // ~10-18 MiB page cache: device-bound postmark
    config.device = DeviceKind::kSsd;
    config.seed = seed;
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
}

TEST(MtEngineTest, SsdPostmarkThroughputMonotoneInThreads) {
  // The multi-queue point of the SSD model: more closed-loop threads means
  // more channels busy at once, so aggregate postmark throughput must never
  // DROP as threads are added (the HDD's shared head makes it collapse
  // instead — DiskBoundThreadsContendOnTheDeviceTimeline above). Exact
  // monotonicity, no tolerance: the simulator is deterministic. The
  // total file population is held constant (split across threads) so the
  // aggregate working set — and thus the cache hit rate — does not shift
  // with the thread count; otherwise the comparison measures the cache
  // cliff, not the channels. The ~50 MiB total exceeds the page cache, so
  // every point is device-bound.
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 1 * kSecond;
  config.max_ops = 0;
  PostmarkConfig pm;
  pm.min_size = 512;
  pm.max_size = 64 * kKiB;
  double last = 0.0;
  for (int threads : {1, 2, 4, 8, 16}) {
    config.threads = threads;
    pm.initial_files = 1600 / threads;  // per-thread share of a fixed total
    const ExperimentResult result =
        Experiment(config).Run(TinyCacheSsdMachine(), MtPostmarkFactory(pm));
    ASSERT_TRUE(result.AllOk()) << threads << " threads";
    EXPECT_GE(result.throughput.mean, last) << threads << " threads";
    last = result.throughput.mean;
  }
}

TEST(MtEngineTest, CursorsStayOrderedAndCoverTheWindow) {
  // White-box engine check: after a run every cursor sits at or past the
  // measurement end (no thread starved), and the base clock advanced to the
  // furthest cursor.
  std::unique_ptr<Machine> machine = TinyCachePaperMachine()(7);
  SimEngineConfig config;
  config.duration = kSecond;
  config.framework_overhead = 99 * kMicrosecond;
  SimEngine engine(machine.get(), config);
  PostmarkConfig pm;
  pm.initial_files = 50;
  const ThreadedWorkloadFactory factory = MtPostmarkFactory(pm);
  for (int t = 0; t < 3; ++t) {
    engine.AddThread(factory(t), 1000 + t);
  }
  ASSERT_EQ(engine.Prepare(), FsStatus::kOk);
  const SimEngineResult result = engine.Run(nullptr);
  ASSERT_TRUE(result.ok);
  const Nanos end = result.measure_from + config.duration;
  Nanos max_cursor = 0;
  for (size_t t = 0; t < engine.thread_count(); ++t) {
    EXPECT_GE(engine.cursor(t).now(), end) << "thread " << t;
    max_cursor = std::max(max_cursor, engine.cursor(t).now());
  }
  EXPECT_EQ(machine->clock().now(), max_cursor);
}

}  // namespace
}  // namespace fsbench
