#include "src/sim/io_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/clock.h"
#include "src/sim/disk_model.h"

namespace fsbench {
namespace {

struct SchedulerFixture {
  DiskParams params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;

  explicit SchedulerFixture(SchedulerKind kind = SchedulerKind::kElevator)
      : disk(params, 1), scheduler(&disk, kind) {}

  std::optional<Nanos> Sync(uint64_t lba, uint32_t sectors = 8) {
    return scheduler.SubmitSync({IoKind::kRead, lba, sectors}, clock.now());
  }
  void Async(uint64_t lba, uint32_t sectors = 8, IoKind kind = IoKind::kRead) {
    scheduler.SubmitAsync({kind, lba, sectors}, clock.now());
  }
  Nanos Drain() { return scheduler.Drain(clock.now()); }
};

TEST(IoSchedulerTest, SyncCompletionIsInTheFuture) {
  SchedulerFixture f;
  const auto done = f.Sync(1000);
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(*done, f.clock.now());
  EXPECT_EQ(f.scheduler.busy_until(), *done);
}

TEST(IoSchedulerTest, BackToBackSyncRequestsQueue) {
  SchedulerFixture f;
  const auto first = f.Sync(1000);
  ASSERT_TRUE(first.has_value());
  // Without advancing the clock, the second request waits for the first.
  const auto second = f.Sync(5'000'000);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(*second, *first);
}

TEST(IoSchedulerTest, SyncFromTrailingThreadQueuesBehindBusyDevice) {
  // Two simulated threads with independent cursors sharing the device: the
  // thread whose local time trails the other's completed I/O still pays the
  // busy-until queueing delay — the multi-thread contention mechanism.
  SchedulerFixture f;
  const auto first = f.scheduler.SubmitSync({IoKind::kRead, 1000, 8}, /*now=*/0);
  ASSERT_TRUE(first.has_value());
  const Nanos trailing_now = *first / 2;
  const auto second = f.scheduler.SubmitSync({IoKind::kRead, 200'000'000, 8}, trailing_now);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(*second, *first);
  // The second request's queue delay is at least the remaining busy window.
  EXPECT_GE(f.scheduler.stats().total_sync_queue_delay, *first - trailing_now);
}

TEST(IoSchedulerTest, AsyncDoesNotBlockButOccupiesDevice) {
  SchedulerFixture f;
  f.Async(1000);
  EXPECT_EQ(f.scheduler.pending_async(), 1u);
  // The async request is serviced before the sync one.
  const auto done = f.Sync(4000);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(f.scheduler.pending_async(), 0u);
  EXPECT_EQ(f.scheduler.stats().async_serviced, 1u);
  EXPECT_EQ(f.disk.stats().reads, 2u);
}

TEST(IoSchedulerTest, DrainServicesEverythingAndReturnsIdleTime) {
  SchedulerFixture f;
  for (int i = 0; i < 5; ++i) {
    f.Async(static_cast<uint64_t>(i) * 100000, 8, IoKind::kWrite);
  }
  const Nanos idle = f.Drain();
  EXPECT_EQ(f.scheduler.pending_async(), 0u);
  EXPECT_GE(idle, f.clock.now());
  EXPECT_EQ(f.disk.stats().writes, 5u);
}

TEST(IoSchedulerTest, DrainIsIdempotentUnderInterleavedSubmissions) {
  SchedulerFixture f;
  f.Async(100'000, 8, IoKind::kWrite);
  f.Async(500'000, 8, IoKind::kWrite);
  const Nanos first = f.Drain();
  const uint64_t writes_after_first = f.disk.stats().writes;
  // A second drain with nothing pending must not touch the device and must
  // report the same idle time.
  const Nanos second = f.Drain();
  EXPECT_EQ(second, first);
  EXPECT_EQ(f.disk.stats().writes, writes_after_first);
  // Interleave more submissions; drain services exactly those.
  f.Async(200'000, 8, IoKind::kWrite);
  const Nanos third = f.Drain();
  EXPECT_GT(third, first);
  EXPECT_EQ(f.disk.stats().writes, writes_after_first + 1);
  EXPECT_EQ(f.Drain(), third);
}

TEST(IoSchedulerTest, ElevatorServicesPendingInLbaOrder) {
  // Descending submissions; the elevator should reorder ascending, which
  // yields strictly less total seek time than FIFO on the same pattern.
  SchedulerFixture elevator(SchedulerKind::kElevator);
  SchedulerFixture fifo(SchedulerKind::kFifo);
  const std::vector<uint64_t> lbas{400'000'000, 100'000'000, 300'000'000, 200'000'000,
                                   350'000'000};
  for (uint64_t lba : lbas) {
    elevator.Async(lba);
    fifo.Async(lba);
  }
  elevator.Drain();
  fifo.Drain();
  EXPECT_LT(elevator.disk.stats().total_seek_time, fifo.disk.stats().total_seek_time);
}

TEST(IoSchedulerTest, ElevatorSweepsAscendingFromHeadThenWraps) {
  // C-SCAN across the wrap-around: after a sync request parks the head at a
  // middle LBA, queued requests ahead of the head are serviced in ascending
  // order first, then the sweep wraps to the lowest queued LBA.
  SchedulerFixture f;
  std::vector<uint64_t> log;
  f.scheduler.set_dispatch_log(&log);
  ASSERT_TRUE(f.Sync(500'000).has_value());  // head now just past 500'000
  f.Async(100);
  f.Async(600'000);
  f.Async(300'000);
  f.Async(900'000);
  f.Async(200);
  f.Drain();
  const std::vector<uint64_t> expected{500'000, 600'000, 900'000, 100, 200, 300'000};
  EXPECT_EQ(log, expected);
}

TEST(IoSchedulerTest, FifoServicesInSubmissionOrder) {
  SchedulerFixture f(SchedulerKind::kFifo);
  std::vector<uint64_t> log;
  f.scheduler.set_dispatch_log(&log);
  f.Async(900'000);
  f.Async(100);
  f.Async(500'000);
  f.Drain();
  const std::vector<uint64_t> expected{900'000, 100, 500'000};
  EXPECT_EQ(log, expected);
}

TEST(IoSchedulerTest, AsyncServiceNeverStartsBeforeSubmission) {
  // Causality across thread cursors: an async request submitted by a thread
  // at t=100ms cannot occupy the device earlier just because a trailing
  // thread (cursor at t=0) triggers the service pass.
  SchedulerFixture f;
  const Nanos ahead = FromMillis(100.0);
  f.scheduler.SubmitAsync({IoKind::kWrite, 100'000, 8}, /*now=*/ahead);
  const auto done = f.scheduler.SubmitSync({IoKind::kRead, 900'000, 8}, /*now=*/0);
  ASSERT_TRUE(done.has_value());
  // The sync request queued behind an async service that started >= 100ms.
  EXPECT_GT(*done, ahead);
  EXPECT_GE(f.scheduler.stats().total_sync_queue_delay, ahead);
}

TEST(IoSchedulerTest, SyncWaitAccountsQueueingDelay) {
  SchedulerFixture f;
  f.Async(100'000'000);
  f.Async(300'000'000);
  const auto done = f.Sync(200'000'000);
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(f.scheduler.stats().total_sync_wait, 0);
  // The sync request waited out both async services: pure queueing delay is
  // positive and strictly less than wait (which adds its own service).
  EXPECT_GT(f.scheduler.stats().total_sync_queue_delay, 0);
  EXPECT_LT(f.scheduler.stats().total_sync_queue_delay, f.scheduler.stats().total_sync_wait);
  EXPECT_EQ(f.scheduler.stats().sync_requests, 1u);
  EXPECT_EQ(f.scheduler.stats().async_requests, 2u);
}

TEST(IoSchedulerTest, ClockAdvanceReleasesTheDevice) {
  SchedulerFixture f;
  const auto first = f.Sync(1000);
  ASSERT_TRUE(first.has_value());
  f.clock.AdvanceTo(*first + kSecond);
  const auto second = f.Sync(1008);
  ASSERT_TRUE(second.has_value());
  // The device was idle: completion is relative to now, not to busy_until.
  EXPECT_LT(*second - f.clock.now(), FromMillis(20.0));
}

TEST(IoSchedulerTest, InjectedErrorPropagatesFromSync) {
  SchedulerFixture f;
  f.disk.InjectError(1000);
  EXPECT_FALSE(f.Sync(1000).has_value());
}

TEST(IoSchedulerTest, AsyncErrorsAreCountedNotFatal) {
  SchedulerFixture f;
  f.disk.InjectError(1000);
  f.Async(1000);
  f.Async(5000);
  f.Drain();
  EXPECT_EQ(f.scheduler.stats().async_errors, 1u);
  EXPECT_EQ(f.scheduler.stats().async_serviced, 2u);
}

TEST(IoSchedulerTest, MaxQueueDepthTracked) {
  SchedulerFixture f;
  for (int i = 0; i < 7; ++i) {
    f.Async(static_cast<uint64_t>(i) * 1000);
  }
  EXPECT_EQ(f.scheduler.stats().max_queue_depth, 7u);
}

TEST(IoSchedulerTest, MaxQueueDepthCountsSyncAndInflightRequests) {
  // Regression: the old accounting only tracked the async backlog, so a
  // sync request arriving behind queued async — or behind still-in-flight
  // requests — understated the device's real queue.
  SchedulerFixture f;
  f.Async(100'000'000);
  f.Async(300'000'000);
  // Depth at this instant: 2 queued async + the arriving sync = 3.
  ASSERT_TRUE(f.Sync(200'000'000).has_value());
  EXPECT_EQ(f.scheduler.stats().max_queue_depth, 3u);
  // Without advancing the clock all three are still in flight, so a second
  // sync observes depth 4.
  ASSERT_TRUE(f.Sync(250'000'000).has_value());
  EXPECT_EQ(f.scheduler.stats().max_queue_depth, 4u);
  EXPECT_EQ(f.scheduler.inflight(), 4u);
  // Once the clock passes busy_until the queue empties: a fresh sync
  // observes only itself.
  f.clock.AdvanceTo(f.scheduler.busy_until());
  ASSERT_TRUE(f.Sync(260'000'000).has_value());
  EXPECT_EQ(f.scheduler.inflight(), 1u);
  EXPECT_EQ(f.scheduler.stats().max_queue_depth, 4u);
}

}  // namespace
}  // namespace fsbench
