#include "src/sim/io_scheduler.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

struct SchedulerFixture {
  DiskParams params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;

  explicit SchedulerFixture(SchedulerKind kind = SchedulerKind::kElevator)
      : disk(params, 1), scheduler(&disk, &clock, kind) {}
};

TEST(IoSchedulerTest, SyncCompletionIsInTheFuture) {
  SchedulerFixture f;
  const auto done = f.scheduler.SubmitSync({IoKind::kRead, 1000, 8});
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(*done, f.clock.now());
  EXPECT_EQ(f.scheduler.busy_until(), *done);
}

TEST(IoSchedulerTest, BackToBackSyncRequestsQueue) {
  SchedulerFixture f;
  const auto first = f.scheduler.SubmitSync({IoKind::kRead, 1000, 8});
  ASSERT_TRUE(first.has_value());
  // Without advancing the clock, the second request waits for the first.
  const auto second = f.scheduler.SubmitSync({IoKind::kRead, 5'000'000, 8});
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(*second, *first);
}

TEST(IoSchedulerTest, AsyncDoesNotBlockButOccupiesDevice) {
  SchedulerFixture f;
  f.scheduler.SubmitAsync({IoKind::kRead, 1000, 8});
  EXPECT_EQ(f.scheduler.pending_async(), 1u);
  // The async request is serviced before the sync one.
  const auto done = f.scheduler.SubmitSync({IoKind::kRead, 4000, 8});
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(f.scheduler.pending_async(), 0u);
  EXPECT_EQ(f.scheduler.stats().async_serviced, 1u);
  EXPECT_EQ(f.disk.stats().reads, 2u);
}

TEST(IoSchedulerTest, DrainServicesEverythingAndReturnsIdleTime) {
  SchedulerFixture f;
  for (int i = 0; i < 5; ++i) {
    f.scheduler.SubmitAsync({IoKind::kWrite, static_cast<uint64_t>(i) * 100000, 8});
  }
  const Nanos idle = f.scheduler.Drain();
  EXPECT_EQ(f.scheduler.pending_async(), 0u);
  EXPECT_GE(idle, f.clock.now());
  EXPECT_EQ(f.disk.stats().writes, 5u);
}

TEST(IoSchedulerTest, ElevatorServicesPendingInLbaOrder) {
  // Descending submissions; the elevator should reorder ascending, which
  // yields strictly less total seek time than FIFO on the same pattern.
  SchedulerFixture elevator(SchedulerKind::kElevator);
  SchedulerFixture fifo(SchedulerKind::kFifo);
  const std::vector<uint64_t> lbas{400'000'000, 100'000'000, 300'000'000, 200'000'000,
                                   350'000'000};
  for (uint64_t lba : lbas) {
    elevator.scheduler.SubmitAsync({IoKind::kRead, lba, 8});
    fifo.scheduler.SubmitAsync({IoKind::kRead, lba, 8});
  }
  elevator.scheduler.Drain();
  fifo.scheduler.Drain();
  EXPECT_LT(elevator.disk.stats().total_seek_time, fifo.disk.stats().total_seek_time);
}

TEST(IoSchedulerTest, SyncWaitAccountsQueueingDelay) {
  SchedulerFixture f;
  f.scheduler.SubmitAsync({IoKind::kRead, 100'000'000, 8});
  f.scheduler.SubmitAsync({IoKind::kRead, 300'000'000, 8});
  const auto done = f.scheduler.SubmitSync({IoKind::kRead, 200'000'000, 8});
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(f.scheduler.stats().total_sync_wait, 0);
  EXPECT_EQ(f.scheduler.stats().sync_requests, 1u);
  EXPECT_EQ(f.scheduler.stats().async_requests, 2u);
}

TEST(IoSchedulerTest, ClockAdvanceReleasesTheDevice) {
  SchedulerFixture f;
  const auto first = f.scheduler.SubmitSync({IoKind::kRead, 1000, 8});
  ASSERT_TRUE(first.has_value());
  f.clock.AdvanceTo(*first + kSecond);
  const auto second = f.scheduler.SubmitSync({IoKind::kRead, 1008, 8});
  ASSERT_TRUE(second.has_value());
  // The device was idle: completion is relative to now, not to busy_until.
  EXPECT_LT(*second - f.clock.now(), FromMillis(20.0));
}

TEST(IoSchedulerTest, InjectedErrorPropagatesFromSync) {
  SchedulerFixture f;
  f.disk.InjectError(1000);
  EXPECT_FALSE(f.scheduler.SubmitSync({IoKind::kRead, 1000, 8}).has_value());
}

TEST(IoSchedulerTest, AsyncErrorsAreCountedNotFatal) {
  SchedulerFixture f;
  f.disk.InjectError(1000);
  f.scheduler.SubmitAsync({IoKind::kRead, 1000, 8});
  f.scheduler.SubmitAsync({IoKind::kRead, 5000, 8});
  f.scheduler.Drain();
  EXPECT_EQ(f.scheduler.stats().async_errors, 1u);
  EXPECT_EQ(f.scheduler.stats().async_serviced, 2u);
}

TEST(IoSchedulerTest, MaxQueueDepthTracked) {
  SchedulerFixture f;
  for (int i = 0; i < 7; ++i) {
    f.scheduler.SubmitAsync({IoKind::kRead, static_cast<uint64_t>(i) * 1000, 8});
  }
  EXPECT_EQ(f.scheduler.stats().max_queue_depth, 7u);
}

}  // namespace
}  // namespace fsbench
