#include "src/sim/machine.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(MachineTest, PaperTestbedConfigSanity) {
  const MachineConfig config = PaperTestbedConfig();
  EXPECT_EQ(config.ram, 512 * kMiB);
  EXPECT_LT(config.os_reserved, config.ram);
  EXPECT_EQ(config.disk.rpm, 7200u);
  EXPECT_EQ(config.disk.capacity, 250 * kGiB);
}

TEST(MachineTest, CacheCapacityReflectsRamMinusReserve) {
  MachineConfig config = PaperTestbedConfig();
  config.os_reserve_jitter = 0;
  Machine machine(FsKind::kExt2, config);
  const size_t expected = (config.ram - config.os_reserved) / (4 * kKiB);
  EXPECT_EQ(machine.cache_capacity_pages(), expected);
  EXPECT_EQ(machine.vfs().cache().capacity(), expected);
}

TEST(MachineTest, OsReserveJitterVariesCapacityAcrossSeeds) {
  MachineConfig config = PaperTestbedConfig();
  size_t min_cap = SIZE_MAX;
  size_t max_cap = 0;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    config.seed = seed;
    Machine machine(FsKind::kExt2, config);
    min_cap = std::min(min_cap, machine.cache_capacity_pages());
    max_cap = std::max(max_cap, machine.cache_capacity_pages());
  }
  EXPECT_GT(max_cap, min_cap);
  // Spread bounded by 2x the jitter amplitude.
  EXPECT_LE(max_cap - min_cap, 2 * config.os_reserve_jitter / (4 * kKiB) + 1);
}

TEST(MachineTest, SameSeedSameBehaviour) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = 9;
  Machine a(FsKind::kExt2, config);
  Machine b(FsKind::kExt2, config);
  ASSERT_EQ(a.vfs().MakeFile("/f", 1 * kMiB), FsStatus::kOk);
  ASSERT_EQ(b.vfs().MakeFile("/f", 1 * kMiB), FsStatus::kOk);
  const auto fda = a.vfs().Open("/f");
  const auto fdb = b.vfs().Open("/f");
  ASSERT_TRUE(fda.ok());
  ASSERT_TRUE(fdb.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(a.vfs().Read(fda.value, (i % 256) * 4096, 4096).ok());
    ASSERT_TRUE(b.vfs().Read(fdb.value, (i % 256) * 4096, 4096).ok());
    ASSERT_EQ(a.clock().now(), b.clock().now()) << "iteration " << i;
  }
}

TEST(MachineTest, DifferentSeedsDiverge) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = 1;
  Machine a(FsKind::kExt2, config);
  config.seed = 2;
  Machine b(FsKind::kExt2, config);
  ASSERT_EQ(a.vfs().MakeFile("/f", 1 * kMiB), FsStatus::kOk);
  ASSERT_EQ(b.vfs().MakeFile("/f", 1 * kMiB), FsStatus::kOk);
  const auto fda = a.vfs().Open("/f");
  const auto fdb = b.vfs().Open("/f");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.vfs().Read(fda.value, (i % 256) * 4096, 4096).ok());
    ASSERT_TRUE(b.vfs().Read(fdb.value, (i % 256) * 4096, 4096).ok());
  }
  EXPECT_NE(a.clock().now(), b.clock().now());
}

TEST(MachineTest, BuildsEveryFileSystemKind) {
  const MachineConfig config = PaperTestbedConfig();
  Machine ext2(FsKind::kExt2, config);
  EXPECT_STREQ(ext2.fs().name(), "ext2");
  EXPECT_EQ(ext2.fs().journal(), nullptr);
  Machine ext3(FsKind::kExt3, config);
  EXPECT_STREQ(ext3.fs().name(), "ext3");
  EXPECT_NE(ext3.fs().journal(), nullptr);
  Machine xfs(FsKind::kXfs, config);
  EXPECT_STREQ(xfs.fs().name(), "xfs");
  // XFS journals through the delayed-logging adapter (CIL over the
  // transaction log) since the txn-log refactor.
  ASSERT_NE(xfs.fs().journal(), nullptr);
  EXPECT_NE(xfs.fs().journal()->txn_log(), nullptr);
}

TEST(MachineTest, EvictionPolicyIsConfigurable) {
  MachineConfig config = PaperTestbedConfig();
  config.eviction = EvictionPolicyKind::kArc;
  Machine machine(FsKind::kExt2, config);
  EXPECT_STREQ(machine.vfs().cache().policy_name(), "arc");
}

TEST(MachineTest, CpuJitterScalesCosts) {
  MachineConfig config = PaperTestbedConfig();
  config.cpu_jitter = 0.0;
  config.seed = 1;
  Machine stable(FsKind::kExt2, config);
  EXPECT_DOUBLE_EQ(stable.vfs().config().cpu_cost_multiplier, 1.0);
  config.cpu_jitter = 0.05;
  Machine jittered(FsKind::kExt2, config);
  EXPECT_NE(jittered.vfs().config().cpu_cost_multiplier, 1.0);
  EXPECT_NEAR(jittered.vfs().config().cpu_cost_multiplier, 1.0, 0.05);
}

}  // namespace
}  // namespace fsbench
