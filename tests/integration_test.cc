// Figure-shape integration tests: the qualitative claims of the paper's
// case study must hold end-to-end on the simulated stack. These are the
// assertions EXPERIMENTS.md points at; the bench binaries print the full
// tables/series.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/experiment.h"
#include "src/core/modality.h"
#include "src/core/self_scaling.h"
#include "src/core/steady_state.h"
#include "src/core/workloads/random_read.h"

namespace fsbench {
namespace {

MachineFactory PaperMachine(FsKind kind = FsKind::kExt2) {
  return [kind](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

WorkloadFactory RandomRead(Bytes file_size) {
  return [file_size] {
    RandomReadConfig config;
    config.file_size = file_size;
    return std::make_unique<RandomReadWorkload>(config);
  };
}

ExperimentResult SteadyStateRun(Bytes file_size, int runs = 3, Nanos duration = 10 * kSecond) {
  ExperimentConfig config;
  config.runs = runs;
  config.duration = duration;
  config.prewarm = true;
  return Experiment(config).Run(PaperMachine(), RandomRead(file_size));
}

// --- Figure 1: the memory/disk cliff ---

TEST(Figure1Shape, MemoryPlateauIsFlatAndFast) {
  const ExperimentResult small = SteadyStateRun(64 * kMiB);
  const ExperimentResult medium = SteadyStateRun(384 * kMiB);
  ASSERT_TRUE(small.AllOk());
  ASSERT_TRUE(medium.AllOk());
  // Paper: 9682..9715 ops/s across the whole in-memory range.
  EXPECT_GT(small.throughput.mean, 9000.0);
  EXPECT_NEAR(small.throughput.mean, medium.throughput.mean,
              small.throughput.mean * 0.02);
  // Memory-bound relative stddev is small (paper: ~1%).
  EXPECT_LT(small.throughput.rel_stddev_pct, 3.0);
}

TEST(Figure1Shape, CliffBetween384And448) {
  const ExperimentResult before = SteadyStateRun(384 * kMiB);
  const ExperimentResult after = SteadyStateRun(448 * kMiB);
  ASSERT_TRUE(before.AllOk());
  ASSERT_TRUE(after.AllOk());
  // Paper: 9715 -> 1019 ops/s, nearly a 10x drop within one 64 MiB step.
  EXPECT_GT(before.throughput.mean / after.throughput.mean, 5.0);
}

TEST(Figure1Shape, DiskBoundTailKeepsFalling) {
  const ExperimentResult half = SteadyStateRun(512 * kMiB, 2);
  const ExperimentResult full = SteadyStateRun(1024 * kMiB, 2);
  ASSERT_TRUE(half.AllOk());
  ASSERT_TRUE(full.AllOk());
  EXPECT_GT(half.throughput.mean, full.throughput.mean);
  // Paper's 1 GiB point is 162 ops/s; ours must land in that decade.
  EXPECT_GT(full.throughput.mean, 80.0);
  EXPECT_LT(full.throughput.mean, 400.0);
  // Hit ratio ~ cache/file ~ 0.4 at 1 GiB (the paper's "half of the reads
  // hit in the cache" at 2x RAM, minus the OS reservation).
  EXPECT_NEAR(full.runs[0].cache_hit_ratio, 0.40, 0.05);
}

TEST(Figure1Shape, TransitionRegionHasInflatedVariance) {
  // 412 MiB sits inside the per-run cache-capacity jitter band: the paper's
  // "fragile benchmark" point where a few MB of cache swing the result.
  const ExperimentResult transition = SteadyStateRun(412 * kMiB, 6);
  const ExperimentResult plateau = SteadyStateRun(256 * kMiB, 6);
  ASSERT_TRUE(transition.AllOk());
  ASSERT_TRUE(plateau.AllOk());
  EXPECT_GT(transition.throughput.rel_stddev_pct, 3.0 * plateau.throughput.rel_stddev_pct);
}

// --- Figure 1 zoom: the transition is only a few MB wide ---

TEST(Figure1Zoom, TransitionWidthIsNarrow) {
  const auto metric = [](double file_mib) {
    ExperimentConfig config;
    config.runs = 1;
    config.duration = 4 * kSecond;
    config.prewarm = true;
    const ExperimentResult result = Experiment(config).Run(
        PaperMachine(), RandomRead(static_cast<Bytes>(file_mib) * kMiB));
    return result.throughput.mean;
  };
  SelfScalingProbe::Options options;
  options.coarse_steps = 5;
  options.resolution = 4.0;  // MiB
  const TransitionResult transition =
      SelfScalingProbe::FindTransition(metric, 384.0, 448.0, options);
  ASSERT_TRUE(transition.found);
  // Paper: the drop happens "within an even narrower region - less than
  // 6MB in size" (per fixed cache capacity; our bracket resolution is 4MB).
  EXPECT_LE(transition.width(), 8.0);
  // The knee itself is steep (>25% lost across a ~4 MiB bracket) and the
  // overall scan spans the full memory-to-disk decade.
  EXPECT_GT(transition.drop_factor, 1.25);
  double span_min = transition.samples[0].second;
  double span_max = span_min;
  for (const auto& [param, value] : transition.samples) {
    span_min = std::min(span_min, value);
    span_max = std::max(span_max, value);
  }
  EXPECT_GT(span_max / span_min, 5.0);
  // The bracket must straddle the effective cache capacity (~412-420 MiB).
  EXPECT_GT(transition.param_hi, 400.0);
  EXPECT_LT(transition.param_lo, 432.0);
}

// --- Figure 2: cache warm-up and between-FS divergence ---

TEST(Figure2Shape, WarmupOrderingAndConvergence) {
  auto series_for = [](FsKind kind) {
    ExperimentConfig config;
    config.runs = 1;
    config.duration = 600 * kSecond;
    config.timeline_interval = 10 * kSecond;
    const ExperimentResult result =
        Experiment(config).Run(PaperMachine(kind), RandomRead(128 * kMiB));
    EXPECT_TRUE(result.AllOk());
    return result.runs[0].throughput_series;
  };
  auto warm_index = [](const std::vector<double>& series) {
    for (size_t i = 0; i < series.size(); ++i) {
      if (series[i] > 8000.0) {
        return i;
      }
    }
    return series.size();
  };
  const auto ext2 = series_for(FsKind::kExt2);
  const auto ext3 = series_for(FsKind::kExt3);
  const auto xfs = series_for(FsKind::kXfs);
  // All three start disk-bound...
  EXPECT_LT(ext2.front(), 500.0);
  EXPECT_LT(ext3.front(), 500.0);
  EXPECT_LT(xfs.front(), 500.0);
  // ...and converge to the same memory speed (paper: "at the end ... all
  // the systems run at memory speed").
  EXPECT_GT(ext2.back(), 9000.0);
  EXPECT_GT(ext3.back(), 9000.0);
  EXPECT_GT(xfs.back(), 9000.0);
  // In between they diverge, with readahead aggressiveness setting the
  // order: xfs warms fastest, ext3 slowest.
  EXPECT_LT(warm_index(xfs), warm_index(ext2));
  EXPECT_LT(warm_index(ext2), warm_index(ext3));
}

TEST(Figure2Shape, SteadyStateDetectorSeesTheWarmup) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 400 * kSecond;
  config.timeline_interval = 10 * kSecond;
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), RandomRead(128 * kMiB));
  ASSERT_TRUE(result.AllOk());
  const SteadyStateReport report = AnalyzeSteadyState(result.runs[0].throughput_series);
  ASSERT_TRUE(report.reached);
  EXPECT_GT(report.steady_start_interval, 2u);  // a real warm-up phase
  EXPECT_GT(report.steady_mean, 8000.0);
}

// --- Figure 3: latency histograms across working-set sizes ---

TEST(Figure3Shape, SmallFileIsUnimodalInMemory) {
  const ExperimentResult result = SteadyStateRun(64 * kMiB, 1);
  ASSERT_TRUE(result.AllOk());
  const std::vector<Mode> modes = DetectModes(result.merged_histogram);
  ASSERT_EQ(modes.size(), 1u);
  // Paper: "a distinctive peak around 4 microseconds" = bucket 12.
  EXPECT_EQ(modes[0].peak_bucket, 12);
}

TEST(Figure3Shape, TwiceRamIsBimodalWithNearEqualPeaks) {
  const ExperimentResult result = SteadyStateRun(1024 * kMiB, 1);
  ASSERT_TRUE(result.AllOk());
  const std::vector<Mode> modes = DetectModes(result.merged_histogram);
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_EQ(modes[0].peak_bucket, 12);       // cache hits ~4 us
  EXPECT_GE(modes[1].peak_bucket, 22);       // disk reads ~8+ ms
  EXPECT_LE(modes[1].peak_bucket, 24);
  // Paper: "the peaks are almost equal in height because ... half of the
  // random reads hit in the cache" (40/60 with the OS reservation).
  EXPECT_NEAR(modes[0].mass, 40.0, 8.0);
  EXPECT_NEAR(modes[1].mass, 60.0, 8.0);
}

TEST(Figure3Shape, HugeFileLeftPeakVanishes) {
  const ExperimentResult result = SteadyStateRun(25ULL * kGiB, 1);
  ASSERT_TRUE(result.AllOk());
  const LatencyHistogram& histogram = result.merged_histogram;
  // Cache-hit share = cache/file ~ 410MB/25GB ~ 1.6%: "invisibly small".
  double fast_share = 0.0;
  for (int b = 0; b <= 14; ++b) {
    fast_share += histogram.SharePct(b);
  }
  EXPECT_LT(fast_share, 4.0);
  const std::vector<Mode> modes = DetectModes(histogram);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_GE(modes[0].peak_bucket, 22);
  // Latency spans 3 orders of magnitude across the three file sizes
  // (paper: "spanning over 3 orders of magnitude").
  const ExperimentResult small = SteadyStateRun(64 * kMiB, 1);
  EXPECT_GT(histogram.ApproxMean() / small.merged_histogram.ApproxMean(), 1000.0);
}

// --- Figure 4: the latency distribution morphs over time ---

TEST(Figure4Shape, DiskPeakFadesCachePeakGrows) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 420 * kSecond;
  config.histogram_slice = 20 * kSecond;
  const ExperimentResult result =
      Experiment(config).Run(PaperMachine(), RandomRead(256 * kMiB));
  ASSERT_TRUE(result.AllOk());
  const auto& slices = result.runs[0].histogram_slices;
  ASSERT_GE(slices.size(), 8u);
  auto share_fast = [](const LatencyHistogram& h) {
    double share = 0.0;
    for (int b = 0; b <= 14; ++b) {
      share += h.SharePct(b);
    }
    return share;
  };
  auto share_slow = [](const LatencyHistogram& h) {
    double share = 0.0;
    for (int b = 20; b < LatencyHistogram::kBuckets; ++b) {
      share += h.SharePct(b);
    }
    return share;
  };
  // Early: disk dominates. Late: cache dominates. (Paper: the 2^23ns peak
  // "fades away and is replaced by the peak ... around 2^11 ns".) The very
  // last slice straddles the run boundary and is length-biased toward slow
  // ops, so sample the one before it.
  const LatencyHistogram& late = slices[slices.size() - 2];
  EXPECT_GT(share_slow(slices.front()), 50.0);
  EXPECT_LT(share_fast(slices.front()), 50.0);
  EXPECT_GT(share_fast(late), 70.0);
  EXPECT_LT(share_slow(late), 30.0);
  EXPECT_GT(share_fast(late), share_fast(slices.front()) + 40.0);
  // And the middle is bimodal -- the regime where "trying to achieve stable
  // results with small standard deviations is nearly impossible".
  bool saw_bimodal = false;
  for (const LatencyHistogram& slice : slices) {
    if (DetectModes(slice).size() >= 2) {
      saw_bimodal = true;
    }
  }
  EXPECT_TRUE(saw_bimodal);
}

}  // namespace
}  // namespace fsbench
