#include "src/core/workloads/compile_like.h"

#include <gtest/gtest.h>

#include "src/core/comparison.h"
#include "src/core/experiment.h"

namespace fsbench {
namespace {

MachineFactory PaperMachine(FsKind kind) {
  return [kind](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

TEST(CompileWorkloadTest, SetupBuildsSourceTree) {
  auto machine = PaperMachine(FsKind::kExt2)(1);
  WorkloadContext ctx(machine.get(), 1);
  CompileLikeConfig config;
  config.source_files = 20;
  CompileLikeWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  const auto entries = machine->vfs().ReadDir("/src");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value.size(), 20u);
}

TEST(CompileWorkloadTest, StepsCompileAndEmitObjects) {
  auto machine = PaperMachine(FsKind::kExt2)(1);
  WorkloadContext ctx(machine.get(), 1);
  CompileLikeConfig config;
  config.source_files = 10;
  config.cpu_per_file = 5 * kMillisecond;
  CompileLikeWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  for (int i = 0; i < 10; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok()) << FsStatusName(op.status);
  }
  EXPECT_EQ(workload.files_compiled(), 10u);
  // Every source got its object file.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(machine->vfs().Stat("/src/s" + std::to_string(i) + ".o").ok());
  }
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

TEST(CompileWorkloadTest, CpuDominatesElapsedTime) {
  auto machine = PaperMachine(FsKind::kExt2)(1);
  WorkloadContext ctx(machine.get(), 1);
  CompileLikeConfig config;
  config.source_files = 30;
  config.cpu_per_file = 30 * kMillisecond;
  CompileLikeWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  const Nanos t0 = machine->clock().now();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(workload.Step(ctx).ok());
  }
  const Nanos elapsed = machine->clock().now() - t0;
  const Nanos cpu = 30 * config.cpu_per_file;
  // The paper's point: compilation is CPU-bound. Even from a cold cache the
  // compute term must account for the bulk of the time.
  EXPECT_GT(static_cast<double>(cpu) / static_cast<double>(elapsed), 0.60);
}

TEST(CompileWorkloadTest, FileSystemsNearlyIndistinguishable) {
  // Section 1 of the paper, quantified: the same three file systems that
  // differ 1.2-2.5x on isolated dimensions sit within a few percent under
  // the compile workload.
  ExperimentConfig config;
  config.runs = 3;
  config.duration = 20 * kSecond;
  config.framework_overhead = 0;
  const WorkloadFactory compile = [] {
    CompileLikeConfig workload_config;
    workload_config.source_files = 100;
    return std::make_unique<CompileLikeWorkload>(workload_config);
  };
  const ExperimentResult ext2 = Experiment(config).Run(PaperMachine(FsKind::kExt2), compile);
  const ExperimentResult xfs = Experiment(config).Run(PaperMachine(FsKind::kXfs), compile);
  ASSERT_TRUE(ext2.AllOk());
  ASSERT_TRUE(xfs.AllOk());
  const double spread =
      std::abs(ext2.throughput.mean - xfs.throughput.mean) / xfs.throughput.mean;
  EXPECT_LT(spread, 0.05);  // under 5% apart - "reveals little"
}

}  // namespace
}  // namespace fsbench
