// Differential test for the slab-backed FlashTier: ReferenceFlashTier below
// is the pre-rework std::list + std::unordered_map implementation, kept
// verbatim as an oracle (the same role ReferenceVfs plays for the VFS
// pipeline). A long randomized op sequence — inserts, promotes, removes,
// whole-file purges, clears, across several files with reinsertion and
// capacity pressure — drives both; every stat, the size, and full membership
// must agree at every checkpoint. LRU victim order is observable through
// which keys survive, so agreement here pins the rework to the old
// behavior exactly.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "src/sim/flash_tier.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

class ReferenceFlashTier {
 public:
  explicit ReferenceFlashTier(const FlashTierConfig& config)
      : capacity_pages_(static_cast<size_t>(config.capacity / config.page_size)) {}

  bool LookupAndPromote(const PageKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return true;
  }

  void Insert(const PageKey& key, BlockId block) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      it->second.block = block;
      return;
    }
    while (entries_.size() >= capacity_pages_) {
      const PageKey victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
      ++stats_.evictions;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{lru_.begin(), block});
    ++stats_.insertions;
  }

  void Remove(const PageKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }

  void RemoveFile(InodeId ino) {
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->ino == ino) {
        entries_.erase(*it);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void Clear() {
    lru_.clear();
    entries_.clear();
  }

  size_t size() const { return entries_.size(); }
  const FlashTierStats& stats() const { return stats_; }
  bool Contains(const PageKey& key) const { return entries_.count(key) != 0; }

 private:
  struct Entry {
    std::list<PageKey>::iterator lru_it;
    BlockId block = kInvalidBlock;
  };

  size_t capacity_pages_;
  std::list<PageKey> lru_;  // front = MRU
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  FlashTierStats stats_;
};

constexpr uint64_t kFiles = 5;
constexpr uint64_t kPagesPerFile = 48;

void ExpectAgreement(const FlashTier& tier, const ReferenceFlashTier& ref, uint64_t op) {
  ASSERT_EQ(tier.size(), ref.size()) << "op " << op;
  ASSERT_EQ(tier.stats().hits, ref.stats().hits) << "op " << op;
  ASSERT_EQ(tier.stats().misses, ref.stats().misses) << "op " << op;
  ASSERT_EQ(tier.stats().insertions, ref.stats().insertions) << "op " << op;
  ASSERT_EQ(tier.stats().evictions, ref.stats().evictions) << "op " << op;
  for (uint64_t ino = 1; ino <= kFiles; ++ino) {
    for (uint64_t page = 0; page < kPagesPerFile; ++page) {
      const PageKey key{ino, page};
      ASSERT_EQ(tier.Contains(key), ref.Contains(key))
          << "op " << op << " ino " << ino << " page " << page;
    }
  }
}

TEST(FlashTierDifferentialTest, RandomOpsMatchListAndMapReference) {
  FlashTierConfig config;
  config.capacity = 64 * 4 * kKiB;  // 64 pages: constant capacity pressure
  FlashTier tier(config);
  ReferenceFlashTier ref(config);

  Rng rng(2024);
  constexpr uint64_t kOps = 20000;
  for (uint64_t op = 0; op < kOps; ++op) {
    const uint64_t ino = 1 + rng.NextBelow(kFiles);
    const uint64_t page = rng.NextBelow(kPagesPerFile);
    const PageKey key{ino, page};
    switch (rng.NextBelow(100)) {
      case 0:  // rare full purge
        tier.Clear();
        ref.Clear();
        break;
      case 1:
      case 2:  // occasional whole-file purge
        tier.RemoveFile(ino);
        ref.RemoveFile(ino);
        break;
      case 3:
      case 4:
      case 5:
        tier.Remove(key);
        ref.Remove(key);
        break;
      default:
        if (rng.NextBelow(2) == 0) {
          ASSERT_EQ(tier.LookupAndPromote(key), ref.LookupAndPromote(key)) << "op " << op;
        } else {
          tier.Insert(key, 1000 + ino * kPagesPerFile + page);
          ref.Insert(key, 1000 + ino * kPagesPerFile + page);
        }
        break;
    }
    if (op % 512 == 0 || op + 1 == kOps) {
      ExpectAgreement(tier, ref, op);
    }
  }
}

// A capacity-1 tier exercises the evict-on-every-insert edge and the
// backward-shift path with maximal reuse of one slab node.
TEST(FlashTierDifferentialTest, CapacityOneMatchesReference) {
  FlashTierConfig config;
  config.capacity = 1 * 4 * kKiB;
  FlashTier tier(config);
  ReferenceFlashTier ref(config);

  Rng rng(7);
  for (uint64_t op = 0; op < 2000; ++op) {
    const PageKey key{1 + rng.NextBelow(2), rng.NextBelow(8)};
    if (rng.NextBelow(3) == 0) {
      ASSERT_EQ(tier.LookupAndPromote(key), ref.LookupAndPromote(key)) << "op " << op;
    } else {
      tier.Insert(key, key.index);
      ref.Insert(key, key.index);
    }
  }
  ExpectAgreement(tier, ref, 2000);
}

}  // namespace
}  // namespace fsbench
