#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/workloads/create_delete.h"
#include "src/core/workloads/metadata_mix.h"
#include "src/core/workloads/personality.h"
#include "src/core/workloads/postmark_like.h"
#include "src/core/workloads/random_read.h"
#include "src/core/workloads/sequential.h"

namespace fsbench {
namespace {

std::unique_ptr<Machine> SmallMachine(uint64_t seed = 1) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = seed;
  return std::make_unique<Machine>(FsKind::kExt2, config);
}

TEST(RandomReadWorkloadTest, SetupCreatesTheFile) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  RandomReadConfig config;
  config.file_size = 8 * kMiB;
  RandomReadWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  const auto attr = machine->vfs().Stat("/bigfile");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 8 * kMiB);
}

TEST(RandomReadWorkloadTest, StepsReadAlignedPages) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  RandomReadConfig config;
  config.file_size = 8 * kMiB;
  RandomReadWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  ASSERT_EQ(workload.Prewarm(ctx), FsStatus::kOk);
  for (int i = 0; i < 200; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(op.value, OpType::kRead);
  }
  EXPECT_EQ(machine->vfs().stats().reads, 200u);
  EXPECT_EQ(machine->vfs().stats().bytes_read, 200u * 4 * kKiB);
  EXPECT_DOUBLE_EQ(machine->vfs().DataHitRatio(), 1.0);
}

TEST(RandomReadWorkloadTest, ZipfSkewsTowardHotPages) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  RandomReadConfig config;
  config.file_size = 8 * kMiB;
  config.zipf_theta = 0.99;
  RandomReadWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(workload.Step(ctx).ok());
  }
  const size_t zipf_unique = machine->vfs().cache().size();

  auto uniform_machine = SmallMachine(2);
  WorkloadContext uniform_ctx(uniform_machine.get(), 2);
  config.zipf_theta = 0.0;
  RandomReadWorkload uniform(config);
  ASSERT_EQ(uniform.Setup(uniform_ctx), FsStatus::kOk);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(uniform.Step(uniform_ctx).ok());
  }
  // Strong skew touches far fewer unique pages than uniform access.
  EXPECT_LT(zipf_unique, uniform_machine->vfs().cache().size() * 2 / 3);
}

TEST(SequentialReadWorkloadTest, WrapsAroundFile) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  SequentialConfig config;
  config.file_size = 256 * kKiB;
  config.io_size = 64 * kKiB;
  SequentialReadWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  for (int i = 0; i < 10; ++i) {  // 2.5 laps
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(op.value, OpType::kRead);
  }
  EXPECT_EQ(machine->vfs().stats().bytes_read, 10u * 64 * kKiB);
}

TEST(SequentialWriteWorkloadTest, OverwriteKeepsSizeConstant) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  SequentialConfig config;
  config.file_size = 256 * kKiB;
  config.io_size = 64 * kKiB;
  SequentialWriteWorkload workload(config, /*overwrite=*/true);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(workload.Step(ctx).ok());
  }
  const auto attr = machine->vfs().Stat("/seqfile");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 256 * kKiB);
}

TEST(SequentialWriteWorkloadTest, AppendGrowsThenWraps) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  SequentialConfig config;
  config.file_size = 128 * kKiB;
  config.io_size = 64 * kKiB;
  SequentialWriteWorkload workload(config, /*overwrite=*/false);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  ASSERT_TRUE(workload.Step(ctx).ok());
  ASSERT_TRUE(workload.Step(ctx).ok());
  EXPECT_EQ(machine->vfs().Stat("/seqfile").value.size, 128 * kKiB);
  ASSERT_TRUE(workload.Step(ctx).ok());  // wrap: truncate + write at 0
  EXPECT_EQ(machine->vfs().Stat("/seqfile").value.size, 64 * kKiB);
}

TEST(CreateDeleteWorkloadTest, AlternatesAndMaintainsPopulation) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  CreateDeleteConfig config;
  config.working_set = 50;
  CreateDeleteWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  const auto initial = machine->vfs().ReadDir("/cd");
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial.value.size(), 50u);
  std::set<OpType> seen;
  for (int i = 0; i < 40; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok());
    seen.insert(op.value);
  }
  EXPECT_TRUE(seen.count(OpType::kCreate));
  EXPECT_TRUE(seen.count(OpType::kUnlink));
  const auto after = machine->vfs().ReadDir("/cd");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value.size(), 50u);  // alternation keeps the population
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

TEST(MetadataMixWorkloadTest, BuildsTreeAndMixesOps) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  MetadataMixConfig config;
  config.dirs = 4;
  config.files_per_dir = 20;
  MetadataMixWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  std::set<OpType> seen;
  for (int i = 0; i < 300; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok());
    seen.insert(op.value);
  }
  EXPECT_GE(seen.size(), 4u);  // stat/open/readdir/create-unlink all appear
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

TEST(PostmarkLikeWorkloadTest, TransactionsKeepPoolAlive) {
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  PostmarkConfig config;
  config.initial_files = 100;
  PostmarkLikeWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  std::set<OpType> seen;
  for (int i = 0; i < 400; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok()) << "step " << i << ": " << FsStatusName(op.status);
    seen.insert(op.value);
  }
  EXPECT_TRUE(seen.count(OpType::kRead));
  EXPECT_TRUE(seen.count(OpType::kWrite));
  EXPECT_TRUE(seen.count(OpType::kCreate));
  EXPECT_TRUE(seen.count(OpType::kUnlink));
  EXPECT_GT(workload.live_files(), 0u);
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

class PersonalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(PersonalitySweep, PresetRunsCleanly) {
  PersonalityConfig config;
  switch (GetParam()) {
    case 0:
      config = FileServerPersonality();
      break;
    case 1:
      config = WebServerPersonality();
      break;
    default:
      config = VarmailPersonality();
      break;
  }
  // Shrink the populations so the test stays fast.
  config.file_count = 50;
  auto machine = SmallMachine();
  WorkloadContext ctx(machine.get(), 1);
  PersonalityWorkload workload(config);
  ASSERT_EQ(workload.Setup(ctx), FsStatus::kOk);
  for (int i = 0; i < 200; ++i) {
    const auto op = workload.Step(ctx);
    ASSERT_TRUE(op.ok()) << "step " << i << ": " << FsStatusName(op.status);
  }
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Presets, PersonalitySweep, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0:
                               return "fileserver";
                             case 1:
                               return "webserver";
                             default:
                               return "varmail";
                           }
                         });

}  // namespace
}  // namespace fsbench
