#include "src/core/timeline.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(ThroughputTimelineTest, BucketsByInterval) {
  ThroughputTimeline timeline(kSecond);
  timeline.RecordOp(100);             // interval 0
  timeline.RecordOp(kSecond - 1);     // interval 0
  timeline.RecordOp(kSecond);         // interval 1
  timeline.RecordOp(3 * kSecond + 5); // interval 3
  ASSERT_EQ(timeline.interval_count(), 4u);
  EXPECT_EQ(timeline.count(0), 2u);
  EXPECT_EQ(timeline.count(1), 1u);
  EXPECT_EQ(timeline.count(2), 0u);
  EXPECT_EQ(timeline.count(3), 1u);
}

TEST(ThroughputTimelineTest, OpsPerSecondScalesByInterval) {
  ThroughputTimeline timeline(10 * kSecond);
  for (int i = 0; i < 50; ++i) {
    timeline.RecordOp(i);
  }
  const std::vector<double> rates = timeline.OpsPerSecond();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);  // 50 ops over 10 s
}

TEST(ThroughputTimelineTest, OriginShiftsAndDropsEarlierOps) {
  ThroughputTimeline timeline(kSecond, 5 * kSecond);
  timeline.RecordOp(4 * kSecond);  // before origin: dropped
  timeline.RecordOp(5 * kSecond);  // interval 0
  timeline.RecordOp(6 * kSecond + 1);
  ASSERT_EQ(timeline.interval_count(), 2u);
  EXPECT_EQ(timeline.count(0), 1u);
  EXPECT_EQ(timeline.count(1), 1u);
}

TEST(ThroughputTimelineTest, MeanRateOverWindow) {
  ThroughputTimeline timeline(kSecond);
  // 10 ops in interval 0, 20 in interval 1, 30 in interval 2.
  for (int i = 0; i < 10; ++i) {
    timeline.RecordOp(1);
  }
  for (int i = 0; i < 20; ++i) {
    timeline.RecordOp(kSecond + 1);
  }
  for (int i = 0; i < 30; ++i) {
    timeline.RecordOp(2 * kSecond + 1);
  }
  EXPECT_DOUBLE_EQ(timeline.MeanRate(0, 3), 20.0);
  EXPECT_DOUBLE_EQ(timeline.MeanRate(1, 3), 25.0);
  EXPECT_DOUBLE_EQ(timeline.MeanRate(2, 3), 30.0);
  // Out-of-range windows are safe.
  EXPECT_DOUBLE_EQ(timeline.MeanRate(5, 9), 0.0);
  EXPECT_DOUBLE_EQ(timeline.MeanRate(2, 2), 0.0);
}

TEST(HistogramTimelineTest, SlicesByTime) {
  HistogramTimeline timeline(10 * kSecond);
  timeline.Record(1 * kSecond, 4100);
  timeline.Record(9 * kSecond, 4100);
  timeline.Record(15 * kSecond, 9'000'000);
  ASSERT_EQ(timeline.slices().size(), 2u);
  EXPECT_EQ(timeline.slices()[0].total(), 2u);
  EXPECT_EQ(timeline.slices()[1].total(), 1u);
  EXPECT_EQ(timeline.slices()[0].FirstBucket(), 12);
  EXPECT_EQ(timeline.slices()[1].FirstBucket(), 23);
}

TEST(HistogramTimelineTest, OriginRespected) {
  HistogramTimeline timeline(kSecond, 100 * kSecond);
  timeline.Record(50 * kSecond, 100);  // dropped
  EXPECT_TRUE(timeline.slices().empty());
  timeline.Record(100 * kSecond, 100);
  EXPECT_EQ(timeline.slices().size(), 1u);
}

}  // namespace
}  // namespace fsbench
