// Reference eviction policies and page cache: the straightforward
// implementations (std::list + unordered_map per queue) that predate the
// slab rewrite of src/sim/page_cache.{h,cc}, retained verbatim as
// differential oracles. The slab cache must make *identical eviction
// decisions* — same victims, in the same order, with the same ARC
// adaptation — it is only allowed to be faster.
#ifndef TESTS_REFERENCE_POLICIES_H_
#define TESTS_REFERENCE_POLICIES_H_

#include <algorithm>
#include <cassert>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/eviction_policy.h"
#include "src/sim/types.h"

namespace fsbench {
namespace reference {

class ReferencePolicy {
 public:
  virtual ~ReferencePolicy() = default;
  virtual const char* name() const = 0;
  virtual void OnInsert(const PageKey& key) = 0;
  virtual void OnAccess(const PageKey& key) = 0;
  virtual PageKey ChooseVictim() = 0;
  virtual void OnRemove(const PageKey& key) = 0;
  virtual size_t resident_count() const = 0;
  // ARC's adaptive T1 target (0 elsewhere), for adaptation equivalence.
  virtual double target_t1() const { return 0.0; }
};

// Non-intrusive LRU list: list of keys + map to iterator.
class KeyList {
 public:
  bool Contains(const PageKey& key) const { return index_.count(key) != 0; }
  size_t size() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  void PushMru(const PageKey& key) {
    list_.push_front(key);
    index_[key] = list_.begin();
  }

  void MoveToMru(const PageKey& key) {
    auto it = index_.find(key);
    assert(it != index_.end());
    list_.splice(list_.begin(), list_, it->second);
  }

  PageKey PopLru() {
    assert(!list_.empty());
    PageKey key = list_.back();
    list_.pop_back();
    index_.erase(key);
    return key;
  }

  bool Erase(const PageKey& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    list_.erase(it->second);
    index_.erase(it);
    return true;
  }

 private:
  std::list<PageKey> list_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash> index_;
};

class LruPolicy : public ReferencePolicy {
 public:
  const char* name() const override { return "lru"; }
  void OnInsert(const PageKey& key) override { keys_.PushMru(key); }
  void OnAccess(const PageKey& key) override { keys_.MoveToMru(key); }
  PageKey ChooseVictim() override { return keys_.PopLru(); }
  void OnRemove(const PageKey& key) override { keys_.Erase(key); }
  size_t resident_count() const override { return keys_.size(); }

 private:
  KeyList keys_;
};

// CLOCK: second-chance around a circular list. The hand points at the next
// eviction candidate; a set reference bit buys one more lap.
class ClockPolicy : public ReferencePolicy {
 public:
  const char* name() const override { return "clock"; }

  void OnInsert(const PageKey& key) override {
    // Insert just behind the hand, i.e. at the position visited last.
    auto it = ring_.insert(hand_valid_ ? hand_ : ring_.end(), Node{key, false});
    index_[key] = it;
    if (!hand_valid_) {
      hand_ = ring_.begin();
      hand_valid_ = true;
    }
  }

  void OnAccess(const PageKey& key) override {
    auto it = index_.find(key);
    assert(it != index_.end());
    it->second->referenced = true;
  }

  PageKey ChooseVictim() override {
    assert(!ring_.empty());
    for (;;) {
      if (hand_ == ring_.end()) {
        hand_ = ring_.begin();
      }
      if (hand_->referenced) {
        hand_->referenced = false;
        ++hand_;
      } else {
        PageKey key = hand_->key;
        index_.erase(key);
        hand_ = ring_.erase(hand_);
        if (ring_.empty()) {
          hand_valid_ = false;
        }
        return key;
      }
    }
  }

  void OnRemove(const PageKey& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return;
    }
    if (hand_valid_ && it->second == hand_) {
      ++hand_;
    }
    ring_.erase(it->second);
    index_.erase(it);
    if (ring_.empty()) {
      hand_valid_ = false;
    }
  }

  size_t resident_count() const override { return ring_.size(); }

 private:
  struct Node {
    PageKey key;
    bool referenced = false;
  };
  std::list<Node> ring_;
  std::list<Node>::iterator hand_;
  bool hand_valid_ = false;
  std::unordered_map<PageKey, std::list<Node>::iterator, PageKeyHash> index_;
};

// Simplified 2Q: new pages enter the FIFO A1in queue; a re-reference after
// falling out of A1in (tracked by the ghost A1out) promotes the page into
// the long-term Am LRU. Scan-resistant: one-touch pages never displace Am.
class TwoQueuePolicy : public ReferencePolicy {
 public:
  explicit TwoQueuePolicy(size_t capacity)
      : kin_(std::max<size_t>(1, capacity / 4)), kout_(std::max<size_t>(1, capacity / 2)) {}

  const char* name() const override { return "2q"; }

  void OnInsert(const PageKey& key) override {
    if (a1out_.Contains(key)) {
      a1out_.Erase(key);
      am_.PushMru(key);
    } else {
      a1in_.PushMru(key);
    }
  }

  void OnAccess(const PageKey& key) override {
    if (am_.Contains(key)) {
      am_.MoveToMru(key);
    }
    // Hits in A1in deliberately do not promote (classic 2Q).
  }

  PageKey ChooseVictim() override {
    if (a1in_.size() > kin_ || am_.empty()) {
      assert(!a1in_.empty());
      PageKey key = a1in_.PopLru();
      a1out_.PushMru(key);
      while (a1out_.size() > kout_) {
        a1out_.PopLru();
      }
      return key;
    }
    return am_.PopLru();
  }

  void OnRemove(const PageKey& key) override {
    if (!a1in_.Erase(key)) {
      am_.Erase(key);
    }
    a1out_.Erase(key);
  }

  size_t resident_count() const override { return a1in_.size() + am_.size(); }

 private:
  const size_t kin_;
  const size_t kout_;
  KeyList a1in_;   // resident, FIFO
  KeyList am_;     // resident, LRU
  KeyList a1out_;  // ghost keys only
};

// ARC (Megiddo & Modha, FAST'03). T1/T2 are resident; B1/B2 are ghosts.
// The target size p of T1 adapts: ghost hits in B1 grow p, in B2 shrink it.
class ArcPolicy : public ReferencePolicy {
 public:
  explicit ArcPolicy(size_t capacity) : c_(std::max<size_t>(1, capacity)) {}

  const char* name() const override { return "arc"; }

  void OnInsert(const PageKey& key) override {
    if (b1_.Contains(key)) {
      const double delta = b1_.size() >= b2_.size()
                               ? 1.0
                               : static_cast<double>(b2_.size()) / static_cast<double>(b1_.size());
      p_ = std::min(static_cast<double>(c_), p_ + delta);
      b1_.Erase(key);
      t2_.PushMru(key);
      return;
    }
    if (b2_.Contains(key)) {
      const double delta = b2_.size() >= b1_.size()
                               ? 1.0
                               : static_cast<double>(b1_.size()) / static_cast<double>(b2_.size());
      p_ = std::max(0.0, p_ - delta);
      b2_.Erase(key);
      t2_.PushMru(key);
      return;
    }
    // Brand new key: trim ghost lists per the ARC paper's cases.
    if (t1_.size() + b1_.size() >= c_) {
      if (b1_.size() > 0) {
        b1_.PopLru();
      }
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c_) {
      if (b2_.size() > 0) {
        b2_.PopLru();
      }
    }
    t1_.PushMru(key);
  }

  void OnAccess(const PageKey& key) override {
    // Any resident hit moves the page to T2 MRU.
    if (t1_.Erase(key)) {
      t2_.PushMru(key);
    } else if (t2_.Contains(key)) {
      t2_.MoveToMru(key);
    }
  }

  PageKey ChooseVictim() override {
    // REPLACE from the ARC paper: evict from T1 if it exceeds target p.
    const bool from_t1 = !t1_.empty() && (static_cast<double>(t1_.size()) > p_ || t2_.empty());
    if (from_t1) {
      PageKey key = t1_.PopLru();
      b1_.PushMru(key);
      return key;
    }
    assert(!t2_.empty());
    PageKey key = t2_.PopLru();
    b2_.PushMru(key);
    return key;
  }

  void OnRemove(const PageKey& key) override {
    if (!t1_.Erase(key)) {
      t2_.Erase(key);
    }
    b1_.Erase(key);
    b2_.Erase(key);
  }

  size_t resident_count() const override { return t1_.size() + t2_.size(); }

  double target_t1() const override { return p_; }

 private:
  const size_t c_;
  double p_ = 0.0;
  KeyList t1_, t2_;  // resident
  KeyList b1_, b2_;  // ghosts
};

inline std::unique_ptr<ReferencePolicy> MakeReferencePolicy(EvictionPolicyKind kind,
                                                            size_t capacity_pages) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case EvictionPolicyKind::kClock:
      return std::make_unique<ClockPolicy>();
    case EvictionPolicyKind::kTwoQueue:
      return std::make_unique<TwoQueuePolicy>(capacity_pages);
    case EvictionPolicyKind::kArc:
      return std::make_unique<ArcPolicy>(capacity_pages);
  }
  return nullptr;
}

// The pre-slab PageCache: unordered_map of entries delegating eviction to a
// ReferencePolicy, with the original call order preserved.
class ReferencePageCache {
 public:
  struct Evicted {
    PageKey key;
    BlockId block = kInvalidBlock;
    bool dirty = false;
  };

  ReferencePageCache(size_t capacity_pages, EvictionPolicyKind policy_kind)
      : capacity_(capacity_pages), policy_(MakeReferencePolicy(policy_kind, capacity_pages)) {}

  bool Contains(const PageKey& key) const { return entries_.count(key) != 0; }

  bool Lookup(const PageKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return false;
    }
    policy_->OnAccess(key);
    return true;
  }

  std::vector<Evicted> Insert(const PageKey& key, BlockId block, bool dirty) {
    std::vector<Evicted> evicted;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (dirty && !it->second.dirty) {
        ++dirty_count_;
      }
      it->second.block = block;
      it->second.dirty = it->second.dirty || dirty;
      policy_->OnAccess(key);
      return evicted;
    }
    while (entries_.size() >= capacity_) {
      const PageKey victim = policy_->ChooseVictim();
      auto vit = entries_.find(victim);
      assert(vit != entries_.end());
      evicted.push_back(Evicted{victim, vit->second.block, vit->second.dirty});
      if (vit->second.dirty) {
        --dirty_count_;
      }
      entries_.erase(vit);
    }
    entries_.emplace(key, Entry{block, dirty});
    if (dirty) {
      ++dirty_count_;
    }
    policy_->OnInsert(key);
    return evicted;
  }

  bool MarkDirty(const PageKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return false;
    }
    if (!it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    return true;
  }

  // The differential test only ever takes full drains and compares them as
  // key-sorted sets, so the hash-order walk is unobservable (see
  // cache_differential_test.cc).
  std::vector<Evicted> TakeDirty(size_t max_pages) {
    std::vector<Evicted> dirty;
    for (auto& [key, entry] : entries_) {  // detlint: order-insensitive
      if (dirty.size() >= max_pages) {
        break;
      }
      if (entry.dirty) {
        dirty.push_back(Evicted{key, entry.block, true});
        entry.dirty = false;
        --dirty_count_;
      }
    }
    return dirty;
  }

  void Remove(const PageKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    if (it->second.dirty) {
      --dirty_count_;
    }
    entries_.erase(it);
    policy_->OnRemove(key);
  }

  // Pure set removal: per-key OnRemove/erase operations commute, so the
  // final cache and policy state is the same in any walk order.
  void RemoveFile(InodeId ino) {
    // detlint: order-insensitive
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.ino == ino) {
        if (it->second.dirty) {
          --dirty_count_;
        }
        policy_->OnRemove(it->first);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void Clear() {
    // Same commuting-removals argument as RemoveFile.
    // detlint: order-insensitive
    for (const auto& [key, entry] : entries_) {
      policy_->OnRemove(key);
    }
    entries_.clear();
    dirty_count_ = 0;
  }

  size_t size() const { return entries_.size(); }
  size_t dirty_count() const { return dirty_count_; }
  ReferencePolicy* policy() { return policy_.get(); }

 private:
  struct Entry {
    BlockId block = kInvalidBlock;
    bool dirty = false;
  };

  size_t capacity_;
  std::unique_ptr<ReferencePolicy> policy_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  size_t dirty_count_ = 0;
};

}  // namespace reference
}  // namespace fsbench

#endif  // TESTS_REFERENCE_POLICIES_H_
