// Failure injection across the stack: injected device faults must surface
// as EIO on synchronous paths, be counted (not fatal) on asynchronous
// paths, and never corrupt file-system bookkeeping.
#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/workloads/random_read.h"
#include "src/sim/machine.h"

namespace fsbench {
namespace {

std::unique_ptr<Machine> SmallMachine(FsKind kind = FsKind::kExt2, uint64_t seed = 1) {
  MachineConfig config = PaperTestbedConfig();
  config.seed = seed;
  return std::make_unique<Machine>(kind, config);
}

// Device block backing page `page` of `path`.
BlockId BlockOf(Machine& machine, const std::string& path, uint64_t page) {
  const auto attr = machine.vfs().Stat(path);
  EXPECT_TRUE(attr.ok());
  MetaIo io;
  const auto mapping = machine.fs().MapPage(attr.value.ino, page, &io);
  EXPECT_TRUE(mapping.ok());
  return mapping.value;
}

TEST(FailureInjectionTest, DemandReadFaultIsEio) {
  auto machine = SmallMachine();
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/f", 64 * kKiB), FsStatus::kOk);
  machine->disk().InjectError(BlockOf(*machine, "/f", 2) * machine->fs().sectors_per_block());
  const auto fd = vfs.Open("/f");
  ASSERT_TRUE(fd.ok());
  // Page 2 faults on its demand read (issued first, before sequential
  // readahead could prefetch it); other pages are fine.
  EXPECT_EQ(vfs.Read(fd.value, 8 * kKiB, 4 * kKiB).status, FsStatus::kIoError);
  EXPECT_TRUE(vfs.Read(fd.value, 0, 4 * kKiB).ok());
  // Recovery after the fault clears.
  machine->disk().ClearErrors();
  EXPECT_TRUE(vfs.Read(fd.value, 8 * kKiB, 4 * kKiB).ok());
}

TEST(FailureInjectionTest, ReadaheadFaultDoesNotFailTheDemandRead) {
  auto machine = SmallMachine();
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/f", 256 * kKiB), FsStatus::kOk);
  // Poison a later page: sequential readahead will touch it asynchronously.
  machine->disk().InjectError(BlockOf(*machine, "/f", 8) * machine->fs().sectors_per_block());
  const auto fd = vfs.Open("/f");
  ASSERT_TRUE(fd.ok());
  // Sequential reads of the early pages trigger readahead over the poisoned
  // block; the foreground reads themselves must not fail.
  for (uint64_t page = 0; page < 6; ++page) {
    EXPECT_TRUE(vfs.Read(fd.value, page * 4 * kKiB, 4 * kKiB).ok()) << "page " << page;
  }
  // Service whatever readahead is still queued, then assert the fault was
  // actually hit: page 8 is covered by exactly one readahead request (its
  // page was inserted into the cache at submit, so no later window re-reads
  // it), and that one request errors exactly once.
  machine->scheduler().Drain(machine->clock().now());
  EXPECT_EQ(machine->scheduler().stats().async_errors, 1u);
}

TEST(FailureInjectionTest, MetaReadFaultSurfacesOnColdLookup) {
  auto machine = SmallMachine();
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/f", 16 * kMiB), FsStatus::kOk);
  // Find an indirect meta block (ext2: pages >= 12 need one).
  const auto attr = vfs.Stat("/f");
  ASSERT_TRUE(attr.ok());
  MetaIo io;
  ASSERT_TRUE(machine->fs().MapPage(attr.value.ino, 100, &io).ok());
  ASSERT_FALSE(io.reads.empty());
  const BlockId meta_block = io.reads.back().block;
  machine->disk().InjectError(meta_block * machine->fs().sectors_per_block());
  vfs.DropCaches();
  const auto fd = vfs.Open("/f");
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(vfs.Read(fd.value, 100 * 4 * kKiB, 4 * kKiB).status, FsStatus::kIoError);
}

TEST(FailureInjectionTest, ExperimentReportsFailedRunsInsteadOfCrashing) {
  // A machine whose disk faults on a fixed LBA; some runs will trip it.
  const MachineFactory faulty = [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    auto machine = std::make_unique<Machine>(FsKind::kExt2, config);
    // Poison a swath of the data area used by the first file.
    const uint64_t base = 256 * 8;  // first group's data start, in sectors
    for (uint64_t i = 0; i < 64; ++i) {
      machine->disk().InjectError(base + i * 8);
    }
    return machine;
  };
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 5 * kSecond;
  const ExperimentResult result = Experiment(config).Run(faulty, [] {
    RandomReadConfig workload_config;
    workload_config.file_size = 8 * kMiB;
    return std::make_unique<RandomReadWorkload>(workload_config);
  });
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    if (!run.ok) {
      EXPECT_EQ(run.error, FsStatus::kIoError);
    }
  }
  EXPECT_FALSE(result.AllOk());
}

TEST(FailureInjectionTest, FsConsistencySurvivesFaults) {
  auto machine = SmallMachine();
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/f", 64 * kKiB), FsStatus::kOk);
  machine->disk().InjectError(BlockOf(*machine, "/f", 0) * machine->fs().sectors_per_block());
  const auto fd = vfs.Open("/f");
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(vfs.Read(fd.value, 0, 4 * kKiB).status, FsStatus::kIoError);
  // The failure is an I/O error, not a bookkeeping corruption: fsck passes
  // and the file can still be removed.
  std::string error;
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
  EXPECT_EQ(vfs.Unlink("/f"), FsStatus::kOk);
  EXPECT_TRUE(machine->fs().CheckConsistency(&error)) << error;
}

// --- Degraded-mode matrix: errors=remount-ro vs errors=continue ---

// Poisons every sector of the file system's journal/log region, so the next
// commit's writes fail permanently (default retry policy: one attempt).
void PoisonExtent(Machine& machine, const Extent& region) {
  const uint32_t spb = machine.fs().sectors_per_block();
  machine.disk().InjectError(region.start * spb, static_cast<uint32_t>(region.count * spb));
}

// Churns writes + fsyncs until the file system trips into read-only mode
// (or gives up after a bounded number of rounds — the caller asserts).
void ChurnUntilReadOnly(Machine& machine) {
  Vfs& vfs = machine.vfs();
  const auto fd = vfs.Open("/churn", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  for (int round = 0; round < 10 && !machine.fs().read_only(); ++round) {
    vfs.Write(fd.value, static_cast<Bytes>(round) * 16 * kKiB, 16 * kKiB);
    vfs.Fsync(fd.value);
  }
}

TEST(FailureInjectionTest, Ext3LogWriteFailureRemountsReadOnly) {
  auto machine = SmallMachine(FsKind::kExt3);
  Vfs& vfs = machine->vfs();
  // Seed a readable file before the fault so degraded reads have a target.
  ASSERT_EQ(vfs.MakeFile("/keep", 16 * kKiB), FsStatus::kOk);
  auto* ext3 = dynamic_cast<Ext3Fs*>(&machine->fs());
  ASSERT_NE(ext3, nullptr);
  PoisonExtent(*machine, ext3->journal_region());

  ChurnUntilReadOnly(*machine);
  // Losing journal writes forfeits atomicity: ext3 aborts the journal and
  // remounts read-only.
  EXPECT_TRUE(machine->fs().read_only());
  EXPECT_TRUE(machine->fs().journal_aborted());
  EXPECT_GE(machine->fs().meta_io_failures(), 1u);
  EXPECT_GE(vfs.stats().meta_write_errors, 1u);

  // Degraded mode is read-only, not dead: mutations are refused, reads are
  // still served.
  EXPECT_EQ(vfs.CreateFile("/new"), FsStatus::kReadOnly);
  EXPECT_EQ(vfs.Unlink("/keep"), FsStatus::kReadOnly);
  EXPECT_GE(vfs.stats().readonly_rejects, 2u);
  const auto fd = vfs.Open("/keep");
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(vfs.Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_GE(vfs.stats().degraded_reads, 1u);
}

TEST(FailureInjectionTest, XfsLogWriteFailureRemountsReadOnly) {
  auto machine = SmallMachine(FsKind::kXfs);
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/keep", 16 * kKiB), FsStatus::kOk);
  auto* xfs = dynamic_cast<XfsFs*>(&machine->fs());
  ASSERT_NE(xfs, nullptr);
  PoisonExtent(*machine, xfs->journal_region());

  // The CIL batches deltas in memory; each fsync forces a log push into the
  // poisoned region.
  ChurnUntilReadOnly(*machine);
  EXPECT_TRUE(machine->fs().read_only());
  EXPECT_TRUE(machine->fs().journal_aborted());
  EXPECT_EQ(vfs.CreateFile("/new"), FsStatus::kReadOnly);
  const auto fd = vfs.Open("/keep");
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(vfs.Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_GE(vfs.stats().degraded_reads, 1u);
}

TEST(FailureInjectionTest, Ext2SoldiersOnAfterMetaWriteFailure) {
  auto machine = SmallMachine(FsKind::kExt2);
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/f", 16 * kKiB), FsStatus::kOk);
  // Poison the block of the inode table holding /f's inode: fsync writes it
  // back and the write fails permanently.
  const auto attr = vfs.Stat("/f");
  ASSERT_TRUE(attr.ok());
  const Inode* inode = machine->fs().FindInode(attr.value.ino);
  ASSERT_NE(inode, nullptr);
  machine->disk().InjectError(inode->itable_block * machine->fs().sectors_per_block());

  const auto fd = vfs.Open("/f");
  ASSERT_TRUE(fd.ok());
  // Extend the file: the allocation dirties the inode table block, whose
  // writeback then hits the injected damage.
  ASSERT_TRUE(vfs.Write(fd.value, 16 * kKiB, 16 * kKiB).ok());
  vfs.Fsync(fd.value);
  vfs.SyncAll();

  // ext2 has no journal to lose: the failure is counted, nothing more
  // (errors=continue), and the fs keeps accepting work.
  EXPECT_GE(machine->fs().meta_io_failures(), 1u);
  EXPECT_FALSE(machine->fs().read_only());
  EXPECT_FALSE(machine->fs().journal_aborted());
  EXPECT_EQ(vfs.stats().readonly_rejects, 0u);
  EXPECT_EQ(vfs.CreateFile("/still-writable"), FsStatus::kOk);
}

// Degraded mode composes with the crash machinery (S3): after a journal
// abort + remount-read-only, fsync is still a clean success (there is
// nothing left to make durable, not an error), and a crash at that point
// must not replay the aborted journal tail — its commit records never
// became durable in the poisoned region.
TEST(FailureInjectionTest, Ext3AbortedJournalTailIsNotReplayedAfterCrash) {
  auto machine = SmallMachine(FsKind::kExt3);
  machine->EnableCrashTracking();
  Vfs& vfs = machine->vfs();
  ASSERT_EQ(vfs.MakeFile("/keep", 16 * kKiB), FsStatus::kOk);
  auto* ext3 = dynamic_cast<Ext3Fs*>(&machine->fs());
  ASSERT_NE(ext3, nullptr);
  PoisonExtent(*machine, ext3->journal_region());

  ChurnUntilReadOnly(*machine);
  ASSERT_TRUE(machine->fs().read_only());
  ASSERT_TRUE(machine->fs().journal_aborted());

  // Post-remount-ro fsync: reads-only degraded mode keeps the fsync path
  // alive (it has nothing to write) rather than surfacing a late error.
  const auto fd = vfs.Open("/keep");
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(vfs.Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_EQ(vfs.Fsync(fd.value), FsStatus::kOk);

  // Pull the plug on the degraded machine: mount-time recovery walks the
  // journal, finds no durable commit record from the aborted tail, and
  // discards it instead of replaying garbage.
  const CrashReport report =
      SimulateCrashRecovery(*machine, machine->clock().now(), /*ops_issued=*/0,
                            /*stable_watermark=*/0);
  EXPECT_TRUE(report.used_journal);
  EXPECT_EQ(report.replayed_txns, 0u);
  EXPECT_GE(report.torn_txns, 1u);
}

TEST(FailureInjectionTest, Ext3FsyncSurvivesJournalRegionFault) {
  auto machine = SmallMachine(FsKind::kExt3);
  Vfs& vfs = machine->vfs();
  // Fault somewhere inside the journal region: commit writes hit it
  // asynchronously; only the commit record is waited on.
  auto* ext3 = dynamic_cast<Ext3Fs*>(&machine->fs());
  ASSERT_NE(ext3, nullptr);
  const Extent region = ext3->journal_region();
  machine->disk().InjectError((region.start + 1) * machine->fs().sectors_per_block());
  const auto fd = vfs.Open("/f", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Write(fd.value, 0, 16 * kKiB).ok());
  // Fsync completes; the async journal-block error is counted, not fatal.
  EXPECT_EQ(vfs.Fsync(fd.value), FsStatus::kOk);
}

}  // namespace
}  // namespace fsbench
