#include "src/core/nano_suite.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

MachineFactory PaperMachine(FsKind kind = FsKind::kExt2,
                            EvictionPolicyKind eviction = EvictionPolicyKind::kLru) {
  return [kind, eviction](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    config.eviction = eviction;
    return std::make_unique<Machine>(kind, config);
  };
}

NanoSuiteConfig FastConfig() {
  NanoSuiteConfig config;
  config.runs = 2;
  config.duration = 2 * kSecond;
  config.io_span = 256 * kMiB;
  config.ondisk_file = 480 * kMiB;
  config.warmup_file = 64 * kMiB;
  config.metadata_files = 200;
  return config;
}

TEST(NanoSuiteTest, IoSequentialBandwidthIsMediaRate) {
  const NanoResult result = NanoSuite(FastConfig()).IoSequentialBandwidth(PaperMachine());
  EXPECT_EQ(result.dimension, Dimension::kIo);
  // 1024 sectors/track at 7200 RPM -> ~60 MiB/s media rate.
  EXPECT_GT(result.value, 30.0);
  EXPECT_LT(result.value, 120.0);
}

TEST(NanoSuiteTest, IoRandomLatencyIsMilliseconds) {
  const NanoResult result = NanoSuite(FastConfig()).IoRandomReadLatency(PaperMachine());
  EXPECT_EQ(result.dimension, Dimension::kIo);
  EXPECT_GT(result.value, 3.0);   // ms
  EXPECT_LT(result.value, 20.0);  // ms
}

TEST(NanoSuiteTest, CacheHitLatencyIsMicroseconds) {
  const NanoResult result = NanoSuite(FastConfig()).CacheHitLatency(PaperMachine());
  EXPECT_EQ(result.dimension, Dimension::kCaching);
  EXPECT_GT(result.value, 1.0);    // us
  EXPECT_LT(result.value, 10.0);   // us
}

TEST(NanoSuiteTest, OnDiskRandomReadIsDiskBound) {
  const NanoResult result = NanoSuite(FastConfig()).OnDiskRandomRead(PaperMachine());
  EXPECT_EQ(result.dimension, Dimension::kOnDisk);
  EXPECT_GT(result.value, 30.0);
  EXPECT_LT(result.value, 1000.0);
}

TEST(NanoSuiteTest, OnDiskSequentialBeatsRandomByOrders) {
  NanoSuite suite(FastConfig());
  const NanoResult seq = suite.OnDiskSequentialRead(PaperMachine());
  const NanoResult rand = suite.OnDiskRandomRead(PaperMachine());
  // Sequential MiB/s vs random ops/s*4KiB: compare as bandwidth.
  const double random_mib_s = rand.value * 4096.0 / (1024.0 * 1024.0);
  EXPECT_GT(seq.value, 10.0 * random_mib_s);
}

TEST(NanoSuiteTest, EvictionQualityDistinguishesPolicies) {
  NanoSuiteConfig config = FastConfig();
  config.runs = 1;
  config.duration = 3 * kSecond;
  NanoSuite suite(config);
  const NanoResult lru =
      suite.CacheEvictionQuality(PaperMachine(FsKind::kExt2, EvictionPolicyKind::kLru));
  const NanoResult arc =
      suite.CacheEvictionQuality(PaperMachine(FsKind::kExt2, EvictionPolicyKind::kArc));
  // Both are hit ratios in percent.
  EXPECT_GT(lru.value, 10.0);
  EXPECT_LT(lru.value, 100.0);
  EXPECT_GT(arc.value, 10.0);
  EXPECT_LT(arc.value, 100.0);
}

TEST(NanoSuiteTest, MetadataRatesArePositive) {
  NanoSuite suite(FastConfig());
  const NanoResult create = suite.MetadataCreateRate(PaperMachine());
  EXPECT_EQ(create.dimension, Dimension::kMetadata);
  EXPECT_GT(create.value, 10.0);
  const NanoResult stat = suite.MetadataStatHot(PaperMachine());
  EXPECT_GT(stat.value, 1000.0);  // warm namespace: near memory speed
}

TEST(NanoSuiteTest, ScalingEfficiencyBelowIdeal) {
  NanoSuiteConfig config = FastConfig();
  config.runs = 1;
  const NanoResult result = NanoSuite(config).ScalingEfficiency(PaperMachine());
  EXPECT_EQ(result.dimension, Dimension::kScaling);
  // Disk-bound streams share one spindle: efficiency must be well below
  // 100% but positive.
  EXPECT_GT(result.value, 5.0);
  EXPECT_LT(result.value, 110.0);
}

TEST(NanoSuiteTest, RunAllCoversEveryDimension) {
  NanoSuiteConfig config = FastConfig();
  config.runs = 1;
  config.duration = 1 * kSecond;
  const std::vector<NanoResult> results = NanoSuite(config).RunAll(PaperMachine());
  EXPECT_EQ(results.size(), 10u);
  bool seen[kDimensionCount] = {};
  for (const NanoResult& result : results) {
    seen[static_cast<int>(result.dimension)] = true;
    EXPECT_FALSE(result.name.empty());
    EXPECT_FALSE(result.unit.empty());
  }
  for (int d = 0; d < kDimensionCount; ++d) {
    EXPECT_TRUE(seen[d]) << DimensionName(static_cast<Dimension>(d));
  }
}

}  // namespace
}  // namespace fsbench
