// Journal-client behaviour: JbdJournal (ext3) and CilJournal (xfs delayed
// logging) over the generic transaction log. The log mechanism itself —
// space accounting, checkpointing, stalls, wraparound — is covered by
// tests/txn_log_test.cc.
#include "src/sim/journal.h"

#include <gtest/gtest.h>

#include "src/sim/disk_model.h"

namespace fsbench {
namespace {

MetaRef Ref(BlockId block) { return MetaRef{1, block, block}; }

struct JournalFixture {
  DiskParams params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;

  JournalFixture() : disk(params, 1), scheduler(&disk) {}

  JbdJournal MakeJournal(JournalConfig config = {}) {
    return JbdJournal(&scheduler, &clock, Extent{1000, 8192}, config);
  }

  CilJournal MakeCilJournal(JournalConfig config = {}) {
    return CilJournal(&scheduler, &clock, Extent{1000, 8192}, config);
  }
};

TEST(JournalTest, EmptyCommitIsFree) {
  JournalFixture f;
  JbdJournal journal = f.MakeJournal();
  const Nanos done = journal.CommitSync();
  EXPECT_EQ(done, f.clock.now());
  EXPECT_EQ(journal.stats().commits, 0u);
}

TEST(JournalTest, SyncCommitWaitsForTheCommitRecord) {
  JournalFixture f;
  JbdJournal journal = f.MakeJournal();
  journal.LogMetadata(Ref(42));
  journal.LogMetadata(Ref(43));
  const Nanos done = journal.CommitSync();
  EXPECT_GT(done, f.clock.now());
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().sync_commits, 1u);
  EXPECT_EQ(journal.stats().blocks_logged, 2u);
  EXPECT_EQ(journal.pending_blocks(), 0u);
}

TEST(JournalTest, DuplicateBlocksCoalesceWithinTransaction) {
  JournalFixture f;
  JbdJournal journal = f.MakeJournal();
  journal.LogMetadata(Ref(42));
  journal.LogMetadata(Ref(42));
  journal.LogMetadata(Ref(42));
  EXPECT_EQ(journal.pending_blocks(), 1u);
}

TEST(JournalTest, OrderedModeIgnoresDataBlocks) {
  JournalFixture f;
  JbdJournal journal = f.MakeJournal();
  journal.LogData(Ref(99));
  EXPECT_EQ(journal.pending_blocks(), 0u);
  JournalConfig config;
  config.mode = JournalMode::kJournaled;
  JbdJournal data_journal = f.MakeJournal(config);
  data_journal.LogData(Ref(99));
  EXPECT_EQ(data_journal.pending_blocks(), 1u);
}

TEST(JournalTest, PeriodicCommitFiresAfterInterval) {
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 5 * kSecond;
  JbdJournal journal = f.MakeJournal(config);
  journal.LogMetadata(Ref(1));
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 0u);  // too early
  f.clock.Advance(6 * kSecond);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().sync_commits, 0u);
}

TEST(JournalTest, PeriodicTimerResetsAfterCommit) {
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 5 * kSecond;
  JbdJournal journal = f.MakeJournal(config);
  f.clock.Advance(6 * kSecond);
  journal.LogMetadata(Ref(1));
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);
  journal.LogMetadata(Ref(2));
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);  // timer restarted
}

TEST(JournalTest, CommitClockIsMonotoneAcrossSkewedCursors) {
  // Regression (MT engine): a trailing thread cursor committing via fsync
  // must not regress the periodic-commit timer. Cursor A commits at 10 s;
  // cursor B — bound later but *behind* in virtual time — syncs at 2 s; at
  // 12 s the interval (5 s) has not elapsed since the 10 s commit, so no
  // periodic commit may fire.
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 5 * kSecond;
  JbdJournal journal = f.MakeJournal(config);

  VirtualClock cursor_a;
  VirtualClock cursor_b;
  cursor_a.AdvanceTo(10 * kSecond);
  cursor_b.AdvanceTo(2 * kSecond);

  journal.BindClock(&cursor_a);
  journal.LogMetadata(Ref(1));
  journal.MaybePeriodicCommit();  // 10 s - 0 >= 5 s: commits
  ASSERT_EQ(journal.stats().commits, 1u);

  journal.BindClock(&cursor_b);
  journal.LogMetadata(Ref(2));
  journal.CommitSync();  // trailing cursor at 2 s
  ASSERT_EQ(journal.stats().commits, 2u);

  journal.BindClock(&cursor_a);
  cursor_a.AdvanceTo(12 * kSecond);
  journal.LogMetadata(Ref(3));
  journal.MaybePeriodicCommit();
  // Pre-fix behaviour: last commit time regressed to 2 s, so 12 s - 2 s
  // >= 5 s fired a spurious commit. Monotone: 12 s - 10 s < 5 s.
  EXPECT_EQ(journal.stats().commits, 2u);
}

TEST(JournalTest, JournalWritesAreSequentialOnDisk) {
  JournalFixture f;
  JbdJournal journal = f.MakeJournal();
  for (BlockId b = 0; b < 32; ++b) {
    journal.LogMetadata(Ref(5000 + b * 97));
  }
  journal.CommitSync();
  // Sequential journal writes should mostly be streaming (no seeks beyond
  // the first positioning).
  EXPECT_GE(f.disk.stats().sequential_hits + f.disk.stats().buffer_hits,
            f.disk.stats().writes - 2);
}

// --- CilJournal (delayed logging) -------------------------------------------

TEST(CilJournalTest, DeltasBatchInMemoryUntilPushed) {
  JournalFixture f;
  CilJournal journal = f.MakeCilJournal();
  for (BlockId b = 0; b < 16; ++b) {
    journal.LogMetadata(Ref(100 + b));
  }
  // Nothing on disk yet: the CIL absorbed every delta.
  EXPECT_EQ(journal.cil_blocks(), 16u);
  EXPECT_EQ(journal.stats().commits, 0u);
  EXPECT_EQ(f.disk.stats().writes, 0u);
  f.scheduler.Drain(f.clock.now());
  EXPECT_EQ(f.disk.stats().writes, 0u);

  journal.CommitSync();
  EXPECT_EQ(journal.cil_blocks(), 0u);
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().cil_pushes, 1u);
  EXPECT_EQ(journal.stats().blocks_logged, 16u);
  EXPECT_GT(f.disk.stats().writes, 0u);
}

TEST(CilJournalTest, RelogbgedBlocksCostOneCopyPerPush) {
  // The delayed-logging win: a block re-dirtied N times between pushes hits
  // the log once, where JBD would log it once per commit interval.
  JournalFixture f;
  CilJournal journal = f.MakeCilJournal();
  for (int round = 0; round < 50; ++round) {
    journal.LogMetadata(Ref(7));
  }
  EXPECT_EQ(journal.cil_blocks(), 1u);
  EXPECT_EQ(journal.stats().cil_inserts, 50u);
  journal.CommitSync();
  EXPECT_EQ(journal.stats().blocks_logged, 1u);
}

TEST(CilJournalTest, CilPushesWhenItOutgrowsTheThreshold) {
  JournalFixture f;
  JournalConfig config;
  config.cil_push_blocks = 8;
  CilJournal journal = f.MakeCilJournal(config);
  for (BlockId b = 0; b < 8; ++b) {
    journal.LogMetadata(Ref(200 + b));
  }
  // The 8th distinct delta crossed the threshold: pushed without any fsync.
  EXPECT_EQ(journal.cil_blocks(), 0u);
  EXPECT_EQ(journal.stats().cil_pushes, 1u);
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().sync_commits, 0u);
}

TEST(CilJournalTest, PeriodicPushHonoursTheLogTimer) {
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 30 * kSecond;
  CilJournal journal = f.MakeCilJournal(config);
  journal.LogMetadata(Ref(1));
  f.clock.Advance(5 * kSecond);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 0u);  // ext3 would have committed here
  f.clock.Advance(26 * kSecond);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);
}

}  // namespace
}  // namespace fsbench
