#include "src/sim/journal.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

struct JournalFixture {
  DiskParams params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;

  JournalFixture() : disk(params, 1), scheduler(&disk) {}

  Journal MakeJournal(JournalConfig config = {}) {
    return Journal(&scheduler, &clock, Extent{1000, 8192}, config);
  }
};

TEST(JournalTest, EmptyCommitIsFree) {
  JournalFixture f;
  Journal journal = f.MakeJournal();
  const Nanos done = journal.CommitSync();
  EXPECT_EQ(done, f.clock.now());
  EXPECT_EQ(journal.stats().commits, 0u);
}

TEST(JournalTest, SyncCommitWaitsForTheCommitRecord) {
  JournalFixture f;
  Journal journal = f.MakeJournal();
  journal.LogMetadataBlock(42);
  journal.LogMetadataBlock(43);
  const Nanos done = journal.CommitSync();
  EXPECT_GT(done, f.clock.now());
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().sync_commits, 1u);
  EXPECT_EQ(journal.stats().blocks_logged, 2u);
  EXPECT_EQ(journal.pending_blocks(), 0u);
}

TEST(JournalTest, DuplicateBlocksCoalesceWithinTransaction) {
  JournalFixture f;
  Journal journal = f.MakeJournal();
  journal.LogMetadataBlock(42);
  journal.LogMetadataBlock(42);
  journal.LogMetadataBlock(42);
  EXPECT_EQ(journal.pending_blocks(), 1u);
}

TEST(JournalTest, OrderedModeIgnoresDataBlocks) {
  JournalFixture f;
  Journal journal = f.MakeJournal();
  journal.LogDataBlock(99);
  EXPECT_EQ(journal.pending_blocks(), 0u);
  JournalConfig config;
  config.mode = JournalMode::kJournaled;
  Journal data_journal = f.MakeJournal(config);
  data_journal.LogDataBlock(99);
  EXPECT_EQ(data_journal.pending_blocks(), 1u);
}

TEST(JournalTest, PeriodicCommitFiresAfterInterval) {
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 5 * kSecond;
  Journal journal = f.MakeJournal(config);
  journal.LogMetadataBlock(1);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 0u);  // too early
  f.clock.Advance(6 * kSecond);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().sync_commits, 0u);
}

TEST(JournalTest, PeriodicTimerResetsAfterCommit) {
  JournalFixture f;
  JournalConfig config;
  config.commit_interval = 5 * kSecond;
  Journal journal = f.MakeJournal(config);
  f.clock.Advance(6 * kSecond);
  journal.LogMetadataBlock(1);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);
  journal.LogMetadataBlock(2);
  journal.MaybePeriodicCommit();
  EXPECT_EQ(journal.stats().commits, 1u);  // timer restarted
}

TEST(JournalTest, JournalWritesAreSequentialOnDisk) {
  JournalFixture f;
  Journal journal = f.MakeJournal();
  for (BlockId b = 0; b < 32; ++b) {
    journal.LogMetadataBlock(5000 + b * 97);
  }
  journal.CommitSync();
  // Sequential journal writes should mostly be streaming (no seeks beyond
  // the first positioning).
  EXPECT_GE(f.disk.stats().sequential_hits + f.disk.stats().buffer_hits,
            f.disk.stats().writes - 2);
}

TEST(JournalTest, HeadWrapsAroundRegion) {
  JournalFixture f;
  JournalConfig config;
  Journal journal = Journal(&f.scheduler, &f.clock, Extent{1000, 8}, config);
  // Each commit writes pending + 2 blocks; several commits must wrap the
  // 8-block region without issue.
  for (int tx = 0; tx < 10; ++tx) {
    journal.LogMetadataBlock(100 + tx);
    journal.LogMetadataBlock(200 + tx);
    journal.CommitSync();
  }
  EXPECT_EQ(journal.stats().commits, 10u);
}

}  // namespace
}  // namespace fsbench
