#include "src/core/steady_state.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(SteadyStateTest, FlatSeriesIsSteadyFromStart) {
  const std::vector<double> rates(20, 100.0);
  const SteadyStateReport report = AnalyzeSteadyState(rates);
  EXPECT_TRUE(report.reached);
  EXPECT_EQ(report.steady_start_interval, 0u);
  EXPECT_DOUBLE_EQ(report.steady_mean, 100.0);
  EXPECT_DOUBLE_EQ(report.warmup_fraction, 0.0);
}

TEST(SteadyStateTest, RampThenFlatFindsTheKnee) {
  std::vector<double> rates;
  for (int i = 0; i < 10; ++i) {
    rates.push_back(10.0 * (i + 1));  // 10..100
  }
  for (int i = 0; i < 10; ++i) {
    rates.push_back(100.0);
  }
  const SteadyStateReport report = AnalyzeSteadyState(rates);
  ASSERT_TRUE(report.reached);
  EXPECT_GE(report.steady_start_interval, 8u);
  EXPECT_LE(report.steady_start_interval, 10u);
  EXPECT_NEAR(report.steady_mean, 100.0, 2.0);
  EXPECT_GT(report.warmup_fraction, 0.3);
}

TEST(SteadyStateTest, NoisyTailWithinToleranceIsSteady) {
  std::vector<double> rates;
  for (int i = 0; i < 20; ++i) {
    rates.push_back(100.0 + (i % 2 == 0 ? 2.0 : -2.0));  // 4% spread
  }
  SteadyStateConfig config;
  config.tolerance = 0.05;
  EXPECT_TRUE(AnalyzeSteadyState(rates, config).reached);
  config.tolerance = 0.01;
  EXPECT_FALSE(AnalyzeSteadyState(rates, config).reached);
}

TEST(SteadyStateTest, EverGrowingSeriesNeverSteady) {
  std::vector<double> rates;
  for (int i = 0; i < 30; ++i) {
    rates.push_back(100.0 * (i + 1));
  }
  EXPECT_FALSE(AnalyzeSteadyState(rates).reached);
}

TEST(SteadyStateTest, ShortSeriesNotSteady) {
  EXPECT_FALSE(AnalyzeSteadyState({1.0, 1.0}).reached);
}

TEST(SteadyStateTest, LateDisturbanceBreaksSteadiness) {
  std::vector<double> rates(20, 100.0);
  rates[18] = 10.0;  // crash near the end
  const SteadyStateReport report = AnalyzeSteadyState(rates);
  EXPECT_FALSE(report.reached);
}

TEST(SteadyStateTest, WarmupDurationScalesWithInterval) {
  std::vector<double> rates;
  for (int i = 0; i < 10; ++i) {
    rates.push_back(10.0 * (i + 1));
  }
  for (int i = 0; i < 10; ++i) {
    rates.push_back(100.0);
  }
  const auto duration = WarmupDuration(rates, 10 * kSecond);
  ASSERT_TRUE(duration.has_value());
  EXPECT_GE(*duration, 80 * kSecond);
  EXPECT_LE(*duration, 100 * kSecond);
  EXPECT_FALSE(WarmupDuration({1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}, kSecond).has_value());
}

}  // namespace
}  // namespace fsbench
