// The block-redundancy layer's contracts: geometry mapping, deterministic
// replica selection, degraded serving (mirror rescues, lost stripes),
// replica write-failure absorption, whole-device death with hot-spare
// rebuild, background scrub detection/repair, and — the load-bearing one —
// that a pass-through array is byte-identical to the classic single-device
// stack.
#include "src/sim/block_array.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/sim/machine.h"

namespace fsbench {
namespace {

constexpr uint64_t kRegion = 2048;  // DiskModel's default remap granularity

// A bare array over freshly built disk+scheduler pairs (no Machine, no VFS):
// the unit fixture. Device d gets seed 100 + d so replicas are distinct
// devices, as in the real fleet.
struct BareArray {
  std::vector<std::unique_ptr<DiskModel>> disks;
  std::vector<std::unique_ptr<IoScheduler>> schedulers;
  std::unique_ptr<BlockArray> array;

  BareArray(ArrayGeometry geometry, size_t devices, size_t spares,
            const ArrayConfig& base = ArrayConfig{}) {
    ArrayConfig config = base;
    config.geometry = geometry;
    config.devices = static_cast<uint32_t>(devices);
    config.hot_spares = static_cast<uint32_t>(spares);
    std::vector<IoScheduler*> data;
    std::vector<IoScheduler*> spare_ptrs;
    for (size_t d = 0; d < devices + spares; ++d) {
      disks.push_back(std::make_unique<DiskModel>(DiskParams{}, /*seed=*/100 + d));
      schedulers.push_back(std::make_unique<IoScheduler>(disks.back().get()));
      (d < devices ? data : spare_ptrs).push_back(schedulers.back().get());
    }
    array = std::make_unique<BlockArray>(config, data, spare_ptrs);
    for (auto& scheduler : schedulers) {
      scheduler->set_write_error_sink(array.get());
    }
  }

  // Whole-device death at `kill_time` for device `d` (all fault rates zero,
  // so nothing else changes).
  void KillAt(size_t d, Nanos kill_time) {
    FaultPlanConfig plan;
    plan.device_kill_time = kill_time;
    disks[d]->EnableFaults(plan, /*seed=*/7 + d);
  }
};

struct RecordingSink : public IoWriteErrorSink {
  uint64_t calls = 0;
  void OnWriteError(const IoRequest&, Nanos) override { ++calls; }
};

IoRequest Read(uint64_t lba, uint32_t count) { return IoRequest{IoKind::kRead, lba, count, false}; }
IoRequest Write(uint64_t lba, uint32_t count) {
  return IoRequest{IoKind::kWrite, lba, count, false};
}

// --- Geometry mapping ---

TEST(BlockArrayTest, StripeSplitsChunksRoundRobinAcrossDevices) {
  BareArray a(ArrayGeometry::kStripe, 2, 0);
  ASSERT_EQ(a.array->width(), 2u);
  ASSERT_EQ(a.array->replicas(), 1u);
  // Four 256-sector chunks: 0 and 2 land on device 0 (physical 0 and 256),
  // 1 and 3 on device 1 — issued in logical order, so each device sees its
  // two chunks as separate requests.
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 1024), 0).has_value());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(a.disks[d]->stats().writes, 2u) << "device " << d;
    EXPECT_EQ(a.disks[d]->stats().sectors_written, 512u) << "device " << d;
  }
  EXPECT_EQ(a.array->summary().writes, 1u);
}

TEST(BlockArrayTest, StripeMisalignedRequestSplitsAtChunkBoundary) {
  BareArray a(ArrayGeometry::kStripe, 2, 0);
  // [192, 320): tail of chunk 0 (device 0) + head of chunk 1 (device 1).
  ASSERT_TRUE(a.array->SubmitSync(Write(192, 128), 0).has_value());
  EXPECT_EQ(a.disks[0]->stats().sectors_written, 64u);
  EXPECT_EQ(a.disks[1]->stats().sectors_written, 64u);
}

TEST(BlockArrayTest, StripeMirrorCombinesBothAxes) {
  BareArray a(ArrayGeometry::kStripeMirror, 4, 0);
  ASSERT_EQ(a.array->width(), 2u);
  ASSERT_EQ(a.array->replicas(), 2u);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 512), 0).has_value());
  // Chunk 0 -> set 0 (devices 0,1), chunk 1 -> set 1 (devices 2,3); every
  // replica of a touched set gets its copy.
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(a.disks[d]->stats().sectors_written, 256u) << "device " << d;
  }
}

// --- Mirror semantics ---

TEST(BlockArrayTest, MirrorFansOutWritesAndReadsExactlyOneReplica) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 8), 0).has_value());
  EXPECT_EQ(a.disks[0]->stats().sectors_written, 8u);
  EXPECT_EQ(a.disks[1]->stats().sectors_written, 8u);

  const Nanos now = a.schedulers[0]->busy_until();
  ASSERT_TRUE(a.array->SubmitSync(Read(0, 8), now).has_value());
  EXPECT_EQ(a.disks[0]->stats().reads + a.disks[1]->stats().reads, 1u);
}

TEST(BlockArrayTest, MirrorReadPicksTheReplicaThatFreesUpFirst) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  // Occupy device 0 directly; the array must route the read to device 1.
  ASSERT_TRUE(a.schedulers[0]->SubmitSync(Read(4096, 1024), 0).has_value());
  ASSERT_GT(a.schedulers[0]->busy_until(), 0);
  ASSERT_TRUE(a.array->SubmitSync(Read(0, 8), 0).has_value());
  EXPECT_EQ(a.disks[1]->stats().reads, 1u);
}

TEST(BlockArrayTest, MirrorRescuesReadFromSurvivingReplica) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  a.disks[0]->InjectError(0, 8);
  // Tie on busy_until picks device 0, which fails; the rescue walk serves
  // the read from device 1 and the caller never sees the fault.
  const std::optional<Nanos> done = a.array->SubmitSync(Read(0, 8), 0);
  ASSERT_TRUE(done.has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_EQ(s.degraded_reads, 1u);
  EXPECT_EQ(s.mirror_rescues, 1u);
  EXPECT_EQ(s.lost_stripes, 0u);
  EXPECT_FALSE(s.data_loss);
  EXPECT_EQ(a.disks[1]->stats().reads, 1u);
}

TEST(BlockArrayTest, LostStripeWhenEveryReplicaFails) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  a.disks[0]->InjectError(0, 8);
  a.disks[1]->InjectError(0, 8);
  EXPECT_FALSE(a.array->SubmitSync(Read(0, 8), 0).has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_EQ(s.degraded_reads, 1u);
  EXPECT_EQ(s.mirror_rescues, 0u);
  EXPECT_EQ(s.lost_stripes, 1u);
}

TEST(BlockArrayTest, ReplicaWriteFailureAbsorbedWhileRedundancyHolds) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  RecordingSink downstream;
  a.array->set_downstream_sink(&downstream);
  a.disks[0]->InjectError(0, 8);
  // Device 0's copy fails; device 1's lands. The set still holds the data,
  // so the failure is the array's business, not the file system's.
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 8), 0).has_value());
  EXPECT_EQ(a.array->summary().replica_write_errors, 1u);
  EXPECT_EQ(downstream.calls, 0u);
}

TEST(BlockArrayTest, SetWideWriteFailureForwardsDownstream) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  RecordingSink downstream;
  a.array->set_downstream_sink(&downstream);
  a.disks[0]->InjectError(0, 8);
  a.disks[1]->InjectError(0, 8);
  EXPECT_FALSE(a.array->SubmitSync(Write(0, 8), 0).has_value());
  EXPECT_EQ(downstream.calls, 1u);
  EXPECT_EQ(a.array->summary().replica_write_errors, 2u);
}

// --- Whole-device death and rebuild ---

TEST(BlockArrayTest, DeviceDeathDegradesThenRebuildsOntoHotSpare) {
  BareArray a(ArrayGeometry::kMirror, 2, 1);
  a.KillAt(0, 1 * kMillisecond);
  // Two remap-regions of data before the death.
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 2 * kRegion), 0).has_value());

  // First touch after the kill: the death is latched *before* replica
  // selection, so the read routes straight to the survivor (no degraded
  // attempt on the corpse) and a rebuild onto the spare begins.
  const std::optional<Nanos> done = a.array->SubmitSync(Read(0, 8), 2 * kMillisecond);
  ASSERT_TRUE(done.has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_EQ(s.device_failures, 1u);
  EXPECT_EQ(s.degraded_reads, 0u);
  EXPECT_EQ(s.rebuilds_started, 1u);
  EXPECT_EQ(a.array->LiveReplicas(0), 1u);
  EXPECT_TRUE(a.array->RebuildActive());

  // Let virtual time pass: the throttled copy loop resilvers the written
  // extent (2 regions) from the survivor onto the spare.
  a.array->Drain(1 * kSecond);
  EXPECT_FALSE(a.array->RebuildActive());
  EXPECT_EQ(a.array->summary().rebuilds_completed, 1u);
  EXPECT_EQ(a.array->summary().rebuild_regions_copied, 2u);
  EXPECT_EQ(a.array->LiveReplicas(0), 2u);
  EXPECT_FALSE(a.array->summary().data_loss);
  // The spare really holds the image: the survivor fed it 2 regions (its
  // other read is the 8-sector foreground access above).
  EXPECT_EQ(a.disks[2]->stats().sectors_written, 2 * kRegion);
  EXPECT_EQ(a.disks[1]->stats().sectors_read, 2 * kRegion + 8);

  // The rebuilt set serves reads again, from either current member.
  EXPECT_TRUE(a.array->SubmitSync(Read(0, 8), 2 * kSecond).has_value());
}

TEST(BlockArrayTest, WritesDuringRebuildKeepTheSpareCurrent) {
  ArrayConfig base;
  base.rebuild_interval = 10 * kMillisecond;  // slow, so the window is open
  BareArray a(ArrayGeometry::kMirror, 2, 1, base);
  a.KillAt(0, 1 * kMillisecond);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 4 * kRegion), 0).has_value());

  // Trigger the death + rebuild start, then write while it is in flight.
  ASSERT_TRUE(a.array->SubmitSync(Read(0, 8), 2 * kMillisecond).has_value());
  ASSERT_TRUE(a.array->RebuildActive());
  const uint64_t spare_before = a.disks[2]->stats().sectors_written;
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 8), 3 * kMillisecond).has_value());
  // The foreground write fanned out to the resilvering spare too.
  EXPECT_EQ(a.disks[2]->stats().sectors_written, spare_before + 8);
}

TEST(BlockArrayTest, SecondDeathWithoutSpareIsReportedDataLossNotACrash) {
  BareArray a(ArrayGeometry::kMirror, 2, 0);
  a.KillAt(0, 1 * kMillisecond);
  a.KillAt(1, 2 * kMillisecond);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, kRegion), 0).has_value());

  EXPECT_FALSE(a.array->SubmitSync(Read(0, 8), 3 * kMillisecond).has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_EQ(s.device_failures, 2u);
  EXPECT_TRUE(s.data_loss);
  EXPECT_EQ(s.lost_stripes, 1u);
  EXPECT_EQ(a.array->LiveReplicas(0), 0u);

  // Writes to the dead set fail downstream-visibly but still do not crash.
  RecordingSink downstream;
  a.array->set_downstream_sink(&downstream);
  EXPECT_FALSE(a.array->SubmitSync(Write(0, 8), 4 * kMillisecond).has_value());
  EXPECT_EQ(downstream.calls, 1u);
}

// --- Background scrub ---

TEST(BlockArrayTest, ScrubDetectsLatentRegionBeforeForegroundAndRepairsIt) {
  ArrayConfig base;
  base.scrub = true;
  base.scrub_interval = 1 * kMillisecond;
  BareArray a(ArrayGeometry::kMirror, 2, 0, base);
  // Write two regions while the media is clean, then region 0 of device 0
  // silently rots — the latent-sector-error scenario.
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 2 * kRegion), 0).has_value());
  a.disks[0]->InjectError(100, 8);

  // Foreground traffic elsewhere gives the scrubber virtual time to walk.
  ASSERT_TRUE(a.array->SubmitSync(Read(kRegion, 8), 10 * kMillisecond).has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_GE(s.scrub_regions_scanned, 1u);
  EXPECT_EQ(s.scrub_detections, 1u);
  EXPECT_EQ(s.scrub_preempted, 1u);  // no client ever hit the region
  EXPECT_EQ(s.scrub_repairs, 1u);
  EXPECT_EQ(s.scrub_unrepairable, 0u);
  EXPECT_EQ(a.disks[0]->remapped_regions(), 1u);

  // The repaired region serves reads cleanly from device 0 again.
  const uint64_t degraded_before = s.degraded_reads;
  ASSERT_TRUE(a.array->SubmitSync(Read(100, 8), 20 * kMillisecond).has_value());
  EXPECT_EQ(a.array->summary().degraded_reads, degraded_before);
}

TEST(BlockArrayTest, ForegroundHitBeforeScrubIsNotCountedPreempted) {
  ArrayConfig base;
  base.scrub = true;
  base.scrub_interval = 50 * kMillisecond;  // late enough to lose the race
  BareArray a(ArrayGeometry::kMirror, 2, 0, base);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, kRegion), 0).has_value());
  a.disks[0]->InjectError(100, 8);

  // A client stumbles on the region first: keep device 1 busier so replica
  // selection sends the read to device 0 (rescued from the mirror)...
  ASSERT_TRUE(a.schedulers[1]->SubmitSync(Read(8 * kRegion, 512), 30 * kMillisecond).has_value());
  ASSERT_TRUE(a.array->SubmitSync(Read(100, 8), 30 * kMillisecond).has_value());
  ASSERT_EQ(a.array->summary().degraded_reads, 1u);
  // ...so the scrub's later detection is not a preemption.
  ASSERT_TRUE(a.array->SubmitSync(Read(8, 8), 200 * kMillisecond).has_value());
  const ArraySummary& s = a.array->summary();
  EXPECT_GE(s.scrub_detections, 1u);
  EXPECT_EQ(s.scrub_preempted, 0u);
}

TEST(BlockArrayTest, ScrubOnAStripeIsDetectionOnly) {
  ArrayConfig base;
  base.scrub = true;
  base.scrub_interval = 1 * kMillisecond;
  BareArray a(ArrayGeometry::kStripe, 2, 0, base);
  ASSERT_TRUE(a.array->SubmitSync(Write(0, 2 * kRegion), 0).has_value());
  a.disks[0]->InjectError(100, 8);

  ASSERT_TRUE(a.array->SubmitSync(Read(256, 8), 10 * kMillisecond).has_value());
  const ArraySummary& s = a.array->summary();
  // No mirror source: the rot is found but cannot be repaired.
  EXPECT_GE(s.scrub_detections, 1u);
  EXPECT_EQ(s.scrub_repairs, 0u);
  EXPECT_GE(s.scrub_unrepairable, 1u);
  EXPECT_EQ(a.disks[0]->remapped_regions(), 0u);
}

// --- Determinism ---

TEST(BlockArrayTest, IdenticalSequencesProduceIdenticalSummaries) {
  auto run = []() {
    ArrayConfig base;
    base.scrub = true;
    base.scrub_interval = 1 * kMillisecond;
    BareArray a(ArrayGeometry::kMirror, 2, 1, base);
    a.KillAt(0, 5 * kMillisecond);
    a.disks[1]->InjectError(3 * kRegion + 10, 8);
    a.array->SubmitSync(Write(0, 4 * kRegion), 0);
    for (int i = 0; i < 50; ++i) {
      a.array->SubmitSync(Read((i % 8) * 512, 8), (1 + i) * kMillisecond);
    }
    a.array->Drain(200 * kMillisecond);
    return std::make_pair(a.array->summary(), a.schedulers[1]->busy_until());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.second, second.second);
  const ArraySummary& x = first.first;
  const ArraySummary& y = second.first;
  EXPECT_EQ(x.reads, y.reads);
  EXPECT_EQ(x.degraded_reads, y.degraded_reads);
  EXPECT_EQ(x.mirror_rescues, y.mirror_rescues);
  EXPECT_EQ(x.device_failures, y.device_failures);
  EXPECT_EQ(x.scrub_regions_scanned, y.scrub_regions_scanned);
  EXPECT_EQ(x.scrub_detections, y.scrub_detections);
  EXPECT_EQ(x.scrub_repairs, y.scrub_repairs);
  EXPECT_EQ(x.rebuild_regions_copied, y.rebuild_regions_copied);
  EXPECT_EQ(x.rebuilds_completed, y.rebuilds_completed);
}

// --- Machine integration ---

TEST(BlockArrayMachineTest, MachineAssemblesTheDeviceFleet) {
  MachineConfig config = PaperTestbedConfig();
  config.array.geometry = ArrayGeometry::kMirror;
  config.array.devices = 2;
  config.array.hot_spares = 1;
  config.array.journal_device = true;
  Machine machine(FsKind::kExt3, config);
  // 2 data + 1 spare + 1 journal device.
  EXPECT_EQ(machine.device_count(), 4u);
  ASSERT_NE(machine.array(), nullptr);
  EXPECT_EQ(machine.array()->summary().devices, 3u);  // journal device is outside
  EXPECT_EQ(machine.array()->replicas(), 2u);
}

// Regression (S1): the configured spare pool is reported even when every
// fault rate is zero and no plan is attached — rate=0 sweep rows used to
// show the 64-region default instead of their configured pool.
TEST(BlockArrayMachineTest, ConfiguredSparePoolReportedWithoutFaultPlan) {
  MachineConfig config = PaperTestbedConfig();
  config.faults.spare_regions = 512;
  config.faults.region_sectors = 256;
  // All rates zero: FaultPlanConfig::enabled() is false, no plan attached.
  Machine machine(FsKind::kExt2, config);
  EXPECT_EQ(machine.disk().fault_plan(), nullptr);
  EXPECT_EQ(machine.disk().spare_regions_left(), 512u);
  EXPECT_EQ(machine.disk().region_sectors(), 256u);
}

// A single-device "mirror" must be byte-identical to no array at all: the
// pass-through differential that pins the redundancy-off contract.
TEST(BlockArrayMachineTest, SingleDeviceArrayIsByteIdenticalToNoArray) {
  MachineConfig plain_config = PaperTestbedConfig();
  plain_config.seed = 17;
  MachineConfig array_config = plain_config;
  array_config.array.geometry = ArrayGeometry::kMirror;
  array_config.array.devices = 1;

  Machine plain(FsKind::kExt3, plain_config);
  Machine mirrored(FsKind::kExt3, array_config);
  ASSERT_NE(mirrored.array(), nullptr);

  auto drive = [](Machine& m) {
    ASSERT_EQ(m.vfs().MakeFile("/f", 4 * kMiB), FsStatus::kOk);
    const auto fd = m.vfs().Open("/f");
    ASSERT_TRUE(fd.ok());
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0) {
        ASSERT_TRUE(m.vfs().Write(fd.value, (i % 64) * 4096, 4096).ok());
      } else {
        ASSERT_TRUE(m.vfs().Read(fd.value, ((i * 7) % 1024) * 4096, 4096).ok());
      }
      if (i % 16 == 0) {
        ASSERT_EQ(m.vfs().Fsync(fd.value), FsStatus::kOk);
      }
    }
    m.vfs().SyncAll();
  };
  drive(plain);
  drive(mirrored);

  EXPECT_EQ(plain.clock().now(), mirrored.clock().now());
  const DiskStats a = plain.AggregateDiskStats();
  const DiskStats b = mirrored.AggregateDiskStats();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.sectors_read, b.sectors_read);
  EXPECT_EQ(a.sectors_written, b.sectors_written);
  EXPECT_EQ(a.seeks, b.seeks);
  EXPECT_EQ(a.total_service_time, b.total_service_time);
  const IoSchedulerStats sa = plain.AggregateSchedulerStats();
  const IoSchedulerStats sb = mirrored.AggregateSchedulerStats();
  EXPECT_EQ(sa.sync_requests, sb.sync_requests);
  EXPECT_EQ(sa.async_requests, sb.async_requests);
  EXPECT_EQ(sa.total_sync_wait, sb.total_sync_wait);
  EXPECT_EQ(sa.max_queue_depth, sb.max_queue_depth);
  EXPECT_EQ(plain.vfs().stats().data_page_hits, mirrored.vfs().stats().data_page_hits);
  EXPECT_EQ(plain.vfs().stats().writeback_pages, mirrored.vfs().stats().writeback_pages);
}

}  // namespace
}  // namespace fsbench
