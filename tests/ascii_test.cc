#include "src/util/ascii.h"

#include <gtest/gtest.h>

namespace fsbench {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.Render();
  // Every line has the same width.
  size_t width = 0;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (width == 0) {
      width = len;
    }
    EXPECT_EQ(len, width);
    start = end + 1;
  }
  EXPECT_NE(out.find("longer-name"), std::string::npos);
}

TEST(AsciiTableTest, ShortRowsRenderEmptyCells) {
  AsciiTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"x"});
  EXPECT_NE(table.Render().find('x'), std::string::npos);
}

TEST(AsciiTableTest, SeparatorRendersDashes) {
  AsciiTable table;
  table.SetHeader({"col"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.Render();
  // Header separator + explicit one.
  size_t dashes = 0;
  size_t pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++dashes;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(dashes, 2u);
}

TEST(AsciiTableTest, IndentPrefixesEveryLine) {
  AsciiTable table;
  table.SetHeader({"h"});
  table.AddRow({"v"});
  const std::string out = table.Render(4);
  size_t start = 0;
  while (start < out.size()) {
    EXPECT_EQ(out.substr(start, 4), "    ");
    const size_t end = out.find('\n', start);
    start = end + 1;
  }
}

TEST(AsciiBarTest, ScalesAndClamps) {
  EXPECT_EQ(AsciiBar(0.0, 100.0, 10), "");
  EXPECT_EQ(AsciiBar(-1.0, 100.0, 10), "");
  EXPECT_EQ(AsciiBar(100.0, 100.0, 10).size(), 10u);
  EXPECT_EQ(AsciiBar(50.0, 100.0, 10).size(), 5u);
  // Small nonzero values still show one character.
  EXPECT_EQ(AsciiBar(0.001, 100.0, 10).size(), 1u);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(64ULL * 1024 * 1024), "64MiB");
  EXPECT_EQ(FormatBytes(1024), "1KiB");
  EXPECT_EQ(FormatBytes(25ULL * 1024 * 1024 * 1024), "25GiB");
  EXPECT_EQ(FormatBytes(1536), "1.5KiB");
}

TEST(FormatNanosTest, PicksUnits) {
  EXPECT_EQ(FormatNanos(500), "500ns");
  EXPECT_EQ(FormatNanos(4100), "4.10us");
  EXPECT_EQ(FormatNanos(8390000), "8.39ms");
  EXPECT_EQ(FormatNanos(2500000000LL), "2.50s");
}

}  // namespace
}  // namespace fsbench
