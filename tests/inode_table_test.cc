#include "src/sim/inode_table.h"

#include <gtest/gtest.h>

#include <set>

namespace fsbench {
namespace {

Inode MakeInode(InodeId ino) {
  Inode inode;
  inode.ino = ino;
  inode.size = ino * 100;
  return inode;
}

TEST(InodeTableTest, InsertFindErase) {
  InodeTable table;
  table.Insert(MakeInode(1));
  table.Insert(MakeInode(2));
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.Find(1)->size, 100u);
  EXPECT_EQ(table.Find(3), nullptr);
  table.Erase(1);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_EQ(table.size(), 1u);
  table.Erase(1);  // double erase is a no-op
  EXPECT_EQ(table.size(), 1u);
}

TEST(InodeTableTest, PointersStableAcrossGrowthAndOtherInserts) {
  InodeTable table;
  Inode* first = table.Insert(MakeInode(1));
  // Push through several index growths (sequential ids, like the FS mints).
  for (InodeId ino = 2; ino <= 500; ++ino) {
    table.Insert(MakeInode(ino));
  }
  EXPECT_EQ(first, table.Find(1));  // slab addresses never move
  EXPECT_EQ(first->size, 100u);
}

TEST(InodeTableTest, SlabPositionsAreRecycled) {
  InodeTable table;
  for (InodeId ino = 1; ino <= 40; ++ino) {
    table.Insert(MakeInode(ino));
  }
  for (InodeId ino = 1; ino <= 40; ino += 2) {
    table.Erase(ino);
  }
  // Re-inserting as many as were erased must not grow the slab: the new
  // inodes land in recycled positions (observable through stable size).
  for (InodeId ino = 100; ino < 120; ++ino) {
    ASSERT_NE(table.Insert(MakeInode(ino)), nullptr);
  }
  EXPECT_EQ(table.size(), 40u);
  for (InodeId ino = 2; ino <= 40; ino += 2) {
    ASSERT_NE(table.Find(ino), nullptr);
    EXPECT_EQ(table.Find(ino)->size, ino * 100);
  }
}

TEST(InodeTableTest, BackwardShiftKeepsProbeRunsReachable) {
  // Sequential ids with interleaved erases stress the backward-shift path;
  // every surviving id must remain findable.
  InodeTable table;
  for (InodeId ino = 1; ino <= 1000; ++ino) {
    table.Insert(MakeInode(ino));
  }
  for (InodeId ino = 1; ino <= 1000; ino += 3) {
    table.Erase(ino);
  }
  for (InodeId ino = 1; ino <= 1000; ++ino) {
    if ((ino - 1) % 3 == 0) {
      EXPECT_EQ(table.Find(ino), nullptr) << ino;
    } else {
      ASSERT_NE(table.Find(ino), nullptr) << ino;
      EXPECT_EQ(table.Find(ino)->ino, ino);
    }
  }
}

TEST(InodeTableTest, IterationVisitsEveryLiveInodeOnce) {
  InodeTable table;
  for (InodeId ino = 1; ino <= 100; ++ino) {
    table.Insert(MakeInode(ino));
  }
  for (InodeId ino = 10; ino <= 50; ++ino) {
    table.Erase(ino);
  }
  std::set<InodeId> seen;
  for (const Inode& inode : table) {
    EXPECT_TRUE(seen.insert(inode.ino).second) << "visited twice: " << inode.ino;
  }
  EXPECT_EQ(seen.size(), table.size());
  for (InodeId ino = 1; ino <= 100; ++ino) {
    EXPECT_EQ(seen.count(ino), ino < 10 || ino > 50 ? 1u : 0u) << ino;
  }
}

}  // namespace
}  // namespace fsbench
