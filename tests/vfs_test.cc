#include "src/sim/vfs.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/disk_model.h"
#include "src/sim/ext2fs.h"
#include "src/sim/ext3fs.h"
#include "src/sim/xfsfs.h"

namespace fsbench {
namespace {

constexpr Bytes kDevice = 4 * kGiB;

struct VfsFixture {
  DiskParams disk_params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<Vfs> vfs;

  explicit VfsFixture(FsKind kind = FsKind::kExt2, VfsConfig config = {})
      : disk(disk_params, 1), scheduler(&disk) {
    switch (kind) {
      case FsKind::kExt2:
        fs = std::make_unique<Ext2Fs>(kDevice, FsLayoutParams{}, &clock);
        break;
      case FsKind::kExt3: {
        auto ext3 = std::make_unique<Ext3Fs>(kDevice, FsLayoutParams{}, &clock);
        ext3->AttachJournal(std::make_unique<JbdJournal>(&scheduler, &clock,
                                                         ext3->journal_region(),
                                                         JournalConfig{}));
        fs = std::move(ext3);
        break;
      }
      case FsKind::kXfs:
        fs = std::make_unique<XfsFs>(kDevice, FsLayoutParams{}, &clock);
        break;
    }
    vfs = std::make_unique<Vfs>(&clock, &scheduler, fs.get(), config);
  }
};

TEST(VfsTest, OpenMissingFileFails) {
  VfsFixture f;
  EXPECT_EQ(f.vfs->Open("/nope").status, FsStatus::kNotFound);
}

TEST(VfsTest, OpenWithCreateMakesTheFile) {
  VfsFixture f;
  const auto fd = f.vfs->Open("/new", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  const auto attr = f.vfs->Stat("/new");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 0u);
}

TEST(VfsTest, CloseInvalidFdFails) {
  VfsFixture f;
  EXPECT_EQ(f.vfs->Close(42), FsStatus::kBadHandle);
  EXPECT_EQ(f.vfs->Read(42, 0, 10).status, FsStatus::kBadHandle);
}

TEST(VfsTest, FdSlotsAreReused) {
  VfsFixture f;
  const auto a = f.vfs->Open("/a", true);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(f.vfs->Close(a.value), FsStatus::kOk);
  const auto b = f.vfs->Open("/b", true);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value, b.value);
}

TEST(VfsTest, ReadPastEofReturnsZero) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 8 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  const auto read = f.vfs->Read(fd.value, 8 * kKiB, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value, 0u);
}

TEST(VfsTest, ReadClampsToFileSize) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 10 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  const auto read = f.vfs->Read(fd.value, 8 * kKiB, 100 * kKiB);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value, 2 * kKiB);
}

TEST(VfsTest, ReadAdvancesVirtualTime) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 64 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  const Nanos before = f.clock.now();
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_GT(f.clock.now(), before);
}

TEST(VfsTest, ColdReadIsSlowWarmReadIsFast) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 64 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  const Nanos t0 = f.clock.now();
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  const Nanos cold = f.clock.now() - t0;
  const Nanos t1 = f.clock.now();
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  const Nanos warm = f.clock.now() - t1;
  EXPECT_GT(cold, FromMillis(0.2));    // had to hit the disk (>= command overhead)
  EXPECT_LT(warm, 20 * kMicrosecond);  // pure cache hit
}

TEST(VfsTest, MultiPageReadsCountAllPages) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 64 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 16 * kKiB).ok());
  EXPECT_EQ(f.vfs->stats().data_page_hits + f.vfs->stats().data_page_misses, 4u);
}

TEST(VfsTest, WriteExtendsFile) {
  VfsFixture f;
  const auto fd = f.vfs->Open("/file", true);
  ASSERT_TRUE(fd.ok());
  const auto written = f.vfs->Write(fd.value, 0, 10 * kKiB);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value, 10 * kKiB);
  const auto attr = f.vfs->Stat("/file");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 10 * kKiB);
  EXPECT_GT(f.vfs->cache().dirty_count(), 0u);
}

TEST(VfsTest, SparseWriteLeavesHolesReadableAsZeroFill) {
  VfsFixture f;
  const auto fd = f.vfs->Open("/sparse", true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Write(fd.value, 100 * kKiB, 4 * kKiB).ok());
  // Reading the hole must succeed without disk I/O for the hole pages.
  const uint64_t demand_before = f.vfs->stats().demand_requests;
  const auto read = f.vfs->Read(fd.value, 0, 4 * kKiB);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value, 4 * kKiB);
  EXPECT_EQ(f.vfs->stats().demand_requests, demand_before);
}

TEST(VfsTest, PartialOverwriteTriggersReadModifyWrite) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 8 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  const uint64_t demand_before = f.vfs->stats().demand_requests;
  // Unaligned 1 KiB write into an uncached page of existing data.
  ASSERT_TRUE(f.vfs->Write(fd.value, 512, 1024).ok());
  EXPECT_GT(f.vfs->stats().demand_requests, demand_before);
}

TEST(VfsTest, FsyncCleansTheFilesDirtyPagesAndWaits) {
  VfsFixture f(FsKind::kExt3);
  const auto fd = f.vfs->Open("/file", true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Write(fd.value, 0, 64 * kKiB).ok());
  ASSERT_GT(f.vfs->cache().dirty_count(), 0u);
  const size_t dirty_before = f.vfs->cache().dirty_count();
  const Nanos before = f.clock.now();
  ASSERT_EQ(f.vfs->Fsync(fd.value), FsStatus::kOk);
  // Per-file writeback: the file's 16 data pages plus its own metadata (one
  // inode-table block, one single-indirect block for pages 12-15) are
  // written; *shared* dirty metadata (bitmaps, the parent dirent block)
  // stays behind for the journal commit and background writeback.
  EXPECT_EQ(f.vfs->cache().dirty_count(), dirty_before - 18);
  EXPECT_EQ(f.vfs->stats().writeback_pages, 18u);
  EXPECT_GT(f.clock.now(), before);
  EXPECT_GE(f.fs->journal()->stats().sync_commits, 1u);
  // A second fsync of the now-clean file writes nothing further back.
  ASSERT_EQ(f.vfs->Fsync(fd.value), FsStatus::kOk);
  EXPECT_EQ(f.vfs->stats().writeback_pages, 18u);
}

TEST(VfsTest, FsyncWritesBackOnlyThisFile) {
  VfsFixture f;
  const auto fd_a = f.vfs->Open("/a", true);
  const auto fd_b = f.vfs->Open("/b", true);
  ASSERT_TRUE(fd_a.ok());
  ASSERT_TRUE(fd_b.ok());
  ASSERT_TRUE(f.vfs->Write(fd_a.value, 0, 16 * kKiB).ok());
  ASSERT_TRUE(f.vfs->Write(fd_b.value, 0, 32 * kKiB).ok());
  const size_t dirty_before = f.vfs->cache().dirty_count();
  ASSERT_EQ(f.vfs->Fsync(fd_a.value), FsStatus::kOk);
  // /a's 4 data pages plus the inode-table block (which both small files
  // share) were taken; /b's 8 data pages and the other metadata stay dirty.
  EXPECT_EQ(f.vfs->stats().writeback_pages, 5u);
  EXPECT_EQ(f.vfs->cache().dirty_count(), dirty_before - 5);
  // /b is still fully dirty: its fsync writes its 8 pages (the shared
  // inode-table block is already clean).
  ASSERT_EQ(f.vfs->Fsync(fd_b.value), FsStatus::kOk);
  EXPECT_EQ(f.vfs->stats().writeback_pages, 13u);
}

TEST(VfsTest, FsyncOfCleanFileWritesNothing) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/clean", 16 * kKiB), FsStatus::kOk);
  ASSERT_EQ(f.vfs->PrewarmFile("/clean"), FsStatus::kOk);
  const auto fd = f.vfs->Open("/clean");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 16 * kKiB).ok());
  ASSERT_EQ(f.vfs->Fsync(fd.value), FsStatus::kOk);
  EXPECT_EQ(f.vfs->stats().writeback_pages, 0u);
}

TEST(VfsTest, FsyncStillWaitsForOutstandingIoAndCommitsJournal) {
  VfsFixture f(FsKind::kExt3);
  const auto fd = f.vfs->Open("/j", true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Write(fd.value, 0, 8 * kKiB).ok());
  ASSERT_EQ(f.vfs->Fsync(fd.value), FsStatus::kOk);
  EXPECT_GE(f.fs->journal()->stats().sync_commits, 1u);
  // The scheduler is idle once fsync returns: its queue drained.
  EXPECT_EQ(f.scheduler.pending_async(), 0u);
}

TEST(VfsTest, ReadaheadWindowAnchorsAtBatchStart) {
  // Fixed 8-page windows; a 4-page cold read coalesces into one demand batch
  // for pages 0-3, so the window decided at page 0 covers [1, 8] and only
  // pages 4-8 are left to prefetch. (The old pipeline issued the window from
  // the batch's last page, skewing it to [4, 11].)
  VfsConfig config;
  config.readahead_override = ReadaheadConfig{ReadaheadKind::kFixed, /*fixed_pages=*/8, 0, 0, 0};
  VfsFixture f(FsKind::kExt2, config);
  ASSERT_EQ(f.vfs->MakeFile("/ra", 64 * 4 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/ra");
  ASSERT_TRUE(fd.ok());
  const InodeId ino = f.vfs->Stat("/ra").value.ino;
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * 4 * kKiB).ok());
  EXPECT_EQ(f.vfs->stats().readahead_pages, 5u);  // pages 4..8
  EXPECT_TRUE(f.vfs->cache().Contains(PageKey{ino, 8}));
  EXPECT_FALSE(f.vfs->cache().Contains(PageKey{ino, 9}));
  EXPECT_FALSE(f.vfs->cache().Contains(PageKey{ino, 11}));
}

TEST(VfsTest, PathsWithRepeatedAndTrailingSlashesCollapse) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->Mkdir("/a"), FsStatus::kOk);
  ASSERT_EQ(f.vfs->Mkdir("//a//b/"), FsStatus::kOk);
  ASSERT_EQ(f.vfs->CreateFile("/a/b/c"), FsStatus::kOk);
  EXPECT_TRUE(f.vfs->Stat("//a//b//c").ok());
  EXPECT_TRUE(f.vfs->Stat("/a/b/c/").ok());
  const auto entries = f.vfs->ReadDir("//a/b/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value.size(), 1u);
  EXPECT_EQ(entries.value[0], "c");
}

TEST(VfsTest, TrailingSlashOnCreatePathNamesTheLeaf) {
  VfsFixture f;
  // The cursor collapses the trailing slash, so the leaf is "x".
  ASSERT_EQ(f.vfs->CreateFile("/x/"), FsStatus::kOk);
  EXPECT_TRUE(f.vfs->Stat("/x").ok());
  const auto fd = f.vfs->Open("/y/", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(f.vfs->Stat("/y").ok());
}

TEST(VfsTest, RootPathResolvesToRootDirectory) {
  VfsFixture f;
  const auto attr = f.vfs->Stat("/");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.ino, kRootInode);
  EXPECT_EQ(attr.value.type, FileType::kDirectory);
  // There is no parent to create the root under.
  EXPECT_EQ(f.vfs->CreateFile("/"), FsStatus::kInvalid);
  EXPECT_EQ(f.vfs->Mkdir("/"), FsStatus::kInvalid);
  EXPECT_EQ(f.vfs->Unlink("/"), FsStatus::kInvalid);
  // Opening the root itself works (directories are openable handles here).
  EXPECT_TRUE(f.vfs->Open("/").ok());
}

TEST(VfsTest, ResolveThroughFileFailsWithNotDir) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->CreateFile("/plain"), FsStatus::kOk);
  EXPECT_EQ(f.vfs->Stat("/plain/child").status, FsStatus::kNotDir);
  EXPECT_EQ(f.vfs->Open("/plain/child", /*create=*/true).status, FsStatus::kNotDir);
  EXPECT_EQ(f.vfs->CreateFile("/plain/child"), FsStatus::kNotDir);
}

TEST(VfsTest, CreateUnderMissingIntermediateFailsEvenWithCreateFlag) {
  VfsFixture f;
  EXPECT_EQ(f.vfs->Open("/no/such/dir/file", /*create=*/true).status, FsStatus::kNotFound);
  EXPECT_EQ(f.vfs->Stat("/no/such/dir/file").status, FsStatus::kNotFound);
}

TEST(VfsTest, OpenCreateResolvesParentInSingleWalk) {
  // A create-open under a warm directory touches only cached meta pages: no
  // disk reads beyond what the negative scan plus create writes need, and
  // the leaf's parent comes out of the same walk that missed the leaf.
  VfsFixture f;
  ASSERT_EQ(f.vfs->Mkdir("/warm"), FsStatus::kOk);
  ASSERT_EQ(f.vfs->CreateFile("/warm/seed"), FsStatus::kOk);
  ASSERT_TRUE(f.vfs->Stat("/warm/seed").ok());  // warm the dir meta pages
  const uint64_t demand_before = f.vfs->stats().demand_requests;
  const auto fd = f.vfs->Open("/warm/fresh", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(f.vfs->stats().creates, 2u);
  EXPECT_EQ(f.vfs->stats().demand_requests, demand_before);
  EXPECT_TRUE(f.vfs->Stat("/warm/fresh").ok());
}

TEST(VfsTest, UnlinkInvalidatesCachedPages) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 16 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 16 * kKiB).ok());
  const size_t cached = f.vfs->cache().size();
  ASSERT_EQ(f.vfs->Unlink("/file"), FsStatus::kOk);
  EXPECT_LT(f.vfs->cache().size(), cached);
  EXPECT_EQ(f.vfs->Stat("/file").status, FsStatus::kNotFound);
}

TEST(VfsTest, MkdirAndNestedPaths) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->Mkdir("/a"), FsStatus::kOk);
  ASSERT_EQ(f.vfs->Mkdir("/a/b"), FsStatus::kOk);
  ASSERT_EQ(f.vfs->CreateFile("/a/b/c"), FsStatus::kOk);
  const auto attr = f.vfs->Stat("/a/b/c");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.type, FileType::kRegular);
  const auto entries = f.vfs->ReadDir("/a/b");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value.size(), 1u);
  EXPECT_EQ(entries.value[0], "c");
  // Paths through missing components fail.
  EXPECT_EQ(f.vfs->CreateFile("/a/x/y"), FsStatus::kNotFound);
}

TEST(VfsTest, TruncateShrinksAndReadsPastEndReturnZero) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 32 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 32 * kKiB).ok());
  ASSERT_EQ(f.vfs->Truncate("/file", 4 * kKiB), FsStatus::kOk);
  const auto attr = f.vfs->Stat("/file");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value.size, 4 * kKiB);
  const auto read = f.vfs->Read(fd.value, 8 * kKiB, 4 * kKiB);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value, 0u);
}

TEST(VfsTest, MakeFileAndPrewarmChargeNoTime) {
  VfsFixture f;
  const Nanos before = f.clock.now();
  ASSERT_EQ(f.vfs->MakeFile("/big", 4 * kMiB), FsStatus::kOk);
  ASSERT_EQ(f.vfs->PrewarmFile("/big"), FsStatus::kOk);
  EXPECT_EQ(f.clock.now(), before);
  const auto fd = f.vfs->Open("/big");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_EQ(f.vfs->stats().data_page_misses, 0u);
}

TEST(VfsTest, DropCachesForcesMisses) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 16 * kKiB), FsStatus::kOk);
  ASSERT_EQ(f.vfs->PrewarmFile("/file"), FsStatus::kOk);
  f.vfs->DropCaches();
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  EXPECT_GT(f.vfs->stats().data_page_misses, 0u);
}

TEST(VfsTest, SequentialReadTriggersReadahead) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/seq", 1 * kMiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/seq");
  ASSERT_TRUE(fd.ok());
  for (Bytes offset = 0; offset < 512 * kKiB; offset += 4 * kKiB) {
    ASSERT_TRUE(f.vfs->Read(fd.value, offset, 4 * kKiB).ok());
  }
  EXPECT_GT(f.vfs->stats().readahead_pages, 0u);
  // Readahead means far fewer demand requests than pages read.
  EXPECT_LT(f.vfs->stats().demand_requests, 128u);
}

TEST(VfsTest, ReadaheadOverrideDisablesPrefetch) {
  VfsConfig config;
  config.readahead_override = ReadaheadConfig{ReadaheadKind::kNone, 0, 0, 0, 0};
  VfsFixture f(FsKind::kExt2, config);
  ASSERT_EQ(f.vfs->MakeFile("/seq", 256 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/seq");
  ASSERT_TRUE(fd.ok());
  for (Bytes offset = 0; offset < 256 * kKiB; offset += 4 * kKiB) {
    ASSERT_TRUE(f.vfs->Read(fd.value, offset, 4 * kKiB).ok());
  }
  EXPECT_EQ(f.vfs->stats().readahead_pages, 0u);
}

TEST(VfsTest, InjectedDiskErrorSurfacesAsIoError) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 16 * kKiB), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  // Learn the data block's location, poison it, drop caches, re-read.
  ASSERT_TRUE(f.vfs->Read(fd.value, 0, 4 * kKiB).ok());
  MetaIo io;
  const auto mapping = f.fs->MapPage(f.vfs->Stat("/file").value.ino, 0, &io);
  ASSERT_TRUE(mapping.ok());
  f.disk.InjectError(mapping.value * f.fs->sectors_per_block());
  f.vfs->DropCaches();
  EXPECT_EQ(f.vfs->Read(fd.value, 0, 4 * kKiB).status, FsStatus::kIoError);
  EXPECT_GT(f.vfs->stats().io_errors, 0u);
}

TEST(VfsTest, StatsCountersTrackOperations) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->CreateFile("/x"), FsStatus::kOk);
  ASSERT_TRUE(f.vfs->Stat("/x").ok());
  ASSERT_EQ(f.vfs->Unlink("/x"), FsStatus::kOk);
  EXPECT_EQ(f.vfs->stats().creates, 1u);
  EXPECT_EQ(f.vfs->stats().stats_calls, 1u);
  EXPECT_EQ(f.vfs->stats().unlinks, 1u);
}

TEST(VfsTest, HitRatioReflectsCacheBehaviour) {
  VfsFixture f;
  ASSERT_EQ(f.vfs->MakeFile("/file", 64 * kKiB), FsStatus::kOk);
  ASSERT_EQ(f.vfs->PrewarmFile("/file"), FsStatus::kOk);
  const auto fd = f.vfs->Open("/file");
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.vfs->Read(fd.value, (i % 16) * 4 * kKiB, 4 * kKiB).ok());
  }
  EXPECT_DOUBLE_EQ(f.vfs->DataHitRatio(), 1.0);
}

class VfsFsSweep : public ::testing::TestWithParam<FsKind> {};

TEST_P(VfsFsSweep, EndToEndChurnStaysConsistent) {
  VfsFixture f(GetParam());
  ASSERT_EQ(f.vfs->Mkdir("/work"), FsStatus::kOk);
  Rng rng(77);
  std::vector<std::string> live;
  for (int step = 0; step < 300; ++step) {
    if (rng.NextDouble() < 0.5 || live.empty()) {
      const std::string path = "/work/f" + std::to_string(step);
      ASSERT_EQ(f.vfs->CreateFile(path), FsStatus::kOk);
      const auto fd = f.vfs->Open(path);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(f.vfs->Write(fd.value, 0, rng.NextBelow(8) * 4 * kKiB + 1024).ok());
      ASSERT_EQ(f.vfs->Close(fd.value), FsStatus::kOk);
      live.push_back(path);
    } else {
      const size_t idx = rng.NextBelow(live.size());
      ASSERT_EQ(f.vfs->Unlink(live[idx]), FsStatus::kOk);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  f.vfs->SyncAll();
  std::string error;
  EXPECT_TRUE(f.fs->CheckConsistency(&error)) << error;
  EXPECT_TRUE(f.vfs->cache().CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(AllFs, VfsFsSweep,
                         ::testing::Values(FsKind::kExt2, FsKind::kExt3, FsKind::kXfs),
                         [](const auto& info) { return FsKindName(info.param); });

}  // namespace
}  // namespace fsbench
