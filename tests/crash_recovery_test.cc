// Crash injection + mount-time recovery, end to end: determinism of the
// crash matrix, post-recovery consistency, fsync durability across the
// crash, torn-tail discarding, and the journal-vs-fsck recovery-cost
// contrast the new benchmark axis is built on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/core/sim_engine.h"
#include "src/core/workloads/postmark_like.h"
#include "src/sim/recovery.h"

namespace fsbench {
namespace {

MachineFactory CrashMachine(FsKind kind, JournalMode mode = JournalMode::kOrdered) {
  return [kind, mode](uint64_t seed) {
    MachineConfig config;
    // Small cache (8 MiB, jitter-free) so writeback and eviction traffic is
    // part of every scenario.
    config.ram = 110 * kMiB;
    config.os_reserved = 102 * kMiB;
    config.os_reserve_jitter = 0;
    config.journal.mode = mode;
    config.xfs_journal.mode = mode;
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

ThreadedWorkloadFactory CrashPostmark() {
  PostmarkConfig pm;
  pm.initial_files = 60;
  pm.min_size = 512;
  pm.max_size = 24 * kKiB;
  pm.fsync_every = 4;
  return MtPostmarkFactory(pm);
}

ExperimentConfig CrashConfig(uint64_t crash_at_op) {
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 60 * kSecond;
  config.base_seed = 7;
  config.crash = CrashScenario{crash_at_op, 0, /*replay_check=*/true};
  return config;
}

void ExpectReportsEqual(const CrashReport& a, const CrashReport& b) {
  EXPECT_EQ(a.crash_time, b.crash_time);
  EXPECT_EQ(a.ops_issued, b.ops_issued);
  EXPECT_EQ(a.recovery_watermark, b.recovery_watermark);
  EXPECT_EQ(a.used_journal, b.used_journal);
  EXPECT_EQ(a.durable_txns, b.durable_txns);
  EXPECT_EQ(a.replayed_txns, b.replayed_txns);
  EXPECT_EQ(a.torn_txns, b.torn_txns);
  EXPECT_EQ(a.replay_log_blocks, b.replay_log_blocks);
  EXPECT_EQ(a.replay_home_blocks, b.replay_home_blocks);
  EXPECT_EQ(a.fsck_blocks, b.fsck_blocks);
  EXPECT_EQ(a.recovery_latency, b.recovery_latency);
  EXPECT_EQ(a.dirty_pages_lost, b.dirty_pages_lost);
  EXPECT_EQ(a.volatile_blocks, b.volatile_blocks);
  EXPECT_EQ(a.recovered_consistent, b.recovered_consistent);
}

struct MatrixCell {
  FsKind kind;
  JournalMode mode;
  uint64_t crash_op;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixCell> {};

TEST_P(CrashMatrix, DeterministicConsistentAndBounded) {
  const MatrixCell cell = GetParam();
  const ExperimentConfig config = CrashConfig(cell.crash_op);
  const MachineFactory machines = CrashMachine(cell.kind, cell.mode);

  const ExperimentResult first = Experiment(config).Run(machines, CrashPostmark());
  const ExperimentResult second = Experiment(config).Run(machines, CrashPostmark());
  ASSERT_TRUE(first.AllOk());
  ASSERT_TRUE(second.AllOk());

  ASSERT_TRUE(first.runs[0].crash_report.has_value());
  ASSERT_TRUE(second.runs[0].crash_report.has_value());
  const CrashReport& report = *first.runs[0].crash_report;

  // Same (config, seed) twice => bit-identical crash and recovery.
  EXPECT_EQ(first.runs[0].ops, second.runs[0].ops);
  ExpectReportsEqual(report, *second.runs[0].crash_report);

  // The crash hit where asked, recovery never claims more than was issued,
  // and the rebuilt state passed fsck.
  EXPECT_EQ(report.ops_issued, cell.crash_op);
  EXPECT_LE(report.recovery_watermark, report.ops_issued);
  EXPECT_TRUE(report.recovered_consistent);
  EXPECT_GT(report.recovery_latency, 0);
  if (cell.kind == FsKind::kExt2) {
    EXPECT_FALSE(report.used_journal);
    EXPECT_GT(report.fsck_blocks, 0u);
  } else {
    EXPECT_TRUE(report.used_journal);
    // The fsync-heavy workload committed durably before the crash.
    EXPECT_GT(report.durable_txns, 0u);
    EXPECT_GT(report.recovery_watermark, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashMatrix,
    ::testing::Values(MatrixCell{FsKind::kExt2, JournalMode::kOrdered, 60},
                      MatrixCell{FsKind::kExt2, JournalMode::kOrdered, 200},
                      MatrixCell{FsKind::kExt3, JournalMode::kOrdered, 60},
                      MatrixCell{FsKind::kExt3, JournalMode::kOrdered, 200},
                      MatrixCell{FsKind::kExt3, JournalMode::kJournaled, 120},
                      MatrixCell{FsKind::kXfs, JournalMode::kOrdered, 60},
                      MatrixCell{FsKind::kXfs, JournalMode::kOrdered, 200}),
    [](const auto& info) {
      return std::string(FsKindName(info.param.kind)) +
             (info.param.mode == JournalMode::kJournaled ? "_journaled" : "_ordered") + "_op" +
             std::to_string(info.param.crash_op);
    });

// --- fsync durability --------------------------------------------------------

// Deterministic script: op 1 creates /w/f, op 2 writes 16 KiB, op 3 fsyncs;
// later ops churn junk files. No RNG: two instances replay identically.
class FsyncScriptWorkload : public Workload {
 public:
  const char* name() const override { return "fsync-script"; }

  FsStatus Setup(WorkloadContext& ctx) override {
    const FsStatus status = ctx.vfs->Mkdir("/w");
    return status == FsStatus::kExists ? FsStatus::kOk : status;
  }

  FsResult<OpType> Step(WorkloadContext& ctx) override {
    ++step_;
    Vfs& vfs = *ctx.vfs;
    if (step_ == 1) {
      const FsResult<int> fd = vfs.Open("/w/f", /*create=*/true);
      if (!fd.ok()) {
        return FsResult<OpType>::Error(fd.status);
      }
      fd_ = fd.value;
      return FsResult<OpType>::Ok(OpType::kOpen);
    }
    if (step_ == 2) {
      const FsResult<Bytes> written = vfs.Write(fd_, 0, 16 * kKiB);
      return written.ok() ? FsResult<OpType>::Ok(OpType::kWrite)
                          : FsResult<OpType>::Error(written.status);
    }
    if (step_ == 3) {
      const FsStatus synced = vfs.Fsync(fd_);
      return synced == FsStatus::kOk ? FsResult<OpType>::Ok(OpType::kFsync)
                                     : FsResult<OpType>::Error(synced);
    }
    const FsStatus status = vfs.CreateFile("/w/junk" + std::to_string(step_));
    return status == FsStatus::kOk ? FsResult<OpType>::Ok(OpType::kCreate)
                                   : FsResult<OpType>::Error(status);
  }

 private:
  uint64_t step_ = 0;
  int fd_ = -1;
};

ThreadedWorkloadFactory FsyncScript() {
  return [](int) { return std::make_unique<FsyncScriptWorkload>(); };
}

TEST(CrashRecoveryTest, FsyncedDataSurvivesTheCrash) {
  const ExperimentConfig config = CrashConfig(/*crash_at_op=*/12);
  for (const FsKind kind : {FsKind::kExt3, FsKind::kXfs}) {
    const MachineFactory machines = CrashMachine(kind);
    const ExperimentResult result = Experiment(config).Run(machines, FsyncScript());
    ASSERT_TRUE(result.AllOk());
    ASSERT_TRUE(result.runs[0].crash_report.has_value());
    const CrashReport& report = *result.runs[0].crash_report;
    // The fsync at op 3 sync-committed everything through op 2 — the create
    // and the 16 KiB write are inside the durable prefix no matter where
    // the crash landed.
    EXPECT_GE(report.recovery_watermark, 2u) << FsKindName(kind);
    EXPECT_TRUE(report.recovered_consistent) << FsKindName(kind);

    const std::unique_ptr<Machine> recovered = ReplayRecoveredPrefix(
        machines, FsyncScript(), config, config.base_seed, report.recovery_watermark);
    ASSERT_NE(recovered, nullptr) << FsKindName(kind);
    const FsResult<FileAttr> attr = recovered->vfs().Stat("/w/f");
    ASSERT_TRUE(attr.ok()) << FsKindName(kind);
    EXPECT_EQ(attr.value.size, 16 * kKiB) << FsKindName(kind);
  }
}

TEST(CrashRecoveryTest, WithoutAJournalTheSameCrashLosesTheFsyncedWindow) {
  // Same script on ext2: fsync makes /w/f itself durable, but sibling
  // metadata (bitmaps, the parent dirent) stays dirty in the cache, so no
  // all-clean stable point exists and the recovery watermark collapses to
  // the mkfs baseline — the crash-consistency gap the paper's benchmark
  // dimensions are missing.
  const ExperimentConfig config = CrashConfig(/*crash_at_op=*/12);
  const ExperimentResult result =
      Experiment(config).Run(CrashMachine(FsKind::kExt2), FsyncScript());
  ASSERT_TRUE(result.AllOk());
  ASSERT_TRUE(result.runs[0].crash_report.has_value());
  const CrashReport& report = *result.runs[0].crash_report;
  EXPECT_FALSE(report.used_journal);
  EXPECT_EQ(report.recovery_watermark, 0u);
  EXPECT_GT(report.dirty_pages_lost, 0u);
  EXPECT_TRUE(report.recovered_consistent);  // fsck restores consistency...
  // ...but the recovered prefix no longer holds the file.
  const std::unique_ptr<Machine> recovered =
      ReplayRecoveredPrefix(CrashMachine(FsKind::kExt2), FsyncScript(), config,
                            config.base_seed, report.recovery_watermark);
  ASSERT_NE(recovered, nullptr);
  EXPECT_FALSE(recovered->vfs().Stat("/w/f").ok());
}

// --- torn tail ---------------------------------------------------------------

TEST(CrashRecoveryTest, TornTailIsDiscardedAndDurablePrefixReplayed) {
  const std::unique_ptr<Machine> machine = CrashMachine(FsKind::kExt3)(3);
  machine->EnableCrashTracking();
  Vfs& vfs = machine->vfs();

  // Op 1: create + write /f, then a periodic commit 6 s later — its async
  // log writes get serviced long before the crash: durable.
  const FsResult<int> fd = vfs.Open("/f", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Write(fd.value, 0, 8 * kKiB).ok());
  machine->NotifyOpBoundary(1);
  machine->clock().Advance(6 * kSecond);
  machine->fs().journal()->MaybePeriodicCommit();

  // Op 2: same again for /g, committed at the very instant of the crash —
  // the commit record cannot reach the platter in zero time: torn.
  const FsResult<int> fd2 = vfs.Open("/g", /*create=*/true);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(vfs.Write(fd2.value, 0, 8 * kKiB).ok());
  machine->NotifyOpBoundary(2);
  machine->clock().Advance(6 * kSecond);
  machine->fs().journal()->MaybePeriodicCommit();

  const Nanos crash_time = machine->clock().now();
  const CrashReport report = SimulateCrashRecovery(*machine, crash_time, /*ops_issued=*/2,
                                                   /*stable_watermark=*/0);
  EXPECT_EQ(report.durable_txns, 1u);
  EXPECT_EQ(report.torn_txns, 1u);
  EXPECT_EQ(report.replayed_txns, 1u);
  EXPECT_EQ(report.recovery_watermark, 1u);
  EXPECT_GT(report.replay_log_blocks, 0u);
  EXPECT_GT(report.replay_home_blocks, 0u);
}

TEST(CrashRecoveryTest, FreedBlocksDoNotBreakTheDurableChain) {
  // Regression: a transaction whose logged blocks were freed (unlink
  // dropped the pages, so they were never written home) gets checkpointed
  // via the obsolete path; recovery must treat those blocks as satisfied —
  // not as a gap that discards every later durable fsync'd commit.
  MachineConfig config;
  config.ram = 110 * kMiB;
  config.os_reserved = 102 * kMiB;
  config.os_reserve_jitter = 0;
  config.journal.mode = JournalMode::kJournaled;  // data blocks enter the log
  config.journal_blocks = 16;  // tiny log: every commit forces a checkpoint
  config.seed = 9;
  const auto machine = std::make_unique<Machine>(FsKind::kExt3, config);
  machine->EnableCrashTracking();
  Vfs& vfs = machine->vfs();
  Journal* journal = machine->fs().journal();

  // Op 1: create and write /f — its data blocks join the journal — then
  // commit durably. Op 2: unlink it, dropping those pages forever.
  const FsResult<int> fd = vfs.Open("/f", /*create=*/true);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Write(fd.value, 0, 16 * kKiB).ok());
  ASSERT_EQ(vfs.Close(fd.value), FsStatus::kOk);
  machine->NotifyOpBoundary(1);
  machine->clock().AdvanceTo(journal->CommitSync());
  ASSERT_EQ(vfs.Unlink("/f"), FsStatus::kOk);
  machine->NotifyOpBoundary(2);
  machine->clock().AdvanceTo(journal->CommitSync());

  // Ops 3..8: fsync'd churn; the tiny log forces checkpoints of the early
  // transactions, freed blocks and all.
  for (int i = 3; i <= 8; ++i) {
    const FsResult<int> g = vfs.Open("/g" + std::to_string(i), /*create=*/true);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(vfs.Write(g.value, 0, 8 * kKiB).ok());
    ASSERT_EQ(vfs.Close(g.value), FsStatus::kOk);
    machine->NotifyOpBoundary(i);
    machine->clock().AdvanceTo(journal->CommitSync());
  }
  const TxnLog* log = journal->txn_log();
  // The tiny log forced reclaim (threshold checkpointing, stalling if it
  // ever fell behind) and the freed-block transaction is checkpointed.
  ASSERT_GT(log->stats().reclaimed_txns, 0u);
  ASSERT_TRUE(log->records().front().checkpointed);

  const CrashReport report =
      SimulateCrashRecovery(*machine, machine->clock().now(), /*ops_issued=*/8,
                            /*stable_watermark=*/0);
  // Every commit was synchronous and durable: the chain is unbroken all
  // the way to the last fsync.
  EXPECT_EQ(report.torn_txns, 0u);
  EXPECT_EQ(report.recovery_watermark, 8u);
}

TEST(CrashRecoveryTest, OpTriggerBeforeTimeTriggerUsesTheActualStopInstant) {
  // Regression: with both triggers armed and the op count firing first,
  // the crash instant is when the run actually stopped — not the configured
  // future time, which would count still-queued writes as durable.
  const std::unique_ptr<Machine> machine = CrashMachine(FsKind::kExt3)(5);
  machine->EnableCrashTracking();
  SimEngineConfig engine_config;
  engine_config.duration = 60 * kSecond;
  engine_config.framework_overhead = 99 * kMicrosecond;
  engine_config.crash_at_op = 5;
  engine_config.crash_at_time = 50 * kSecond;
  SimEngine engine(machine.get(), engine_config);
  engine.AddThread(FsyncScript()(0), 11);
  ASSERT_EQ(engine.Prepare(), FsStatus::kOk);
  const SimEngineResult result = engine.Run(nullptr);
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.crashed);
  EXPECT_EQ(result.total_ops, 5u);
  EXPECT_EQ(result.crash_time, result.end_time);
  EXPECT_LT(result.crash_time, result.measure_from + 50 * kSecond);
}

// --- recovery-cost contrast --------------------------------------------------

TEST(CrashRecoveryTest, JournalReplayIsOrdersOfMagnitudeCheaperThanFsck) {
  const ExperimentConfig config = CrashConfig(/*crash_at_op=*/150);
  const ExperimentResult ext3 =
      Experiment(config).Run(CrashMachine(FsKind::kExt3), CrashPostmark());
  const ExperimentResult ext2 =
      Experiment(config).Run(CrashMachine(FsKind::kExt2), CrashPostmark());
  ASSERT_TRUE(ext3.AllOk());
  ASSERT_TRUE(ext2.AllOk());
  const CrashReport& journal_report = *ext3.runs[0].crash_report;
  const CrashReport& fsck_report = *ext2.runs[0].crash_report;
  // ext3 replays a few hundred log blocks; ext2 scans every group's bitmaps
  // and inode tables on a 250 GB disk.
  EXPECT_GT(fsck_report.fsck_blocks, 100000u);
  EXPECT_LT(journal_report.replay_log_blocks, 10000u);
  EXPECT_GT(fsck_report.recovery_latency, 10 * journal_report.recovery_latency);
  // And the journal saves work: more of the issued ops survive.
  EXPECT_GE(journal_report.recovery_watermark, fsck_report.recovery_watermark);
}

// --- crash-at-time -----------------------------------------------------------

TEST(CrashRecoveryTest, CrashAtTimeStopsAtTheConfiguredInstant) {
  const std::unique_ptr<Machine> machine = CrashMachine(FsKind::kExt3)(5);
  machine->EnableCrashTracking();
  SimEngineConfig engine_config;
  engine_config.duration = 60 * kSecond;
  engine_config.framework_overhead = 99 * kMicrosecond;
  engine_config.crash_at_time = 2 * kSecond;
  SimEngine engine(machine.get(), engine_config);
  engine.AddThread(FsyncScript()(0), 11);
  ASSERT_EQ(engine.Prepare(), FsStatus::kOk);
  const SimEngineResult result = engine.Run(nullptr);
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.crashed);
  EXPECT_EQ(result.crash_time, result.measure_from + 2 * kSecond);
  EXPECT_GT(result.total_ops, 0u);
  const CrashReport report = SimulateCrashRecovery(*machine, result.crash_time,
                                                   result.total_ops, result.stable_watermark);
  EXPECT_LE(report.recovery_watermark, result.total_ops);
}

}  // namespace
}  // namespace fsbench
