// The host-parallelism determinism gate: RunCells (src/core/parallel_runner)
// must be unobservable in results. The contract has three legs —
//   1. jobs is not a parameter of the output: a randomized sweep matrix and
//      a multi-run experiment digest bit-identically at --jobs=1 and
//      --jobs=8 (8 on a 1-core host also proves workers > cores is safe);
//   2. the pool is reusable and stable: running the same sweep twice at
//      jobs=8 digests identically (no cross-run pool state);
//   3. failure is cell-local: one throwing cell reports its own error and
//      neighbours complete untouched.
// Plus unit coverage for ResolveJobs / nested-inline execution.
#include "src/core/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/sweep.h"
#include "src/core/workloads/postmark_like.h"
#include "src/core/workloads/random_read.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

// FNV-1a over explicitly appended fields (same construction as the serial
// determinism gate in determinism_gate_test.cc).
class Digest {
 public:
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U64(v ? 1 : 0); }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

void DigestSummary(Digest& d, const Summary& s) {
  d.U64(s.count);
  d.F64(s.mean);
  d.F64(s.stddev);
  d.F64(s.rel_stddev_pct);
  d.F64(s.min);
  d.F64(s.max);
  d.F64(s.median);
}

uint64_t DigestSweep(const SweepMatrixResult& result) {
  Digest d;
  for (const SweepCell& cell : result.cells) {
    d.F64(cell.row_param);
    d.F64(cell.col_param);
    d.Bool(cell.ok);
    d.F64(cell.cache_hit_ratio);
    DigestSummary(d, cell.throughput);
  }
  return d.value();
}

uint64_t DigestExperiment(const ExperimentResult& result) {
  Digest d;
  DigestSummary(d, result.throughput);
  DigestSummary(d, result.mean_latency_ns);
  d.U64(result.merged_histogram.total());
  for (const RunResult& run : result.runs) {
    d.Bool(run.ok);
    d.U64(run.ops);
    d.U64(run.failed_ops);
    d.I64(run.measured_duration);
    d.F64(run.ops_per_second);
    d.F64(run.cache_hit_ratio);
    d.U64(run.vfs_stats.reads);
    d.U64(run.vfs_stats.writes);
    d.U64(run.vfs_stats.data_page_hits);
    d.U64(run.vfs_stats.data_page_misses);
    d.U64(run.disk_stats.reads);
    d.U64(run.disk_stats.seeks);
    d.U64(run.scheduler_stats.sync_requests);
    d.U64(run.scheduler_stats.max_queue_depth);
  }
  return d.value();
}

MachineFactory TestMachine() {
  return [](uint64_t seed) {
    MachineConfig config = PaperTestbedConfig();
    config.seed = seed;
    return std::make_unique<Machine>(FsKind::kExt2, config);
  };
}

// A sweep whose parameters are themselves drawn from a seeded Rng: cells of
// unequal cost in arbitrary sizes, so the steal schedule differs between
// jobs values — exactly what must NOT show in the digest.
SweepMatrixResult RandomizedSweep(int jobs, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> file_mib;
  for (int r = 0; r < 3; ++r) {
    file_mib.push_back(static_cast<double>(16 + 16 * rng.NextBelow(4)));
  }
  std::vector<double> io_kib;
  for (int c = 0; c < 3; ++c) {
    io_kib.push_back(static_cast<double>(4ULL << rng.NextBelow(4)));
  }
  SweepMatrix matrix("file MiB", file_mib, "io KiB", io_kib);
  ExperimentConfig config;
  config.runs = 2;
  config.duration = 500 * kMillisecond;
  config.prewarm = true;
  config.base_seed = seed;
  config.jobs = jobs;
  return matrix.Run(config, TestMachine(), [](double file, double io) {
    RandomReadConfig workload_config;
    workload_config.file_size = static_cast<Bytes>(file) * kMiB;
    workload_config.io_size = static_cast<Bytes>(io) * kKiB;
    return std::make_unique<RandomReadWorkload>(workload_config);
  });
}

ExperimentResult MultiRunExperiment(int jobs) {
  ExperimentConfig config;
  config.runs = 6;
  config.duration = 500 * kMillisecond;
  config.threads = 2;
  config.base_seed = 7;
  config.jobs = jobs;
  PostmarkConfig pm;
  pm.initial_files = 50;
  return Experiment(config).Run(TestMachine(), MtPostmarkFactory(pm));
}

// --- RunCells unit coverage ---------------------------------------------

TEST(RunCellsTest, ExecutesEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  const std::vector<std::string> errors =
      RunCells(hits.size(), 8, [&](size_t i) { ++hits[i]; });
  ASSERT_EQ(errors.size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_TRUE(errors[i].empty());
  }
}

TEST(RunCellsTest, ZeroAndSingleCountsWork) {
  EXPECT_TRUE(RunCells(0, 8, [](size_t) {}).empty());
  int calls = 0;
  const std::vector<std::string> errors = RunCells(1, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_TRUE(errors[0].empty());
}

TEST(RunCellsTest, ThrowingCellFailsAloneWithItsMessage) {
  std::vector<std::atomic<int>> hits(16);
  const std::vector<std::string> errors = RunCells(hits.size(), 8, [&](size_t i) {
    ++hits[i];
    if (i == 5) {
      throw std::runtime_error("cell five exploded");
    }
    if (i == 11) {
      throw 42;  // non-std exception path
    }
  });
  EXPECT_EQ(errors[5], "cell five exploded");
  EXPECT_EQ(errors[11], "unknown exception");
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    if (i != 5 && i != 11) {
      EXPECT_TRUE(errors[i].empty()) << "index " << i << ": " << errors[i];
    }
  }
}

TEST(RunCellsTest, NestedCallsRunInlineOnTheWorker) {
  // A cell body that calls RunCells again must not spawn a second pool:
  // the nested call reports InParallelCell() and runs on this thread.
  std::vector<int> nested_calls(4, 0);
  const std::vector<std::string> errors = RunCells(4, 4, [&](size_t i) {
    EXPECT_TRUE(InParallelCell());
    const std::vector<std::string> inner =
        RunCells(8, 4, [&](size_t) { ++nested_calls[i]; });
    for (const std::string& e : inner) {
      EXPECT_TRUE(e.empty());
    }
  });
  for (size_t i = 0; i < nested_calls.size(); ++i) {
    EXPECT_TRUE(errors[i].empty());
    EXPECT_EQ(nested_calls[i], 8);
  }
  EXPECT_FALSE(InParallelCell());
}

TEST(ResolveJobsTest, PositivePassesThroughNonPositiveMeansHostCores) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-3), 1);
}

// --- The determinism contract -------------------------------------------

TEST(ParallelDeterminismTest, SweepDigestIdenticalAcrossJobs) {
  const uint64_t serial = DigestSweep(RandomizedSweep(/*jobs=*/1, /*seed=*/42));
  const uint64_t parallel = DigestSweep(RandomizedSweep(/*jobs=*/8, /*seed=*/42));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, SweepDigestStableAcrossRepeatedParallelRuns) {
  const uint64_t first = DigestSweep(RandomizedSweep(/*jobs=*/8, /*seed=*/99));
  const uint64_t second = DigestSweep(RandomizedSweep(/*jobs=*/8, /*seed=*/99));
  EXPECT_EQ(first, second);
}

TEST(ParallelDeterminismTest, DifferentSeedsActuallyDiffer) {
  // Guards the digest itself: if DigestSweep collapsed to a constant, the
  // equality tests above would pass vacuously.
  EXPECT_NE(DigestSweep(RandomizedSweep(/*jobs=*/8, /*seed=*/42)),
            DigestSweep(RandomizedSweep(/*jobs=*/8, /*seed=*/43)));
}

TEST(ParallelDeterminismTest, ExperimentRepetitionsDigestIdenticalAcrossJobs) {
  const uint64_t serial = DigestExperiment(MultiRunExperiment(/*jobs=*/1));
  const uint64_t parallel = DigestExperiment(MultiRunExperiment(/*jobs=*/8));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, ThrowingSweepCellDoesNotPoisonNeighbours) {
  // Row param 0 makes the workload factory throw for the middle column
  // only; the other cells must come back ok with real results.
  SweepMatrix matrix("file MiB", {32}, "io KiB", {4, 0, 16});
  ExperimentConfig config;
  config.runs = 1;
  config.duration = 200 * kMillisecond;
  config.jobs = 8;
  const SweepMatrixResult result =
      matrix.Run(config, TestMachine(), [](double file, double io) {
        if (io == 0.0) {
          throw std::runtime_error("bad cell parameter");
        }
        RandomReadConfig workload_config;
        workload_config.file_size = static_cast<Bytes>(file) * kMiB;
        workload_config.io_size = static_cast<Bytes>(io) * kKiB;
        return std::make_unique<RandomReadWorkload>(workload_config);
      });
  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_TRUE(result.at(0, 0).ok);
  EXPECT_FALSE(result.at(0, 1).ok);
  EXPECT_TRUE(result.at(0, 2).ok);
  EXPECT_GT(result.at(0, 0).throughput.mean, 0.0);
  EXPECT_GT(result.at(0, 2).throughput.mean, 0.0);
}

}  // namespace
}  // namespace fsbench
