#include <gtest/gtest.h>

#include "src/survey/survey_analysis.h"
#include "src/survey/survey_data.h"

namespace fsbench {
namespace {

TEST(SurveyDataTest, TableHasNineteenRows) {
  EXPECT_EQ(Table1Benchmarks().size(), 19u);
}

TEST(SurveyDataTest, PublishedCountsMatchThePaper) {
  // Spot-check the paper's exact numbers.
  const auto& rows = Table1Benchmarks();
  auto find = [&rows](const std::string& name) -> const BenchmarkInfo& {
    for (const auto& row : rows) {
      if (row.name == name) {
        return row;
      }
    }
    ADD_FAILURE() << "missing row " << name;
    return rows.front();
  };
  EXPECT_EQ(find("Postmark").used_1999_2007, 30);
  EXPECT_EQ(find("Postmark").used_2009_2010, 17);
  EXPECT_EQ(find("Ad-hoc").used_1999_2007, 237);
  EXPECT_EQ(find("Ad-hoc").used_2009_2010, 67);
  EXPECT_EQ(find("Filebench").used_2009_2010, 5);
  EXPECT_EQ(find("Andrew").used_1999_2007, 15);
  EXPECT_EQ(find("Compile (Apache, openssh, etc.)").used_1999_2007, 38);
}

TEST(SurveyDataTest, CorpusShapeMatchesPaper) {
  const SurveyCorpus corpus = MakeSurveyCorpus2009_2010();
  EXPECT_EQ(corpus.papers_reviewed, 100);
  EXPECT_EQ(corpus.papers_eliminated, 13);
  EXPECT_EQ(corpus.papers.size(), 87u);
  int from_2009 = 0;
  for (const PaperRecord& paper : corpus.papers) {
    EXPECT_TRUE(paper.year == 2009 || paper.year == 2010);
    EXPECT_FALSE(paper.venue.empty());
    if (paper.year == 2009) {
      ++from_2009;
    }
  }
  EXPECT_EQ(from_2009, 28);
}

TEST(SurveyDataTest, NoPaperUsesTheSameBenchmarkTwice) {
  const SurveyCorpus corpus = MakeSurveyCorpus2009_2010();
  for (const PaperRecord& paper : corpus.papers) {
    std::set<std::string> unique(paper.benchmarks.begin(), paper.benchmarks.end());
    EXPECT_EQ(unique.size(), paper.benchmarks.size()) << paper.id;
  }
}

TEST(SurveyAnalysisTest, RecomputedCountsMatchTable) {
  const SurveyCorpus corpus = MakeSurveyCorpus2009_2010();
  std::string error;
  EXPECT_TRUE(VerifyCorpusAgainstTable(corpus, &error)) << error;
}

TEST(SurveyAnalysisTest, CorruptedCorpusIsDetected) {
  SurveyCorpus corpus = MakeSurveyCorpus2009_2010();
  corpus.papers[0].benchmarks.push_back("Postmark-not-a-benchmark");
  corpus.papers[1].benchmarks.clear();
  std::string error;
  EXPECT_FALSE(VerifyCorpusAgainstTable(corpus, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SurveyAnalysisTest, HighlightsMatchPaperClaims) {
  const SurveyHighlights highlights = ComputeHighlights(MakeSurveyCorpus2009_2010());
  EXPECT_EQ(highlights.papers_counted, 87);
  EXPECT_EQ(highlights.adhoc_usages, 67);
  // "Ad-hoc ... was, by far, the most common choice": > a third of usages.
  EXPECT_GT(highlights.adhoc_share_pct, 33.0);
  EXPECT_GT(highlights.mean_benchmarks_per_paper, 1.0);
  // Few benchmarks isolate any dimension -- the paper's core complaint.
  EXPECT_LT(highlights.isolating_benchmarks, 10);
}

TEST(SurveyAnalysisTest, RenderTable1ContainsAllBenchmarks) {
  const std::string table = RenderTable1();
  for (const BenchmarkInfo& row : Table1Benchmarks()) {
    EXPECT_NE(table.find(row.name), std::string::npos) << row.name;
  }
  EXPECT_NE(table.find("1999-2007"), std::string::npos);
  EXPECT_NE(table.find("legend"), std::string::npos);
}

TEST(SurveyAnalysisTest, RenderAnalysisMentionsVerification) {
  const std::string analysis = RenderSurveyAnalysis(MakeSurveyCorpus2009_2010());
  EXPECT_NE(analysis.find("matches published Table 1: yes"), std::string::npos);
  EXPECT_NE(analysis.find("ad-hoc"), std::string::npos);
}

TEST(DimensionsTest, NamesAndMarks) {
  EXPECT_STREQ(DimensionName(Dimension::kIo), "I/O");
  EXPECT_STREQ(DimensionName(Dimension::kScaling), "Scaling");
  EXPECT_STREQ(CoverageMark(Coverage::kIsolates), "*");
  EXPECT_STREQ(CoverageMark(Coverage::kExercises), "o");
  EXPECT_STREQ(CoverageMark(Coverage::kDepends), "x");
  EXPECT_STREQ(CoverageMark(Coverage::kNone), " ");
}

}  // namespace
}  // namespace fsbench
