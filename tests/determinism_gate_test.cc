// The determinism gate: the (config, seed) purity contract as a red/green
// check. A canonical multi-threaded crash-recovery configuration — the most
// machinery any run exercises at once (MT engine cursors, shared device
// timeline, journal commits, crash injection, shadow-disk durability,
// recovery replay) — is run twice, and a full digest of every RunResult
// field must match bit for bit. detlint (tools/detlint) enforces the same
// contract statically; this test is the dynamic complement that catches
// whatever a token scanner cannot (allocator-order effects, float
// accumulation order, scheduler ties).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/core/experiment.h"
#include "src/core/workloads/postmark_like.h"
#include "src/sim/recovery.h"

namespace fsbench {
namespace {

// FNV-1a over explicitly appended fields: field order is part of the
// digest, so a value migrating between fields cannot cancel out.
class Digest {
 public:
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U64(v ? 1 : 0); }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

void DigestHistogram(Digest& d, const LatencyHistogram& h) {
  d.U64(h.total());
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    d.U64(h.count(b));
  }
}

void DigestRunningStats(Digest& d, const RunningStats& s) {
  d.U64(s.count());
  d.F64(s.mean());
  d.F64(s.variance());
  d.F64(s.min());
  d.F64(s.max());
  d.F64(s.sum());
}

void DigestVfsStats(Digest& d, const VfsStats& s) {
  d.U64(s.reads);
  d.U64(s.writes);
  d.U64(s.creates);
  d.U64(s.unlinks);
  d.U64(s.stats_calls);
  d.U64(s.opens);
  d.U64(s.fsyncs);
  d.I64(s.bytes_read);
  d.I64(s.bytes_written);
  d.U64(s.data_page_hits);
  d.U64(s.data_page_misses);
  d.U64(s.flash_hits);
  d.U64(s.demand_requests);
  d.U64(s.readahead_pages);
  d.U64(s.writeback_pages);
  d.U64(s.io_errors);
  d.U64(s.write_errors);
  d.U64(s.meta_write_errors);
  d.U64(s.degraded_reads);
  d.U64(s.readonly_rejects);
}

void DigestDiskStats(Digest& d, const DiskStats& s) {
  d.U64(s.reads);
  d.U64(s.writes);
  d.U64(s.sectors_read);
  d.U64(s.sectors_written);
  d.U64(s.seeks);
  d.U64(s.buffer_hits);
  d.U64(s.sequential_hits);
  d.I64(s.total_service_time);
  d.I64(s.total_seek_time);
  d.I64(s.total_rotation_time);
  d.I64(s.total_transfer_time);
  d.U64(s.errors);
  d.I64(s.total_fault_time);
  d.U64(s.gc_page_moves);
  d.U64(s.gc_erases);
  d.I64(s.total_gc_time);
}

void DigestSchedulerStats(Digest& d, const IoSchedulerStats& s) {
  d.U64(s.sync_requests);
  d.U64(s.async_requests);
  d.U64(s.async_serviced);
  d.U64(s.async_errors);
  d.U64(s.sync_errors);
  d.U64(s.retries);
  d.U64(s.remaps);
  d.I64(s.retry_backoff_time);
  d.I64(s.total_sync_wait);
  d.I64(s.total_sync_queue_delay);
  d.U64(s.max_queue_depth);
  d.U64(s.async_throttle_stalls);
  d.I64(s.total_async_throttle_time);
}

void DigestFaultSummary(Digest& d, const FaultSummary& f) {
  d.U64(f.device_errors);
  d.U64(f.transient_faults);
  d.U64(f.persistent_faults);
  d.U64(f.slow_ios);
  d.U64(f.retries);
  d.I64(f.retry_backoff_time);
  d.U64(f.remapped_regions);
  d.U64(f.spare_regions_left);
  d.U64(f.sync_io_failures);
  d.U64(f.async_io_failures);
  d.U64(f.meta_io_failures);
  d.Bool(f.journal_aborted);
  d.Bool(f.remounted_ro);
  d.U64(f.degraded_reads);
  d.U64(f.readonly_rejects);
  d.U64(f.failed_ops);
}

void DigestArraySummary(Digest& d, const ArraySummary& a) {
  d.U64(a.devices);
  d.U64(a.reads);
  d.U64(a.writes);
  d.U64(a.degraded_reads);
  d.U64(a.mirror_rescues);
  d.U64(a.lost_stripes);
  d.U64(a.replica_write_errors);
  d.U64(a.device_failures);
  d.U64(a.scrub_regions_scanned);
  d.U64(a.scrub_detections);
  d.U64(a.scrub_preempted);
  d.U64(a.scrub_repairs);
  d.U64(a.scrub_unrepairable);
  d.U64(a.rebuilds_started);
  d.U64(a.rebuilds_completed);
  d.U64(a.rebuild_regions_copied);
  d.Bool(a.data_loss);
}

void DigestCrashReport(Digest& d, const CrashReport& r) {
  d.I64(r.crash_time);
  d.U64(r.ops_issued);
  d.U64(r.recovery_watermark);
  d.Bool(r.used_journal);
  d.U64(r.durable_txns);
  d.U64(r.replayed_txns);
  d.U64(r.torn_txns);
  d.U64(r.replay_log_blocks);
  d.U64(r.replay_home_blocks);
  d.U64(r.fsck_blocks);
  d.I64(r.recovery_latency);
  d.U64(r.dirty_pages_lost);
  d.U64(r.volatile_blocks);
  d.Bool(r.recovered_consistent);
}

uint64_t DigestRunResult(const RunResult& r) {
  Digest d;
  d.Bool(r.ok);
  d.U64(static_cast<uint64_t>(r.error));
  d.U64(r.ops);
  d.I64(r.measured_duration);
  d.F64(r.ops_per_second);
  DigestRunningStats(d, r.latency);
  DigestHistogram(d, r.histogram);
  d.U64(r.throughput_series.size());
  for (double v : r.throughput_series) {
    d.F64(v);
  }
  d.I64(r.timeline_interval);
  d.U64(r.histogram_slices.size());
  for (const LatencyHistogram& h : r.histogram_slices) {
    DigestHistogram(d, h);
  }
  d.I64(r.histogram_slice);
  d.F64(r.cache_hit_ratio);
  DigestVfsStats(d, r.vfs_stats);
  DigestDiskStats(d, r.disk_stats);
  DigestSchedulerStats(d, r.scheduler_stats);
  d.U64(r.per_thread_ops.size());
  for (uint64_t ops : r.per_thread_ops) {
    d.U64(ops);
  }
  d.U64(r.failed_ops);
  DigestFaultSummary(d, r.fault);
  DigestArraySummary(d, r.array);
  d.Bool(r.crash_report.has_value());
  if (r.crash_report.has_value()) {
    DigestCrashReport(d, *r.crash_report);
  }
  return d.value();
}

// The canonical gate configuration: 4 simulated threads of fsync-heavy
// postmark on ext3 under a small cache, crashing mid-run with the replay
// consistency check on.
MachineFactory GateMachine(FsKind kind, JournalMode mode) {
  return [kind, mode](uint64_t seed) {
    MachineConfig config;
    config.ram = 110 * kMiB;
    config.os_reserved = 102 * kMiB;
    config.journal.mode = mode;
    config.xfs_journal.mode = mode;
    config.seed = seed;
    return std::make_unique<Machine>(kind, config);
  };
}

ThreadedWorkloadFactory GateWorkload() {
  PostmarkConfig pm;
  pm.initial_files = 50;
  pm.min_size = 512;
  pm.max_size = 16 * kKiB;
  pm.fsync_every = 4;
  return MtPostmarkFactory(pm);
}

ExperimentConfig GateConfig() {
  ExperimentConfig config;
  config.runs = 2;  // two seeds per experiment: jitter draws are in the digest's blast radius
  config.duration = 60 * kSecond;
  config.threads = 4;
  config.base_seed = 11;
  config.crash = CrashScenario{/*at_op=*/600, /*at_time=*/0, /*replay_check=*/true};
  return config;
}

class DeterminismGate : public ::testing::TestWithParam<FsKind> {};

TEST_P(DeterminismGate, RunTwiceBitIdenticalDigest) {
  const ExperimentConfig config = GateConfig();
  const MachineFactory machines = GateMachine(GetParam(), JournalMode::kOrdered);

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "run " << i << " digest diverged — the (config, seed) contract is broken";
  }
  // The gate must be exercising what it claims to: a crash that recovered
  // consistently on every run, with real multi-thread interleaving.
  for (const RunResult& run : first.runs) {
    ASSERT_TRUE(run.crash_report.has_value());
    EXPECT_TRUE(run.crash_report->recovered_consistent);
    EXPECT_EQ(run.per_thread_ops.size(), 4u);
  }
  // Different seeds must NOT collide (a constant digest would also "pass").
  ASSERT_GE(first.runs.size(), 2u);
  EXPECT_NE(DigestRunResult(first.runs[0]), DigestRunResult(first.runs[1]));
}

// The same purity contract under the device-fault engine: retries, backoff,
// remapping and (on the journaled file systems) a possible mid-run
// remount-read-only must all replay bit-identically from (config, seed).
TEST_P(DeterminismGate, FaultyRunTwiceBitIdenticalDigest) {
  ExperimentConfig config = GateConfig();
  config.crash.reset();  // degraded mode instead of a crash
  config.continue_on_error = true;
  const FsKind kind = GetParam();
  const MachineFactory machines = [kind](uint64_t seed) {
    MachineConfig machine_config;
    machine_config.ram = 110 * kMiB;
    machine_config.os_reserved = 102 * kMiB;
    machine_config.seed = seed;
    machine_config.faults.transient_rate = 0.05;
    machine_config.faults.persistent_rate = 0.01;
    machine_config.faults.slow_rate = 0.01;
    machine_config.faults.region_sectors = 256;
    machine_config.retry = RetryPolicy{4, FromMillis(0.2), 2.0, /*remap=*/true};
    return std::make_unique<Machine>(kind, machine_config);
  };

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "faulty run " << i << " digest diverged — fault draws are not seed-pure";
  }
  // The gate must actually be exercising the fault machinery.
  for (const RunResult& run : first.runs) {
    EXPECT_GT(run.fault.device_errors, 0u);
    EXPECT_GT(run.fault.retries, 0u);
  }
  ASSERT_GE(first.runs.size(), 2u);
  EXPECT_NE(DigestRunResult(first.runs[0]), DigestRunResult(first.runs[1]));
}

// Crash × fault interaction (the two scenario axes together): a run that
// remaps bad regions mid-flight and then crashes must keep the ShadowDisk
// durable map, the journal replay and the replayed-prefix consistency check
// agreeing — twice, bit-identically. Regression for the remap/crash
// interaction: a remap redirects LBAs *below* the block layer, so the
// shadow map (keyed by request LBA) must be oblivious to it.
TEST_P(DeterminismGate, CrashWithFaultsRunTwiceBitIdenticalDigest) {
  ExperimentConfig config = GateConfig();  // crash at op 600, replay check on
  config.continue_on_error = true;
  const FsKind kind = GetParam();
  const MachineFactory machines = [kind](uint64_t seed) {
    MachineConfig machine_config;
    machine_config.ram = 110 * kMiB;
    machine_config.os_reserved = 102 * kMiB;
    machine_config.seed = seed;
    machine_config.faults.transient_rate = 0.05;
    machine_config.faults.persistent_rate = 0.02;
    machine_config.faults.region_sectors = 256;
    machine_config.retry = RetryPolicy{4, FromMillis(0.2), 2.0, /*remap=*/true};
    return std::make_unique<Machine>(kind, machine_config);
  };

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "crash+fault run " << i << " digest diverged";
  }
  // Both axes must really have fired: remaps before the crash, and a crash
  // whose replayed prefix still fscks clean.
  uint64_t remaps = 0;
  for (const RunResult& run : first.runs) {
    remaps += run.fault.remapped_regions;
    ASSERT_TRUE(run.crash_report.has_value());
    EXPECT_TRUE(run.crash_report->recovered_consistent);
  }
  EXPECT_GT(remaps, 0u);
}

// The redundancy layer under the same contract: a 4-thread run on a
// degraded mirror — one device killed mid-run, hot-spare rebuild racing
// foreground traffic, background scrub walking the survivors — must digest
// bit-identically twice. Replica selection ties, scrub cadence and rebuild
// progress are all deterministic decisions this test pins.
TEST_P(DeterminismGate, DegradedArrayRunTwiceBitIdenticalDigest) {
  ExperimentConfig config = GateConfig();
  config.crash.reset();
  config.continue_on_error = true;
  const FsKind kind = GetParam();
  const MachineFactory machines = [kind](uint64_t seed) {
    MachineConfig machine_config;
    machine_config.ram = 110 * kMiB;
    machine_config.os_reserved = 102 * kMiB;
    machine_config.seed = seed;
    machine_config.faults.transient_rate = 0.02;
    machine_config.faults.persistent_rate = 0.01;
    machine_config.faults.region_sectors = 256;
    machine_config.faults.device_kill_time = 20 * kSecond;
    machine_config.retry = RetryPolicy{4, FromMillis(0.2), 2.0, /*remap=*/true};
    machine_config.array.geometry = ArrayGeometry::kMirror;
    machine_config.array.devices = 2;
    machine_config.array.hot_spares = 1;
    machine_config.array.scrub = true;
    return std::make_unique<Machine>(kind, machine_config);
  };

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "degraded-array run " << i << " digest diverged — the array is not seed-pure";
  }
  // The gate must actually be exercising the degraded machinery: a noticed
  // device death, a rebuild, and scrub coverage.
  for (const RunResult& run : first.runs) {
    EXPECT_EQ(run.array.devices, 3u);
    EXPECT_EQ(run.array.device_failures, 1u);
    EXPECT_EQ(run.array.rebuilds_started, 1u);
    EXPECT_GT(run.array.scrub_regions_scanned, 0u);
    EXPECT_EQ(run.per_thread_ops.size(), 4u);
  }
  ASSERT_GE(first.runs.size(), 2u);
  EXPECT_NE(DigestRunResult(first.runs[0]), DigestRunResult(first.runs[1]));
}

// The multi-queue SSD under the canonical gate scenario: 4 threads of
// fsync-heavy postmark, crash at op 600, replay check on — against the
// flash device (per-channel FIFO scheduling, FTL page mapping, recovery
// replay on an SSD recovery device). The FTL has no RNG of its own, so
// the digest pins it to being a pure function of the request sequence.
TEST_P(DeterminismGate, SsdRunTwiceBitIdenticalDigest) {
  const ExperimentConfig config = GateConfig();
  const FsKind kind = GetParam();
  const MachineFactory machines = [kind](uint64_t seed) {
    MachineConfig machine_config;
    machine_config.ram = 110 * kMiB;
    machine_config.os_reserved = 102 * kMiB;
    machine_config.device = DeviceKind::kSsd;
    machine_config.seed = seed;
    return std::make_unique<Machine>(kind, machine_config);
  };

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "SSD run " << i << " digest diverged — the FTL is not request-pure";
  }
  for (const RunResult& run : first.runs) {
    ASSERT_TRUE(run.crash_report.has_value());
    EXPECT_TRUE(run.crash_report->recovered_consistent);
    EXPECT_EQ(run.per_thread_ops.size(), 4u);
  }
  ASSERT_GE(first.runs.size(), 2u);
  EXPECT_NE(DigestRunResult(first.runs[0]), DigestRunResult(first.runs[1]));
}

// A mixed mirror — flash primary, spinning secondary — under faults, a
// mid-run device kill, hot-spare rebuild and background scrub. Replica
// selection now picks between devices with wildly different service
// times; the digest pins that choice (and the rebuild/scrub interleaving
// against the multi-queue device) to (config, seed).
TEST_P(DeterminismGate, SsdMirrorRunTwiceBitIdenticalDigest) {
  ExperimentConfig config = GateConfig();
  config.crash.reset();
  config.continue_on_error = true;
  const FsKind kind = GetParam();
  const MachineFactory machines = [kind](uint64_t seed) {
    MachineConfig machine_config;
    machine_config.ram = 110 * kMiB;
    machine_config.os_reserved = 102 * kMiB;
    machine_config.seed = seed;
    machine_config.faults.transient_rate = 0.02;
    machine_config.faults.persistent_rate = 0.01;
    machine_config.faults.region_sectors = 256;
    machine_config.faults.device_kill_time = 20 * kSecond;
    machine_config.retry = RetryPolicy{4, FromMillis(0.2), 2.0, /*remap=*/true};
    machine_config.array.geometry = ArrayGeometry::kMirror;
    machine_config.array.devices = 2;
    machine_config.array.hot_spares = 1;
    machine_config.array.scrub = true;
    machine_config.array.device_kinds = {DeviceKind::kSsd, DeviceKind::kHdd};
    return std::make_unique<Machine>(kind, machine_config);
  };

  const ExperimentResult first = Experiment(config).Run(machines, GateWorkload());
  const ExperimentResult second = Experiment(config).Run(machines, GateWorkload());

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(DigestRunResult(first.runs[i]), DigestRunResult(second.runs[i]))
        << "SSD-mirror run " << i << " digest diverged";
  }
  for (const RunResult& run : first.runs) {
    EXPECT_EQ(run.array.devices, 3u);
    EXPECT_EQ(run.array.device_failures, 1u);
    EXPECT_EQ(run.array.rebuilds_started, 1u);
    EXPECT_GT(run.array.scrub_regions_scanned, 0u);
  }
  ASSERT_GE(first.runs.size(), 2u);
  EXPECT_NE(DigestRunResult(first.runs[0]), DigestRunResult(first.runs[1]));
}

INSTANTIATE_TEST_SUITE_P(AllFs, DeterminismGate,
                         ::testing::Values(FsKind::kExt2, FsKind::kExt3, FsKind::kXfs),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           switch (info.param) {
                             case FsKind::kExt2: return "ext2";
                             case FsKind::kExt3: return "ext3";
                             case FsKind::kXfs: return "xfs";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace fsbench
