#include "src/sim/block_allocator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"

namespace fsbench {
namespace {

TEST(BlockAllocatorTest, AllocatesAtGoalWhenFree) {
  BlockAllocator alloc(1024, 256);
  const auto block = alloc.AllocateBlock(100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 100u);
  EXPECT_TRUE(alloc.IsAllocated(100));
  EXPECT_EQ(alloc.used_blocks(), 1u);
}

TEST(BlockAllocatorTest, ScansForwardWithinGroup) {
  BlockAllocator alloc(1024, 256);
  ASSERT_TRUE(alloc.AllocateBlock(100).has_value());
  const auto next = alloc.AllocateBlock(100);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 101u);
  EXPECT_EQ(alloc.GroupOf(*next), alloc.GroupOf(100));
}

TEST(BlockAllocatorTest, WrapsWithinGroupBeforeSpilling) {
  BlockAllocator alloc(1024, 256);
  // Fill group 0 except block 3.
  for (uint64_t b = 0; b < 256; ++b) {
    if (b != 3) {
      alloc.ReserveRange(Extent{b, 1});
    }
  }
  const auto block = alloc.AllocateBlock(200);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 3u);
}

TEST(BlockAllocatorTest, SpillsToNearestGroup) {
  BlockAllocator alloc(1024, 256);
  alloc.ReserveRange(Extent{256, 256});  // group 1 full
  const auto block = alloc.AllocateBlock(300);
  ASSERT_TRUE(block.has_value());
  const uint64_t group = alloc.GroupOf(*block);
  EXPECT_TRUE(group == 0 || group == 2) << group;
  EXPECT_EQ(alloc.stats().group_spills, 1u);
}

TEST(BlockAllocatorTest, FullDeviceReturnsNullopt) {
  BlockAllocator alloc(64, 64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(alloc.AllocateBlock(0).has_value());
  }
  EXPECT_FALSE(alloc.AllocateBlock(0).has_value());
}

TEST(BlockAllocatorTest, FreeMakesBlocksReusable) {
  BlockAllocator alloc(64, 64);
  const auto block = alloc.AllocateBlock(10);
  ASSERT_TRUE(block.has_value());
  alloc.Free(Extent{*block, 1});
  EXPECT_FALSE(alloc.IsAllocated(*block));
  EXPECT_EQ(alloc.used_blocks(), 0u);
  const auto again = alloc.AllocateBlock(10);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *block);
}

TEST(BlockAllocatorTest, ExtentAllocationIsContiguous) {
  BlockAllocator alloc(1024, 256);
  const auto extent = alloc.AllocateExtent(50, 4, 16);
  ASSERT_TRUE(extent.has_value());
  EXPECT_GE(extent->count, 4u);
  EXPECT_LE(extent->count, 16u);
  for (uint64_t b = extent->start; b < extent->start + extent->count; ++b) {
    EXPECT_TRUE(alloc.IsAllocated(b));
  }
}

TEST(BlockAllocatorTest, ExtentRespectsMinCount) {
  BlockAllocator alloc(64, 64);
  // Fragment the space: allocate every other block.
  for (uint64_t b = 0; b < 64; b += 2) {
    alloc.ReserveRange(Extent{b, 1});
  }
  EXPECT_FALSE(alloc.AllocateExtent(0, 2, 8).has_value());
  const auto single = alloc.AllocateExtent(0, 1, 8);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->count, 1u);
}

TEST(BlockAllocatorTest, AllocateBlocksGathersFragments) {
  BlockAllocator alloc(64, 64);
  for (uint64_t b = 0; b < 64; b += 2) {
    alloc.ReserveRange(Extent{b, 1});
  }
  const auto extents = alloc.AllocateBlocks(0, 10);
  uint64_t total = 0;
  for (const Extent& e : extents) {
    total += e.count;
  }
  EXPECT_EQ(total, 10u);
}

TEST(BlockAllocatorTest, AllocateBlocksFailsAtomically) {
  BlockAllocator alloc(16, 16);
  alloc.ReserveRange(Extent{0, 10});
  EXPECT_TRUE(alloc.AllocateBlocks(0, 7).empty());
  EXPECT_EQ(alloc.used_blocks(), 10u);  // nothing leaked
}

TEST(BlockAllocatorTest, TrailingShortGroupAccounting) {
  BlockAllocator alloc(300, 128);  // groups: 128, 128, 44
  EXPECT_EQ(alloc.group_count(), 3u);
  EXPECT_TRUE(alloc.CheckInvariants());
  // Fill the trailing group entirely.
  for (int i = 0; i < 44; ++i) {
    ASSERT_TRUE(alloc.AllocateBlock(299).has_value());
  }
  EXPECT_TRUE(alloc.CheckInvariants());
}

class AllocatorPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorPropertySweep, RandomAllocFreeKeepsInvariants) {
  BlockAllocator alloc(2048, 256);
  Rng rng(GetParam());
  std::set<BlockId> owned;
  for (int step = 0; step < 4000; ++step) {
    if (rng.NextDouble() < 0.6 || owned.empty()) {
      const auto block = alloc.AllocateBlock(rng.NextBelow(2048));
      if (block.has_value()) {
        ASSERT_TRUE(owned.insert(*block).second) << "double allocation";
      }
    } else {
      auto it = owned.begin();
      std::advance(it, rng.NextBelow(owned.size()));
      alloc.Free(Extent{*it, 1});
      owned.erase(it);
    }
  }
  EXPECT_EQ(alloc.used_blocks(), owned.size());
  EXPECT_TRUE(alloc.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertySweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace fsbench
