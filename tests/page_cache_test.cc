#include "src/sim/page_cache.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace fsbench {
namespace {

PageKey Key(InodeId ino, uint64_t index) { return PageKey{ino, index}; }

TEST(PageCacheTest, MissThenHit) {
  PageCache cache(8, EvictionPolicyKind::kLru);
  EXPECT_FALSE(cache.Lookup(Key(1, 0)));
  cache.Insert(Key(1, 0), 100, false);
  EXPECT_TRUE(cache.Lookup(Key(1, 0)));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCacheTest, ContainsDoesNotTouchStats) {
  PageCache cache(8, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 100, false);
  EXPECT_TRUE(cache.Contains(Key(1, 0)));
  EXPECT_FALSE(cache.Contains(Key(1, 1)));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PageCacheTest, CapacityIsEnforced) {
  PageCache cache(4, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(Key(1, i), 100 + i, false);
    EXPECT_LE(cache.size(), 4u);
    EXPECT_TRUE(cache.CheckInvariants());
  }
  EXPECT_EQ(cache.stats().evictions, 6u);
}

TEST(PageCacheTest, LruEvictionOrder) {
  PageCache cache(3, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 0, false);
  cache.Insert(Key(1, 1), 1, false);
  cache.Insert(Key(1, 2), 2, false);
  ASSERT_TRUE(cache.Lookup(Key(1, 0)));  // refresh 0
  const auto evicted = cache.Insert(Key(1, 3), 3, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key.index, 1u);  // 1 was LRU
}

TEST(PageCacheTest, EvictedDirtyPagesCarryBlock) {
  PageCache cache(1, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 777, true);
  const auto evicted = cache.Insert(Key(1, 1), 888, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_TRUE(evicted[0].dirty);
  EXPECT_EQ(evicted[0].block, 777u);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST(PageCacheTest, InsertExistingRefreshesAndMergesDirty) {
  PageCache cache(4, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 10, false);
  EXPECT_EQ(cache.dirty_count(), 0u);
  cache.Insert(Key(1, 0), 10, true);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.dirty_count(), 1u);
  // Inserting clean over dirty keeps it dirty.
  cache.Insert(Key(1, 0), 10, false);
  EXPECT_EQ(cache.dirty_count(), 1u);
}

TEST(PageCacheTest, MarkDirtyAndTakeDirty) {
  PageCache cache(8, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 10, false);
  cache.Insert(Key(1, 1), 11, false);
  EXPECT_TRUE(cache.MarkDirty(Key(1, 0)));
  EXPECT_FALSE(cache.MarkDirty(Key(2, 0)));
  EXPECT_EQ(cache.dirty_count(), 1u);
  const auto dirty = cache.TakeDirty(10);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].block, 10u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  // Pages stay resident after TakeDirty.
  EXPECT_TRUE(cache.Contains(Key(1, 0)));
}

TEST(PageCacheTest, TakeDirtyHonoursLimit) {
  PageCache cache(16, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(1, i), i, true);
  }
  EXPECT_EQ(cache.TakeDirty(3).size(), 3u);
  EXPECT_EQ(cache.dirty_count(), 5u);
}

TEST(PageCacheTest, RemoveFileDropsAllItsPages) {
  PageCache cache(16, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(1, i), i, i % 2 == 0);
    cache.Insert(Key(2, i), 100 + i, false);
  }
  cache.RemoveFile(1);
  EXPECT_EQ(cache.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.Contains(Key(1, i)));
    EXPECT_TRUE(cache.Contains(Key(2, i)));
  }
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, ClearEmptiesEverything) {
  PageCache cache(16, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(1, i), i, true);
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, MetaAndDataKeysCoexist) {
  PageCache cache(8, EvictionPolicyKind::kLru);
  cache.Insert(Key(kMetaInode, 500), 500, false);
  cache.Insert(Key(1, 500), 900, false);
  EXPECT_TRUE(cache.Contains(Key(kMetaInode, 500)));
  EXPECT_TRUE(cache.Contains(Key(1, 500)));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PageCacheTest, TakeDirtyIsFifoInFirstDirtiedOrder) {
  // Regression: writeback order used to follow unordered_map iteration
  // order, which varies by stdlib. The dirty chain makes it deterministic:
  // pages come out in the order they were first dirtied.
  PageCache cache(16, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(1, i), 100 + i, false);
  }
  const uint64_t order[] = {5, 2, 7, 0};
  for (const uint64_t index : order) {
    ASSERT_TRUE(cache.MarkDirty(Key(1, index)));
  }
  // Re-dirtying an already-dirty page must not move it in the queue.
  ASSERT_TRUE(cache.MarkDirty(Key(1, 5)));
  cache.Insert(Key(1, 2), 102, true);

  auto taken = cache.TakeDirty(2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].key.index, 5u);
  EXPECT_EQ(taken[1].key.index, 2u);

  // A page dirtied after the drain goes to the back of the queue.
  ASSERT_TRUE(cache.MarkDirty(Key(1, 3)));
  taken = cache.TakeDirty(10);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].key.index, 7u);
  EXPECT_EQ(taken[1].key.index, 0u);
  EXPECT_EQ(taken[2].key.index, 3u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, TakeDirtySkipsRecleanedPages) {
  PageCache cache(16, EvictionPolicyKind::kLru);
  cache.Insert(Key(1, 0), 10, true);
  cache.Insert(Key(1, 1), 11, true);
  cache.Remove(Key(1, 0));  // dirty page invalidated: must leave the queue
  const auto taken = cache.TakeDirty(10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].key.index, 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, GhostEntriesAreInvisibleToResidency) {
  // Capacity-2 ARC with the working set promoted to T2: an overflow leaves
  // a B2 ghost. Ghosts must not count as resident for Contains / Lookup /
  // MarkDirty / Remove, and reviving one must re-admit the page.
  PageCache cache(2, EvictionPolicyKind::kArc);
  cache.Insert(Key(1, 0), 0, false);
  cache.Lookup(Key(1, 0));
  cache.Insert(Key(1, 1), 1, false);
  cache.Lookup(Key(1, 1));
  const auto evicted = cache.Insert(Key(1, 2), 2, false);
  ASSERT_EQ(evicted.size(), 1u);
  const PageKey ghost = evicted[0].key;  // T2 LRU victim, ghosted in B2
  EXPECT_GT(cache.ghost_count(), 0u);
  EXPECT_FALSE(cache.Contains(ghost));
  EXPECT_FALSE(cache.MarkDirty(ghost));
  const uint64_t misses_before = cache.stats().misses;
  EXPECT_FALSE(cache.Lookup(ghost));
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  cache.Remove(ghost);  // no-op on ghosts
  EXPECT_GT(cache.ghost_count(), 0u);
  cache.Insert(ghost, 7, false);  // ghost hit: revived into T2
  EXPECT_TRUE(cache.Contains(ghost));
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, RemoveFileLeavesOtherInodeChainsIntact) {
  PageCache cache(256, EvictionPolicyKind::kTwoQueue);
  for (InodeId ino = 1; ino <= 16; ++ino) {
    for (uint64_t i = 0; i < 8; ++i) {
      cache.Insert(Key(ino, i), ino * 100 + i, ino % 3 == 0);
    }
  }
  cache.RemoveFile(7);
  cache.RemoveFile(7);  // second drop of the same inode is a no-op
  EXPECT_EQ(cache.size(), 15u * 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(cache.Contains(Key(7, i)));
    EXPECT_TRUE(cache.Contains(Key(8, i)));
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, ClearKeepsGhostHistory) {
  PageCache cache(4, EvictionPolicyKind::kArc);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(1, i), i, false);
    cache.Lookup(Key(1, i));  // promote to T2 so overflow ghosts persist
  }
  for (uint64_t i = 4; i < 8; ++i) {
    cache.Insert(Key(1, i), i, false);
  }
  const size_t ghosts = cache.ghost_count();
  ASSERT_GT(ghosts, 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // Dropping caches forgets residency, not the policy's reference history
  // (matching the pre-slab behaviour, where ghost lists survived Clear).
  EXPECT_EQ(cache.ghost_count(), ghosts);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PageCacheTest, InsertReportsIntoCallerBatch) {
  PageCache cache(1, EvictionPolicyKind::kLru);
  PageCache::EvictedBatch batch;
  cache.Insert(Key(1, 0), 10, true, &batch);
  EXPECT_TRUE(batch.empty());
  cache.Insert(Key(1, 1), 11, false, &batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].key.index, 0u);
  EXPECT_TRUE(batch[0].dirty);
  // A null sink discards the report but still evicts.
  cache.Insert(Key(1, 2), 12, false, nullptr);
  EXPECT_FALSE(cache.Contains(Key(1, 1)));
  EXPECT_EQ(cache.size(), 1u);
}

class PageCachePolicySweep : public ::testing::TestWithParam<EvictionPolicyKind> {};

TEST_P(PageCachePolicySweep, RandomWorkloadKeepsInvariants) {
  PageCache cache(32, GetParam());
  Rng rng(123);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t index = rng.NextBelow(100);
    if (!cache.Lookup(Key(1, index))) {
      cache.Insert(Key(1, index), index, rng.NextDouble() < 0.3);
    }
    if (step % 1000 == 0) {
      ASSERT_TRUE(cache.CheckInvariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(cache.CheckInvariants());
  // Uniform over 100 pages with 32-page cache: hit ratio should be near
  // 32/100 for any sane policy.
  const double hit_ratio = static_cast<double>(cache.stats().hits) /
                           (cache.stats().hits + cache.stats().misses);
  EXPECT_GT(hit_ratio, 0.22);
  EXPECT_LT(hit_ratio, 0.45);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PageCachePolicySweep,
                         ::testing::Values(EvictionPolicyKind::kLru, EvictionPolicyKind::kClock,
                                           EvictionPolicyKind::kTwoQueue,
                                           EvictionPolicyKind::kArc),
                         [](const auto& info) { return EvictionPolicyKindName(info.param); });

}  // namespace
}  // namespace fsbench
