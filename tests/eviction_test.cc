// Policy behaviour tests, driven through the slab PageCache (the policies
// have no standalone object anymore — they are transition rules over the
// cache's intrusive lists). Decision-level equivalence with the pre-slab
// implementations is covered separately by cache_differential_test.cc.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/sim/page_cache.h"
#include "src/util/rng.h"

namespace fsbench {
namespace {

PageKey Key(uint64_t index) { return PageKey{1, index}; }

// --- Generic contract, swept over every policy kind ---

class EvictionPolicySweep : public ::testing::TestWithParam<EvictionPolicyKind> {
 protected:
  static constexpr size_t kCapacity = 64;
};

TEST_P(EvictionPolicySweep, EvictionStartsExactlyAtCapacity) {
  PageCache cache(kCapacity, GetParam());
  for (uint64_t i = 0; i < kCapacity; ++i) {
    EXPECT_TRUE(cache.Insert(Key(i), i, false).empty()) << "premature eviction at " << i;
  }
  EXPECT_EQ(cache.size(), kCapacity);
  const PageCache::EvictedBatch evicted = cache.Insert(Key(kCapacity), kCapacity, false);
  EXPECT_EQ(evicted.size(), 1u);
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST_P(EvictionPolicySweep, VictimIsAlwaysResident) {
  PageCache cache(kCapacity, GetParam());
  std::unordered_set<uint64_t> resident;
  Rng rng(42);
  uint64_t next = 0;
  for (int step = 0; step < 5000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5 || resident.empty()) {
      const PageCache::EvictedBatch evicted = cache.Insert(Key(next), next, false);
      resident.insert(next);
      ++next;
      for (const PageCache::Evicted& victim : evicted) {
        ASSERT_TRUE(resident.count(victim.key.index)) << "victim not resident";
        resident.erase(victim.key.index);
      }
    } else if (action < 0.8) {
      // Access a random key; only resident ones may hit.
      const uint64_t target = rng.NextBelow(next);
      ASSERT_EQ(cache.Lookup(Key(target)), resident.count(target) != 0) << "step " << step;
    } else {
      // Remove a random key (absent removes must be harmless).
      const uint64_t target = rng.NextBelow(next);
      cache.Remove(Key(target));
      resident.erase(target);
    }
    ASSERT_EQ(cache.size(), resident.size()) << "step " << step;
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST_P(EvictionPolicySweep, RemoveOfAbsentKeyIsHarmless) {
  PageCache cache(kCapacity, GetParam());
  cache.Insert(Key(1), 1, false);
  cache.Remove(Key(999));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST_P(EvictionPolicySweep, EveryResidentKeyEvictedExactlyOnce) {
  PageCache cache(8, GetParam());
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(i), i, false);
  }
  std::set<uint64_t> victims;
  for (uint64_t i = 100; i < 108; ++i) {
    const PageCache::EvictedBatch evicted = cache.Insert(Key(i), i, false);
    ASSERT_EQ(evicted.size(), 1u);
    victims.insert(evicted[0].key.index);
  }
  // Eight never-accessed keys displaced by eight fresh ones: under every
  // policy the originals go first, each evicted exactly once.
  EXPECT_EQ(victims, (std::set<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EvictionPolicySweep,
                         ::testing::Values(EvictionPolicyKind::kLru, EvictionPolicyKind::kClock,
                                           EvictionPolicyKind::kTwoQueue,
                                           EvictionPolicyKind::kArc),
                         [](const auto& info) { return EvictionPolicyKindName(info.param); });

// --- Policy-specific behaviour ---

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  PageCache cache(4, EvictionPolicyKind::kLru);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(i), i, false);
  }
  ASSERT_TRUE(cache.Lookup(Key(0)));  // 0 becomes MRU; 1 is now LRU
  EXPECT_EQ(cache.Insert(Key(10), 10, false)[0].key.index, 1u);
  EXPECT_EQ(cache.Insert(Key(11), 11, false)[0].key.index, 2u);
  EXPECT_EQ(cache.Insert(Key(12), 12, false)[0].key.index, 3u);
  EXPECT_EQ(cache.Insert(Key(13), 13, false)[0].key.index, 0u);
}

TEST(ClockPolicyTest, ReferencedPageGetsSecondChance) {
  PageCache cache(3, EvictionPolicyKind::kClock);
  for (uint64_t i = 0; i < 3; ++i) {
    cache.Insert(Key(i), i, false);
  }
  ASSERT_TRUE(cache.Lookup(Key(0)));
  // 0 is referenced: the hand must skip it and evict 1 or 2 first.
  const PageCache::EvictedBatch evicted = cache.Insert(Key(10), 10, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_NE(evicted[0].key.index, 0u);
}

TEST(TwoQueuePolicyTest, OneTouchScanDoesNotEvictHotSet) {
  constexpr size_t kCapacity = 32;
  PageCache cache(kCapacity, EvictionPolicyKind::kTwoQueue);
  // Build a hot set that gets promoted into Am: keys 0..7, inserted,
  // evicted out of A1in, then re-inserted (ghost hit -> Am).
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(i), i, false);
  }
  for (uint64_t i = 100; i < 100 + kCapacity; ++i) {
    cache.Insert(Key(i), i, false);  // push 0..7 out through A1in into the ghost
  }
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(i), i, false);  // ghost hits: promoted to Am
    cache.Lookup(Key(i));
  }
  // A long one-touch scan must not evict the hot set.
  std::set<uint64_t> evicted_hot;
  for (uint64_t i = 1000; i < 1300; ++i) {
    for (const PageCache::Evicted& victim : cache.Insert(Key(i), i, false)) {
      if (victim.key.index < 8) {
        evicted_hot.insert(victim.key.index);
      }
    }
  }
  EXPECT_TRUE(evicted_hot.empty()) << "2Q evicted hot keys during a scan";
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcPolicyTest, ResidentHitsPromoteToT2AndSurviveScan) {
  constexpr size_t kCapacity = 16;
  PageCache cache(kCapacity, EvictionPolicyKind::kArc);
  std::set<uint64_t> evicted_hot;
  // Hot keys accessed twice (resident hit -> T2).
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(i), i, false);
    cache.Lookup(Key(i));
  }
  // Scan: many one-touch keys.
  for (uint64_t i = 1000; i < 1200; ++i) {
    for (const PageCache::Evicted& victim : cache.Insert(Key(i), i, false)) {
      if (victim.key.index < 8) {
        evicted_hot.insert(victim.key.index);
      }
    }
  }
  // ARC should strongly favour evicting the scan (T1) over the hot T2 set.
  EXPECT_LE(evicted_hot.size(), 2u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(ArcPolicyTest, GhostHitsAdaptTargetT1) {
  constexpr size_t kCapacity = 8;
  PageCache cache(kCapacity, EvictionPolicyKind::kArc);
  EXPECT_EQ(cache.arc_target_t1(), 0.0);
  // Promote the working set to T2 (sequential one-touch inserts would keep
  // T1+B1 at capacity, and ARC's trim would retire each ghost immediately).
  for (uint64_t i = 0; i < kCapacity; ++i) {
    cache.Insert(Key(i), i, false);
    cache.Lookup(Key(i));
  }
  cache.Insert(Key(100), 100, false);  // evicts a T2 page into B2; 100 -> T1
  ASSERT_GT(cache.ghost_count(), 0u);
  cache.Insert(Key(101), 101, false);  // evicts 100 from T1 into B1
  cache.Insert(Key(100), 100, false);  // B1 ghost hit: p must grow
  EXPECT_GT(cache.arc_target_t1(), 0.0);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(PolicyFactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(PageCache(4, EvictionPolicyKind::kLru).policy_name(), "lru");
  EXPECT_STREQ(PageCache(4, EvictionPolicyKind::kClock).policy_name(), "clock");
  EXPECT_STREQ(PageCache(4, EvictionPolicyKind::kTwoQueue).policy_name(), "2q");
  EXPECT_STREQ(PageCache(4, EvictionPolicyKind::kArc).policy_name(), "arc");
}

TEST(PolicyGeometryTest, SlabBoundsCoverGhosts) {
  const PolicyGeometry lru = PolicyGeometry::For(EvictionPolicyKind::kLru, 100);
  EXPECT_EQ(lru.max_live_nodes, 100u);
  const PolicyGeometry two_queue = PolicyGeometry::For(EvictionPolicyKind::kTwoQueue, 100);
  EXPECT_EQ(two_queue.kin, 25u);
  EXPECT_EQ(two_queue.kout, 50u);
  EXPECT_EQ(two_queue.max_live_nodes, 151u);
  const PolicyGeometry arc = PolicyGeometry::For(EvictionPolicyKind::kArc, 100);
  EXPECT_EQ(arc.arc_c, 100u);
  EXPECT_EQ(arc.max_live_nodes, 201u);
}

}  // namespace
}  // namespace fsbench
