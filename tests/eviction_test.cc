#include "src/sim/eviction_policy.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/util/rng.h"

namespace fsbench {
namespace {

PageKey Key(uint64_t index) { return PageKey{1, index}; }

// --- Generic contract, swept over every policy kind ---

class EvictionPolicySweep : public ::testing::TestWithParam<EvictionPolicyKind> {
 protected:
  static constexpr size_t kCapacity = 64;
  std::unique_ptr<EvictionPolicy> policy_ = MakeEvictionPolicy(GetParam(), kCapacity);
};

TEST_P(EvictionPolicySweep, ResidentCountTracksInsertAndVictim) {
  for (uint64_t i = 0; i < 10; ++i) {
    policy_->OnInsert(Key(i));
  }
  EXPECT_EQ(policy_->resident_count(), 10u);
  const PageKey victim = policy_->ChooseVictim();
  EXPECT_EQ(policy_->resident_count(), 9u);
  EXPECT_LT(victim.index, 10u);
}

TEST_P(EvictionPolicySweep, VictimIsAlwaysResident) {
  std::unordered_set<uint64_t> resident;
  Rng rng(42);
  uint64_t next = 0;
  for (int step = 0; step < 5000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5 || resident.empty()) {
      policy_->OnInsert(Key(next));
      resident.insert(next);
      ++next;
      if (resident.size() > kCapacity) {
        const PageKey victim = policy_->ChooseVictim();
        ASSERT_TRUE(resident.count(victim.index)) << "victim not resident";
        resident.erase(victim.index);
      }
    } else if (action < 0.8) {
      // Access a random resident key.
      const uint64_t target = rng.NextBelow(next);
      if (resident.count(target)) {
        policy_->OnAccess(Key(target));
      }
    } else {
      // Remove a random resident key.
      const uint64_t target = rng.NextBelow(next);
      if (resident.count(target)) {
        policy_->OnRemove(Key(target));
        resident.erase(target);
      }
    }
    ASSERT_EQ(policy_->resident_count(), resident.size()) << "step " << step;
  }
}

TEST_P(EvictionPolicySweep, RemoveOfAbsentKeyIsHarmless) {
  policy_->OnInsert(Key(1));
  policy_->OnRemove(Key(999));
  EXPECT_EQ(policy_->resident_count(), 1u);
}

TEST_P(EvictionPolicySweep, DrainToEmpty) {
  for (uint64_t i = 0; i < 8; ++i) {
    policy_->OnInsert(Key(i));
  }
  std::set<uint64_t> victims;
  for (int i = 0; i < 8; ++i) {
    victims.insert(policy_->ChooseVictim().index);
  }
  EXPECT_EQ(victims.size(), 8u);  // every key evicted exactly once
  EXPECT_EQ(policy_->resident_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EvictionPolicySweep,
                         ::testing::Values(EvictionPolicyKind::kLru, EvictionPolicyKind::kClock,
                                           EvictionPolicyKind::kTwoQueue,
                                           EvictionPolicyKind::kArc),
                         [](const auto& info) { return EvictionPolicyKindName(info.param); });

// --- Policy-specific behaviour ---

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  auto policy = MakeEvictionPolicy(EvictionPolicyKind::kLru, 4);
  for (uint64_t i = 0; i < 4; ++i) {
    policy->OnInsert(Key(i));
  }
  policy->OnAccess(Key(0));  // 0 becomes MRU; 1 is now LRU
  EXPECT_EQ(policy->ChooseVictim().index, 1u);
  EXPECT_EQ(policy->ChooseVictim().index, 2u);
  EXPECT_EQ(policy->ChooseVictim().index, 3u);
  EXPECT_EQ(policy->ChooseVictim().index, 0u);
}

TEST(ClockPolicyTest, ReferencedPageGetsSecondChance) {
  auto policy = MakeEvictionPolicy(EvictionPolicyKind::kClock, 4);
  for (uint64_t i = 0; i < 3; ++i) {
    policy->OnInsert(Key(i));
  }
  policy->OnAccess(Key(0));
  // 0 is referenced: the hand should skip it and evict 1 or 2 first.
  const PageKey victim = policy->ChooseVictim();
  EXPECT_NE(victim.index, 0u);
}

TEST(TwoQueuePolicyTest, OneTouchScanDoesNotEvictHotSet) {
  constexpr size_t kCapacity = 32;
  auto policy = MakeEvictionPolicy(EvictionPolicyKind::kTwoQueue, kCapacity);
  size_t resident = 0;
  auto insert = [&](uint64_t i) {
    policy->OnInsert(Key(i));
    ++resident;
    std::vector<uint64_t> evicted;
    while (resident > kCapacity) {
      evicted.push_back(policy->ChooseVictim().index);
      --resident;
    }
    return evicted;
  };
  // Build a hot set that gets promoted into Am: keys 0..7, inserted,
  // evicted out of A1in, then re-inserted (ghost hit -> Am).
  for (uint64_t i = 0; i < 8; ++i) {
    insert(i);
  }
  for (uint64_t i = 100; i < 100 + kCapacity; ++i) {
    insert(i);  // push 0..7 out through A1in into the ghost
  }
  for (uint64_t i = 0; i < 8; ++i) {
    insert(i);  // ghost hits: promoted to Am
    policy->OnAccess(Key(i));
  }
  // A long one-touch scan must not evict the hot set.
  std::set<uint64_t> evicted_hot;
  for (uint64_t i = 1000; i < 1300; ++i) {
    for (uint64_t victim : insert(i)) {
      if (victim < 8) {
        evicted_hot.insert(victim);
      }
    }
  }
  EXPECT_TRUE(evicted_hot.empty()) << "2Q evicted hot keys during a scan";
}

TEST(ArcPolicyTest, GhostHitPromotesToT2AndSurvivesScan) {
  constexpr size_t kCapacity = 16;
  auto policy = MakeEvictionPolicy(EvictionPolicyKind::kArc, kCapacity);
  size_t resident = 0;
  std::set<uint64_t> evicted_hot;
  auto insert = [&](uint64_t i, uint64_t hot_below) {
    policy->OnInsert(Key(i));
    ++resident;
    while (resident > kCapacity) {
      const uint64_t victim = policy->ChooseVictim().index;
      --resident;
      if (victim < hot_below) {
        evicted_hot.insert(victim);
      }
    }
  };
  // Hot keys accessed twice (resident hit -> T2).
  for (uint64_t i = 0; i < 8; ++i) {
    insert(i, 0);
    policy->OnAccess(Key(i));
  }
  // Scan: many one-touch keys.
  for (uint64_t i = 1000; i < 1200; ++i) {
    insert(i, 8);
  }
  // ARC should strongly favour evicting the scan (T1) over the hot T2 set.
  EXPECT_LE(evicted_hot.size(), 2u);
}

TEST(PolicyFactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kLru, 4)->name(), "lru");
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kClock, 4)->name(), "clock");
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kTwoQueue, 4)->name(), "2q");
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kArc, 4)->name(), "arc");
}

}  // namespace
}  // namespace fsbench
