#include "src/core/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace fsbench {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  Rng rng(3);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 5.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
}

TEST(RunningStatsTest, RelativeStddev) {
  RunningStats stats;
  stats.Add(90.0);
  stats.Add(110.0);
  // mean 100, stddev sqrt(200) ~ 14.14 -> 14.14%
  EXPECT_NEAR(stats.rel_stddev_pct(), 14.142, 0.01);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0 / 3.0), 20.0);
}

// Boundary behavior: empty input, single element, q outside [0,1], and
// interpolation between exactly two elements.
TEST(PercentileTest, EmptyInputReturnsZero) {
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 1.0), 0.0);
}

TEST(PercentileTest, SingleElementForAnyQuantile) {
  const std::vector<double> sorted{7.5};
  for (double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(PercentileSorted(sorted, q), 7.5) << "q=" << q;
  }
}

TEST(PercentileTest, EndpointsAndOutOfRangeClamp) {
  const std::vector<double> sorted{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 2.0), 30.0);
}

TEST(PercentileTest, InterpolatesBetweenTwoElements) {
  const std::vector<double> sorted{100.0, 200.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.25), 125.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 150.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.75), 175.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 200.0);
}

TEST(SummarizeTest, BasicFields) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95_half_width, 0.0);
}

TEST(SummarizeTest, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const Summary one = Summarize({7.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.mean, 7.0);
  EXPECT_EQ(one.ci95_half_width, 0.0);
}

TEST(TDistributionTest, CdfSymmetry) {
  for (double t : {0.5, 1.0, 2.0}) {
    for (double df : {1.0, 5.0, 30.0}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-10);
    }
  }
  EXPECT_NEAR(StudentTCdf(0.0, 7.0), 0.5, 1e-12);
}

TEST(TDistributionTest, CriticalValuesMatchTables) {
  // Standard two-sided 95% critical values.
  EXPECT_NEAR(TCritical(1), 12.706, 0.01);
  EXPECT_NEAR(TCritical(2), 4.303, 0.005);
  EXPECT_NEAR(TCritical(5), 2.571, 0.005);
  EXPECT_NEAR(TCritical(9), 2.262, 0.005);
  EXPECT_NEAR(TCritical(10), 2.228, 0.005);
  EXPECT_NEAR(TCritical(30), 2.042, 0.005);
  EXPECT_NEAR(TCritical(1000), 1.962, 0.005);
}

TEST(TDistributionTest, Confidence99) {
  EXPECT_NEAR(TCritical(10, 0.99), 3.169, 0.01);
}

TEST(WelchTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> a{10.0, 11.0, 9.0, 10.5, 9.5};
  const WelchResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_FALSE(r.Significant());
}

TEST(WelchTest, WellSeparatedSamplesAreSignificant) {
  const std::vector<double> a{100.0, 101.0, 99.0, 100.5, 99.5};
  const std::vector<double> b{10.0, 11.0, 9.0, 10.5, 9.5};
  const WelchResult r = WelchTTest(a, b);
  EXPECT_TRUE(r.Significant(0.001));
  EXPECT_NEAR(r.mean_diff, 90.0, 1e-9);
  EXPECT_GT(r.ci95_lo, 80.0);
  EXPECT_LT(r.ci95_hi, 100.0);
}

TEST(WelchTest, KnownExample) {
  // Classic Welch example with unequal variances.
  const std::vector<double> a{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1,
                              19.6, 19.0, 21.7, 21.4};
  const std::vector<double> b{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9,
                              22.1, 22.9, 30.5};
  const WelchResult r = WelchTTest(a, b);
  // Reference values computed independently (Welch formulas, double
  // precision): t = -2.70778, df = 26.9527.
  EXPECT_NEAR(r.t, -2.70778, 0.0002);
  EXPECT_NEAR(r.df, 26.9527, 0.002);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(WelchTest, TooFewSamples) {
  const WelchResult r = WelchTTest({1.0}, {2.0, 3.0});
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(RunsForPrecisionTest, ScalesWithVariance) {
  Summary noisy;
  noisy.count = 5;
  noisy.mean = 100.0;
  noisy.stddev = 30.0;
  Summary quiet = noisy;
  quiet.stddev = 3.0;
  EXPECT_GT(RunsForRelativePrecision(noisy, 0.05), RunsForRelativePrecision(quiet, 0.05));
  EXPECT_GE(RunsForRelativePrecision(quiet, 0.05), 2u);
}

class SummaryPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SummaryPropertySweep, CiShrinksWithSampleSize) {
  Rng rng(GetParam());
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 10; ++i) {
    small.push_back(rng.NextGaussian() * 10.0 + 100.0);
  }
  for (int i = 0; i < 1000; ++i) {
    large.push_back(rng.NextGaussian() * 10.0 + 100.0);
  }
  EXPECT_LT(Summarize(large).ci95_half_width, Summarize(small).ci95_half_width);
  // The sample mean of 1000 gaussians (sigma 10) is within ~5 standard
  // errors of the true mean for any reasonable seed.
  const Summary s = Summarize(large);
  EXPECT_NEAR(s.mean, 100.0, 1.6);
  EXPECT_LT(s.ci95_half_width, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryPropertySweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fsbench
