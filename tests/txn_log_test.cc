// Transaction-log mechanism tests: lifecycle, log-space accounting,
// checkpoint reclaim, the log-full stall, wraparound under accounting, and
// oversized-transaction splitting. (The old journal silently wrapped its
// head over its own tail in the last two scenarios; these are the
// regression tests the refactor was asked to make possible.)
#include "src/sim/txn_log.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/disk_model.h"

namespace fsbench {
namespace {

MetaRef Ref(BlockId block) { return MetaRef{1, block, block}; }

struct LogFixture {
  DiskParams params;
  VirtualClock clock;
  DiskModel disk;
  IoScheduler scheduler;

  LogFixture() : disk(params, 1), scheduler(&disk) {}

  TxnLog MakeLog(uint64_t region_blocks, TxnLogConfig config = {}) {
    return TxnLog(&scheduler, &clock, Extent{1000, region_blocks}, config);
  }
};

// Checkpoint sink that counts requests; refs are considered flushed (the
// log's forced path treats them as written after its drain regardless).
struct CountingSink : CheckpointSink {
  size_t calls = 0;
  size_t refs_seen = 0;
  size_t WritebackForCheckpoint(const MetaRef* refs, size_t count, Nanos now) override {
    (void)refs;
    (void)now;
    ++calls;
    refs_seen += count;
    return count;
  }
};

TEST(TxnLogTest, EmptyCommitWritesNothing) {
  LogFixture f;
  TxnLog log = f.MakeLog(64);
  EXPECT_EQ(log.Commit(/*sync=*/true), f.clock.now());
  EXPECT_EQ(log.stats().commits, 0u);
  EXPECT_EQ(log.used_blocks(), 0u);
  EXPECT_EQ(f.disk.stats().writes, 0u);
}

TEST(TxnLogTest, CommitAccountsDescriptorAndCommitRecord) {
  LogFixture f;
  TxnLog log = f.MakeLog(64);
  log.Add(Ref(10));
  log.Add(Ref(11));
  log.Add(Ref(10));  // dedup
  EXPECT_EQ(log.pending_blocks(), 2u);
  log.Commit(/*sync=*/true);
  EXPECT_EQ(log.stats().commits, 1u);
  EXPECT_EQ(log.stats().blocks_logged, 2u);
  EXPECT_EQ(log.used_blocks(), 4u);  // descriptor + 2 + commit record
  EXPECT_EQ(log.pending_blocks(), 0u);
}

TEST(TxnLogTest, HomeWritebackReclaimsTailSpace) {
  LogFixture f;
  TxnLog log = f.MakeLog(64);
  log.Add(Ref(10));
  log.Add(Ref(11));
  log.Commit(/*sync=*/true);
  ASSERT_EQ(log.used_blocks(), 4u);
  // Home writes reported: the next commit's space check reclaims the tail.
  log.NoteHomeWrite(10);
  log.NoteHomeWrite(11);
  log.Add(Ref(12));
  log.Commit(/*sync=*/true);
  EXPECT_EQ(log.used_blocks(), 3u);  // only the second transaction lives
  EXPECT_EQ(log.stats().reclaimed_txns, 1u);
  EXPECT_EQ(log.stats().log_stalls, 0u);
}

TEST(TxnLogTest, HomeWriteBeforeCommitDoesNotReclaim) {
  // A writeback that happened before the commit cannot stand in for the
  // checkpoint of that commit's (newer) content.
  LogFixture f;
  TxnLog log = f.MakeLog(64);
  log.NoteHomeWrite(10);
  log.Add(Ref(10));
  log.Commit(/*sync=*/true);
  log.Add(Ref(20));
  log.Commit(/*sync=*/true);
  EXPECT_EQ(log.stats().reclaimed_txns, 0u);
  EXPECT_EQ(log.used_blocks(), 6u);
}

TEST(TxnLogTest, WrapsAroundRegionWhileCheckpointingKeepsUp) {
  LogFixture f;
  TxnLog log = f.MakeLog(8);
  // Each commit takes 4 of the 8 blocks; with home writes reported between
  // commits, the head wraps the region many times without ever stalling.
  for (int tx = 0; tx < 10; ++tx) {
    log.Add(Ref(100 + tx));
    log.Add(Ref(200 + tx));
    log.Commit(/*sync=*/true);
    log.NoteHomeWrite(100 + tx);
    log.NoteHomeWrite(200 + tx);
  }
  EXPECT_EQ(log.stats().commits, 10u);
  EXPECT_EQ(log.stats().log_stalls, 0u);
  EXPECT_LE(log.stats().max_used_blocks, 8u);
  EXPECT_EQ(log.stats().reclaimed_txns, 9u);  // the last one is still live
}

TEST(TxnLogTest, LogFullStallsUntilForcedCheckpoint) {
  LogFixture f;
  TxnLog log = f.MakeLog(8);
  CountingSink sink;
  log.set_checkpoint_sink(&sink);
  // No home writes reported: the second 2-block transaction does not fit
  // behind the first (4 + 4 > 8 would fit exactly; use 3 blocks to force
  // it) and must stall on a forced checkpoint.
  log.Add(Ref(1));
  log.Add(Ref(2));
  log.Add(Ref(3));
  log.Commit(/*sync=*/false);
  ASSERT_EQ(log.used_blocks(), 5u);
  const Nanos before = f.clock.now();
  log.Add(Ref(4));
  log.Add(Ref(5));
  log.Commit(/*sync=*/false);
  EXPECT_EQ(log.stats().log_stalls, 1u);
  EXPECT_EQ(log.stats().forced_checkpoints, 1u);
  EXPECT_GE(sink.calls, 1u);
  EXPECT_EQ(sink.refs_seen, 3u);
  // The stall waited for the device to drain the checkpoint writeback.
  EXPECT_GT(f.clock.now(), before);
  EXPECT_EQ(log.stats().stall_time, f.clock.now() - before);
  EXPECT_EQ(log.used_blocks(), 4u);  // only the new transaction lives
}

TEST(TxnLogTest, TransactionLargerThanRegionIsSplitNotWrapped) {
  LogFixture f;
  TxnLog log = f.MakeLog(8);
  // 20 home blocks cannot fit an 8-block region: the commit must be chunked
  // into ceil(20/6) = 4 segments, checkpointing between them — never
  // wrapping the head over a live transaction (the old journal's silent
  // corruption case).
  for (BlockId b = 0; b < 20; ++b) {
    log.Add(Ref(500 + b));
  }
  const Nanos done = log.Commit(/*sync=*/true);
  EXPECT_EQ(log.stats().split_commits, 1u);
  EXPECT_EQ(log.stats().commits, 1u);
  EXPECT_EQ(log.stats().blocks_logged, 20u);
  EXPECT_GE(log.stats().log_stalls, 1u);
  EXPECT_GE(done, f.clock.now());
  // Every segment fit: occupancy never exceeded the region.
  EXPECT_LE(log.stats().max_used_blocks, 8u);
  // 20 home copies + 4 segments * (descriptor + commit record).
  EXPECT_EQ(f.disk.stats().writes, 28u);
}

TEST(TxnLogTest, RecordsCarryWatermarkAndCommitGeometry) {
  LogFixture f;
  TxnLog log = f.MakeLog(64);
  log.set_retain_history(true);
  log.SetOpWatermark(7);
  log.Add(Ref(10));
  log.Commit(/*sync=*/true);
  log.SetOpWatermark(19);
  log.Add(Ref(11));
  log.Add(Ref(12));
  log.Commit(/*sync=*/true);
  ASSERT_EQ(log.records().size(), 2u);
  const TxnLog::TxnRecord& first = log.records()[0];
  const TxnLog::TxnRecord& second = log.records()[1];
  EXPECT_EQ(first.watermark, 7u);
  EXPECT_EQ(first.log_start, 0u);
  EXPECT_EQ(first.log_blocks, 3u);
  EXPECT_EQ(first.commit_block, 1000u + 2u);
  EXPECT_EQ(second.watermark, 19u);
  EXPECT_EQ(second.log_start, 3u);
  EXPECT_EQ(second.log_blocks, 4u);
  ASSERT_EQ(second.home.size(), 2u);
  EXPECT_EQ(second.home[0].block, 11u);
  EXPECT_EQ(second.home[1].block, 12u);
}

TEST(TxnLogTest, RetainedHistorySurvivesCheckpointing) {
  LogFixture f;
  TxnLog log = f.MakeLog(8);
  log.set_retain_history(true);
  for (int tx = 0; tx < 6; ++tx) {
    log.Add(Ref(100 + tx));
    log.Commit(/*sync=*/true);
    log.NoteHomeWrite(100 + tx);
  }
  // All six commits are still visible, checkpointed or not.
  ASSERT_EQ(log.records().size(), 6u);
  size_t checkpointed = 0;
  for (const TxnLog::TxnRecord& txn : log.records()) {
    checkpointed += txn.checkpointed ? 1u : 0u;
  }
  EXPECT_EQ(checkpointed, log.stats().reclaimed_txns);
  EXPECT_GE(checkpointed, 4u);
}

}  // namespace
}  // namespace fsbench
