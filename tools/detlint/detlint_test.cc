// detlint's own regression suite: every rule exercised both ways against
// the fixtures in testdata/ (a rule that silently stops firing would
// otherwise pass CI forever), plus targeted lexer/scoping cases inline.
#include "tools/detlint/detlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fsbench::detlint {
namespace {

#ifndef DETLINT_TESTDATA_DIR
#error "build must define DETLINT_TESTDATA_DIR"
#endif

std::string ReadTestdata(const std::string& name) {
  const std::string path = std::string(DETLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Fixtures are scanned as if they lived in result-affecting code.
std::vector<Finding> LintFixture(const std::string& name) {
  return Lint({{"src/sim/" + name, ReadTestdata(name)}});
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// --- R1: unordered iteration ---

TEST(DetlintR1, FlagsUnorderedIterationFixtures) {
  const auto findings = LintFixture("r1_bad.cc");
  EXPECT_EQ(CountRule(findings, "R1"), 3) << "range-for x2 + begin() walk";
}

TEST(DetlintR1, AcceptsAnnotatedAndLookupOnlyUse) {
  const auto findings = LintFixture("r1_good.cc");
  EXPECT_EQ(findings.size(), 0u) << FormatFinding(findings.empty() ? Finding{} : findings[0]);
}

TEST(DetlintR1, PairsHeaderDeclarationWithSourceIteration) {
  // The member is declared in the header; the hazardous loop lives in the
  // same-stem .cc — exactly the FlashTier::RemoveFile shape.
  const std::string header =
      "#include <unordered_map>\n"
      "struct T { std::unordered_map<unsigned long, int> entries_; void F(); };\n";
  const std::string source =
      "#include \"t.h\"\n"
      "void T::F() {\n"
      "  for (const auto& [k, v] : entries_) { (void)k; (void)v; }\n"
      "}\n";
  const auto findings =
      Lint({{"src/sim/t.h", header}, {"src/sim/t.cc", source}});
  EXPECT_EQ(CountRule(findings, "R1"), 1);
  EXPECT_EQ(findings[0].file, "src/sim/t.cc");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(DetlintR1, FollowsUnorderedUsingAliases) {
  const std::string src =
      "#include <unordered_map>\n"
      "using PageMap = std::unordered_map<unsigned long, int>;\n"
      "struct T { PageMap pages_; };\n"
      "unsigned long F(T& t) {\n"
      "  unsigned long n = 0;\n"
      "  for (const auto& [k, v] : t.pages_) { n += v; }\n"
      "  return n;\n"
      "}\n";
  const auto findings = Lint({{"src/sim/alias.cc", src}});
  EXPECT_EQ(CountRule(findings, "R1"), 1);
}

// --- R2: ambient entropy ---

TEST(DetlintR2, FlagsEntropyFixtures) {
  const auto findings = LintFixture("r2_bad.cc");
  // system_clock, steady_clock, time(, rand(, std::rand(, random_device,
  // getenv.
  EXPECT_GE(CountRule(findings, "R2"), 7);
}

TEST(DetlintR2, AcceptsVirtualTimeAndLookalikes) {
  const auto findings = LintFixture("r2_good.cc");
  EXPECT_EQ(findings.size(), 0u) << FormatFinding(findings.empty() ? Finding{} : findings[0]);
}

TEST(DetlintR2, DoesNotApplyOutsideResultAffectingCode) {
  // The same text under src/survey (reporting layer) is out of R2 scope.
  const auto findings =
      Lint({{"src/survey/r2_bad.cc", ReadTestdata("r2_bad.cc")}});
  EXPECT_EQ(CountRule(findings, "R2"), 0);
}

TEST(DetlintR2, IgnoresStringsAndComments) {
  const std::string src =
      "// rand() and system_clock in a comment are fine\n"
      "/* so is time(nullptr) here */\n"
      "const char* kMsg = \"time(s) since rand()\";\n";
  const auto findings = Lint({{"src/core/strings.cc", src}});
  EXPECT_EQ(findings.size(), 0u);
}

// --- R3: clock discipline ---

TEST(DetlintR3, FlagsBaseClockFixtures) {
  const auto findings = LintFixture("r3_bad.cc");
  EXPECT_EQ(CountRule(findings, "R3"), 3) << "two in ChargeOp, one in ReadOrigin";
}

TEST(DetlintR3, AcceptsBindingSitesAndAnnotations) {
  const auto findings = LintFixture("r3_good.cc");
  EXPECT_EQ(findings.size(), 0u) << FormatFinding(findings.empty() ? Finding{} : findings[0]);
}

// --- R4: default member initializers ---

TEST(DetlintR4, FlagsUninitializedScalarMembers) {
  const auto findings = LintFixture("r4_bad.h");
  // hits, misses, ratio, warmed, mode (enum), label (pointer); std::string
  // name is a class type and must NOT be flagged.
  EXPECT_EQ(CountRule(findings, "R4"), 6);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.message.find("'name'") == std::string::npos) << FormatFinding(f);
  }
}

TEST(DetlintR4, AcceptsInitializedStruct) {
  const auto findings = LintFixture("r4_good.h");
  EXPECT_EQ(findings.size(), 0u) << FormatFinding(findings.empty() ? Finding{} : findings[0]);
}

TEST(DetlintR4, AppliesToHeadersOnly) {
  const auto findings =
      Lint({{"src/sim/r4_bad_in_source.cc", ReadTestdata("r4_bad.h")}});
  EXPECT_EQ(CountRule(findings, "R4"), 0);
}

TEST(DetlintR4, HandlesMemberFunctionsAndNestedTypes) {
  const std::string src =
      "#include <cstdint>\n"
      "struct Outer {\n"
      "  struct Inner { uint64_t bad; };\n"
      "  enum class E { kA, kB };\n"
      "  uint64_t ok = 0;\n"
      "  bool Flag() const { return ok != 0; }\n"
      "  static Outer Zero() { return Outer{}; }\n"
      "  uint64_t also_bad;\n"
      "};\n";
  const auto findings = Lint({{"src/sim/nested.h", src}});
  EXPECT_EQ(CountRule(findings, "R4"), 2);
  EXPECT_NE(findings[0].message.find("'bad'"), std::string::npos);
  EXPECT_NE(findings[1].message.find("'also_bad'"), std::string::npos);
}

TEST(DetlintR4, ResolvesScalarAliasesAcrossFiles) {
  const std::string units = "using Nanos = long long;\n";
  const std::string header = "struct S { Nanos t; };\n";
  const auto findings =
      Lint({{"src/util/units.h", units}, {"src/sim/s.h", header}});
  EXPECT_EQ(CountRule(findings, "R4"), 1);
}

// --- R5: pointer ordering ---

TEST(DetlintR5, FlagsPointerKeysAndPointerSorts) {
  const auto findings = LintFixture("r5_bad.cc");
  EXPECT_EQ(CountRule(findings, "R5"), 3) << "set key, map key, sort comparator";
}

TEST(DetlintR5, AcceptsStableKeysAndFieldSorts) {
  const auto findings = LintFixture("r5_good.cc");
  EXPECT_EQ(findings.size(), 0u) << FormatFinding(findings.empty() ? Finding{} : findings[0]);
}

// --- Annotations ---

TEST(DetlintAnnotations, UnknownTagIsAFinding) {
  const std::string src =
      "// detlint: order-insensative\n"
      "int x = 0;\n";
  const auto findings = Lint({{"src/sim/typo.cc", src}});
  EXPECT_EQ(CountRule(findings, "R0"), 1);
}

TEST(DetlintAnnotations, AnnotationOnPrecedingLineApplies) {
  const std::string src =
      "#include <unordered_set>\n"
      "struct T { std::unordered_set<int> s_; };\n"
      "int F(T& t) {\n"
      "  int n = 0;\n"
      "  // detlint: order-insensitive\n"
      "  for (int v : t.s_) { n += v; }\n"
      "  return n;\n"
      "}\n";
  const auto findings = Lint({{"src/sim/annot.cc", src}});
  EXPECT_EQ(findings.size(), 0u);
}

TEST(DetlintAnnotations, AnnotationDoesNotLeakPastNextCodeLine) {
  const std::string src =
      "#include <unordered_set>\n"
      "struct T { std::unordered_set<int> s_; };\n"
      "int F(T& t) {\n"
      "  // detlint: order-insensitive\n"
      "  int n = 0;\n"
      "  for (int v : t.s_) { n += v; }\n"
      "  return n;\n"
      "}\n";
  const auto findings = Lint({{"src/sim/leak.cc", src}});
  EXPECT_EQ(CountRule(findings, "R1"), 1) << "tag bound to `int n`, not the loop";
}

}  // namespace
}  // namespace fsbench::detlint
