// detlint CLI: scans .h/.cc/.cpp files under the given paths and prints one
// line per finding. Exit status 1 when anything was found — this is what the
// `detlint_src` ctest (and the CI lint job) runs over src/.
//
//   detlint [--root <dir>] <path>...
//
// Paths are resolved against --root (default: current directory) and
// reported relative to it, so rule scoping (src/sim, src/core) works no
// matter where the build tree lives.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/detlint/detlint.h"

namespace {

namespace fs = std::filesystem;
using fsbench::detlint::Finding;
using fsbench::detlint::SourceFile;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: detlint [--root <dir>] <path>...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "detlint: no paths given (try: detlint --root <repo> src)\n";
    return 2;
  }

  std::vector<SourceFile> files;
  for (const std::string& arg : paths) {
    const fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        // `testdata` trees hold intentionally-rule-breaking fixtures (the
        // linter's own test corpus) — scanning them would fail the gate on
        // files that exist to be findings.
        if (it->is_directory() && it->path().filename() == "testdata") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          found.push_back(it->path());
        }
      }
      // Directory iteration order is OS-dependent; the scan (and its output)
      // must not be.
      std::sort(found.begin(), found.end());
      for (const fs::path& f : found) {
        files.push_back({RelPath(f, root), ReadFile(f)});
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back({RelPath(p, root), ReadFile(p)});
    } else {
      std::cerr << "detlint: no such file or directory: " << p << "\n";
      return 2;
    }
  }

  const std::vector<Finding> findings = fsbench::detlint::Lint(files);
  for (const Finding& f : findings) {
    std::cout << fsbench::detlint::FormatFinding(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "detlint: " << findings.size() << " finding(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "detlint: " << files.size() << " file(s) clean\n";
  return 0;
}
