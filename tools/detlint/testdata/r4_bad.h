// detlint fixture: R4 violations — scalar struct members without default
// member initializers. Scanned by detlint_test as src/sim/r4_bad.h.
#ifndef FIXTURE_R4_BAD_H_
#define FIXTURE_R4_BAD_H_

#include <cstdint>
#include <string>

namespace fixture {

enum class Mode : uint8_t { kFast, kSafe };

// BAD: every scalar member here is indeterminate until first assignment —
// value-comparing or digesting a default-constructed instance reads garbage.
struct Stats {
  uint64_t hits;
  uint64_t misses;
  double ratio;
  bool warmed;
  Mode mode;
  const char* label;
  std::string name;  // class type: fine either way, not the violation here
};

}  // namespace fixture

#endif  // FIXTURE_R4_BAD_H_
