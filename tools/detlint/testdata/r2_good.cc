// detlint fixture: R2-clean code — virtual time and seeded randomness only,
// plus the lookalikes the linter must not trip on. Scanned by detlint_test
// as src/sim/r2_good.cc.
#include <cstdint>
#include <string>

namespace fixture {

class VirtualClock {
 public:
  int64_t now() const { return now_ns_; }
  void Advance(int64_t d) { now_ns_ += d; }

 private:
  int64_t now_ns_ = 0;
};

struct Machine {
  VirtualClock& clock() { return clock_; }
  VirtualClock clock_;
};

// GOOD: "time(s)" inside a string literal is not a call; mtime/ctime are
// ordinary identifiers; machine.clock() is a member call, not libc clock().
std::string Describe(Machine& machine) {
  int64_t mtime = machine.clock().now();  // detlint: base-clock
  int64_t ctime = mtime;
  return "time(s) elapsed: " + std::to_string(mtime + ctime);
}

// GOOD: seeded deterministic generator (xorshift), no ambient entropy.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace fixture
