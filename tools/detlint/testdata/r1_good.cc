// detlint fixture: R1-clean code — unordered containers used for lookup
// only, iterated with an annotation, or iterated after key collection +
// sort. Scanned by detlint_test as src/sim/r1_good.cc.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Tier {
  std::unordered_map<unsigned long, int> entries_;
  unsigned long count_ = 0;

  // GOOD: lookup/insert/erase by key never observes hash order.
  void Touch(unsigned long key) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entries_.erase(it);
    }
    entries_.emplace(key, 1);
  }

  // GOOD: a pure order-invariant reduction, annotated as such.
  unsigned long CountPositive() const {
    unsigned long n = 0;
    // detlint: order-insensitive
    for (const auto& [key, value] : entries_) {
      if (value > 0) {
        ++n;
      }
    }
    return n;
  }

  // GOOD: collect keys under annotation, then sort before the
  // result-affecting walk.
  void EraseMatching(unsigned long ino) {
    std::vector<unsigned long> victims;
    for (const auto& [key, value] : entries_) {  // detlint: order-insensitive
      if (key == ino) {
        victims.push_back(key);
      }
    }
    std::sort(victims.begin(), victims.end());
    for (unsigned long k : victims) {
      entries_.erase(k);
    }
  }
};

}  // namespace fixture
