// detlint fixture: R3-clean code — base-clock access only at binding sites
// or under an explicit annotation. Scanned by detlint_test as
// src/sim/r3_good.cc.
#include <cstdint>

namespace fixture {

class VirtualClock {
 public:
  int64_t now() const { return now_ns_; }
  void Advance(int64_t d) { now_ns_ += d; }

 private:
  int64_t now_ns_ = 0;
};

struct Machine {
  VirtualClock& clock() { return clock_; }
  void BindCursor(VirtualClock* cursor) { bound_ = cursor; }
  VirtualClock clock_;
  VirtualClock* bound_ = nullptr;
};

// GOOD: binding the base clock back as thread 0's cursor is what
// BindCursor lines are for.
void RestoreDefault(Machine& machine) {
  machine.BindCursor(&machine.clock());
}

// GOOD: single-threaded setup code may use the base clock deliberately,
// with the annotation making that auditable.
int64_t MeasureOrigin(Machine& machine) {
  // detlint: base-clock
  VirtualClock& clock = machine.clock();
  clock.Advance(5);
  return clock.now();
}

// GOOD: operation code charges the bound cursor, never the base clock.
void ChargeOp(VirtualClock* cursor) {
  cursor->Advance(100);
}

}  // namespace fixture
