// detlint fixture: R5-clean code — ordered containers keyed on stable ids,
// sorts comparing stable fields. Scanned by detlint_test as
// src/sim/r5_good.cc.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Inode {
  unsigned long ino = 0;
};

// GOOD: keys are value ids, ordering is the same in every run.
struct Index {
  std::set<unsigned long> live_;
  std::map<unsigned long, unsigned long> sizes_;
};

// GOOD: sorting pointers by a stable field of the pointee.
void SortByIno(std::vector<Inode*>* inodes) {
  std::sort(inodes->begin(), inodes->end(),
            [](const Inode* a, const Inode* b) { return a->ino < b->ino; });
}

}  // namespace fixture
