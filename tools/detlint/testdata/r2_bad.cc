// detlint fixture: R2 violations — ambient entropy in result-affecting
// code. Scanned by detlint_test as src/sim/r2_bad.cc.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

// BAD: wall-clock reads.
long WallClockNow() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// BAD: steady_clock is still host time, not virtual time.
long MonotonicNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// BAD: libc time and rand.
unsigned LibcEntropy() {
  unsigned x = static_cast<unsigned>(time(nullptr));
  x ^= static_cast<unsigned>(rand());
  x ^= static_cast<unsigned>(std::rand());
  return x;
}

// BAD: hardware entropy and the environment.
unsigned HardwareSeed() {
  std::random_device rd;
  const char* env = getenv("FSBENCH_SEED");
  return rd() + (env != nullptr ? 1u : 0u);
}

}  // namespace fixture
