// detlint fixture: R5 violations — pointer-keyed ordered containers and
// pointer-comparison sorts order by allocator addresses. Scanned by
// detlint_test as src/sim/r5_bad.cc.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Inode {
  unsigned long ino = 0;
};

// BAD: iteration order of these follows malloc, different every run.
struct Index {
  std::set<Inode*> live_;
  std::map<const Inode*, unsigned long> sizes_;
};

// BAD: sorting by raw pointer value.
void SortByAddress(std::vector<Inode*>* inodes) {
  std::sort(inodes->begin(), inodes->end(),
            [](const Inode* a, const Inode* b) { return a < b; });
}

}  // namespace fixture
