// detlint fixture: R1 violations — iteration over unordered containers
// without an order-insensitive annotation. Not compiled; scanned by
// detlint_test as src/sim/r1_bad.cc.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Tier {
  std::unordered_map<unsigned long, int> entries_;
  std::unordered_set<unsigned long> keys_;
  unsigned long charge_ = 0;

  // BAD: range-for over an unordered_map member; eviction charging order
  // follows the hash seed.
  void ChargeAll() {
    for (const auto& [key, value] : entries_) {
      charge_ += static_cast<unsigned long>(value);
    }
  }

  // BAD: iterator-walk form of the same hazard.
  void EraseMatching(unsigned long ino) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first == ino) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // BAD: unordered_set is no better than unordered_map.
  unsigned long First() {
    unsigned long first = 0;
    for (unsigned long k : keys_) {
      first = k;
      break;
    }
    return first;
  }
};

}  // namespace fixture
