// detlint fixture: R4-clean header — every scalar member carries a default
// member initializer; class-type members default-construct. Scanned by
// detlint_test as src/sim/r4_good.h.
#ifndef FIXTURE_R4_GOOD_H_
#define FIXTURE_R4_GOOD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

enum class Mode : uint8_t { kFast, kSafe };

using Nanos = int64_t;

struct Stats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double ratio = 0.0;
  bool warmed = false;
  Mode mode = Mode::kFast;
  Nanos elapsed = 0;
  const char* label = nullptr;
  uint64_t buckets[4] = {};
  std::string name;
  std::vector<uint64_t> samples;

  bool Warm() const { return warmed; }
  static Stats Zero() { return Stats{}; }
};

}  // namespace fixture

#endif  // FIXTURE_R4_GOOD_H_
