// detlint fixture: R3 violations — reading the machine's base clock away
// from a binding site, without the base-clock annotation. Under the MT
// engine this charges a thread's work against the wrong timeline. Scanned
// by detlint_test as src/sim/r3_bad.cc.
#include <cstdint>

namespace fixture {

class VirtualClock {
 public:
  int64_t now() const { return now_ns_; }
  void Advance(int64_t d) { now_ns_ += d; }

 private:
  int64_t now_ns_ = 0;
};

struct Machine {
  VirtualClock& clock() { return clock_; }
  VirtualClock clock_;
};

// BAD: operation code reaching around the bound cursor to the base clock.
int64_t ChargeOp(Machine& machine) {
  machine.clock().Advance(100);
  return machine.clock().now();
}

// BAD: pointer form.
int64_t ReadOrigin(Machine* machine) {
  return machine->clock().now();
}

}  // namespace fixture
