// detlint — the determinism linter.
//
// The simulator's contract is that every result is a pure function of
// (config, seed). That contract is easy to state and easy to break: one
// range-for over an unordered_map whose side effects reach a stat counter,
// one wall-clock read, one pointer-keyed std::set, and run-twice equality
// silently depends on allocator layout or the hash seed of the day. detlint
// is a repo-specific static-analysis pass (token/decl level, no compiler
// dependency) that mechanically enforces the rules the contract rests on.
// It runs over src/ as a ctest, so a violation is a red build, not a code
// review hope.
//
// Rules:
//   R1  order-insensitive iteration. No iteration (range-for, .begin()
//       family) over std::unordered_map/unordered_set variables unless the
//       loop is annotated order-insensitive (see ANNOTATIONS below). Hash
//       iteration order is implementation-defined and changes with
//       rehashing; anything result-affecting downstream of such a loop is
//       nondeterministic.
//   R2  no ambient entropy. Wall-clock, randomness and environment reads
//       (system_clock, steady_clock, time(), rand(), random_device,
//       getenv(), std::this_thread, ...) are banned in result-affecting
//       code (src/sim, src/core). All time comes from VirtualClock; all
//       randomness from seeded Rng.
//   R3  clock discipline. Machine::clock() — the global base clock — may
//       be read only at cursor binding sites (lines that call BindCursor /
//       BindClock) or at sites annotated base-clock. Everything else must
//       charge time against the bound per-thread cursor (PR-4 invariant).
//   R4  deterministic struct state. Every scalar member (integers, floats,
//       bools, enums, pointers, and repo scalar aliases like Nanos/BlockId)
//       of a `struct` defined in a src/ header must carry a default member
//       initializer. Aggregate structs (the *Stats family, configs,
//       reports) are routinely value-compared and digested; an
//       uninitialized pad of garbage breaks run-twice equality. Class-type
//       members (std::vector, std::string, ...) default-construct
//       deterministically and are exempt.
//   R5  no pointer-ordered containers. Ordered containers and priority
//       queues keyed on pointers (std::set<T*>, std::map<T*, V>), and
//       std::sort comparators that compare pointer parameters, order by
//       allocator addresses — different every run.
//
// ANNOTATIONS — suppressions are explicit, auditable, and themselves
// linted (an unknown tag is a finding):
//
//   // detlint: order-insensitive
//       On (or on the line above) an unordered-container loop: every
//       observable effect of this loop is invariant under iteration order
//       (pure reductions: count, sum, min/max; or collect-then-sort).
//       Example: ShadowDisk::VolatileCount counts map entries — any order
//       yields the same count.
//
//   // detlint: base-clock
//       On (or above) a Machine::clock() read: this site deliberately uses
//       the base clock — it *is* a binding site (constructing thread 0's
//       cursor), or it is single-threaded setup/teardown code that runs
//       while no cursor is bound (nano_suite measurement loops,
//       experiment-origin reads).
//
// Scope and pairing: files are scanned as one project. A .cc file shares
// its same-stem header's container declarations (flash_tier.cc sees
// flash_tier.h's entries_), and enum/alias names are collected globally
// before rules run. R2/R3 apply only under src/sim and src/core; R1/R5
// everywhere scanned; R4 to headers.
//
// What detlint is not: a compiler. It lexes (comments, strings and
// preprocessor directives stripped; annotations preserved) and pattern-
// matches declarations and call sites. That is enough to catch every
// hazard class above at the cost of a convention or two (declare unordered
// members with their type spelled out, not through an opaque typedef chain
// — direct `using X = std::unordered_map<...>` aliases are followed).
#ifndef TOOLS_DETLINT_DETLINT_H_
#define TOOLS_DETLINT_DETLINT_H_

#include <string>
#include <vector>

namespace fsbench::detlint {

// One source file presented to the linter. `rel` is the repo-relative path
// (forward slashes); rule scoping (src/sim, src/core, *.h) and same-stem
// header/source pairing key off it.
struct SourceFile {
  std::string rel;
  std::string text;
};

struct Finding {
  std::string file;     // rel path of the offending file
  int line = 0;         // 1-based
  std::string rule;     // "R1".."R5" (or "R0" for a bad annotation)
  std::string message;  // human-readable, one line
};

// Lints `files` as one project: pass 1 collects enums, scalar aliases and
// unordered-container declarations; pass 2 applies R1–R5. Findings are
// sorted by (file, line, rule) and deduplicated.
std::vector<Finding> Lint(const std::vector<SourceFile>& files);

// Formats a finding as "file:line: [Rn] message".
std::string FormatFinding(const Finding& f);

}  // namespace fsbench::detlint

#endif  // TOOLS_DETLINT_DETLINT_H_
