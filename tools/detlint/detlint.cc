#include "tools/detlint/detlint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fsbench::detlint {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : uint8_t { kIdent, kNumber, kPunct };

struct Token {
  std::string text;
  int line = 0;
  TokKind kind = TokKind::kPunct;
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Pulls "tag-a, tag-b" tags out of a comment containing "detlint:".
void ParseAnnotationTags(const std::string& comment, std::vector<std::string>* tags) {
  const size_t at = comment.find("detlint:");
  if (at == std::string::npos) {
    return;
  }
  size_t i = at + 8;
  while (i < comment.size()) {
    while (i < comment.size() && (comment[i] == ' ' || comment[i] == ',')) {
      ++i;
    }
    size_t start = i;
    while (i < comment.size() &&
           ((comment[i] >= 'a' && comment[i] <= 'z') || comment[i] == '-')) {
      ++i;
    }
    if (i == start) {
      break;
    }
    tags->push_back(comment.substr(start, i - start));
  }
}

struct LexedFile {
  std::vector<Token> tokens;
  // Annotation tags keyed by the code line they apply to (comment's own line
  // if it has code, else the next line with code).
  std::map<int, std::set<std::string>> annotations;
  std::set<int> code_lines;
};

LexedFile Lex(const std::string& text) {
  LexedFile out;
  // (line, tags) pending attachment to a code line.
  std::vector<std::pair<int, std::vector<std::string>>> raw_annotations;

  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  const size_t n = text.size();

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip whole logical line (with continuations).
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t start = i;
      while (i < n && text[i] != '\n') {
        ++i;
      }
      std::vector<std::string> tags;
      ParseAnnotationTags(text.substr(start, i - start), &tags);
      if (!tags.empty()) {
        raw_annotations.emplace_back(line, std::move(tags));
      }
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      std::vector<std::string> tags;
      ParseAnnotationTags(text.substr(start, i - start), &tags);
      if (!tags.empty()) {
        raw_annotations.emplace_back(start_line, std::move(tags));
      }
      continue;
    }
    if (c == '"') {
      // Raw string? The opener R was already emitted as an ident; pop it.
      bool raw = false;
      if (!out.tokens.empty() && out.tokens.back().kind == TokKind::kIdent) {
        const std::string& prev = out.tokens.back().text;
        if (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" || prev == "LR") {
          raw = true;
          out.tokens.pop_back();
        }
      }
      if (raw) {
        ++i;  // past the quote
        std::string delim;
        while (i < n && text[i] != '(') {
          delim += text[i++];
        }
        const std::string closer = ")" + delim + "\"";
        const size_t end = text.find(closer, i);
        const size_t stop = (end == std::string::npos) ? n : end + closer.size();
        for (; i < stop; ++i) {
          if (text[i] == '\n') {
            ++line;
          }
        }
      } else {
        ++i;
        while (i < n && text[i] != '"') {
          if (text[i] == '\\' && i + 1 < n) {
            ++i;
          } else if (text[i] == '\n') {
            ++line;  // unterminated; be lenient
          }
          ++i;
        }
        if (i < n) {
          ++i;
        }
      }
      out.tokens.push_back({"\"\"", line, TokKind::kPunct});
      out.code_lines.insert(line);
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        ++i;
      }
      if (i < n) {
        ++i;
      }
      out.tokens.push_back({"''", line, TokKind::kPunct});
      out.code_lines.insert(line);
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(text[i])) {
        ++i;
      }
      out.tokens.push_back({text.substr(start, i - start), line, TokKind::kIdent});
      out.code_lines.insert(line);
      continue;
    }
    if (IsDigit(c)) {
      const size_t start = i;
      while (i < n && (IsIdentChar(text[i]) || text[i] == '.' || text[i] == '\'' ||
                       ((text[i] == '+' || text[i] == '-') && i > start &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E' || text[i - 1] == 'p' ||
                         text[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({text.substr(start, i - start), line, TokKind::kNumber});
      out.code_lines.insert(line);
      continue;
    }
    // Punctuation. Only "::" and "->" are fused (the rules key on them);
    // ">>" stays two tokens so template closers need no special casing.
    std::string punct(1, c);
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      punct = "::";
      ++i;
    } else if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      punct = "->";
      ++i;
    }
    ++i;
    out.tokens.push_back({std::move(punct), line, TokKind::kPunct});
    out.code_lines.insert(line);
  }

  for (auto& [annot_line, tags] : raw_annotations) {
    int target = annot_line;
    if (out.code_lines.count(annot_line) == 0) {
      auto it = out.code_lines.upper_bound(annot_line);
      if (it == out.code_lines.end()) {
        continue;  // trailing comment, nothing to attach to
      }
      target = *it;
    }
    out.annotations[target].insert(tags.begin(), tags.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Project-wide symbol collection (pass 1)
// ---------------------------------------------------------------------------

const std::set<std::string>& FundamentalTypes() {
  static const std::set<std::string> kTypes = {
      "bool", "char", "short", "int", "long", "unsigned", "signed", "float",
      "double", "wchar_t", "char8_t", "char16_t", "char32_t",
  };
  return kTypes;
}

const std::set<std::string>& StdScalarTypes() {
  static const std::set<std::string> kTypes = {
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",    "uint16_t",
      "uint32_t", "uint64_t", "size_t",   "ssize_t",  "ptrdiff_t",  "intptr_t",
      "uintptr_t", "intmax_t", "uintmax_t", "byte",
  };
  return kTypes;
}

const std::set<std::string>& UnorderedContainerNames() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  return kNames;
}

// "src/sim/flash_tier.cc" -> "src/sim/flash_tier": .h/.cc pairs share a stem.
std::string Stem(const std::string& rel) {
  const size_t dot = rel.rfind('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

bool IsHeader(const std::string& rel) {
  return rel.size() >= 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
}

bool IsResultAffecting(const std::string& rel) {
  return rel.rfind("src/sim/", 0) == 0 || rel.rfind("src/core/", 0) == 0;
}

// Skips a balanced <...> starting at `i` (tokens[i] must be "<"). Returns
// the index one past the matching ">", or `end` if unbalanced.
size_t SkipAngles(const std::vector<Token>& ts, size_t i, size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    if (ts[i].text == "<") {
      ++depth;
    } else if (ts[i].text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (ts[i].text == ";") {
      return end;  // runaway: this was a comparison, not a template
    }
  }
  return end;
}

struct Project {
  std::set<std::string> enum_names;
  std::set<std::string> scalar_aliases;     // using Nanos = int64_t;
  std::set<std::string> unordered_aliases;  // using PageMap = std::unordered_map<...>;
  // stem -> names of unordered_{map,set} variables declared in that stem.
  std::unordered_map<std::string, std::set<std::string>> unordered_vars;
};

bool TypeTokensAreScalar(const std::vector<std::string>& type, const Project& proj) {
  if (type.empty()) {
    return false;
  }
  if (type.back() == "*") {
    return true;  // pointer
  }
  bool any = false;
  for (const std::string& t : type) {
    if (t == "std" || t == "::" || t == "const" || t == "constexpr" || t == "inline" ||
        t == "mutable" || t == "volatile") {
      continue;
    }
    if (FundamentalTypes().count(t) || StdScalarTypes().count(t) ||
        proj.enum_names.count(t) || proj.scalar_aliases.count(t)) {
      any = true;
      continue;
    }
    return false;  // an unknown token: class type or something exotic
  }
  return any;
}

void CollectSymbols(const std::vector<std::pair<SourceFile, LexedFile>>& lexed,
                    Project* proj) {
  // Enums first (they feed the scalar-alias fixpoint).
  for (const auto& [file, lex] : lexed) {
    const auto& ts = lex.tokens;
    for (size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].text == "enum" && ts[i].kind == TokKind::kIdent) {
        size_t j = i + 1;
        if (j < ts.size() && (ts[j].text == "class" || ts[j].text == "struct")) {
          ++j;
        }
        if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
          proj->enum_names.insert(ts[j].text);
        }
      }
    }
  }
  // `using X = <scalar>;` aliases, to a fixpoint so chains resolve in any
  // declaration order. Also `using X = std::unordered_map<...>;`.
  std::vector<std::pair<std::string, std::vector<std::string>>> alias_candidates;
  for (const auto& [file, lex] : lexed) {
    const auto& ts = lex.tokens;
    for (size_t i = 0; i + 3 < ts.size(); ++i) {
      if (ts[i].text != "using" || ts[i + 1].kind != TokKind::kIdent ||
          ts[i + 2].text != "=") {
        continue;
      }
      std::vector<std::string> rhs;
      for (size_t j = i + 3; j < ts.size() && ts[j].text != ";"; ++j) {
        rhs.push_back(ts[j].text);
      }
      if (!rhs.empty()) {
        alias_candidates.emplace_back(ts[i + 1].text, std::move(rhs));
      }
    }
  }
  for (int round = 0; round < 3; ++round) {
    for (const auto& [name, rhs] : alias_candidates) {
      for (const std::string& t : rhs) {
        if (UnorderedContainerNames().count(t)) {
          proj->unordered_aliases.insert(name);
          break;
        }
      }
      if (TypeTokensAreScalar(rhs, *proj)) {
        proj->scalar_aliases.insert(name);
      }
    }
  }
  // Unordered-container variable declarations, grouped by stem.
  for (const auto& [file, lex] : lexed) {
    const auto& ts = lex.tokens;
    std::set<std::string>& vars = proj->unordered_vars[Stem(file.rel)];
    for (size_t i = 0; i < ts.size(); ++i) {
      size_t after_type = 0;
      if (UnorderedContainerNames().count(ts[i].text) && i + 1 < ts.size() &&
          ts[i + 1].text == "<") {
        // Not part of a `using` alias definition (those are tracked by name).
        after_type = SkipAngles(ts, i + 1, ts.size());
      } else if (proj->unordered_aliases.count(ts[i].text) &&
                 ts[i].kind == TokKind::kIdent && i + 1 < ts.size() &&
                 ts[i + 1].kind == TokKind::kIdent) {
        after_type = i + 1;
      }
      if (after_type == 0 || after_type >= ts.size()) {
        continue;
      }
      // Optional & / * between type and name.
      size_t j = after_type;
      while (j < ts.size() && (ts[j].text == "&" || ts[j].text == "*")) {
        ++j;
      }
      if (j >= ts.size() || ts[j].kind != TokKind::kIdent) {
        continue;
      }
      // A declarator, not a function name: next token terminates a
      // declaration (or is a brace/equals initializer or parameter comma).
      if (j + 1 < ts.size()) {
        const std::string& next = ts[j + 1].text;
        if (next == ";" || next == "=" || next == "{" || next == "," || next == ")") {
          vars.insert(ts[j].text);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules (pass 2)
// ---------------------------------------------------------------------------

const std::set<std::string>& KnownAnnotations() {
  static const std::set<std::string> kTags = {"order-insensitive", "base-clock"};
  return kTags;
}

class FileLinter {
 public:
  FileLinter(const SourceFile& file, const LexedFile& lex, const Project& proj,
             std::vector<Finding>* findings)
      : file_(file), lex_(lex), proj_(proj), findings_(findings) {
    auto it = proj.unordered_vars.find(Stem(file.rel));
    if (it != proj.unordered_vars.end()) {
      unordered_ = &it->second;
    }
  }

  void Run() {
    CheckAnnotations();
    RuleR1();
    if (IsResultAffecting(file_.rel)) {
      RuleR2();
      RuleR3();
    }
    if (IsHeader(file_.rel)) {
      RuleR4();
    }
    RuleR5();
  }

 private:
  void Report(const std::string& rule, int line, const std::string& message) {
    findings_->push_back({file_.rel, line, rule, message});
  }

  bool Annotated(int line, const std::string& tag) const {
    auto it = lex_.annotations.find(line);
    return it != lex_.annotations.end() && it->second.count(tag) != 0;
  }

  bool LineHasToken(int line, const std::string& text) const {
    for (const Token& t : lex_.tokens) {
      if (t.line == line && t.text == text) {
        return true;
      }
      if (t.line > line) {
        break;
      }
    }
    return false;
  }

  // R0: unknown annotation tags are findings — a typoed suppression must
  // not silently stop suppressing.
  void CheckAnnotations() {
    for (const auto& [line, tags] : lex_.annotations) {
      for (const std::string& tag : tags) {
        if (KnownAnnotations().count(tag) == 0) {
          Report("R0", line, "unknown detlint annotation '" + tag + "' (known: order-insensitive, base-clock)");
        }
      }
    }
  }

  bool IsUnorderedVar(const std::string& name) const {
    return unordered_ != nullptr && unordered_->count(name) != 0;
  }

  void ReportR1(int line, const std::string& name) {
    if (Annotated(line, "order-insensitive")) {
      return;
    }
    Report("R1", line,
           "iteration over unordered container '" + name +
               "' — hash order is implementation-defined; sort the keys first or "
               "annotate `// detlint: order-insensitive` if every effect is "
               "order-invariant");
  }

  void RuleR1() {
    const auto& ts = lex_.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      // Range-for: for ( decl : container )
      if (ts[i].text == "for" && i + 1 < ts.size() && ts[i + 1].text == "(") {
        int depth = 0;
        size_t colon = 0;
        size_t close = ts.size();
        for (size_t j = i + 1; j < ts.size(); ++j) {
          if (ts[j].text == "(") {
            ++depth;
          } else if (ts[j].text == ")") {
            if (--depth == 0) {
              close = j;
              break;
            }
          } else if (ts[j].text == ":" && depth == 1 && colon == 0) {
            colon = j;
          }
        }
        if (colon != 0 && close < ts.size()) {
          // Container expression: last identifier of the a.b->c chain.
          std::string name;
          for (size_t j = colon + 1; j < close; ++j) {
            if (ts[j].kind == TokKind::kIdent) {
              name = ts[j].text;
            }
          }
          if (IsUnorderedVar(name)) {
            ReportR1(ts[i].line, name);
          }
        }
      }
      // Iterator form: container.begin() / cbegin() / rbegin() / crbegin().
      if (ts[i].kind == TokKind::kIdent && IsUnorderedVar(ts[i].text) &&
          i + 3 < ts.size() && (ts[i + 1].text == "." || ts[i + 1].text == "->") &&
          (ts[i + 2].text == "begin" || ts[i + 2].text == "cbegin" ||
           ts[i + 2].text == "rbegin" || ts[i + 2].text == "crbegin") &&
          ts[i + 3].text == "(") {
        ReportR1(ts[i].line, ts[i].text);
      }
    }
  }

  void RuleR2() {
    static const std::set<std::string> kBannedIdents = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "random_device", "getenv",       "this_thread",
        "gettimeofday",  "clock_gettime", "localtime",
        "gmtime",        "mktime",
    };
    static const std::set<std::string> kBannedCalls = {
        "time", "rand", "srand", "random", "drand48", "clock",
    };
    // A banned-call identifier is a *call* (not a declaration or member
    // access) when the previous token is expression context. `&`, `*` and
    // `>` are deliberately absent: `Type& clock()`, `Type* time()` and
    // `Foo<T> rand()` are declarations of same-named members, not calls.
    static const std::set<std::string> kExprContext = {
        ";", "{", "}", "(", ",", "=", "return", "?", ":", "!",
        "+", "-", "/", "%", "<", "|", "^", "&&", "||",
    };
    const auto& ts = lex_.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdent) {
        continue;
      }
      if (kBannedIdents.count(ts[i].text)) {
        Report("R2", ts[i].line,
               "'" + ts[i].text +
                   "' is ambient entropy — results must be a pure function of "
                   "(config, seed); use VirtualClock / seeded Rng instead");
        continue;
      }
      if (kBannedCalls.count(ts[i].text) && i + 1 < ts.size() && ts[i + 1].text == "(") {
        bool flagged = false;
        if (i == 0) {
          flagged = true;
        } else if (ts[i - 1].text == "::") {
          flagged = i >= 2 && ts[i - 2].text == "std";  // std::rand yes, Foo::rand no
        } else if (ts[i - 1].text == "." || ts[i - 1].text == "->") {
          flagged = false;  // member call on our own objects
        } else {
          flagged = kExprContext.count(ts[i - 1].text) != 0;
        }
        if (flagged) {
          Report("R2", ts[i].line,
                 "call to '" + ts[i].text +
                     "()' — wall-clock/libc entropy is banned in result-affecting "
                     "code; use VirtualClock / seeded Rng");
        }
      }
    }
  }

  void RuleR3() {
    const auto& ts = lex_.tokens;
    for (size_t i = 2; i < ts.size(); ++i) {
      if (ts[i].text != "clock" || ts[i].kind != TokKind::kIdent) {
        continue;
      }
      if (ts[i - 1].text != "." && ts[i - 1].text != "->") {
        continue;
      }
      if (i + 2 >= ts.size() || ts[i + 1].text != "(" || ts[i + 2].text != ")") {
        continue;
      }
      const int line = ts[i].line;
      if (LineHasToken(line, "BindCursor") || LineHasToken(line, "BindClock") ||
          Annotated(line, "base-clock")) {
        continue;
      }
      Report("R3", line,
             "Machine::clock() outside a BindCursor/BindClock binding site — "
             "charge time against the bound cursor, or annotate "
             "`// detlint: base-clock` for deliberate single-threaded base-clock "
             "use");
    }
  }

  void RuleR4() {
    const auto& ts = lex_.tokens;
    for (size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].text != "struct" || ts[i].kind != TokKind::kIdent) {
        continue;
      }
      if (i > 0 && ts[i - 1].text == "enum") {
        continue;  // enum struct
      }
      if (ts[i + 1].kind != TokKind::kIdent) {
        continue;  // anonymous struct / `struct {` — skip
      }
      const std::string struct_name = ts[i + 1].text;
      // Find the opening brace; bail at ';' (forward declaration) and at
      // template-argument uses (`struct X<...>` never begins a definition
      // we care about here).
      size_t j = i + 2;
      while (j < ts.size() && ts[j].text != "{" && ts[j].text != ";") {
        ++j;
      }
      if (j >= ts.size() || ts[j].text == ";") {
        continue;
      }
      LintStructBody(struct_name, j);
    }
  }

  // Parses the member statements of a struct whose "{" is at `open`.
  void LintStructBody(const std::string& struct_name, size_t open) {
    const auto& ts = lex_.tokens;
    std::vector<size_t> stmt;  // token indices of the current statement
    bool has_init = false;     // saw '=' or a brace initializer in stmt
    int pdepth = 0;            // () depth within the statement

    auto skip_balanced_braces = [&](size_t k) {
      int d = 0;
      for (; k < ts.size(); ++k) {
        if (ts[k].text == "{") {
          ++d;
        } else if (ts[k].text == "}") {
          if (--d == 0) {
            return k;
          }
        }
      }
      return k;
    };

    auto reset = [&] {
      stmt.clear();
      has_init = false;
      pdepth = 0;
    };

    for (size_t k = open + 1; k < ts.size(); ++k) {
      const std::string& t = ts[k].text;
      if (t == "}") {
        return;  // end of struct (members after nested bodies were consumed)
      }
      if (t == "public" || t == "private" || t == "protected") {
        if (k + 1 < ts.size() && ts[k + 1].text == ":") {
          ++k;
          continue;
        }
      }
      if (stmt.empty() &&
          (t == "using" || t == "typedef" || t == "friend" || t == "template" ||
           t == "static" || t == "struct" || t == "class" || t == "enum")) {
        // Nested types, aliases, statics: skip to the end of the construct
        // (past a body if it has one, then the terminating ';').
        while (k < ts.size() && ts[k].text != ";" && ts[k].text != "{") {
          ++k;
        }
        if (k < ts.size() && ts[k].text == "{") {
          k = skip_balanced_braces(k);
          // Optional trailing declarator + ';' (`struct In {} x;`,
          // `enum E {...};`). A static member function's body has neither —
          // the next member begins right after its '}'.
          if (k + 1 < ts.size() && ts[k + 1].text == ";") {
            ++k;
          } else if (k + 2 < ts.size() && ts[k + 1].kind == TokKind::kIdent &&
                     ts[k + 2].text == ";") {
            k += 2;
          }
        }
        continue;
      }
      if (t == "(") {
        ++pdepth;
        stmt.push_back(k);
        continue;
      }
      if (t == ")") {
        --pdepth;
        stmt.push_back(k);
        continue;
      }
      if (t == "=") {
        has_init = true;
        stmt.push_back(k);
        continue;
      }
      if (t == "{") {
        // Brace initializer iff it follows a declarator or '='; otherwise a
        // function/ctor body.
        bool initializer = false;
        if (!stmt.empty()) {
          const Token& prev = ts[stmt.back()];
          bool stmt_has_paren = false;
          for (size_t idx : stmt) {
            if (ts[idx].text == "(") {
              stmt_has_paren = true;
              break;
            }
          }
          initializer = !stmt_has_paren &&
                        (has_init || prev.kind == TokKind::kIdent || prev.text == "]");
        }
        const size_t close = skip_balanced_braces(k);
        if (initializer) {
          has_init = true;
          k = close;
          continue;  // stmt continues to its ';'
        }
        // Function (or ctor) body: discard the statement.
        k = close;
        reset();
        continue;
      }
      if (t == ";" && pdepth == 0) {
        LintMemberStatement(struct_name, stmt, has_init);
        reset();
        continue;
      }
      stmt.push_back(k);
    }
  }

  void LintMemberStatement(const std::string& struct_name, const std::vector<size_t>& stmt,
                           bool has_init) {
    if (stmt.empty() || has_init) {
      return;
    }
    const auto& ts = lex_.tokens;
    // Any parenthesis at member level means function declaration (params) or
    // a constructor-style initializer; both are out of scope.
    for (size_t idx : stmt) {
      if (ts[idx].text == "(" || ts[idx].text == "operator" || ts[idx].text == "~") {
        return;
      }
    }
    // Declarator name: last identifier (array brackets may follow it).
    size_t name_pos = stmt.size();
    for (size_t p = stmt.size(); p > 0; --p) {
      const Token& tok = ts[stmt[p - 1]];
      if (tok.text == "]" || tok.text == "[" || tok.kind == TokKind::kNumber) {
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        name_pos = p - 1;
      }
      break;
    }
    if (name_pos == stmt.size() || name_pos == 0) {
      return;  // no name / no type tokens
    }
    std::vector<std::string> type;
    for (size_t p = 0; p < name_pos; ++p) {
      const std::string& t = ts[stmt[p]].text;
      if (t == "&") {
        return;  // reference member: no default initializer possible
      }
      type.push_back(t);
    }
    // Template types (vector<...>, optional<...>) are class types: exempt.
    for (const std::string& t : type) {
      if (t == "<") {
        return;
      }
    }
    if (!TypeTokensAreScalar(type, proj_)) {
      return;
    }
    const Token& name = ts[stmt[name_pos]];
    Report("R4", name.line,
           "struct " + struct_name + " member '" + name.text +
               "' has a scalar type but no default member initializer — "
               "uninitialized scalars break value comparison and run-twice "
               "digests; add `= 0` / `{}`");
  }

  void RuleR5() {
    static const std::set<std::string> kOrdered = {
        "map", "set", "multimap", "multiset", "priority_queue",
    };
    const auto& ts = lex_.tokens;
    for (size_t i = 2; i + 1 < ts.size(); ++i) {
      if (ts[i].kind == TokKind::kIdent && kOrdered.count(ts[i].text) &&
          ts[i + 1].text == "<" && ts[i - 1].text == "::" && ts[i - 2].text == "std") {
        // First template argument, at angle depth 1.
        int depth = 0;
        std::vector<std::string> arg;
        for (size_t j = i + 1; j < ts.size(); ++j) {
          const std::string& t = ts[j].text;
          if (t == "<") {
            ++depth;
            if (depth == 1) {
              continue;
            }
          } else if (t == ">") {
            if (--depth == 0) {
              break;
            }
          } else if (t == "," && depth == 1) {
            break;
          } else if (t == ";") {
            arg.clear();
            break;
          }
          arg.push_back(t);
        }
        if (!arg.empty() && arg.back() == "*") {
          Report("R5", ts[i].line,
                 "std::" + ts[i].text +
                     " keyed on a pointer — iteration/ordering follows allocator "
                     "addresses, different every run; key on a stable id instead");
        }
      }
      // std::sort / std::stable_sort with a lambda comparing pointer params.
      if (ts[i].kind == TokKind::kIdent &&
          (ts[i].text == "sort" || ts[i].text == "stable_sort") &&
          ts[i - 1].text == "::" && ts[i - 2].text == "std" && ts[i + 1].text == "(") {
        CheckPointerSort(i + 1);
      }
    }
  }

  // Inside a std::sort call starting at "(" index `open`, finds a lambda
  // whose parameters are pointers and whose body compares two of those
  // parameters directly.
  void CheckPointerSort(size_t open) {
    const auto& ts = lex_.tokens;
    int pdepth = 0;
    size_t end = ts.size();
    for (size_t j = open; j < ts.size(); ++j) {
      if (ts[j].text == "(") {
        ++pdepth;
      } else if (ts[j].text == ")") {
        if (--pdepth == 0) {
          end = j;
          break;
        }
      }
    }
    for (size_t j = open; j < end; ++j) {
      if (ts[j].text != "[") {
        continue;
      }
      // Lambda intro: skip capture list, then parameter list.
      size_t k = j;
      while (k < end && ts[k].text != "]") {
        ++k;
      }
      if (k + 1 >= end || ts[k + 1].text != "(") {
        continue;
      }
      std::set<std::string> ptr_params;
      size_t p = k + 2;
      int depth = 1;
      for (; p < end && depth > 0; ++p) {
        if (ts[p].text == "(") {
          ++depth;
        } else if (ts[p].text == ")") {
          --depth;
        } else if (ts[p].text == "*" && p + 1 < end && ts[p + 1].kind == TokKind::kIdent) {
          ptr_params.insert(ts[p + 1].text);
        }
      }
      if (ptr_params.size() < 2 || p >= end || ts[p].text != "{") {
        continue;
      }
      const size_t body_begin = p + 1;
      int bdepth = 1;
      for (size_t b = body_begin; b < end && bdepth > 0; ++b) {
        if (ts[b].text == "{") {
          ++bdepth;
        } else if (ts[b].text == "}") {
          --bdepth;
        } else if ((ts[b].text == "<" || ts[b].text == ">") && b > body_begin &&
                   b + 1 < end && ptr_params.count(ts[b - 1].text) &&
                   ptr_params.count(ts[b + 1].text)) {
          Report("R5", ts[b].line,
                 "sort comparator orders by raw pointer value — allocator "
                 "addresses differ across runs; compare a stable field instead");
          return;
        }
      }
    }
  }

  const SourceFile& file_;
  const LexedFile& lex_;
  const Project& proj_;
  const std::set<std::string>* unordered_ = nullptr;
  std::vector<Finding>* findings_;
};

}  // namespace

std::vector<Finding> Lint(const std::vector<SourceFile>& files) {
  std::vector<std::pair<SourceFile, LexedFile>> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files) {
    lexed.emplace_back(f, Lex(f.text));
  }
  Project proj;
  CollectSymbols(lexed, &proj);

  std::vector<Finding> findings;
  for (const auto& [file, lex] : lexed) {
    FileLinter(file, lex, proj, &findings).Run();
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule && a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

std::string FormatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

}  // namespace fsbench::detlint
