// benchdiff: noise-aware comparator for the BENCH_*.json trajectory files.
//
// The bench binaries emit flat JSON — {"schema": 1, "bench": "...", "seed":
// N, "results": [{key: value, ...}, ...]} — where every value is a string,
// a bool, or a number. benchdiff diffs a freshly produced file against the
// committed baseline and classifies every per-cell metric change:
//
//   - identity fields (strings, plus the numeric sweep keys `threads`,
//     `rate`, `crash_op`) name the cell; two results match when all their
//     identity fields agree. A baseline cell with no match in the current
//     file is a regression; a new cell is a note.
//   - deterministic counters (integer-valued op/block/event counts) get a
//     tight tolerance: the simulator is a pure function of (config, seed),
//     so any drift is a behavior change, in either direction.
//   - higher-is-better rates (ops/s, speedups, hit ratios) fail only when
//     they fall below baseline by more than a looser tolerance; gains are
//     reported as improvements, not failures.
//   - lower-is-better latencies/delays mirror that: only growth fails.
//   - bools and strings outside the identity set must match exactly.
//
// The asymmetric windows are the "noise-aware" part: derived ratios wobble
// legitimately when upstream behavior shifts a little, while raw counters
// must not move at all on an unchanged simulator.
#ifndef TOOLS_BENCHDIFF_BENCHDIFF_H_
#define TOOLS_BENCHDIFF_BENCHDIFF_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fsbench {
namespace benchdiff {

// One scalar from a result object.
struct Value {
  enum class Kind { kNumber, kBool, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  bool boolean = false;
  std::string text;

  bool SameAs(const Value& other) const;
  std::string Render() const;
};

// One element of "results": metrics in file order (insertion-ordered pairs,
// not a hash map, so rendering is deterministic).
struct ResultRow {
  std::vector<std::pair<std::string, Value>> metrics;

  // Identity key: every string field plus the numeric sweep keys, joined in
  // file order. Empty only for a row with no identity fields at all.
  std::string CellKey() const;
  const Value* Find(const std::string& name) const;
};

struct BenchFile {
  int schema = 0;
  std::string bench;
  uint64_t seed = 0;
  std::vector<ResultRow> results;
};

// Parses a BENCH_*.json document. Returns false and sets *error on
// malformed input (trailing garbage, non-flat results, bad literals).
bool ParseBenchFile(const std::string& json, BenchFile* out, std::string* error);

// Reads the file at `path` and parses it. Returns false and sets *error if
// the file cannot be read or parsed.
bool LoadBenchFile(const std::string& path, BenchFile* out, std::string* error);

enum class MetricClass {
  kIdentityKey,   // part of the cell identity, never diffed
  kExactCount,    // deterministic counter: tight two-sided window
  kHigherBetter,  // throughput-like: fails only on a drop
  kLowerBetter,   // latency-like: fails only on growth
  kExactValue,    // bool/string: must match exactly
};

// Name-based classification (the schema carries no type tags). See
// benchdiff.cc for the pattern table.
MetricClass ClassifyMetric(const std::string& name, const Value& value);

// Relative tolerance for a class (0 for kExactValue/kIdentityKey).
double ToleranceFor(MetricClass klass);

enum class DeltaStatus {
  kUnchanged,      // within tolerance
  kImproved,       // moved past tolerance in the good direction (note)
  kRegressed,      // moved past tolerance in the bad direction (failure)
  kMissingCell,    // baseline cell absent from current (failure)
  kMissingMetric,  // baseline metric absent from current cell (failure)
  kNewCell,        // current cell absent from baseline (note)
  kNewMetric,      // current metric absent from baseline cell (note)
};

struct Delta {
  std::string cell;
  std::string metric;
  MetricClass klass = MetricClass::kExactValue;
  DeltaStatus status = DeltaStatus::kUnchanged;
  std::string baseline;
  std::string current;
  double rel_change = 0.0;  // (current - baseline) / |baseline|, numbers only
};

struct DiffReport {
  std::string bench;
  std::vector<Delta> deltas;  // everything outside tolerance, plus notes
  size_t cells_compared = 0;
  size_t metrics_compared = 0;
  size_t regressions = 0;
  size_t improvements = 0;
  size_t notes = 0;

  bool Failed() const { return regressions > 0; }
};

// Compares current against baseline. Seeds must match — comparing runs of
// different seeds is meaningless for a deterministic simulator, so a
// mismatch is reported as a (single) regression.
DiffReport Diff(const BenchFile& baseline, const BenchFile& current);

// Human-readable per-cell delta table plus a one-line verdict.
std::string RenderReport(const DiffReport& report);

}  // namespace benchdiff
}  // namespace fsbench

#endif  // TOOLS_BENCHDIFF_BENCHDIFF_H_
