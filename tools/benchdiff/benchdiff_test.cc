// Unit tests for the benchdiff parser, metric classifier and diff engine:
// the pass / regress / missing-metric / new-metric quartet the perf gate
// depends on, plus the direction-aware tolerance edges.
#include "tools/benchdiff/benchdiff.h"

#include <gtest/gtest.h>

#include <string>

namespace fsbench {
namespace benchdiff {
namespace {

// A two-cell fault-sweep-shaped file; values chosen so tolerances are easy
// to reason about (100.0 ops/s, 10.0 ms, 500 ops).
std::string MakeFile(double ops, double p99_ms, long long count, const char* extra = "") {
  std::string out = "{\n  \"schema\": 1,\n  \"bench\": \"unit\",\n  \"seed\": 1,\n"
                    "  \"results\": [\n";
  char row[512];
  std::snprintf(row, sizeof(row),
                "    {\"fs\": \"ext2\", \"rate\": 0.01, \"ops_per_second\": %.2f, "
                "\"p99_ms\": %.3f, \"ops\": %lld, \"consistent\": true%s},\n",
                ops, p99_ms, count, extra);
  out += row;
  out += "    {\"fs\": \"xfs\", \"rate\": 0.01, \"ops_per_second\": 200.00, "
         "\"p99_ms\": 5.000, \"ops\": 900, \"consistent\": true}\n  ]\n}\n";
  return out;
}

BenchFile Parse(const std::string& json) {
  BenchFile file;
  std::string error;
  EXPECT_TRUE(ParseBenchFile(json, &file, &error)) << error;
  return file;
}

TEST(ParseTest, ReadsFlatSchema) {
  const BenchFile file = Parse(MakeFile(100.0, 10.0, 500));
  EXPECT_EQ(file.schema, 1);
  EXPECT_EQ(file.bench, "unit");
  EXPECT_EQ(file.seed, 1u);
  ASSERT_EQ(file.results.size(), 2u);
  EXPECT_EQ(file.results[0].CellKey(), "ext2 rate=0.01");
  const Value* ops = file.results[0].Find("ops_per_second");
  ASSERT_NE(ops, nullptr);
  EXPECT_DOUBLE_EQ(ops->number, 100.0);
  const Value* consistent = file.results[0].Find("consistent");
  ASSERT_NE(consistent, nullptr);
  EXPECT_TRUE(consistent->boolean);
}

TEST(ParseTest, RejectsMalformedInput) {
  BenchFile file;
  std::string error;
  EXPECT_FALSE(ParseBenchFile("{\"bench\": }", &file, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseBenchFile("{} trailing", &file, &error));
  EXPECT_FALSE(ParseBenchFile("{\"results\": [[1]]}", &file, &error));
}

TEST(ClassifyTest, NameBasedClasses) {
  Value number;
  number.kind = Value::Kind::kNumber;
  EXPECT_EQ(ClassifyMetric("ops_per_second", number), MetricClass::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("agg_ops_per_sec", number), MetricClass::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("speedup_vs_1", number), MetricClass::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("p99_ms", number), MetricClass::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("mean_latency_us", number), MetricClass::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("sync_queue_delay_ms", number), MetricClass::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("ops", number), MetricClass::kExactCount);
  EXPECT_EQ(ClassifyMetric("replay_log_blocks", number), MetricClass::kExactCount);
  EXPECT_EQ(ClassifyMetric("threads", number), MetricClass::kIdentityKey);
  EXPECT_EQ(ClassifyMetric("rate", number), MetricClass::kIdentityKey);
  EXPECT_EQ(ClassifyMetric("crash_op", number), MetricClass::kIdentityKey);
  Value flag;
  flag.kind = Value::Kind::kBool;
  EXPECT_EQ(ClassifyMetric("consistent", flag), MetricClass::kExactValue);
}

TEST(DiffTest, IdenticalFilesPass) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const DiffReport report = Diff(base, base);
  EXPECT_FALSE(report.Failed());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.cells_compared, 2u);
  EXPECT_TRUE(report.deltas.empty());
}

TEST(DiffTest, WithinToleranceWigglePasses) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  // -4% ops/s (window 5%), +9% p99 (window 10%), count unchanged.
  const BenchFile current = Parse(MakeFile(96.0, 10.9, 500));
  const DiffReport report = Diff(base, current);
  EXPECT_FALSE(report.Failed()) << RenderReport(report);
}

TEST(DiffTest, ThroughputDropRegresses) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const BenchFile current = Parse(MakeFile(90.0, 10.0, 500));  // -10% < -5%
  const DiffReport report = Diff(base, current);
  EXPECT_TRUE(report.Failed());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].metric, "ops_per_second");
  EXPECT_EQ(report.deltas[0].status, DeltaStatus::kRegressed);
  EXPECT_NEAR(report.deltas[0].rel_change, -0.10, 1e-9);
}

TEST(DiffTest, ThroughputGainIsImprovementNotFailure) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const BenchFile current = Parse(MakeFile(120.0, 10.0, 500));
  const DiffReport report = Diff(base, current);
  EXPECT_FALSE(report.Failed());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].status, DeltaStatus::kImproved);
  EXPECT_EQ(report.improvements, 1u);
}

TEST(DiffTest, LatencyGrowthRegressesButDropImproves) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const DiffReport worse = Diff(base, Parse(MakeFile(100.0, 11.5, 500)));
  EXPECT_TRUE(worse.Failed());
  const DiffReport better = Diff(base, Parse(MakeFile(100.0, 8.0, 500)));
  EXPECT_FALSE(better.Failed());
  EXPECT_EQ(better.improvements, 1u);
}

TEST(DiffTest, CounterDriftRegressesEitherDirection) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  EXPECT_TRUE(Diff(base, Parse(MakeFile(100.0, 10.0, 510))).Failed());
  EXPECT_TRUE(Diff(base, Parse(MakeFile(100.0, 10.0, 490))).Failed());
}

TEST(DiffTest, BoolFlipRegresses) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  BenchFile current = Parse(MakeFile(100.0, 10.0, 500));
  for (auto& [name, value] : current.results[0].metrics) {
    if (name == "consistent") {
      value.boolean = false;
    }
  }
  EXPECT_TRUE(Diff(base, current).Failed());
}

TEST(DiffTest, MissingMetricRegresses) {
  // Baseline carries an extra metric the current file lost.
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500, ", \"retries\": 7"));
  const BenchFile current = Parse(MakeFile(100.0, 10.0, 500));
  const DiffReport report = Diff(base, current);
  EXPECT_TRUE(report.Failed());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].metric, "retries");
  EXPECT_EQ(report.deltas[0].status, DeltaStatus::kMissingMetric);
}

TEST(DiffTest, NewMetricIsNoteNotFailure) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const BenchFile current = Parse(MakeFile(100.0, 10.0, 500, ", \"retries\": 7"));
  const DiffReport report = Diff(base, current);
  EXPECT_FALSE(report.Failed());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].status, DeltaStatus::kNewMetric);
  EXPECT_EQ(report.notes, 1u);
}

TEST(DiffTest, MissingCellRegressesNewCellNotes) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  BenchFile fewer = Parse(MakeFile(100.0, 10.0, 500));
  fewer.results.pop_back();
  const DiffReport missing = Diff(base, fewer);
  EXPECT_TRUE(missing.Failed());
  EXPECT_EQ(missing.deltas[0].status, DeltaStatus::kMissingCell);

  const DiffReport extra = Diff(fewer, base);
  EXPECT_FALSE(extra.Failed());
  ASSERT_EQ(extra.deltas.size(), 1u);
  EXPECT_EQ(extra.deltas[0].status, DeltaStatus::kNewCell);
}

TEST(DiffTest, SeedMismatchFailsImmediately) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  BenchFile current = Parse(MakeFile(100.0, 10.0, 500));
  current.seed = 2;
  const DiffReport report = Diff(base, current);
  EXPECT_TRUE(report.Failed());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].metric, "seed");
}

TEST(RenderTest, ReportNamesVerdictAndDeltas) {
  const BenchFile base = Parse(MakeFile(100.0, 10.0, 500));
  const std::string pass = RenderReport(Diff(base, base));
  EXPECT_NE(pass.find("PASS"), std::string::npos);
  const std::string fail = RenderReport(Diff(base, Parse(MakeFile(90.0, 10.0, 500))));
  EXPECT_NE(fail.find("FAIL"), std::string::npos);
  EXPECT_NE(fail.find("ops_per_second"), std::string::npos);
  EXPECT_NE(fail.find("-10"), std::string::npos);
}

}  // namespace
}  // namespace benchdiff
}  // namespace fsbench
