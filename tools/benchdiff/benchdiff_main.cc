// CLI: benchdiff <baseline.json> <current.json>
//
// Exit codes: 0 = within tolerance (improvements and new cells allowed),
// 1 = at least one regression, 2 = usage or parse error. The CI perf gate
// loops this over every committed baseline.
#include <cstdio>

#include "tools/benchdiff/benchdiff.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <baseline.json> <current.json>\n", argv[0]);
    return 2;
  }
  fsbench::benchdiff::BenchFile baseline;
  fsbench::benchdiff::BenchFile current;
  std::string error;
  if (!fsbench::benchdiff::LoadBenchFile(argv[1], &baseline, &error) ||
      !fsbench::benchdiff::LoadBenchFile(argv[2], &current, &error)) {
    std::fprintf(stderr, "benchdiff: %s\n", error.c_str());
    return 2;
  }
  if (baseline.bench != current.bench) {
    std::fprintf(stderr, "benchdiff: bench mismatch: '%s' vs '%s'\n",
                 baseline.bench.c_str(), current.bench.c_str());
    return 2;
  }
  const fsbench::benchdiff::DiffReport report =
      fsbench::benchdiff::Diff(baseline, current);
  std::printf("%s", fsbench::benchdiff::RenderReport(report).c_str());
  return report.Failed() ? 1 : 0;
}
