#include "tools/benchdiff/benchdiff.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/ascii.h"

namespace fsbench {
namespace benchdiff {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the flat BENCH schema. Not a general parser: the
// document must be an object whose "results" member is an array of flat
// objects with string/number/bool values. Anything else is an error — the
// emitters are ours, so strictness here catches emitter bugs too.
// ---------------------------------------------------------------------------
class Reader {
 public:
  Reader(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool ParseTop(BenchFile* out) {
    SkipSpace();
    if (!Expect('{')) {
      return false;
    }
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first && !Expect(',')) {
        return false;
      }
      first = false;
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (!Expect(':')) {
        return false;
      }
      SkipSpace();
      if (key == "results") {
        if (!ParseResults(out)) {
          return false;
        }
      } else {
        Value value;
        if (!ParseScalar(&value)) {
          return false;
        }
        if (key == "schema" && value.kind == Value::Kind::kNumber) {
          out->schema = static_cast<int>(value.number);
        } else if (key == "bench" && value.kind == Value::Kind::kString) {
          out->bench = value.text;
        } else if (key == "seed" && value.kind == Value::Kind::kNumber) {
          out->seed = static_cast<uint64_t>(value.number);
        }
      }
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the top-level object");
    }
    return true;
  }

 private:
  bool ParseResults(BenchFile* out) {
    if (!Expect('[')) {
      return false;
    }
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      ResultRow row;
      if (!ParseFlatObject(&row)) {
        return false;
      }
      out->results.push_back(std::move(row));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseFlatObject(ResultRow* row) {
    if (!Expect('{')) {
      return false;
    }
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      if (!first && !Expect(',')) {
        return false;
      }
      first = false;
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (!Expect(':')) {
        return false;
      }
      SkipSpace();
      Value value;
      if (!ParseScalar(&value)) {
        return false;
      }
      row->metrics.emplace_back(std::move(key), std::move(value));
    }
  }

  bool ParseScalar(Value* out) {
    const char c = Peek();
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') {
      out->kind = Value::Kind::kBool;
      const char* word = c == 't' ? "true" : "false";
      for (const char* p = word; *p != '\0'; ++p) {
        if (Peek() != *p) {
          return Fail("bad literal");
        }
        ++pos_;
      }
      out->boolean = c == 't';
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out->kind = Value::Kind::kNumber;
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
      }
      out->number = std::strtod(text_.c_str() + start, nullptr);
      return true;
    }
    return Fail("expected a string, number or bool value");
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;  // the emitters only ever escape quotes and backslashes
      }
      out->push_back(text_[pos_]);
      ++pos_;
    }
    return Expect('"');
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Expect(char c) {
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

// Numeric fields that name a sweep cell rather than measure it. `rate` and
// `crash_op` are grid coordinates; `threads` is the scaling-sweep axis.
bool IsIdentityKeyName(const std::string& name) {
  return name == "threads" || name == "rate" || name == "crash_op";
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// Higher-is-better rates and ratios: throughput, speedups, hit/contiguity
// fractions, fill bandwidths.
bool IsHigherBetterName(const std::string& name) {
  return Contains(name, "ops_per_sec") || Contains(name, "ops_per_second") ||
         Contains(name, "speedup") || Contains(name, "throughput") ||
         Contains(name, "hit_ratio") || Contains(name, "contiguity") ||
         Contains(name, "mib_per_s") || Contains(name, "bandwidth");
}

// Lower-is-better latencies and queueing costs. `_ms` catches the emitted
// millisecond conversions (recovery_latency_ms, backoff_ms, p99_ms, ...).
bool IsLowerBetterName(const std::string& name) {
  return Contains(name, "latency") || Contains(name, "p99") || Contains(name, "p50") ||
         Contains(name, "delay") || Contains(name, "backoff") || Contains(name, "_ms");
}

double RelChange(double baseline, double current) {
  if (baseline == 0.0) {
    return current == 0.0 ? 0.0 : (current > 0.0 ? 1.0 : -1.0);
  }
  return (current - baseline) / std::fabs(baseline);
}

const char* StatusName(DeltaStatus status) {
  switch (status) {
    case DeltaStatus::kUnchanged:
      return "ok";
    case DeltaStatus::kImproved:
      return "improved";
    case DeltaStatus::kRegressed:
      return "REGRESSED";
    case DeltaStatus::kMissingCell:
      return "MISSING CELL";
    case DeltaStatus::kMissingMetric:
      return "MISSING METRIC";
    case DeltaStatus::kNewCell:
      return "new cell";
    case DeltaStatus::kNewMetric:
      return "new metric";
  }
  return "?";
}

const char* ClassName(MetricClass klass) {
  switch (klass) {
    case MetricClass::kIdentityKey:
      return "key";
    case MetricClass::kExactCount:
      return "count";
    case MetricClass::kHigherBetter:
      return "higher";
    case MetricClass::kLowerBetter:
      return "lower";
    case MetricClass::kExactValue:
      return "exact";
  }
  return "?";
}

}  // namespace

bool Value::SameAs(const Value& other) const {
  if (kind != other.kind) {
    return false;
  }
  switch (kind) {
    case Kind::kNumber:
      return number == other.number;
    case Kind::kBool:
      return boolean == other.boolean;
    case Kind::kString:
      return text == other.text;
  }
  return false;
}

std::string Value::Render() const {
  switch (kind) {
    case Kind::kNumber: {
      // Integers render bare; everything else keeps enough digits to see a
      // sub-tolerance wiggle.
      if (number == std::floor(number) && std::fabs(number) < 1e15) {
        return std::to_string(static_cast<long long>(number));
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.4g", number);
      return buffer;
    }
    case Kind::kBool:
      return boolean ? "true" : "false";
    case Kind::kString:
      return text;
  }
  return "";
}

std::string ResultRow::CellKey() const {
  std::string key;
  for (const auto& [name, value] : metrics) {
    const bool is_key = value.kind == Value::Kind::kString ? true
                        : value.kind == Value::Kind::kNumber ? IsIdentityKeyName(name)
                                                             : false;
    if (!is_key) {
      continue;
    }
    if (!key.empty()) {
      key += ' ';
    }
    if (value.kind == Value::Kind::kNumber) {
      key += name + '=';
    }
    key += value.Render();
  }
  return key;
}

const Value* ResultRow::Find(const std::string& name) const {
  for (const auto& [metric, value] : metrics) {
    if (metric == name) {
      return &value;
    }
  }
  return nullptr;
}

bool ParseBenchFile(const std::string& json, BenchFile* out, std::string* error) {
  *out = BenchFile{};
  if (error != nullptr) {
    error->clear();
  }
  Reader reader(json, error);
  return reader.ParseTop(out);
}

bool LoadBenchFile(const std::string& path, BenchFile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot read " + path;
    }
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!ParseBenchFile(text.str(), out, error)) {
    if (error != nullptr) {
      *error = path + ": " + *error;
    }
    return false;
  }
  return true;
}

MetricClass ClassifyMetric(const std::string& name, const Value& value) {
  if (value.kind != Value::Kind::kNumber) {
    return MetricClass::kExactValue;
  }
  if (IsIdentityKeyName(name)) {
    return MetricClass::kIdentityKey;
  }
  if (IsHigherBetterName(name)) {
    return MetricClass::kHigherBetter;
  }
  if (IsLowerBetterName(name)) {
    return MetricClass::kLowerBetter;
  }
  // Everything numeric that is not a rate or a latency is a deterministic
  // counter (ops, blocks, retries, queue depths, ...).
  return MetricClass::kExactCount;
}

double ToleranceFor(MetricClass klass) {
  switch (klass) {
    case MetricClass::kIdentityKey:
    case MetricClass::kExactValue:
      return 0.0;
    // The simulator is a pure function of (config, seed): counters that
    // drift at all signal a behavior change. The 0.1% window only forgives
    // last-digit formatting wobble in emitted decimals.
    case MetricClass::kExactCount:
      return 0.001;
    // Derived rates move when any upstream count moves; 5% keeps the gate
    // meaningful without tripping on legitimate small shifts.
    case MetricClass::kHigherBetter:
      return 0.05;
    // Tail latencies are the noisiest derived quantity (percentile over a
    // merged histogram): the loosest window.
    case MetricClass::kLowerBetter:
      return 0.10;
  }
  return 0.0;
}

DiffReport Diff(const BenchFile& baseline, const BenchFile& current) {
  DiffReport report;
  report.bench = baseline.bench;

  if (baseline.seed != current.seed) {
    Delta delta;
    delta.cell = "(file)";
    delta.metric = "seed";
    delta.status = DeltaStatus::kRegressed;
    delta.baseline = std::to_string(baseline.seed);
    delta.current = std::to_string(current.seed);
    report.deltas.push_back(std::move(delta));
    ++report.regressions;
    return report;  // different seeds: every further comparison is noise
  }

  // Index the current file's rows by cell key; a vector scan keeps insertion
  // order deterministic (cell counts are tens, not thousands).
  std::vector<bool> current_matched(current.results.size(), false);
  for (const ResultRow& base_row : baseline.results) {
    const std::string cell = base_row.CellKey();
    const ResultRow* cur_row = nullptr;
    for (size_t i = 0; i < current.results.size(); ++i) {
      if (!current_matched[i] && current.results[i].CellKey() == cell) {
        current_matched[i] = true;
        cur_row = &current.results[i];
        break;
      }
    }
    if (cur_row == nullptr) {
      Delta delta;
      delta.cell = cell;
      delta.metric = "(cell)";
      delta.status = DeltaStatus::kMissingCell;
      report.deltas.push_back(std::move(delta));
      ++report.regressions;
      continue;
    }
    ++report.cells_compared;

    for (const auto& [name, base_value] : base_row.metrics) {
      const MetricClass klass = ClassifyMetric(name, base_value);
      if (klass == MetricClass::kIdentityKey ||
          (base_value.kind == Value::Kind::kString)) {
        continue;  // identity fields were already matched via the cell key
      }
      const Value* cur_value = cur_row->Find(name);
      Delta delta;
      delta.cell = cell;
      delta.metric = name;
      delta.klass = klass;
      delta.baseline = base_value.Render();
      if (cur_value == nullptr) {
        delta.status = DeltaStatus::kMissingMetric;
        report.deltas.push_back(std::move(delta));
        ++report.regressions;
        continue;
      }
      ++report.metrics_compared;
      delta.current = cur_value->Render();

      if (klass == MetricClass::kExactValue) {
        if (!base_value.SameAs(*cur_value)) {
          delta.status = DeltaStatus::kRegressed;
          report.deltas.push_back(std::move(delta));
          ++report.regressions;
        }
        continue;
      }

      const double tolerance = ToleranceFor(klass);
      const double rel = RelChange(base_value.number, cur_value->number);
      delta.rel_change = rel;
      DeltaStatus status = DeltaStatus::kUnchanged;
      if (klass == MetricClass::kHigherBetter) {
        status = rel < -tolerance  ? DeltaStatus::kRegressed
                 : rel > tolerance ? DeltaStatus::kImproved
                                   : DeltaStatus::kUnchanged;
      } else if (klass == MetricClass::kLowerBetter) {
        status = rel > tolerance    ? DeltaStatus::kRegressed
                 : rel < -tolerance ? DeltaStatus::kImproved
                                    : DeltaStatus::kUnchanged;
      } else {  // kExactCount: any drift beyond the window is a failure
        status = std::fabs(rel) > tolerance ? DeltaStatus::kRegressed
                                            : DeltaStatus::kUnchanged;
      }
      if (status == DeltaStatus::kUnchanged) {
        continue;
      }
      delta.status = status;
      report.deltas.push_back(std::move(delta));
      if (status == DeltaStatus::kRegressed) {
        ++report.regressions;
      } else {
        ++report.improvements;
      }
    }

    // Metrics present only in the current file: fine (a new PR may add
    // instrumentation), but worth a line so baselines get refreshed.
    for (const auto& [name, cur_value] : cur_row->metrics) {
      if (cur_value.kind == Value::Kind::kString ||
          ClassifyMetric(name, cur_value) == MetricClass::kIdentityKey) {
        continue;
      }
      if (base_row.Find(name) == nullptr) {
        Delta delta;
        delta.cell = cell;
        delta.metric = name;
        delta.klass = ClassifyMetric(name, cur_value);
        delta.status = DeltaStatus::kNewMetric;
        delta.current = cur_value.Render();
        report.deltas.push_back(std::move(delta));
        ++report.notes;
      }
    }
  }

  for (size_t i = 0; i < current.results.size(); ++i) {
    if (!current_matched[i]) {
      Delta delta;
      delta.cell = current.results[i].CellKey();
      delta.metric = "(cell)";
      delta.status = DeltaStatus::kNewCell;
      report.deltas.push_back(std::move(delta));
      ++report.notes;
    }
  }
  return report;
}

std::string RenderReport(const DiffReport& report) {
  std::string out = "benchdiff: " + report.bench + "\n";
  if (!report.deltas.empty()) {
    AsciiTable table;
    table.SetHeader({"cell", "metric", "class", "baseline", "current", "delta", "status"});
    for (const Delta& delta : report.deltas) {
      const bool numeric = delta.status == DeltaStatus::kRegressed ||
                           delta.status == DeltaStatus::kImproved;
      table.AddRow({delta.cell, delta.metric, ClassName(delta.klass), delta.baseline,
                    delta.current,
                    numeric && delta.metric != "seed"
                        ? FormatDouble(delta.rel_change * 100.0, 2) + "%"
                        : "",
                    StatusName(delta.status)});
    }
    out += table.Render() + "\n";
  }
  out += "compared " + std::to_string(report.cells_compared) + " cells / " +
         std::to_string(report.metrics_compared) + " metrics: " +
         std::to_string(report.regressions) + " regressed, " +
         std::to_string(report.improvements) + " improved, " +
         std::to_string(report.notes) + " notes\n";
  out += report.Failed() ? "FAIL\n" : "PASS\n";
  return out;
}

}  // namespace benchdiff
}  // namespace fsbench
