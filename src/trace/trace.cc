#include "src/trace/trace.h"

#include <sstream>

namespace fsbench {

namespace {

const char* OpToken(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kCreate:
      return "create";
    case OpType::kUnlink:
      return "unlink";
    case OpType::kStat:
      return "stat";
    default:
      return "other";
  }
}

std::optional<OpType> ParseOpToken(const std::string& token) {
  if (token == "read") {
    return OpType::kRead;
  }
  if (token == "write") {
    return OpType::kWrite;
  }
  if (token == "create") {
    return OpType::kCreate;
  }
  if (token == "unlink") {
    return OpType::kUnlink;
  }
  if (token == "stat") {
    return OpType::kStat;
  }
  return std::nullopt;
}

}  // namespace

std::string Trace::Serialize() const {
  std::ostringstream out;
  for (const TraceRecord& record : records_) {
    out << record.timestamp << ' ' << OpToken(record.op) << ' ' << record.path << ' '
        << record.offset << ' ' << record.length << '\n';
  }
  return out.str();
}

std::optional<Trace> Trace::Parse(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    TraceRecord record;
    std::string op_token;
    if (!(fields >> record.timestamp >> op_token >> record.path >> record.offset >>
          record.length)) {
      return std::nullopt;
    }
    const std::optional<OpType> op = ParseOpToken(op_token);
    if (!op.has_value()) {
      return std::nullopt;
    }
    record.op = *op;
    trace.Append(std::move(record));
  }
  return trace;
}

Nanos TraceRecorder::Now() const { return clock_ != nullptr ? clock_->now() : 0; }

int TraceRecorder::FdFor(const std::string& path) {
  const auto it = fds_.find(path);
  if (it != fds_.end()) {
    return it->second;
  }
  const FsResult<int> fd = vfs_->Open(path);
  if (!fd.ok()) {
    return -1;
  }
  fds_[path] = fd.value;
  return fd.value;
}

FsResult<Bytes> TraceRecorder::Read(const std::string& path, Bytes offset, Bytes length) {
  trace_.Append(TraceRecord{Now(), OpType::kRead, path, offset, length});
  const int fd = FdFor(path);
  if (fd < 0) {
    return FsResult<Bytes>::Error(FsStatus::kNotFound);
  }
  return vfs_->Read(fd, offset, length);
}

FsResult<Bytes> TraceRecorder::Write(const std::string& path, Bytes offset, Bytes length) {
  trace_.Append(TraceRecord{Now(), OpType::kWrite, path, offset, length});
  const int fd = FdFor(path);
  if (fd < 0) {
    return FsResult<Bytes>::Error(FsStatus::kNotFound);
  }
  return vfs_->Write(fd, offset, length);
}

FsStatus TraceRecorder::Create(const std::string& path) {
  trace_.Append(TraceRecord{Now(), OpType::kCreate, path, 0, 0});
  return vfs_->CreateFile(path);
}

FsStatus TraceRecorder::Unlink(const std::string& path) {
  trace_.Append(TraceRecord{Now(), OpType::kUnlink, path, 0, 0});
  const auto it = fds_.find(path);
  if (it != fds_.end()) {
    vfs_->Close(it->second);
    fds_.erase(it);
  }
  return vfs_->Unlink(path);
}

FsResult<FileAttr> TraceRecorder::Stat(const std::string& path) {
  trace_.Append(TraceRecord{Now(), OpType::kStat, path, 0, 0});
  return vfs_->Stat(path);
}

ReplayResult TraceReplayer::Replay(Vfs& vfs, VirtualClock& clock, const Trace& trace,
                                   bool paced) {
  ReplayResult result;
  if (trace.records().empty()) {
    return result;
  }
  const Nanos start = clock.now();
  const Nanos trace_epoch = trace.records().front().timestamp;
  std::unordered_map<std::string, int> fds;
  auto fd_for = [&](const std::string& path) {
    const auto it = fds.find(path);
    if (it != fds.end()) {
      return it->second;
    }
    const FsResult<int> fd = vfs.Open(path, /*create=*/true);
    if (!fd.ok()) {
      return -1;
    }
    fds[path] = fd.value;
    return fd.value;
  };

  for (const TraceRecord& record : trace.records()) {
    if (paced) {
      clock.AdvanceTo(start + (record.timestamp - trace_epoch));
    }
    bool ok = true;
    switch (record.op) {
      case OpType::kRead: {
        const int fd = fd_for(record.path);
        ok = fd >= 0 && vfs.Read(fd, record.offset, record.length).ok();
        break;
      }
      case OpType::kWrite: {
        const int fd = fd_for(record.path);
        ok = fd >= 0 && vfs.Write(fd, record.offset, record.length).ok();
        break;
      }
      case OpType::kCreate: {
        const FsStatus status = vfs.CreateFile(record.path);
        ok = status == FsStatus::kOk || status == FsStatus::kExists;
        break;
      }
      case OpType::kUnlink: {
        const auto it = fds.find(record.path);
        if (it != fds.end()) {
          vfs.Close(it->second);
          fds.erase(it);
        }
        ok = vfs.Unlink(record.path) == FsStatus::kOk;
        break;
      }
      case OpType::kStat:
        ok = vfs.Stat(record.path).ok();
        break;
      default:
        ok = false;
        break;
    }
    ++result.ops;
    if (!ok) {
      ++result.errors;
    }
  }
  result.replay_duration = clock.now() - start;
  result.ops_per_second = result.replay_duration > 0
                              ? static_cast<double>(result.ops) /
                                    ToSeconds(result.replay_duration)
                              : 0.0;
  return result;
}

}  // namespace fsbench
