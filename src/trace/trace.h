// Trace recording and replay over the simulated VFS.
//
// §2 of the paper discusses trace-based evaluation at length (14 "standard"
// traces, almost none widely available) and asks researchers to publish
// traces in a usable form. This module provides the mechanism: a recorder
// that captures a workload's operation stream in a line-oriented text
// format, and a replayer that re-issues it against any file system —
// either as-fast-as-possible or paced to the original timestamps.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/metrics.h"
#include "src/sim/vfs.h"

namespace fsbench {

struct TraceRecord {
  Nanos timestamp = 0;  // virtual time at operation start
  OpType op = OpType::kOther;
  std::string path;
  Bytes offset = 0;
  Bytes length = 0;
};

class Trace {
 public:
  void Append(TraceRecord record) { records_.push_back(std::move(record)); }
  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  // Line format: "<timestamp> <op> <path> <offset> <length>".
  std::string Serialize() const;
  static std::optional<Trace> Parse(const std::string& text);

 private:
  std::vector<TraceRecord> records_;
};

// Thin recording facade over a Vfs: forwards the data/namespace operations
// used by trace-driven workloads and logs each one, stamped with the
// virtual time at which it was issued (so paced replay can reproduce think
// time).
class TraceRecorder {
 public:
  TraceRecorder(Vfs* vfs, VirtualClock* clock) : vfs_(vfs), clock_(clock) {}

  FsResult<Bytes> Read(const std::string& path, Bytes offset, Bytes length);
  FsResult<Bytes> Write(const std::string& path, Bytes offset, Bytes length);
  FsStatus Create(const std::string& path);
  FsStatus Unlink(const std::string& path);
  FsResult<FileAttr> Stat(const std::string& path);

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }

 private:
  int FdFor(const std::string& path);

  Nanos Now() const;

  Vfs* vfs_;
  VirtualClock* clock_;
  Trace trace_;
  std::unordered_map<std::string, int> fds_;
};

struct ReplayResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  Nanos replay_duration = 0;
  double ops_per_second = 0.0;
};

class TraceReplayer {
 public:
  // `paced` honours inter-operation gaps from the trace timestamps
  // (think-time-preserving replay); otherwise ops are issued back to back.
  ReplayResult Replay(Vfs& vfs, VirtualClock& clock, const Trace& trace, bool paced);
};

}  // namespace fsbench

#endif  // SRC_TRACE_TRACE_H_
