#include "src/sim/eviction_policy.h"

#include <algorithm>

namespace fsbench {

const char* EvictionPolicyKindName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kClock:
      return "clock";
    case EvictionPolicyKind::kTwoQueue:
      return "2q";
    case EvictionPolicyKind::kArc:
      return "arc";
  }
  return "?";
}

const char* CacheListIdName(CacheListId id) {
  switch (id) {
    case CacheListId::kNone:
      return "free";
    case CacheListId::kLruList:
      return "lru";
    case CacheListId::kClockRing:
      return "clock";
    case CacheListId::kA1in:
      return "a1in";
    case CacheListId::kAm:
      return "am";
    case CacheListId::kA1out:
      return "a1out";
    case CacheListId::kT1:
      return "t1";
    case CacheListId::kT2:
      return "t2";
    case CacheListId::kB1:
      return "b1";
    case CacheListId::kB2:
      return "b2";
  }
  return "?";
}

PolicyGeometry PolicyGeometry::For(EvictionPolicyKind kind, size_t capacity_pages) {
  PolicyGeometry geometry;
  switch (kind) {
    case EvictionPolicyKind::kLru:
    case EvictionPolicyKind::kClock:
      geometry.max_live_nodes = capacity_pages;
      break;
    case EvictionPolicyKind::kTwoQueue:
      geometry.kin = std::max<size_t>(1, capacity_pages / 4);
      geometry.kout = std::max<size_t>(1, capacity_pages / 2);
      // Transient peak inside an eviction: |resident| = capacity - 1 plus
      // A1out briefly at kout + 1 before the trim, plus the incoming page.
      geometry.max_live_nodes = capacity_pages + geometry.kout + 1;
      break;
    case EvictionPolicyKind::kArc:
      geometry.arc_c = std::max<size_t>(1, capacity_pages);
      // ARC maintains |T1|+|T2|+|B1|+|B2| <= 2c (ghosts are trimmed before a
      // brand-new key enters T1); +1 covers the incoming page.
      geometry.max_live_nodes = 2 * geometry.arc_c + 1;
      break;
  }
  geometry.max_live_nodes = std::max<size_t>(1, geometry.max_live_nodes);
  return geometry;
}

}  // namespace fsbench
