// In-memory inode representation shared by the simulated file systems.
//
// The struct carries both a block-map view (ext2/ext3: page index -> device
// block, with indirect meta blocks) and an extent view (xfs: sorted extent
// list with btree node blocks); each file system uses its half. Keeping one
// struct avoids a parallel class hierarchy for what is, for the simulator,
// pure bookkeeping.
#ifndef SRC_SIM_INODE_H_
#define SRC_SIM_INODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/directory.h"
#include "src/sim/types.h"
#include "src/util/units.h"

namespace fsbench {

struct FileExtent {
  uint64_t first_page = 0;
  Extent extent;
};

struct Inode {
  InodeId ino = kInvalidInode;
  FileType type = FileType::kRegular;
  Bytes size = 0;
  uint32_t link_count = 0;
  Nanos mtime = 0;
  Nanos ctime = 0;
  uint64_t group = 0;  // placement block group / allocation group
  BlockId itable_block = kInvalidBlock;  // inode-table block holding this inode

  // ext2-style mapping: block_map[i] is the device block backing page i
  // (kInvalidBlock for holes). indirect_blocks are the allocated meta blocks
  // backing the non-direct part of the map.
  std::vector<BlockId> block_map;
  std::vector<BlockId> indirect_blocks;

  // xfs-style mapping: sorted, non-overlapping extents plus btree node
  // blocks charged when the extent list outgrows the inline area.
  std::vector<FileExtent> extents;
  std::vector<BlockId> extent_meta_blocks;

  uint64_t allocated_blocks = 0;

  // Directory contents, owned by the inode itself (non-null iff type ==
  // kDirectory). Living here rather than in a side table means resolving a
  // path component costs one inode probe, not two.
  std::unique_ptr<Directory> dir;
};

}  // namespace fsbench

#endif  // SRC_SIM_INODE_H_
