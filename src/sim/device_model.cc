#include "src/sim/device_model.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

DeviceModel::DeviceModel(uint64_t total_sectors) : total_sectors_(total_sectors) {
  assert(total_sectors_ > 0);
}

void DeviceModel::EnableFaults(const FaultPlanConfig& config, uint64_t seed) {
  fault_plan_.emplace(config, seed);
  ConfigureSpares(config.region_sectors, config.spare_regions);
}

void DeviceModel::ConfigureSpares(uint64_t region_sectors, uint64_t spare_regions) {
  region_sectors_ = region_sectors;
  spare_regions_ = spare_regions;
  assert(region_sectors_ > 0);
  assert(spare_regions_ * region_sectors_ < total_sectors_);
}

bool DeviceModel::IsDead(Nanos now) {
  if (dead_latched_) {
    return true;
  }
  if (fault_plan_ && fault_plan_->DeviceDeadAt(now)) {
    dead_latched_ = true;
  }
  return dead_latched_;
}

void DeviceModel::StartFaultClock(Nanos origin) {
  if (fault_plan_.has_value()) {
    fault_plan_->StartClock(origin);
  }
}

bool DeviceModel::RegionLatentBad(uint64_t lba, Nanos now) const {
  const uint64_t region = lba / region_sectors_;
  if (remap_.count(region) != 0) {
    return false;  // already repaired into the spare pool
  }
  if (fault_plan_ && fault_plan_->RegionIsBad(lba, now)) {
    return true;
  }
  const uint64_t region_start = region * region_sectors_;
  const uint64_t span = std::min(region_sectors_, total_sectors_ - region_start);
  return OverlapsInjectedError(region_start, static_cast<uint32_t>(span));
}

bool DeviceModel::OverlapsInjectedError(uint64_t lba, uint32_t sector_count) const {
  if (error_extents_.empty()) {
    return false;
  }
  // Extents starting at or after lba + sector_count cannot overlap; extents
  // starting more than max_error_extent_ sectors before lba cannot reach it.
  const uint64_t scan_from = lba >= max_error_extent_ ? lba - max_error_extent_ + 1 : 0;
  for (auto it = error_extents_.lower_bound(scan_from);
       it != error_extents_.end() && it->first < lba + sector_count; ++it) {
    if (it->first + it->second > lba) {
      return true;
    }
  }
  return false;
}

uint64_t DeviceModel::RedirectLba(uint64_t lba, uint32_t sector_count, bool* remapped) const {
  *remapped = false;
  if (remap_.empty()) {
    return lba;
  }
  const auto it = remap_.find(lba / region_sectors_);
  if (it == remap_.end()) {
    return lba;
  }
  *remapped = true;
  uint64_t redirected = it->second + lba % region_sectors_;
  if (redirected + sector_count > total_sectors_) {
    redirected = total_sectors_ - sector_count;
  }
  return redirected;
}

FaultDecision DeviceModel::DecideFault(uint64_t lba, uint32_t sector_count, Nanos now,
                                       bool remapped) {
  FaultDecision decision;
  if (fault_plan_) {
    decision = fault_plan_->Evaluate(lba, now, remapped);
  }
  if (decision.kind == FaultKind::kNone && OverlapsInjectedError(lba, sector_count)) {
    // Legacy injected extents behave like persistent media damage.
    decision.kind = FaultKind::kPersistent;
  }
  return decision;
}

void DeviceModel::InjectError(uint64_t lba, uint32_t sector_count) {
  assert(sector_count > 0);
  uint64_t& span = error_extents_[lba];
  span = std::max<uint64_t>(span, sector_count);
  max_error_extent_ = std::max(max_error_extent_, sector_count);
}

void DeviceModel::ClearErrors() {
  error_extents_.clear();
  max_error_extent_ = 0;
}

bool DeviceModel::RemapRegion(uint64_t lba) {
  if (dead_latched_) {
    return false;  // nothing to remap to: the whole device is gone
  }
  const uint64_t region = lba / region_sectors_;
  if (remap_.count(region) != 0) {
    return true;
  }
  if (remap_.size() >= spare_regions_) {
    return false;  // spares exhausted: the fault surfaces as EIO
  }
  // Spares are distributed across the LBA space (one slot at the end of each
  // of spare_regions_ equal slices), like real drives' per-zone spare
  // tracks: a remapped region keeps seeking near its original neighborhood
  // instead of paying a full stroke to a pool at the top of the disk. The
  // slot nearest the bad region wins; ties and collisions probe outward
  // deterministically.
  const uint64_t slice = total_sectors_ / spare_regions_;
  const uint64_t preferred = std::min(lba / slice, spare_regions_ - 1);
  uint64_t slot = spare_regions_;
  uint64_t best_distance = ~0ULL;
  for (uint64_t s = 0; s < spare_regions_; ++s) {
    if (spare_slots_used_.count(s) != 0) {
      continue;
    }
    const uint64_t distance = s > preferred ? s - preferred : preferred - s;
    if (distance < best_distance) {
      best_distance = distance;
      slot = s;
    }
  }
  spare_slots_used_.insert(slot);
  const uint64_t spare_start = (slot + 1) * slice - region_sectors_;
  remap_.emplace(region, spare_start);
  return true;
}

}  // namespace fsbench
