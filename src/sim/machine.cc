#include "src/sim/machine.h"

#include <algorithm>
#include <cassert>

#include "src/util/rng.h"

namespace fsbench {

MachineConfig PaperTestbedConfig() {
  MachineConfig config;
  // Defaults in the struct already describe the paper's testbed; the disk
  // parameters below are "effective" figures (they fold in head settle,
  // command processing and kernel block-layer overhead) calibrated so a
  // short-seek random 4 KiB read costs ~8-10 ms, matching the envelope the
  // paper's Figures 1 and 3 imply (see DESIGN.md §4).
  config.disk.track_to_track_seek = FromMillis(5.0);
  config.disk.average_seek = FromMillis(11.5);
  config.disk.full_stroke_seek = FromMillis(18.0);
  config.disk.command_overhead = FromMillis(0.7);
  config.os_reserved = 96 * kMiB;   // 410 MiB "largest file that fits" (Fig 2)
  config.syscall_overhead = 3800;   // + 0.5 us copy -> ~4.3 us cache hits (Fig 3a bucket 12)
  return config;
}

Machine::Machine(FsKind fs_kind, const MachineConfig& config)
    : config_(config), fs_kind_(fs_kind) {
  // Per-run jitter draws (deterministic in the seed).
  Rng jitter_rng(config_.seed ^ 0xfb5e1b5e9ULL);
  auto uniform_pm = [&jitter_rng](double amplitude) {
    return 1.0 + amplitude * (2.0 * jitter_rng.NextDouble() - 1.0);
  };

  DiskParams disk_params = config_.disk;
  const double disk_scale = uniform_pm(config_.disk_speed_jitter);
  disk_params.track_to_track_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.track_to_track_seek) * disk_scale);
  disk_params.average_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.average_seek) * disk_scale);
  disk_params.full_stroke_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.full_stroke_seek) * disk_scale);
  disk_params.command_overhead =
      static_cast<Nanos>(static_cast<double>(disk_params.command_overhead) * disk_scale);

  // SSD devices share the chassis-wide speed jitter (applied to the flash
  // latencies) and the file system's view of the capacity: the layout is
  // built from config.disk.capacity whatever the device kind, so the device
  // must expose the same LBA space. No RNG draws happen here — the draw
  // order above is part of the (config, seed) contract.
  SsdParams ssd_params = config_.ssd;
  ssd_params.capacity = config_.disk.capacity;
  ssd_params.read_latency =
      static_cast<Nanos>(static_cast<double>(ssd_params.read_latency) * disk_scale);
  ssd_params.program_latency =
      static_cast<Nanos>(static_cast<double>(ssd_params.program_latency) * disk_scale);
  ssd_params.erase_latency =
      static_cast<Nanos>(static_cast<double>(ssd_params.erase_latency) * disk_scale);
  ssd_params.command_overhead =
      static_cast<Nanos>(static_cast<double>(ssd_params.command_overhead) * disk_scale);
  jittered_disk_params_ = disk_params;
  jittered_ssd_params_ = ssd_params;

  const double os_jitter = 2.0 * jitter_rng.NextDouble() - 1.0;
  const Bytes reserve = config_.os_reserved +
                        static_cast<Bytes>(static_cast<double>(config_.os_reserve_jitter) *
                                           (os_jitter + 1.0));
  assert(config_.ram > reserve);
  const Bytes cache_bytes = config_.ram - reserve;

  const double cpu_scale = uniform_pm(config_.cpu_jitter);

  // Device fleet: data devices (1 without an array), then hot spares, then
  // the optional dedicated journal device. Every device draws its rotational
  // and fault streams from its own seed (device 0 keeps the historical
  // derivation bit-for-bit); the per-run jitter scale is machine-wide — the
  // devices share a chassis, not a seed.
  const size_t data_devices = config_.array.enabled() ? config_.array.devices : 1;
  const size_t spare_devices = config_.array.enabled() ? config_.array.hot_spares : 0;
  const size_t total_devices =
      data_devices + spare_devices + (config_.array.journal_device ? 1 : 0);
  for (size_t d = 0; d < total_devices; ++d) {
    const uint64_t stride = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(d);
    const DeviceKind kind = d < config_.array.device_kinds.size()
                                ? config_.array.device_kinds[d]
                                : config_.device;
    std::unique_ptr<DeviceModel> disk;
    if (kind == DeviceKind::kSsd) {
      // The SSD has no stream of its own (service time is a pure function of
      // the request sequence); the rotational seed below is simply unused for
      // it, which keeps HDD devices' derivations stable across mixed fleets.
      disk = std::make_unique<SsdModel>(ssd_params);
    } else {
      disk = std::make_unique<DiskModel>(disk_params, config_.seed ^ 0xd15c0000ULL ^ stride);
    }
    // Spare accounting always reflects the configured pool, even when every
    // fault rate is zero and no plan is attached (FaultSummary consistency).
    disk->ConfigureSpares(config_.faults.region_sectors, config_.faults.spare_regions);
    if (config_.faults.enabled()) {
      // The plan's stream is separate from the disk's rotational stream, so a
      // run with all fault rates zero is byte-identical to one without a plan.
      FaultPlanConfig plan = config_.faults;
      if (d != config_.array.kill_device || d >= data_devices) {
        plan.device_kill_time = 0;  // the kill names exactly one data device
      }
      disk->EnableFaults(plan, config_.seed ^ 0xfa1c7000ULL ^ stride);
    }
    // Flash gets the multi-queue scheduler regardless of the configured kind:
    // an elevator in front of a device with no head is pure loss, and the
    // per-channel timelines are what make the channels pay off.
    const SchedulerKind sched_kind =
        kind == DeviceKind::kSsd ? SchedulerKind::kMultiQueue : config_.scheduler;
    auto scheduler = std::make_unique<IoScheduler>(disk.get(), sched_kind);
    scheduler->set_retry_policy(config_.retry);
    disks_.push_back(std::move(disk));
    schedulers_.push_back(std::move(scheduler));
  }
  if (config_.array.journal_device) {
    journal_device_ = total_devices - 1;
  }
  if (config_.array.enabled()) {
    std::vector<IoScheduler*> data;
    std::vector<IoScheduler*> spares;
    for (size_t d = 0; d < data_devices; ++d) {
      data.push_back(schedulers_[d].get());
    }
    for (size_t d = data_devices; d < data_devices + spare_devices; ++d) {
      spares.push_back(schedulers_[d].get());
    }
    array_ = std::make_unique<BlockArray>(config_.array, std::move(data), std::move(spares));
    // Replica write failures route through the array, which absorbs them
    // while redundancy holds and forwards set-wide losses to the VFS.
    for (size_t d = 0; d < data_devices + spare_devices; ++d) {
      schedulers_[d]->set_write_error_sink(array_.get());
    }
  }

  // The journal writes to its own device when one is configured; otherwise
  // it shares the data endpoint (array or single device).
  BlockIo* const data_io =
      array_ != nullptr ? static_cast<BlockIo*>(array_.get()) : schedulers_[0].get();
  BlockIo* const journal_io =
      journal_device_ != SIZE_MAX ? static_cast<BlockIo*>(schedulers_[journal_device_].get())
                                  : data_io;

  switch (fs_kind) {
    case FsKind::kExt2:
      fs_ = std::make_unique<Ext2Fs>(config_.disk.capacity, config_.layout, &clock_);
      break;
    case FsKind::kExt3: {
      auto ext3 = std::make_unique<Ext3Fs>(config_.disk.capacity, config_.layout, &clock_,
                                           config_.journal_blocks);
      // Journal blocks are file-system blocks: the log's LBAs and the
      // ShadowDisk's durability map must agree on the block size.
      JournalConfig journal_config = config_.journal;
      journal_config.block_sectors = ext3->sectors_per_block();
      ext3->AttachJournal(std::make_unique<JbdJournal>(journal_io, &clock_,
                                                       ext3->journal_region(), journal_config));
      fs_ = std::move(ext3);
      break;
    }
    case FsKind::kXfs: {
      auto xfs = std::make_unique<XfsFs>(config_.disk.capacity, config_.layout, &clock_,
                                         config_.xfs_log_blocks);
      JournalConfig journal_config = config_.xfs_journal;
      journal_config.block_sectors = xfs->sectors_per_block();
      xfs->AttachJournal(std::make_unique<CilJournal>(journal_io, &clock_,
                                                      xfs->journal_region(), journal_config));
      fs_ = std::move(xfs);
      break;
    }
  }

  VfsConfig vfs_config;
  vfs_config.page_size = config_.layout.block_size;
  cache_capacity_pages_ = static_cast<size_t>(cache_bytes / vfs_config.page_size);
  vfs_config.cache_capacity_pages = cache_capacity_pages_;
  vfs_config.eviction = config_.eviction;
  vfs_config.syscall_overhead = config_.syscall_overhead;
  vfs_config.page_copy_cost = config_.page_copy_cost;
  vfs_config.meta_touch_cost = config_.meta_touch_cost;
  vfs_config.cpu_cost_multiplier = cpu_scale;
  vfs_config.readahead_override = config_.readahead_override;
  if (config_.flash.has_value()) {
    FlashTierConfig flash_config = *config_.flash;
    flash_config.page_size = vfs_config.page_size;
    flash_ = std::make_unique<FlashTier>(flash_config);
  }
  vfs_ = std::make_unique<Vfs>(&clock_, data_io, fs_.get(), vfs_config, flash_.get());
  // The journal checkpoints by asking the VFS to write dirty pages home.
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->set_checkpoint_sink(vfs_.get());
  }
  // Permanent write failures propagate VFS-ward so the file system can
  // react (journal abort + remount-read-only on metadata/log loss). With an
  // array, the array sits in between: it absorbs replica failures while the
  // set still has a live copy and forwards only set-wide losses.
  if (array_ != nullptr) {
    array_->set_downstream_sink(vfs_.get());
  } else {
    schedulers_[0]->set_write_error_sink(vfs_.get());
  }
  if (journal_device_ != SIZE_MAX) {
    schedulers_[journal_device_]->set_write_error_sink(vfs_.get());
  }
}

void Machine::EnableCrashTracking() {
  if (shadow_ != nullptr) {
    return;
  }
  shadow_ = std::make_unique<ShadowDisk>(fs_->sectors_per_block());
  // Every device reports completions: with a mirror the replicas write the
  // same physical LBAs, so the shadow map stays consistent (striped
  // geometries remap LBAs and are not supported by crash tracking).
  for (const std::unique_ptr<IoScheduler>& scheduler : schedulers_) {
    scheduler->set_completion_observer(shadow_.get());
  }
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    if (TxnLog* log = journal->txn_log(); log != nullptr) {
      log->set_retain_history(true);
    }
  }
}

Nanos Machine::MaxBusyUntil() const {
  Nanos busy = 0;
  for (const std::unique_ptr<IoScheduler>& scheduler : schedulers_) {
    busy = std::max(busy, scheduler->busy_until());
  }
  return busy;
}

size_t Machine::TotalPendingAsync() const {
  size_t pending = 0;
  for (const std::unique_ptr<IoScheduler>& scheduler : schedulers_) {
    pending += scheduler->pending_async();
  }
  return pending;
}

Nanos Machine::DrainAll(Nanos now) {
  Nanos idle = now;
  for (const std::unique_ptr<IoScheduler>& scheduler : schedulers_) {
    idle = std::max(idle, scheduler->Drain(now));
  }
  return idle;
}

DiskStats Machine::AggregateDiskStats() const {
  DiskStats total;
  for (const std::unique_ptr<DeviceModel>& disk : disks_) {
    const DiskStats& s = disk->stats();
    total.reads += s.reads;
    total.writes += s.writes;
    total.sectors_read += s.sectors_read;
    total.sectors_written += s.sectors_written;
    total.seeks += s.seeks;
    total.buffer_hits += s.buffer_hits;
    total.sequential_hits += s.sequential_hits;
    total.total_service_time += s.total_service_time;
    total.total_seek_time += s.total_seek_time;
    total.total_rotation_time += s.total_rotation_time;
    total.total_transfer_time += s.total_transfer_time;
    total.errors += s.errors;
    total.total_fault_time += s.total_fault_time;
    total.gc_page_moves += s.gc_page_moves;
    total.gc_erases += s.gc_erases;
    total.total_gc_time += s.total_gc_time;
  }
  return total;
}

IoSchedulerStats Machine::AggregateSchedulerStats() const {
  IoSchedulerStats total;
  for (const std::unique_ptr<IoScheduler>& scheduler : schedulers_) {
    const IoSchedulerStats& s = scheduler->stats();
    total.sync_requests += s.sync_requests;
    total.async_requests += s.async_requests;
    total.async_serviced += s.async_serviced;
    total.async_errors += s.async_errors;
    total.sync_errors += s.sync_errors;
    total.retries += s.retries;
    total.remaps += s.remaps;
    total.retry_backoff_time += s.retry_backoff_time;
    total.total_sync_wait += s.total_sync_wait;
    total.total_sync_queue_delay += s.total_sync_queue_delay;
    total.max_queue_depth = std::max(total.max_queue_depth, s.max_queue_depth);
    total.async_throttle_stalls += s.async_throttle_stalls;
    total.total_async_throttle_time += s.total_async_throttle_time;
  }
  return total;
}

std::unique_ptr<DeviceModel> Machine::MakeRecoveryDevice(uint64_t seed) const {
  if (device_kind(0) == DeviceKind::kSsd) {
    return std::make_unique<SsdModel>(jittered_ssd_params_);
  }
  return std::make_unique<DiskModel>(jittered_disk_params_, seed);
}

void Machine::BindCursor(VirtualClock* cursor) {
  vfs_->BindCursor(cursor);
  fs_->BindClock(cursor);
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->BindClock(cursor);
  }
}

}  // namespace fsbench
