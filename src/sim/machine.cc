#include "src/sim/machine.h"

#include <algorithm>
#include <cassert>

#include "src/util/rng.h"

namespace fsbench {

MachineConfig PaperTestbedConfig() {
  MachineConfig config;
  // Defaults in the struct already describe the paper's testbed; the disk
  // parameters below are "effective" figures (they fold in head settle,
  // command processing and kernel block-layer overhead) calibrated so a
  // short-seek random 4 KiB read costs ~8-10 ms, matching the envelope the
  // paper's Figures 1 and 3 imply (see DESIGN.md §4).
  config.disk.track_to_track_seek = FromMillis(5.0);
  config.disk.average_seek = FromMillis(11.5);
  config.disk.full_stroke_seek = FromMillis(18.0);
  config.disk.command_overhead = FromMillis(0.7);
  config.os_reserved = 96 * kMiB;   // 410 MiB "largest file that fits" (Fig 2)
  config.syscall_overhead = 3800;   // + 0.5 us copy -> ~4.3 us cache hits (Fig 3a bucket 12)
  return config;
}

Machine::Machine(FsKind fs_kind, const MachineConfig& config)
    : config_(config), fs_kind_(fs_kind) {
  // Per-run jitter draws (deterministic in the seed).
  Rng jitter_rng(config_.seed ^ 0xfb5e1b5e9ULL);
  auto uniform_pm = [&jitter_rng](double amplitude) {
    return 1.0 + amplitude * (2.0 * jitter_rng.NextDouble() - 1.0);
  };

  DiskParams disk_params = config_.disk;
  const double disk_scale = uniform_pm(config_.disk_speed_jitter);
  disk_params.track_to_track_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.track_to_track_seek) * disk_scale);
  disk_params.average_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.average_seek) * disk_scale);
  disk_params.full_stroke_seek =
      static_cast<Nanos>(static_cast<double>(disk_params.full_stroke_seek) * disk_scale);
  disk_params.command_overhead =
      static_cast<Nanos>(static_cast<double>(disk_params.command_overhead) * disk_scale);

  const double os_jitter = 2.0 * jitter_rng.NextDouble() - 1.0;
  const Bytes reserve = config_.os_reserved +
                        static_cast<Bytes>(static_cast<double>(config_.os_reserve_jitter) *
                                           (os_jitter + 1.0));
  assert(config_.ram > reserve);
  const Bytes cache_bytes = config_.ram - reserve;

  const double cpu_scale = uniform_pm(config_.cpu_jitter);

  disk_ = std::make_unique<DiskModel>(disk_params, config_.seed ^ 0xd15c0000ULL);
  if (config_.faults.enabled()) {
    // The plan's stream is separate from the disk's rotational stream, so a
    // run with all fault rates zero is byte-identical to one without a plan.
    disk_->EnableFaults(config_.faults, config_.seed ^ 0xfa1c7000ULL);
  }
  scheduler_ = std::make_unique<IoScheduler>(disk_.get(), config_.scheduler);
  scheduler_->set_retry_policy(config_.retry);

  switch (fs_kind) {
    case FsKind::kExt2:
      fs_ = std::make_unique<Ext2Fs>(config_.disk.capacity, config_.layout, &clock_);
      break;
    case FsKind::kExt3: {
      auto ext3 = std::make_unique<Ext3Fs>(config_.disk.capacity, config_.layout, &clock_,
                                           config_.journal_blocks);
      // Journal blocks are file-system blocks: the log's LBAs and the
      // ShadowDisk's durability map must agree on the block size.
      JournalConfig journal_config = config_.journal;
      journal_config.block_sectors = ext3->sectors_per_block();
      ext3->AttachJournal(std::make_unique<JbdJournal>(scheduler_.get(), &clock_,
                                                       ext3->journal_region(), journal_config));
      fs_ = std::move(ext3);
      break;
    }
    case FsKind::kXfs: {
      auto xfs = std::make_unique<XfsFs>(config_.disk.capacity, config_.layout, &clock_,
                                         config_.xfs_log_blocks);
      JournalConfig journal_config = config_.xfs_journal;
      journal_config.block_sectors = xfs->sectors_per_block();
      xfs->AttachJournal(std::make_unique<CilJournal>(scheduler_.get(), &clock_,
                                                      xfs->journal_region(), journal_config));
      fs_ = std::move(xfs);
      break;
    }
  }

  VfsConfig vfs_config;
  vfs_config.page_size = config_.layout.block_size;
  cache_capacity_pages_ = static_cast<size_t>(cache_bytes / vfs_config.page_size);
  vfs_config.cache_capacity_pages = cache_capacity_pages_;
  vfs_config.eviction = config_.eviction;
  vfs_config.syscall_overhead = config_.syscall_overhead;
  vfs_config.page_copy_cost = config_.page_copy_cost;
  vfs_config.meta_touch_cost = config_.meta_touch_cost;
  vfs_config.cpu_cost_multiplier = cpu_scale;
  vfs_config.readahead_override = config_.readahead_override;
  if (config_.flash.has_value()) {
    FlashTierConfig flash_config = *config_.flash;
    flash_config.page_size = vfs_config.page_size;
    flash_ = std::make_unique<FlashTier>(flash_config);
  }
  vfs_ = std::make_unique<Vfs>(&clock_, scheduler_.get(), fs_.get(), vfs_config, flash_.get());
  // The journal checkpoints by asking the VFS to write dirty pages home.
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->set_checkpoint_sink(vfs_.get());
  }
  // Permanent write failures propagate VFS-ward so the file system can
  // react (journal abort + remount-read-only on metadata/log loss).
  scheduler_->set_write_error_sink(vfs_.get());
}

void Machine::EnableCrashTracking() {
  if (shadow_ != nullptr) {
    return;
  }
  shadow_ = std::make_unique<ShadowDisk>(fs_->sectors_per_block());
  scheduler_->set_completion_observer(shadow_.get());
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    if (TxnLog* log = journal->txn_log(); log != nullptr) {
      log->set_retain_history(true);
    }
  }
}

void Machine::BindCursor(VirtualClock* cursor) {
  vfs_->BindCursor(cursor);
  fs_->BindClock(cursor);
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->BindClock(cursor);
  }
}

}  // namespace fsbench
