#include "src/sim/txn_log.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

TxnLog::TxnLog(BlockIo* io, VirtualClock* clock, Extent region,
               const TxnLogConfig& config)
    : io_(io), clock_(clock), region_(region), config_(config) {
  // A log must at least hold a descriptor, one home copy and a commit record.
  assert(region_.count >= 3);
}

void TxnLog::Add(const MetaRef& ref) {
  if (aborted_) {
    return;
  }
  if (current_set_.insert(ref.block).second) {
    current_tx_.push_back(ref);
  }
}

bool TxnLog::TxnIsClean(TxnRecord& txn) {
  while (txn.clean_prefix < txn.home.size()) {
    const auto it = home_write_event_.find(txn.home[txn.clean_prefix].block);
    if (it == home_write_event_.end() || it->second < txn.commit_event) {
      return false;
    }
    ++txn.clean_prefix;
  }
  return true;
}

void TxnLog::ReclaimFront() {
  TxnRecord& txn = records_[live_begin_];
  used_blocks_ -= txn.log_blocks;
  txn.checkpointed = true;
  ++stats_.reclaimed_txns;
  if (retain_history_) {
    ++live_begin_;
  } else {
    records_.pop_front();
  }
}

void TxnLog::ReclaimCleanTail() {
  while (live_begin_ < records_.size()) {
    if (!TxnIsClean(records_[live_begin_])) {
      return;
    }
    ReclaimFront();
  }
}

void TxnLog::EnsureSpace(uint64_t blocks) {
  assert(blocks <= region_.count);
  ReclaimCleanTail();
  if (region_.count - used_blocks_ >= blocks) {
    return;
  }
  // Log full: force checkpoint writeback of the oldest live transactions
  // until the incoming one fits, then wait for the device to drain — the
  // stall applications feel as the ext3 fsync cliff.
  ++stats_.log_stalls;
  ++stats_.forced_checkpoints;
  const Nanos stall_start = clock_->now();
  while (live_begin_ < records_.size() && region_.count - used_blocks_ < blocks) {
    TxnRecord& txn = records_[live_begin_];
    if (sink_ != nullptr && txn.clean_prefix < txn.home.size()) {
      stats_.checkpoint_writes += sink_->WritebackForCheckpoint(
          txn.home.data() + txn.clean_prefix, txn.home.size() - txn.clean_prefix,
          clock_->now());
    }
    // After the drain below, every submitted home write is on the platter;
    // blocks with no dirty page left (already written back, evicted, or
    // invalidated) need nothing. Either way the log copy is obsolete.
    txn.clean_prefix = txn.home.size();
    ReclaimFront();
  }
  clock_->AdvanceTo(io_->Drain(clock_->now()));
  stats_.stall_time += clock_->now() - stall_start;
  assert(region_.count - used_blocks_ >= blocks);
}

Nanos TxnLog::WriteChunk(const MetaRef* refs, uint64_t count, bool sync) {
  // Descriptor block + home copies + commit record, written sequentially at
  // the head (wrapping). Sequential writes are nearly free on the disk
  // model, as on real hardware — which is exactly why journaling costs show
  // up in meta-data benchmarks but not in read benchmarks.
  const uint64_t blocks_to_write = count + 2;
  Nanos completion = clock_->now();
  for (uint64_t i = 0; i < blocks_to_write; ++i) {
    const uint64_t offset = (head_block_ + i) % region_.count;
    const IoRequest req{IoKind::kWrite, (region_.start + offset) * config_.block_sectors,
                        config_.block_sectors, /*meta=*/true};
    if (sync && i + 1 == blocks_to_write) {
      // Only the commit record is waited on.
      if (const auto done = io_->SubmitSync(req, clock_->now()); done.has_value()) {
        completion = *done;
      }
    } else {
      // A full device queue stalls the committing thread like any producer.
      clock_->AdvanceTo(io_->SubmitAsync(req, clock_->now()));
    }
  }
  TxnRecord record;
  record.log_start = head_block_;
  record.log_blocks = blocks_to_write;
  record.commit_block = region_.start + (head_block_ + blocks_to_write - 1) % region_.count;
  record.watermark = op_watermark_;
  record.commit_event = ++event_counter_;
  record.home.assign(refs, refs + count);
  records_.push_back(std::move(record));
  head_block_ = (head_block_ + blocks_to_write) % region_.count;
  used_blocks_ += blocks_to_write;
  stats_.max_used_blocks = std::max(stats_.max_used_blocks, used_blocks_);
  return completion;
}

Nanos TxnLog::Commit(bool sync) {
  if (aborted_ || current_tx_.empty()) {
    return clock_->now();
  }
  // A transaction larger than the log region cannot exist on disk: it is
  // committed in segments that each fit, with a forced checkpoint between
  // them (a massive stall by design — the old journal silently wrapped the
  // head over its own tail here).
  const uint64_t max_payload = region_.count - 2;
  if (current_tx_.size() > max_payload) {
    ++stats_.split_commits;
  }
  Nanos completion = clock_->now();
  size_t offset = 0;
  while (offset < current_tx_.size()) {
    const uint64_t count =
        std::min<uint64_t>(current_tx_.size() - offset, max_payload);
    EnsureSpace(count + 2);
    const bool last = offset + count == current_tx_.size();
    completion = WriteChunk(current_tx_.data() + offset, count, sync && last);
    offset += count;
    if (aborted_) {
      // A log write inside WriteChunk failed permanently and the write-error
      // sink aborted us re-entrantly; stop writing chunks to a dead log.
      break;
    }
  }
  stats_.blocks_logged += current_tx_.size();
  ++stats_.commits;
  current_tx_.clear();
  current_set_.clear();
  // Over the pressure threshold: ask for background writeback of the oldest
  // live transaction's pending home blocks so reclaim can catch up without
  // ever reaching the forced-stall path. No waiting here.
  if (sink_ != nullptr &&
      static_cast<double>(used_blocks_) >
          config_.checkpoint_threshold * static_cast<double>(region_.count)) {
    ReclaimCleanTail();
    if (live_begin_ < records_.size() &&
        static_cast<double>(used_blocks_) >
            config_.checkpoint_threshold * static_cast<double>(region_.count)) {
      TxnRecord& txn = records_[live_begin_];
      if (txn.clean_prefix < txn.home.size()) {
        ++stats_.background_checkpoints;
        stats_.checkpoint_writes += sink_->WritebackForCheckpoint(
            txn.home.data() + txn.clean_prefix, txn.home.size() - txn.clean_prefix,
            clock_->now());
      }
    }
  }
  return completion;
}

}  // namespace fsbench
