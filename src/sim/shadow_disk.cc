#include "src/sim/shadow_disk.h"

namespace fsbench {

void ShadowDisk::OnIoComplete(const IoRequest& req, Nanos completion, bool ok) {
  if (req.kind != IoKind::kWrite || !ok) {
    return;
  }
  const BlockId first = req.lba / sectors_per_block_;
  const BlockId last = (req.lba + req.sector_count - 1) / sectors_per_block_;
  for (BlockId block = first; block <= last; ++block) {
    // Later-submitted writes of the same block supersede earlier ones; the
    // elevator never reorders same-LBA requests (stable sort), so keeping
    // the maximum completion matches the device's final content.
    Nanos& slot = last_write_completion_[block];
    if (completion > slot) {
      slot = completion;
    }
  }
}

}  // namespace fsbench
