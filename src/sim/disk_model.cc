#include "src/sim/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fsbench {

DiskModel::DiskModel(const DiskParams& params, uint64_t seed) : params_(params), rng_(seed) {
  assert(params_.sector_bytes > 0);
  assert(params_.sectors_per_track > 0);
  assert(params_.tracks_per_cylinder > 0);
  assert(params_.rpm > 0);
  total_sectors_ = params_.capacity / params_.sector_bytes;
  sectors_per_cylinder_ =
      static_cast<uint64_t>(params_.sectors_per_track) * params_.tracks_per_cylinder;
  total_cylinders_ = std::max<uint64_t>(1, total_sectors_ / sectors_per_cylinder_);
  revolution_time_ = kSecond * 60 / params_.rpm;
}

uint64_t DiskModel::CylinderOf(uint64_t lba) const { return lba / sectors_per_cylinder_; }

Nanos DiskModel::SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const {
  if (from_cylinder == to_cylinder) {
    return 0;
  }
  const uint64_t distance =
      from_cylinder > to_cylinder ? from_cylinder - to_cylinder : to_cylinder - from_cylinder;
  // Average seek corresponds to a one-third-stroke distance; model the curve
  // as sqrt up to that point and cap at the full stroke figure.
  const double d_avg = static_cast<double>(total_cylinders_) / 3.0;
  const double scale = std::sqrt(static_cast<double>(distance) / d_avg);
  const auto base = static_cast<double>(params_.track_to_track_seek);
  const auto span = static_cast<double>(params_.average_seek - params_.track_to_track_seek);
  const Nanos t = static_cast<Nanos>(base + span * scale);
  return std::min(t, params_.full_stroke_seek);
}

Nanos DiskModel::TransferTime(uint32_t sector_count) const {
  // Media rate: one track per revolution.
  const double revs = static_cast<double>(sector_count) / params_.sectors_per_track;
  return static_cast<Nanos>(revs * static_cast<double>(revolution_time_));
}

std::optional<Nanos> DiskModel::Access(const IoRequest& req) {
  assert(req.sector_count > 0);
  assert(req.lba + req.sector_count <= total_sectors_);

  if (!error_lbas_.empty()) {
    const auto it = error_lbas_.lower_bound(req.lba);
    if (it != error_lbas_.end() && *it < req.lba + req.sector_count) {
      ++stats_.errors;
      return std::nullopt;
    }
  }

  Nanos service = params_.command_overhead;
  const uint64_t target_cylinder = CylinderOf(req.lba);

  const bool buffer_hit = req.kind == IoKind::kRead && buffer_end_lba_ > buffer_start_lba_ &&
                          req.lba >= buffer_start_lba_ &&
                          req.lba + req.sector_count <= buffer_end_lba_;
  const bool streaming = has_last_ && req.lba == last_end_lba_;

  if (buffer_hit) {
    // Served from the on-drive buffer at interface speed; no mechanical work.
    ++stats_.buffer_hits;
    const double bytes = static_cast<double>(req.sector_count) * params_.sector_bytes;
    service += static_cast<Nanos>(bytes / static_cast<double>(params_.interface_rate) *
                                  static_cast<double>(kSecond));
  } else {
    if (streaming && target_cylinder == head_cylinder_) {
      // Head is already positioned right after the previous request: pure
      // media transfer, no seek or rotational delay.
      ++stats_.sequential_hits;
    } else {
      const Nanos seek = SeekTime(head_cylinder_, target_cylinder);
      if (seek > 0) {
        ++stats_.seeks;
      }
      // Rotational latency: uniform over a revolution.
      const Nanos rotation =
          static_cast<Nanos>(rng_.NextDouble() * static_cast<double>(revolution_time_));
      service += seek + rotation;
      stats_.total_seek_time += seek;
      stats_.total_rotation_time += rotation;
    }
    const Nanos transfer = TransferTime(req.sector_count);
    service += transfer;
    stats_.total_transfer_time += transfer;

    if (req.kind == IoKind::kRead) {
      // The drive buffers the whole track(s) it just read over, up to the
      // buffer size; a subsequent read inside that range is a buffer hit.
      const uint64_t track_start =
          req.lba / params_.sectors_per_track * params_.sectors_per_track;
      const uint64_t max_buffer_sectors = params_.buffer_bytes / params_.sector_bytes;
      buffer_start_lba_ = track_start;
      buffer_end_lba_ =
          std::min(req.lba + std::max<uint64_t>(req.sector_count, params_.sectors_per_track),
                   track_start + max_buffer_sectors);
    }
  }

  head_cylinder_ = CylinderOf(req.lba + req.sector_count - 1);
  last_end_lba_ = req.lba + req.sector_count;
  has_last_ = true;

  if (req.kind == IoKind::kRead) {
    ++stats_.reads;
    stats_.sectors_read += req.sector_count;
  } else {
    ++stats_.writes;
    stats_.sectors_written += req.sector_count;
    // Writes invalidate any overlapping buffered range.
    if (req.lba < buffer_end_lba_ && req.lba + req.sector_count > buffer_start_lba_) {
      buffer_start_lba_ = buffer_end_lba_ = 0;
    }
  }
  stats_.total_service_time += service;
  return service;
}

void DiskModel::InjectError(uint64_t lba) { error_lbas_.insert(lba); }

void DiskModel::ClearErrors() { error_lbas_.clear(); }

}  // namespace fsbench
