#include "src/sim/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fsbench {

DiskModel::DiskModel(const DiskParams& params, uint64_t seed)
    : DeviceModel(params.capacity / params.sector_bytes), params_(params), rng_(seed) {
  assert(params_.sector_bytes > 0);
  assert(params_.sectors_per_track > 0);
  assert(params_.tracks_per_cylinder > 0);
  assert(params_.rpm > 0);
  sectors_per_cylinder_ =
      static_cast<uint64_t>(params_.sectors_per_track) * params_.tracks_per_cylinder;
  total_cylinders_ = std::max<uint64_t>(1, total_sectors() / sectors_per_cylinder_);
  revolution_time_ = kSecond * 60 / params_.rpm;
}

uint64_t DiskModel::CylinderOf(uint64_t lba) const { return lba / sectors_per_cylinder_; }

Nanos DiskModel::SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const {
  if (from_cylinder == to_cylinder) {
    return 0;
  }
  const uint64_t distance =
      from_cylinder > to_cylinder ? from_cylinder - to_cylinder : to_cylinder - from_cylinder;
  // Average seek corresponds to a one-third-stroke distance; model the curve
  // as sqrt up to that point and cap at the full stroke figure.
  const double d_avg = static_cast<double>(total_cylinders_) / 3.0;
  const double scale = std::sqrt(static_cast<double>(distance) / d_avg);
  const auto base = static_cast<double>(params_.track_to_track_seek);
  const auto span = static_cast<double>(params_.average_seek - params_.track_to_track_seek);
  const Nanos t = static_cast<Nanos>(base + span * scale);
  return std::min(t, params_.full_stroke_seek);
}

Nanos DiskModel::TransferTime(uint32_t sector_count) const {
  // Media rate: one track per revolution.
  const double revs = static_cast<double>(sector_count) / params_.sectors_per_track;
  return static_cast<Nanos>(revs * static_cast<double>(revolution_time_));
}

AccessResult DiskModel::AccessEx(const IoRequest& req, Nanos now) {
  assert(req.sector_count > 0);
  assert(req.lba + req.sector_count <= total_sectors());
  DiskStats& stats = mutable_stats();

  if (IsDead(now)) {
    // The device is gone: the command times out at the controller without
    // any mechanical work (there is no head to move). No RNG draws either,
    // so a killed device consumes nothing from the rotational stream.
    ++stats.errors;
    AccessResult result;
    result.fault = FaultKind::kPersistent;
    result.fail_time = params_.command_overhead + params_.error_recovery_time;
    stats.total_fault_time += result.fail_time;
    has_last_ = false;
    return result;
  }

  // Redirect remapped regions to their spares before any fault check: the
  // damage lives at the original location, the spare serves cleanly.
  bool remapped = false;
  const uint64_t lba = RedirectLba(req.lba, req.sector_count, &remapped);

  const FaultDecision decision = DecideFault(lba, req.sector_count, now, remapped);

  AccessResult result;
  const uint64_t target_cylinder = CylinderOf(lba);

  if (decision.kind != FaultKind::kNone) {
    // The attempt really happened: the head sought, the platter turned, the
    // transfer was attempted before ECC gave up. Charge that time and move
    // the head, but leave the buffer and transfer counters untouched.
    ++stats.errors;
    const Nanos seek = SeekTime(head_cylinder_, target_cylinder);
    if (seek > 0) {
      ++stats.seeks;
    }
    const Nanos rotation =
        static_cast<Nanos>(rng_.NextDouble() * static_cast<double>(revolution_time_));
    stats.total_seek_time += seek;
    stats.total_rotation_time += rotation;
    result.fail_time = params_.command_overhead + seek + rotation +
                       TransferTime(req.sector_count) + params_.error_recovery_time;
    stats.total_fault_time += result.fail_time;
    result.fault = decision.kind;
    head_cylinder_ = target_cylinder;
    has_last_ = false;  // a failed attempt breaks any streaming run
    return result;
  }

  Nanos service = params_.command_overhead;

  const bool buffer_hit = req.kind == IoKind::kRead && buffer_end_lba_ > buffer_start_lba_ &&
                          lba >= buffer_start_lba_ &&
                          lba + req.sector_count <= buffer_end_lba_;
  const bool streaming = has_last_ && lba == last_end_lba_;

  if (buffer_hit) {
    // Served from the on-drive buffer at interface speed; no mechanical work.
    ++stats.buffer_hits;
    const double bytes = static_cast<double>(req.sector_count) * params_.sector_bytes;
    service += static_cast<Nanos>(bytes / static_cast<double>(params_.interface_rate) *
                                  static_cast<double>(kSecond));
  } else {
    if (streaming && target_cylinder == head_cylinder_) {
      // Head is already positioned right after the previous request: pure
      // media transfer, no seek or rotational delay.
      ++stats.sequential_hits;
    } else {
      const Nanos seek = SeekTime(head_cylinder_, target_cylinder);
      if (seek > 0) {
        ++stats.seeks;
      }
      // Rotational latency: uniform over a revolution.
      const Nanos rotation =
          static_cast<Nanos>(rng_.NextDouble() * static_cast<double>(revolution_time_));
      service += seek + rotation;
      stats.total_seek_time += seek;
      stats.total_rotation_time += rotation;
    }
    const Nanos transfer = TransferTime(req.sector_count);
    service += transfer;
    stats.total_transfer_time += transfer;

    if (req.kind == IoKind::kRead) {
      // The drive buffers the whole track(s) it just read over, up to the
      // buffer size; a subsequent read inside that range is a buffer hit.
      const uint64_t track_start = lba / params_.sectors_per_track * params_.sectors_per_track;
      const uint64_t max_buffer_sectors = params_.buffer_bytes / params_.sector_bytes;
      buffer_start_lba_ = track_start;
      buffer_end_lba_ =
          std::min(lba + std::max<uint64_t>(req.sector_count, params_.sectors_per_track),
                   track_start + max_buffer_sectors);
    }
  }

  if (decision.slow) {
    // Slow-I/O fault: the request completes, but internal drive retries /
    // recalibration multiply the whole service time (tail-latency class).
    service = static_cast<Nanos>(static_cast<double>(service) * decision.slow_multiplier);
    result.slow = true;
  }

  head_cylinder_ = CylinderOf(lba + req.sector_count - 1);
  last_end_lba_ = lba + req.sector_count;
  has_last_ = true;

  if (req.kind == IoKind::kRead) {
    ++stats.reads;
    stats.sectors_read += req.sector_count;
  } else {
    ++stats.writes;
    stats.sectors_written += req.sector_count;
    // Writes invalidate any overlapping buffered range.
    if (lba < buffer_end_lba_ && lba + req.sector_count > buffer_start_lba_) {
      buffer_start_lba_ = buffer_end_lba_ = 0;
    }
  }
  stats.total_service_time += service;
  result.service = service;
  return result;
}

}  // namespace fsbench
