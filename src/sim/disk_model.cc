#include "src/sim/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fsbench {

DiskModel::DiskModel(const DiskParams& params, uint64_t seed) : params_(params), rng_(seed) {
  assert(params_.sector_bytes > 0);
  assert(params_.sectors_per_track > 0);
  assert(params_.tracks_per_cylinder > 0);
  assert(params_.rpm > 0);
  total_sectors_ = params_.capacity / params_.sector_bytes;
  sectors_per_cylinder_ =
      static_cast<uint64_t>(params_.sectors_per_track) * params_.tracks_per_cylinder;
  total_cylinders_ = std::max<uint64_t>(1, total_sectors_ / sectors_per_cylinder_);
  revolution_time_ = kSecond * 60 / params_.rpm;
}

void DiskModel::EnableFaults(const FaultPlanConfig& config, uint64_t seed) {
  fault_plan_.emplace(config, seed);
  ConfigureSpares(config.region_sectors, config.spare_regions);
}

void DiskModel::ConfigureSpares(uint64_t region_sectors, uint64_t spare_regions) {
  region_sectors_ = region_sectors;
  spare_regions_ = spare_regions;
  assert(region_sectors_ > 0);
  assert(spare_regions_ * region_sectors_ < total_sectors_);
}

bool DiskModel::IsDead(Nanos now) {
  if (dead_latched_) {
    return true;
  }
  if (fault_plan_ && fault_plan_->DeviceDeadAt(now)) {
    dead_latched_ = true;
  }
  return dead_latched_;
}

void DiskModel::StartFaultClock(Nanos origin) {
  if (fault_plan_.has_value()) {
    fault_plan_->StartClock(origin);
  }
}

bool DiskModel::RegionLatentBad(uint64_t lba, Nanos now) const {
  const uint64_t region = lba / region_sectors_;
  if (remap_.count(region) != 0) {
    return false;  // already repaired into the spare pool
  }
  if (fault_plan_ && fault_plan_->RegionIsBad(lba, now)) {
    return true;
  }
  const uint64_t region_start = region * region_sectors_;
  const uint64_t span = std::min(region_sectors_, total_sectors_ - region_start);
  return OverlapsInjectedError(region_start, static_cast<uint32_t>(span));
}

uint64_t DiskModel::CylinderOf(uint64_t lba) const { return lba / sectors_per_cylinder_; }

Nanos DiskModel::SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const {
  if (from_cylinder == to_cylinder) {
    return 0;
  }
  const uint64_t distance =
      from_cylinder > to_cylinder ? from_cylinder - to_cylinder : to_cylinder - from_cylinder;
  // Average seek corresponds to a one-third-stroke distance; model the curve
  // as sqrt up to that point and cap at the full stroke figure.
  const double d_avg = static_cast<double>(total_cylinders_) / 3.0;
  const double scale = std::sqrt(static_cast<double>(distance) / d_avg);
  const auto base = static_cast<double>(params_.track_to_track_seek);
  const auto span = static_cast<double>(params_.average_seek - params_.track_to_track_seek);
  const Nanos t = static_cast<Nanos>(base + span * scale);
  return std::min(t, params_.full_stroke_seek);
}

Nanos DiskModel::TransferTime(uint32_t sector_count) const {
  // Media rate: one track per revolution.
  const double revs = static_cast<double>(sector_count) / params_.sectors_per_track;
  return static_cast<Nanos>(revs * static_cast<double>(revolution_time_));
}

bool DiskModel::OverlapsInjectedError(uint64_t lba, uint32_t sector_count) const {
  if (error_extents_.empty()) {
    return false;
  }
  // Extents starting at or after lba + sector_count cannot overlap; extents
  // starting more than max_error_extent_ sectors before lba cannot reach it.
  const uint64_t scan_from = lba >= max_error_extent_ ? lba - max_error_extent_ + 1 : 0;
  for (auto it = error_extents_.lower_bound(scan_from);
       it != error_extents_.end() && it->first < lba + sector_count; ++it) {
    if (it->first + it->second > lba) {
      return true;
    }
  }
  return false;
}

std::optional<Nanos> DiskModel::Access(const IoRequest& req) {
  return AccessEx(req, 0).service;
}

AccessResult DiskModel::AccessEx(const IoRequest& req, Nanos now) {
  assert(req.sector_count > 0);
  assert(req.lba + req.sector_count <= total_sectors_);

  if (IsDead(now)) {
    // The device is gone: the command times out at the controller without
    // any mechanical work (there is no head to move). No RNG draws either,
    // so a killed device consumes nothing from the rotational stream.
    ++stats_.errors;
    AccessResult result;
    result.fault = FaultKind::kPersistent;
    result.fail_time = params_.command_overhead + params_.error_recovery_time;
    stats_.total_fault_time += result.fail_time;
    has_last_ = false;
    return result;
  }

  // Redirect remapped regions to their spares before any fault check: the
  // damage lives at the original location, the spare serves cleanly.
  uint64_t lba = req.lba;
  bool remapped = false;
  if (!remap_.empty()) {
    const auto it = remap_.find(req.lba / region_sectors_);
    if (it != remap_.end()) {
      lba = it->second + req.lba % region_sectors_;
      remapped = true;
      if (lba + req.sector_count > total_sectors_) {
        // A request straddling the end of the last spare: clamp (pure timing
        // model, no data lives at these addresses).
        lba = total_sectors_ - req.sector_count;
      }
    }
  }

  FaultDecision decision;
  if (fault_plan_) {
    decision = fault_plan_->Evaluate(lba, now, remapped);
  }
  if (decision.kind == FaultKind::kNone && OverlapsInjectedError(lba, req.sector_count)) {
    // Legacy injected extents behave like persistent media damage.
    decision.kind = FaultKind::kPersistent;
  }

  AccessResult result;
  const uint64_t target_cylinder = CylinderOf(lba);

  if (decision.kind != FaultKind::kNone) {
    // The attempt really happened: the head sought, the platter turned, the
    // transfer was attempted before ECC gave up. Charge that time and move
    // the head, but leave the buffer and transfer counters untouched.
    ++stats_.errors;
    const Nanos seek = SeekTime(head_cylinder_, target_cylinder);
    if (seek > 0) {
      ++stats_.seeks;
    }
    const Nanos rotation =
        static_cast<Nanos>(rng_.NextDouble() * static_cast<double>(revolution_time_));
    stats_.total_seek_time += seek;
    stats_.total_rotation_time += rotation;
    result.fail_time = params_.command_overhead + seek + rotation +
                       TransferTime(req.sector_count) + params_.error_recovery_time;
    stats_.total_fault_time += result.fail_time;
    result.fault = decision.kind;
    head_cylinder_ = target_cylinder;
    has_last_ = false;  // a failed attempt breaks any streaming run
    return result;
  }

  Nanos service = params_.command_overhead;

  const bool buffer_hit = req.kind == IoKind::kRead && buffer_end_lba_ > buffer_start_lba_ &&
                          lba >= buffer_start_lba_ &&
                          lba + req.sector_count <= buffer_end_lba_;
  const bool streaming = has_last_ && lba == last_end_lba_;

  if (buffer_hit) {
    // Served from the on-drive buffer at interface speed; no mechanical work.
    ++stats_.buffer_hits;
    const double bytes = static_cast<double>(req.sector_count) * params_.sector_bytes;
    service += static_cast<Nanos>(bytes / static_cast<double>(params_.interface_rate) *
                                  static_cast<double>(kSecond));
  } else {
    if (streaming && target_cylinder == head_cylinder_) {
      // Head is already positioned right after the previous request: pure
      // media transfer, no seek or rotational delay.
      ++stats_.sequential_hits;
    } else {
      const Nanos seek = SeekTime(head_cylinder_, target_cylinder);
      if (seek > 0) {
        ++stats_.seeks;
      }
      // Rotational latency: uniform over a revolution.
      const Nanos rotation =
          static_cast<Nanos>(rng_.NextDouble() * static_cast<double>(revolution_time_));
      service += seek + rotation;
      stats_.total_seek_time += seek;
      stats_.total_rotation_time += rotation;
    }
    const Nanos transfer = TransferTime(req.sector_count);
    service += transfer;
    stats_.total_transfer_time += transfer;

    if (req.kind == IoKind::kRead) {
      // The drive buffers the whole track(s) it just read over, up to the
      // buffer size; a subsequent read inside that range is a buffer hit.
      const uint64_t track_start = lba / params_.sectors_per_track * params_.sectors_per_track;
      const uint64_t max_buffer_sectors = params_.buffer_bytes / params_.sector_bytes;
      buffer_start_lba_ = track_start;
      buffer_end_lba_ =
          std::min(lba + std::max<uint64_t>(req.sector_count, params_.sectors_per_track),
                   track_start + max_buffer_sectors);
    }
  }

  if (decision.slow) {
    // Slow-I/O fault: the request completes, but internal drive retries /
    // recalibration multiply the whole service time (tail-latency class).
    service = static_cast<Nanos>(static_cast<double>(service) * decision.slow_multiplier);
    result.slow = true;
  }

  head_cylinder_ = CylinderOf(lba + req.sector_count - 1);
  last_end_lba_ = lba + req.sector_count;
  has_last_ = true;

  if (req.kind == IoKind::kRead) {
    ++stats_.reads;
    stats_.sectors_read += req.sector_count;
  } else {
    ++stats_.writes;
    stats_.sectors_written += req.sector_count;
    // Writes invalidate any overlapping buffered range.
    if (lba < buffer_end_lba_ && lba + req.sector_count > buffer_start_lba_) {
      buffer_start_lba_ = buffer_end_lba_ = 0;
    }
  }
  stats_.total_service_time += service;
  result.service = service;
  return result;
}

void DiskModel::InjectError(uint64_t lba, uint32_t sector_count) {
  assert(sector_count > 0);
  uint64_t& span = error_extents_[lba];
  span = std::max<uint64_t>(span, sector_count);
  max_error_extent_ = std::max(max_error_extent_, sector_count);
}

void DiskModel::ClearErrors() {
  error_extents_.clear();
  max_error_extent_ = 0;
}

bool DiskModel::RemapRegion(uint64_t lba) {
  if (dead_latched_) {
    return false;  // nothing to remap to: the whole device is gone
  }
  const uint64_t region = lba / region_sectors_;
  if (remap_.count(region) != 0) {
    return true;
  }
  if (remap_.size() >= spare_regions_) {
    return false;  // spares exhausted: the fault surfaces as EIO
  }
  // Spares are distributed across the LBA space (one slot at the end of each
  // of spare_regions_ equal slices), like real drives' per-zone spare
  // tracks: a remapped region keeps seeking near its original neighborhood
  // instead of paying a full stroke to a pool at the top of the disk. The
  // slot nearest the bad region wins; ties and collisions probe outward
  // deterministically.
  const uint64_t slice = total_sectors_ / spare_regions_;
  const uint64_t preferred = std::min(lba / slice, spare_regions_ - 1);
  uint64_t slot = spare_regions_;
  uint64_t best_distance = ~0ULL;
  for (uint64_t s = 0; s < spare_regions_; ++s) {
    if (spare_slots_used_.count(s) != 0) {
      continue;
    }
    const uint64_t distance = s > preferred ? s - preferred : preferred - s;
    if (distance < best_distance) {
      best_distance = distance;
      slot = s;
    }
  }
  spare_slots_used_.insert(slot);
  const uint64_t spare_start = (slot + 1) * slice - region_sectors_;
  remap_.emplace(region, spare_start);
  return true;
}

}  // namespace fsbench
