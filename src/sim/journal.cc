#include "src/sim/journal.h"

#include <algorithm>

namespace fsbench {

Nanos Journal::CommitToLog(TxnLog& log, VirtualClock* clock, bool sync) {
  const uint64_t logged = log.pending_blocks();
  if (aborted_ || logged == 0) {
    return clock->now();
  }
  const Nanos completion = log.Commit(sync);
  stats_.blocks_logged += logged;
  ++stats_.commits;
  last_commit_time_ = std::max(last_commit_time_, clock->now());
  return completion;
}

// --- JbdJournal --------------------------------------------------------------

JbdJournal::JbdJournal(BlockIo* io, VirtualClock* clock, Extent region,
                       const JournalConfig& config)
    : Journal(config),
      clock_(clock),
      log_(io, clock, region,
           TxnLogConfig{config.block_sectors, config.checkpoint_threshold}) {}

void JbdJournal::MaybePeriodicCommit() {
  if (clock_->now() - last_commit_time_ >= config_.commit_interval) {
    CommitToLog(log_, clock_, /*sync=*/false);
  }
}

Nanos JbdJournal::CommitSync() {
  ++stats_.sync_commits;
  return CommitToLog(log_, clock_, /*sync=*/true);
}

// --- CilJournal --------------------------------------------------------------

CilJournal::CilJournal(BlockIo* io, VirtualClock* clock, Extent region,
                       const JournalConfig& config)
    : Journal(config),
      clock_(clock),
      log_(io, clock, region,
           TxnLogConfig{config.block_sectors, config.checkpoint_threshold}) {}

void CilJournal::LogMetadata(const MetaRef& ref) {
  if (aborted_) {
    return;  // the CIL of an aborted journal is frozen
  }
  ++stats_.cil_inserts;
  if (cil_set_.insert(ref.block).second) {
    cil_.push_back(ref);
  }
  if (config_.cil_push_blocks != 0 && cil_.size() >= config_.cil_push_blocks) {
    Push(/*sync=*/false);
  }
}

Nanos CilJournal::Push(bool sync) {
  if (!cil_.empty()) {
    ++stats_.cil_pushes;
    for (const MetaRef& ref : cil_) {
      log_.Add(ref);
    }
    cil_.clear();
    cil_set_.clear();
  }
  return CommitToLog(log_, clock_, sync);
}

void CilJournal::MaybePeriodicCommit() {
  if (clock_->now() - last_commit_time_ >= config_.commit_interval) {
    Push(/*sync=*/false);
  }
}

Nanos CilJournal::CommitSync() {
  ++stats_.sync_commits;
  return Push(/*sync=*/true);
}

}  // namespace fsbench
