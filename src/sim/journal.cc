#include "src/sim/journal.h"

#include <cassert>

namespace fsbench {

Journal::Journal(IoScheduler* scheduler, VirtualClock* clock, Extent region,
                 const JournalConfig& config)
    : scheduler_(scheduler), clock_(clock), region_(region), config_(config) {
  assert(region_.count > 0);
}

void Journal::LogMetadataBlock(BlockId block) { current_tx_.insert(block); }

void Journal::LogDataBlock(BlockId block) {
  if (config_.mode == JournalMode::kJournaled) {
    current_tx_.insert(block);
  }
}

Nanos Journal::WriteTransaction(bool sync) {
  if (current_tx_.empty()) {
    return clock_->now();
  }
  // Descriptor block + logged blocks + commit record, written sequentially
  // at the journal head (wrapping). Sequential writes are nearly free on the
  // disk model, as on real hardware.
  const uint64_t blocks_to_write = current_tx_.size() + 2;
  Nanos completion = clock_->now();
  for (uint64_t i = 0; i < blocks_to_write; ++i) {
    const uint64_t offset = (head_block_ + i) % region_.count;
    const IoRequest req{IoKind::kWrite, (region_.start + offset) * config_.block_sectors,
                        config_.block_sectors};
    if (sync && i + 1 == blocks_to_write) {
      // Only the commit record is waited on.
      if (const auto done = scheduler_->SubmitSync(req, clock_->now()); done.has_value()) {
        completion = *done;
      }
    } else {
      scheduler_->SubmitAsync(req, clock_->now());
    }
  }
  head_block_ = (head_block_ + blocks_to_write) % region_.count;
  stats_.blocks_logged += current_tx_.size();
  ++stats_.commits;
  current_tx_.clear();
  last_commit_time_ = clock_->now();
  return completion;
}

void Journal::MaybePeriodicCommit() {
  if (clock_->now() - last_commit_time_ >= config_.commit_interval) {
    WriteTransaction(/*sync=*/false);
  }
}

Nanos Journal::CommitSync() {
  ++stats_.sync_commits;
  return WriteTransaction(/*sync=*/true);
}

}  // namespace fsbench
