#include "src/sim/ext2fs.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

Ext2Fs::Ext2Fs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock)
    : FileSystem(device_capacity, params, clock) {}

uint32_t Ext2Fs::IndirectSlotsInto(uint64_t page, uint64_t* slots) const {
  const uint64_t ptrs = pointers_per_block();
  const uint64_t direct = direct_pages();
  if (page < direct) {
    return 0;
  }
  page -= direct;
  if (page < ptrs) {
    // Single indirect root.
    slots[0] = 0;
    return 1;
  }
  page -= ptrs;
  if (page < ptrs * ptrs) {
    // Double indirect: root at slot 1, leaves at 2..(1+ptrs).
    slots[0] = 1;
    slots[1] = 2 + page / ptrs;
    return 2;
  }
  page -= ptrs * ptrs;
  // Triple indirect: root, mid, leaf. Slot layout reserves the double-leaf
  // range [2, 2+ptrs) first.
  const uint64_t triple_base = 2 + ptrs;
  const uint64_t mid = page / (ptrs * ptrs);
  const uint64_t leaf = (page % (ptrs * ptrs)) / ptrs;
  slots[0] = triple_base;                                 // triple root
  slots[1] = triple_base + 1 + mid;                       // mid node
  slots[2] = triple_base + 1 + ptrs + mid * ptrs + leaf;  // leaf node
  return 3;
}

void Ext2Fs::IndirectSlotsFor(uint64_t page, std::vector<uint64_t>* slots) const {
  uint64_t chain[kMaxIndirectDepth];
  const uint32_t depth = IndirectSlotsInto(page, chain);
  slots->insert(slots->end(), chain, chain + depth);
}

void Ext2Fs::ChargeDirLookup(const Inode& dir_inode, const Directory& dir, std::string_view name,
                             std::optional<uint64_t> slot, MetaIo* io) {
  (void)name;
  // Same shared cost model as the base implementation, but the mapper is
  // the final Ext2Fs::MapPageFor, so it resolves statically and inlines
  // into the scan — this runs once per path component.
  ChargeLinearDirScan(dir_inode, dir, slot, io,
                      [this](const Inode& inode, uint64_t page, MetaIo* out) {
                        return Ext2Fs::MapPageFor(inode, page, out);
                      });
}

FsResult<BlockId> Ext2Fs::MapPageFor(const Inode& inode, uint64_t page_index, MetaIo* io) {
  if (page_index >= inode.block_map.size() || inode.block_map[page_index] == kInvalidBlock) {
    return FsResult<BlockId>::Ok(kInvalidBlock);  // hole
  }
  io->AddMetaRead(inode.itable_block);
  uint64_t slots[kMaxIndirectDepth];
  const uint32_t depth = IndirectSlotsInto(page_index, slots);
  for (uint32_t i = 0; i < depth; ++i) {
    assert(slots[i] < inode.indirect_blocks.size());
    io->AddMetaRead(inode.indirect_blocks[slots[i]]);
  }
  return FsResult<BlockId>::Ok(inode.block_map[page_index]);
}

BlockId Ext2Fs::DataGoal(const Inode& inode, uint64_t page) const {
  if (page > 0 && page - 1 < inode.block_map.size() &&
      inode.block_map[page - 1] != kInvalidBlock) {
    return inode.block_map[page - 1] + 1;
  }
  // Last mapped block anywhere, else the inode's group.
  for (auto it = inode.block_map.rbegin(); it != inode.block_map.rend(); ++it) {
    if (*it != kInvalidBlock) {
      return *it + 1;
    }
  }
  return GroupDataStart(inode.group);
}

FsStatus Ext2Fs::EnsureIndirectChain(Inode& inode, uint64_t page, MetaIo* io) {
  uint64_t chain[kMaxIndirectDepth];
  const uint32_t depth = IndirectSlotsInto(page, chain);
  for (uint32_t i = 0; i < depth; ++i) {
    const uint64_t slot = chain[i];
    if (slot >= inode.indirect_blocks.size()) {
      inode.indirect_blocks.resize(slot + 1, kInvalidBlock);
    }
    if (inode.indirect_blocks[slot] == kInvalidBlock) {
      const std::optional<BlockId> block = alloc_.AllocateBlock(DataGoal(inode, page));
      if (!block.has_value()) {
        return FsStatus::kNoSpace;
      }
      inode.indirect_blocks[slot] = *block;
      ++inode.allocated_blocks;
      io->AddMetaWrite(*block);
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(*block)));
    } else {
      // Updating a deeper level dirties the parent node too.
      io->AddMetaWrite(inode.indirect_blocks[slot]);
    }
  }
  return FsStatus::kOk;
}

FsResult<BlockId> Ext2Fs::AllocatePageFor(Inode& inode, uint64_t page_index, MetaIo* io) {
  if (page_index < inode.block_map.size() && inode.block_map[page_index] != kInvalidBlock) {
    return FsResult<BlockId>::Ok(inode.block_map[page_index]);
  }
  const FsStatus chain = EnsureIndirectChain(inode, page_index, io);
  if (chain != FsStatus::kOk) {
    return FsResult<BlockId>::Error(chain);
  }
  const std::optional<BlockId> block = alloc_.AllocateBlock(DataGoal(inode, page_index));
  if (!block.has_value()) {
    return FsResult<BlockId>::Error(FsStatus::kNoSpace);
  }
  if (page_index >= inode.block_map.size()) {
    inode.block_map.resize(page_index + 1, kInvalidBlock);
  }
  inode.block_map[page_index] = *block;
  ++inode.allocated_blocks;
  io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(*block)));
  io->AddMetaWrite(inode.itable_block);
  return FsResult<BlockId>::Ok(*block);
}

void Ext2Fs::FreeAllBlocks(Inode& inode, MetaIo* io) {
  for (BlockId block : inode.block_map) {
    if (block != kInvalidBlock) {
      alloc_.Free(Extent{block, 1});
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(block)));
    }
  }
  for (BlockId block : inode.indirect_blocks) {
    if (block != kInvalidBlock) {
      alloc_.Free(Extent{block, 1});
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(block)));
      io->invalidations.push_back({kMetaInode, block, block});
    }
  }
  inode.block_map.clear();
  inode.indirect_blocks.clear();
  inode.allocated_blocks = 0;
}

void Ext2Fs::FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) {
  // Frees data blocks past the new end. Indirect blocks are kept (and stay
  // accounted in allocated_blocks) — a simplification relative to real
  // ext2, which prunes empty indirect blocks.
  for (uint64_t page = first_page; page < inode.block_map.size(); ++page) {
    const BlockId block = inode.block_map[page];
    if (block != kInvalidBlock) {
      alloc_.Free(Extent{block, 1});
      --inode.allocated_blocks;
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(block)));
      io->invalidations.push_back({inode.ino, page, block});
    }
  }
  if (first_page < inode.block_map.size()) {
    inode.block_map.resize(first_page);
  }
}

void Ext2Fs::AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const {
  for (BlockId block : inode.block_map) {
    if (block != kInvalidBlock) {
      blocks->push_back(block);
    }
  }
  for (BlockId block : inode.indirect_blocks) {
    if (block != kInvalidBlock) {
      blocks->push_back(block);
    }
  }
}

}  // namespace fsbench
