// XFS-like file system: extent-mapped inodes with chunked contiguous
// allocation (a cheap stand-in for delayed allocation), btree directories
// whose lookup cost is logarithmic rather than linear, and aggressive
// readahead. Journal I/O is modeled through the delayed-logging adapter
// (CilJournal over the generic transaction log): meta-data deltas batch in
// an in-memory CIL and hit the reserved log region only when the CIL is
// pushed, so metadata-churn workloads see far fewer log writes than ext3's
// per-interval JBD commits.
#ifndef SRC_SIM_XFSFS_H_
#define SRC_SIM_XFSFS_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/sim/filesystem.h"

namespace fsbench {

class XfsFs : public FileSystem {
 public:
  // Reserves `log_blocks` file-system blocks for the on-disk log.
  XfsFs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock,
        uint64_t log_blocks = 8192);

  const char* name() const override { return "xfs"; }
  FsKind kind() const override { return FsKind::kXfs; }

  const Extent& journal_region() const { return journal_region_; }

  ReadaheadConfig readahead_config() const override {
    // Aggressive: larger sequential window and a bigger read-around cluster.
    return ReadaheadConfig{ReadaheadKind::kAdaptive, /*fixed_pages=*/16, /*min_window=*/8,
                           /*max_window=*/64, /*random_cluster=*/6};
  }

  Nanos per_op_cpu_overhead() const override { return 1 * kMicrosecond; }

  // XFS shuts down the filesystem on log I/O errors (xfs_force_shutdown);
  // modeled as the same remount-read-only degraded mode.
  bool RemountRoOnWriteError() const override { return true; }

  // Extents held inline in the inode before the btree kicks in.
  static constexpr size_t kInlineExtents = 4;
  // Extent records per btree node block.
  static constexpr size_t kExtentsPerNode = 128;
  // Max blocks allocated per extent grab (chunked allocation).
  static constexpr uint64_t kAllocChunk = 16;

 protected:
  FsResult<BlockId> MapPageFor(const Inode& inode, uint64_t page_index, MetaIo* io) override;
  FsResult<BlockId> AllocatePageFor(Inode& inode, uint64_t page_index, MetaIo* io) override;
  void ChargeDirLookup(const Inode& dir_inode, const Directory& dir, std::string_view name,
                       std::optional<uint64_t> slot, MetaIo* io) override;
  void FreeAllBlocks(Inode& inode, MetaIo* io) override;
  void FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) override;
  void AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const override;

 private:
  // Index into inode.extents of the extent containing `page`, if any.
  static std::optional<size_t> FindExtent(const Inode& inode, uint64_t page);

  // Ensures btree node blocks exist for the current extent count.
  FsStatus EnsureExtentNodes(Inode& inode, MetaIo* io);

  Extent journal_region_;
};

}  // namespace fsbench

#endif  // SRC_SIM_XFSFS_H_
