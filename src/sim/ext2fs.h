// Ext2-like file system: block-mapped inodes (12 direct pointers, then
// single/double/triple indirect blocks), goal-directed block allocation
// inside the parent's block group, linear directory scans, no journal,
// conservative readahead.
#ifndef SRC_SIM_EXT2FS_H_
#define SRC_SIM_EXT2FS_H_

#include <string>
#include <vector>

#include "src/sim/filesystem.h"

namespace fsbench {

class Ext2Fs : public FileSystem {
 public:
  Ext2Fs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock);

  const char* name() const override { return "ext2"; }
  FsKind kind() const override { return FsKind::kExt2; }

  ReadaheadConfig readahead_config() const override {
    // Modest read-around cluster; Linux-style ramping window on sequential.
    return ReadaheadConfig{ReadaheadKind::kAdaptive, /*fixed_pages=*/8, /*min_window=*/4,
                           /*max_window=*/32, /*random_cluster=*/2};
  }

  // errors=continue: with no journal there is no atomicity to protect, so a
  // lost metadata write is counted and the file system soldiers on.
  bool RemountRoOnWriteError() const override { return false; }

  // Indirect-block slot numbering for `page`, appended to `slots`. Slot
  // indices address Inode::indirect_blocks; exposed for tests.
  void IndirectSlotsFor(uint64_t page, std::vector<uint64_t>* slots) const;

  // Deepest possible indirect chain: single, double root+leaf, triple
  // root+mid+leaf.
  static constexpr uint32_t kMaxIndirectDepth = 3;

  // Allocation-free variant for the hot mapping path: fills `slots` (at
  // least kMaxIndirectDepth entries) and returns the chain depth.
  uint32_t IndirectSlotsInto(uint64_t page, uint64_t* slots) const;

 protected:
  // `final` so the directory-scan override below (and anything else in this
  // translation-unit family) can call it without virtual dispatch.
  FsResult<BlockId> MapPageFor(const Inode& inode, uint64_t page_index, MetaIo* io) final;
  FsResult<BlockId> AllocatePageFor(Inode& inode, uint64_t page_index, MetaIo* io) override;
  // Same linear-scan cost model as the base implementation, but with the
  // per-block MapPageFor call devirtualized — this runs once per path
  // component, the hottest loop in the simulator.
  void ChargeDirLookup(const Inode& dir_inode, const Directory& dir, std::string_view name,
                       std::optional<uint64_t> slot, MetaIo* io) override;
  void FreeAllBlocks(Inode& inode, MetaIo* io) override;
  void FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) override;
  void AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const override;

  // Allocation goal for the next data block of `inode` at `page`.
  BlockId DataGoal(const Inode& inode, uint64_t page) const;

  // Ensures the indirect chain for `page` exists; charges meta writes.
  FsStatus EnsureIndirectChain(Inode& inode, uint64_t page, MetaIo* io);

  uint64_t pointers_per_block() const { return params_.block_size / 4; }
  uint64_t direct_pages() const { return 12; }
};

}  // namespace fsbench

#endif  // SRC_SIM_EXT2FS_H_
