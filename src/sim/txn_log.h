// Generic write-ahead transaction log with checkpointing.
//
// This is the mechanism layer under every journaled file system in the
// simulator: an on-disk circular region, an explicit transaction lifecycle
// (open transaction -> logged blocks in insertion order -> descriptor +
// commit record written sequentially at the head), and real log-space
// accounting. Space held by a committed transaction is reclaimed only after
// its home-location blocks have been written back (checkpointing); when the
// region fills before checkpointing catches up, the committing caller
// *stalls* until forced checkpoint writeback completes — the ext3 fsync
// cliff the paper's latency dimension is about.
//
// Clients (JbdJournal for ext3, CilJournal for the XFS delayed-logging
// adapter — see journal.h) own policy: what joins a transaction and when
// commits happen. The log itself also keeps the bookkeeping crash recovery
// needs: per-transaction home references, the log extent each commit
// occupied, the commit record's block, and an operation watermark, so a
// crash injected at any virtual time can be resolved into "replay these
// committed-but-uncheckpointed transactions, discard that torn tail"
// (see recovery.h).
#ifndef SRC_SIM_TXN_LOG_H_
#define SRC_SIM_TXN_LOG_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/types.h"

namespace fsbench {

struct TxnLogConfig {
  uint32_t block_sectors = 8;  // log block size in sectors (4 KiB)
  // Background checkpoint writeback is requested when the log is more than
  // this fraction full (JBD's "start flushing before you hit the wall").
  double checkpoint_threshold = 0.75;
};

struct TxnLogStats {
  uint64_t commits = 0;
  uint64_t blocks_logged = 0;        // home blocks copied into the log
  uint64_t reclaimed_txns = 0;       // transactions whose log space was freed
  uint64_t forced_checkpoints = 0;   // checkpoints that blocked a commit
  uint64_t background_checkpoints = 0;  // threshold-triggered async requests
  uint64_t checkpoint_writes = 0;    // home writes submitted by checkpoints
  uint64_t log_stalls = 0;           // commits that waited for log space
  Nanos stall_time = 0;              // virtual time spent in those waits
  uint64_t split_commits = 0;        // oversized transactions chunked
  uint64_t max_used_blocks = 0;      // high-water mark of log occupancy
};

// Checkpoint writeback provider, implemented by the VFS: writes back the
// cache page behind each ref if it is still dirty (asynchronously, at `now`).
// Returns the number of pages actually submitted. Pages already clean,
// evicted or invalidated cost nothing — their current content is on disk or
// moot, which is exactly real JBD checkpointing (it waits for buffer
// writeback rather than re-writing buffers itself).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual size_t WritebackForCheckpoint(const MetaRef* refs, size_t count, Nanos now) = 0;
};

class TxnLog {
 public:
  // `region` is the reserved on-disk area, in blocks of block_sectors.
  TxnLog(BlockIo* io, VirtualClock* clock, Extent region,
         const TxnLogConfig& config);

  // Rebinds the clock "now" is read from (per-thread cursor under the MT
  // engine, via Journal::BindClock).
  void BindClock(VirtualClock* clock) { clock_ = clock; }
  void set_checkpoint_sink(CheckpointSink* sink) { sink_ = sink; }

  // --- Transaction lifecycle ---

  // Adds a home-block reference to the running transaction; duplicates
  // within the transaction coalesce (one log copy per block per commit).
  void Add(const MetaRef& ref);

  // Commits the running transaction: descriptor + logged blocks + commit
  // record written sequentially at the head. `sync` waits for the commit
  // record to reach the platter and returns its completion time (otherwise
  // returns the caller's current time). Stalls first — advancing the bound
  // clock — if the log lacks space and checkpointing must be forced. An
  // empty transaction is free and writes nothing.
  Nanos Commit(bool sync);

  // Aborts the log (errors=remount-ro path): Add and Commit become no-ops.
  // Deliberately sets a flag and nothing else — the abort fires re-entrantly
  // from the write-error sink *inside* a commit's own failed log write, so
  // mutating current_tx_/records_ here would pull state out from under the
  // committing frame.
  void Abort() { aborted_ = true; }
  bool aborted() const { return aborted_; }

  // --- Checkpoint coupling ---

  // The VFS reports every home block that no longer needs checkpointing:
  // its page was written back to its home location, or the block was freed
  // (unlink, truncate — JBD's revoke records play this role) and its
  // logged content is moot. A committed transaction whose home blocks have
  // all been reported since its commit no longer needs the log, and its
  // tail space is reclaimed lazily.
  void NoteHomeWrite(BlockId block) { home_write_event_[block] = ++event_counter_; }

  // --- Crash-recovery bookkeeping ---

  // Operation watermark for the running transaction: all workload operations
  // with index <= `op` have fully logged their updates. Set by the engine at
  // operation boundaries when crash tracking is on; a commit that happens
  // mid-operation inherits the last boundary (never overstating coverage).
  void SetOpWatermark(uint64_t op) { op_watermark_ = op; }

  // Keep full per-transaction records (including home refs of checkpointed
  // transactions) so a crash can be resolved later. Off by default: without
  // it, records are dropped as their space is reclaimed.
  void set_retain_history(bool retain) { retain_history_ = retain; }

  // One committed transaction, in commit order.
  struct TxnRecord {
    uint64_t log_start = 0;   // offset of the descriptor within the region
    uint64_t log_blocks = 0;  // descriptor + home copies + commit record
    BlockId commit_block = kInvalidBlock;  // device block of the commit record
    uint64_t watermark = 0;   // ops fully covered by this commit
    uint64_t commit_event = 0;
    bool checkpointed = false;
    std::vector<MetaRef> home;  // home-location targets, insertion order
    size_t clean_prefix = 0;    // home[0..clean_prefix) confirmed written back
  };

  // Committed transactions not yet dropped: in crash-tracking mode the full
  // history, otherwise only live (un-checkpointed) ones.
  const std::deque<TxnRecord>& records() const { return records_; }

  // --- Introspection ---

  size_t pending_blocks() const { return current_tx_.size(); }
  uint64_t used_blocks() const { return used_blocks_; }
  uint64_t capacity_blocks() const { return region_.count; }
  const Extent& region() const { return region_; }
  const TxnLogConfig& config() const { return config_; }
  const TxnLogStats& stats() const { return stats_; }

 private:
  // Releases the oldest live transaction's log space and marks it
  // checkpointed (record dropped unless history is retained).
  void ReclaimFront();

  // Frees the space of leading transactions whose home blocks have all been
  // written back since they committed.
  void ReclaimCleanTail();

  // True once every home block of `txn` has a home write event newer than
  // the commit; resumes scanning where the last call stopped.
  bool TxnIsClean(TxnRecord& txn);

  // Makes room for a transaction needing `blocks` log blocks, forcing
  // checkpoint writeback (and stalling the bound clock) if reclaim alone is
  // not enough. `blocks` must be <= capacity.
  void EnsureSpace(uint64_t blocks);

  // Writes one committed chunk (descriptor + `count` home copies + commit
  // record) at the head. Returns the commit record's completion for sync.
  Nanos WriteChunk(const MetaRef* refs, uint64_t count, bool sync);

  BlockIo* io_;
  VirtualClock* clock_;
  Extent region_;
  TxnLogConfig config_;
  CheckpointSink* sink_ = nullptr;

  uint64_t head_block_ = 0;   // next write offset within the region, wraps
  uint64_t used_blocks_ = 0;  // blocks held by live transactions
  size_t live_begin_ = 0;     // first un-checkpointed record in records_

  // Determinism audit (detlint R1): current_set_ and home_write_event_ are
  // lookup/insert-only — never iterated. Everything order-bearing (the log
  // itself, commit records) lives in current_tx_/records_, which keep
  // insertion order.
  std::vector<MetaRef> current_tx_;           // insertion order
  std::unordered_set<BlockId> current_set_;   // dedup within the transaction

  // Monotone event counter ordering commits against home writebacks; clock
  // cursors are not monotone across threads, events are.
  uint64_t event_counter_ = 0;
  std::unordered_map<BlockId, uint64_t> home_write_event_;

  uint64_t op_watermark_ = 0;
  bool aborted_ = false;
  bool retain_history_ = false;
  std::deque<TxnRecord> records_;
  TxnLogStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_TXN_LOG_H_
