#include "src/sim/readahead.h"

#include <algorithm>

namespace fsbench {

uint32_t ReadaheadPolicy::OnAccess(ReadaheadState& state, uint64_t index) const {
  const bool sequential = state.last_index != ~0ULL && index == state.last_index + 1;
  state.last_index = index;

  switch (config_.kind) {
    case ReadaheadKind::kNone:
      return 0;
    case ReadaheadKind::kFixed:
      return config_.fixed_pages;
    case ReadaheadKind::kAdaptive:
      break;
  }

  if (sequential) {
    ++state.streak;
    if (state.streak >= 2) {
      // Ramp: start at min_window, double up to max_window.
      state.window = state.window == 0
                         ? config_.min_window
                         : std::min(config_.max_window, state.window * 2);
      return state.window;
    }
    return config_.random_cluster;
  }
  state.streak = 0;
  state.window = 0;
  return config_.random_cluster;
}

}  // namespace fsbench
