#include "src/sim/fault_plan.h"

#include <cassert>

namespace fsbench {

FaultPlan::FaultPlan(const FaultPlanConfig& config, uint64_t seed)
    : config_(config), seed_(seed), rng_(seed ^ 0xfa017bad5eedULL) {
  assert(config_.region_sectors > 0);
  assert(config_.transient_rate >= 0.0 && config_.transient_rate <= 1.0);
  assert(config_.persistent_rate >= 0.0 && config_.persistent_rate <= 1.0);
  assert(config_.slow_rate >= 0.0 && config_.slow_rate <= 1.0);
  if (!config_.deferred_clock) {
    origin_ = 0;
  }
}

void FaultPlan::StartClock(Nanos origin) {
  if (!origin_.has_value()) {
    origin_ = origin;
  }
}

bool FaultPlan::DeviceDeadAt(Nanos now) const {
  if (config_.device_kill_time <= 0 || !origin_.has_value()) {
    return false;
  }
  return now >= *origin_ + config_.device_kill_time;
}

bool FaultPlan::RegionIsBad(uint64_t lba, Nanos now) const {
  if (config_.persistent_rate <= 0.0) {
    return false;
  }
  // Stateless hash verdict: splitmix64 over (seed, region) gives each region
  // an order-independent uniform draw, so the bad set is fixed at "mkfs
  // time" rather than discovered in request order.
  uint64_t state = seed_ ^ (RegionOf(lba) * 0x9e3779b97f4a7c15ULL);
  const uint64_t h = SplitMix64(state);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config_.persistent_rate) {
    return false;
  }
  if (config_.defect_onset_spread > 0) {
    if (!origin_.has_value()) {
      return false;  // deferred clock not armed yet: no defect has developed
    }
    // Second draw from the same stream: when this region's defect develops.
    const uint64_t h2 = SplitMix64(state);
    const double onset_u = static_cast<double>(h2 >> 11) * 0x1.0p-53;
    const Nanos onset =
        static_cast<Nanos>(onset_u * static_cast<double>(config_.defect_onset_spread));
    return now >= *origin_ + onset;
  }
  return true;
}

FaultDecision FaultPlan::Evaluate(uint64_t lba, Nanos now, bool remapped) {
  FaultDecision decision;
  if (!config_.enabled()) {
    return decision;
  }
  // One transient and one slow draw per attempt, unconditionally, so the
  // stream position depends only on the attempt count — not on which rates
  // are ahead of others in the config.
  const double transient_u = rng_.NextDouble();
  const double slow_u = rng_.NextDouble();

  if (!remapped && RegionIsBad(lba, now)) {
    ++stats_.persistent_faults;
    decision.kind = FaultKind::kPersistent;
    return decision;
  }

  const bool in_burst = config_.burst_duration > 0 && origin_.has_value() &&
                        now >= *origin_ + config_.burst_start &&
                        now < *origin_ + config_.burst_start + config_.burst_duration;
  double transient_rate = config_.transient_rate;
  if (in_burst) {
    transient_rate *= config_.burst_factor;
  }
  if (transient_u < transient_rate) {
    ++stats_.transient_faults;
    if (in_burst) {
      ++stats_.burst_faults;
    }
    decision.kind = FaultKind::kTransient;
    return decision;
  }

  if (slow_u < config_.slow_rate) {
    ++stats_.slow_ios;
    decision.slow = true;
    decision.slow_multiplier = config_.slow_multiplier;
  }
  return decision;
}

}  // namespace fsbench
