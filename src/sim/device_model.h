// DeviceModel: the service-time-oracle interface every block device
// implements (rotational DiskModel, multi-channel SsdModel).
//
// A device answers exactly one question — "what does this request cost,
// issued at this virtual time?" — and owns no queueing: the IoScheduler
// holds the device timeline(s) and calls AccessEx per attempt. What IS
// shared across device kinds, and therefore lives here, is the fault
// machinery the block layer and redundancy layer program against:
//   - an optional seeded FaultPlan (EnableFaults) drawing transient /
//     persistent / slow-I/O verdicts from (config, seed),
//   - legacy injected-error extents (InjectError) behaving like persistent
//     media damage over an explicit sector range,
//   - region remapping into a bounded spare pool distributed across the LBA
//     space (RemapRegion), with remapped requests redirected before any
//     fault evaluation,
//   - the whole-device death latch (IsDead) the array's failure detection
//     keys off.
// Keeping this surface in the base class is what lets FaultPlan, the
// retry/remap policy, scrub and rebuild work unchanged against any device.
//
// Parallelism contract: `channels()` reports how many independent service
// units the device has and `ChannelOf(lba)` names the unit a request lands
// on. A rotational disk is one head assembly (channels() == 1); an SSD
// exposes its flash channels, and the scheduler's kMultiQueue mode keeps a
// busy-until timeline per channel so requests to distinct channels overlap.
#ifndef SRC_SIM_DEVICE_MODEL_H_
#define SRC_SIM_DEVICE_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/sim/fault_plan.h"
#include "src/util/units.h"

namespace fsbench {

enum class DeviceKind : uint8_t { kHdd, kSsd };

// Operation kind for a single device request.
enum class IoKind : uint8_t { kRead, kWrite };

// One device request in file-system blocks' underlying sectors.
struct IoRequest {
  IoKind kind = IoKind::kRead;
  uint64_t lba = 0;           // first sector
  uint32_t sector_count = 0;  // must be > 0
  // Metadata or journal-log payload: a permanent write failure on a meta
  // request is what trips a journaled file system into remount-read-only.
  bool meta = false;
};

// Cumulative counters; cheap to copy. One struct serves every device kind:
// the mechanical fields (seeks, rotation) stay zero on flash, the flash
// fields (GC work) stay zero on rotational disks, and aggregation /
// digesting code handles both uniformly.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;             // requests that moved the head
  uint64_t buffer_hits = 0;       // served from the track buffer
  uint64_t sequential_hits = 0;   // head already in position (streaming)
  Nanos total_service_time = 0;
  Nanos total_seek_time = 0;
  Nanos total_rotation_time = 0;
  Nanos total_transfer_time = 0;
  // Faulted access attempts (any kind), cumulative for the device's life —
  // ClearErrors() removes injected damage but never rewinds this counter.
  uint64_t errors = 0;
  // Mechanical time burned by failed attempts (not part of service time).
  Nanos total_fault_time = 0;
  // Flash-translation-layer work (SsdModel only): pages relocated and
  // erase blocks reclaimed by garbage collection, and the foreground time
  // those reclaims stole from host writes (the write-amplification stall).
  uint64_t gc_page_moves = 0;
  uint64_t gc_erases = 0;
  Nanos total_gc_time = 0;
};

// Outcome of one access attempt. Exactly one of `service` (success) or
// `fault != kNone` (failure, with `fail_time` the device time consumed by
// the doomed attempt) holds.
struct AccessResult {
  std::optional<Nanos> service;
  FaultKind fault = FaultKind::kNone;
  bool slow = false;     // completed but fault-plan slow-I/O multiplied it
  Nanos fail_time = 0;   // device time consumed when fault != kNone
};

class DeviceModel {
 public:
  explicit DeviceModel(uint64_t total_sectors);
  virtual ~DeviceModel() = default;

  DeviceModel(const DeviceModel&) = delete;
  DeviceModel& operator=(const DeviceModel&) = delete;

  virtual DeviceKind kind() const = 0;

  // Computes the outcome of `req` issued at virtual time `now` (consulted
  // only by the fault plan's burst windows and the death latch): service
  // time on success, fault kind + consumed device time on failure. Updates
  // device-internal state (head position, FTL mapping) and statistics
  // either way.
  virtual AccessResult AccessEx(const IoRequest& req, Nanos now) = 0;

  // Independent service units. 1 for a rotational disk; the flash channel
  // count for an SSD. The scheduler's kMultiQueue mode keeps one busy-until
  // timeline per channel.
  virtual uint32_t channels() const { return 1; }
  // Which channel `lba` lands on; always 0 for single-channel devices.
  virtual uint32_t ChannelOf(uint64_t lba) const {
    (void)lba;
    return 0;
  }

  // Attaches a seeded fault plan. `seed` feeds the plan's own RNG stream,
  // kept separate from any device-internal stream so a disabled plan is
  // byte-identical to no plan at all.
  void EnableFaults(const FaultPlanConfig& config, uint64_t seed);

  // Sets the remap granularity and spare-pool size without attaching a
  // plan, so spare accounting reflects the configured pool even when every
  // fault rate is zero (EnableFaults applies the same override).
  void ConfigureSpares(uint64_t region_sectors, uint64_t spare_regions);

  // Arms the fault plan's deferred clock at `origin` (see
  // FaultPlanConfig::deferred_clock). No-op without a plan or on an
  // absolute-clock plan.
  void StartFaultClock(Nanos origin);

  // Whole-device failure (FaultPlanConfig::device_kill_time): true once
  // `now` has reached the kill time on the plan's clock. The verdict
  // latches — a device that has died stays dead for every later query
  // regardless of `now` — so the array's lazy detection cannot resurrect it.
  bool IsDead(Nanos now);
  bool dead() const { return dead_latched_; }

  // Whether the region containing `lba` is latent-bad as of `now` and not
  // yet remapped: the scrub's detection probe. Pure query — no RNG draws, no
  // stats, no device-state movement.
  bool RegionLatentBad(uint64_t lba, Nanos now) const;

  // Fault injection: any request overlapping [lba, lba + sector_count)
  // fails until cleared or remapped. The default span is one file-system
  // block (4 KiB), so legacy single-argument call sites poison the whole
  // block they name rather than only its first sector.
  void InjectError(uint64_t lba, uint32_t sector_count = 8);
  // Removes injected damage. Deliberately does NOT reset DiskStats::errors:
  // the counter is the device's lifetime error tally (like a SMART
  // attribute), not a view of the currently-injected set.
  void ClearErrors();

  // Remaps the fault region containing `lba` into the spare pool. Returns
  // true if the region is (now) remapped, false when spares are exhausted.
  bool RemapRegion(uint64_t lba);
  uint64_t remapped_regions() const { return remap_.size(); }
  uint64_t spare_regions_left() const { return spare_regions_ - remap_.size(); }
  uint64_t region_sectors() const { return region_sectors_; }

  const DiskStats& stats() const { return stats_; }
  const FaultPlan* fault_plan() const { return fault_plan_ ? &*fault_plan_ : nullptr; }
  uint64_t total_sectors() const { return total_sectors_; }

 protected:
  // Redirects `lba` through the remap table (the damage lives at the
  // original location; the spare serves cleanly). `*remapped` reports
  // whether a redirect happened. A request straddling the end of the last
  // spare is clamped (pure timing model, no data lives at these addresses).
  uint64_t RedirectLba(uint64_t lba, uint32_t sector_count, bool* remapped) const;

  // Fault verdict for one attempt: the plan's (seeded) decision first, then
  // the legacy injected extents, which behave like persistent media damage.
  // Non-const: the plan's transient verdicts advance its RNG stream.
  FaultDecision DecideFault(uint64_t lba, uint32_t sector_count, Nanos now, bool remapped);

  bool OverlapsInjectedError(uint64_t lba, uint32_t sector_count) const;

  DiskStats& mutable_stats() { return stats_; }

 private:
  uint64_t total_sectors_;

  // Injected persistent damage: start sector -> sector count.
  std::map<uint64_t, uint64_t> error_extents_;
  uint32_t max_error_extent_ = 0;  // longest injected extent, for overlap scans

  std::optional<FaultPlan> fault_plan_;
  // Whole-device death latch (see IsDead).
  bool dead_latched_ = false;
  // Remap granularity/spares; overridden by EnableFaults from the plan's
  // config so plan regions and remap regions coincide.
  uint64_t region_sectors_ = 2048;
  uint64_t spare_regions_ = 64;
  // Bad region index -> start sector of its spare. Lookup-only (never
  // iterated), so hash order cannot leak into results.
  std::unordered_map<uint64_t, uint64_t> remap_;
  // Spare slots already handed out (index into the distributed spare slices).
  std::set<uint64_t> spare_slots_used_;

  DiskStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_DEVICE_MODEL_H_
