// Analytic model of a rotational disk, calibrated to the Maxtor 7L250S0
// SATA drive used by the paper's testbed (7200 RPM, 250 GB).
//
// The model captures the mechanical effects the paper's case study depends
// on: seek time grows with cylinder distance (so small files see short
// seeks), rotational latency is a random fraction of a revolution, media
// transfer is rate-limited, and a track buffer makes sequential re-reads
// cheap. Service times are returned to the caller (the IoScheduler), which
// owns queueing; the DiskModel itself is a pure service-time oracle plus
// head-position state.
//
// Fault behavior comes from two sources evaluated per access attempt:
//   - an optional seeded FaultPlan (EnableFaults) drawing transient /
//     persistent / slow-I/O verdicts from (config, seed), and
//   - the legacy injected-error extents (InjectError), which behave like
//     persistent media damage over an explicit sector range.
// A failed attempt still costs mechanical time (seek + rotation + transfer
// of the doomed request) — the head really moved — returned as
// AccessResult::fail_time so the scheduler can charge the device timeline.
// Persistent damage can be remapped region-by-region into a bounded spare
// pool distributed across the LBA space like real drives' per-zone spare
// tracks (RemapRegion); remapped requests are redirected before any fault
// evaluation, so the spare region serves them cleanly from a nearby slice.
#ifndef SRC_SIM_DISK_MODEL_H_
#define SRC_SIM_DISK_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/sim/fault_plan.h"
#include "src/sim/types.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace fsbench {

// Physical/interface parameters. Defaults approximate the Maxtor 7L250S0.
struct DiskParams {
  uint32_t rpm = 7200;
  Bytes capacity = 250 * kGiB;
  uint32_t sector_bytes = 512;
  // Simplified uniform geometry (real drives are zoned): sectors per track
  // and tracks per cylinder determine the LBA -> cylinder mapping and the
  // media transfer rate (one track per revolution).
  uint32_t sectors_per_track = 1024;  // ~64 MiB/s media rate at 7200 RPM
  uint32_t tracks_per_cylinder = 4;
  // Seek curve: t(d) = track_to_track + (avg - track_to_track) * sqrt(d / d_avg)
  // where d_avg = one third of the full stroke, capped at full_stroke.
  Nanos track_to_track_seek = FromMillis(0.8);
  Nanos average_seek = FromMillis(8.5);
  Nanos full_stroke_seek = FromMillis(17.0);
  // Fixed per-command controller/settle overhead.
  Nanos command_overhead = FromMillis(0.3);
  // Interface (SATA) burst rate used for buffer hits, bytes/second.
  uint64_t interface_rate = 150 * 1000 * 1000;
  // On-drive buffer used as a read track cache.
  Bytes buffer_bytes = 8 * kMiB;
  // Time the drive spends in internal error recovery (re-reads, ECC
  // heroics, head offsets) before reporting an unrecoverable error — the
  // dominant cost of a surfaced fault on real hardware (desktop drives take
  // hundreds of ms to seconds; TLER/ERC firmware caps it). Charged on every
  // failed attempt on top of the mechanical time. Default 0 preserves the
  // historical fail-fast behavior.
  Nanos error_recovery_time = 0;
};

// Operation kind for a single device request.
enum class IoKind : uint8_t { kRead, kWrite };

// One device request in file-system blocks' underlying sectors.
struct IoRequest {
  IoKind kind = IoKind::kRead;
  uint64_t lba = 0;           // first sector
  uint32_t sector_count = 0;  // must be > 0
  // Metadata or journal-log payload: a permanent write failure on a meta
  // request is what trips a journaled file system into remount-read-only.
  bool meta = false;
};

// Cumulative counters; cheap to copy.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;             // requests that moved the head
  uint64_t buffer_hits = 0;       // served from the track buffer
  uint64_t sequential_hits = 0;   // head already in position (streaming)
  Nanos total_service_time = 0;
  Nanos total_seek_time = 0;
  Nanos total_rotation_time = 0;
  Nanos total_transfer_time = 0;
  // Faulted access attempts (any kind), cumulative for the device's life —
  // ClearErrors() removes injected damage but never rewinds this counter.
  uint64_t errors = 0;
  // Mechanical time burned by failed attempts (not part of service time).
  Nanos total_fault_time = 0;
};

// Outcome of one access attempt. Exactly one of `service` (success) or
// `fault != kNone` (failure, with `fail_time` the device time consumed by
// the doomed attempt) holds.
struct AccessResult {
  std::optional<Nanos> service;
  FaultKind fault = FaultKind::kNone;
  bool slow = false;     // completed but fault-plan slow-I/O multiplied it
  Nanos fail_time = 0;   // device time consumed when fault != kNone
};

class DiskModel {
 public:
  // `seed` drives rotational-latency sampling; two DiskModels with the same
  // seed and request sequence produce identical service times.
  DiskModel(const DiskParams& params, uint64_t seed);

  // Attaches a seeded fault plan. `seed` feeds the plan's own RNG stream,
  // kept separate from the rotational-latency stream so a disabled plan is
  // byte-identical to no plan at all.
  void EnableFaults(const FaultPlanConfig& config, uint64_t seed);

  // Sets the remap granularity and spare-pool size without attaching a
  // plan, so spare accounting reflects the configured pool even when every
  // fault rate is zero (EnableFaults applies the same override).
  void ConfigureSpares(uint64_t region_sectors, uint64_t spare_regions);

  // Arms the fault plan's deferred clock at `origin` (see
  // FaultPlanConfig::deferred_clock). No-op without a plan or on an
  // absolute-clock plan.
  void StartFaultClock(Nanos origin);

  // Whole-device failure (FaultPlanConfig::device_kill_time): true once
  // `now` has reached the kill time on the plan's clock. The verdict
  // latches — a device that has died stays dead for every later query
  // regardless of `now` — so the array's lazy detection cannot resurrect it.
  bool IsDead(Nanos now);
  bool dead() const { return dead_latched_; }

  // Whether the region containing `lba` is latent-bad as of `now` and not
  // yet remapped: the scrub's detection probe. Pure query — no RNG draws, no
  // stats, no head movement.
  bool RegionLatentBad(uint64_t lba, Nanos now) const;

  // Computes the outcome of `req` issued at virtual time `now` (consulted
  // only by the fault plan's burst window): service time on success, fault
  // kind + consumed device time on failure. Updates head position, buffer
  // and statistics either way.
  AccessResult AccessEx(const IoRequest& req, Nanos now);

  // Legacy entry point: service time or std::nullopt on a fault. Identical
  // to AccessEx but discards fault detail (and evaluates bursts at now=0).
  std::optional<Nanos> Access(const IoRequest& req);

  // Fault injection: any request overlapping [lba, lba + sector_count)
  // fails until cleared or remapped. The default span is one file-system
  // block (4 KiB), so legacy single-argument call sites poison the whole
  // block they name rather than only its first sector.
  void InjectError(uint64_t lba, uint32_t sector_count = 8);
  // Removes injected damage. Deliberately does NOT reset DiskStats::errors:
  // the counter is the device's lifetime error tally (like a SMART
  // attribute), not a view of the currently-injected set.
  void ClearErrors();

  // Remaps the fault region containing `lba` into the spare pool. Returns
  // true if the region is (now) remapped, false when spares are exhausted.
  bool RemapRegion(uint64_t lba);
  uint64_t remapped_regions() const { return remap_.size(); }
  uint64_t spare_regions_left() const { return spare_regions_ - remap_.size(); }
  uint64_t region_sectors() const { return region_sectors_; }

  const DiskParams& params() const { return params_; }
  const DiskStats& stats() const { return stats_; }
  const FaultPlan* fault_plan() const { return fault_plan_ ? &*fault_plan_ : nullptr; }
  uint64_t total_sectors() const { return total_sectors_; }
  uint64_t total_cylinders() const { return total_cylinders_; }

  // Exposed for tests: deterministic components of the model.
  Nanos SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const;
  Nanos TransferTime(uint32_t sector_count) const;
  uint64_t CylinderOf(uint64_t lba) const;
  Nanos revolution_time() const { return revolution_time_; }

 private:
  bool OverlapsInjectedError(uint64_t lba, uint32_t sector_count) const;

  DiskParams params_;
  Rng rng_;
  uint64_t total_sectors_;
  uint64_t sectors_per_cylinder_;
  uint64_t total_cylinders_;
  Nanos revolution_time_;

  uint64_t head_cylinder_ = 0;
  // End LBA of the last request; equal start means streaming continuation.
  uint64_t last_end_lba_ = 0;
  bool has_last_ = false;
  // Track-buffer contents as an LBA range (last track(s) read).
  uint64_t buffer_start_lba_ = 0;
  uint64_t buffer_end_lba_ = 0;

  // Injected persistent damage: start sector -> sector count.
  std::map<uint64_t, uint64_t> error_extents_;
  uint32_t max_error_extent_ = 0;  // longest injected extent, for overlap scans

  std::optional<FaultPlan> fault_plan_;
  // Whole-device death latch (see IsDead).
  bool dead_latched_ = false;
  // Remap granularity/spares; overridden by EnableFaults from the plan's
  // config so plan regions and remap regions coincide.
  uint64_t region_sectors_ = 2048;
  uint64_t spare_regions_ = 64;
  // Bad region index -> start sector of its spare. Lookup-only (never
  // iterated), so hash order cannot leak into results.
  std::unordered_map<uint64_t, uint64_t> remap_;
  // Spare slots already handed out (index into the distributed spare slices).
  std::set<uint64_t> spare_slots_used_;

  DiskStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_DISK_MODEL_H_
