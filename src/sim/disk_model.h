// Analytic model of a rotational disk, calibrated to the Maxtor 7L250S0
// SATA drive used by the paper's testbed (7200 RPM, 250 GB).
//
// The model captures the mechanical effects the paper's case study depends
// on: seek time grows with cylinder distance (so small files see short
// seeks), rotational latency is a random fraction of a revolution, media
// transfer is rate-limited, and a track buffer makes sequential re-reads
// cheap. Service times are returned to the caller (the IoScheduler), which
// owns queueing; the DiskModel itself is a pure service-time oracle plus
// head-position state.
#ifndef SRC_SIM_DISK_MODEL_H_
#define SRC_SIM_DISK_MODEL_H_

#include <cstdint>
#include <optional>
#include <set>

#include "src/sim/types.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace fsbench {

// Physical/interface parameters. Defaults approximate the Maxtor 7L250S0.
struct DiskParams {
  uint32_t rpm = 7200;
  Bytes capacity = 250 * kGiB;
  uint32_t sector_bytes = 512;
  // Simplified uniform geometry (real drives are zoned): sectors per track
  // and tracks per cylinder determine the LBA -> cylinder mapping and the
  // media transfer rate (one track per revolution).
  uint32_t sectors_per_track = 1024;  // ~64 MiB/s media rate at 7200 RPM
  uint32_t tracks_per_cylinder = 4;
  // Seek curve: t(d) = track_to_track + (avg - track_to_track) * sqrt(d / d_avg)
  // where d_avg = one third of the full stroke, capped at full_stroke.
  Nanos track_to_track_seek = FromMillis(0.8);
  Nanos average_seek = FromMillis(8.5);
  Nanos full_stroke_seek = FromMillis(17.0);
  // Fixed per-command controller/settle overhead.
  Nanos command_overhead = FromMillis(0.3);
  // Interface (SATA) burst rate used for buffer hits, bytes/second.
  uint64_t interface_rate = 150 * 1000 * 1000;
  // On-drive buffer used as a read track cache.
  Bytes buffer_bytes = 8 * kMiB;
};

// Operation kind for a single device request.
enum class IoKind : uint8_t { kRead, kWrite };

// One device request in file-system blocks' underlying sectors.
struct IoRequest {
  IoKind kind = IoKind::kRead;
  uint64_t lba = 0;           // first sector
  uint32_t sector_count = 0;  // must be > 0
};

// Cumulative counters; cheap to copy.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;             // requests that moved the head
  uint64_t buffer_hits = 0;       // served from the track buffer
  uint64_t sequential_hits = 0;   // head already in position (streaming)
  Nanos total_service_time = 0;
  Nanos total_seek_time = 0;
  Nanos total_rotation_time = 0;
  Nanos total_transfer_time = 0;
  uint64_t errors = 0;
};

class DiskModel {
 public:
  // `seed` drives rotational-latency sampling; two DiskModels with the same
  // seed and request sequence produce identical service times.
  DiskModel(const DiskParams& params, uint64_t seed);

  // Computes the service time for `req`, updates head position, buffer and
  // statistics. Returns std::nullopt if the request hits an injected fault
  // (the time until the failure is still accounted internally).
  std::optional<Nanos> Access(const IoRequest& req);

  // Fault injection: any request overlapping `lba` fails until cleared.
  void InjectError(uint64_t lba);
  void ClearErrors();

  const DiskParams& params() const { return params_; }
  const DiskStats& stats() const { return stats_; }
  uint64_t total_sectors() const { return total_sectors_; }
  uint64_t total_cylinders() const { return total_cylinders_; }

  // Exposed for tests: deterministic components of the model.
  Nanos SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const;
  Nanos TransferTime(uint32_t sector_count) const;
  uint64_t CylinderOf(uint64_t lba) const;
  Nanos revolution_time() const { return revolution_time_; }

 private:
  DiskParams params_;
  Rng rng_;
  uint64_t total_sectors_;
  uint64_t sectors_per_cylinder_;
  uint64_t total_cylinders_;
  Nanos revolution_time_;

  uint64_t head_cylinder_ = 0;
  // End LBA of the last request; equal start means streaming continuation.
  uint64_t last_end_lba_ = 0;
  bool has_last_ = false;
  // Track-buffer contents as an LBA range (last track(s) read).
  uint64_t buffer_start_lba_ = 0;
  uint64_t buffer_end_lba_ = 0;

  std::set<uint64_t> error_lbas_;
  DiskStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_DISK_MODEL_H_
