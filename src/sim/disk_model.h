// Analytic model of a rotational disk, calibrated to the Maxtor 7L250S0
// SATA drive used by the paper's testbed (7200 RPM, 250 GB).
//
// The model captures the mechanical effects the paper's case study depends
// on: seek time grows with cylinder distance (so small files see short
// seeks), rotational latency is a random fraction of a revolution, media
// transfer is rate-limited, and a track buffer makes sequential re-reads
// cheap. Service times are returned to the caller (the IoScheduler), which
// owns queueing; the DiskModel itself is a pure service-time oracle plus
// head-position state.
//
// Fault behavior (seeded FaultPlan, injected-error extents, spare-pool
// remapping, the whole-device death latch) lives in the DeviceModel base —
// see src/sim/device_model.h. What DiskModel adds is the mechanical cost
// model: a failed attempt still costs mechanical time (seek + rotation +
// transfer of the doomed request) — the head really moved — returned as
// AccessResult::fail_time so the scheduler can charge the device timeline.
#ifndef SRC_SIM_DISK_MODEL_H_
#define SRC_SIM_DISK_MODEL_H_

#include <cstdint>

#include "src/sim/device_model.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace fsbench {

// Physical/interface parameters. Defaults approximate the Maxtor 7L250S0.
struct DiskParams {
  uint32_t rpm = 7200;
  Bytes capacity = 250 * kGiB;
  uint32_t sector_bytes = 512;
  // Simplified uniform geometry (real drives are zoned): sectors per track
  // and tracks per cylinder determine the LBA -> cylinder mapping and the
  // media transfer rate (one track per revolution).
  uint32_t sectors_per_track = 1024;  // ~64 MiB/s media rate at 7200 RPM
  uint32_t tracks_per_cylinder = 4;
  // Seek curve: t(d) = track_to_track + (avg - track_to_track) * sqrt(d / d_avg)
  // where d_avg = one third of the full stroke, capped at full_stroke.
  Nanos track_to_track_seek = FromMillis(0.8);
  Nanos average_seek = FromMillis(8.5);
  Nanos full_stroke_seek = FromMillis(17.0);
  // Fixed per-command controller/settle overhead.
  Nanos command_overhead = FromMillis(0.3);
  // Interface (SATA) burst rate used for buffer hits, bytes/second.
  uint64_t interface_rate = 150 * 1000 * 1000;
  // On-drive buffer used as a read track cache.
  Bytes buffer_bytes = 8 * kMiB;
  // Time the drive spends in internal error recovery (re-reads, ECC
  // heroics, head offsets) before reporting an unrecoverable error — the
  // dominant cost of a surfaced fault on real hardware (desktop drives take
  // hundreds of ms to seconds; TLER/ERC firmware caps it). Charged on every
  // failed attempt on top of the mechanical time. Default 0 preserves the
  // historical fail-fast behavior.
  Nanos error_recovery_time = 0;
};

class DiskModel : public DeviceModel {
 public:
  // `seed` drives rotational-latency sampling; two DiskModels with the same
  // seed and request sequence produce identical service times.
  DiskModel(const DiskParams& params, uint64_t seed);

  DeviceKind kind() const override { return DeviceKind::kHdd; }

  AccessResult AccessEx(const IoRequest& req, Nanos now) override;

  const DiskParams& params() const { return params_; }
  uint64_t total_cylinders() const { return total_cylinders_; }

  // Exposed for tests: deterministic components of the model.
  Nanos SeekTime(uint64_t from_cylinder, uint64_t to_cylinder) const;
  Nanos TransferTime(uint32_t sector_count) const;
  uint64_t CylinderOf(uint64_t lba) const;
  Nanos revolution_time() const { return revolution_time_; }

 private:
  DiskParams params_;
  Rng rng_;
  uint64_t sectors_per_cylinder_;
  uint64_t total_cylinders_;
  Nanos revolution_time_;

  uint64_t head_cylinder_ = 0;
  // End LBA of the last request; equal start means streaming continuation.
  uint64_t last_end_lba_ = 0;
  bool has_last_ = false;
  // Track-buffer contents as an LBA range (last track(s) read).
  uint64_t buffer_start_lba_ = 0;
  uint64_t buffer_end_lba_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_DISK_MODEL_H_
