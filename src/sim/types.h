// Shared simulator types: status codes, result wrapper, identifiers.
#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>
#include <string>

#include "src/util/units.h"

namespace fsbench {

// Inode number. 0 is reserved as "invalid"; the root directory is 1, matching
// ext2 convention closely enough to read naturally.
using InodeId = uint64_t;
inline constexpr InodeId kInvalidInode = 0;
inline constexpr InodeId kRootInode = 1;

// Device block number (file-system block, not sector).
using BlockId = uint64_t;
inline constexpr BlockId kInvalidBlock = ~0ULL;

// File-system level status codes, deliberately errno-flavoured.
enum class FsStatus {
  kOk,
  kNotFound,    // ENOENT
  kExists,      // EEXIST
  kNoSpace,     // ENOSPC
  kIoError,     // EIO (e.g. injected disk fault)
  kNotDir,      // ENOTDIR
  kIsDir,       // EISDIR
  kNotEmpty,    // ENOTEMPTY
  kBadHandle,   // EBADF
  kInvalid,     // EINVAL
  kReadOnly,    // EROFS (fs remounted read-only after a metadata/log failure)
};

// Human-readable name for an FsStatus ("kOk" -> "OK", etc.).
const char* FsStatusName(FsStatus status);

// Tiny result type: a status plus a value that is meaningful only when
// status == kOk. Kept trivially copyable on purpose.
template <typename T>
struct FsResult {
  FsStatus status = FsStatus::kInvalid;
  T value{};

  bool ok() const { return status == FsStatus::kOk; }

  static FsResult Ok(T v) { return FsResult{FsStatus::kOk, std::move(v)}; }
  static FsResult Error(FsStatus s) { return FsResult{s, T{}}; }
};

// File type stored in an inode.
enum class FileType : uint8_t {
  kRegular,
  kDirectory,
};

// stat(2)-style attributes.
struct FileAttr {
  InodeId ino = kInvalidInode;
  FileType type = FileType::kRegular;
  Bytes size = 0;
  uint64_t allocated_blocks = 0;
  uint32_t link_count = 0;
  Nanos mtime = 0;
  Nanos ctime = 0;
};

// A contiguous run of device blocks.
struct Extent {
  BlockId start = kInvalidBlock;
  uint64_t count = 0;

  bool operator==(const Extent& other) const = default;
};

// One cacheable page an operation touches: identified by (ino, index) for
// the page cache and by `block` for the device. FS-global meta-data
// (bitmaps, inode tables, indirect blocks, btree nodes) is keyed under
// kMetaInode with index == block. Lives here (not filesystem.h) because the
// transaction log tracks checkpoint targets as MetaRefs too.
struct MetaRef {
  InodeId ino = kInvalidInode;
  uint64_t index = 0;
  BlockId block = kInvalidBlock;
};

}  // namespace fsbench

#endif  // SRC_SIM_TYPES_H_
