#include "src/sim/filesystem.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace fsbench {

const char* FsStatusName(FsStatus status) {
  switch (status) {
    case FsStatus::kOk:
      return "OK";
    case FsStatus::kNotFound:
      return "ENOENT";
    case FsStatus::kExists:
      return "EEXIST";
    case FsStatus::kNoSpace:
      return "ENOSPC";
    case FsStatus::kIoError:
      return "EIO";
    case FsStatus::kNotDir:
      return "ENOTDIR";
    case FsStatus::kIsDir:
      return "EISDIR";
    case FsStatus::kNotEmpty:
      return "ENOTEMPTY";
    case FsStatus::kBadHandle:
      return "EBADF";
    case FsStatus::kInvalid:
      return "EINVAL";
    case FsStatus::kReadOnly:
      return "EROFS";
  }
  return "?";
}

void FileSystem::NoteMetaIoFailure() {
  ++meta_io_failures_;
  if (read_only_ || !RemountRoOnWriteError()) {
    return;
  }
  // errors=remount-ro: the journal can no longer guarantee atomicity once a
  // metadata or log write has been lost, so it is aborted and every further
  // mutation is refused with kReadOnly. ext2 (no journal) overrides the
  // policy hook and keeps going — errors=continue.
  read_only_ = true;
  if (journal_ != nullptr) {
    journal_->Abort();
  }
}

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kExt2:
      return "ext2";
    case FsKind::kExt3:
      return "ext3";
    case FsKind::kXfs:
      return "xfs";
  }
  return "?";
}

FileSystem::FileSystem(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock)
    : params_(params),
      clock_(clock),
      alloc_(device_capacity / params.block_size, params.group_blocks) {
  InitGroups();

  // Root directory.
  Inode root;
  root.ino = kRootInode;
  root.type = FileType::kDirectory;
  root.link_count = 2;
  root.group = 0;
  root.itable_block = InodeTableStart(0);
  root.mtime = root.ctime = Now();
  root.dir = std::make_unique<Directory>();
  inodes_.Insert(std::move(root));
  group_inode_counts_[0] = 1;
  group_local_inodes_[0] = 1;
  next_ino_ = kRootInode + 1;
}

void FileSystem::InitGroups() {
  const uint64_t groups = alloc_.group_count();
  group_inode_counts_.assign(groups, 0);
  group_local_inodes_.assign(groups, 0);
  for (uint64_t g = 0; g < groups; ++g) {
    const BlockId start = GroupStart(g);
    const uint64_t size = std::min<uint64_t>(params_.group_blocks, alloc_.total_blocks() - start);
    const uint64_t header = std::min<uint64_t>(params_.group_header_blocks, size);
    alloc_.ReserveRange(Extent{start, header});
    reserved_blocks_ += header;
  }
}

Nanos FileSystem::Now() const { return clock_ != nullptr ? clock_->now() : 0; }

const Inode* FileSystem::FindInode(InodeId ino) const { return inodes_.Find(ino); }

Inode* FileSystem::MutableInode(InodeId ino) { return inodes_.Find(ino); }

const Directory* FileSystem::FindDir(InodeId ino) const {
  const Inode* inode = FindInode(ino);
  return inode == nullptr ? nullptr : inode->dir.get();
}

Directory* FileSystem::MutableDir(InodeId ino) {
  Inode* inode = MutableInode(ino);
  return inode == nullptr ? nullptr : inode->dir.get();
}

FsResult<BlockId> FileSystem::MapPage(InodeId ino, uint64_t page_index, MetaIo* io) {
  const Inode* inode = FindInode(ino);
  if (inode == nullptr) {
    return FsResult<BlockId>::Error(FsStatus::kNotFound);
  }
  return MapPageFor(*inode, page_index, io);
}

FsResult<BlockId> FileSystem::AllocatePage(InodeId ino, uint64_t page_index, MetaIo* io) {
  Inode* inode = MutableInode(ino);
  if (inode == nullptr) {
    return FsResult<BlockId>::Error(FsStatus::kNotFound);
  }
  return AllocatePageFor(*inode, page_index, io);
}

BlockId FileSystem::InodeTableBlock(const Inode& inode) const { return inode.itable_block; }

uint64_t FileSystem::PickGroup(const Inode& parent, FileType type) {
  if (type == FileType::kDirectory) {
    // Spread directories across groups (Orlov-flavoured round-robin).
    const uint64_t group = next_dir_group_;
    next_dir_group_ = (next_dir_group_ + 1) % group_inode_counts_.size();
    return group;
  }
  return parent.group;
}

Inode* FileSystem::AllocateInode(const Inode& parent, FileType type, MetaIo* io) {
  const uint64_t groups = group_local_inodes_.size();
  const uint64_t max_local = params_.inode_table_blocks * params_.inodes_per_block;
  uint64_t group = PickGroup(parent, type) % groups;
  // Linear-probe for a group with a free inode-table slot.
  for (uint64_t probe = 0; probe < groups; ++probe, group = (group + 1) % groups) {
    if (group_local_inodes_[group] < max_local) {
      break;
    }
  }
  if (group_local_inodes_[group] >= max_local) {
    return nullptr;
  }
  const uint64_t local = group_local_inodes_[group]++;
  ++group_inode_counts_[group];

  Inode inode;
  inode.ino = next_ino_++;
  inode.type = type;
  inode.link_count = type == FileType::kDirectory ? 2 : 1;
  inode.group = group;
  inode.itable_block = InodeTableStart(group) + local / params_.inodes_per_block;
  inode.mtime = inode.ctime = Now();
  io->AddMetaWrite(inode.itable_block);
  io->AddMetaWrite(InodeBitmapBlock(group));

  return inodes_.Insert(std::move(inode));
}

void FileSystem::ChargeDirLookup(const Inode& dir_inode, const Directory& dir,
                                 std::string_view name, std::optional<uint64_t> slot,
                                 MetaIo* io) {
  (void)name;
  // Linear scan (ext2/ext3 flavour), dispatching MapPageFor virtually.
  ChargeLinearDirScan(dir_inode, dir, slot, io,
                      [this](const Inode& inode, uint64_t page, MetaIo* out) {
                        return MapPageFor(inode, page, out);
                      });
}

FsResult<BlockId> FileSystem::EnsureDirSlotBlock(Inode& dir_inode, uint64_t slot, MetaIo* io) {
  const uint64_t page = slot / params_.dir_entries_per_block;
  const FsResult<BlockId> existing = MapPageFor(dir_inode, page, io);
  if (existing.ok() && existing.value != kInvalidBlock) {
    return existing;
  }
  const FsResult<BlockId> allocated = AllocatePageFor(dir_inode, page, io);
  if (allocated.ok()) {
    const Bytes needed = (page + 1) * params_.block_size;
    if (dir_inode.size < needed) {
      dir_inode.size = needed;
    }
  }
  return allocated;
}

FsResult<InodeId> FileSystem::Create(InodeId parent, std::string_view name, FileType type,
                                     MetaIo* io) {
  Inode* parent_inode = MutableInode(parent);
  if (parent_inode == nullptr) {
    return FsResult<InodeId>::Error(FsStatus::kNotFound);
  }
  if (parent_inode->type != FileType::kDirectory) {
    return FsResult<InodeId>::Error(FsStatus::kNotDir);
  }
  Directory* dir = parent_inode->dir.get();
  assert(dir != nullptr);
  if (name.empty() || name.find('/') != std::string_view::npos) {
    return FsResult<InodeId>::Error(FsStatus::kInvalid);
  }

  // Negative lookup scans the whole directory.
  ChargeDirLookup(*parent_inode, *dir, name, std::nullopt, io);
  if (dir->Lookup(name).has_value()) {
    return FsResult<InodeId>::Error(FsStatus::kExists);
  }

  Inode* inode = AllocateInode(*parent_inode, type, io);
  if (inode == nullptr) {
    return FsResult<InodeId>::Error(FsStatus::kNoSpace);
  }
  if (type == FileType::kDirectory) {
    inode->dir = std::make_unique<Directory>();
    ++parent_inode->link_count;  // ".." back-reference
  }

  const bool inserted = dir->Insert(name, inode->ino);
  assert(inserted);
  (void)inserted;
  const uint64_t slot = *dir->SlotOf(name);
  const FsResult<BlockId> dir_block = EnsureDirSlotBlock(*parent_inode, slot, io);
  if (!dir_block.ok()) {
    // Roll back: no space for the dirent.
    dir->Remove(name);
    if (type == FileType::kDirectory) {
      --parent_inode->link_count;
    }
    inodes_.Erase(inode->ino);
    return FsResult<InodeId>::Error(dir_block.status);
  }
  io->writes.push_back({parent, slot / params_.dir_entries_per_block, dir_block.value});
  io->AddMetaWrite(parent_inode->itable_block);
  parent_inode->mtime = Now();
  return FsResult<InodeId>::Ok(inode->ino);
}

FsStatus FileSystem::Unlink(InodeId parent, std::string_view name, MetaIo* io) {
  Inode* parent_inode = MutableInode(parent);
  if (parent_inode == nullptr) {
    return FsStatus::kNotFound;
  }
  if (parent_inode->type != FileType::kDirectory) {
    return FsStatus::kNotDir;
  }
  Directory* dir = parent_inode->dir.get();
  assert(dir != nullptr);

  const std::optional<Directory::Entry> entry = dir->Find(name);
  if (!entry.has_value()) {
    ChargeDirLookup(*parent_inode, *dir, name, std::nullopt, io);
    return FsStatus::kNotFound;
  }
  const std::optional<uint64_t> slot = entry->slot;
  ChargeDirLookup(*parent_inode, *dir, name, slot, io);

  const InodeId ino = entry->ino;
  Inode* inode = MutableInode(ino);
  assert(inode != nullptr);
  if (inode->type == FileType::kDirectory) {
    const Directory* victim_dir = inode->dir.get();
    if (victim_dir != nullptr && victim_dir->entry_count() > 0) {
      return FsStatus::kNotEmpty;
    }
  }

  dir->Remove(name);
  // Rewrite the dirent's block.
  const FsResult<BlockId> dir_block =
      MapPageFor(*parent_inode, *slot / params_.dir_entries_per_block, io);
  if (dir_block.ok() && dir_block.value != kInvalidBlock) {
    io->writes.push_back({parent, *slot / params_.dir_entries_per_block, dir_block.value});
  }
  io->AddMetaWrite(parent_inode->itable_block);
  parent_inode->mtime = Now();

  --inode->link_count;
  if (inode->type == FileType::kDirectory) {
    --inode->link_count;  // the directory's own "." reference
    --parent_inode->link_count;
  }
  if (inode->link_count == 0 ||
      (inode->type == FileType::kDirectory && inode->link_count <= 1)) {
    FreeAllBlocks(*inode, io);
    io->AddMetaWrite(inode->itable_block);
    io->AddMetaWrite(InodeBitmapBlock(inode->group));
    io->drop_files.push_back(ino);
    --group_inode_counts_[inode->group];
    inodes_.Erase(ino);
  }
  return FsStatus::kOk;
}

FsResult<std::vector<std::string>> FileSystem::ReadDir(InodeId ino, MetaIo* io) {
  Inode* inode = MutableInode(ino);
  if (inode == nullptr) {
    return FsResult<std::vector<std::string>>::Error(FsStatus::kNotFound);
  }
  if (inode->type != FileType::kDirectory) {
    return FsResult<std::vector<std::string>>::Error(FsStatus::kNotDir);
  }
  const Directory* dir = inode->dir.get();
  assert(dir != nullptr);
  ChargeDirLookup(*inode, *dir, "", std::nullopt, io);  // reads every block
  return FsResult<std::vector<std::string>>::Ok(dir->List());
}

FsStatus FileSystem::SetSize(InodeId ino, Bytes new_size, MetaIo* io) {
  Inode* inode = MutableInode(ino);
  if (inode == nullptr) {
    return FsStatus::kNotFound;
  }
  if (inode->type == FileType::kDirectory) {
    return FsStatus::kIsDir;
  }
  if (new_size < inode->size) {
    const uint64_t first_dead_page = CeilDiv(new_size, params_.block_size);
    FreePagesFrom(*inode, first_dead_page, io);
  }
  inode->size = new_size;
  inode->mtime = Now();
  io->AddMetaWrite(inode->itable_block);
  return FsStatus::kOk;
}

void FileSystem::AppendMetadataBlocks(std::vector<BlockId>* blocks) const {
  // Pass 0: group descriptors — both bitmaps and the inode table of every
  // group (fsck reads them all; it cannot know which are live).
  for (uint64_t group = 0; group < group_inode_counts_.size(); ++group) {
    blocks->push_back(BlockBitmapBlock(group));
    blocks->push_back(InodeBitmapBlock(group));
    for (uint64_t b = 0; b < params_.inode_table_blocks; ++b) {
      blocks->push_back(InodeTableStart(group) + b);
    }
  }
  // Pass 1+2: every inode's mapping meta blocks, and directory contents.
  for (const Inode& inode : inodes_) {
    for (const BlockId block : inode.indirect_blocks) {
      if (block != kInvalidBlock) {
        blocks->push_back(block);
      }
    }
    for (const BlockId block : inode.extent_meta_blocks) {
      blocks->push_back(block);
    }
    if (inode.type == FileType::kDirectory) {
      for (const BlockId block : inode.block_map) {
        if (block != kInvalidBlock) {
          blocks->push_back(block);
        }
      }
      for (const FileExtent& extent : inode.extents) {
        for (uint64_t i = 0; i < extent.extent.count; ++i) {
          blocks->push_back(extent.extent.start + i);
        }
      }
    }
  }
}

bool FileSystem::CheckConsistency(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };

  if (inodes_.Find(kRootInode) == nullptr) {
    return fail("missing root inode");
  }

  // Every owned block allocated exactly once; totals match the allocator.
  std::unordered_set<BlockId> seen;
  uint64_t owned = 0;
  for (const Inode& inode : inodes_) {
    std::vector<BlockId> blocks;
    AppendOwnedBlocks(inode, &blocks);
    for (BlockId b : blocks) {
      if (b == kInvalidBlock) {
        continue;
      }
      if (!alloc_.IsAllocated(b)) {
        return fail("inode " + std::to_string(inode.ino) + " references unallocated block " +
                    std::to_string(b));
      }
      if (!seen.insert(b).second) {
        return fail("block " + std::to_string(b) + " owned twice");
      }
      ++owned;
    }
    if (inode.allocated_blocks != blocks.size()) {
      return fail("inode " + std::to_string(inode.ino) + " allocated_blocks mismatch");
    }
  }
  if (owned + reserved_blocks_ != alloc_.used_blocks()) {
    return fail("allocator accounting mismatch: owned=" + std::to_string(owned) +
                " reserved=" + std::to_string(reserved_blocks_) +
                " used=" + std::to_string(alloc_.used_blocks()));
  }
  if (!alloc_.CheckInvariants()) {
    return fail("allocator bitmap/group counters inconsistent");
  }

  // Directory structure: every entry resolves to a live inode; every
  // directory inode owns a Directory (and only directories do).
  for (const Inode& inode : inodes_) {
    if (inode.type != FileType::kDirectory) {
      if (inode.dir != nullptr) {
        return fail("non-directory inode " + std::to_string(inode.ino) +
                    " carries directory contents");
      }
      continue;
    }
    if (inode.dir == nullptr) {
      return fail("directory inode " + std::to_string(inode.ino) + " has no directory table");
    }
    for (const std::string& name : inode.dir->List()) {
      const std::optional<InodeId> child = inode.dir->Lookup(name);
      if (!child.has_value() || inodes_.Find(*child) == nullptr) {
        return fail("dangling dirent '" + name + "' in dir " + std::to_string(inode.ino));
      }
    }
  }
  return true;
}

}  // namespace fsbench
