// Ext3-like file system: ext2 layout plus a write-ahead journal. Meta-data
// dirtied by namespace and allocation operations is logged; commits are
// periodic (kjournald) or synchronous on fsync. Reads behave like ext2 with
// slightly higher per-op CPU (transaction bookkeeping) and a smaller
// read-around cluster, which slows cache warm-up relative to ext2
// (see bench/fig2_warmup_timeline).
#ifndef SRC_SIM_EXT3FS_H_
#define SRC_SIM_EXT3FS_H_

#include <memory>

#include "src/sim/ext2fs.h"

namespace fsbench {

class Ext3Fs : public Ext2Fs {
 public:
  // Reserves `journal_blocks` file-system blocks for the journal region.
  Ext3Fs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock,
         uint64_t journal_blocks = 8192);

  const char* name() const override { return "ext3"; }
  FsKind kind() const override { return FsKind::kExt3; }

  // The journal needs the I/O scheduler, which exists only after the machine
  // is assembled; it is attached post-construction.
  void AttachJournal(std::unique_ptr<Journal> journal) { journal_ = std::move(journal); }
  Journal* journal() override { return journal_.get(); }
  const Extent& journal_region() const { return journal_region_; }

  ReadaheadConfig readahead_config() const override {
    return ReadaheadConfig{ReadaheadKind::kAdaptive, /*fixed_pages=*/8, /*min_window=*/4,
                           /*max_window=*/32, /*random_cluster=*/1};
  }

  Nanos per_op_cpu_overhead() const override { return 2 * kMicrosecond; }

 private:
  Extent journal_region_;
  std::unique_ptr<Journal> journal_;
};

}  // namespace fsbench

#endif  // SRC_SIM_EXT3FS_H_
