// Ext3-like file system: ext2 layout plus a JBD-flavoured write-ahead
// journal (JbdJournal over the generic transaction log — see txn_log.h).
// Meta-data dirtied by namespace and allocation operations is logged;
// commits are periodic (kjournald) or synchronous on fsync, and checkpoint
// writeback reclaims log space (stalling commits when the log fills — the
// fsync cliff). Reads behave like ext2 with slightly higher per-op CPU
// (transaction bookkeeping) and a smaller read-around cluster, which slows
// cache warm-up relative to ext2 (see bench/fig2_warmup_timeline).
#ifndef SRC_SIM_EXT3FS_H_
#define SRC_SIM_EXT3FS_H_

#include "src/sim/ext2fs.h"

namespace fsbench {

class Ext3Fs : public Ext2Fs {
 public:
  // Reserves `journal_blocks` file-system blocks for the journal region.
  Ext3Fs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock,
         uint64_t journal_blocks = 8192);

  const char* name() const override { return "ext3"; }
  FsKind kind() const override { return FsKind::kExt3; }

  const Extent& journal_region() const { return journal_region_; }

  ReadaheadConfig readahead_config() const override {
    return ReadaheadConfig{ReadaheadKind::kAdaptive, /*fixed_pages=*/8, /*min_window=*/4,
                           /*max_window=*/32, /*random_cluster=*/1};
  }

  Nanos per_op_cpu_overhead() const override { return 2 * kMicrosecond; }

  // errors=remount-ro (the distro default): a lost metadata or log write
  // aborts the journal and freezes the namespace read-only.
  bool RemountRoOnWriteError() const override { return true; }

 private:
  Extent journal_region_;
};

}  // namespace fsbench

#endif  // SRC_SIM_EXT3FS_H_
