#include "src/sim/flash_tier.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace fsbench {

FlashTier::FlashTier(const FlashTierConfig& config)
    : config_(config),
      capacity_pages_(static_cast<size_t>(config.capacity / config.page_size)) {
  assert(capacity_pages_ > 0);
}

bool FlashTier::LookupAndPromote(const PageKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

void FlashTier::Insert(const PageKey& key, BlockId block) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.block = block;
    return;
  }
  while (entries_.size() >= capacity_pages_) {
    const PageKey victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{lru_.begin(), block});
  ++stats_.insertions;
}

void FlashTier::Remove(const PageKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void FlashTier::RemoveFile(InodeId ino) {
  // Collect-sort-erase: the matching keys are gathered under hash order
  // (erasure is a set operation, so collection order is immaterial), then
  // removed in page order so any future per-eviction charging stays a pure
  // function of (config, seed) rather than of the hash seed.
  std::vector<uint64_t> pages;
  for (const auto& [key, entry] : entries_) {  // detlint: order-insensitive
    if (key.ino == ino) {
      pages.push_back(key.index);
    }
  }
  std::sort(pages.begin(), pages.end());
  for (uint64_t index : pages) {
    const auto it = entries_.find(PageKey{ino, index});
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
}

void FlashTier::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace fsbench
