#include "src/sim/flash_tier.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlashTier::FlashTier(const FlashTierConfig& config)
    : config_(config),
      capacity_pages_(static_cast<size_t>(config.capacity / config.page_size)) {
  assert(capacity_pages_ > 0);
  // Load factor <= 0.5 at full capacity keeps linear-probe runs short.
  table_.assign(NextPow2(std::max<size_t>(capacity_pages_ * 2, 16)), kNil);
  table_mask_ = table_.size() - 1;
  keys_.reserve(capacity_pages_);
  blocks_.reserve(capacity_pages_);
  links_.reserve(capacity_pages_);
  hashes_.reserve(capacity_pages_);
  slots_.reserve(capacity_pages_);
}

void FlashTier::TableInsertAt(size_t slot, uint32_t node) {
  assert(table_[slot] == kNil);
  table_[slot] = node;
  slots_[node] = static_cast<uint32_t>(slot);
}

void FlashTier::TableEraseNode(uint32_t node) {
  size_t hole = slots_[node];
  assert(table_[hole] == node);
  // Backward-shift deletion: walk the probe run after `hole`, moving back
  // any entry whose home slot lies cyclically at or before the hole, so
  // every remaining key stays reachable from its home without tombstones.
  size_t slot = hole;
  for (;;) {
    slot = (slot + 1) & table_mask_;
    const uint32_t moved = table_[slot];
    if (moved == kNil) {
      break;
    }
    const size_t home = hashes_[moved] & table_mask_;
    const size_t hole_distance = (slot - hole) & table_mask_;
    const size_t home_distance = (slot - home) & table_mask_;
    if (home_distance < hole_distance) {
      continue;
    }
    table_[hole] = moved;
    slots_[moved] = static_cast<uint32_t>(hole);
    hole = slot;
  }
  table_[hole] = kNil;
}

void FlashTier::TableGrow(size_t buckets) {
  table_.assign(NextPow2(buckets), kNil);
  table_mask_ = table_.size() - 1;
  // Reinsert every live node at its new home; probe order within a run is
  // rebuilt in node-allocation order, which is itself deterministic.
  for (uint32_t n = 0; n < keys_.size(); ++n) {
    if (keys_[n].ino == kInvalidInode) {
      continue;  // free-list node
    }
    TableInsertAt(ProbeSlot(keys_[n], hashes_[n]), n);
  }
}

void FlashTier::RehashForTest(size_t buckets) {
  if (buckets > table_.size()) {
    TableGrow(buckets);
  }
}

uint32_t FlashTier::AllocNode(const PageKey& key, uint32_t hash) {
  assert(key.ino != kInvalidInode);
  uint32_t n;
  if (free_head_ != kNil) {
    n = free_head_;
    free_head_ = links_[n].next;
  } else {
    assert(keys_.size() < capacity_pages_);
    n = static_cast<uint32_t>(keys_.size());
    keys_.emplace_back();
    blocks_.push_back(kInvalidBlock);
    links_.emplace_back();
    hashes_.push_back(0);
    slots_.push_back(0);
  }
  keys_[n] = key;
  hashes_[n] = hash;
  links_[n] = Link{};
  return n;
}

void FlashTier::ReleaseNode(uint32_t n) {
  keys_[n].ino = kInvalidInode;  // frees the node for RemoveFile's slab scan
  links_[n].next = free_head_;
  free_head_ = n;
}

void FlashTier::LruPushFront(uint32_t n) {
  Link& link = links_[n];
  link.prev = kNil;
  link.next = lru_head_;
  if (lru_head_ != kNil) {
    links_[lru_head_].prev = n;
  } else {
    lru_tail_ = n;
  }
  lru_head_ = n;
}

void FlashTier::LruUnlink(uint32_t n) {
  Link& link = links_[n];
  if (link.prev != kNil) {
    links_[link.prev].next = link.next;
  } else {
    lru_head_ = link.next;
  }
  if (link.next != kNil) {
    links_[link.next].prev = link.prev;
  } else {
    lru_tail_ = link.prev;
  }
  link.prev = link.next = kNil;
}

void FlashTier::EraseNode(uint32_t n) {
  LruUnlink(n);
  TableEraseNode(n);
  ReleaseNode(n);
  --size_;
}

bool FlashTier::LookupAndPromote(const PageKey& key) {
  const uint32_t n = FindNode(key);
  if (n == kNil) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  EraseNode(n);
  return true;
}

void FlashTier::Insert(const PageKey& key, BlockId block) {
  const uint32_t hash = HashOf(key);
  const size_t slot = ProbeSlot(key, hash);
  const uint32_t existing = table_[slot];
  if (existing != kNil) {
    // Refresh.
    if (lru_head_ != existing) {
      LruUnlink(existing);
      LruPushFront(existing);
    }
    blocks_[existing] = block;
    return;
  }
  while (size_ >= capacity_pages_) {
    EraseNode(lru_tail_);
    ++stats_.evictions;
  }
  // The eviction may have backward-shifted the probe run: re-probe rather
  // than trust `slot` (same re-probe-after-mutation rule as the page cache).
  const uint32_t n = AllocNode(key, hash);
  TableInsertAt(ProbeSlot(key, hash), n);
  blocks_[n] = block;
  LruPushFront(n);
  ++size_;
  ++stats_.insertions;
}

void FlashTier::Remove(const PageKey& key) {
  const uint32_t n = FindNode(key);
  if (n == kNil) {
    return;
  }
  EraseNode(n);
}

void FlashTier::RemoveFile(InodeId ino) {
  // Slab scan in node-index order: allocation history fixes the order, so
  // the walk (and any future per-eviction charging downstream of it) is a
  // pure function of the op sequence, never of the hash seed. O(slab) per
  // call is fine — unlink is rare next to lookups, and the slab is bounded
  // by the tier's capacity.
  for (uint32_t n = 0; n < keys_.size(); ++n) {
    if (keys_[n].ino == ino) {
      EraseNode(n);
    }
  }
}

void FlashTier::Clear() {
  std::fill(table_.begin(), table_.end(), kNil);
  keys_.clear();
  blocks_.clear();
  links_.clear();
  hashes_.clear();
  slots_.clear();
  free_head_ = kNil;
  lru_head_ = lru_tail_ = kNil;
  size_ = 0;
}

}  // namespace fsbench
