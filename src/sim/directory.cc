#include "src/sim/directory.h"

#include "src/util/units.h"

namespace fsbench {

void Directory::GrowIndex() {
  std::vector<uint32_t> old = std::move(index_);
  index_.assign(old.size() * 2, kEmpty);
  index_mask_ = index_.size() - 1;
  for (const uint32_t id : old) {
    if (id == kEmpty) {
      continue;
    }
    size_t pos = slots_[id].hash & index_mask_;
    while (index_[pos] != kEmpty) {
      pos = (pos + 1) & index_mask_;
    }
    index_[pos] = id;
  }
}

bool Directory::Insert(std::string_view name, InodeId ino) {
  const size_t hash = HashName(name);
  size_t pos = Probe(name, hash);
  if (index_[pos] != kEmpty) {
    return false;
  }
  // Keep the load factor at or under 0.7 so probe runs stay short.
  if ((entry_count_ + 1) * 10 > index_.size() * 7) {
    GrowIndex();
    pos = Probe(name, hash);
  }
  uint64_t slot;
  if (!holes_.empty()) {
    slot = holes_.back();
    holes_.pop_back();
    slots_[slot].name.assign(name);
    slots_[slot].ino = ino;
    slots_[slot].hash = hash;
  } else {
    slot = slots_.size();
    slots_.push_back(Slot{std::string(name), ino, hash});
  }
  index_[pos] = static_cast<uint32_t>(slot);
  ++entry_count_;
  return true;
}

std::optional<InodeId> Directory::Remove(std::string_view name) {
  size_t hole = Probe(name, HashName(name));
  if (index_[hole] == kEmpty) {
    return std::nullopt;
  }
  const uint64_t slot = index_[hole];
  const InodeId ino = slots_[slot].ino;
  slots_[slot].name.clear();
  slots_[slot].ino = kInvalidInode;
  holes_.push_back(slot);
  --entry_count_;

  // Backward-shift deletion: walk the probe run after the hole, moving back
  // any entry probing ran past it, so no tombstones accumulate.
  size_t pos = hole;
  for (;;) {
    pos = (pos + 1) & index_mask_;
    const uint32_t id = index_[pos];
    if (id == kEmpty) {
      break;
    }
    const size_t home = slots_[id].hash & index_mask_;
    const size_t hole_distance = (pos - hole) & index_mask_;
    const size_t home_distance = (pos - home) & index_mask_;
    if (home_distance < hole_distance) {
      continue;  // its home lies strictly after the hole; still reachable
    }
    index_[hole] = id;
    hole = pos;
  }
  index_[hole] = kEmpty;
  return ino;
}

std::optional<InodeId> Directory::Lookup(std::string_view name) const {
  const uint32_t id = index_[Probe(name, HashName(name))];
  if (id == kEmpty) {
    return std::nullopt;
  }
  return slots_[id].ino;
}

std::optional<uint64_t> Directory::SlotOf(std::string_view name) const {
  const uint32_t id = index_[Probe(name, HashName(name))];
  if (id == kEmpty) {
    return std::nullopt;
  }
  return id;
}

uint64_t Directory::BlockCount(uint64_t entries_per_block) const {
  if (slots_.empty()) {
    return 1;  // an empty directory still occupies one block ("." / "..")
  }
  return CeilDiv(slots_.size(), entries_per_block);
}

std::vector<std::string> Directory::List() const {
  std::vector<std::string> names;
  names.reserve(entry_count_);
  for (const Slot& slot : slots_) {
    if (!slot.name.empty()) {
      names.push_back(slot.name);
    }
  }
  return names;
}

}  // namespace fsbench
