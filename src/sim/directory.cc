#include "src/sim/directory.h"

#include "src/util/units.h"

namespace fsbench {

bool Directory::Insert(const std::string& name, InodeId ino) {
  if (index_.count(name) != 0) {
    return false;
  }
  uint64_t slot;
  if (!holes_.empty()) {
    slot = holes_.back();
    holes_.pop_back();
    slots_[slot] = Slot{name, ino};
  } else {
    slot = slots_.size();
    slots_.push_back(Slot{name, ino});
  }
  index_[name] = slot;
  return true;
}

std::optional<InodeId> Directory::Remove(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  const uint64_t slot = it->second;
  const InodeId ino = slots_[slot].ino;
  slots_[slot] = Slot{};
  holes_.push_back(slot);
  index_.erase(it);
  return ino;
}

std::optional<InodeId> Directory::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return slots_[it->second].ino;
}

std::optional<uint64_t> Directory::SlotOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t Directory::BlockCount(uint64_t entries_per_block) const {
  if (slots_.empty()) {
    return 1;  // an empty directory still occupies one block ("." / "..")
  }
  return CeilDiv(slots_.size(), entries_per_block);
}

std::vector<std::string> Directory::List() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const Slot& slot : slots_) {
    if (!slot.name.empty()) {
      names.push_back(slot.name);
    }
  }
  return names;
}

}  // namespace fsbench
