// Bitmap block allocator with block groups.
//
// Models the allocation behaviour that determines on-disk layout quality:
// goal-directed first-fit inside a block group (ext2-style locality), with
// spill-over to other groups when the goal group is full. Contiguous extent
// allocation serves the extent-based file system.
#ifndef SRC_SIM_BLOCK_ALLOCATOR_H_
#define SRC_SIM_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/types.h"

namespace fsbench {

struct BlockAllocatorStats {
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t goal_hits = 0;   // allocated exactly at the requested goal
  uint64_t group_spills = 0;  // had to leave the goal's group
};

class BlockAllocator {
 public:
  // `total_blocks` device blocks split into groups of `group_blocks`.
  BlockAllocator(uint64_t total_blocks, uint64_t group_blocks);

  // Allocates one block, preferring `goal`, then the goal's group, then
  // other groups. Returns std::nullopt when the device is full.
  std::optional<BlockId> AllocateBlock(BlockId goal);

  // Allocates a contiguous run of between min_count and max_count blocks
  // near `goal`. Prefers the longest run up to max_count it can find in the
  // goal group, then scans other groups; returns std::nullopt if no run of
  // at least min_count exists anywhere.
  std::optional<Extent> AllocateExtent(BlockId goal, uint64_t min_count, uint64_t max_count);

  // Allocates exactly `count` blocks near `goal`, possibly discontiguously.
  // Returns the extents, or an empty vector if space is insufficient
  // (in which case nothing is allocated).
  std::vector<Extent> AllocateBlocks(BlockId goal, uint64_t count);

  // Marks a range allocated at mkfs time (superblock, inode tables, journal).
  // Requires the range to be entirely free.
  void ReserveRange(const Extent& extent);

  void Free(const Extent& extent);

  bool IsAllocated(BlockId block) const;
  uint64_t total_blocks() const { return total_blocks_; }
  uint64_t used_blocks() const { return used_; }
  uint64_t free_blocks() const { return total_blocks_ - used_; }
  uint64_t group_count() const { return group_free_.size(); }
  uint64_t GroupOf(BlockId block) const { return block / group_blocks_; }
  const BlockAllocatorStats& stats() const { return stats_; }

  // Verifies the per-group free counters against the bitmap (fsck helper).
  bool CheckInvariants() const;

 private:
  bool TestBit(BlockId block) const;
  void SetBit(BlockId block);
  void ClearBit(BlockId block);
  // First free block in [from, to), or kInvalidBlock.
  BlockId FindFree(BlockId from, BlockId to) const;
  // Longest free run starting at or after `from` within [from, to), capped
  // at max_count. Returns count 0 when none.
  Extent FindRun(BlockId from, BlockId to, uint64_t min_count, uint64_t max_count) const;

  uint64_t total_blocks_;
  uint64_t group_blocks_;
  std::vector<uint64_t> bitmap_;
  std::vector<uint64_t> group_free_;
  uint64_t used_ = 0;
  BlockAllocatorStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_BLOCK_ALLOCATOR_H_
