#include "src/sim/ssd_model.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

SsdModel::SsdModel(const SsdParams& params)
    : DeviceModel(params.capacity / params.sector_bytes), params_(params) {
  assert(params_.sector_bytes > 0);
  assert(params_.page_bytes >= params_.sector_bytes);
  assert(params_.channels > 0);
  assert(params_.pages_per_block > 0);
  assert(params_.channel_xfer_rate > 0);
  sectors_per_page_ = params_.page_bytes / params_.sector_bytes;
  page_transfer_time_ = static_cast<Nanos>(static_cast<double>(params_.page_bytes) *
                                           static_cast<double>(kSecond) /
                                           static_cast<double>(params_.channel_xfer_rate));

  // Physical geometry: each channel owns its logical share of pages plus the
  // overprovisioned spare blocks GC breathes with, plus enough slack that
  // the pool can sit at the GC trigger with both append streams open.
  const uint64_t logical_pages =
      (total_sectors() + sectors_per_page_ - 1) / sectors_per_page_;
  const uint64_t pages_per_channel =
      (logical_pages + params_.channels - 1) / params_.channels;
  const uint64_t logical_blocks =
      (pages_per_channel + params_.pages_per_block - 1) / params_.pages_per_block;
  const uint64_t spare_blocks =
      static_cast<uint64_t>(static_cast<double>(logical_blocks) * params_.overprovision) + 1;
  blocks_per_channel_ = logical_blocks + spare_blocks + params_.gc_low_blocks + 2;

  blocks_.resize(blocks_per_channel_ * params_.channels);
  chans_.resize(params_.channels);
  for (uint32_t ch = 0; ch < params_.channels; ++ch) {
    Channel& c = chans_[ch];
    c.free.reserve(blocks_per_channel_);
    // Highest id first: pop_back hands out blocks in ascending id order.
    const uint64_t base = static_cast<uint64_t>(ch) * blocks_per_channel_;
    for (uint64_t i = blocks_per_channel_; i > 0; --i) {
      c.free.push_back(base + i - 1);
    }
  }
}

uint64_t SsdModel::TakeFreeBlock(uint32_t channel) {
  Channel& c = chans_[channel];
  assert(!c.free.empty());
  const uint64_t id = c.free.back();
  c.free.pop_back();
  blocks_[id].state = BlockState::kActive;
  return id;
}

uint64_t SsdModel::PickVictim(uint32_t channel) const {
  // Greedy victim: the sealed block with the fewest valid pages; ties to
  // the lowest id. O(blocks per channel), only paid when the pool is low.
  const uint64_t base = static_cast<uint64_t>(channel) * blocks_per_channel_;
  uint64_t best = kNoBlock;
  uint32_t best_valid = ~0u;
  for (uint64_t i = 0; i < blocks_per_channel_; ++i) {
    const Block& b = blocks_[base + i];
    if (b.state != BlockState::kSealed) {
      continue;
    }
    if (b.valid < best_valid) {
      best_valid = b.valid;
      best = base + i;
    }
  }
  return best;
}

void SsdModel::InvalidatePpn(uint64_t ppn) {
  Block& b = blocks_[ppn / params_.pages_per_block];
  assert(b.valid > 0);
  b.owner[ppn % params_.pages_per_block] = kInvalidLpn;
  --b.valid;
}

uint64_t SsdModel::AllocPage(uint32_t channel, bool for_gc, Nanos* gc_cost) {
  Channel& c = chans_[channel];
  uint64_t& active = for_gc ? c.gc_active : c.host_active;
  if (active != kNoBlock && blocks_[active].written == params_.pages_per_block) {
    blocks_[active].state = BlockState::kSealed;
    active = kNoBlock;
  }
  if (active == kNoBlock) {
    if (!for_gc) {
      // Reclaim before taking a fresh block so the pool never runs dry; the
      // GC stream itself draws straight from the pool (each victim it burns
      // a block on frees at least that block back).
      CollectGarbage(channel, gc_cost);
    }
    active = TakeFreeBlock(channel);
  }
  Block& b = blocks_[active];
  if (b.owner.empty()) {
    b.owner.assign(params_.pages_per_block, kInvalidLpn);
  }
  return active * params_.pages_per_block + b.written++;
}

void SsdModel::CollectGarbage(uint32_t channel, Nanos* gc_cost) {
  Channel& c = chans_[channel];
  DiskStats& stats = mutable_stats();
  // Each round erases exactly one victim; the guard bounds a pathological
  // all-valid device (which cannot be reclaimed anyway).
  for (uint32_t round = 0; c.free.size() <= params_.gc_low_blocks && round < 64; ++round) {
    const uint64_t victim = PickVictim(channel);
    if (victim == kNoBlock) {
      return;
    }
    Block& vb = blocks_[victim];
    if (vb.valid >= params_.pages_per_block) {
      return;  // nothing dead anywhere: relocating cannot gain space
    }
    for (uint32_t i = 0; i < vb.written; ++i) {
      const uint64_t lpn = vb.owner[i];
      if (lpn == kInvalidLpn) {
        continue;
      }
      // Relocation: read the live page, program it into the GC stream.
      *gc_cost += params_.read_latency + params_.program_latency;
      ++stats.gc_page_moves;
      const uint64_t ppn = AllocPage(channel, /*for_gc=*/true, gc_cost);
      Block& nb = blocks_[ppn / params_.pages_per_block];
      nb.owner[ppn % params_.pages_per_block] = lpn;
      ++nb.valid;
      page_map_[lpn] = ppn;
    }
    vb.valid = 0;
    vb.written = 0;
    std::fill(vb.owner.begin(), vb.owner.end(), kInvalidLpn);
    vb.state = BlockState::kFree;
    *gc_cost += params_.erase_latency;
    ++stats.gc_erases;
    c.free.push_back(victim);
  }
}

Nanos SsdModel::WritePage(uint64_t lpn) {
  Nanos gc_cost = 0;
  const auto it = page_map_.find(lpn);
  if (it != page_map_.end()) {
    InvalidatePpn(it->second);
  }
  const uint32_t ch = static_cast<uint32_t>(lpn % params_.channels);
  const uint64_t ppn = AllocPage(ch, /*for_gc=*/false, &gc_cost);
  Block& b = blocks_[ppn / params_.pages_per_block];
  b.owner[ppn % params_.pages_per_block] = lpn;
  ++b.valid;
  page_map_[lpn] = ppn;
  return gc_cost;
}

AccessResult SsdModel::AccessEx(const IoRequest& req, Nanos now) {
  assert(req.sector_count > 0);
  assert(req.lba + req.sector_count <= total_sectors());
  DiskStats& stats = mutable_stats();

  if (IsDead(now)) {
    // The controller is gone: the command times out without touching the
    // media, exactly as on the rotational model.
    ++stats.errors;
    AccessResult result;
    result.fault = FaultKind::kPersistent;
    result.fail_time = params_.command_overhead + params_.error_recovery_time;
    stats.total_fault_time += result.fail_time;
    return result;
  }

  // Redirect remapped regions to their spares before any fault check: the
  // damage lives at the original location, the spare serves cleanly.
  bool remapped = false;
  const uint64_t lba = RedirectLba(req.lba, req.sector_count, &remapped);

  const FaultDecision decision = DecideFault(lba, req.sector_count, now, remapped);

  // Pages stripe round-robin over the channels, so an N-page request's
  // transfer cost is the busiest channel's share.
  const uint64_t first_page = lba / sectors_per_page_;
  const uint64_t last_page = (lba + req.sector_count - 1) / sectors_per_page_;
  const uint64_t pages = last_page - first_page + 1;
  const uint64_t per_channel_pages = (pages + params_.channels - 1) / params_.channels;
  const Nanos transfer = static_cast<Nanos>(per_channel_pages) * page_transfer_time_;
  const Nanos media =
      req.kind == IoKind::kRead ? params_.read_latency : params_.program_latency;

  AccessResult result;
  if (decision.kind != FaultKind::kNone) {
    // The attempt consumed controller, media and transfer time before ECC
    // gave up; the FTL is untouched (the program never completed).
    ++stats.errors;
    result.fail_time =
        params_.command_overhead + media + transfer + params_.error_recovery_time;
    stats.total_fault_time += result.fail_time;
    result.fault = decision.kind;
    return result;
  }

  Nanos service = params_.command_overhead + media + transfer;
  stats.total_transfer_time += transfer;

  if (req.kind == IoKind::kWrite) {
    // Map every logical page through the FTL; reclaim stalls (read +
    // program per relocated page, plus the erase) charge the host write
    // that triggered them — write amplification as foreground latency.
    Nanos gc_time = 0;
    for (uint64_t p = first_page; p <= last_page; ++p) {
      gc_time += WritePage(p);
    }
    service += gc_time;
    stats.total_gc_time += gc_time;
  }

  if (decision.slow) {
    // Slow-I/O fault: completes, but read-retry sweeps multiply the whole
    // service time (tail-latency class), as on the rotational model.
    service = static_cast<Nanos>(static_cast<double>(service) * decision.slow_multiplier);
    result.slow = true;
  }

  if (req.kind == IoKind::kRead) {
    ++stats.reads;
    stats.sectors_read += req.sector_count;
  } else {
    ++stats.writes;
    stats.sectors_written += req.sector_count;
  }
  stats.total_service_time += service;
  result.service = service;
  return result;
}

}  // namespace fsbench
