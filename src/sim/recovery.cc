#include "src/sim/recovery.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/sim/shadow_disk.h"
#include "src/sim/txn_log.h"

namespace fsbench {

namespace {

// Mount-time recovery runs against an otherwise idle device: a fresh device
// model with the machine's (jittered) parameters accumulates the service
// time of each recovery request on its own private timeline.
class RecoveryDevice {
 public:
  RecoveryDevice(std::unique_ptr<DeviceModel> device, uint32_t sectors_per_block)
      : device_(std::move(device)), sectors_per_block_(sectors_per_block) {}

  void Read(BlockId block, uint64_t count) { Access(IoKind::kRead, block, count); }
  void Write(BlockId block, uint64_t count) { Access(IoKind::kWrite, block, count); }

  // Reads `blocks` (sorted, deduplicated in place), coalescing adjacent
  // runs into single requests.
  void ReadCoalesced(std::vector<BlockId>* blocks, bool write = false) {
    std::sort(blocks->begin(), blocks->end());
    blocks->erase(std::unique(blocks->begin(), blocks->end()), blocks->end());
    size_t i = 0;
    while (i < blocks->size()) {
      size_t run = 1;
      while (i + run < blocks->size() && (*blocks)[i + run] == (*blocks)[i] + run) {
        ++run;
      }
      Access(write ? IoKind::kWrite : IoKind::kRead, (*blocks)[i], run);
      i += run;
    }
  }

  Nanos elapsed() const { return elapsed_; }

 private:
  void Access(IoKind kind, BlockId block, uint64_t count) {
    const IoRequest req{kind, block * sectors_per_block_,
                        static_cast<uint32_t>(count * sectors_per_block_)};
    if (const auto result = device_->AccessEx(req, elapsed_); result.service.has_value()) {
      elapsed_ += *result.service;
    }
  }

  std::unique_ptr<DeviceModel> device_;
  uint32_t sectors_per_block_;
  Nanos elapsed_ = 0;
};

}  // namespace

CrashReport SimulateCrashRecovery(Machine& machine, Nanos crash_time, uint64_t ops_issued,
                                  uint64_t stable_watermark) {
  CrashReport report;
  report.crash_time = crash_time;
  report.ops_issued = ops_issued;
  report.dirty_pages_lost = machine.vfs().cache().dirty_count();

  // Assign completion times to everything still queued. The scheduler's
  // billing convention defers async service to the next sync arrival, but
  // physically the device worked through its queue from the moment each
  // request was submitted — so drain from virtual time 0: every pending
  // request starts at max(device busy, its submission time), and the
  // resulting completions are what durability is judged against.
  machine.DrainAll(0);
  const ShadowDisk* shadow = machine.shadow();
  if (shadow == nullptr) {
    // Hard failure in every build configuration: without the write history
    // there is nothing to judge durability against, and limping on would
    // fabricate a recovery outcome.
    std::fprintf(stderr,
                 "SimulateCrashRecovery: Machine::EnableCrashTracking() was never called\n");
    std::abort();
  }
  report.volatile_blocks = shadow->VolatileCount(crash_time);

  RecoveryDevice device(machine.MakeRecoveryDevice(machine.config().seed ^ 0x5ec07e11ULL),
                        machine.fs().sectors_per_block());

  Journal* journal = machine.fs().journal();
  TxnLog* log = journal != nullptr ? journal->txn_log() : nullptr;
  if (log != nullptr) {
    report.used_journal = true;
    uint64_t watermark = 0;
    bool gap = false;
    std::vector<BlockId> home_writes;
    // Mount reads the log superblock, then walks commits in order.
    device.Read(log->region().start, 1);
    for (const TxnLog::TxnRecord& txn : log->records()) {
      // A checkpointed transaction is durable by construction: reclaim
      // means every home block was written back (forced checkpoints drain
      // the device before reusing the space — JBD's wait-for-writeback
      // contract) or reported obsolete because the block was freed (the
      // revoke-record role; no write was ever owed). Judging it by the
      // block's *latest* write instead would let any in-flight rewrite of
      // a shared bitmap at the crash falsely tear every earlier
      // transaction. Known modeling window: the lazy reclaim path frees
      // space on writeback *submission*, so a transaction reclaimed within
      // the last async service delay before the crash is counted durable
      // slightly early (optimistic, never loses fsync'd data — sync
      // commits wait for the platter). In-flight writes stay visible as
      // volatile_blocks.
      const bool effective =
          txn.checkpointed || shadow->DurableBy(txn.commit_block, crash_time);
      if (gap || !effective) {
        // Replay stops at the first unreadable commit; everything beyond is
        // the torn tail, discarded no matter how much of it hit the log.
        gap = true;
        ++report.torn_txns;
        continue;
      }
      watermark = std::max(watermark, txn.watermark);
      ++report.durable_txns;
      if (!txn.checkpointed) {
        // Replay: sequential read of the transaction's log extent (split at
        // the wrap), then its home blocks are rewritten below.
        ++report.replayed_txns;
        report.replay_log_blocks += txn.log_blocks;
        const Extent region = log->region();
        const uint64_t first = txn.log_start;
        const uint64_t straight = std::min(txn.log_blocks, region.count - first);
        device.Read(region.start + first, straight);
        if (straight < txn.log_blocks) {
          device.Read(region.start, txn.log_blocks - straight);
        }
        for (const MetaRef& ref : txn.home) {
          home_writes.push_back(ref.block);
        }
      }
    }
    device.ReadCoalesced(&home_writes, /*write=*/true);
    // After the dedup inside ReadCoalesced: a shared block logged by many
    // replayed transactions is rewritten once, and the count matches the
    // I/O actually charged (fsck_blocks uses the same convention).
    report.replay_home_blocks = home_writes.size();
    report.recovery_watermark = std::max(watermark, stable_watermark);
  } else {
    // No journal: the recovered state is the last stable point, and getting
    // a mountable file system back costs a full offline metadata scan.
    std::vector<BlockId> scan;
    machine.fs().AppendMetadataBlocks(&scan);
    std::sort(scan.begin(), scan.end());
    scan.erase(std::unique(scan.begin(), scan.end()), scan.end());
    report.fsck_blocks = scan.size();
    device.ReadCoalesced(&scan);
    report.recovery_watermark = stable_watermark;
  }
  report.recovery_latency = device.elapsed();
  return report;
}

}  // namespace fsbench
