// Small-inline-capacity sequence for the simulator's per-operation I/O
// plans (MetaIo).
//
// The first N elements live inline (no heap); growth past N spills into a
// std::vector whose capacity is *retained* across clear(). A reused instance
// (the Vfs threads one scratch MetaIo through every operation) therefore
// reaches a steady state where push_back never allocates, no matter how
// large past operations were — the retained spill storage is the per-Vfs
// reusable arena the operation pipeline runs out of.
//
// Deliberately minimal: trivially-copyable element types only, index-based
// iteration (storage is not contiguous across the inline/spill boundary),
// value semantics via the defaulted copy/move members.
#ifndef SRC_SIM_SMALL_VEC_H_
#define SRC_SIM_SMALL_VEC_H_

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace fsbench {

template <typename T, uint32_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N > 0);

 public:
  using value_type = T;

  void push_back(const T& value) {
    if (size_ < N) {
      inline_[size_] = value;
    } else {
      const uint32_t spill_index = size_ - N;
      if (spill_index < spill_.size()) {
        spill_[spill_index] = value;  // reuse retained spill capacity
      } else {
        spill_.push_back(value);
      }
    }
    ++size_;
  }

  // Keeps the spill storage (capacity and size) for reuse; only the logical
  // length resets, so a warmed-up instance never allocates again.
  void clear() { size_ = 0; }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](uint32_t i) const {
    assert(i < size_);
    return i < N ? inline_[i] : spill_[i - N];
  }
  T& operator[](uint32_t i) {
    assert(i < size_);
    return i < N ? inline_[i] : spill_[i - N];
  }

  const T& back() const {
    assert(size_ > 0);
    return (*this)[size_ - 1];
  }

  class const_iterator {
   public:
    const_iterator(const SmallVec* vec, uint32_t index) : vec_(vec), index_(index) {}
    const T& operator*() const { return (*vec_)[index_]; }
    const T* operator->() const { return &(*vec_)[index_]; }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const const_iterator& other) const { return index_ == other.index_; }
    bool operator!=(const const_iterator& other) const { return index_ != other.index_; }

   private:
    const SmallVec* vec_;
    uint32_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  // Number of elements the instance can hold without allocating.
  uint32_t warm_capacity() const { return N + static_cast<uint32_t>(spill_.size()); }
  static constexpr uint32_t inline_capacity() { return N; }

 private:
  T inline_[N] = {};
  std::vector<T> spill_;
  uint32_t size_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_SMALL_VEC_H_
