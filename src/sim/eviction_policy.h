// Pluggable page-cache eviction policies.
//
// The paper asks (§2): "How are elements evicted from the cache? To the best
// of our knowledge, none of the existing benchmarks consider these
// questions." fsbench makes the policy a first-class, swappable component so
// the caching dimension can be benchmarked in isolation (see
// bench/ablation_eviction). Implemented: LRU, CLOCK, simplified 2Q
// (Johnson & Shasha, VLDB'94) and ARC (Megiddo & Modha, FAST'03).
//
// Contract: the policy tracks exactly the set of *resident* keys the cache
// holds. PageCache calls OnInsert when a page becomes resident, OnAccess on
// a hit, OnRemove on explicit invalidation, and ChooseVictim when it must
// evict; ChooseVictim returns a currently resident key and removes it from
// the policy's resident bookkeeping (ghost lists may retain it).
#ifndef SRC_SIM_EVICTION_POLICY_H_
#define SRC_SIM_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/sim/types.h"

namespace fsbench {

// Identity of a cached page: (inode, page index within the file). Meta-data
// blocks are cached under the reserved kMetaInode.
struct PageKey {
  InodeId ino = kInvalidInode;
  uint64_t index = 0;

  bool operator==(const PageKey& other) const = default;
};

inline constexpr InodeId kMetaInode = ~0ULL;

struct PageKeyHash {
  size_t operator()(const PageKey& key) const {
    uint64_t h = key.ino * 0x9e3779b97f4a7c15ULL;
    h ^= key.index + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

enum class EvictionPolicyKind : uint8_t { kLru, kClock, kTwoQueue, kArc };

const char* EvictionPolicyKindName(EvictionPolicyKind kind);

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const char* name() const = 0;
  virtual void OnInsert(const PageKey& key) = 0;
  virtual void OnAccess(const PageKey& key) = 0;
  virtual PageKey ChooseVictim() = 0;
  virtual void OnRemove(const PageKey& key) = 0;
  // Number of resident keys tracked; must equal the cache's size.
  virtual size_t resident_count() const = 0;
};

// Factory. `capacity_pages` sizes internal queues/ghost lists where the
// policy needs it (2Q, ARC); LRU and CLOCK ignore it.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind, size_t capacity_pages);

}  // namespace fsbench

#endif  // SRC_SIM_EVICTION_POLICY_H_
