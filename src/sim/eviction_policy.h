// Eviction-policy vocabulary for the slab-based page cache.
//
// The paper asks (§2): "How are elements evicted from the cache? To the best
// of our knowledge, none of the existing benchmarks consider these
// questions." fsbench makes the policy a first-class, swappable dimension so
// caching can be benchmarked in isolation (see bench/ablation_eviction).
// Implemented: LRU, CLOCK, simplified 2Q (Johnson & Shasha, VLDB'94) and ARC
// (Megiddo & Modha, FAST'03).
//
// All four policies are specified over a handful of queues (LRU stacks,
// CLOCK's ring, 2Q's A1in/A1out/Am, ARC's T1/T2/B1/B2). Rather than a
// virtual policy object keeping its own key->iterator maps next to the
// cache's key->entry map, the cache stores every page — resident and ghost —
// as one slab node tagged with the CacheListId of the intrusive list it
// currently lives on. This header defines that shared vocabulary; the slab
// itself and the policy transition rules live in src/sim/page_cache.{h,cc}.
#ifndef SRC_SIM_EVICTION_POLICY_H_
#define SRC_SIM_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/types.h"

namespace fsbench {

// Identity of a cached page: (inode, page index within the file). Meta-data
// blocks are cached under the reserved kMetaInode.
struct PageKey {
  InodeId ino = kInvalidInode;
  uint64_t index = 0;

  bool operator==(const PageKey& other) const = default;
};

inline constexpr InodeId kMetaInode = ~0ULL;

struct PageKeyHash {
  size_t operator()(const PageKey& key) const {
    uint64_t h = key.ino * 0x9e3779b97f4a7c15ULL;
    h ^= key.index + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    // murmur3 finalizer: without it the low bits are affine in `index` for a
    // fixed inode, and sequential pages of one file fill contiguous runs of
    // an open-addressed table — harmless under chaining, pathological for
    // linear probing (backward-shift deletes crawl the whole run).
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

enum class EvictionPolicyKind : uint8_t { kLru, kClock, kTwoQueue, kArc };

const char* EvictionPolicyKindName(EvictionPolicyKind kind);

// Which intrusive list a slab node is linked on. Which ids a cache uses
// depends on its policy:
//   LRU   : kLruList  (resident LRU stack)
//   CLOCK : kClockRing (resident ring; per-node referenced bit)
//   2Q    : kA1in (resident FIFO), kAm (resident LRU), kA1out (ghost FIFO)
//   ARC   : kT1/kT2 (resident), kB1/kB2 (ghosts)
// Ghost lists hold identities only: no block, never dirty, off the per-inode
// and dirty chains, invisible to Lookup/Contains.
enum class CacheListId : uint8_t {
  kNone = 0,  // free slab node
  kLruList,
  kClockRing,
  kA1in,
  kAm,
  kA1out,
  kT1,
  kT2,
  kB1,
  kB2,
};

inline constexpr size_t kNumCacheLists = 10;

const char* CacheListIdName(CacheListId id);

inline constexpr bool IsGhostList(CacheListId id) {
  return id == CacheListId::kA1out || id == CacheListId::kB1 || id == CacheListId::kB2;
}

inline constexpr bool IsResidentList(CacheListId id) {
  return id != CacheListId::kNone && !IsGhostList(id);
}

// Sizing derived from (kind, capacity): 2Q's A1in threshold and A1out bound,
// ARC's c, and the worst-case number of live (resident + ghost) slab nodes.
// The cache pre-sizes its slab and hash table from max_live_nodes so the
// steady state never allocates or rehashes.
struct PolicyGeometry {
  size_t kin = 0;             // 2Q: prefer evicting A1in while |A1in| > kin
  size_t kout = 0;            // 2Q: A1out ghost-list bound
  size_t arc_c = 0;           // ARC: cache size c
  size_t max_live_nodes = 0;  // slab bound, including eviction-time transients

  static PolicyGeometry For(EvictionPolicyKind kind, size_t capacity_pages);
};

}  // namespace fsbench

#endif  // SRC_SIM_EVICTION_POLICY_H_
