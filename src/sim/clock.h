// Virtual time source for the simulated stack.
//
// Everything that "takes time" in fsbench advances this clock explicitly;
// nothing reads wall-clock time. This is what makes experiments a pure
// function of their configuration, and it lets a 20-minute benchmark run
// execute in milliseconds of real time.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cassert>

#include "src/util/units.h"

namespace fsbench {

class VirtualClock {
 public:
  VirtualClock() = default;

  Nanos now() const { return now_ns_; }

  // Advances by a non-negative duration.
  void Advance(Nanos delta) {
    assert(delta >= 0);
    now_ns_ += delta;
  }

  // Jumps forward to an absolute instant; no-op if `t` is in the past
  // (virtual time never moves backwards).
  void AdvanceTo(Nanos t) {
    if (t > now_ns_) {
      now_ns_ = t;
    }
  }

 private:
  Nanos now_ns_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_CLOCK_H_
