// Virtual time source for the simulated stack.
//
// Everything that "takes time" in fsbench advances a VirtualClock
// explicitly; nothing reads wall-clock time. This is what makes experiments
// a pure function of their configuration, and it lets a 20-minute benchmark
// run execute in milliseconds of real time.
//
// A VirtualClock is also the per-thread *clock cursor* of the multi-thread
// engine: each simulated workload thread owns one, the engine binds it into
// the stack (Machine::BindCursor) before every step, and only the thread
// with the smallest cursor ever runs — so cross-thread time moves forward
// deterministically while the shared device timeline (IoScheduler) turns
// cursor gaps into queueing delay.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cassert>

#include "src/util/units.h"

namespace fsbench {

class VirtualClock {
 public:
  VirtualClock() = default;

  Nanos now() const { return now_ns_; }

  // Advances by a non-negative duration.
  void Advance(Nanos delta) {
    assert(delta >= 0);
    now_ns_ += delta;
  }

  // Jumps forward to an absolute instant; no-op if `t` is in the past
  // (virtual time never moves backwards).
  void AdvanceTo(Nanos t) {
    if (t > now_ns_) {
      now_ns_ = t;
    }
  }

 private:
  Nanos now_ns_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_CLOCK_H_
