// Virtual file system layer: ties the file system, page cache, readahead
// policy and I/O scheduler together and is the single component that charges
// virtual time.
//
// Cost model (matching the paper's testbed envelope; see DESIGN.md §4):
//   - each call costs a syscall overhead (~3.5 us),
//   - each page copied to/from the cache costs a copy charge (~0.5 us),
//   - cache misses wait for the disk through the I/O scheduler,
//   - readahead and writeback are asynchronous: they occupy the disk but do
//     not block the calling operation.
#ifndef SRC_SIM_VFS_H_
#define SRC_SIM_VFS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/filesystem.h"
#include "src/sim/flash_tier.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/page_cache.h"
#include "src/sim/readahead.h"
#include "src/sim/types.h"

namespace fsbench {

struct VfsConfig {
  Bytes page_size = 4 * kKiB;
  size_t cache_capacity_pages = 104960;  // ~410 MiB: 512 MiB RAM minus OS
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  Nanos syscall_overhead = 3500;
  Nanos page_copy_cost = 500;
  // CPU cost of touching one meta-data page through the cache (dentry walk,
  // buffer-head lookup); charged per MetaIo read/write, hit or miss.
  Nanos meta_touch_cost = 250;
  // Per-run CPU speed multiplier (machine jitter model); scales the two
  // costs above.
  double cpu_cost_multiplier = 1.0;
  // Background writeback starts when dirty pages exceed this many pages
  // (0 = tenth of the cache).
  size_t dirty_limit_pages = 0;
  size_t writeback_batch_pages = 256;
  // Cap on pages read in one coalesced demand request.
  uint32_t max_demand_batch = 32;
  // Override the file system's readahead configuration (for ablations).
  std::optional<ReadaheadConfig> readahead_override;
};

struct VfsStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t creates = 0;
  uint64_t unlinks = 0;
  uint64_t stats_calls = 0;
  uint64_t opens = 0;
  uint64_t fsyncs = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
  uint64_t data_page_hits = 0;
  uint64_t data_page_misses = 0;   // includes flash hits (they missed RAM)
  uint64_t flash_hits = 0;         // RAM misses served by the flash tier
  uint64_t demand_requests = 0;
  uint64_t readahead_pages = 0;
  uint64_t writeback_pages = 0;
  uint64_t io_errors = 0;
  // Device-fault / degraded-mode accounting.
  uint64_t write_errors = 0;       // permanent device write failures observed
  uint64_t meta_write_errors = 0;  // subset that hit metadata or journal-log writes
  uint64_t degraded_reads = 0;     // reads served while the fs was read-only
  uint64_t readonly_rejects = 0;   // mutations refused with kReadOnly
};

class Vfs : public CheckpointSink, public IoWriteErrorSink {
 public:
  // `flash` is an optional second-level cache tier (may be null): RAM
  // evictions are demoted into it and RAM misses probe it before disk.
  Vfs(VirtualClock* clock, BlockIo* io, FileSystem* fs, const VfsConfig& config,
      FlashTier* flash = nullptr);

  // Rebinds the clock cursor every operation charges time against. `clock`
  // passed at construction is the initial binding (the machine's base clock:
  // single-threaded behaviour); the multi-thread engine rebinds a per-thread
  // cursor around every step, so no operation touches a global clock — it
  // only ever advances the cursor of the simulated thread that issued it.
  void BindCursor(VirtualClock* cursor) { clock_ = cursor; }
  VirtualClock* cursor() { return clock_; }

  // --- POSIX-ish surface (absolute paths, '/'-separated) ---
  //
  // Paths are string_views: resolution walks them in place, handing each
  // component straight to the file system without copying.

  FsResult<int> Open(std::string_view path, bool create = false);
  FsStatus Close(int fd);
  FsResult<Bytes> Read(int fd, Bytes offset, Bytes length);
  FsResult<Bytes> Write(int fd, Bytes offset, Bytes length);
  FsStatus CreateFile(std::string_view path);
  FsStatus Mkdir(std::string_view path);
  FsStatus Unlink(std::string_view path);
  FsResult<FileAttr> Stat(std::string_view path);
  FsResult<std::vector<std::string>> ReadDir(std::string_view path);
  FsStatus Truncate(std::string_view path, Bytes new_size);
  // Writes back this file's dirty pages (per-file, via the page cache's
  // per-inode chain) and commits the journal; waits for idle disk.
  FsStatus Fsync(int fd);
  // Flushes all dirty pages and commits the journal; waits for idle disk.
  void SyncAll();

  // --- Experiment setup helpers: no virtual time is charged ---

  // Creates `path` (parents must exist) and allocates `size` bytes of
  // backing blocks without writing data — Filebench-style preallocation.
  FsStatus MakeFile(std::string_view path, Bytes size);

  // Loads the file's pages into the cache (ascending order, so under LRU the
  // file's tail is most recent). Stops early if the cache is smaller than
  // the file, having streamed it through once (keeps the *last* pages).
  FsStatus PrewarmFile(std::string_view path);

  // Drops the whole page cache (clean and dirty alike).
  void DropCaches();

  // CheckpointSink: the transaction log reclaims space by asking for the
  // still-dirty pages behind a committed transaction's home blocks to be
  // written back (async, at `now`). Pages already clean, evicted or
  // invalidated are reported straight back as at-home.
  size_t WritebackForCheckpoint(const MetaRef* refs, size_t count, Nanos now) override;

  // IoWriteErrorSink: the scheduler reports a write that failed permanently
  // (retry policy exhausted). Metadata/log failures are forwarded to the
  // file system, which may remount itself read-only (journal abort).
  void OnWriteError(const IoRequest& req, Nanos now) override;

  // --- Introspection ---

  PageCache& cache() { return cache_; }
  const PageCache& cache() const { return cache_; }
  FileSystem& fs() { return *fs_; }
  BlockIo& io() { return *io_; }
  const VfsStats& stats() const { return stats_; }
  const VfsConfig& config() const { return config_; }
  double DataHitRatio() const;

 private:
  struct OpenFile {
    InodeId ino = kInvalidInode;
    ReadaheadState readahead;
  };

  // How ResolvePath treats the last path component.
  enum class ResolveMode {
    kFull,    // resolve every component; return the final inode
    kParent,  // stop before the leaf: no leaf lookup (Create/Unlink scan
              // the directory themselves); returns the parent
    kOpen,    // resolve the leaf too, but also report parent + leaf so a
              // missing leaf can be created without a second walk
  };

  // Splits "/a/b/c" and walks Lookup in a single pass. `parent_out` /
  // `leaf_out` are filled per `mode`; `*parent_out` stays kInvalidInode when
  // the walk failed before reaching the leaf's parent (or the path is "/").
  FsResult<InodeId> ResolvePath(std::string_view path, ResolveMode mode, InodeId* parent_out,
                                std::string_view* leaf_out);

  // The four fixed CPU charges, pre-scaled by cpu_cost_multiplier at
  // construction (same rounding as scaling at charge time), so the hot
  // path advances the clock without per-charge floating-point work.
  Nanos scaled_syscall_ = 0;
  Nanos scaled_syscall_plus_op_ = 0;  // syscall + fs per-op overhead
  Nanos scaled_page_copy_ = 0;
  Nanos scaled_meta_touch_ = 0;

  // Executes the meta-data I/O plan: reads through the cache (sync disk
  // reads on miss), dirties written pages (journaling them), drops
  // invalidated entries. Returns kIoError on injected faults.
  FsStatus ProcessMetaIo(const MetaIo& io);

  // Reads `count` device blocks at `block` synchronously; advances the
  // clock to completion. `meta` tags the request as metadata for the fault
  // plumbing.
  FsStatus DemandRead(BlockId block, uint32_t count, bool meta = false);

  // Handles pages evicted by a cache insert: dirty ones are queued as async
  // writes.
  void HandleEvictions(const PageCache::EvictedBatch& evicted);

  // Pops up to `max_pages` dirty pages and queues them as async writes in
  // device-block order (so the elevator sees sequential runs).
  void WritebackDirty(size_t max_pages);

  // Sorts `batch` by device block and queues the pages as async writes,
  // reporting each home write to the journal (shared tail of
  // WritebackDirty, the per-file Fsync, and checkpoint writeback).
  void SubmitWritebackBatch(std::vector<PageCache::Evicted>& batch);
  void SubmitWritebackScratch() { SubmitWritebackBatch(writeback_scratch_); }

  // Inserts a page and processes evictions.
  void InsertPage(const PageKey& key, BlockId block, bool dirty);

  // Issues asynchronous readahead of up to `pages` pages after `index`.
  void IssueReadahead(OpenFile& file, uint64_t index, uint32_t pages);

  // Flushes dirty pages asynchronously if over the dirty limit.
  void MaybeWriteback();

  // Commits the journal if its periodic timer expired.
  void JournalTick();

  OpenFile* FileFor(int fd);

  VirtualClock* clock_;
  BlockIo* io_;
  FileSystem* fs_;
  FlashTier* flash_;
  VfsConfig config_;
  PageCache cache_;
  ReadaheadPolicy readahead_;
  std::vector<std::optional<OpenFile>> fd_table_;
  size_t dirty_limit_;
  VfsStats stats_;
  // Reused scratch buffers, the per-Vfs arena of the operation pipeline: one
  // MetaIo threaded through every FileSystem call (its SmallVec spill
  // storage is retained across Reset, so a warmed-up Vfs never allocates on
  // the hit path) and the writeback batch.
  MetaIo meta_scratch_;
  std::vector<PageCache::Evicted> writeback_scratch_;
  // Separate from writeback_scratch_: checkpoint writeback can be forced
  // from inside Fsync, while writeback_scratch_ is mid-use.
  std::vector<PageCache::Evicted> checkpoint_scratch_;
};

}  // namespace fsbench

#endif  // SRC_SIM_VFS_H_
