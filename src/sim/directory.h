// In-memory directory contents with an on-disk cost model.
//
// Entries live in slots; a removed entry leaves a reusable hole, as ext2
// dirent reuse does. The slot position determines which directory block an
// entry occupies, which in turn determines how many block reads a linear
// scan needs to find it.
//
// The name index is a flat open-addressing table (linear probe,
// backward-shift deletion) of slot ids, with each slot caching its name's
// hash: a lookup costs one mask, a cached-hash compare and (on match) one
// string compare — no prime modulo, no node chase, no per-entry heap node.
// Lookups take std::string_view, so path resolution probes with components
// pointing straight into the path being walked; only mutations copy the
// name, which they must anyway for storage.
#ifndef SRC_SIM_DIRECTORY_H_
#define SRC_SIM_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/types.h"

namespace fsbench {

class Directory {
 public:
  Directory() : index_(kInitialSlots, kEmpty), index_mask_(kInitialSlots - 1) {}

  // Returns false if the name already exists.
  bool Insert(std::string_view name, InodeId ino);

  // Returns the removed inode, or std::nullopt if absent.
  std::optional<InodeId> Remove(std::string_view name);

  std::optional<InodeId> Lookup(std::string_view name) const;

  // Slot index of `name` (for the linear-scan cost model), or std::nullopt.
  std::optional<uint64_t> SlotOf(std::string_view name) const;

  // Slot and inode together from a single index probe — the resolution hot
  // path needs both (slot for the scan-cost model, ino for the result).
  struct Entry {
    uint64_t slot = 0;
    InodeId ino = kInvalidInode;
  };
  std::optional<Entry> Find(std::string_view name) const {
    const uint32_t id = index_[Probe(name, HashName(name))];
    if (id == kEmpty) {
      return std::nullopt;
    }
    return Entry{id, slots_[id].ino};
  }

  // Number of live entries.
  size_t entry_count() const { return entry_count_; }

  // Number of slots in use including holes; determines block count.
  uint64_t slot_count() const { return slots_.size(); }

  // Directory data blocks needed for `slot_count` slots.
  uint64_t BlockCount(uint64_t entries_per_block) const;

  // Live names in slot order.
  std::vector<std::string> List() const;

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kInitialSlots = 16;

  struct Slot {
    std::string name;  // empty == hole
    InodeId ino = kInvalidInode;
    size_t hash = 0;  // cached hash of `name` (valid when not a hole)
  };

  // Inline FNV-1a with a murmur-style finisher. Component names are a few
  // bytes; std::hash<string_view> would be an out-of-line _Hash_bytes call
  // per probe. This hash is internal to the index (never part of the
  // simulated cost model — the xfs btree leaf choice keeps std::hash).
  static size_t HashName(std::string_view name) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }

  // Index position holding `name`, or the first empty position of its run.
  // (Inline: this is the per-path-component probe on the resolution hot
  // path, and its callers below inline into the file-system lookup.)
  size_t Probe(std::string_view name, size_t hash) const {
    size_t pos = hash & index_mask_;
    for (;;) {
      const uint32_t id = index_[pos];
      if (id == kEmpty || (slots_[id].hash == hash && slots_[id].name == name)) {
        return pos;
      }
      pos = (pos + 1) & index_mask_;
    }
  }
  void GrowIndex();

  std::vector<Slot> slots_;
  std::vector<uint64_t> holes_;   // indices of free slots, reused LIFO
  std::vector<uint32_t> index_;   // open addressing: positions hold slot ids
  size_t index_mask_;
  size_t entry_count_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_DIRECTORY_H_
