// In-memory directory contents with an on-disk cost model.
//
// Entries live in slots; a removed entry leaves a reusable hole, as ext2
// dirent reuse does. The slot position determines which directory block an
// entry occupies, which in turn determines how many block reads a linear
// scan needs to find it.
#ifndef SRC_SIM_DIRECTORY_H_
#define SRC_SIM_DIRECTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace fsbench {

class Directory {
 public:
  // Returns false if the name already exists.
  bool Insert(const std::string& name, InodeId ino);

  // Returns the removed inode, or std::nullopt if absent.
  std::optional<InodeId> Remove(const std::string& name);

  std::optional<InodeId> Lookup(const std::string& name) const;

  // Slot index of `name` (for the linear-scan cost model), or std::nullopt.
  std::optional<uint64_t> SlotOf(const std::string& name) const;

  // Number of live entries.
  size_t entry_count() const { return index_.size(); }

  // Number of slots in use including holes; determines block count.
  uint64_t slot_count() const { return slots_.size(); }

  // Directory data blocks needed for `slot_count` slots.
  uint64_t BlockCount(uint64_t entries_per_block) const;

  // Live names in slot order.
  std::vector<std::string> List() const;

 private:
  struct Slot {
    std::string name;  // empty == hole
    InodeId ino = kInvalidInode;
  };
  std::vector<Slot> slots_;
  std::vector<uint64_t> holes_;  // indices of free slots, reused LIFO
  std::unordered_map<std::string, uint64_t> index_;  // name -> slot
};

}  // namespace fsbench

#endif  // SRC_SIM_DIRECTORY_H_
