#include "src/sim/block_array.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

BlockArray::BlockArray(const ArrayConfig& config, std::vector<IoScheduler*> devices,
                       std::vector<IoScheduler*> spares)
    : config_(config) {
  switch (config_.geometry) {
    case ArrayGeometry::kSingle:
      width_ = 1;
      replicas_ = 1;
      break;
    case ArrayGeometry::kMirror:
      width_ = 1;
      replicas_ = static_cast<uint32_t>(devices.size());
      break;
    case ArrayGeometry::kStripe:
      width_ = static_cast<uint32_t>(devices.size());
      replicas_ = 1;
      break;
    case ArrayGeometry::kStripeMirror:
      assert(devices.size() % 2 == 0);
      width_ = static_cast<uint32_t>(devices.size() / 2);
      replicas_ = 2;
      break;
  }
  assert(!devices.empty());
  assert(devices.size() == static_cast<size_t>(width_) * replicas_);
  assert(config_.chunk_sectors > 0);

  all_ = std::move(devices);
  for (IoScheduler* spare : spares) {
    spare_pool_.push_back(all_.size());
    all_.push_back(spare);
  }
  device_set_.assign(all_.size(), SIZE_MAX);
  written_regions_.assign(all_.size(), {});
  read_cursor_.assign(all_.size(), UINT64_MAX);
  failure_noticed_.assign(all_.size(), false);

  sets_.resize(width_);
  for (size_t s = 0; s < width_; ++s) {
    MirrorSet& set = sets_[s];
    for (uint32_t r = 0; r < replicas_; ++r) {
      const size_t device = s * replicas_ + r;
      set.members.push_back(device);
      set.live.push_back(true);
      device_set_[device] = s;
    }
  }
  summary_.devices = all_.size();
}

void BlockArray::MapRequest(uint64_t lba, uint32_t count, std::vector<SubRange>* out) const {
  out->clear();
  if (width_ == 1) {
    out->push_back(SubRange{0, lba, count});
    return;
  }
  uint64_t cur = lba;
  uint32_t remaining = count;
  while (remaining > 0) {
    const uint64_t chunk = cur / config_.chunk_sectors;
    const uint64_t offset = cur % config_.chunk_sectors;
    const uint32_t take =
        static_cast<uint32_t>(std::min<uint64_t>(remaining, config_.chunk_sectors - offset));
    const size_t set = chunk % width_;
    const uint64_t phys = (chunk / width_) * config_.chunk_sectors + offset;
    if (!out->empty() && out->back().set == set && out->back().lba + out->back().count == phys) {
      out->back().count += take;
    } else {
      out->push_back(SubRange{set, phys, take});
    }
    cur += take;
    remaining -= take;
  }
}

uint32_t BlockArray::LiveReplicas(size_t set) const {
  uint32_t live = 0;
  for (const bool flag : sets_[set].live) {
    live += flag ? 1 : 0;
  }
  return live;
}

bool BlockArray::RebuildActive() const {
  for (const MirrorSet& set : sets_) {
    if (set.rebuilding) {
      return true;
    }
  }
  return false;
}

size_t BlockArray::ChooseReadReplica(const MirrorSet& set, size_t exclude,
                                     uint64_t lba) const {
  size_t best = SIZE_MAX;
  Nanos best_busy = 0;
  for (size_t slot = 0; slot < set.members.size(); ++slot) {
    if (!set.live[slot] || slot == exclude) {
      continue;
    }
    const size_t device = set.members[slot];
    // Sequential affinity first (lowest slot on a tie): the replica that just
    // read the preceding range has it in its track buffer and its head on the
    // right cylinder, so continuing the stream there is near-free. Splitting
    // a stream across replicas would turn every other read into a seek.
    if (read_cursor_[device] == lba) {
      return slot;
    }
    const Nanos busy = all_[device]->busy_until();
    if (best == SIZE_MAX || busy < best_busy) {
      best = slot;
      best_busy = busy;
    }
  }
  return best;
}

size_t BlockArray::ChooseSource(const MirrorSet& set, size_t exclude_slot) const {
  for (size_t slot = 0; slot < set.members.size(); ++slot) {
    if (set.live[slot] && slot != exclude_slot) {
      return slot;
    }
  }
  return SIZE_MAX;
}

void BlockArray::NoteAccess(size_t device, uint64_t lba, uint32_t count) {
  const uint64_t region_sectors = all_[device]->disk()->region_sectors();
  const uint64_t last = lba + (count > 0 ? count - 1 : 0);
  for (uint64_t r = lba / region_sectors; r <= last / region_sectors; ++r) {
    written_regions_[device].insert(r);
  }
}

uint64_t BlockArray::ForegroundKey(size_t device, uint64_t lba) const {
  const uint64_t region = lba / all_[device]->disk()->region_sectors();
  return (static_cast<uint64_t>(device) << 44) | region;
}

void BlockArray::RecordForegroundFault(size_t device, uint64_t lba) {
  foreground_fault_regions_.insert(ForegroundKey(device, lba));
}

void BlockArray::CheckDeviceFailures(Nanos now) {
  for (size_t d = 0; d < all_.size(); ++d) {
    if (!failure_noticed_[d] && all_[d]->disk()->IsDead(now)) {
      failure_noticed_[d] = true;
      ++summary_.device_failures;
    }
  }
  for (size_t s = 0; s < sets_.size(); ++s) {
    MirrorSet& set = sets_[s];
    bool any_dead_slot = false;
    for (size_t slot = 0; slot < set.members.size(); ++slot) {
      if (set.live[slot] && failure_noticed_[set.members[slot]]) {
        set.live[slot] = false;
      }
      any_dead_slot = any_dead_slot || !set.live[slot];
    }
    if (set.rebuilding && failure_noticed_[set.rebuild_target]) {
      // The spare died mid-resilver; abandon it (another spare, if any, can
      // be claimed on the next pass).
      set.rebuilding = false;
    }
    if (LiveReplicas(s) == 0) {
      summary_.data_loss = true;
      set.rebuilding = false;
      continue;
    }
    if (replicas_ > 1 && any_dead_slot && !set.rebuilding && !spare_pool_.empty()) {
      size_t slot = SIZE_MAX;
      for (size_t i = 0; i < set.live.size(); ++i) {
        if (!set.live[i]) {
          slot = i;
          break;
        }
      }
      set.rebuilding = true;
      set.rebuild_slot = slot;
      set.rebuild_target = spare_pool_.front();
      spare_pool_.erase(spare_pool_.begin());
      device_set_[set.rebuild_target] = s;
      set.rebuild_cursor = 0;
      set.rebuild_due = now + config_.rebuild_interval;
      ++summary_.rebuilds_started;
    }
  }
}

void BlockArray::AdvanceBackground(Nanos now) {
  CheckDeviceFailures(now);
  const bool scrub_on = config_.scrub;
  if (!scrub_on && !RebuildActive()) {
    return;
  }
  if (scrub_on && scrub_due_ < 0) {
    // Lazy start: the first background advance anchors the scrub cadence, so
    // a machine assembled at time 0 but first driven much later does not
    // replay a catch-up storm of probes.
    scrub_due_ = now + config_.scrub_interval;
  }
  for (;;) {
    // Earliest due step wins; rebuild beats scrub on ties (redundancy
    // restoration is the more urgent background job).
    size_t rebuild_set = SIZE_MAX;
    Nanos rebuild_due = 0;
    for (size_t s = 0; s < sets_.size(); ++s) {
      if (sets_[s].rebuilding && sets_[s].rebuild_due <= now &&
          (rebuild_set == SIZE_MAX || sets_[s].rebuild_due < rebuild_due)) {
        rebuild_set = s;
        rebuild_due = sets_[s].rebuild_due;
      }
    }
    const bool scrub_ready = scrub_on && scrub_due_ >= 0 && scrub_due_ <= now;
    if (rebuild_set != SIZE_MAX && (!scrub_ready || rebuild_due <= scrub_due_)) {
      RebuildStep(rebuild_set, rebuild_due);  // advances rebuild_due itself
      continue;
    }
    if (scrub_ready) {
      ScrubStep(scrub_due_);
      scrub_due_ += config_.scrub_interval;
      continue;
    }
    break;
  }
}

void BlockArray::RebuildStep(size_t set_index, Nanos t) {
  MirrorSet& set = sets_[set_index];
  const size_t source_slot = ChooseSource(set, set.rebuild_slot);
  if (source_slot == SIZE_MAX) {
    summary_.data_loss = true;
    set.rebuilding = false;
    return;
  }
  const size_t source = set.members[source_slot];
  const size_t target = set.rebuild_target;
  // Idle-yield throttle (md-style): the cadence sets the *maximum* copy
  // rate; a step that finds either device still busy with foreground work
  // yields and retries when the queue clears, so the resilver soaks up idle
  // bandwidth instead of stacking an unbounded backlog on busy devices. A
  // sustained foreground load would postpone forever, so — like md's
  // speed_limit_min floor — every fourth opportunity copies regardless: the
  // exposure window must close even on a machine that is never idle.
  const Nanos busy = std::max(all_[source]->busy_until(), all_[target]->busy_until());
  if (busy > t && set.rebuild_yields < 3) {
    ++set.rebuild_yields;
    set.rebuild_due = t + config_.rebuild_interval;
    return;
  }
  set.rebuild_yields = 0;
  DeviceModel* source_disk = all_[source]->disk();
  const uint64_t region_sectors = source_disk->region_sectors();
  // Resilver only regions that ever held data: copying 250 GB of untouched
  // sectors would make any rebuild window meaningless (allocated-only
  // resilvering, the ZFS/md-bitmap idea). Regions written behind the cursor
  // during the rebuild need no revisit — foreground writes already fan out
  // to the target.
  const std::set<uint64_t>& regions = written_regions_[source];
  const auto next = regions.lower_bound(set.rebuild_cursor);
  if (next == regions.end()) {
    set.members[set.rebuild_slot] = target;
    set.live[set.rebuild_slot] = true;
    set.rebuilding = false;
    ++summary_.rebuilds_completed;
    return;
  }
  const uint64_t start = *next * region_sectors;
  const uint32_t count = static_cast<uint32_t>(
      std::min<uint64_t>(region_sectors, source_disk->total_sectors() - start));
  const IoRequest read{IoKind::kRead, start, count, false};
  const IoRequest write{IoKind::kWrite, start, count, false};
  ++suppress_sink_;
  current_device_ = source;
  all_[source]->SubmitSync(read, t);
  current_device_ = target;
  all_[target]->SubmitSync(write, t);
  current_device_ = SIZE_MAX;
  --suppress_sink_;
  NoteAccess(target, start, count);
  ++summary_.rebuild_regions_copied;
  set.rebuild_cursor = *next + 1;
  set.rebuild_due = t + config_.rebuild_interval;
  if (regions.lower_bound(set.rebuild_cursor) == regions.end()) {
    set.members[set.rebuild_slot] = target;
    set.live[set.rebuild_slot] = true;
    set.rebuilding = false;
    ++summary_.rebuilds_completed;
  }
}

void BlockArray::ScrubStep(Nanos t) {
  const size_t n = all_.size();
  for (size_t tries = 0; tries < n; ++tries) {
    const size_t d = scrub_device_;
    DeviceModel* disk = all_[d]->disk();
    // md pauses check/repair on a set that is degraded or resilvering: there
    // is no second copy to verify against (every detection would be
    // unrepairable) and the rebuild owns the set's spare bandwidth.
    const bool set_paused =
        replicas_ > 1 && device_set_[d] != SIZE_MAX &&
        (sets_[device_set_[d]].rebuilding ||
         std::find(sets_[device_set_[d]].live.begin(), sets_[device_set_[d]].live.end(), false) !=
             sets_[device_set_[d]].live.end());
    // Allocated-only scan, same as the resilver: walk the regions that ever
    // held data, in index order, then move to the next device.
    const std::set<uint64_t>& regions = written_regions_[d];
    const auto first = device_set_[d] == SIZE_MAX || disk->dead() || set_paused
                           ? regions.end()
                           : regions.lower_bound(scrub_region_);
    if (first == regions.end()) {
      scrub_device_ = (scrub_device_ + 1) % n;
      scrub_region_ = 0;
      if (scrub_device_ == 0) {
        scrub_due_ = t + config_.scrub_pass_rest;  // full pass done: rest
      }
      continue;
    }
    // Same idle-yield as the rebuild: a probe is a full-region verify read,
    // and firing it into a busy queue on every tick would make the scrub the
    // dominant tenant. Skip this tick when the device has foreground backlog;
    // every fourth opportunity probes anyway so the scan still finishes.
    if (all_[d]->busy_until() > t && scrub_yields_ < 3) {
      ++scrub_yields_;
      return;
    }
    scrub_yields_ = 0;
    const uint64_t region_sectors = disk->region_sectors();
    // Probe up to scrub_batch regions in sorted-LBA order. The elevator
    // serves the whole burst in one sweep; the alternative — the same
    // regions one isolated probe at a time — pays a seek (and breaks any
    // foreground stream) per region.
    ++suppress_sink_;
    for (uint32_t b = 0; b < config_.scrub_batch; ++b) {
      const auto it = regions.lower_bound(scrub_region_);
      if (it == regions.end()) break;
      const uint64_t start = *it * region_sectors;
      const uint32_t count = static_cast<uint32_t>(
          std::min<uint64_t>(region_sectors, disk->total_sectors() - start));
      const bool bad = disk->RegionLatentBad(start, t);
      ++summary_.scrub_regions_scanned;
      current_device_ = d;
      if (!bad) {
        // Clean region: the verify read is charged on the device timeline —
        // scrubbing is exactly this interference.
        all_[d]->SubmitSync(IoRequest{IoKind::kRead, start, count, false}, t);
      } else {
        // Latent-bad region: the verify read would fail no matter how often
        // the drive's ERC loop retries it, and the per-device retry policy
        // would also race the scrub to the remap. The scrub owns this repair:
        // don't spin the doomed read, go straight to remap + re-copy
        // (charged below).
        ++summary_.scrub_detections;
        if (foreground_fault_regions_.count(ForegroundKey(d, start)) == 0) {
          ++summary_.scrub_preempted;
        }
        const MirrorSet& set = sets_[device_set_[d]];
        size_t my_slot = SIZE_MAX;
        for (size_t slot = 0; slot < set.members.size(); ++slot) {
          if (set.members[slot] == d) {
            my_slot = slot;
            break;
          }
        }
        const size_t source_slot = ChooseSource(set, my_slot);
        if (source_slot == SIZE_MAX || !disk->RemapRegion(start)) {
          // No mirror copy to repair from (stripe, or the set's other
          // replicas are gone), or the spare pool is exhausted.
          ++summary_.scrub_unrepairable;
        } else {
          const size_t source = set.members[source_slot];
          current_device_ = source;
          all_[source]->SubmitSync(IoRequest{IoKind::kRead, start, count, false}, t);
          current_device_ = d;
          // Redirected to the freshly-assigned spare region by the remap.
          all_[d]->SubmitSync(IoRequest{IoKind::kWrite, start, count, false}, t);
          ++summary_.scrub_repairs;
        }
      }
      scrub_region_ = *it + 1;
    }
    current_device_ = SIZE_MAX;
    --suppress_sink_;
    if (regions.lower_bound(scrub_region_) == regions.end()) {
      scrub_device_ = (scrub_device_ + 1) % n;
      scrub_region_ = 0;
      if (scrub_device_ == 0) {
        scrub_due_ = t + config_.scrub_pass_rest;  // full pass done: rest
      }
    }
    return;  // one burst per step
  }
}

std::optional<Nanos> BlockArray::SyncReadSub(const SubRange& sub, bool meta, Nanos now) {
  MirrorSet& set = sets_[sub.set];
  const IoRequest req{IoKind::kRead, sub.lba, sub.count, meta};
  const size_t first = ChooseReadReplica(set, SIZE_MAX, sub.lba);
  if (first == SIZE_MAX) {
    ++summary_.lost_stripes;
    summary_.data_loss = true;
    return std::nullopt;
  }
  const size_t first_device = set.members[first];
  NoteAccess(first_device, sub.lba, sub.count);
  read_cursor_[first_device] = sub.lba + sub.count;
  current_device_ = first_device;
  const std::optional<Nanos> done = all_[first_device]->SubmitSync(req, now);
  current_device_ = SIZE_MAX;
  if (done.has_value()) {
    return done;
  }
  // Degraded path: the chosen replica failed (bad region or dead device).
  // Latch any death this attempt just discovered, then walk the surviving
  // replicas in slot order.
  RecordForegroundFault(first_device, sub.lba);
  ++summary_.degraded_reads;
  CheckDeviceFailures(now);
  for (size_t slot = 0; slot < set.members.size(); ++slot) {
    if (slot == first || !set.live[slot]) {
      continue;
    }
    const size_t device = set.members[slot];
    NoteAccess(device, sub.lba, sub.count);
    current_device_ = device;
    const std::optional<Nanos> rescued = all_[device]->SubmitSync(req, now);
    current_device_ = SIZE_MAX;
    if (rescued.has_value()) {
      ++summary_.mirror_rescues;
      return rescued;
    }
    RecordForegroundFault(device, sub.lba);
  }
  ++summary_.lost_stripes;
  return std::nullopt;
}

std::optional<Nanos> BlockArray::SyncWriteSub(const SubRange& sub, bool meta, Nanos now) {
  MirrorSet& set = sets_[sub.set];
  const IoRequest req{IoKind::kWrite, sub.lba, sub.count, meta};
  Nanos completion = now;
  bool any_live = false;
  bool any_ok = false;
  ++suppress_sink_;
  for (size_t slot = 0; slot < set.members.size(); ++slot) {
    if (!set.live[slot]) {
      continue;
    }
    any_live = true;
    const size_t device = set.members[slot];
    NoteAccess(device, sub.lba, sub.count);
    current_device_ = device;
    const std::optional<Nanos> done = all_[device]->SubmitSync(req, now);
    current_device_ = SIZE_MAX;
    if (done.has_value()) {
      any_ok = true;
      completion = std::max(completion, *done);
    } else {
      RecordForegroundFault(device, sub.lba);
    }
  }
  if (set.rebuilding) {
    // Keep the resilvering spare current: regions behind the rebuild cursor
    // must not go stale, and regions ahead of it get copied later anyway.
    const size_t target = set.rebuild_target;
    NoteAccess(target, sub.lba, sub.count);
    current_device_ = target;
    const std::optional<Nanos> done = all_[target]->SubmitSync(req, now);
    current_device_ = SIZE_MAX;
    if (done.has_value()) {
      completion = std::max(completion, *done);
    }
  }
  --suppress_sink_;
  if (!any_live) {
    summary_.data_loss = true;
  }
  if (!any_ok) {
    // Redundancy is gone for this extent: now the failure is the file
    // system's problem (journal abort, remount-read-only — the single-device
    // semantics).
    if (downstream_sink_ != nullptr) {
      downstream_sink_->OnWriteError(req, now);
    }
    return std::nullopt;
  }
  return completion;
}

std::optional<Nanos> BlockArray::SubmitSync(const IoRequest& req, Nanos now) {
  AdvanceBackground(now);
  if (req.kind == IoKind::kRead) {
    ++summary_.reads;
  } else {
    ++summary_.writes;
  }
  MapRequest(req.lba, req.sector_count, &scratch_);
  Nanos completion = now;
  for (const SubRange& sub : scratch_) {
    const std::optional<Nanos> done = req.kind == IoKind::kRead
                                          ? SyncReadSub(sub, req.meta, now)
                                          : SyncWriteSub(sub, req.meta, now);
    if (!done.has_value()) {
      return std::nullopt;
    }
    completion = std::max(completion, *done);
  }
  return completion;
}

Nanos BlockArray::SubmitAsync(const IoRequest& req, Nanos now) {
  AdvanceBackground(now);
  if (req.kind == IoKind::kRead) {
    ++summary_.reads;
  } else {
    ++summary_.writes;
  }
  // The producer stalls for the slowest throttling member: a mirror write
  // is not accepted until every replica's queue had room for it.
  Nanos admit = now;
  MapRequest(req.lba, req.sector_count, &scratch_);
  for (const SubRange& sub : scratch_) {
    MirrorSet& set = sets_[sub.set];
    if (req.kind == IoKind::kRead) {
      // Background reads (readahead) pick one replica and accept silent
      // failure, like the single-device path.
      const size_t slot = ChooseReadReplica(set, SIZE_MAX, sub.lba);
      if (slot == SIZE_MAX) {
        continue;
      }
      const size_t device = set.members[slot];
      NoteAccess(device, sub.lba, sub.count);
      read_cursor_[device] = sub.lba + sub.count;
      admit = std::max(admit, all_[device]->SubmitAsync(
                                  IoRequest{IoKind::kRead, sub.lba, sub.count, req.meta}, now));
      continue;
    }
    const IoRequest sub_req{IoKind::kWrite, sub.lba, sub.count, req.meta};
    for (size_t slot = 0; slot < set.members.size(); ++slot) {
      if (!set.live[slot]) {
        continue;
      }
      const size_t device = set.members[slot];
      NoteAccess(device, sub.lba, sub.count);
      admit = std::max(admit, all_[device]->SubmitAsync(sub_req, now));
    }
    if (set.rebuilding) {
      NoteAccess(set.rebuild_target, sub.lba, sub.count);
      admit = std::max(admit, all_[set.rebuild_target]->SubmitAsync(sub_req, now));
    }
  }
  return admit;
}

Nanos BlockArray::Drain(Nanos now) {
  AdvanceBackground(now);
  Nanos idle = now;
  for (size_t d = 0; d < all_.size(); ++d) {
    current_device_ = d;
    idle = std::max(idle, all_[d]->Drain(now));
    current_device_ = SIZE_MAX;
  }
  return idle;
}

void BlockArray::OnWriteError(const IoRequest& req, Nanos now) {
  ++summary_.replica_write_errors;
  if (suppress_sink_ > 0) {
    // The array is mid-fan-out (or scrubbing/rebuilding) and will adjudicate
    // the set-level outcome itself once every replica has answered.
    return;
  }
  // An async write surfacing its failure during some device's service pass:
  // absorb it while the owning set still has another live copy.
  if (current_device_ != SIZE_MAX) {
    RecordForegroundFault(current_device_, req.lba);
    const size_t set = device_set_[current_device_];
    if (set != SIZE_MAX && LiveReplicas(set) > 1) {
      return;
    }
  }
  if (downstream_sink_ != nullptr) {
    downstream_sink_->OnWriteError(req, now);
  }
}

}  // namespace fsbench
