// Second-level (flash) cache tier.
//
// Section 3.1 of the paper predicts that systems with multiple cache levels
// (flash, network) show performance curves with "multiple distinctive
// steps" instead of one memory/disk cliff. This tier models exactly that:
// pages evicted from the RAM page cache land here; a RAM miss probes the
// tier before paying the disk penalty. Latency is a flat device cost
// (~100 us class), far from both RAM (~microsecond) and disk
// (~10 millisecond), which is what creates the middle step.
//
// The tier stores identities only (like the page cache): LRU over PageKeys
// with the backing device block retained for writeback bookkeeping.
//
// Layout mirrors src/sim/page_cache.h's slab scheme, scaled down to a single
// LRU list: one open-addressing hash table (linear probe, backward-shift
// deletion) maps PageKey -> node index into parallel arrays
//
//   keys_[n]    identity, compared while probing (ino == kInvalidInode when
//               the node is on the free list — PageKey{0, ...} is never a
//               legal tier key, pages of real files have ino >= 1)
//   blocks_[n]  backing device block
//   links_[n]   intrusive LRU list prev/next (free list reuses .next)
//   hashes_[n]  cached key hash (backward-shift homes)
//   slots_[n]   current table slot (probe-free erase)
//
// so steady-state operation never allocates: the slab is bounded by the
// capacity (the tier never holds more than capacity_pages_ entries) and the
// table is sized for it up front. RemoveFile scans the slab in node-index
// order — an iteration order fixed by allocation history, not by the hash
// seed — which is what made the old collect-under-hash-order walk obsolete.
#ifndef SRC_SIM_FLASH_TIER_H_
#define SRC_SIM_FLASH_TIER_H_

#include <cstdint>
#include <vector>

#include "src/sim/eviction_policy.h"
#include "src/sim/types.h"

namespace fsbench {

struct FlashTierConfig {
  Bytes capacity = 1 * kGiB;
  Nanos read_latency = 90 * kMicrosecond;    // device read + DMA
  Nanos write_latency = 120 * kMicrosecond;  // admission cost (charged async-free)
  Bytes page_size = 4 * kKiB;
};

struct FlashTierStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

class FlashTier {
 public:
  explicit FlashTier(const FlashTierConfig& config);

  // Probes the tier; a hit refreshes recency and removes the page (it is
  // being promoted back into RAM — exclusive tiering).
  bool LookupAndPromote(const PageKey& key);

  // Admits a page demoted from RAM; evicts the LRU page when full.
  void Insert(const PageKey& key, BlockId block);

  void Remove(const PageKey& key);
  void RemoveFile(InodeId ino);
  void Clear();

  // Forces the identity table to at least `buckets` slots. Tier behaviour
  // must be identical whatever the table geometry — the determinism
  // regression test drives two differently-sized tiers through one op
  // sequence.
  void RehashForTest(size_t buckets);

  size_t size() const { return size_; }
  size_t capacity_pages() const { return capacity_pages_; }
  const FlashTierConfig& config() const { return config_; }
  const FlashTierStats& stats() const { return stats_; }
  bool Contains(const PageKey& key) const { return FindNode(key) != kNil; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Link {
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  static uint32_t HashOf(const PageKey& key) {
    return static_cast<uint32_t>(PageKeyHash{}(key));
  }

  // Key's slot, or the first empty slot of its probe run.
  size_t ProbeSlot(const PageKey& key, uint32_t hash) const {
    size_t slot = hash & table_mask_;
    for (;;) {
      const uint32_t node = table_[slot];
      if (node == kNil || keys_[node] == key) {
        return slot;
      }
      slot = (slot + 1) & table_mask_;
    }
  }
  uint32_t FindNode(const PageKey& key) const {
    return table_[ProbeSlot(key, HashOf(key))];
  }

  void TableInsertAt(size_t slot, uint32_t node);
  void TableEraseNode(uint32_t node);  // probe-free: starts from slots_[node]
  void TableGrow(size_t buckets);

  uint32_t AllocNode(const PageKey& key, uint32_t hash);
  void ReleaseNode(uint32_t n);

  void LruPushFront(uint32_t n);
  void LruUnlink(uint32_t n);

  // Full removal of a live node: LRU unlink + table erase + slab release.
  void EraseNode(uint32_t n);

  FlashTierConfig config_;
  size_t capacity_pages_;

  // Slab: parallel arrays indexed by node id (see the layout comment atop
  // this header); grows once up to capacity_pages_ nodes, then recycles.
  std::vector<PageKey> keys_;
  std::vector<BlockId> blocks_;
  std::vector<Link> links_;
  std::vector<uint32_t> hashes_;
  std::vector<uint32_t> slots_;
  uint32_t free_head_ = kNil;  // free list threaded through links_[].next

  std::vector<uint32_t> table_;  // node indices; kNil == empty
  size_t table_mask_ = 0;

  uint32_t lru_head_ = kNil;  // MRU end
  uint32_t lru_tail_ = kNil;  // LRU end
  size_t size_ = 0;

  FlashTierStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_FLASH_TIER_H_
