// Second-level (flash) cache tier.
//
// Section 3.1 of the paper predicts that systems with multiple cache levels
// (flash, network) show performance curves with "multiple distinctive
// steps" instead of one memory/disk cliff. This tier models exactly that:
// pages evicted from the RAM page cache land here; a RAM miss probes the
// tier before paying the disk penalty. Latency is a flat device cost
// (~100 us class), far from both RAM (~microsecond) and disk
// (~10 millisecond), which is what creates the middle step.
//
// The tier stores identities only (like the page cache): LRU over PageKeys
// with the backing device block retained for writeback bookkeeping.
#ifndef SRC_SIM_FLASH_TIER_H_
#define SRC_SIM_FLASH_TIER_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/sim/eviction_policy.h"
#include "src/sim/types.h"

namespace fsbench {

struct FlashTierConfig {
  Bytes capacity = 1 * kGiB;
  Nanos read_latency = 90 * kMicrosecond;    // device read + DMA
  Nanos write_latency = 120 * kMicrosecond;  // admission cost (charged async-free)
  Bytes page_size = 4 * kKiB;
};

struct FlashTierStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

class FlashTier {
 public:
  explicit FlashTier(const FlashTierConfig& config);

  // Probes the tier; a hit refreshes recency and removes the page (it is
  // being promoted back into RAM — exclusive tiering).
  bool LookupAndPromote(const PageKey& key);

  // Admits a page demoted from RAM; evicts the LRU page when full.
  void Insert(const PageKey& key, BlockId block);

  void Remove(const PageKey& key);
  void RemoveFile(InodeId ino);
  void Clear();

  // Forces the identity table to at least `buckets` buckets. Tier behaviour
  // must be identical whatever the bucket count — the determinism regression
  // test drives two differently-rehashed tiers through one op sequence.
  void RehashForTest(size_t buckets) { entries_.rehash(buckets); }

  size_t size() const { return entries_.size(); }
  size_t capacity_pages() const { return capacity_pages_; }
  const FlashTierConfig& config() const { return config_; }
  const FlashTierStats& stats() const { return stats_; }
  bool Contains(const PageKey& key) const { return entries_.count(key) != 0; }

 private:
  struct Entry {
    std::list<PageKey>::iterator lru_it;
    BlockId block = kInvalidBlock;
  };

  FlashTierConfig config_;
  size_t capacity_pages_;
  std::list<PageKey> lru_;  // front = MRU
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  FlashTierStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_FLASH_TIER_H_
