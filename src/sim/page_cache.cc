#include "src/sim/page_cache.h"

#include <cassert>

namespace fsbench {

PageCache::PageCache(size_t capacity_pages, EvictionPolicyKind policy_kind)
    : capacity_(capacity_pages), policy_(MakeEvictionPolicy(policy_kind, capacity_pages)) {
  assert(capacity_ > 0);
}

bool PageCache::Contains(const PageKey& key) const { return entries_.count(key) != 0; }

bool PageCache::Lookup(const PageKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  policy_->OnAccess(key);
  return true;
}

std::vector<PageCache::Evicted> PageCache::Insert(const PageKey& key, BlockId block, bool dirty) {
  std::vector<Evicted> evicted;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: update block, possibly dirty, touch recency.
    if (dirty && !it->second.dirty) {
      ++dirty_count_;
    }
    it->second.block = block;
    it->second.dirty = it->second.dirty || dirty;
    policy_->OnAccess(key);
    return evicted;
  }

  while (entries_.size() >= capacity_) {
    const PageKey victim = policy_->ChooseVictim();
    auto vit = entries_.find(victim);
    assert(vit != entries_.end());
    evicted.push_back(Evicted{victim, vit->second.block, vit->second.dirty});
    if (vit->second.dirty) {
      --dirty_count_;
      ++stats_.dirty_evictions;
    }
    entries_.erase(vit);
    ++stats_.evictions;
  }

  entries_.emplace(key, Entry{block, dirty});
  if (dirty) {
    ++dirty_count_;
  }
  policy_->OnInsert(key);
  ++stats_.insertions;
  return evicted;
}

bool PageCache::MarkDirty(const PageKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  if (!it->second.dirty) {
    it->second.dirty = true;
    ++dirty_count_;
  }
  return true;
}

std::vector<PageCache::Evicted> PageCache::TakeDirty(size_t max_pages) {
  std::vector<Evicted> dirty;
  for (auto& [key, entry] : entries_) {
    if (dirty.size() >= max_pages) {
      break;
    }
    if (entry.dirty) {
      dirty.push_back(Evicted{key, entry.block, true});
      entry.dirty = false;
      --dirty_count_;
    }
  }
  return dirty;
}

void PageCache::Remove(const PageKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.dirty) {
    --dirty_count_;
  }
  entries_.erase(it);
  policy_->OnRemove(key);
}

void PageCache::RemoveFile(InodeId ino) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.ino == ino) {
      if (it->second.dirty) {
        --dirty_count_;
      }
      policy_->OnRemove(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::Clear() {
  for (const auto& [key, entry] : entries_) {
    policy_->OnRemove(key);
  }
  entries_.clear();
  dirty_count_ = 0;
}

bool PageCache::CheckInvariants() const {
  return policy_->resident_count() == entries_.size() && entries_.size() <= capacity_;
}

}  // namespace fsbench
