#include "src/sim/page_cache.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

namespace {

// Smallest power of two >= max(n, minimum), for table sizing.
size_t TableSizeFor(size_t n, size_t minimum) {
  size_t size = minimum;
  while (size < n) {
    size <<= 1;
  }
  return size;
}

size_t HashInode(InodeId ino) {
  uint64_t h = ino * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<size_t>(h);
}

}  // namespace

PageCache::PageCache(size_t capacity_pages, EvictionPolicyKind policy_kind)
    : capacity_(capacity_pages),
      kind_(policy_kind),
      geometry_(PolicyGeometry::For(policy_kind, capacity_pages)) {
  assert(capacity_ > 0);
  const size_t max_nodes = geometry_.max_live_nodes;
  keys_.reserve(max_nodes);
  list_meta_.reserve(max_nodes);
  links_.reserve(max_nodes);
  ino_links_.reserve(max_nodes);
  dirty_links_.reserve(max_nodes);
  blocks_.reserve(max_nodes);
  hashes_.reserve(max_nodes);
  slots_.reserve(max_nodes);
  // Keep the load factor at or under 0.25 at the worst-case live-node count
  // so linear probes are nearly collision-free and the table never rehashes.
  // Slots are 4 bytes; even the default ~105k-page ARC cache pays only 4 MiB.
  table_.assign(TableSizeFor(4 * max_nodes, 16), kNil);
  table_mask_ = table_.size() - 1;
  inode_index_.assign(64, InodeSlot{});
  inode_index_mask_ = inode_index_.size() - 1;
}

// --- hash table -------------------------------------------------------------

void PageCache::TableInsertAt(size_t slot, uint32_t node) {
  assert(table_[slot] == kNil);
  table_[slot] = node;
  slots_[node] = static_cast<uint32_t>(slot);
}

void PageCache::TableEraseNode(uint32_t node) {
  size_t hole = slots_[node];
  assert(table_[hole] == node);
  ++table_erase_count_;
  // Backward-shift deletion: walk the probe run after `hole`, moving back
  // any entry whose home slot lies cyclically at or before the hole, so
  // every remaining key stays reachable from its home without tombstones.
  size_t slot = hole;
  for (;;) {
    slot = (slot + 1) & table_mask_;
    const uint32_t moved = table_[slot];
    if (moved == kNil) {
      break;
    }
    const size_t home = hashes_[moved] & table_mask_;
    // Keep the entry in place only if its home lies cyclically in
    // (hole, slot]; otherwise it was pushed past the hole by probing.
    const size_t hole_distance = (slot - hole) & table_mask_;
    const size_t home_distance = (slot - home) & table_mask_;
    if (home_distance < hole_distance) {
      continue;
    }
    table_[hole] = moved;
    slots_[moved] = static_cast<uint32_t>(hole);
    hole = slot;
  }
  table_[hole] = kNil;
  last_erase_hole_ = hole;
}

// --- slab -------------------------------------------------------------------

uint32_t PageCache::AllocNode(const PageKey& key, uint32_t hash) {
  uint32_t n;
  if (free_head_ != kNil) {
    n = free_head_;
    free_head_ = links_[n].next;
  } else {
    assert(slab_size_ < geometry_.max_live_nodes);
    n = static_cast<uint32_t>(slab_size_++);
    keys_.emplace_back();
    list_meta_.push_back(0);
    links_.emplace_back();
    ino_links_.emplace_back();
    dirty_links_.emplace_back();
    blocks_.push_back(kInvalidBlock);
    hashes_.push_back(0);
    slots_.push_back(0);
  }
  keys_[n] = key;
  hashes_[n] = hash;
  list_meta_[n] = 0;
  blocks_[n] = kInvalidBlock;
  links_[n] = Link{};
  ino_links_[n] = Link{};
  dirty_links_[n] = Link{};
  ++live_count_;
  return n;
}

void PageCache::ReleaseNode(uint32_t n) {
  list_meta_[n] = static_cast<uint8_t>(CacheListId::kNone);
  links_[n].next = free_head_;
  free_head_ = n;
  --live_count_;
}

// --- intrusive policy lists -------------------------------------------------

void PageCache::ListLinkBefore(CacheListId id, uint32_t pos, uint32_t n) {
  ListAnchor& anchor = AnchorOf(id);
  SetList(n, id);
  Link& link = links_[n];
  if (pos == kNil) {  // insert at the back
    link.prev = anchor.tail;
    link.next = kNil;
    if (anchor.tail != kNil) {
      links_[anchor.tail].next = n;
    } else {
      anchor.head = n;
    }
    anchor.tail = n;
  } else {
    Link& at = links_[pos];
    link.prev = at.prev;
    link.next = pos;
    if (at.prev != kNil) {
      links_[at.prev].next = n;
    } else {
      anchor.head = n;
    }
    at.prev = n;
  }
  ++anchor.size;
}

// --- per-inode chain --------------------------------------------------------

size_t PageCache::InodeProbe(InodeId ino) const {
  size_t slot = HashInode(ino) & inode_index_mask_;
  while (inode_index_[slot].head != kNil && inode_index_[slot].ino != ino) {
    slot = (slot + 1) & inode_index_mask_;
  }
  return slot;
}

void PageCache::InodeIndexGrow() {
  std::vector<InodeSlot> old = std::move(inode_index_);
  inode_index_.assign(old.size() * 2, InodeSlot{});
  inode_index_mask_ = inode_index_.size() - 1;
  for (const InodeSlot& entry : old) {
    if (entry.head != kNil) {
      inode_index_[InodeProbe(entry.ino)] = entry;
    }
  }
}

void PageCache::InodeChainLink(uint32_t n) {
  const InodeId ino = keys_[n].ino;
  size_t slot = InodeProbe(ino);
  if (inode_index_[slot].head == kNil) {
    if ((inode_index_used_ + 1) * 10 > inode_index_.size() * 7) {
      InodeIndexGrow();
      slot = InodeProbe(ino);
    }
    inode_index_[slot] = InodeSlot{ino, n};
    ++inode_index_used_;
    ino_links_[n] = Link{};
    return;
  }
  const uint32_t head = inode_index_[slot].head;
  ino_links_[n].prev = kNil;
  ino_links_[n].next = head;
  ino_links_[head].prev = n;
  inode_index_[slot].head = n;
}

void PageCache::InodeChainUnlink(uint32_t n) {
  Link& link = ino_links_[n];
  if (link.prev != kNil) {
    ino_links_[link.prev].next = link.next;
  } else {
    const size_t slot = InodeProbe(keys_[n].ino);
    if (link.next == kNil) {
      InodeIndexErase(slot);
    } else {
      inode_index_[slot].head = link.next;
    }
  }
  if (link.next != kNil) {
    ino_links_[link.next].prev = link.prev;
  }
  link.prev = link.next = kNil;
}

void PageCache::InodeIndexErase(size_t slot) {
  // Backward-shift deletion, mirroring TableEraseNode.
  size_t hole = slot;
  for (;;) {
    slot = (slot + 1) & inode_index_mask_;
    if (inode_index_[slot].head == kNil) {
      break;
    }
    const size_t home = HashInode(inode_index_[slot].ino) & inode_index_mask_;
    const size_t hole_distance = (slot - hole) & inode_index_mask_;
    const size_t home_distance = (slot - home) & inode_index_mask_;
    if (home_distance < hole_distance) {
      continue;
    }
    inode_index_[hole] = inode_index_[slot];
    hole = slot;
  }
  inode_index_[hole] = InodeSlot{};
  --inode_index_used_;
}

// --- dirty FIFO -------------------------------------------------------------

void PageCache::DirtyChainUnlink(uint32_t n) {
  list_meta_[n] = static_cast<uint8_t>(list_meta_[n] & ~kDirtyBit);
  Link& link = dirty_links_[n];
  if (link.prev != kNil) {
    dirty_links_[link.prev].next = link.next;
  } else {
    dirty_head_ = link.next;
  }
  if (link.next != kNil) {
    dirty_links_[link.next].prev = link.prev;
  } else {
    dirty_tail_ = link.prev;
  }
  link.prev = link.next = kNil;
  --dirty_count_;
}

// --- policy transitions -----------------------------------------------------
//
// These reproduce, decision-for-decision, the straightforward reference
// implementations (kept in tests/reference_policies.h as differential
// oracles): same queues, same adaptation arithmetic, same tie-breaks.

bool PageCache::PolicyPrepareNewInsert() {
  if (kind_ != EvictionPolicyKind::kArc) {
    return false;
  }
  // Brand new key: trim ghost lists per the ARC paper's cases. Returns
  // whether a ghost was freed (i.e. the hash table was mutated).
  const ListAnchor& t1 = AnchorOf(CacheListId::kT1);
  const ListAnchor& b1 = AnchorOf(CacheListId::kB1);
  const ListAnchor& b2 = AnchorOf(CacheListId::kB2);
  if (t1.size + b1.size >= geometry_.arc_c) {
    if (b1.size > 0) {
      FreeGhostNode(b1.tail);
      return true;
    }
  } else if (live_count_ >= 2 * geometry_.arc_c) {
    if (b2.size > 0) {
      FreeGhostNode(b2.tail);
      return true;
    }
  }
  return false;
}

void PageCache::PolicyInsertNew(uint32_t n) {
  switch (kind_) {
    case EvictionPolicyKind::kLru:
      ListPushFront(CacheListId::kLruList, n);
      break;
    case EvictionPolicyKind::kClock:
      // Insert just behind the hand, i.e. at the position visited last
      // (clock_hand_ == kNil means the "end" position: insert at the back).
      ListLinkBefore(CacheListId::kClockRing, clock_hand_, n);
      if (AnchorOf(CacheListId::kClockRing).size == 1) {
        clock_hand_ = n;
      }
      break;
    case EvictionPolicyKind::kTwoQueue:
      ListPushFront(CacheListId::kA1in, n);
      break;
    case EvictionPolicyKind::kArc:
      ListPushFront(CacheListId::kT1, n);
      break;
  }
}

void PageCache::PolicyGhostRevive(uint32_t n) {
  if (ListOf(n) == CacheListId::kA1out) {
    // 2Q: a re-reference after falling out of A1in promotes into Am.
    ListUnlink(n);
    ListPushFront(CacheListId::kAm, n);
    return;
  }
  // ARC: a ghost hit adapts the T1 target p toward the list that hit.
  const double b1_size = static_cast<double>(AnchorOf(CacheListId::kB1).size);
  const double b2_size = static_cast<double>(AnchorOf(CacheListId::kB2).size);
  const double c = static_cast<double>(geometry_.arc_c);
  if (ListOf(n) == CacheListId::kB1) {
    const double delta = b1_size >= b2_size ? 1.0 : b2_size / b1_size;
    arc_p_ = std::min(c, arc_p_ + delta);
  } else {
    assert(ListOf(n) == CacheListId::kB2);
    const double delta = b2_size >= b1_size ? 1.0 : b1_size / b2_size;
    arc_p_ = std::max(0.0, arc_p_ - delta);
  }
  ListUnlink(n);
  ListPushFront(CacheListId::kT2, n);
}

uint32_t PageCache::PolicyChooseVictim() {
  switch (kind_) {
    case EvictionPolicyKind::kLru:
      return AnchorOf(CacheListId::kLruList).tail;
    case EvictionPolicyKind::kClock: {
      // Second chance: a set referenced bit buys one more lap of the hand.
      uint32_t hand = clock_hand_;
      for (;;) {
        if (hand == kNil) {
          hand = AnchorOf(CacheListId::kClockRing).head;
        }
        if ((list_meta_[hand] & kReferencedBit) != 0) {
          list_meta_[hand] = static_cast<uint8_t>(list_meta_[hand] & ~kReferencedBit);
          hand = links_[hand].next;
        } else {
          clock_hand_ = links_[hand].next;
          return hand;
        }
      }
    }
    case EvictionPolicyKind::kTwoQueue: {
      const ListAnchor& a1in = AnchorOf(CacheListId::kA1in);
      if (a1in.size > geometry_.kin || AnchorOf(CacheListId::kAm).size == 0) {
        assert(a1in.size > 0);
        return a1in.tail;
      }
      return AnchorOf(CacheListId::kAm).tail;
    }
    case EvictionPolicyKind::kArc: {
      // REPLACE from the ARC paper: evict from T1 if it exceeds target p.
      const ListAnchor& t1 = AnchorOf(CacheListId::kT1);
      const ListAnchor& t2 = AnchorOf(CacheListId::kT2);
      const bool from_t1 =
          t1.size > 0 && (static_cast<double>(t1.size) > arc_p_ || t2.size == 0);
      if (from_t1) {
        return t1.tail;
      }
      assert(t2.size > 0);
      return t2.tail;
    }
  }
  return kNil;
}

void PageCache::PolicyDemoteVictim(uint32_t n) {
  const CacheListId from = ListOf(n);
  ListUnlink(n);
  switch (kind_) {
    case EvictionPolicyKind::kLru:
    case EvictionPolicyKind::kClock:
      TableEraseNode(n);
      ReleaseNode(n);
      return;
    case EvictionPolicyKind::kTwoQueue:
      if (from == CacheListId::kA1in) {
        // A1in victims leave a ghost in A1out, bounded by kout.
        blocks_[n] = kInvalidBlock;
        ListPushFront(CacheListId::kA1out, n);
        while (AnchorOf(CacheListId::kA1out).size > geometry_.kout) {
          FreeGhostNode(AnchorOf(CacheListId::kA1out).tail);
        }
      } else {
        TableEraseNode(n);
        ReleaseNode(n);
      }
      return;
    case EvictionPolicyKind::kArc:
      blocks_[n] = kInvalidBlock;
      ListPushFront(from == CacheListId::kT1 ? CacheListId::kB1 : CacheListId::kB2, n);
      return;
  }
}

void PageCache::FreeGhostNode(uint32_t n) {
  assert(IsGhostList(ListOf(n)));
  ListUnlink(n);
  TableEraseNode(n);
  ReleaseNode(n);
}

// --- public operations ------------------------------------------------------

void PageCache::EvictOne(EvictedBatch* evicted) {
  const uint32_t victim = PolicyChooseVictim();
  const bool dirty = IsDirty(victim);
  if (evicted != nullptr) {
    assert(evicted->count_ < EvictedBatch::kInlineCapacity);
    evicted->items_[evicted->count_++] = Evicted{keys_[victim], blocks_[victim], dirty};
  }
  if (dirty) {
    DirtyChainUnlink(victim);
    ++stats_.dirty_evictions;
  }
  InodeChainUnlink(victim);
  --resident_count_;
  ++stats_.evictions;
  PolicyDemoteVictim(victim);
}

void PageCache::PrefetchVictimHint() const {
  // The likely victim is known before the probe resolves hit vs. miss;
  // starting its cache lines early overlaps eviction latency with the probe.
  // A wrong or useless hint (hit path, CLOCK hand walk, ARC predicate flip)
  // costs nothing but the prefetch itself.
  uint32_t hint = kNil;
  switch (kind_) {
    case EvictionPolicyKind::kLru:
      hint = AnchorOf(CacheListId::kLruList).tail;
      break;
    case EvictionPolicyKind::kClock:
      hint = clock_hand_ != kNil ? clock_hand_ : AnchorOf(CacheListId::kClockRing).head;
      break;
    case EvictionPolicyKind::kTwoQueue: {
      const ListAnchor& a1in = AnchorOf(CacheListId::kA1in);
      hint = (a1in.size > geometry_.kin || AnchorOf(CacheListId::kAm).size == 0)
                 ? a1in.tail
                 : AnchorOf(CacheListId::kAm).tail;
      break;
    }
    case EvictionPolicyKind::kArc: {
      const ListAnchor& t1 = AnchorOf(CacheListId::kT1);
      const ListAnchor& t2 = AnchorOf(CacheListId::kT2);
      hint = (t1.size > 0 && (static_cast<double>(t1.size) > arc_p_ || t2.size == 0))
                 ? t1.tail
                 : t2.tail;
      break;
    }
  }
  if (hint == kNil) {
    return;
  }
  __builtin_prefetch(&keys_[hint]);
  __builtin_prefetch(&blocks_[hint]);
  __builtin_prefetch(&slots_[hint]);
  __builtin_prefetch(&list_meta_[hint]);
  // Eviction unsplices the victim from its policy list and inode chain; pull
  // the neighbour links forward as well so the second level of the pointer
  // chase also overlaps the probe.
  const Link link = links_[hint];
  if (link.prev != kNil) {
    __builtin_prefetch(&links_[link.prev]);
  }
  if (link.next != kNil) {
    __builtin_prefetch(&links_[link.next]);
  }
  const Link ino_link = ino_links_[hint];
  if (ino_link.prev != kNil) {
    __builtin_prefetch(&ino_links_[ino_link.prev]);
  }
  if (ino_link.next != kNil) {
    __builtin_prefetch(&ino_links_[ino_link.next]);
  }
}

void PageCache::Insert(const PageKey& key, BlockId block, bool dirty, EvictedBatch* evicted) {
  if (evicted != nullptr) {
    // One Insert evicts at most one page, but a reused batch must not creep
    // toward the inline bound across calls: each call reports only its own.
    evicted->clear();
  }
  if (resident_count_ >= capacity_) {
    PrefetchVictimHint();
  }
  const uint32_t hash = HashOf(key);
  size_t slot = ProbeSlot(key, hash);
  uint32_t n = table_[slot];
  if (n != kNil && IsResidentNode(n)) {
    // Refresh: update block, possibly dirty, touch recency.
    if (dirty && !IsDirty(n)) {
      DirtyChainAppend(n);
    }
    blocks_[n] = block;
    PolicyResidentAccess(n);
    return;
  }

  if (resident_count_ >= capacity_) {
    const size_t erases_before = table_erase_count_;
    do {
      EvictOne(evicted);
    } while (resident_count_ >= capacity_);
    // Eviction can rearrange the table and even retire the ghost we just
    // found (2Q's A1out trim may pop it); what counts is ghost membership
    // *after* eviction, exactly as the reference policies see it. Two cases
    // are provably harmless and skip the re-probe: no table erase happened
    // (ARC demotes in place), or exactly one erase left its hole outside
    // this key's probe run (a backward shift empties only that hole, and
    // never occupies a previously empty slot).
    const size_t erase_delta = table_erase_count_ - erases_before;
    const size_t home = hash & table_mask_;
    const bool run_intact =
        erase_delta == 0 ||
        (erase_delta == 1 && n == kNil &&
         ((last_erase_hole_ - home) & table_mask_) > ((slot - home) & table_mask_));
    if (!run_intact) {
      slot = ProbeSlot(key, hash);
      n = table_[slot];
    }
  }

  if (n != kNil) {
    PolicyGhostRevive(n);
    blocks_[n] = block;
  } else {
    if (PolicyPrepareNewInsert()) {
      // An ARC ghost trim rearranged the table; the empty slot found above
      // may no longer terminate the key's probe run.
      slot = ProbeSlot(key, hash);
    }
    n = AllocNode(key, hash);
    blocks_[n] = block;
    TableInsertAt(slot, n);
    PolicyInsertNew(n);
  }
  InodeChainLink(n);
  ++resident_count_;
  if (dirty) {
    DirtyChainAppend(n);
  }
  ++stats_.insertions;
}

size_t PageCache::TakeDirtyFile(InodeId ino, std::vector<Evicted>* out) {
  out->clear();
  const size_t slot = InodeProbe(ino);
  if (inode_index_[slot].head == kNil) {
    return 0;
  }
  // Chain order (most recently inserted first); callers that care about
  // device ordering sort by block, as the VFS writeback path does.
  for (uint32_t n = inode_index_[slot].head; n != kNil; n = ino_links_[n].next) {
    if (IsDirty(n)) {
      out->push_back(Evicted{keys_[n], blocks_[n], true});
      DirtyChainUnlink(n);
    }
  }
  return out->size();
}

bool PageCache::TakeDirtyPage(const PageKey& key, std::vector<Evicted>* out) {
  const uint32_t n = FindNode(key);
  if (n == kNil || !IsResidentNode(n) || !IsDirty(n)) {
    return false;
  }
  out->push_back(Evicted{keys_[n], blocks_[n], true});
  DirtyChainUnlink(n);
  return true;
}

size_t PageCache::TakeDirty(size_t max_pages, std::vector<Evicted>* out) {
  out->clear();
  while (dirty_head_ != kNil && out->size() < max_pages) {
    const uint32_t n = dirty_head_;
    out->push_back(Evicted{keys_[n], blocks_[n], true});
    DirtyChainUnlink(n);
  }
  return out->size();
}

void PageCache::RemoveResidentNode(uint32_t n, bool maintain_inode_chain) {
  if (IsDirty(n)) {
    DirtyChainUnlink(n);
  }
  if (maintain_inode_chain) {
    InodeChainUnlink(n);
  }
  if (kind_ == EvictionPolicyKind::kClock && clock_hand_ == n) {
    clock_hand_ = links_[n].next;
  }
  ListUnlink(n);
  TableEraseNode(n);
  ReleaseNode(n);
  --resident_count_;
}

void PageCache::Remove(const PageKey& key) {
  const uint32_t n = FindNode(key);
  if (n == kNil || !IsResidentNode(n)) {
    return;
  }
  RemoveResidentNode(n, /*maintain_inode_chain=*/true);
}

void PageCache::RemoveFile(InodeId ino) {
  const size_t slot = InodeProbe(ino);
  if (inode_index_[slot].head == kNil) {
    return;
  }
  uint32_t n = inode_index_[slot].head;
  InodeIndexErase(slot);
  while (n != kNil) {
    const uint32_t next = ino_links_[n].next;
    RemoveResidentNode(n, /*maintain_inode_chain=*/false);
    n = next;
  }
}

void PageCache::Clear() {
  // Drop every resident page. Ghost lists and ARC's adaptation survive a
  // cache drop: the policy's history is not resident state.
  static constexpr CacheListId kResidentLists[] = {
      CacheListId::kLruList, CacheListId::kClockRing, CacheListId::kA1in,
      CacheListId::kAm,      CacheListId::kT1,        CacheListId::kT2,
  };
  for (const CacheListId id : kResidentLists) {
    while (AnchorOf(id).head != kNil) {
      RemoveResidentNode(AnchorOf(id).head, /*maintain_inode_chain=*/false);
    }
  }
  inode_index_.assign(inode_index_.size(), InodeSlot{});
  inode_index_used_ = 0;
  clock_hand_ = kNil;
  dirty_head_ = dirty_tail_ = kNil;
  dirty_count_ = 0;
  assert(resident_count_ == 0);
}

// --- invariants -------------------------------------------------------------

bool PageCache::CheckInvariants(const char** why) const {
  const char* unused;
  if (why == nullptr) {
    why = &unused;
  }
  *why = "";
  if (resident_count_ > capacity_ || resident_count_ > live_count_) {
    *why = "resident count exceeds capacity or live count";
    return false;
  }
  // Every list: forward walk matches the recorded size, back-links and tags
  // are consistent, ghosts carry no block/dirty state.
  size_t resident_seen = 0;
  size_t live_seen = 0;
  for (size_t id = 1; id < kNumCacheLists; ++id) {
    const ListAnchor& anchor = lists_[id];
    size_t walked = 0;
    uint32_t prev = kNil;
    for (uint32_t n = anchor.head; n != kNil; n = links_[n].next) {
      if (ListOf(n) != static_cast<CacheListId>(id) || links_[n].prev != prev) {
        *why = "list tag or back-link inconsistent";
        return false;
      }
      if (IsGhostList(ListOf(n)) &&
          (IsDirty(n) || blocks_[n] != kInvalidBlock || ino_links_[n].next != kNil ||
           ino_links_[n].prev != kNil)) {
        *why = "ghost node carries resident state";
        return false;
      }
      // A node's table entry must resolve back to it in one probe run, and
      // its cached slot/hash must be current.
      if (FindNode(keys_[n]) != n) {
        *why = "table probe does not resolve to the node";
        return false;
      }
      if (table_[slots_[n]] != n || hashes_[n] != HashOf(keys_[n])) {
        *why = "node slot back-pointer or cached hash stale";
        return false;
      }
      prev = n;
      ++walked;
    }
    if (walked != anchor.size || anchor.tail != prev) {
      *why = "list size or tail mismatch";
      return false;
    }
    live_seen += walked;
    if (IsResidentList(static_cast<CacheListId>(id))) {
      resident_seen += walked;
    }
  }
  if (resident_seen != resident_count_ || live_seen != live_count_) {
    *why = "list populations do not match resident/live counts";
    return false;
  }
  // Dirty FIFO: length matches, members are resident and flagged.
  size_t dirty_seen = 0;
  uint32_t dirty_prev = kNil;
  for (uint32_t n = dirty_head_; n != kNil; n = dirty_links_[n].next) {
    if (!IsDirty(n) || !IsResidentNode(n) || dirty_links_[n].prev != dirty_prev) {
      *why = "dirty chain member not resident-dirty or back-link broken";
      return false;
    }
    dirty_prev = n;
    ++dirty_seen;
  }
  if (dirty_seen != dirty_count_ || dirty_tail_ != dirty_prev) {
    *why = "dirty chain length or tail mismatch";
    return false;
  }
  // Inode chains: together they cover exactly the resident set.
  size_t chained = 0;
  for (const InodeSlot& entry : inode_index_) {
    if (entry.head == kNil) {
      continue;
    }
    uint32_t ino_prev = kNil;
    for (uint32_t n = entry.head; n != kNil; n = ino_links_[n].next) {
      if (keys_[n].ino != entry.ino || !IsResidentNode(n) ||
          ino_links_[n].prev != ino_prev) {
        *why = "inode chain member inconsistent";
        return false;
      }
      ino_prev = n;
      ++chained;
    }
  }
  if (chained != resident_count_) {
    *why = "inode chains do not cover the resident set";
    return false;
  }
  // Table population matches the live-node count.
  size_t table_entries = 0;
  for (const uint32_t entry : table_) {
    table_entries += entry != kNil ? 1 : 0;
  }
  if (table_entries != live_count_) {
    *why = "table population does not match live count";
    return false;
  }
  return true;
}

}  // namespace fsbench
