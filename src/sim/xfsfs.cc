#include "src/sim/xfsfs.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace fsbench {

XfsFs::XfsFs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock,
             uint64_t log_blocks)
    : FileSystem(device_capacity, params, clock) {
  // Carve the log out of group 0's data area, right after the header (the
  // same mkfs-time reservation ext3 makes; real XFS centres the log in an
  // allocation group, a placement difference the seek model can ignore at
  // this size).
  journal_region_ = Extent{GroupDataStart(0), log_blocks};
  alloc_.ReserveRange(journal_region_);
  reserved_blocks_ += log_blocks;
}

std::optional<size_t> XfsFs::FindExtent(const Inode& inode, uint64_t page) {
  // Extents are sorted by first_page and non-overlapping: binary search for
  // the last extent starting at or before `page`.
  const auto& extents = inode.extents;
  auto it = std::upper_bound(
      extents.begin(), extents.end(), page,
      [](uint64_t p, const FileExtent& e) { return p < e.first_page; });
  if (it == extents.begin()) {
    return std::nullopt;
  }
  --it;
  if (page < it->first_page + it->extent.count) {
    return static_cast<size_t>(it - extents.begin());
  }
  return std::nullopt;
}

FsResult<BlockId> XfsFs::MapPageFor(const Inode& inode, uint64_t page_index, MetaIo* io) {
  const std::optional<size_t> idx = FindExtent(inode, page_index);
  if (!idx.has_value()) {
    return FsResult<BlockId>::Ok(kInvalidBlock);  // hole
  }
  io->AddMetaRead(inode.itable_block);
  if (inode.extents.size() > kInlineExtents && !inode.extent_meta_blocks.empty()) {
    const size_t node = std::min(*idx / kExtentsPerNode, inode.extent_meta_blocks.size() - 1);
    io->AddMetaRead(inode.extent_meta_blocks[node]);
  }
  const FileExtent& e = inode.extents[*idx];
  return FsResult<BlockId>::Ok(e.extent.start + (page_index - e.first_page));
}

FsStatus XfsFs::EnsureExtentNodes(Inode& inode, MetaIo* io) {
  if (inode.extents.size() <= kInlineExtents) {
    return FsStatus::kOk;
  }
  const size_t needed = (inode.extents.size() + kExtentsPerNode - 1) / kExtentsPerNode;
  while (inode.extent_meta_blocks.size() < needed) {
    const std::optional<BlockId> block =
        alloc_.AllocateBlock(GroupDataStart(inode.group));
    if (!block.has_value()) {
      return FsStatus::kNoSpace;
    }
    inode.extent_meta_blocks.push_back(*block);
    ++inode.allocated_blocks;
    io->AddMetaWrite(*block);
    io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(*block)));
  }
  return FsStatus::kOk;
}

FsResult<BlockId> XfsFs::AllocatePageFor(Inode& inode, uint64_t page_index, MetaIo* io) {
  if (const std::optional<size_t> idx = FindExtent(inode, page_index); idx.has_value()) {
    const FileExtent& e = inode.extents[*idx];
    return FsResult<BlockId>::Ok(e.extent.start + (page_index - e.first_page));
  }

  // How many contiguous blocks may we grab without overlapping the next
  // extent's logical range?
  uint64_t max_count = kAllocChunk;
  const auto next = std::upper_bound(
      inode.extents.begin(), inode.extents.end(), page_index,
      [](uint64_t p, const FileExtent& e) { return p < e.first_page; });
  if (next != inode.extents.end()) {
    max_count = std::min<uint64_t>(max_count, next->first_page - page_index);
  }

  // Appending right after an existing extent? Try to grow it in place.
  FileExtent* prev = nullptr;
  if (next != inode.extents.begin()) {
    prev = &*(next - 1);
  }
  const bool appending = prev != nullptr && page_index == prev->first_page + prev->extent.count;
  const BlockId goal = appending ? prev->extent.start + prev->extent.count
                                 : (prev != nullptr ? prev->extent.start + prev->extent.count
                                                    : GroupDataStart(inode.group));

  const std::optional<Extent> grabbed = alloc_.AllocateExtent(goal, 1, max_count);
  if (!grabbed.has_value()) {
    return FsResult<BlockId>::Error(FsStatus::kNoSpace);
  }
  inode.allocated_blocks += grabbed->count;
  io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(grabbed->start)));
  io->AddMetaWrite(inode.itable_block);

  if (appending && grabbed->start == prev->extent.start + prev->extent.count) {
    prev->extent.count += grabbed->count;
  } else {
    inode.extents.insert(next, FileExtent{page_index, *grabbed});
  }
  const FsStatus nodes = EnsureExtentNodes(inode, io);
  if (nodes != FsStatus::kOk) {
    return FsResult<BlockId>::Error(nodes);
  }
  return FsResult<BlockId>::Ok(grabbed->start);
}

void XfsFs::ChargeDirLookup(const Inode& dir_inode, const Directory& dir,
                            std::string_view name, std::optional<uint64_t> slot, MetaIo* io) {
  // Btree directory: a lookup reads the root block plus one leaf — negative
  // lookups included (the hash either finds its bucket or proves absence),
  // which is the structural advantage over ext2's full linear scan.
  const uint64_t epb = params_.dir_entries_per_block;
  const uint64_t total_blocks = dir.slot_count() == 0 ? 0 : CeilDiv(dir.slot_count(), epb);
  if (total_blocks == 0) {
    return;
  }
  auto charge_page = [&](uint64_t page) {
    const FsResult<BlockId> mapping = MapPageFor(dir_inode, page, io);
    if (mapping.ok() && mapping.value != kInvalidBlock) {
      io->reads.push_back({dir_inode.ino, page, mapping.value});
    }
  };
  charge_page(0);  // root
  if (total_blocks == 1) {
    return;
  }
  // std::hash<string_view> is required to agree with std::hash<string> for
  // equal contents, so the modelled leaf choice is unchanged by the
  // string_view migration.
  const uint64_t leaf = slot.has_value()
                            ? *slot / epb
                            : std::hash<std::string_view>{}(name) % total_blocks;
  if (leaf != 0) {
    charge_page(leaf);
  }
  // Very large directories get one interior level.
  if (total_blocks > kExtentsPerNode) {
    charge_page(1 + leaf % (total_blocks / kExtentsPerNode + 1));
  }
}

void XfsFs::FreeAllBlocks(Inode& inode, MetaIo* io) {
  for (const FileExtent& e : inode.extents) {
    alloc_.Free(e.extent);
    io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(e.extent.start)));
  }
  for (BlockId block : inode.extent_meta_blocks) {
    alloc_.Free(Extent{block, 1});
    io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(block)));
    io->invalidations.push_back({kMetaInode, block, block});
  }
  inode.extents.clear();
  inode.extent_meta_blocks.clear();
  inode.allocated_blocks = 0;
}

void XfsFs::FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) {
  while (!inode.extents.empty()) {
    FileExtent& last = inode.extents.back();
    if (last.first_page >= first_page) {
      // Whole extent dies.
      alloc_.Free(last.extent);
      inode.allocated_blocks -= last.extent.count;
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(last.extent.start)));
      for (uint64_t p = 0; p < last.extent.count; ++p) {
        io->invalidations.push_back(
            {inode.ino, last.first_page + p, last.extent.start + p});
      }
      inode.extents.pop_back();
      continue;
    }
    if (last.first_page + last.extent.count > first_page) {
      // Split: keep the head, free the tail.
      const uint64_t keep = first_page - last.first_page;
      const Extent tail{last.extent.start + keep, last.extent.count - keep};
      alloc_.Free(tail);
      inode.allocated_blocks -= tail.count;
      io->AddMetaWrite(BlockBitmapBlock(alloc_.GroupOf(tail.start)));
      for (uint64_t p = 0; p < tail.count; ++p) {
        io->invalidations.push_back({inode.ino, first_page + p, tail.start + p});
      }
      last.extent.count = keep;
    }
    break;
  }
}

void XfsFs::AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const {
  for (const FileExtent& e : inode.extents) {
    for (uint64_t i = 0; i < e.extent.count; ++i) {
      blocks->push_back(e.extent.start + i);
    }
  }
  for (BlockId block : inode.extent_meta_blocks) {
    blocks->push_back(block);
  }
}

}  // namespace fsbench
