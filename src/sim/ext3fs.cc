#include "src/sim/ext3fs.h"

namespace fsbench {

Ext3Fs::Ext3Fs(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock,
               uint64_t journal_blocks)
    : Ext2Fs(device_capacity, params, clock) {
  // Carve the journal out of group 0's data area, right after the header.
  journal_region_ = Extent{GroupDataStart(0), journal_blocks};
  alloc_.ReserveRange(journal_region_);
  reserved_blocks_ += journal_blocks;
}

}  // namespace fsbench
