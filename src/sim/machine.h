// Machine: assembles the whole simulated stack (clock, disk, scheduler,
// file system, journal, VFS) from one configuration, applying the per-run
// jitter model.
//
// The jitter model is itself part of the reproduction: the paper attributes
// the fragility of benchmark results near the memory/disk boundary to
// run-to-run variation in "the amount of available cache" — a few MB of OS
// activity — plus ordinary CPU and disk speed variation. Each run draws,
// deterministically from its seed:
//   - an OS memory reservation within ± os_reserve_jitter (shifts the
//     page-cache capacity, the paper's transition-fragility mechanism),
//   - a CPU cost multiplier within ± cpu_jitter,
//   - a disk mechanical-speed multiplier within ± disk_speed_jitter.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>

#include "src/sim/block_array.h"
#include "src/sim/clock.h"
#include "src/sim/disk_model.h"
#include "src/sim/ssd_model.h"
#include "src/sim/ext2fs.h"
#include "src/sim/ext3fs.h"
#include "src/sim/flash_tier.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/shadow_disk.h"
#include "src/sim/vfs.h"
#include "src/sim/xfsfs.h"

namespace fsbench {

struct MachineConfig {
  Bytes ram = 512 * kMiB;
  Bytes os_reserved = 102 * kMiB;     // kernel + daemons -> ~410 MiB page cache
  Bytes os_reserve_jitter = 4 * kMiB; // per-run uniform +-
  double cpu_jitter = 0.015;          // per-run uniform +- fraction
  double disk_speed_jitter = 0.05;    // per-run uniform +- fraction
  DiskParams disk;
  // Default device kind for the whole fleet (per-device overrides live in
  // ArrayConfig::device_kinds). kSsd builds SsdModel devices from `ssd`
  // (capacity machine-managed: overridden with disk.capacity so the file
  // system layout and the device always agree) behind kMultiQueue
  // schedulers; kHdd keeps the historical DiskModel + `scheduler` stack.
  DeviceKind device = DeviceKind::kHdd;
  SsdParams ssd;
  FsLayoutParams layout;
  // Journal policy knobs. `block_sectors` is machine-managed: the machine
  // overrides it with the file system's sectors_per_block() at assembly so
  // the log's LBAs and the ShadowDisk durability map always agree (it is
  // honoured only when constructing a JbdJournal/CilJournal directly).
  JournalConfig journal;              // ext3 (JBD: 5 s kjournald commits)
  uint64_t journal_blocks = 8192;     // 32 MiB journal region
  // XFS delayed logging: same-size log, lazier push cadence (the xfs log
  // timer), deltas batched in the in-memory CIL until then.
  JournalConfig xfs_journal{JournalMode::kOrdered, 30 * kSecond};
  uint64_t xfs_log_blocks = 8192;
  SchedulerKind scheduler = SchedulerKind::kElevator;
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  Nanos syscall_overhead = 3500;
  Nanos page_copy_cost = 500;
  Nanos meta_touch_cost = 250;
  std::optional<ReadaheadConfig> readahead_override;
  // Optional second-level cache (flash) tier - see src/sim/flash_tier.h.
  std::optional<FlashTierConfig> flash;
  // Device-fault axis: a seeded fault plan (off by default — all rates 0)
  // and the block layer's retry/remap policy (default: one attempt, no
  // remap, i.e. the historical surface-every-fault behavior).
  FaultPlanConfig faults;
  RetryPolicy retry;
  // Block-redundancy layer (src/sim/block_array.h). kSingle keeps today's
  // single-device stack byte-identically; any other geometry interposes a
  // BlockArray over `array.devices` disk+scheduler pairs (plus hot spares
  // and, optionally, a dedicated journal device).
  ArrayConfig array;
  uint64_t seed = 42;
};

// Configuration approximating the paper's testbed: 512 MB RAM,
// Maxtor 7L250S0-like disk (see DiskParams defaults), Linux-like costs.
MachineConfig PaperTestbedConfig();

class Machine {
 public:
  Machine(FsKind fs_kind, const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  VirtualClock& clock() { return clock_; }

  // Binds `cursor` as the acting simulated thread's clock across the whole
  // stack: VFS charges, file-system timestamps and journal commit timing all
  // read and advance it. The multi-thread engine calls this around every
  // step; passing &clock() restores the single-threaded default (the base
  // clock doubles as thread 0's cursor).
  void BindCursor(VirtualClock* cursor);

  // Crash tracking: attaches a ShadowDisk as the scheduler's completion
  // observer and makes the transaction log retain its full commit history,
  // so a crash can later be resolved (src/sim/recovery.h). Must be enabled
  // before the run whose crash is simulated; idempotent.
  void EnableCrashTracking();
  ShadowDisk* shadow() { return shadow_.get(); }  // null unless enabled

  // Operation-boundary notification from the engine (crash mode): workload
  // operations with index <= `op` have fully logged their updates.
  void NotifyOpBoundary(uint64_t op) {
    if (Journal* journal = fs_->journal(); journal != nullptr) {
      journal->SetOpWatermark(op);
    }
  }

  // Device 0 (the only device of the classic single-disk stack).
  DeviceModel& disk() { return *disks_[0]; }
  IoScheduler& scheduler() { return *schedulers_[0]; }
  // Per-device access: data devices first, then hot spares, then the
  // dedicated journal device (when configured).
  size_t device_count() const { return disks_.size(); }
  DeviceModel& disk(size_t d) { return *disks_[d]; }
  IoScheduler& scheduler(size_t d) { return *schedulers_[d]; }
  DeviceKind device_kind(size_t d) const { return disks_[d]->kind(); }

  // A standalone device with device 0's kind and per-run jittered
  // parameters, for offline phases (mount-time recovery) that bill I/O
  // against an otherwise idle drive.
  std::unique_ptr<DeviceModel> MakeRecoveryDevice(uint64_t seed) const;
  // The redundancy layer; null when config.array is kSingle.
  BlockArray* array() { return array_.get(); }
  // The block endpoint the VFS issues against (array or device 0).
  BlockIo& io() { return array_ != nullptr ? static_cast<BlockIo&>(*array_) : *schedulers_[0]; }

  FlashTier* flash() { return flash_.get(); }  // null when not configured
  FileSystem& fs() { return *fs_; }
  Vfs& vfs() { return *vfs_; }
  const MachineConfig& config() const { return config_; }
  FsKind fs_kind() const { return fs_kind_; }

  // Arms every device's deferred fault clock at `origin` (see
  // FaultPlanConfig::deferred_clock); no-op on absolute-clock plans.
  // Experiments call this after Prepare so kill/onset/burst knobs count
  // from the measured window's start.
  void StartFaultClock(Nanos origin) {
    for (const auto& disk : disks_) {
      disk->StartFaultClock(origin);
    }
  }

  // Whole-machine device-timeline views (the MT engine's stable-point check
  // and crash recovery must see every device, not just device 0).
  Nanos MaxBusyUntil() const;
  size_t TotalPendingAsync() const;
  Nanos DrainAll(Nanos now);

  // Summed per-device counters (max for max_queue_depth) for reporting.
  DiskStats AggregateDiskStats() const;
  IoSchedulerStats AggregateSchedulerStats() const;

  // Effective page-cache capacity after the per-run OS reservation draw.
  size_t cache_capacity_pages() const { return cache_capacity_pages_; }

 private:
  MachineConfig config_;
  FsKind fs_kind_;
  VirtualClock clock_;
  // Per-run jittered device parameters (MakeRecoveryDevice rebuilds a
  // matching device from these).
  DiskParams jittered_disk_params_;
  SsdParams jittered_ssd_params_;
  std::vector<std::unique_ptr<DeviceModel>> disks_;
  std::vector<std::unique_ptr<IoScheduler>> schedulers_;
  std::unique_ptr<BlockArray> array_;
  size_t journal_device_ = SIZE_MAX;  // index into disks_/schedulers_, or SIZE_MAX
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<FlashTier> flash_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<ShadowDisk> shadow_;
  size_t cache_capacity_pages_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_MACHINE_H_
