// Block-redundancy layer: composes N IoScheduler+DiskModel pairs into
// mirror (RAID1), striped (RAID0) and striped-mirror (RAID1+0) geometries
// behind the same BlockIo entry points the VFS and journal already speak.
//
// The array is organised as `width` mirror sets of `replicas` devices each:
//   - kMirror:       width = 1,         replicas = devices
//   - kStripe:       width = devices,   replicas = 1
//   - kStripeMirror: width = devices/2, replicas = 2
// A logical LBA is chunked round-robin across the sets (chunk_sectors per
// chunk); inside a set every replica holds the same physical image.
//
// Three robustness behaviors ride on the per-device fault plans:
//   - Degraded serving: a read whose chosen replica fails (latent-bad
//     region, or a whole device killed via FaultPlanConfig::device_kill_time)
//     is transparently re-issued to a surviving mirror replica. Only when
//     every replica of a set has failed does the request surface an error
//     (a lost stripe). Replica selection is deterministic: the live replica
//     whose device frees up earliest, ties to the lowest index — which is
//     also what makes mirrors *win* under concurrency (read fan-out).
//   - Background scrub: a virtual-time-paced scanner walks each device's
//     written LBA range region by region, detects latent-bad regions before
//     a client does, and repairs them from a mirror replica into the spare
//     pool (DiskModel::RemapRegion). Scrub I/O is charged on the device
//     timeline, so it visibly competes with foreground traffic.
//   - Online rebuild: when a device dies and the set still has a live
//     replica, a hot spare is resilvered region by region from the survivor
//     while foreground ops continue (writes fan out to the spare as well).
//     The rebuild pace is a knob; until it completes the set runs with
//     reduced redundancy — a second failure there means data loss, which is
//     reported (ArraySummary::data_loss, lost stripes) rather than crashed.
//
// Determinism: every decision (replica choice, scrub cadence, rebuild
// progress, failure detection) is a pure function of the request sequence
// and the per-device (config, seed) fault plans. There is no wall clock and
// no randomness of the array's own.
#ifndef SRC_SIM_BLOCK_ARRAY_H_
#define SRC_SIM_BLOCK_ARRAY_H_

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/sim/io_scheduler.h"
#include "src/util/units.h"

namespace fsbench {

enum class ArrayGeometry : uint8_t { kSingle, kMirror, kStripe, kStripeMirror };

struct ArrayConfig {
  ArrayGeometry geometry = ArrayGeometry::kSingle;
  // Data devices in the array (excluding hot spares). kStripeMirror needs an
  // even count; kSingle ignores it.
  uint32_t devices = 1;
  // Stripe chunk: consecutive logical runs of this many sectors map to the
  // same set before the mapping moves to the next one. 256 = 128 KiB.
  uint64_t chunk_sectors = 256;
  // Idle standby devices available as rebuild targets after a device death.
  uint32_t hot_spares = 0;
  // Background scrub: probe one region every `scrub_interval` of virtual
  // time, walking every device's written LBA range in a round-robin.
  bool scrub = false;
  Nanos scrub_interval = 10 * kMillisecond;
  // Regions verified per scrub burst. Probing in sorted-LBA batches lets the
  // elevator serve the whole burst in one sweep; the same verify bandwidth
  // issued one isolated region at a time costs a head seek (and a broken
  // foreground stream) per probe.
  uint32_t scrub_batch = 1;
  // Rest between full scrub passes. A pass walks every allocated region once;
  // restarting it immediately would re-pay the whole verify-read bill forever
  // (real scrubs run on a schedule, not in a tight loop).
  Nanos scrub_pass_rest = 500 * kMillisecond;
  // Rebuild throttle: copy one region every `rebuild_interval`.
  Nanos rebuild_interval = 2 * kMillisecond;
  // Which device index FaultPlanConfig::device_kill_time applies to (the
  // machine zeroes the kill for every other device).
  uint32_t kill_device = 0;
  // Place the journal on a dedicated device outside the array (the classic
  // separate-log-device configuration).
  bool journal_device = false;
  // Per-device kind overrides, indexed over the machine's device order
  // (data devices, then hot spares, then the dedicated journal device).
  // Devices beyond the vector fall back to MachineConfig::device, so
  // `{}` keeps a uniform fleet and e.g. a journal-on-flash config lists
  // kinds only up to the journal slot. Mixed mirrors (SSD + HDD replicas)
  // are how the replica-choice policy gets something to prefer.
  std::vector<DeviceKind> device_kinds;

  bool enabled() const { return geometry != ArrayGeometry::kSingle; }
};

// Flattened record of the array's life, folded into RunResult.
struct ArraySummary {
  uint64_t devices = 0;             // data devices + spares behind the array
  uint64_t reads = 0;               // logical read requests
  uint64_t writes = 0;              // logical write requests
  uint64_t degraded_reads = 0;      // sub-reads whose first replica failed
  uint64_t mirror_rescues = 0;      // degraded reads a surviving mirror served
  uint64_t lost_stripes = 0;        // sub-reads no replica could serve
  uint64_t replica_write_errors = 0;  // per-device write failures (absorbed or not)
  uint64_t device_failures = 0;     // whole-device deaths noticed
  uint64_t scrub_regions_scanned = 0;
  uint64_t scrub_detections = 0;    // latent-bad regions the scrub found
  uint64_t scrub_preempted = 0;     // ... found before any foreground hit
  uint64_t scrub_repairs = 0;       // remapped + re-copied from a mirror
  uint64_t scrub_unrepairable = 0;  // no mirror source or no spare region left
  uint64_t rebuilds_started = 0;
  uint64_t rebuilds_completed = 0;
  uint64_t rebuild_regions_copied = 0;
  bool data_loss = false;           // some set lost its last replica
};

class BlockArray : public BlockIo, public IoWriteErrorSink {
 public:
  // `devices` are the data devices in set-major order (set s owns indices
  // [s*replicas, (s+1)*replicas)); `spares` are the hot-spare pool, claimed
  // lowest-index-first. The array does not own the schedulers; the Machine
  // does. Each device scheduler's write-error sink must be pointed at the
  // array (the machine wires this) so replica write failures can be
  // absorbed while redundancy holds.
  BlockArray(const ArrayConfig& config, std::vector<IoScheduler*> devices,
             std::vector<IoScheduler*> spares);

  std::optional<Nanos> SubmitSync(const IoRequest& req, Nanos now) override;
  Nanos SubmitAsync(const IoRequest& req, Nanos now) override;
  Nanos Drain(Nanos now) override;

  // IoWriteErrorSink (called by the per-device schedulers): absorbs replica
  // write failures while the owning set still has another live replica,
  // forwards them downstream (to the VFS) once redundancy is gone.
  void OnWriteError(const IoRequest& req, Nanos now) override;
  void set_downstream_sink(IoWriteErrorSink* sink) { downstream_sink_ = sink; }

  const ArraySummary& summary() const { return summary_; }
  uint32_t width() const { return width_; }
  uint32_t replicas() const { return replicas_; }
  // Live replicas of set `s` right now (no death probe — latched state).
  uint32_t LiveReplicas(size_t set) const;
  bool RebuildActive() const;

 private:
  // One physical extent on one mirror set.
  struct SubRange {
    size_t set = 0;
    uint64_t lba = 0;
    uint32_t count = 0;
  };

  struct MirrorSet {
    std::vector<size_t> members;   // indices into all_; rebuilt spares splice in
    std::vector<bool> live;        // parallel to members
    bool rebuilding = false;
    size_t rebuild_slot = 0;       // members slot being resilvered
    size_t rebuild_target = 0;     // index into all_ (the claimed spare)
    uint64_t rebuild_cursor = 0;   // next region index to consider copying
    Nanos rebuild_due = 0;         // next copy step fires at this time
    uint32_t rebuild_yields = 0;   // consecutive idle-yield postponements
  };

  // Splits a logical request into per-set physical sub-ranges (in logical
  // order, deterministic).
  void MapRequest(uint64_t lba, uint32_t count, std::vector<SubRange>* out) const;

  // Latches deaths, sets data_loss, starts rebuilds. Then runs every scrub
  // and rebuild step due at or before `now` (rebuild first on ties).
  void AdvanceBackground(Nanos now);
  void CheckDeviceFailures(Nanos now);
  void ScrubStep(Nanos t);
  void RebuildStep(size_t set_index, Nanos t);

  // Deterministic read-replica choice: live member whose device frees up
  // earliest; ties to the lowest slot. Returns members-slot index or
  // SIZE_MAX when the set is dead. `exclude` skips one slot (rescue path).
  size_t ChooseReadReplica(const MirrorSet& set, size_t exclude, uint64_t lba) const;

  // Lowest-index live member other than `exclude_slot` (rebuild/scrub
  // source), or SIZE_MAX.
  size_t ChooseSource(const MirrorSet& set, size_t exclude_slot) const;

  std::optional<Nanos> SyncReadSub(const SubRange& sub, bool meta, Nanos now);
  std::optional<Nanos> SyncWriteSub(const SubRange& sub, bool meta, Nanos now);

  void NoteAccess(size_t device, uint64_t lba, uint32_t count);
  uint64_t ForegroundKey(size_t device, uint64_t lba) const;
  void RecordForegroundFault(size_t device, uint64_t lba);

  ArrayConfig config_;
  uint32_t width_ = 1;
  uint32_t replicas_ = 1;
  // All device schedulers: data devices first, then spares. Indices are
  // stable for the array's life.
  std::vector<IoScheduler*> all_;
  std::vector<MirrorSet> sets_;
  std::vector<size_t> spare_pool_;       // unclaimed spares, lowest first
  // Per device: region indices ever touched by foreground or rebuild I/O — a
  // coarse allocation bitmap (the md write-intent-bitmap / ZFS idea). Scrub
  // and resilver walk only these regions: a watermark would drag both
  // through the untouched gaps ext3's block-group spreading leaves behind,
  // making any rebuild window meaningless. std::set iterates in sorted
  // order, so the walks stay deterministic.
  std::vector<std::set<uint64_t>> written_regions_;
  // Per device: one past the last foreground-read LBA routed there. Read
  // replica selection gives a sequential continuation affinity for the device
  // already streaming it (the drive's track buffer holds the data), and only
  // load-balances by queue for non-sequential reads — the md RAID1 policy.
  std::vector<uint64_t> read_cursor_;
  std::vector<bool> failure_noticed_;    // per device: death already counted
  // Regions foreground traffic has already hit a fault in, keyed by
  // (device, region). Lookup-only — never iterated, so hash order cannot
  // leak into results.
  std::unordered_set<uint64_t> foreground_fault_regions_;
  // Owning set per device index (SIZE_MAX for unclaimed spares).
  std::vector<size_t> device_set_;
  IoWriteErrorSink* downstream_sink_ = nullptr;
  // Depth counter: >0 while the array itself is issuing redundant or
  // background I/O whose per-device failures it will adjudicate itself.
  int suppress_sink_ = 0;
  // Device a call is currently inside of, for async write errors surfacing
  // during that device's service pass.
  size_t current_device_ = SIZE_MAX;
  // Scrub walker: device index + next physical LBA on it.
  size_t scrub_device_ = 0;
  uint64_t scrub_region_ = 0;  // next region index to probe on scrub_device_
  Nanos scrub_due_ = -1;  // lazily initialised on first background advance
  uint32_t scrub_yields_ = 0;  // consecutive idle-yield skipped probes
  // Scratch for MapRequest (steady-state allocation-free).
  mutable std::vector<SubRange> scratch_;
  ArraySummary summary_;
};

}  // namespace fsbench

#endif  // SRC_SIM_BLOCK_ARRAY_H_
