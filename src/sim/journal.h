// Write-ahead journal (JBD-flavoured) for the ext3-like file system.
//
// Meta-data (and, in kJournaled mode, data) blocks dirtied by an operation
// join the running transaction. Commits write the logged blocks plus a
// commit record sequentially into the journal region — cheap sequential I/O,
// which is exactly why journaling costs show up in meta-data benchmarks but
// not in read benchmarks. Commits happen periodically (the kjournald timer)
// or synchronously on fsync.
#ifndef SRC_SIM_JOURNAL_H_
#define SRC_SIM_JOURNAL_H_

#include <cstdint>
#include <unordered_set>

#include "src/sim/clock.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/types.h"

namespace fsbench {

enum class JournalMode : uint8_t {
  kOrdered,    // meta-data only (ext3 default)
  kJournaled,  // data + meta-data
};

struct JournalConfig {
  JournalMode mode = JournalMode::kOrdered;
  Nanos commit_interval = 5 * kSecond;  // kjournald default
  uint32_t block_sectors = 8;           // journal block size in sectors (4 KiB)
};

struct JournalStats {
  uint64_t commits = 0;
  uint64_t sync_commits = 0;
  uint64_t blocks_logged = 0;
};

class Journal {
 public:
  // `region` is the reserved on-disk area (in *blocks* of block_sectors) the
  // journal wraps around in.
  Journal(IoScheduler* scheduler, VirtualClock* clock, Extent region,
          const JournalConfig& config);

  // Rebinds the clock the journal reads "now" from. The multi-thread engine
  // points this at the acting thread's cursor around every step, so commit
  // timing follows the thread that triggered it.
  void BindClock(VirtualClock* clock) { clock_ = clock; }

  // Adds a dirtied meta-data block to the running transaction.
  void LogMetadataBlock(BlockId block);

  // Adds a data block; no-op unless mode == kJournaled.
  void LogDataBlock(BlockId block);

  // Commits the running transaction asynchronously if the commit interval
  // has elapsed. Called opportunistically from the VFS on every operation.
  void MaybePeriodicCommit();

  // Synchronous commit (fsync path): the returned completion time reflects
  // waiting for the journal writes to reach the platter.
  Nanos CommitSync();

  size_t pending_blocks() const { return current_tx_.size(); }
  const JournalStats& stats() const { return stats_; }
  const JournalConfig& config() const { return config_; }

 private:
  // Emits the transaction's blocks into the journal region; returns the
  // completion time of the commit record for sync commits.
  Nanos WriteTransaction(bool sync);

  IoScheduler* scheduler_;
  VirtualClock* clock_;
  Extent region_;
  JournalConfig config_;
  uint64_t head_block_ = 0;  // offset within region, wraps
  Nanos last_commit_time_ = 0;
  std::unordered_set<BlockId> current_tx_;
  JournalStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_JOURNAL_H_
