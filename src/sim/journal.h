// Journal clients over the generic transaction log (txn_log.h).
//
// `Journal` is the interface the VFS drives: meta-data (and, in kJournaled
// mode, data) blocks dirtied by an operation join the running transaction;
// commits happen periodically (the kjournald timer) or synchronously on
// fsync, and the VFS reports home-location writebacks so the log can
// checkpoint. Two clients implement it:
//
//   - JbdJournal (ext3): blocks join the open on-disk transaction directly,
//     and every commit writes descriptor + logged blocks + commit record
//     into the log region — JBD's compound-transaction model.
//   - CilJournal (XFS delayed logging): deltas batch in an in-memory
//     Committed Item List and hit the log only when the CIL is pushed
//     (commit timer, fsync, or size threshold), so repeatedly re-dirtied
//     blocks cost one log copy per push rather than one per transaction.
#ifndef SRC_SIM_JOURNAL_H_
#define SRC_SIM_JOURNAL_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/txn_log.h"
#include "src/sim/types.h"

namespace fsbench {

enum class JournalMode : uint8_t {
  kOrdered,    // meta-data only (ext3 default)
  kJournaled,  // data + meta-data
};

struct JournalConfig {
  JournalMode mode = JournalMode::kOrdered;
  Nanos commit_interval = 5 * kSecond;  // kjournald default
  uint32_t block_sectors = 8;           // journal block size in sectors (4 KiB)
  // Passed through to the transaction log: background checkpoint writeback
  // starts when the log is more than this fraction full.
  double checkpoint_threshold = 0.75;
  // CilJournal only: push the in-memory CIL once it holds this many
  // distinct blocks (0 = push only on the commit timer or fsync).
  uint64_t cil_push_blocks = 1024;
};

struct JournalStats {
  uint64_t commits = 0;
  uint64_t sync_commits = 0;
  uint64_t blocks_logged = 0;
  uint64_t cil_inserts = 0;  // deltas absorbed by the in-memory CIL
  uint64_t cil_pushes = 0;   // CIL contexts pushed into the log
};

// Client interface the VFS (and the machine wiring) programs against.
class Journal {
 public:
  explicit Journal(const JournalConfig& config) : config_(config) {}
  virtual ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Rebinds the clock the journal reads "now" from. The multi-thread engine
  // points this at the acting thread's cursor around every step, so commit
  // timing follows the thread that triggered it.
  virtual void BindClock(VirtualClock* clock) = 0;

  // Adds a dirtied meta-data page to the running transaction.
  virtual void LogMetadata(const MetaRef& ref) = 0;

  // Adds a data page; no-op unless mode == kJournaled.
  virtual void LogData(const MetaRef& ref) = 0;

  // Commits the running transaction asynchronously if the commit interval
  // has elapsed. Called opportunistically from the VFS on every operation.
  virtual void MaybePeriodicCommit() = 0;

  // Synchronous commit (fsync path): the returned completion time reflects
  // waiting for the journal writes to reach the platter.
  virtual Nanos CommitSync() = 0;

  // The VFS reports every home block that no longer needs checkpointing —
  // written back to its home location, or freed without writeback (the
  // revoke-record role); reclaim frees log space from transactions whose
  // home blocks have all been reported since their commit.
  virtual void NoteHomeWrite(BlockId block) = 0;

  virtual size_t pending_blocks() const = 0;

  // The backing transaction log, for log-space/stall introspection and
  // crash recovery. Null for journal implementations without one (e.g. the
  // retained pre-refactor reference in tests).
  virtual TxnLog* txn_log() { return nullptr; }
  const TxnLog* txn_log() const { return const_cast<Journal*>(this)->txn_log(); }

  // Wires the checkpoint writeback provider (the VFS); attached by the
  // machine after the VFS exists.
  virtual void set_checkpoint_sink(CheckpointSink* sink) { (void)sink; }

  // Aborts the journal (errors=remount-ro): further logging and commits
  // become no-ops. Flag-setting only — the abort may fire re-entrantly from
  // a failed log write inside a commit (see TxnLog::Abort).
  virtual void Abort() {
    aborted_ = true;
    if (TxnLog* log = txn_log(); log != nullptr) {
      log->Abort();
    }
  }
  bool aborted() const { return aborted_; }

  // Crash bookkeeping: workload operations with index <= `op` have fully
  // logged their updates (engine-set at op boundaries in crash mode).
  void SetOpWatermark(uint64_t op) {
    if (TxnLog* log = txn_log(); log != nullptr) {
      log->SetOpWatermark(op);
    }
  }

  const JournalStats& stats() const { return stats_; }
  const JournalConfig& config() const { return config_; }

 protected:
  // Shared commit tail for clients backed by a TxnLog: commits the running
  // transaction (empty = free), keeps the stats, and advances the monotone
  // commit clock — a trailing thread cursor must never regress the
  // periodic-commit timer (the cursors themselves are not monotone across
  // threads).
  Nanos CommitToLog(TxnLog& log, VirtualClock* clock, bool sync);

  JournalConfig config_;
  JournalStats stats_;
  Nanos last_commit_time_ = 0;
  bool aborted_ = false;
};

// Ext3's JBD-flavoured client: every logged block goes straight into the
// open on-disk transaction.
class JbdJournal : public Journal {
 public:
  // `region` is the reserved on-disk area (in blocks of block_sectors) the
  // log wraps around in.
  JbdJournal(BlockIo* io, VirtualClock* clock, Extent region,
             const JournalConfig& config);

  void BindClock(VirtualClock* clock) override {
    clock_ = clock;
    log_.BindClock(clock);
  }
  void LogMetadata(const MetaRef& ref) override { log_.Add(ref); }
  void LogData(const MetaRef& ref) override {
    if (config_.mode == JournalMode::kJournaled) {
      log_.Add(ref);
    }
  }
  void MaybePeriodicCommit() override;
  Nanos CommitSync() override;
  void NoteHomeWrite(BlockId block) override { log_.NoteHomeWrite(block); }
  size_t pending_blocks() const override { return log_.pending_blocks(); }
  TxnLog* txn_log() override { return &log_; }
  void set_checkpoint_sink(CheckpointSink* sink) override { log_.set_checkpoint_sink(sink); }

 private:
  VirtualClock* clock_;
  TxnLog log_;
};

// XFS delayed-logging adapter: an in-memory CIL batches deltas and pushes
// them into the transaction log as one compound transaction.
class CilJournal : public Journal {
 public:
  CilJournal(BlockIo* io, VirtualClock* clock, Extent region,
             const JournalConfig& config);

  void BindClock(VirtualClock* clock) override {
    clock_ = clock;
    log_.BindClock(clock);
  }
  void LogMetadata(const MetaRef& ref) override;
  void LogData(const MetaRef& ref) override {
    if (config_.mode == JournalMode::kJournaled) {
      LogMetadata(ref);
    }
  }
  void MaybePeriodicCommit() override;
  Nanos CommitSync() override;
  void NoteHomeWrite(BlockId block) override { log_.NoteHomeWrite(block); }
  // Deltas still in memory plus anything already staged in the log.
  size_t pending_blocks() const override { return cil_.size() + log_.pending_blocks(); }
  TxnLog* txn_log() override { return &log_; }
  void set_checkpoint_sink(CheckpointSink* sink) override { log_.set_checkpoint_sink(sink); }

  size_t cil_blocks() const { return cil_.size(); }

 private:
  // Moves the CIL into the log's running transaction and commits it.
  Nanos Push(bool sync);

  VirtualClock* clock_;
  TxnLog log_;
  // Determinism audit (detlint R1): cil_set_ is lookup/insert-only, never
  // iterated; the push order that reaches the log is cil_'s insertion order.
  std::vector<MetaRef> cil_;             // insertion order
  std::unordered_set<BlockId> cil_set_;  // dedup across the whole context
};

}  // namespace fsbench

#endif  // SRC_SIM_JOURNAL_H_
