// Open-addressing inode index over a stable slab.
//
// Path resolution probes the inode table once per component, so the map from
// InodeId to Inode is one of the hottest structures in the simulator (after
// the page cache, which got the same treatment in the slab-cache rewrite).
// std::unordered_map pays a prime-modulo plus a node chase per find and a
// node allocation per insert; this table instead keeps:
//
//   index_  open addressing (linear probe, murmur-mixed hash, backward-shift
//           deletion) mapping InodeId -> slab position,
//   slab_   a std::deque<Inode> (stable addresses across growth) whose freed
//           positions are recycled through a LIFO free list.
//
// Pointers returned by Find()/Insert() stay valid until that inode is
// erased — the same stability guarantee std::unordered_map gave, which the
// file-system code relies on (e.g. holding the parent across AllocateInode).
#ifndef SRC_SIM_INODE_TABLE_H_
#define SRC_SIM_INODE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/sim/inode.h"
#include "src/sim/types.h"

namespace fsbench {

class InodeTable {
 public:
  InodeTable() : index_(kInitialSlots), mask_(kInitialSlots - 1) {}

  const Inode* Find(InodeId ino) const {
    const IndexSlot& slot = index_[Probe(ino)];
    return slot.ino == ino ? &slab_[slot.pos] : nullptr;
  }
  Inode* Find(InodeId ino) {
    const IndexSlot& slot = index_[Probe(ino)];
    return slot.ino == ino ? &slab_[slot.pos] : nullptr;
  }

  // Inserts a fresh inode (its id must not be present). The returned pointer
  // is stable until Erase.
  Inode* Insert(Inode&& inode);

  // Removes an inode; its slab position is recycled and its storage freed.
  void Erase(InodeId ino);

  size_t size() const { return size_; }

  // Iterates live inodes in unspecified order.
  class const_iterator {
   public:
    const_iterator(const InodeTable* table, size_t pos) : table_(table), pos_(pos) { Settle(); }
    const Inode& operator*() const { return table_->slab_[table_->index_[pos_].pos]; }
    const Inode* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++pos_;
      Settle();
      return *this;
    }
    bool operator==(const const_iterator& other) const { return pos_ == other.pos_; }
    bool operator!=(const const_iterator& other) const { return pos_ != other.pos_; }

   private:
    void Settle() {
      while (pos_ < table_->index_.size() && table_->index_[pos_].ino == kInvalidInode) {
        ++pos_;
      }
    }
    const InodeTable* table_;
    size_t pos_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, index_.size()); }

 private:
  static constexpr size_t kInitialSlots = 64;

  // kInvalidInode (0) is never a live id, so it doubles as the empty marker.
  struct IndexSlot {
    InodeId ino = kInvalidInode;
    uint32_t pos = 0;
  };

  // Sequential inode ids need mixing before masking or consecutive files
  // would form one long probe run (same lesson as PageKeyHash's finalizer).
  static size_t Mix(InodeId ino) {
    uint64_t h = ino * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }

  // Slot holding `ino`, or the first empty slot of its probe run.
  size_t Probe(InodeId ino) const {
    size_t slot = Mix(ino) & mask_;
    while (index_[slot].ino != kInvalidInode && index_[slot].ino != ino) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  void Grow();

  std::deque<Inode> slab_;
  std::vector<uint32_t> free_;  // recycled slab positions, LIFO
  std::vector<IndexSlot> index_;
  size_t mask_;
  size_t size_ = 0;
};

}  // namespace fsbench

#endif  // SRC_SIM_INODE_TABLE_H_
