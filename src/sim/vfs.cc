#include "src/sim/vfs.h"

#include <algorithm>
#include <cassert>
#include <string_view>

namespace fsbench {

namespace {

// Walks the '/'-separated components of a path in place; empty components
// collapse. Replaces the old SplitPath's per-call vector<string> so path
// resolution does no per-lookup heap traffic.
class PathCursor {
 public:
  explicit PathCursor(std::string_view path) : path_(path) {}

  // Advances to the next component; returns false at the end.
  bool Next(std::string_view* component) {
    while (pos_ < path_.size() && path_[pos_] == '/') {
      ++pos_;
    }
    if (pos_ >= path_.size()) {
      return false;
    }
    const size_t start = pos_;
    while (pos_ < path_.size() && path_[pos_] != '/') {
      ++pos_;
    }
    *component = path_.substr(start, pos_ - start);
    return true;
  }

 private:
  std::string_view path_;
  size_t pos_ = 0;
};

}  // namespace

Vfs::Vfs(VirtualClock* clock, IoScheduler* scheduler, FileSystem* fs, const VfsConfig& config,
         FlashTier* flash)
    : clock_(clock),
      scheduler_(scheduler),
      fs_(fs),
      flash_(flash),
      config_(config),
      cache_(config.cache_capacity_pages, config.eviction),
      readahead_(config.readahead_override.value_or(fs->readahead_config())) {
  dirty_limit_ = config_.dirty_limit_pages != 0 ? config_.dirty_limit_pages
                                                : std::max<size_t>(1, cache_.capacity() / 10);
}

double Vfs::DataHitRatio() const {
  const uint64_t total = stats_.data_page_hits + stats_.data_page_misses;
  return total == 0 ? 0.0 : static_cast<double>(stats_.data_page_hits) / total;
}

void Vfs::ChargeCpu(Nanos cost) {
  clock_->Advance(static_cast<Nanos>(static_cast<double>(cost) * config_.cpu_cost_multiplier));
}

FsStatus Vfs::DemandRead(BlockId block, uint32_t count) {
  ++stats_.demand_requests;
  const IoRequest req{IoKind::kRead, block * fs_->sectors_per_block(),
                      count * fs_->sectors_per_block()};
  const std::optional<Nanos> completion = scheduler_->SubmitSync(req);
  if (!completion.has_value()) {
    ++stats_.io_errors;
    return FsStatus::kIoError;
  }
  clock_->AdvanceTo(*completion);
  return FsStatus::kOk;
}

void Vfs::HandleEvictions(const PageCache::EvictedBatch& evicted) {
  for (const PageCache::Evicted& page : evicted) {
    if (page.dirty && page.block != kInvalidBlock) {
      scheduler_->SubmitAsync(IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                                        fs_->sectors_per_block()});
      ++stats_.writeback_pages;
    }
    // Demote RAM evictions into the flash tier (clean copies; durability is
    // handled by the writeback above).
    if (flash_ != nullptr && page.block != kInvalidBlock) {
      flash_->Insert(page.key, page.block);
    }
  }
}

void Vfs::InsertPage(const PageKey& key, BlockId block, bool dirty) {
  PageCache::EvictedBatch evicted;
  cache_.Insert(key, block, dirty, &evicted);
  if (!evicted.empty()) {
    HandleEvictions(evicted);
  }
}

FsStatus Vfs::ProcessMetaIo(const MetaIo& io) {
  for (const MetaRef& ref : io.reads) {
    ChargeCpu(config_.meta_touch_cost);
    const PageKey key{ref.ino, ref.index};
    if (!cache_.Lookup(key)) {
      const FsStatus status = DemandRead(ref.block, 1);
      if (status != FsStatus::kOk) {
        return status;
      }
      InsertPage(key, ref.block, /*dirty=*/false);
    }
  }
  Journal* journal = fs_->journal();
  for (const MetaRef& ref : io.writes) {
    ChargeCpu(config_.meta_touch_cost);
    InsertPage(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/true);
    if (journal != nullptr) {
      journal->LogMetadataBlock(ref.block);
    }
  }
  for (const MetaRef& ref : io.invalidations) {
    cache_.Remove(PageKey{ref.ino, ref.index});
    if (flash_ != nullptr) {
      flash_->Remove(PageKey{ref.ino, ref.index});
    }
  }
  for (const InodeId ino : io.drop_files) {
    cache_.RemoveFile(ino);
    if (flash_ != nullptr) {
      flash_->RemoveFile(ino);
    }
  }
  return FsStatus::kOk;
}

void Vfs::WritebackDirty(size_t max_pages) {
  cache_.TakeDirty(max_pages, &writeback_scratch_);
  // Sort by device block so the elevator sees sequential runs.
  std::sort(writeback_scratch_.begin(), writeback_scratch_.end(),
            [](const PageCache::Evicted& a, const PageCache::Evicted& b) {
              return a.block < b.block;
            });
  for (const PageCache::Evicted& page : writeback_scratch_) {
    if (page.block == kInvalidBlock) {
      continue;
    }
    scheduler_->SubmitAsync(IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                                      fs_->sectors_per_block()});
    ++stats_.writeback_pages;
  }
}

void Vfs::MaybeWriteback() {
  if (cache_.dirty_count() <= dirty_limit_) {
    return;
  }
  WritebackDirty(config_.writeback_batch_pages);
}

void Vfs::JournalTick() {
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->MaybePeriodicCommit();
  }
}

Vfs::OpenFile* Vfs::FileFor(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fd_table_.size() || !fd_table_[fd].has_value()) {
    return nullptr;
  }
  return &*fd_table_[fd];
}

FsResult<InodeId> Vfs::ResolvePath(const std::string& path, InodeId* parent_out,
                                   std::string* leaf_out) {
  PathCursor cursor(path);
  std::string_view component;
  InodeId current = kRootInode;
  if (!cursor.Next(&component)) {
    if (parent_out != nullptr) {
      return FsResult<InodeId>::Error(FsStatus::kInvalid);
    }
    return FsResult<InodeId>::Ok(current);
  }
  for (;;) {
    std::string_view next_component;
    const bool has_next = cursor.Next(&next_component);
    if (!has_next && parent_out != nullptr) {
      // Parent resolution stops one component early; `component` is the leaf.
      *parent_out = current;
      leaf_out->assign(component);
      return FsResult<InodeId>::Ok(current);
    }
    name_buf_.assign(component);
    MetaIo io;
    const FsResult<InodeId> next = fs_->Lookup(current, name_buf_, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return FsResult<InodeId>::Error(meta);
    }
    if (!next.ok()) {
      return next;
    }
    current = next.value;
    if (!has_next) {
      return FsResult<InodeId>::Ok(current);
    }
    component = next_component;
  }
}

FsResult<int> Vfs::Open(const std::string& path, bool create) {
  ++stats_.opens;
  ChargeCpu(config_.syscall_overhead);
  FsResult<InodeId> ino = ResolvePath(path, nullptr, nullptr);
  if (!ino.ok() && create && ino.status == FsStatus::kNotFound) {
    InodeId parent = kInvalidInode;
    std::string leaf;
    const FsResult<InodeId> parent_result = ResolvePath(path, &parent, &leaf);
    if (!parent_result.ok()) {
      return FsResult<int>::Error(parent_result.status);
    }
    MetaIo io;
    ino = fs_->Create(parent, leaf, FileType::kRegular, &io);
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return FsResult<int>::Error(meta);
    }
    ++stats_.creates;
    JournalTick();
  }
  if (!ino.ok()) {
    return FsResult<int>::Error(ino.status);
  }
  // Reuse the lowest free slot.
  for (size_t fd = 0; fd < fd_table_.size(); ++fd) {
    if (!fd_table_[fd].has_value()) {
      fd_table_[fd] = OpenFile{ino.value, {}};
      return FsResult<int>::Ok(static_cast<int>(fd));
    }
  }
  fd_table_.push_back(OpenFile{ino.value, {}});
  return FsResult<int>::Ok(static_cast<int>(fd_table_.size() - 1));
}

FsStatus Vfs::Close(int fd) {
  if (FileFor(fd) == nullptr) {
    return FsStatus::kBadHandle;
  }
  ChargeCpu(config_.syscall_overhead);
  fd_table_[fd].reset();
  return FsStatus::kOk;
}

void Vfs::IssueReadahead(OpenFile& file, uint64_t index, uint32_t pages) {
  // Collect uncached, mapped pages after `index`, coalescing physically
  // contiguous runs into single requests.
  BlockId run_start = kInvalidBlock;
  uint32_t run_len = 0;
  auto flush_run = [&] {
    if (run_len > 0) {
      scheduler_->SubmitAsync(IoRequest{IoKind::kRead, run_start * fs_->sectors_per_block(),
                                        run_len * fs_->sectors_per_block()});
      run_start = kInvalidBlock;
      run_len = 0;
    }
  };
  for (uint64_t j = index + 1; j <= index + pages; ++j) {
    const PageKey key{file.ino, j};
    if (cache_.Contains(key)) {
      continue;
    }
    // Pages resident in the flash tier are not worth a disk prefetch; they
    // will be promoted at flash latency if actually referenced.
    if (flash_ != nullptr && flash_->Contains(key)) {
      continue;
    }
    MetaIo io;
    const FsResult<BlockId> mapping = fs_->MapPage(file.ino, j, &io);
    if (ProcessMetaIo(io) != FsStatus::kOk || !mapping.ok() ||
        mapping.value == kInvalidBlock) {
      break;  // hole or past EOF: stop the window
    }
    if (run_len > 0 && mapping.value == run_start + run_len) {
      ++run_len;
    } else {
      flush_run();
      run_start = mapping.value;
      run_len = 1;
    }
    InsertPage(key, mapping.value, /*dirty=*/false);
    ++stats_.readahead_pages;
  }
  flush_run();
}

FsResult<Bytes> Vfs::Read(int fd, Bytes offset, Bytes length) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsResult<Bytes>::Error(FsStatus::kBadHandle);
  }
  ++stats_.reads;
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());

  MetaIo size_io;
  const FsResult<FileAttr> attr = fs_->Stat(file->ino, &size_io);
  if (!attr.ok()) {
    return FsResult<Bytes>::Error(attr.status);
  }
  if (ProcessMetaIo(size_io) != FsStatus::kOk) {
    return FsResult<Bytes>::Error(FsStatus::kIoError);
  }
  if (offset >= attr.value.size) {
    return FsResult<Bytes>::Ok(0);
  }
  length = std::min<Bytes>(length, attr.value.size - offset);
  if (length == 0) {
    return FsResult<Bytes>::Ok(0);
  }

  const Bytes page_size = config_.page_size;
  const uint64_t first_page = offset / page_size;
  const uint64_t last_page = (offset + length - 1) / page_size;

  for (uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{file->ino, page};
    const uint32_t ra_pages = readahead_.OnAccess(file->readahead, page);
    if (cache_.Lookup(key)) {
      ++stats_.data_page_hits;
      ChargeCpu(config_.page_copy_cost);
      continue;
    }
    ++stats_.data_page_misses;
    MetaIo io;
    const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &io);
    if (!mapping.ok()) {
      return FsResult<Bytes>::Error(mapping.status);
    }
    const FsStatus meta = ProcessMetaIo(io);
    if (meta != FsStatus::kOk) {
      return FsResult<Bytes>::Error(meta);
    }
    if (mapping.value == kInvalidBlock) {
      // Hole: zero fill.
      InsertPage(key, kInvalidBlock, /*dirty=*/false);
      ChargeCpu(config_.page_copy_cost);
      continue;
    }
    // Second-level tier: a flash hit promotes the page back into RAM at
    // device latency - the "middle step" between RAM and disk.
    if (flash_ != nullptr && flash_->LookupAndPromote(key)) {
      ++stats_.flash_hits;
      clock_->Advance(flash_->config().read_latency);
      InsertPage(key, mapping.value, /*dirty=*/false);
      ChargeCpu(config_.page_copy_cost);
      if (ra_pages > 0) {
        IssueReadahead(*file, page, ra_pages);
      }
      continue;
    }
    // Coalesce physically contiguous missing pages within the op range.
    uint32_t batch = 1;
    while (batch < config_.max_demand_batch && page + batch <= last_page) {
      const PageKey next_key{file->ino, page + batch};
      if (cache_.Contains(next_key)) {
        break;
      }
      MetaIo next_io;
      const FsResult<BlockId> next_map = fs_->MapPage(file->ino, page + batch, &next_io);
      if (!next_map.ok() || next_map.value != mapping.value + batch) {
        break;
      }
      if (ProcessMetaIo(next_io) != FsStatus::kOk) {
        break;
      }
      ++batch;
    }
    const FsStatus read_status = DemandRead(mapping.value, batch);
    if (read_status != FsStatus::kOk) {
      return FsResult<Bytes>::Error(read_status);
    }
    for (uint32_t i = 0; i < batch; ++i) {
      InsertPage(PageKey{file->ino, page + i}, mapping.value + i, /*dirty=*/false);
      ChargeCpu(config_.page_copy_cost);
    }
    if (batch > 1) {
      stats_.data_page_misses += batch - 1;
      page += batch - 1;
    }
    if (ra_pages > 0) {
      IssueReadahead(*file, page, ra_pages);
    }
  }

  stats_.bytes_read += length;
  JournalTick();
  return FsResult<Bytes>::Ok(length);
}

FsResult<Bytes> Vfs::Write(int fd, Bytes offset, Bytes length) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsResult<Bytes>::Error(FsStatus::kBadHandle);
  }
  if (length == 0) {
    return FsResult<Bytes>::Ok(0);
  }
  ++stats_.writes;
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());

  MetaIo size_io;
  const FsResult<FileAttr> attr = fs_->Stat(file->ino, &size_io);
  if (!attr.ok()) {
    return FsResult<Bytes>::Error(attr.status);
  }
  if (ProcessMetaIo(size_io) != FsStatus::kOk) {
    return FsResult<Bytes>::Error(FsStatus::kIoError);
  }
  const Bytes old_size = attr.value.size;

  const Bytes page_size = config_.page_size;
  const uint64_t first_page = offset / page_size;
  const uint64_t last_page = (offset + length - 1) / page_size;
  Journal* journal = fs_->journal();

  for (uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{file->ino, page};
    // Partial first/last page within the old file size needs
    // read-modify-write if not cached.
    const Bytes page_start = page * page_size;
    const bool partial = (page == first_page && offset > page_start) ||
                         (page == last_page && offset + length < page_start + page_size);
    if (cache_.Lookup(key)) {
      ++stats_.data_page_hits;
      cache_.MarkDirty(key);
      ChargeCpu(config_.page_copy_cost);
    } else {
      ++stats_.data_page_misses;
      MetaIo io;
      if (partial && page_start < old_size) {
        const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &io);
        if (!mapping.ok()) {
          return FsResult<Bytes>::Error(mapping.status);
        }
        if (ProcessMetaIo(io) != FsStatus::kOk) {
          return FsResult<Bytes>::Error(FsStatus::kIoError);
        }
        if (mapping.value != kInvalidBlock) {
          const FsStatus read_status = DemandRead(mapping.value, 1);
          if (read_status != FsStatus::kOk) {
            return FsResult<Bytes>::Error(read_status);
          }
        }
        io = MetaIo{};
      }
      const FsResult<BlockId> block = fs_->AllocatePage(file->ino, page, &io);
      if (!block.ok()) {
        return FsResult<Bytes>::Error(block.status);
      }
      if (ProcessMetaIo(io) != FsStatus::kOk) {
        return FsResult<Bytes>::Error(FsStatus::kIoError);
      }
      InsertPage(key, block.value, /*dirty=*/true);
      ChargeCpu(config_.page_copy_cost);
      if (journal != nullptr) {
        journal->LogDataBlock(block.value);
      }
    }
  }

  if (offset + length > old_size) {
    MetaIo io;
    const FsStatus status = fs_->SetSize(file->ino, offset + length, &io);
    if (status != FsStatus::kOk) {
      return FsResult<Bytes>::Error(status);
    }
    if (ProcessMetaIo(io) != FsStatus::kOk) {
      return FsResult<Bytes>::Error(FsStatus::kIoError);
    }
  }

  stats_.bytes_written += length;
  MaybeWriteback();
  JournalTick();
  return FsResult<Bytes>::Ok(length);
}

FsStatus Vfs::CreateFile(const std::string& path) {
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  InodeId parent = kInvalidInode;
  std::string leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  MetaIo io;
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kRegular, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (meta != FsStatus::kOk) {
    return meta;
  }
  if (!created.ok()) {
    return created.status;
  }
  ++stats_.creates;
  MaybeWriteback();
  JournalTick();
  return FsStatus::kOk;
}

FsStatus Vfs::Mkdir(const std::string& path) {
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  InodeId parent = kInvalidInode;
  std::string leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  MetaIo io;
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kDirectory, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (meta != FsStatus::kOk) {
    return meta;
  }
  JournalTick();
  return created.ok() ? FsStatus::kOk : created.status;
}

FsStatus Vfs::Unlink(const std::string& path) {
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  InodeId parent = kInvalidInode;
  std::string leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  MetaIo io;
  const FsStatus status = fs_->Unlink(parent, leaf, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (status != FsStatus::kOk) {
    return status;
  }
  if (meta != FsStatus::kOk) {
    return meta;
  }
  ++stats_.unlinks;
  MaybeWriteback();
  JournalTick();
  return FsStatus::kOk;
}

FsResult<FileAttr> Vfs::Stat(const std::string& path) {
  ++stats_.stats_calls;
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  const FsResult<InodeId> ino = ResolvePath(path, nullptr, nullptr);
  if (!ino.ok()) {
    return FsResult<FileAttr>::Error(ino.status);
  }
  MetaIo io;
  const FsResult<FileAttr> attr = fs_->Stat(ino.value, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (meta != FsStatus::kOk) {
    return FsResult<FileAttr>::Error(meta);
  }
  return attr;
}

FsResult<std::vector<std::string>> Vfs::ReadDir(const std::string& path) {
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  const FsResult<InodeId> ino = ResolvePath(path, nullptr, nullptr);
  if (!ino.ok()) {
    return FsResult<std::vector<std::string>>::Error(ino.status);
  }
  MetaIo io;
  FsResult<std::vector<std::string>> entries = fs_->ReadDir(ino.value, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (meta != FsStatus::kOk) {
    return FsResult<std::vector<std::string>>::Error(meta);
  }
  return entries;
}

FsStatus Vfs::Truncate(const std::string& path, Bytes new_size) {
  ChargeCpu(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  const FsResult<InodeId> ino = ResolvePath(path, nullptr, nullptr);
  if (!ino.ok()) {
    return ino.status;
  }
  MetaIo io;
  const FsStatus status = fs_->SetSize(ino.value, new_size, &io);
  const FsStatus meta = ProcessMetaIo(io);
  if (status != FsStatus::kOk) {
    return status;
  }
  JournalTick();
  return meta;
}

FsStatus Vfs::Fsync(int fd) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsStatus::kBadHandle;
  }
  ++stats_.fsyncs;
  ChargeCpu(config_.syscall_overhead);
  // Flush everything dirty (per-file filtering would require a reverse
  // index; sync semantics are preserved, just a little stricter).
  WritebackDirty(cache_.capacity());
  clock_->AdvanceTo(scheduler_->Drain());
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    clock_->AdvanceTo(journal->CommitSync());
  }
  return FsStatus::kOk;
}

void Vfs::SyncAll() {
  WritebackDirty(cache_.capacity());
  clock_->AdvanceTo(scheduler_->Drain());
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    clock_->AdvanceTo(journal->CommitSync());
  }
}

FsStatus Vfs::MakeFile(const std::string& path, Bytes size) {
  InodeId parent = kInvalidInode;
  std::string leaf;
  {
    // Setup helper: resolve without charging time or touching the cache.
    PathCursor cursor(path);
    std::string_view component;
    if (!cursor.Next(&component)) {
      return FsStatus::kInvalid;
    }
    InodeId current = kRootInode;
    std::string_view next_component;
    while (cursor.Next(&next_component)) {
      name_buf_.assign(component);
      MetaIo io;
      const FsResult<InodeId> next = fs_->Lookup(current, name_buf_, &io);
      if (!next.ok()) {
        return next.status;
      }
      current = next.value;
      component = next_component;
    }
    parent = current;
    leaf = component;
  }
  MetaIo io;
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kRegular, &io);
  if (!created.ok()) {
    return created.status;
  }
  const uint64_t pages = CeilDiv(size, config_.page_size);
  for (uint64_t page = 0; page < pages; ++page) {
    MetaIo alloc_io;
    const FsResult<BlockId> block = fs_->AllocatePage(created.value, page, &alloc_io);
    if (!block.ok()) {
      return block.status;
    }
  }
  MetaIo size_io;
  return fs_->SetSize(created.value, size, &size_io);
}

FsStatus Vfs::PrewarmFile(const std::string& path) {
  PathCursor cursor(path);
  std::string_view component;
  InodeId current = kRootInode;
  while (cursor.Next(&component)) {
    name_buf_.assign(component);
    MetaIo io;
    const FsResult<InodeId> next = fs_->Lookup(current, name_buf_, &io);
    if (!next.ok()) {
      return next.status;
    }
    current = next.value;
  }
  MetaIo stat_io;
  const FsResult<FileAttr> attr = fs_->Stat(current, &stat_io);
  if (!attr.ok()) {
    return attr.status;
  }
  const uint64_t pages = CeilDiv(attr.value.size, config_.page_size);
  for (uint64_t page = 0; page < pages; ++page) {
    MetaIo io;
    const FsResult<BlockId> mapping = fs_->MapPage(current, page, &io);
    if (!mapping.ok()) {
      return mapping.status;
    }
    // Meta pages are warmed too, without timing. Evictions demote into the
    // flash tier (when present) so prewarm reproduces the steady tiering.
    for (const MetaRef& ref : io.reads) {
      cache_.Insert(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/false, nullptr);
    }
    PageCache::EvictedBatch evicted;
    cache_.Insert(PageKey{current, page}, mapping.value, /*dirty=*/false, &evicted);
    if (flash_ != nullptr) {
      for (const PageCache::Evicted& victim : evicted) {
        if (victim.block != kInvalidBlock) {
          flash_->Insert(victim.key, victim.block);
        }
      }
    }
  }
  return FsStatus::kOk;
}

void Vfs::DropCaches() {
  cache_.Clear();
  if (flash_ != nullptr) {
    flash_->Clear();
  }
}

}  // namespace fsbench
