#include "src/sim/vfs.h"

#include <algorithm>
#include <cassert>
#include <string_view>

namespace fsbench {

namespace {

// Walks the '/'-separated components of a path in place; empty components
// collapse. Replaces the old SplitPath's per-call vector<string> so path
// resolution does no per-lookup heap traffic.
class PathCursor {
 public:
  explicit PathCursor(std::string_view path) : path_(path) {}

  // Advances to the next component; returns false at the end.
  bool Next(std::string_view* component) {
    while (pos_ < path_.size() && path_[pos_] == '/') {
      ++pos_;
    }
    if (pos_ >= path_.size()) {
      return false;
    }
    const size_t start = pos_;
    while (pos_ < path_.size() && path_[pos_] != '/') {
      ++pos_;
    }
    *component = path_.substr(start, pos_ - start);
    return true;
  }

 private:
  std::string_view path_;
  size_t pos_ = 0;
};

}  // namespace

Vfs::Vfs(VirtualClock* clock, BlockIo* io, FileSystem* fs, const VfsConfig& config,
         FlashTier* flash)
    : clock_(clock),
      io_(io),
      fs_(fs),
      flash_(flash),
      config_(config),
      cache_(config.cache_capacity_pages, config.eviction),
      readahead_(config.readahead_override.value_or(fs->readahead_config())) {
  dirty_limit_ = config_.dirty_limit_pages != 0 ? config_.dirty_limit_pages
                                                : std::max<size_t>(1, cache_.capacity() / 10);
  auto scale = [this](Nanos cost) {
    return static_cast<Nanos>(static_cast<double>(cost) * config_.cpu_cost_multiplier);
  };
  scaled_syscall_ = scale(config_.syscall_overhead);
  scaled_syscall_plus_op_ = scale(config_.syscall_overhead + fs_->per_op_cpu_overhead());
  scaled_page_copy_ = scale(config_.page_copy_cost);
  scaled_meta_touch_ = scale(config_.meta_touch_cost);
}

double Vfs::DataHitRatio() const {
  const uint64_t total = stats_.data_page_hits + stats_.data_page_misses;
  return total == 0 ? 0.0 : static_cast<double>(stats_.data_page_hits) / total;
}

FsStatus Vfs::DemandRead(BlockId block, uint32_t count, bool meta) {
  ++stats_.demand_requests;
  const IoRequest req{IoKind::kRead, block * fs_->sectors_per_block(),
                      count * fs_->sectors_per_block(), meta};
  const std::optional<Nanos> completion = io_->SubmitSync(req, clock_->now());
  if (!completion.has_value()) {
    ++stats_.io_errors;
    return FsStatus::kIoError;
  }
  clock_->AdvanceTo(*completion);
  return FsStatus::kOk;
}

void Vfs::HandleEvictions(const PageCache::EvictedBatch& evicted) {
  Journal* journal = fs_->journal();
  for (const PageCache::Evicted& page : evicted) {
    if (page.dirty && page.block != kInvalidBlock) {
      // A full device queue throttles the evicting thread (dirty-page
      // balancing): the stall is charged to whoever forced the eviction.
      clock_->AdvanceTo(io_->SubmitAsync(
          IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                    fs_->sectors_per_block(), page.key.ino == kMetaInode},
          clock_->now()));
      ++stats_.writeback_pages;
      if (journal != nullptr) {
        journal->NoteHomeWrite(page.block);
      }
    }
    // Demote RAM evictions into the flash tier (clean copies; durability is
    // handled by the writeback above).
    if (flash_ != nullptr && page.block != kInvalidBlock) {
      flash_->Insert(page.key, page.block);
    }
  }
}

void Vfs::InsertPage(const PageKey& key, BlockId block, bool dirty) {
  PageCache::EvictedBatch evicted;
  cache_.Insert(key, block, dirty, &evicted);
  if (!evicted.empty()) {
    HandleEvictions(evicted);
  }
}

FsStatus Vfs::ProcessMetaIo(const MetaIo& io) {
  for (const MetaRef& ref : io.reads) {
    clock_->Advance(scaled_meta_touch_);
    const PageKey key{ref.ino, ref.index};
    if (!cache_.Lookup(key)) {
      const FsStatus status = DemandRead(ref.block, 1, /*meta=*/true);
      if (status != FsStatus::kOk) {
        return status;
      }
      InsertPage(key, ref.block, /*dirty=*/false);
    }
  }
  if (!io.writes.empty()) {
    Journal* journal = fs_->journal();
    for (const MetaRef& ref : io.writes) {
      clock_->Advance(scaled_meta_touch_);
      InsertPage(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/true);
      if (journal != nullptr) {
        journal->LogMetadata(ref);
      }
    }
  }
  if (!io.invalidations.empty()) {
    Journal* journal = fs_->journal();
    for (const MetaRef& ref : io.invalidations) {
      cache_.Remove(PageKey{ref.ino, ref.index});
      if (flash_ != nullptr) {
        flash_->Remove(PageKey{ref.ino, ref.index});
      }
      // A dropped home block no longer needs checkpointing: its logged
      // content is moot (the block was freed).
      if (journal != nullptr) {
        journal->NoteHomeWrite(ref.block);
      }
    }
  }
  for (const InodeId ino : io.drop_files) {
    cache_.RemoveFile(ino);
    if (flash_ != nullptr) {
      flash_->RemoveFile(ino);
    }
  }
  return FsStatus::kOk;
}

void Vfs::SubmitWritebackBatch(std::vector<PageCache::Evicted>& batch) {
  // Sort by device block so the elevator sees sequential runs.
  std::sort(batch.begin(), batch.end(),
            [](const PageCache::Evicted& a, const PageCache::Evicted& b) {
              return a.block < b.block;
            });
  Journal* journal = fs_->journal();
  for (const PageCache::Evicted& page : batch) {
    if (page.block == kInvalidBlock) {
      continue;
    }
    clock_->AdvanceTo(io_->SubmitAsync(
        IoRequest{IoKind::kWrite, page.block * fs_->sectors_per_block(),
                  fs_->sectors_per_block(), page.key.ino == kMetaInode},
        clock_->now()));
    ++stats_.writeback_pages;
    if (journal != nullptr) {
      journal->NoteHomeWrite(page.block);
    }
  }
}

void Vfs::OnWriteError(const IoRequest& req, Nanos now) {
  (void)now;  // bookkeeping only; no time is charged to the failing writer
  ++stats_.write_errors;
  if (req.meta) {
    ++stats_.meta_write_errors;
    // A lost metadata or journal-log write: the file system decides whether
    // this means remount-read-only (journal abort) or soldiering on.
    fs_->NoteMetaIoFailure();
  }
}

size_t Vfs::WritebackForCheckpoint(const MetaRef* refs, size_t count, Nanos now) {
  (void)now;  // submissions read the bound cursor, which the caller shares
  checkpoint_scratch_.clear();
  Journal* journal = fs_->journal();
  for (size_t i = 0; i < count; ++i) {
    const MetaRef& ref = refs[i];
    if (!cache_.TakeDirtyPage(PageKey{ref.ino, ref.index}, &checkpoint_scratch_)) {
      // No dirty page behind this ref: a prior writeback put the content
      // home, or the page is gone (eviction already written back;
      // whole-file drop on unlink freed the block). Either way the log
      // copy is no longer owed to the platter.
      journal->NoteHomeWrite(ref.block);
    }
  }
  const size_t submitted = checkpoint_scratch_.size();
  SubmitWritebackBatch(checkpoint_scratch_);
  return submitted;
}

void Vfs::WritebackDirty(size_t max_pages) {
  cache_.TakeDirty(max_pages, &writeback_scratch_);
  SubmitWritebackScratch();
}

void Vfs::MaybeWriteback() {
  if (cache_.dirty_count() <= dirty_limit_) {
    return;
  }
  WritebackDirty(config_.writeback_batch_pages);
}

void Vfs::JournalTick() {
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    journal->MaybePeriodicCommit();
  }
}

Vfs::OpenFile* Vfs::FileFor(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fd_table_.size() || !fd_table_[fd].has_value()) {
    return nullptr;
  }
  return &*fd_table_[fd];
}

FsResult<InodeId> Vfs::ResolvePath(std::string_view path, ResolveMode mode, InodeId* parent_out,
                                   std::string_view* leaf_out) {
  if (parent_out != nullptr) {
    *parent_out = kInvalidInode;
  }
  PathCursor cursor(path);
  std::string_view component;
  InodeId current = kRootInode;
  if (!cursor.Next(&component)) {
    if (mode == ResolveMode::kParent) {
      return FsResult<InodeId>::Error(FsStatus::kInvalid);
    }
    return FsResult<InodeId>::Ok(current);  // "/" itself; no parent to report
  }
  // The whole walk accumulates into one MetaIo, processed once at the end
  // (or at the first failed component). Lookups generate only reads and
  // namespace logic never observes the clock or the cache, so charging all
  // components' reads in order after the walk is byte-identical to charging
  // them between components — with one ProcessMetaIo loop instead of one
  // per component.
  meta_scratch_.Reset();
  for (;;) {
    std::string_view next_component;
    const bool has_next = cursor.Next(&next_component);
    if (!has_next) {
      // `component` is the leaf; `current` its parent.
      if (parent_out != nullptr) {
        *parent_out = current;
        *leaf_out = component;
      }
      if (mode == ResolveMode::kParent) {
        const FsStatus meta = ProcessMetaIo(meta_scratch_);
        if (meta != FsStatus::kOk) {
          return FsResult<InodeId>::Error(meta);
        }
        return FsResult<InodeId>::Ok(current);
      }
    }
    const FsResult<InodeId> next = fs_->Lookup(current, component, &meta_scratch_);
    if (!next.ok() || !has_next) {
      const FsStatus meta = ProcessMetaIo(meta_scratch_);
      if (meta != FsStatus::kOk) {
        return FsResult<InodeId>::Error(meta);
      }
      return next;
    }
    current = next.value;
    component = next_component;
  }
}

FsResult<int> Vfs::Open(std::string_view path, bool create) {
  ++stats_.opens;
  clock_->Advance(scaled_syscall_);
  // Single walk: the leaf's parent comes out of the same resolution that
  // discovers the leaf is missing (the old pipeline re-resolved the whole
  // path a second time to find the parent).
  InodeId parent = kInvalidInode;
  std::string_view leaf;
  FsResult<InodeId> ino = ResolvePath(path, ResolveMode::kOpen, &parent, &leaf);
  if (!ino.ok() && create && ino.status == FsStatus::kNotFound && parent != kInvalidInode) {
    if (fs_->read_only()) {
      ++stats_.readonly_rejects;
      return FsResult<int>::Error(FsStatus::kReadOnly);
    }
    meta_scratch_.Reset();
    ino = fs_->Create(parent, leaf, FileType::kRegular, &meta_scratch_);
    const FsStatus meta = ProcessMetaIo(meta_scratch_);
    if (meta != FsStatus::kOk) {
      return FsResult<int>::Error(meta);
    }
    ++stats_.creates;
    JournalTick();
  }
  if (!ino.ok()) {
    return FsResult<int>::Error(ino.status);
  }
  // Reuse the lowest free slot.
  for (size_t fd = 0; fd < fd_table_.size(); ++fd) {
    if (!fd_table_[fd].has_value()) {
      fd_table_[fd] = OpenFile{ino.value, {}};
      return FsResult<int>::Ok(static_cast<int>(fd));
    }
  }
  fd_table_.push_back(OpenFile{ino.value, {}});
  return FsResult<int>::Ok(static_cast<int>(fd_table_.size() - 1));
}

FsStatus Vfs::Close(int fd) {
  if (FileFor(fd) == nullptr) {
    return FsStatus::kBadHandle;
  }
  clock_->Advance(scaled_syscall_);
  fd_table_[fd].reset();
  return FsStatus::kOk;
}

void Vfs::IssueReadahead(OpenFile& file, uint64_t index, uint32_t pages) {
  // Collect uncached, mapped pages after `index`, coalescing physically
  // contiguous runs into single requests.
  BlockId run_start = kInvalidBlock;
  uint32_t run_len = 0;
  auto flush_run = [&] {
    if (run_len > 0) {
      // Readahead is throttled by the same bounded queue as writeback.
      clock_->AdvanceTo(io_->SubmitAsync(
          IoRequest{IoKind::kRead, run_start * fs_->sectors_per_block(),
                    run_len * fs_->sectors_per_block()},
          clock_->now()));
      run_start = kInvalidBlock;
      run_len = 0;
    }
  };
  for (uint64_t j = index + 1; j <= index + pages; ++j) {
    const PageKey key{file.ino, j};
    if (cache_.Contains(key)) {
      continue;
    }
    // Pages resident in the flash tier are not worth a disk prefetch; they
    // will be promoted at flash latency if actually referenced.
    if (flash_ != nullptr && flash_->Contains(key)) {
      continue;
    }
    meta_scratch_.Reset();
    const FsResult<BlockId> mapping = fs_->MapPage(file.ino, j, &meta_scratch_);
    if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk || !mapping.ok() ||
        mapping.value == kInvalidBlock) {
      break;  // hole or past EOF: stop the window
    }
    if (run_len > 0 && mapping.value == run_start + run_len) {
      ++run_len;
    } else {
      flush_run();
      run_start = mapping.value;
      run_len = 1;
    }
    InsertPage(key, mapping.value, /*dirty=*/false);
    ++stats_.readahead_pages;
  }
  flush_run();
}

FsResult<Bytes> Vfs::Read(int fd, Bytes offset, Bytes length) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsResult<Bytes>::Error(FsStatus::kBadHandle);
  }
  ++stats_.reads;
  clock_->Advance(scaled_syscall_plus_op_);
  if (fs_->read_only()) {
    ++stats_.degraded_reads;  // still served: degraded mode is read-only, not dead
  }

  meta_scratch_.Reset();
  const FsResult<FileAttr> attr = fs_->Stat(file->ino, &meta_scratch_);
  if (!attr.ok()) {
    return FsResult<Bytes>::Error(attr.status);
  }
  if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
    return FsResult<Bytes>::Error(FsStatus::kIoError);
  }
  if (offset >= attr.value.size) {
    return FsResult<Bytes>::Ok(0);
  }
  length = std::min<Bytes>(length, attr.value.size - offset);
  if (length == 0) {
    return FsResult<Bytes>::Ok(0);
  }

  const Bytes page_size = config_.page_size;
  const uint64_t first_page = offset / page_size;
  const uint64_t last_page = (offset + length - 1) / page_size;

  for (uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{file->ino, page};
    // The readahead decision is anchored at this page; a coalesced demand
    // batch below advances `page`, but the prefetch window must still start
    // where the decision was made.
    const uint64_t ra_anchor = page;
    const uint32_t ra_pages = readahead_.OnAccess(file->readahead, page);
    if (cache_.Lookup(key)) {
      ++stats_.data_page_hits;
      clock_->Advance(scaled_page_copy_);
      continue;
    }
    ++stats_.data_page_misses;
    meta_scratch_.Reset();
    const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &meta_scratch_);
    if (!mapping.ok()) {
      return FsResult<Bytes>::Error(mapping.status);
    }
    const FsStatus meta = ProcessMetaIo(meta_scratch_);
    if (meta != FsStatus::kOk) {
      return FsResult<Bytes>::Error(meta);
    }
    if (mapping.value == kInvalidBlock) {
      // Hole: zero fill.
      InsertPage(key, kInvalidBlock, /*dirty=*/false);
      clock_->Advance(scaled_page_copy_);
      continue;
    }
    // Second-level tier: a flash hit promotes the page back into RAM at
    // device latency - the "middle step" between RAM and disk.
    if (flash_ != nullptr && flash_->LookupAndPromote(key)) {
      ++stats_.flash_hits;
      clock_->Advance(flash_->config().read_latency);
      InsertPage(key, mapping.value, /*dirty=*/false);
      clock_->Advance(scaled_page_copy_);
      if (ra_pages > 0) {
        IssueReadahead(*file, ra_anchor, ra_pages);
      }
      continue;
    }
    // Coalesce physically contiguous missing pages within the op range.
    uint32_t batch = 1;
    while (batch < config_.max_demand_batch && page + batch <= last_page) {
      const PageKey next_key{file->ino, page + batch};
      if (cache_.Contains(next_key)) {
        break;
      }
      meta_scratch_.Reset();
      const FsResult<BlockId> next_map = fs_->MapPage(file->ino, page + batch, &meta_scratch_);
      if (!next_map.ok() || next_map.value != mapping.value + batch) {
        break;
      }
      if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
        break;
      }
      ++batch;
    }
    const FsStatus read_status = DemandRead(mapping.value, batch);
    if (read_status != FsStatus::kOk) {
      return FsResult<Bytes>::Error(read_status);
    }
    for (uint32_t i = 0; i < batch; ++i) {
      InsertPage(PageKey{file->ino, page + i}, mapping.value + i, /*dirty=*/false);
      clock_->Advance(scaled_page_copy_);
    }
    if (batch > 1) {
      stats_.data_page_misses += batch - 1;
      page += batch - 1;
    }
    if (ra_pages > 0) {
      IssueReadahead(*file, ra_anchor, ra_pages);
    }
  }

  stats_.bytes_read += length;
  JournalTick();
  return FsResult<Bytes>::Ok(length);
}

FsResult<Bytes> Vfs::Write(int fd, Bytes offset, Bytes length) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsResult<Bytes>::Error(FsStatus::kBadHandle);
  }
  if (length == 0) {
    return FsResult<Bytes>::Ok(0);
  }
  ++stats_.writes;
  clock_->Advance(scaled_syscall_plus_op_);
  // Degraded mode: a remounted-read-only fs refuses mutations. Checked after
  // the syscall charge so rejected operations still consume virtual time.
  if (fs_->read_only()) {
    ++stats_.readonly_rejects;
    return FsResult<Bytes>::Error(FsStatus::kReadOnly);
  }

  meta_scratch_.Reset();
  const FsResult<FileAttr> attr = fs_->Stat(file->ino, &meta_scratch_);
  if (!attr.ok()) {
    return FsResult<Bytes>::Error(attr.status);
  }
  if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
    return FsResult<Bytes>::Error(FsStatus::kIoError);
  }
  const Bytes old_size = attr.value.size;

  const Bytes page_size = config_.page_size;
  const uint64_t first_page = offset / page_size;
  const uint64_t last_page = (offset + length - 1) / page_size;
  Journal* journal = fs_->journal();

  for (uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{file->ino, page};
    // Partial first/last page within the old file size needs
    // read-modify-write if not cached.
    const Bytes page_start = page * page_size;
    const bool partial = (page == first_page && offset > page_start) ||
                         (page == last_page && offset + length < page_start + page_size);
    if (cache_.Lookup(key)) {
      ++stats_.data_page_hits;
      cache_.MarkDirty(key);
      clock_->Advance(scaled_page_copy_);
    } else {
      ++stats_.data_page_misses;
      if (partial && page_start < old_size) {
        meta_scratch_.Reset();
        const FsResult<BlockId> mapping = fs_->MapPage(file->ino, page, &meta_scratch_);
        if (!mapping.ok()) {
          return FsResult<Bytes>::Error(mapping.status);
        }
        if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
          return FsResult<Bytes>::Error(FsStatus::kIoError);
        }
        if (mapping.value != kInvalidBlock) {
          const FsStatus read_status = DemandRead(mapping.value, 1);
          if (read_status != FsStatus::kOk) {
            return FsResult<Bytes>::Error(read_status);
          }
        }
      }
      meta_scratch_.Reset();
      const FsResult<BlockId> block = fs_->AllocatePage(file->ino, page, &meta_scratch_);
      if (!block.ok()) {
        return FsResult<Bytes>::Error(block.status);
      }
      if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
        return FsResult<Bytes>::Error(FsStatus::kIoError);
      }
      InsertPage(key, block.value, /*dirty=*/true);
      clock_->Advance(scaled_page_copy_);
      if (journal != nullptr) {
        journal->LogData(MetaRef{file->ino, page, block.value});
      }
    }
  }

  if (offset + length > old_size) {
    meta_scratch_.Reset();
    const FsStatus status = fs_->SetSize(file->ino, offset + length, &meta_scratch_);
    if (status != FsStatus::kOk) {
      return FsResult<Bytes>::Error(status);
    }
    if (ProcessMetaIo(meta_scratch_) != FsStatus::kOk) {
      return FsResult<Bytes>::Error(FsStatus::kIoError);
    }
  }

  stats_.bytes_written += length;
  MaybeWriteback();
  JournalTick();
  return FsResult<Bytes>::Ok(length);
}

FsStatus Vfs::CreateFile(std::string_view path) {
  clock_->Advance(scaled_syscall_plus_op_);
  if (fs_->read_only()) {
    ++stats_.readonly_rejects;
    return FsStatus::kReadOnly;
  }
  InodeId parent = kInvalidInode;
  std::string_view leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, ResolveMode::kParent, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  meta_scratch_.Reset();
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kRegular, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (meta != FsStatus::kOk) {
    return meta;
  }
  if (!created.ok()) {
    return created.status;
  }
  ++stats_.creates;
  MaybeWriteback();
  JournalTick();
  return FsStatus::kOk;
}

FsStatus Vfs::Mkdir(std::string_view path) {
  clock_->Advance(scaled_syscall_plus_op_);
  if (fs_->read_only()) {
    ++stats_.readonly_rejects;
    return FsStatus::kReadOnly;
  }
  InodeId parent = kInvalidInode;
  std::string_view leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, ResolveMode::kParent, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  meta_scratch_.Reset();
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kDirectory, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (meta != FsStatus::kOk) {
    return meta;
  }
  JournalTick();
  return created.ok() ? FsStatus::kOk : created.status;
}

FsStatus Vfs::Unlink(std::string_view path) {
  clock_->Advance(scaled_syscall_plus_op_);
  if (fs_->read_only()) {
    ++stats_.readonly_rejects;
    return FsStatus::kReadOnly;
  }
  InodeId parent = kInvalidInode;
  std::string_view leaf;
  const FsResult<InodeId> parent_result = ResolvePath(path, ResolveMode::kParent, &parent, &leaf);
  if (!parent_result.ok()) {
    return parent_result.status;
  }
  meta_scratch_.Reset();
  const FsStatus status = fs_->Unlink(parent, leaf, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (status != FsStatus::kOk) {
    return status;
  }
  if (meta != FsStatus::kOk) {
    return meta;
  }
  ++stats_.unlinks;
  MaybeWriteback();
  JournalTick();
  return FsStatus::kOk;
}

FsResult<FileAttr> Vfs::Stat(std::string_view path) {
  ++stats_.stats_calls;
  clock_->Advance(scaled_syscall_plus_op_);
  const FsResult<InodeId> ino = ResolvePath(path, ResolveMode::kFull, nullptr, nullptr);
  if (!ino.ok()) {
    return FsResult<FileAttr>::Error(ino.status);
  }
  meta_scratch_.Reset();
  const FsResult<FileAttr> attr = fs_->Stat(ino.value, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (meta != FsStatus::kOk) {
    return FsResult<FileAttr>::Error(meta);
  }
  return attr;
}

FsResult<std::vector<std::string>> Vfs::ReadDir(std::string_view path) {
  clock_->Advance(scaled_syscall_plus_op_);
  const FsResult<InodeId> ino = ResolvePath(path, ResolveMode::kFull, nullptr, nullptr);
  if (!ino.ok()) {
    return FsResult<std::vector<std::string>>::Error(ino.status);
  }
  meta_scratch_.Reset();
  FsResult<std::vector<std::string>> entries = fs_->ReadDir(ino.value, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (meta != FsStatus::kOk) {
    return FsResult<std::vector<std::string>>::Error(meta);
  }
  return entries;
}

FsStatus Vfs::Truncate(std::string_view path, Bytes new_size) {
  clock_->Advance(scaled_syscall_plus_op_);
  if (fs_->read_only()) {
    ++stats_.readonly_rejects;
    return FsStatus::kReadOnly;
  }
  const FsResult<InodeId> ino = ResolvePath(path, ResolveMode::kFull, nullptr, nullptr);
  if (!ino.ok()) {
    return ino.status;
  }
  meta_scratch_.Reset();
  const FsStatus status = fs_->SetSize(ino.value, new_size, &meta_scratch_);
  const FsStatus meta = ProcessMetaIo(meta_scratch_);
  if (status != FsStatus::kOk) {
    return status;
  }
  JournalTick();
  return meta;
}

FsStatus Vfs::Fsync(int fd) {
  OpenFile* file = FileFor(fd);
  if (file == nullptr) {
    return FsStatus::kBadHandle;
  }
  ++stats_.fsyncs;
  clock_->Advance(scaled_syscall_);
  // Per-file writeback: walk the page cache's per-inode chain for this
  // file's dirty pages only. (The old pipeline flushed the entire dirty
  // set — stricter than POSIX, and it penalised every other file's
  // writeback clustering.)
  cache_.TakeDirtyFile(file->ino, &writeback_scratch_);
  // POSIX fsync also makes the file's *metadata* durable: its inode-table
  // block and mapping meta blocks (indirect / extent nodes), all keyed
  // under kMetaInode. Shared metadata stays background — bitmaps belong to
  // the allocator, and the parent dirent's durability is the directory's
  // own fsync, as POSIX has it.
  if (const Inode* inode = fs_->FindInode(file->ino); inode != nullptr) {
    cache_.TakeDirtyPage(PageKey{kMetaInode, inode->itable_block}, &writeback_scratch_);
    for (const BlockId block : inode->indirect_blocks) {
      if (block != kInvalidBlock) {
        cache_.TakeDirtyPage(PageKey{kMetaInode, block}, &writeback_scratch_);
      }
    }
    for (const BlockId block : inode->extent_meta_blocks) {
      cache_.TakeDirtyPage(PageKey{kMetaInode, block}, &writeback_scratch_);
    }
  }
  SubmitWritebackScratch();
  clock_->AdvanceTo(io_->Drain(clock_->now()));
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    clock_->AdvanceTo(journal->CommitSync());
  }
  return FsStatus::kOk;
}

void Vfs::SyncAll() {
  WritebackDirty(cache_.capacity());
  clock_->AdvanceTo(io_->Drain(clock_->now()));
  if (Journal* journal = fs_->journal(); journal != nullptr) {
    clock_->AdvanceTo(journal->CommitSync());
  }
}

FsStatus Vfs::MakeFile(std::string_view path, Bytes size) {
  InodeId parent = kInvalidInode;
  std::string_view leaf;
  {
    // Setup helper: resolve without charging time or touching the cache.
    PathCursor cursor(path);
    std::string_view component;
    if (!cursor.Next(&component)) {
      return FsStatus::kInvalid;
    }
    InodeId current = kRootInode;
    std::string_view next_component;
    while (cursor.Next(&next_component)) {
      meta_scratch_.Reset();
      const FsResult<InodeId> next = fs_->Lookup(current, component, &meta_scratch_);
      if (!next.ok()) {
        return next.status;
      }
      current = next.value;
      component = next_component;
    }
    parent = current;
    leaf = component;
  }
  meta_scratch_.Reset();
  const FsResult<InodeId> created = fs_->Create(parent, leaf, FileType::kRegular, &meta_scratch_);
  if (!created.ok()) {
    return created.status;
  }
  const uint64_t pages = CeilDiv(size, config_.page_size);
  for (uint64_t page = 0; page < pages; ++page) {
    meta_scratch_.Reset();
    const FsResult<BlockId> block = fs_->AllocatePage(created.value, page, &meta_scratch_);
    if (!block.ok()) {
      return block.status;
    }
  }
  meta_scratch_.Reset();
  return fs_->SetSize(created.value, size, &meta_scratch_);
}

FsStatus Vfs::PrewarmFile(std::string_view path) {
  PathCursor cursor(path);
  std::string_view component;
  InodeId current = kRootInode;
  while (cursor.Next(&component)) {
    meta_scratch_.Reset();
    const FsResult<InodeId> next = fs_->Lookup(current, component, &meta_scratch_);
    if (!next.ok()) {
      return next.status;
    }
    current = next.value;
  }
  meta_scratch_.Reset();
  const FsResult<FileAttr> attr = fs_->Stat(current, &meta_scratch_);
  if (!attr.ok()) {
    return attr.status;
  }
  const uint64_t pages = CeilDiv(attr.value.size, config_.page_size);
  for (uint64_t page = 0; page < pages; ++page) {
    meta_scratch_.Reset();
    const FsResult<BlockId> mapping = fs_->MapPage(current, page, &meta_scratch_);
    if (!mapping.ok()) {
      return mapping.status;
    }
    // Meta pages are warmed too, without timing. Evictions demote into the
    // flash tier (when present) so prewarm reproduces the steady tiering.
    for (const MetaRef& ref : meta_scratch_.reads) {
      cache_.Insert(PageKey{ref.ino, ref.index}, ref.block, /*dirty=*/false, nullptr);
    }
    PageCache::EvictedBatch evicted;
    cache_.Insert(PageKey{current, page}, mapping.value, /*dirty=*/false, &evicted);
    if (flash_ != nullptr) {
      for (const PageCache::Evicted& victim : evicted) {
        if (victim.block != kInvalidBlock) {
          flash_->Insert(victim.key, victim.block);
        }
      }
    }
  }
  return FsStatus::kOk;
}

void Vfs::DropCaches() {
  cache_.Clear();
  if (flash_ != nullptr) {
    flash_->Clear();
  }
}

}  // namespace fsbench
