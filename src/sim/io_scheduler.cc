#include "src/sim/io_scheduler.h"

#include <algorithm>

namespace fsbench {

IoScheduler::IoScheduler(DiskModel* disk, VirtualClock* clock, SchedulerKind kind)
    : disk_(disk), clock_(clock), kind_(kind) {}

void IoScheduler::ServicePending(Nanos from) {
  if (pending_.empty()) {
    return;
  }
  if (kind_ == SchedulerKind::kElevator) {
    // C-SCAN: ascending LBA order. The sort is stable with respect to equal
    // LBAs, preserving submission order for overlapping requests.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const IoRequest& a, const IoRequest& b) { return a.lba < b.lba; });
  }
  Nanos t = std::max(busy_until_, from);
  for (const IoRequest& req : pending_) {
    const std::optional<Nanos> service = disk_->Access(req);
    ++stats_.async_serviced;
    if (!service.has_value()) {
      ++stats_.async_errors;
      continue;
    }
    t += *service;
  }
  pending_.clear();
  busy_until_ = t;
}

std::optional<Nanos> IoScheduler::SubmitSync(const IoRequest& req) {
  ++stats_.sync_requests;
  ServicePending(clock_->now());
  const Nanos start = std::max(clock_->now(), busy_until_);
  const std::optional<Nanos> service = disk_->Access(req);
  if (!service.has_value()) {
    return std::nullopt;
  }
  const Nanos completion = start + *service;
  busy_until_ = completion;
  stats_.total_sync_wait += completion - clock_->now();
  return completion;
}

void IoScheduler::SubmitAsync(const IoRequest& req) {
  ++stats_.async_requests;
  pending_.push_back(req);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, pending_.size());
}

Nanos IoScheduler::Drain() {
  ServicePending(clock_->now());
  return std::max(busy_until_, clock_->now());
}

}  // namespace fsbench
