#include "src/sim/io_scheduler.h"

#include <algorithm>
#include <functional>

namespace fsbench {

IoScheduler::IoScheduler(DeviceModel* disk, SchedulerKind kind) : disk_(disk), kind_(kind) {
  if (kind_ == SchedulerKind::kMultiQueue) {
    channel_busy_.assign(disk_->channels(), 0);
  }
}

Nanos IoScheduler::QueueStart(const IoRequest& req, Nanos now) const {
  if (channel_busy_.empty()) {
    return std::max(now, busy_until_);
  }
  return std::max(now, channel_busy_[disk_->ChannelOf(req.lba)]);
}

void IoScheduler::CommitDeviceEnd(const IoRequest& req, Nanos device_end) {
  if (channel_busy_.empty()) {
    busy_until_ = std::max(busy_until_, device_end);
    return;
  }
  Nanos& channel = channel_busy_[disk_->ChannelOf(req.lba)];
  channel = std::max(channel, device_end);
  busy_until_ = std::max(busy_until_, channel);
}

void IoScheduler::RetireCompleted(Nanos now) {
  while (!inflight_.empty() && inflight_.front() <= now) {
    std::pop_heap(inflight_.begin(), inflight_.end(), std::greater<>());
    inflight_.pop_back();
  }
}

void IoScheduler::AdmitInflight(Nanos completion) {
  inflight_.push_back(completion);
  std::push_heap(inflight_.begin(), inflight_.end(), std::greater<>());
}

std::optional<Nanos> IoScheduler::AttemptWithRetry(const IoRequest& req, Nanos start, Nanos* end,
                                                   Nanos* device_end) {
  Nanos t = start;
  Nanos backoff_total = 0;
  uint32_t attempt = 1;
  Nanos backoff = policy_.initial_backoff;
  bool tried_remap = false;
  for (;;) {
    const AccessResult result = disk_->AccessEx(req, t);
    if (result.service.has_value()) {
      *end = t + *result.service;
      *device_end = *end - backoff_total;
      return *end;
    }
    t += result.fail_time;  // the doomed attempt occupied the device
    if (result.fault == FaultKind::kPersistent) {
      if (policy_.remap && !tried_remap && disk_->RemapRegion(req.lba)) {
        // The region is remapped into the spare pool; re-issue immediately —
        // the redirected request reads/writes the spare, not the bad media.
        tried_remap = true;
        ++stats_.remaps;
        continue;
      }
      // A medium error is deterministic: the drive already exhausted its
      // internal retries, so re-issuing the same LBAs can only burn device
      // time. Fail fast — remapping is the only policy that helps.
      *end = t;
      *device_end = t - backoff_total;
      return std::nullopt;
    }
    if (attempt >= policy_.max_attempts) {
      *end = t;
      *device_end = t - backoff_total;
      return std::nullopt;
    }
    ++attempt;
    ++stats_.retries;
    stats_.retry_backoff_time += backoff;
    // The backoff advances the request's own timeline but not the device's:
    // the drive is free between the host's reissues, so the queue behind this
    // request reclaims the gap (credited back via *device_end).
    t += backoff;
    backoff_total += backoff;
    backoff = static_cast<Nanos>(static_cast<double>(backoff) * policy_.backoff_multiplier);
  }
}

void IoScheduler::NotifyFailure(const IoRequest& req, Nanos at) {
  if (observer_ != nullptr) {
    observer_->OnIoComplete(req, at, /*ok=*/false);
  }
  if (error_sink_ != nullptr && req.kind == IoKind::kWrite) {
    error_sink_->OnWriteError(req, at);
  }
}

void IoScheduler::ServicePendingMultiQueue(Nanos from) {
  // Per-channel FIFO: requests dispatch in submission order, each against
  // its own channel's timeline, so the async backlog spreads over every
  // channel instead of serialising on one. The swap-out protects against
  // re-entrant submissions exactly as in the single-queue pass.
  std::vector<PendingRequest> batch;
  batch.swap(pending_);
  for (const PendingRequest& pending : batch) {
    const IoRequest& req = pending.req;
    const Nanos t =
        std::max({QueueStart(req, from), pending.submitted});
    if (dispatch_log_ != nullptr) {
      dispatch_log_->push_back(req.lba);
    }
    Nanos end = t;
    Nanos device_end = t;
    const std::optional<Nanos> completion = AttemptWithRetry(req, t, &end, &device_end);
    ++stats_.async_serviced;
    CommitDeviceEnd(req, device_end);
    if (!completion.has_value()) {
      ++stats_.async_errors;
      NotifyFailure(req, end);
      continue;
    }
    AdmitInflight(*completion);
    if (observer_ != nullptr) {
      observer_->OnIoComplete(req, *completion, /*ok=*/true);
    }
  }
  if (pending_.empty() && batch.capacity() > pending_.capacity()) {
    batch.clear();
    pending_.swap(batch);
  }
}

void IoScheduler::ServicePending(Nanos from) {
  if (pending_.empty()) {
    return;
  }
  if (kind_ == SchedulerKind::kMultiQueue) {
    ServicePendingMultiQueue(from);
    return;
  }
  if (kind_ == SchedulerKind::kElevator) {
    // C-SCAN: ascending LBA from the current head position, wrapping once at
    // the top. The sort is stable with respect to equal LBAs, preserving
    // submission order for overlapping requests; the rotate starts service
    // at the first request ahead of the head instead of forcing a full
    // stroke back to the lowest queued LBA.
    std::stable_sort(
        pending_.begin(), pending_.end(),
        [](const PendingRequest& a, const PendingRequest& b) { return a.req.lba < b.req.lba; });
    const auto ahead =
        std::find_if(pending_.begin(), pending_.end(),
                     [this](const PendingRequest& p) { return p.req.lba >= head_lba_; });
    std::rotate(pending_.begin(), ahead, pending_.end());
  }
  Nanos t = std::max(busy_until_, from);
  // The service pass may re-enter the scheduler: a permanent write failure
  // notifies the error sink, and the file system's reaction (journal abort)
  // must not observe a half-serviced queue. Swap the batch out first.
  std::vector<PendingRequest> batch;
  batch.swap(pending_);
  for (const PendingRequest& pending : batch) {
    const IoRequest& req = pending.req;
    // Causality: a thread with an earlier cursor may trigger this pass, but
    // the device cannot start a request before it was submitted.
    t = std::max(t, pending.submitted);
    if (dispatch_log_ != nullptr) {
      dispatch_log_->push_back(req.lba);
    }
    Nanos end = t;
    Nanos device_end = t;
    const std::optional<Nanos> completion = AttemptWithRetry(req, t, &end, &device_end);
    ++stats_.async_serviced;
    head_lba_ = req.lba + req.sector_count;
    if (!completion.has_value()) {
      ++stats_.async_errors;
      t = device_end;  // failed attempts still occupied the device
      NotifyFailure(req, end);
      continue;
    }
    // The device frees up at device_end (backoff gaps are reclaimed by the
    // queue); the request itself completes at *completion.
    t = device_end;
    AdmitInflight(*completion);
    if (observer_ != nullptr) {
      observer_->OnIoComplete(req, *completion, /*ok=*/true);
    }
  }
  if (pending_.empty() && batch.capacity() > pending_.capacity()) {
    // Keep the larger buffer to stay allocation-free in steady state (only
    // when no re-entrant submission repopulated the queue meanwhile).
    batch.clear();
    pending_.swap(batch);
  }
  busy_until_ = std::max(t, busy_until_);
}

std::optional<Nanos> IoScheduler::SubmitSync(const IoRequest& req, Nanos now) {
  ++stats_.sync_requests;
  RetireCompleted(now);
  // The device's queue the instant this request arrives: everything admitted
  // but not yet complete, the async backlog it must wait out, and itself.
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, inflight_.size() + pending_.size() + 1);
  ServicePending(now);
  const Nanos start = QueueStart(req, now);
  if (dispatch_log_ != nullptr) {
    dispatch_log_->push_back(req.lba);
  }
  Nanos end = start;
  Nanos device_end = start;
  const std::optional<Nanos> completion = AttemptWithRetry(req, start, &end, &device_end);
  head_lba_ = req.lba + req.sector_count;
  if (!completion.has_value()) {
    ++stats_.sync_errors;
    CommitDeviceEnd(req, device_end);  // the failed attempts burned device time
    NotifyFailure(req, end);
    return std::nullopt;
  }
  CommitDeviceEnd(req, device_end);
  AdmitInflight(*completion);
  stats_.total_sync_wait += *completion - now;
  stats_.total_sync_queue_delay += start - now;
  if (observer_ != nullptr) {
    observer_->OnIoComplete(req, *completion, /*ok=*/true);
  }
  return *completion;
}

Nanos IoScheduler::SubmitAsync(const IoRequest& req, Nanos now) {
  ++stats_.async_requests;
  RetireCompleted(now);
  pending_.push_back(PendingRequest{req, now});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, inflight_.size() + pending_.size());
  if (pending_.size() < kMaxPendingAsync) {
    return now;
  }
  // The queue is full: admit the backlog onto the device timeline(s) and
  // throttle the producer until the device has a free moment. In
  // kMultiQueue mode that is the earliest-idle channel (the device can
  // accept new work as soon as any channel drains); single-queue devices
  // wait out the whole timeline. The stall is the producer's to pay —
  // that is the point: a writer outrunning the device must feel it.
  ServicePending(now);
  Nanos free_at = busy_until_;
  if (!channel_busy_.empty()) {
    free_at = channel_busy_[0];
    for (const Nanos busy : channel_busy_) {
      free_at = std::min(free_at, busy);
    }
  }
  const Nanos admit = std::max(now, free_at);
  if (admit > now) {
    ++stats_.async_throttle_stalls;
    stats_.total_async_throttle_time += admit - now;
  }
  return admit;
}

Nanos IoScheduler::Drain(Nanos now) {
  RetireCompleted(now);
  ServicePending(now);
  return std::max(busy_until_, now);
}

}  // namespace fsbench
