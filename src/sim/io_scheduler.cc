#include "src/sim/io_scheduler.h"

#include <algorithm>
#include <functional>

namespace fsbench {

IoScheduler::IoScheduler(DiskModel* disk, SchedulerKind kind) : disk_(disk), kind_(kind) {}

void IoScheduler::RetireCompleted(Nanos now) {
  while (!inflight_.empty() && inflight_.front() <= now) {
    std::pop_heap(inflight_.begin(), inflight_.end(), std::greater<>());
    inflight_.pop_back();
  }
}

void IoScheduler::AdmitInflight(Nanos completion) {
  inflight_.push_back(completion);
  std::push_heap(inflight_.begin(), inflight_.end(), std::greater<>());
}

void IoScheduler::ServicePending(Nanos from) {
  if (pending_.empty()) {
    return;
  }
  if (kind_ == SchedulerKind::kElevator) {
    // C-SCAN: ascending LBA from the current head position, wrapping once at
    // the top. The sort is stable with respect to equal LBAs, preserving
    // submission order for overlapping requests; the rotate starts service
    // at the first request ahead of the head instead of forcing a full
    // stroke back to the lowest queued LBA.
    std::stable_sort(
        pending_.begin(), pending_.end(),
        [](const PendingRequest& a, const PendingRequest& b) { return a.req.lba < b.req.lba; });
    const auto ahead =
        std::find_if(pending_.begin(), pending_.end(),
                     [this](const PendingRequest& p) { return p.req.lba >= head_lba_; });
    std::rotate(pending_.begin(), ahead, pending_.end());
  }
  Nanos t = std::max(busy_until_, from);
  for (const PendingRequest& pending : pending_) {
    const IoRequest& req = pending.req;
    // Causality: a thread with an earlier cursor may trigger this pass, but
    // the device cannot start a request before it was submitted.
    t = std::max(t, pending.submitted);
    if (dispatch_log_ != nullptr) {
      dispatch_log_->push_back(req.lba);
    }
    const std::optional<Nanos> service = disk_->Access(req);
    ++stats_.async_serviced;
    head_lba_ = req.lba + req.sector_count;
    if (!service.has_value()) {
      ++stats_.async_errors;
      if (observer_ != nullptr) {
        observer_->OnIoComplete(req, t, /*ok=*/false);
      }
      continue;
    }
    t += *service;
    AdmitInflight(t);
    if (observer_ != nullptr) {
      observer_->OnIoComplete(req, t, /*ok=*/true);
    }
  }
  pending_.clear();
  busy_until_ = std::max(t, busy_until_);
}

std::optional<Nanos> IoScheduler::SubmitSync(const IoRequest& req, Nanos now) {
  ++stats_.sync_requests;
  RetireCompleted(now);
  // The device's queue the instant this request arrives: everything admitted
  // but not yet complete, the async backlog it must wait out, and itself.
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, inflight_.size() + pending_.size() + 1);
  ServicePending(now);
  const Nanos start = std::max(now, busy_until_);
  if (dispatch_log_ != nullptr) {
    dispatch_log_->push_back(req.lba);
  }
  const std::optional<Nanos> service = disk_->Access(req);
  head_lba_ = req.lba + req.sector_count;
  if (!service.has_value()) {
    if (observer_ != nullptr) {
      observer_->OnIoComplete(req, start, /*ok=*/false);
    }
    return std::nullopt;
  }
  const Nanos completion = start + *service;
  busy_until_ = completion;
  AdmitInflight(completion);
  stats_.total_sync_wait += completion - now;
  stats_.total_sync_queue_delay += start - now;
  if (observer_ != nullptr) {
    observer_->OnIoComplete(req, completion, /*ok=*/true);
  }
  return completion;
}

void IoScheduler::SubmitAsync(const IoRequest& req, Nanos now) {
  ++stats_.async_requests;
  RetireCompleted(now);
  pending_.push_back(PendingRequest{req, now});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, inflight_.size() + pending_.size());
}

Nanos IoScheduler::Drain(Nanos now) {
  RetireCompleted(now);
  ServicePending(now);
  return std::max(busy_until_, now);
}

}  // namespace fsbench
