// Request queueing in front of the DiskModel.
//
// The scheduler owns the notion of "when is the disk free": synchronous
// requests (demand reads, fsync writes) block the caller until completion,
// while asynchronous requests (readahead, writeback) only occupy the device
// in the background. Pending async requests are serviced — in FIFO or
// elevator (ascending-LBA C-SCAN) order — before the next synchronous
// request or an explicit Drain().
#ifndef SRC_SIM_IO_SCHEDULER_H_
#define SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/disk_model.h"
#include "src/util/units.h"

namespace fsbench {

enum class SchedulerKind : uint8_t { kFifo, kElevator };

struct IoSchedulerStats {
  uint64_t sync_requests = 0;
  uint64_t async_requests = 0;
  uint64_t async_serviced = 0;
  uint64_t async_errors = 0;
  Nanos total_sync_wait = 0;  // queueing delay + service for sync requests
  size_t max_queue_depth = 0;
};

class IoScheduler {
 public:
  IoScheduler(DiskModel* disk, VirtualClock* clock, SchedulerKind kind = SchedulerKind::kElevator);

  // Issues a synchronous request. Pending async requests are drained first.
  // Returns the absolute completion time (>= clock->now()); the caller is
  // responsible for advancing the clock. Returns std::nullopt on an injected
  // device error.
  std::optional<Nanos> SubmitSync(const IoRequest& req);

  // Queues an asynchronous request; it consumes device time in the
  // background and is serviced before the next sync request or Drain().
  void SubmitAsync(const IoRequest& req);

  // Services all queued async requests. Returns the time the device goes
  // idle (>= clock->now()).
  Nanos Drain();

  // Absolute virtual time until which the device is busy with already
  // admitted work.
  Nanos busy_until() const { return busy_until_; }

  size_t pending_async() const { return pending_.size(); }
  const IoSchedulerStats& stats() const { return stats_; }
  SchedulerKind kind() const { return kind_; }

 private:
  // Services pending async requests starting no earlier than `from`.
  void ServicePending(Nanos from);

  DiskModel* disk_;
  VirtualClock* clock_;
  SchedulerKind kind_;
  Nanos busy_until_ = 0;
  std::vector<IoRequest> pending_;
  IoSchedulerStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_IO_SCHEDULER_H_
