// Request queueing in front of the DiskModel.
//
// The scheduler owns the device timeline: it is deliberately *clockless* —
// every entry point takes the caller's current virtual time explicitly, so N
// simulated threads with independent clock cursors can share one device.
// Synchronous requests (demand reads, fsync writes) start no earlier than
// `busy_until()`, the absolute time the device finishes already-admitted
// work; a thread whose cursor trails another thread's I/O therefore observes
// real queueing delay. Asynchronous requests (readahead, writeback) only
// occupy the device in the background and are serviced — in FIFO or elevator
// (C-SCAN, ascending from the current head position with wrap-around) order —
// before the next synchronous request or an explicit Drain().
//
// Queue-depth and wait accounting reflect the device's real outstanding
// queue: admitted-but-not-yet-completed requests are tracked in a completion
// min-heap and retired as later submissions observe time passing, so
// `max_queue_depth` counts in-flight requests plus queued async plus the
// arriving request — not merely the async backlog.
#ifndef SRC_SIM_IO_SCHEDULER_H_
#define SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/util/units.h"

namespace fsbench {

enum class SchedulerKind : uint8_t { kFifo, kElevator };

// Observes the moment a request's completion time is determined (admission
// for sync requests, the service pass for async ones). Used by ShadowDisk to
// track durable-vs-volatile block state for crash injection; null (the
// default) costs the hot path nothing but a branch.
class IoCompletionObserver {
 public:
  virtual ~IoCompletionObserver() = default;
  // `ok` is false when the request hit an injected device fault (no
  // completion happened; `completion` is the failure instant).
  virtual void OnIoComplete(const IoRequest& req, Nanos completion, bool ok) = 0;
};

struct IoSchedulerStats {
  uint64_t sync_requests = 0;
  uint64_t async_requests = 0;
  uint64_t async_serviced = 0;
  uint64_t async_errors = 0;
  Nanos total_sync_wait = 0;         // queueing delay + service for sync requests
  Nanos total_sync_queue_delay = 0;  // device-busy wait alone (start - submit)
  size_t max_queue_depth = 0;        // in-flight + queued async + the arriving request
};

class IoScheduler {
 public:
  explicit IoScheduler(DiskModel* disk, SchedulerKind kind = SchedulerKind::kElevator);

  // Issues a synchronous request from a thread whose cursor reads `now`.
  // Pending async requests are serviced first (they were admitted before the
  // sync arrival). Returns the absolute completion time (>= now); the caller
  // is responsible for advancing its cursor. Returns std::nullopt on an
  // injected device error.
  std::optional<Nanos> SubmitSync(const IoRequest& req, Nanos now);

  // Queues an asynchronous request submitted at `now`; it consumes device
  // time in the background and is serviced before the next sync request or
  // Drain(). The submission time is kept: a request never occupies the
  // device before it existed, even when a thread with an earlier cursor
  // triggers the service pass.
  void SubmitAsync(const IoRequest& req, Nanos now);

  // Services all queued async requests. Returns the time the device goes
  // idle (>= now). Idempotent: with nothing pending it just reports the
  // idle time.
  Nanos Drain(Nanos now);

  // Absolute virtual time until which the device is busy with already
  // admitted work.
  Nanos busy_until() const { return busy_until_; }

  size_t pending_async() const { return pending_.size(); }
  // Admitted requests not yet retired against the last observed time.
  size_t inflight() const { return inflight_.size(); }
  const IoSchedulerStats& stats() const { return stats_; }
  SchedulerKind kind() const { return kind_; }

  // Test hook: when set, the LBA of every request is appended in dispatch
  // order (async services and sync submissions alike).
  void set_dispatch_log(std::vector<uint64_t>* log) { dispatch_log_ = log; }

  // Crash-tracking hook (see IoCompletionObserver above).
  void set_completion_observer(IoCompletionObserver* observer) { observer_ = observer; }

 private:
  // Services pending async requests starting no earlier than `from`.
  void ServicePending(Nanos from);

  // Retires in-flight completions at or before `now`.
  void RetireCompleted(Nanos now);

  // Pushes a completion time into the in-flight min-heap.
  void AdmitInflight(Nanos completion);

  struct PendingRequest {
    IoRequest req;
    Nanos submitted = 0;  // service starts no earlier than this
  };

  DiskModel* disk_;
  SchedulerKind kind_;
  Nanos busy_until_ = 0;
  // One past the last dispatched LBA: the elevator's head position.
  uint64_t head_lba_ = 0;
  std::vector<PendingRequest> pending_;
  std::vector<Nanos> inflight_;  // min-heap of admitted completion times
  std::vector<uint64_t>* dispatch_log_ = nullptr;
  IoCompletionObserver* observer_ = nullptr;
  IoSchedulerStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_IO_SCHEDULER_H_
