// Request queueing in front of a DeviceModel.
//
// The scheduler owns the device timeline: it is deliberately *clockless* —
// every entry point takes the caller's current virtual time explicitly, so N
// simulated threads with independent clock cursors can share one device.
// Synchronous requests (demand reads, fsync writes) start no earlier than
// the relevant busy-until timeline — the absolute time the device finishes
// already-admitted work; a thread whose cursor trails another thread's I/O
// therefore observes real queueing delay. Asynchronous requests (readahead,
// writeback) only occupy the device in the background and are serviced — in
// FIFO or elevator (C-SCAN, ascending from the current head position with
// wrap-around) order — before the next synchronous request or an explicit
// Drain().
//
// kMultiQueue is the NVMe-class mode: the scheduler keeps one busy-until
// timeline per device channel (DeviceModel::channels()/ChannelOf), so
// requests landing on distinct channels overlap in time and aggregate
// throughput rises with queue depth until the channels saturate. There is
// no elevator — flash has no head to spare a seek — so dispatch is FIFO
// per channel. `busy_until()` stays the max over every channel (the stable
// point and replica-choice consumers need the device-wide horizon).
//
// Queue-depth and wait accounting reflect the device's real outstanding
// queue: admitted-but-not-yet-completed requests are tracked in a completion
// min-heap and retired as later submissions observe time passing, so
// `max_queue_depth` counts in-flight requests plus queued async plus the
// arriving request — not merely the async backlog.
//
// The scheduler is also where fault-handling policy lives (the block layer's
// role on a real host): every submission runs through a retry loop —
// transient faults are re-attempted up to RetryPolicy::max_attempts with
// exponential virtual-time backoff, persistent faults can trigger a one-time
// region remap into the disk's spare pool, and only a request that exhausts
// the policy surfaces as an error. Permanent *write* failures are reported
// to an IoWriteErrorSink (the VFS), which lets file systems react —
// journaled ones abort and remount read-only.
#ifndef SRC_SIM_IO_SCHEDULER_H_
#define SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/device_model.h"
#include "src/util/units.h"

namespace fsbench {

enum class SchedulerKind : uint8_t { kFifo, kElevator, kMultiQueue };

// Abstract block endpoint the upper layers (VFS, journal, TxnLog) issue
// requests against. A single IoScheduler is the degenerate case; a
// BlockArray (src/sim/block_array.h) composes several scheduler+disk pairs
// into a redundant geometry behind the same three entry points. Everything
// is clockless: callers pass their own virtual time.
class BlockIo {
 public:
  virtual ~BlockIo() = default;

  // Synchronous request at the caller's time `now`; returns the absolute
  // completion time, or std::nullopt on permanent failure.
  virtual std::optional<Nanos> SubmitSync(const IoRequest& req, Nanos now) = 0;

  // Background request admitted at `now`; serviced before the next sync
  // request or Drain(). Returns the time the submission was *accepted*
  // (>= now): normally `now` itself, but a device whose background queue
  // is full throttles the producer — the block layer's bounded request
  // queue — and the caller must charge the returned stall to its clock.
  virtual Nanos SubmitAsync(const IoRequest& req, Nanos now) = 0;

  // Services all queued background work; returns the time the device(s) go
  // idle (>= now).
  virtual Nanos Drain(Nanos now) = 0;
};

// Observes the moment a request's completion time is determined (admission
// for sync requests, the service pass for async ones). Used by ShadowDisk to
// track durable-vs-volatile block state for crash injection; null (the
// default) costs the hot path nothing but a branch.
class IoCompletionObserver {
 public:
  virtual ~IoCompletionObserver() = default;
  // `ok` is false when the request hit an injected device fault (no
  // completion happened; `completion` is the failure instant).
  virtual void OnIoComplete(const IoRequest& req, Nanos completion, bool ok) = 0;
};

// Notified when a write fails permanently (the retry policy is exhausted).
// Implemented by the VFS, which forwards metadata/log failures to the file
// system's error handler. Read failures are not reported here: synchronous
// reads surface their error to the issuing operation directly.
class IoWriteErrorSink {
 public:
  virtual ~IoWriteErrorSink() = default;
  virtual void OnWriteError(const IoRequest& req, Nanos now) = 0;
};

// Block-layer fault handling policy. Defaults are the historical behavior:
// one attempt, no remapping — every device fault surfaces immediately.
struct RetryPolicy {
  // Total attempts per request, including the first (1 = no retries).
  // Applies to transient faults only: a persistent (medium-error) verdict is
  // deterministic, so the scheduler fails it fast rather than burning
  // attempts — remapping is the only policy that rescues those.
  uint32_t max_attempts = 1;
  // Virtual-time wait before the first re-attempt; doubles (well,
  // multiplies) on each subsequent one.
  Nanos initial_backoff = FromMillis(0.5);
  double backoff_multiplier = 2.0;
  // Remap a persistently-bad region into the disk's spare pool on first
  // failure (at most once per request), then re-issue immediately.
  bool remap = false;
};

struct IoSchedulerStats {
  uint64_t sync_requests = 0;
  uint64_t async_requests = 0;
  uint64_t async_serviced = 0;
  uint64_t async_errors = 0;   // async requests that failed permanently
  uint64_t sync_errors = 0;    // sync requests that failed permanently
  uint64_t retries = 0;        // re-attempts issued by the retry policy
  uint64_t remaps = 0;         // region remaps triggered by persistent faults
  Nanos retry_backoff_time = 0;      // virtual time spent backing off
  Nanos total_sync_wait = 0;         // queueing delay + service for sync requests
  Nanos total_sync_queue_delay = 0;  // device-busy wait alone (start - submit)
  size_t max_queue_depth = 0;        // in-flight + queued async + the arriving request
  uint64_t async_throttle_stalls = 0;   // submissions that hit the bounded queue
  Nanos total_async_throttle_time = 0;  // producer stall charged by back-pressure
};

class IoScheduler : public BlockIo {
 public:
  explicit IoScheduler(DeviceModel* disk, SchedulerKind kind = SchedulerKind::kElevator);

  // Issues a synchronous request from a thread whose cursor reads `now`.
  // Pending async requests are serviced first (they were admitted before the
  // sync arrival). Returns the absolute completion time (>= now); the caller
  // is responsible for advancing its cursor. Returns std::nullopt when the
  // request failed permanently (device fault surviving the retry policy).
  std::optional<Nanos> SubmitSync(const IoRequest& req, Nanos now) override;

  // Queues an asynchronous request submitted at `now`; it consumes device
  // time in the background and is serviced before the next sync request or
  // Drain(). The submission time is kept: a request never occupies the
  // device before it existed, even when a thread with an earlier cursor
  // triggers the service pass.
  //
  // Back-pressure: the background queue is bounded (kMaxPendingAsync, the
  // block layer's nr_requests). A submission that fills it forces a
  // service pass and returns a stall — the producer waits until the device
  // has a free moment (the earliest-idle channel in kMultiQueue mode, the
  // device timeline otherwise). Without this, a producer outrunning the
  // device builds an unbounded backlog whose cost lands as a convoy on
  // whichever unlucky sync request arrives next, instead of on the
  // producer that earned it.
  Nanos SubmitAsync(const IoRequest& req, Nanos now) override;

  // Services all queued async requests. Returns the time the device goes
  // idle (>= now). Idempotent: with nothing pending it just reports the
  // idle time.
  Nanos Drain(Nanos now) override;

  // Absolute virtual time until which the device is busy with already
  // admitted work (the max over every channel in kMultiQueue mode).
  Nanos busy_until() const { return busy_until_; }
  // Per-channel timeline (kMultiQueue); busy_until() for single-queue kinds.
  Nanos channel_busy_until(uint32_t channel) const {
    return channel_busy_.empty() ? busy_until_ : channel_busy_[channel];
  }

  size_t pending_async() const { return pending_.size(); }
  // Admitted requests not yet retired against the last observed time.
  size_t inflight() const { return inflight_.size(); }
  const IoSchedulerStats& stats() const { return stats_; }
  DeviceModel* disk() { return disk_; }
  SchedulerKind kind() const { return kind_; }
  const RetryPolicy& retry_policy() const { return policy_; }
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }

  // Test hook: when set, the LBA of every request is appended in dispatch
  // order (async services and sync submissions alike).
  void set_dispatch_log(std::vector<uint64_t>* log) { dispatch_log_ = log; }

  // Crash-tracking hook (see IoCompletionObserver above).
  void set_completion_observer(IoCompletionObserver* observer) { observer_ = observer; }

  // Degraded-mode hook (see IoWriteErrorSink above).
  void set_write_error_sink(IoWriteErrorSink* sink) { error_sink_ = sink; }

  // Bounded background queue (the block layer's nr_requests, scaled for a
  // queue shared by writeback and readahead). Far above any backlog the
  // HDD workloads build between sync requests — they drain constantly —
  // so only a producer genuinely outrunning the device ever hits it.
  static constexpr size_t kMaxPendingAsync = 1024;

 private:
  // Runs `req` through the retry/remap policy starting at `start`. On
  // success returns the completion time; on permanent failure returns
  // std::nullopt. `*end` is always set to the requester-visible end of the
  // request (last completion or last failed attempt, including backoffs).
  // `*device_end` is the time the device itself goes free: backoff waits are
  // host-side — a real drive serves other queued commands while the host
  // sits out its reissue delay — so they are charged to the requester's
  // latency but credited back to the device timeline.
  std::optional<Nanos> AttemptWithRetry(const IoRequest& req, Nanos start, Nanos* end,
                                        Nanos* device_end);

  // Shared permanent-failure tail: observer + write-error sink.
  void NotifyFailure(const IoRequest& req, Nanos at);

  // Services pending async requests starting no earlier than `from`.
  void ServicePending(Nanos from);
  // kMultiQueue variant: FIFO dispatch, each request onto its channel's
  // timeline so distinct channels overlap.
  void ServicePendingMultiQueue(Nanos from);

  // Earliest start for a request arriving at `now`: the owning channel's
  // timeline in kMultiQueue mode, the single device timeline otherwise.
  Nanos QueueStart(const IoRequest& req, Nanos now) const;
  // Credits the device time of a finished attempt back to the right
  // timeline (channel + device-wide max, or just the device timeline).
  void CommitDeviceEnd(const IoRequest& req, Nanos device_end);

  // Retires in-flight completions at or before `now`.
  void RetireCompleted(Nanos now);

  // Pushes a completion time into the in-flight min-heap.
  void AdmitInflight(Nanos completion);

  struct PendingRequest {
    IoRequest req;
    Nanos submitted = 0;  // service starts no earlier than this
  };

  DeviceModel* disk_;
  SchedulerKind kind_;
  RetryPolicy policy_;
  Nanos busy_until_ = 0;
  // Per-channel busy-until timelines; non-empty only in kMultiQueue mode.
  std::vector<Nanos> channel_busy_;
  // One past the last dispatched LBA: the elevator's head position.
  uint64_t head_lba_ = 0;
  std::vector<PendingRequest> pending_;
  std::vector<Nanos> inflight_;  // min-heap of admitted completion times
  std::vector<uint64_t>* dispatch_log_ = nullptr;
  IoCompletionObserver* observer_ = nullptr;
  IoWriteErrorSink* error_sink_ = nullptr;
  IoSchedulerStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_IO_SCHEDULER_H_
