// Readahead (prefetch) policies.
//
// The paper (§2) stresses that prefetching and on-disk layout are entangled
// and that benchmarks should be able to tell them apart. fsbench models
// readahead as an explicit per-file-system policy: given the access history
// of one open file, decide how many pages to prefetch after the current
// access. Prefetch I/O is issued asynchronously (it occupies the disk but
// does not block the demand read).
#ifndef SRC_SIM_READAHEAD_H_
#define SRC_SIM_READAHEAD_H_

#include <cstdint>

namespace fsbench {

enum class ReadaheadKind : uint8_t {
  kNone,      // pure demand paging
  kFixed,     // constant window on every access
  kAdaptive,  // Linux-like: ramping window on sequential streaks, small
              // read-around cluster on random access
};

struct ReadaheadConfig {
  ReadaheadKind kind = ReadaheadKind::kAdaptive;
  uint32_t fixed_pages = 8;      // kFixed: pages per access
  uint32_t min_window = 4;       // kAdaptive: initial sequential window
  uint32_t max_window = 32;      // kAdaptive: ramp limit
  uint32_t random_cluster = 2;   // kAdaptive: extra pages on random access
};

// Per-open-file readahead state, owned by the VFS file handle.
struct ReadaheadState {
  uint64_t last_index = ~0ULL;
  uint64_t streak = 0;      // consecutive sequential accesses
  uint32_t window = 0;      // current sequential window
};

class ReadaheadPolicy {
 public:
  explicit ReadaheadPolicy(const ReadaheadConfig& config) : config_(config) {}

  // Records an access to `index` and returns how many pages to prefetch
  // after it ([index+1, index+n]).
  uint32_t OnAccess(ReadaheadState& state, uint64_t index) const;

  const ReadaheadConfig& config() const { return config_; }

 private:
  ReadaheadConfig config_;
};

}  // namespace fsbench

#endif  // SRC_SIM_READAHEAD_H_
