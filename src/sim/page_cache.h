// Simulated unified page cache, slab-backed.
//
// Holds (inode, page-index) keys with a dirty bit and the device block the
// page maps to (so evicted dirty pages can be written back without another
// mapping lookup). Capacity is fixed in pages; the eviction policy (LRU,
// CLOCK, 2Q, ARC) is selected at construction.
//
// Layout: one open-addressing hash table maps PageKey -> node index into a
// slab of parallel arrays ("structure of arrays": each access class lives in
// its own dense array, so a hot path only pulls the cache lines it needs):
//
//   table_ (open addressing, linear probe, backward-shift deletion)
//     PageKey ──hash──> node index n ──┐
//                                      v
//   keys_[n]        identity, compared while probing
//   list_meta_[n]   packed {list id, dirty, referenced} byte
//   links_[n]       prev/next of the policy list tagged by the list id
//   ino_links_[n]   per-inode chain (resident nodes)
//   dirty_links_[n] dirty FIFO (resident dirty nodes)
//   blocks_[n]      backing device block
//   hashes_[n]      cached key hash (backward-shift homes)
//   slots_[n]       current table slot (probe-free erase)
//
// Ghost pages (2Q A1out, ARC B1/B2) live in the same table and slab, tagged
// by their list id, so a single probe answers "resident? ghost? absent?".
// Consequences:
//   - Lookup / MarkDirty / Remove: one hash probe + O(1) index splices.
//   - Insert: one probe on the hit path; the miss path re-probes once after
//     eviction has mutated the table, and reports victims into a caller
//     buffer instead of a heap-allocated vector.
//   - RemoveFile: walks the per-inode chain, O(resident pages of the file).
//   - TakeDirty: pops the dirty chain head, O(pages taken), in deterministic
//     first-dirtied order (FIFO writeback).
// The slab and table are pre-sized from PolicyGeometry::max_live_nodes, so
// steady-state operation never allocates or rehashes.
#ifndef SRC_SIM_PAGE_CACHE_H_
#define SRC_SIM_PAGE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/eviction_policy.h"
#include "src/sim/types.h"

namespace fsbench {

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;
};

class PageCache {
 public:
  PageCache(size_t capacity_pages, EvictionPolicyKind policy_kind);

  // A page evicted to make room; dirty pages must be written back by the
  // caller to `block`.
  struct Evicted {
    PageKey key;
    BlockId block = kInvalidBlock;
    bool dirty = false;
  };

  // Caller-supplied eviction sink: a fixed inline buffer, so the
  // steady-state miss path never touches the heap. A single Insert evicts at
  // most one page (the cache never exceeds capacity), leaving headroom.
  class EvictedBatch {
   public:
    uint32_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const Evicted& operator[](uint32_t i) const { return items_[i]; }
    const Evicted* begin() const { return items_; }
    const Evicted* end() const { return items_ + count_; }
    void clear() { count_ = 0; }

   private:
    friend class PageCache;
    static constexpr uint32_t kInlineCapacity = 4;
    Evicted items_[kInlineCapacity];
    uint32_t count_ = 0;
  };

  // Membership test without touching recency state or statistics. Ghost
  // entries are not resident. (Defined inline below: Lookup, Contains and
  // MarkDirty are the simulator's hottest calls and inline into callers.)
  bool Contains(const PageKey& key) const;

  // Hit path: returns true and updates the policy's recency state on a hit;
  // records a miss otherwise.
  bool Lookup(const PageKey& key);

  // Makes `key` resident (or refreshes it if already resident). Evicts as
  // needed, reporting victims into `evicted` (cleared on entry; may be null
  // to discard). `block` is the device block backing the page
  // (kInvalidBlock for holes).
  void Insert(const PageKey& key, BlockId block, bool dirty, EvictedBatch* evicted);
  EvictedBatch Insert(const PageKey& key, BlockId block, bool dirty) {
    EvictedBatch batch;
    Insert(key, block, dirty, &batch);
    return batch;
  }

  // Marks a resident page dirty; returns false if not resident.
  bool MarkDirty(const PageKey& key);

  // Collects up to `max_pages` dirty pages into `out` (cleared first),
  // marking them clean (the caller is about to write them). Pages come out
  // in the order they were first dirtied (FIFO writeback). Returns the
  // number taken.
  size_t TakeDirty(size_t max_pages, std::vector<Evicted>* out);
  std::vector<Evicted> TakeDirty(size_t max_pages) {
    std::vector<Evicted> out;
    TakeDirty(max_pages, &out);
    return out;
  }

  // Collects every dirty page of one file into `out` (cleared first),
  // marking them clean; other files' dirty pages are untouched. Walks the
  // file's per-inode resident chain — O(resident pages of the file) — which
  // is what lets Fsync write back exactly one file instead of draining the
  // global dirty set. Returns the number taken.
  size_t TakeDirtyFile(InodeId ino, std::vector<Evicted>* out);

  // Takes one specific page if it is resident and dirty, appending it to
  // `out` (NOT cleared) and marking it clean. Fsync uses this for the
  // file's own metadata blocks (inode table, indirect/extent nodes), which
  // are keyed under kMetaInode and so invisible to TakeDirtyFile.
  bool TakeDirtyPage(const PageKey& key, std::vector<Evicted>* out);

  size_t dirty_count() const { return dirty_count_; }

  // Invalidates one page / every page of a file / everything. Dirty contents
  // are discarded (callers invalidate after freeing blocks, as unlink does).
  // Ghost entries are untouched, matching the policies' view that a dropped
  // page was still "seen recently".
  void Remove(const PageKey& key);
  void RemoveFile(InodeId ino);
  void Clear();

  size_t size() const { return resident_count_; }
  size_t capacity() const { return capacity_; }
  const PageCacheStats& stats() const { return stats_; }
  EvictionPolicyKind policy_kind() const { return kind_; }
  const char* policy_name() const { return EvictionPolicyKindName(kind_); }

  // Ghost entries currently tracked (2Q A1out, ARC B1+B2); 0 for LRU/CLOCK.
  size_t ghost_count() const { return live_count_ - resident_count_; }

  // ARC's adaptive T1 target p (0 for other policies); exposed so tests can
  // assert ghost-hit adaptation against a reference implementation.
  double arc_target_t1() const { return arc_p_; }

  // Deep structural check for tests: list/chain/table/count consistency.
  // On failure, `why` (when non-null) names the violated invariant.
  bool CheckInvariants(const char** why = nullptr) const;

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Link {
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  // Packed per-node state byte: low 4 bits CacheListId, bit 4 dirty,
  // bit 5 CLOCK referenced.
  static constexpr uint8_t kListMask = 0x0F;
  static constexpr uint8_t kDirtyBit = 0x10;
  static constexpr uint8_t kReferencedBit = 0x20;

  struct ListAnchor {
    uint32_t head = kNil;  // MRU end
    uint32_t tail = kNil;  // LRU end
    size_t size = 0;
  };

  // Open-addressing map from InodeId to the head of that inode's resident
  // chain. An entry is empty iff head == kNil (InodeId has no spare
  // sentinel: kMetaInode is a real key).
  struct InodeSlot {
    InodeId ino = kInvalidInode;
    uint32_t head = kNil;
  };

  CacheListId ListOf(uint32_t n) const {
    return static_cast<CacheListId>(list_meta_[n] & kListMask);
  }
  void SetList(uint32_t n, CacheListId id) {
    list_meta_[n] = static_cast<uint8_t>((list_meta_[n] & ~kListMask) |
                                         static_cast<uint8_t>(id));
  }
  bool IsDirty(uint32_t n) const { return (list_meta_[n] & kDirtyBit) != 0; }
  bool IsResidentNode(uint32_t n) const { return IsResidentList(ListOf(n)); }

  // --- hash table (PageKey -> node index) ---
  // Slots hold node indices (kNil when free). Erasing goes by node, not
  // key: the probe starts directly at slots_[n], and the backward shift
  // takes each displaced entry's home from hashes_[] without rehashing.
  static uint32_t HashOf(const PageKey& key) {
    return static_cast<uint32_t>(PageKeyHash{}(key));
  }
  size_t ProbeSlot(const PageKey& key, uint32_t hash) const;  // key slot or first empty
  uint32_t FindNode(const PageKey& key) const;
  void TableInsertAt(size_t slot, uint32_t node);
  void TableEraseNode(uint32_t node);  // probe-free: starts from slots_[node]

  // --- slab ---
  uint32_t AllocNode(const PageKey& key, uint32_t hash);
  void ReleaseNode(uint32_t n);  // to the free list; no unlinking

  // --- intrusive policy lists ---
  ListAnchor& AnchorOf(CacheListId id) { return lists_[static_cast<size_t>(id)]; }
  const ListAnchor& AnchorOf(CacheListId id) const { return lists_[static_cast<size_t>(id)]; }
  void ListPushFront(CacheListId id, uint32_t n);
  void ListLinkBefore(CacheListId id, uint32_t pos, uint32_t n);  // pos==kNil: back
  void ListUnlink(uint32_t n);
  void ListMoveToFront(uint32_t n);

  // --- per-inode chain ---
  size_t InodeProbe(InodeId ino) const;
  void InodeIndexGrow();
  void InodeChainLink(uint32_t n);
  void InodeChainUnlink(uint32_t n);
  void InodeIndexErase(size_t slot);

  // --- dirty FIFO ---
  void DirtyChainAppend(uint32_t n);
  void DirtyChainUnlink(uint32_t n);

  // --- policy transitions ---
  void PolicyResidentAccess(uint32_t n);  // OnAccess of a resident node
  void PolicyInsertNew(uint32_t n);       // brand-new resident node
  void PolicyGhostRevive(uint32_t n);     // ghost node becoming resident
  bool PolicyPrepareNewInsert();          // ARC ghost trim; true if table changed
  uint32_t PolicyChooseVictim();          // resident node to evict
  void PrefetchVictimHint() const;        // overlap victim lines with the probe
  void PolicyDemoteVictim(uint32_t n);    // ghost transition or free
  void EvictOne(EvictedBatch* evicted);
  void RemoveResidentNode(uint32_t n, bool maintain_inode_chain);
  void FreeGhostNode(uint32_t n);

  size_t capacity_;
  EvictionPolicyKind kind_;
  PolicyGeometry geometry_;

  // Slab: parallel arrays indexed by node id (see the layout comment atop
  // this header). All are pre-reserved to geometry_.max_live_nodes.
  std::vector<PageKey> keys_;
  std::vector<uint8_t> list_meta_;
  std::vector<Link> links_;
  std::vector<Link> ino_links_;
  std::vector<Link> dirty_links_;
  std::vector<BlockId> blocks_;
  std::vector<uint32_t> hashes_;
  std::vector<uint32_t> slots_;
  size_t slab_size_ = 0;         // nodes ever allocated
  uint32_t free_head_ = kNil;    // free list threaded through links_[].next

  std::vector<uint32_t> table_;  // node indices; kNil == empty
  size_t table_mask_ = 0;
  size_t table_erase_count_ = 0;  // monotone; detects probe-run invalidation
  size_t last_erase_hole_ = 0;    // final hole of the latest backward shift

  ListAnchor lists_[kNumCacheLists];
  uint32_t clock_hand_ = kNil;  // kNil doubles as the ring's "end" position
  double arc_p_ = 0.0;

  std::vector<InodeSlot> inode_index_;
  size_t inode_index_mask_ = 0;
  size_t inode_index_used_ = 0;

  uint32_t dirty_head_ = kNil;  // oldest first-dirtied page
  uint32_t dirty_tail_ = kNil;

  size_t resident_count_ = 0;
  size_t live_count_ = 0;  // resident + ghost
  size_t dirty_count_ = 0;
  PageCacheStats stats_;
};

// --- inline hot path --------------------------------------------------------

inline size_t PageCache::ProbeSlot(const PageKey& key, uint32_t hash) const {
  size_t slot = hash & table_mask_;
  for (;;) {
    const uint32_t node = table_[slot];
    if (node == kNil || keys_[node] == key) {
      return slot;
    }
    slot = (slot + 1) & table_mask_;
  }
}

inline uint32_t PageCache::FindNode(const PageKey& key) const {
  return table_[ProbeSlot(key, HashOf(key))];
}

inline void PageCache::ListPushFront(CacheListId id, uint32_t n) {
  ListAnchor& anchor = AnchorOf(id);
  SetList(n, id);
  Link& link = links_[n];
  link.prev = kNil;
  link.next = anchor.head;
  if (anchor.head != kNil) {
    links_[anchor.head].prev = n;
  } else {
    anchor.tail = n;
  }
  anchor.head = n;
  ++anchor.size;
}

inline void PageCache::ListUnlink(uint32_t n) {
  ListAnchor& anchor = AnchorOf(ListOf(n));
  Link& link = links_[n];
  if (link.prev != kNil) {
    links_[link.prev].next = link.next;
  } else {
    anchor.head = link.next;
  }
  if (link.next != kNil) {
    links_[link.next].prev = link.prev;
  } else {
    anchor.tail = link.prev;
  }
  --anchor.size;
  link.prev = link.next = kNil;
}

inline void PageCache::ListMoveToFront(uint32_t n) {
  const CacheListId id = ListOf(n);
  if (AnchorOf(id).head == n) {
    return;
  }
  ListUnlink(n);
  ListPushFront(id, n);
}

inline void PageCache::PolicyResidentAccess(uint32_t n) {
  switch (kind_) {
    case EvictionPolicyKind::kLru:
      ListMoveToFront(n);
      break;
    case EvictionPolicyKind::kClock:
      list_meta_[n] |= kReferencedBit;
      break;
    case EvictionPolicyKind::kTwoQueue:
      // Hits in A1in deliberately do not promote (classic 2Q).
      if (ListOf(n) == CacheListId::kAm) {
        ListMoveToFront(n);
      }
      break;
    case EvictionPolicyKind::kArc:
      // Any resident hit moves the page to T2 MRU.
      if (ListOf(n) == CacheListId::kT1) {
        ListUnlink(n);
        ListPushFront(CacheListId::kT2, n);
      } else {
        ListMoveToFront(n);
      }
      break;
  }
}

inline bool PageCache::Contains(const PageKey& key) const {
  const uint32_t n = FindNode(key);
  return n != kNil && IsResidentNode(n);
}

inline bool PageCache::Lookup(const PageKey& key) {
  const uint32_t n = FindNode(key);
  if (n == kNil || !IsResidentNode(n)) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  PolicyResidentAccess(n);
  return true;
}

inline void PageCache::DirtyChainAppend(uint32_t n) {
  list_meta_[n] |= kDirtyBit;
  Link& link = dirty_links_[n];
  link.prev = dirty_tail_;
  link.next = kNil;
  if (dirty_tail_ != kNil) {
    dirty_links_[dirty_tail_].next = n;
  } else {
    dirty_head_ = n;
  }
  dirty_tail_ = n;
  ++dirty_count_;
}

inline bool PageCache::MarkDirty(const PageKey& key) {
  const uint32_t n = FindNode(key);
  if (n == kNil || !IsResidentNode(n)) {
    return false;
  }
  if (!IsDirty(n)) {
    DirtyChainAppend(n);
  }
  return true;
}

}  // namespace fsbench

#endif  // SRC_SIM_PAGE_CACHE_H_
