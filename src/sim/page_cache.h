// Simulated unified page cache.
//
// Holds (inode, page-index) keys with a dirty bit and the device block the
// page maps to (so evicted dirty pages can be written back without another
// mapping lookup). Capacity is fixed in pages; the eviction decision is
// delegated to a pluggable EvictionPolicy.
#ifndef SRC_SIM_PAGE_CACHE_H_
#define SRC_SIM_PAGE_CACHE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/eviction_policy.h"
#include "src/sim/types.h"

namespace fsbench {

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;
};

class PageCache {
 public:
  PageCache(size_t capacity_pages, EvictionPolicyKind policy_kind);

  // A page evicted to make room; dirty pages must be written back by the
  // caller to `block`.
  struct Evicted {
    PageKey key;
    BlockId block = kInvalidBlock;
    bool dirty = false;
  };

  // Membership test without touching recency state or statistics.
  bool Contains(const PageKey& key) const;

  // Hit path: returns true and updates the policy's recency state on a hit;
  // records a miss otherwise.
  bool Lookup(const PageKey& key);

  // Makes `key` resident (or refreshes it if already resident). Evicts as
  // needed and returns the evicted pages. `block` is the device block
  // backing the page (kInvalidBlock for holes).
  std::vector<Evicted> Insert(const PageKey& key, BlockId block, bool dirty);

  // Marks a resident page dirty; returns false if not resident.
  bool MarkDirty(const PageKey& key);

  // Collects up to `max_pages` dirty pages, marking them clean (the caller
  // is about to write them). Returns (key, block) pairs.
  std::vector<Evicted> TakeDirty(size_t max_pages);

  size_t dirty_count() const { return dirty_count_; }

  // Invalidates one page / every page of a file / everything. Dirty contents
  // are discarded (callers invalidate after freeing blocks, as unlink does).
  void Remove(const PageKey& key);
  void RemoveFile(InodeId ino);
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const PageCacheStats& stats() const { return stats_; }
  EvictionPolicy* policy() { return policy_.get(); }

  // Invariant check for tests: the policy's resident set size matches.
  bool CheckInvariants() const;

 private:
  struct Entry {
    BlockId block = kInvalidBlock;
    bool dirty = false;
  };

  size_t capacity_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  size_t dirty_count_ = 0;
  PageCacheStats stats_;
};

}  // namespace fsbench

#endif  // SRC_SIM_PAGE_CACHE_H_
