// Durable-vs-volatile block state for crash injection.
//
// The DiskModel is a timing oracle and the FileSystem is in-memory
// bookkeeping; neither knows, at a given virtual instant, which writes had
// actually reached the platter. ShadowDisk closes that gap: registered as
// the IoScheduler's completion observer, it records the completion time of
// the latest write covering each file-system block. A crash injected at
// virtual time T then partitions the write history exactly — a block is
// durable iff its last write completed at or before T — which is what
// mount-time recovery (recovery.h) uses to tell replayable transactions
// from torn tails.
#ifndef SRC_SIM_SHADOW_DISK_H_
#define SRC_SIM_SHADOW_DISK_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/sim/io_scheduler.h"
#include "src/sim/types.h"

namespace fsbench {

class ShadowDisk : public IoCompletionObserver {
 public:
  explicit ShadowDisk(uint32_t sectors_per_block) : sectors_per_block_(sectors_per_block) {}

  void OnIoComplete(const IoRequest& req, Nanos completion, bool ok) override;

  // Completion time of the latest write covering `block`; nullopt if the
  // block was never written (or only ever failed).
  std::optional<Nanos> WriteCompletion(BlockId block) const {
    const auto it = last_write_completion_.find(block);
    if (it == last_write_completion_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // Whether `block`'s latest write had completed by `t`. A never-written
  // block reports false: callers asking about it care about a write they
  // know was issued logically (e.g. a journal commit record), so absence
  // means the write never made it.
  bool DurableBy(BlockId block, Nanos t) const {
    const auto it = last_write_completion_.find(block);
    return it != last_write_completion_.end() && it->second <= t;
  }

  // Blocks whose latest write completes after `t`: in flight at the crash.
  // The reduction below is a pure count — invariant under the map's
  // iteration order — which is what the annotation asserts.
  uint64_t VolatileCount(Nanos t) const {
    uint64_t count = 0;
    // detlint: order-insensitive
    for (const auto& [block, completion] : last_write_completion_) {
      if (completion > t) {
        ++count;
      }
    }
    return count;
  }

  size_t tracked_blocks() const { return last_write_completion_.size(); }

 private:
  uint32_t sectors_per_block_;
  std::unordered_map<BlockId, Nanos> last_write_completion_;
};

}  // namespace fsbench

#endif  // SRC_SIM_SHADOW_DISK_H_
