// Seeded device-fault engine: the scenario axis real devices add and
// steady-state benchmarks ignore. Devices fail partially and transiently —
// latent sector errors, firmware retries, degraded regions — not just by
// crashing, and a benchmark that never draws a fault measures only the
// healthy half of the scenario space.
//
// A FaultPlan is a pure function of (config, seed): consulted by the
// DiskModel on every access, it decides whether the request observes
//   - a transient fault (fails this attempt; an immediate retry re-draws and
//     usually succeeds — the ECC-recoverable / vibration class),
//   - a persistent fault (a latent-bad media region: every access fails
//     until the block layer remaps the region into the spare pool),
//   - a slow I/O (the request completes but its service time is multiplied —
//     the tail-latency class: internal retries, thermal recalibration).
//
// Persistence is derived statelessly: a region is bad iff a hash of
// (seed, region) clears the configured rate, so the verdict is identical no
// matter when or in what order the region is touched. Transient and slow
// draws come from a dedicated seeded RNG stream, separate from the disk's
// rotational-latency stream, so enabling faults never perturbs mechanical
// timing draws. Time-windowed bursts multiply the transient rate inside a
// configured virtual-time window (correlated error storms).
#ifndef SRC_SIM_FAULT_PLAN_H_
#define SRC_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <optional>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace fsbench {

// What a single device access observed. kNone may still be slow.
enum class FaultKind : uint8_t { kNone, kTransient, kPersistent };

struct FaultPlanConfig {
  // Per-request probability of a transient fault (re-drawn on every
  // attempt, so retries absorb these).
  double transient_rate = 0.0;
  // Fraction of fault regions that are latent-bad from mkfs time on: any
  // request starting in a bad region fails until the region is remapped.
  double persistent_rate = 0.0;
  // Granularity of persistent damage and of remapping, in sectors.
  // Default 2048 sectors = 1 MiB regions.
  uint64_t region_sectors = 2048;
  // Spare regions reserved for remapping, distributed across the LBA space
  // (per-zone spare tracks); once they are exhausted persistent faults
  // surface as EIO (graceful degradation has run out of road).
  uint64_t spare_regions = 64;
  // Per-request probability that service time is multiplied (tail-latency
  // injection); independent of the failure draws.
  double slow_rate = 0.0;
  double slow_multiplier = 8.0;
  // Grown defects: when nonzero, each persistent-bad region develops at a
  // per-region onset time drawn uniformly in [0, defect_onset_spread] by a
  // second stateless hash draw. Before its onset the region serves normally,
  // so data written early goes bad underneath later — the latent sector
  // errors a background scrub exists to find. 0 = bad from mkfs time on.
  Nanos defect_onset_spread = 0;
  // Fault burst: inside [burst_start, burst_start + burst_duration) of
  // virtual time the transient rate is multiplied by burst_factor
  // (correlated error storms; duration 0 disables the window).
  Nanos burst_start = 0;
  Nanos burst_duration = 0;
  double burst_factor = 1.0;
  // Whole-device failure: at this virtual time the device stops responding —
  // every later access fails fast with a persistent verdict (no mechanical
  // work, no remap escape). 0 = never. The redundancy layer is what turns
  // this from "the run dies" into a degraded-array scenario.
  Nanos device_kill_time = 0;
  // When true, the time axis of the knobs above (defect onsets, the burst
  // window, the device kill) starts at a runtime origin armed by
  // FaultPlan::StartClock instead of at virtual time 0, and those
  // time-dependent faults are held off until the clock is armed. Experiments
  // arm the clock after Prepare, so "kill at 3 s" means 3 s into the
  // measured window rather than 3 s into setup — whose virtual duration
  // would otherwise silently swallow the whole fault schedule. Regions with
  // no onset spread stay bad from mkfs time on regardless.
  bool deferred_clock = false;

  bool enabled() const {
    return transient_rate > 0.0 || persistent_rate > 0.0 || slow_rate > 0.0 ||
           device_kill_time > 0;
  }
};

struct FaultPlanStats {
  uint64_t transient_faults = 0;
  uint64_t persistent_faults = 0;
  uint64_t slow_ios = 0;
  uint64_t burst_faults = 0;  // transient faults drawn inside the burst window
};

// Verdict for one access attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  bool slow = false;
  double slow_multiplier = 1.0;
};

class FaultPlan {
 public:
  FaultPlan(const FaultPlanConfig& config, uint64_t seed);

  // Evaluates one access attempt starting at sector `lba` at virtual time
  // `now`. `remapped` suppresses the persistent check (the request was
  // redirected to a known-good spare region); transient and slow draws
  // still apply — they model the electronics, not the media.
  FaultDecision Evaluate(uint64_t lba, Nanos now, bool remapped);

  // Stateless persistent verdict for the region containing `lba` as of
  // virtual time `now`: identical for every access of the run regardless of
  // order, and monotone in `now` (a region that has developed its defect
  // stays bad until remapped).
  bool RegionIsBad(uint64_t lba, Nanos now) const;

  // Whole-device death verdict at `now` (device_kill_time, on the plan's
  // clock). Stateless; the DiskModel latches the answer.
  bool DeviceDeadAt(Nanos now) const;

  // Arms a deferred clock (no-op on absolute-clock plans): time-dependent
  // faults measure from `origin` on. First call wins, so re-arming across
  // phases cannot move a schedule that is already running.
  void StartClock(Nanos origin);

  uint64_t RegionOf(uint64_t lba) const { return lba / config_.region_sectors; }

  const FaultPlanConfig& config() const { return config_; }
  const FaultPlanStats& stats() const { return stats_; }

 private:
  FaultPlanConfig config_;
  uint64_t seed_;
  Rng rng_;
  FaultPlanStats stats_;
  // Origin of the fault-time axis. Absolute-clock plans run from 0; a
  // deferred clock holds time-dependent faults off until StartClock arms it.
  std::optional<Nanos> origin_;
};

}  // namespace fsbench

#endif  // SRC_SIM_FAULT_PLAN_H_
