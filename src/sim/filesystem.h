// Abstract simulated file system plus the shared namespace machinery.
//
// A FileSystem is pure bookkeeping: it maintains inodes, directories and the
// block allocator, and *describes* the I/O an operation needs via MetaIo —
// which cacheable pages must be read to resolve it and which are dirtied.
// The VFS is the single component that turns MetaIo into page-cache lookups,
// disk requests and virtual time. This split keeps per-FS differences where
// they belong: layout policy, mapping structure, directory cost model,
// journaling, readahead aggressiveness and CPU overhead.
#ifndef SRC_SIM_FILESYSTEM_H_
#define SRC_SIM_FILESYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/block_allocator.h"
#include "src/sim/clock.h"
#include "src/sim/directory.h"
#include "src/sim/eviction_policy.h"
#include "src/sim/inode.h"
#include "src/sim/journal.h"
#include "src/sim/readahead.h"
#include "src/sim/types.h"

namespace fsbench {

// One cacheable page an operation touches: identified by (ino, index) for
// the page cache and by `block` for the device. FS-global meta-data
// (bitmaps, inode tables, indirect blocks, btree nodes) is keyed under
// kMetaInode with index == block.
struct MetaRef {
  InodeId ino = kInvalidInode;
  uint64_t index = 0;
  BlockId block = kInvalidBlock;
};

// The I/O plan for one file-system operation.
struct MetaIo {
  std::vector<MetaRef> reads;          // must be resident or read from disk
  std::vector<MetaRef> writes;         // dirtied (journaled on ext3)
  std::vector<MetaRef> invalidations;  // cache entries to drop (unlink, truncate)
  std::vector<InodeId> drop_files;     // whole files whose pages must be dropped

  void AddMetaRead(BlockId block) { reads.push_back({kMetaInode, block, block}); }
  void AddMetaWrite(BlockId block) { writes.push_back({kMetaInode, block, block}); }
};

// Geometry/layout parameters common to the simulated file systems.
struct FsLayoutParams {
  Bytes block_size = 4 * kKiB;
  uint64_t group_blocks = 32768;        // 128 MiB block groups
  uint64_t group_header_blocks = 256;   // superblock copy + bitmaps + inode table
  uint64_t inode_table_blocks = 128;    // within the header; 16 inodes per block
  uint64_t inodes_per_block = 16;
  uint64_t dir_entries_per_block = 64;  // ~64 B per dirent
};

enum class FsKind : uint8_t { kExt2, kExt3, kXfs };

const char* FsKindName(FsKind kind);

class FileSystem {
 public:
  // `clock` may be null (timestamps stay 0); used only for mtime/ctime.
  FileSystem(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock);
  virtual ~FileSystem() = default;

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  virtual const char* name() const = 0;
  virtual FsKind kind() const = 0;

  // --- Namespace operations (shared implementation) ---

  // Creates a file or directory under `parent`. Charges a full-directory
  // negative lookup plus dirent/bitmap/inode-table writes into `io`.
  FsResult<InodeId> Create(InodeId parent, const std::string& name, FileType type, MetaIo* io);

  // Removes a name; frees the inode and its blocks when the last link drops.
  FsStatus Unlink(InodeId parent, const std::string& name, MetaIo* io);

  // Resolves a name; charges the directory-scan cost model.
  FsResult<InodeId> Lookup(InodeId parent, const std::string& name, MetaIo* io);

  FsResult<FileAttr> Stat(InodeId ino, MetaIo* io);

  FsResult<std::vector<std::string>> ReadDir(InodeId dir, MetaIo* io);

  // Grows or shrinks the file size; shrinking frees whole pages past the new
  // end and invalidates them.
  FsStatus SetSize(InodeId ino, Bytes new_size, MetaIo* io);

  // --- Data mapping (per-FS) ---

  // Device block backing page `page_index` for reads. A missing mapping
  // within the file size is a hole: kOk with value kInvalidBlock.
  virtual FsResult<BlockId> MapPage(InodeId ino, uint64_t page_index, MetaIo* io) = 0;

  // Ensures page `page_index` has a backing block (allocating one according
  // to the FS's layout policy) and returns it.
  virtual FsResult<BlockId> AllocatePage(InodeId ino, uint64_t page_index, MetaIo* io) = 0;

  // --- Per-FS behaviour knobs ---

  virtual Journal* journal() { return nullptr; }
  virtual ReadaheadConfig readahead_config() const = 0;
  // Extra per-operation CPU cost (journaling bookkeeping etc.).
  virtual Nanos per_op_cpu_overhead() const { return 0; }

  // --- Introspection / fsck ---

  // fsck-lite: every mapped block allocated exactly once, dirents point at
  // live inodes, size/allocated accounting consistent. On failure `error`
  // describes the first violation.
  bool CheckConsistency(std::string* error) const;

  const Inode* FindInode(InodeId ino) const;
  const Directory* FindDir(InodeId ino) const;
  Bytes block_size() const { return params_.block_size; }
  uint32_t sectors_per_block() const { return static_cast<uint32_t>(params_.block_size / 512); }
  const FsLayoutParams& layout() const { return params_; }
  const BlockAllocator& allocator() const { return alloc_; }
  uint64_t live_inode_count() const { return inodes_.size(); }

 protected:
  // --- Layout/cost policy hooks ---

  // Charges the meta reads a directory lookup needs to find `name`
  // (ext2/3: linear scan; xfs: btree path). `slot` is the entry's slot for a
  // positive lookup, std::nullopt for a negative one.
  virtual void ChargeDirLookup(const Inode& dir_inode, const Directory& dir,
                               const std::string& name, std::optional<uint64_t> slot,
                               MetaIo* io);

  // Placement group for a new inode.
  virtual uint64_t PickGroup(const Inode& parent, FileType type);

  // Frees every block of `inode` (data + mapping meta), recording bitmap
  // writes and page invalidations.
  virtual void FreeAllBlocks(Inode& inode, MetaIo* io) = 0;

  // Frees pages >= first_page (truncate support).
  virtual void FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) = 0;

  // Appends every device block owned by `inode` (data + meta) for fsck.
  virtual void AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const = 0;

  // --- Shared helpers for subclasses ---

  Inode* MutableInode(InodeId ino);
  Directory* MutableDir(InodeId ino);
  Nanos Now() const;

  // Inode-table block holding `ino` (meta read on any inode access).
  BlockId InodeTableBlock(const Inode& inode) const;
  BlockId GroupStart(uint64_t group) const { return group * params_.group_blocks; }
  BlockId BlockBitmapBlock(uint64_t group) const { return GroupStart(group) + 1; }
  BlockId InodeBitmapBlock(uint64_t group) const { return GroupStart(group) + 2; }
  // First block usable for data in `group`.
  BlockId GroupDataStart(uint64_t group) const {
    return GroupStart(group) + params_.group_header_blocks;
  }

  // Ensures the directory has capacity for `slot`; allocates dir data pages
  // via AllocatePage as needed. Returns the dir data block of the slot.
  FsResult<BlockId> EnsureDirSlotBlock(Inode& dir_inode, uint64_t slot, MetaIo* io);

  // Allocates a fresh inode in a group chosen by PickGroup, charging the
  // inode bitmap + table writes. Returns null on inode exhaustion.
  Inode* AllocateInode(const Inode& parent, FileType type, MetaIo* io);

  FsLayoutParams params_;
  VirtualClock* clock_;
  BlockAllocator alloc_;
  std::unordered_map<InodeId, Inode> inodes_;
  std::unordered_map<InodeId, Directory> dirs_;
  std::vector<uint64_t> group_inode_counts_;
  std::vector<uint64_t> group_local_inodes_;  // next inode-table slot per group
  InodeId next_ino_ = kRootInode;
  uint64_t next_dir_group_ = 0;
  uint64_t reserved_blocks_ = 0;  // mkfs-reserved (headers, journal) for fsck accounting

 private:
  void InitGroups();
};

}  // namespace fsbench

#endif  // SRC_SIM_FILESYSTEM_H_
