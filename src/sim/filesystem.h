// Abstract simulated file system plus the shared namespace machinery.
//
// A FileSystem is pure bookkeeping: it maintains inodes, directories and the
// block allocator, and *describes* the I/O an operation needs via MetaIo —
// which cacheable pages must be read to resolve it and which are dirtied.
// The VFS is the single component that turns MetaIo into page-cache lookups,
// disk requests and virtual time. This split keeps per-FS differences where
// they belong: layout policy, mapping structure, directory cost model,
// journaling, readahead aggressiveness and CPU overhead.
#ifndef SRC_SIM_FILESYSTEM_H_
#define SRC_SIM_FILESYSTEM_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/block_allocator.h"
#include "src/sim/clock.h"
#include "src/sim/directory.h"
#include "src/sim/eviction_policy.h"
#include "src/sim/inode.h"
#include "src/sim/inode_table.h"
#include "src/sim/journal.h"
#include "src/sim/readahead.h"
#include "src/sim/small_vec.h"
#include "src/sim/types.h"

namespace fsbench {

// The I/O plan for one file-system operation. (MetaRef, the element type,
// lives in types.h so the transaction log can name it too.)
//
// The lists are small-inline-capacity buffers (src/sim/small_vec.h): the
// common operations fit inline, and anything larger (full-directory negative
// scans, big truncates) spills into storage that a reused instance retains —
// the VFS threads one scratch MetaIo through every call, so the steady-state
// operation pipeline never heap-allocates here. Inline sizes are chosen from
// the per-FS worst cases on the hit path: MapPage charges at most 4 reads
// (inode table + triple-indirect chain), Create at most ~7 writes.
struct MetaIo {
  SmallVec<MetaRef, 12> reads;         // must be resident or read from disk
  SmallVec<MetaRef, 8> writes;         // dirtied (journaled on ext3)
  SmallVec<MetaRef, 4> invalidations;  // cache entries to drop (unlink, truncate)
  SmallVec<InodeId, 2> drop_files;     // whole files whose pages must be dropped

  void AddMetaRead(BlockId block) { reads.push_back({kMetaInode, block, block}); }
  void AddMetaWrite(BlockId block) { writes.push_back({kMetaInode, block, block}); }

  // Empties all four lists while keeping their spilled storage for reuse.
  void Reset() {
    reads.clear();
    writes.clear();
    invalidations.clear();
    drop_files.clear();
  }
};

// Geometry/layout parameters common to the simulated file systems.
struct FsLayoutParams {
  Bytes block_size = 4 * kKiB;
  uint64_t group_blocks = 32768;        // 128 MiB block groups
  uint64_t group_header_blocks = 256;   // superblock copy + bitmaps + inode table
  uint64_t inode_table_blocks = 128;    // within the header; 16 inodes per block
  uint64_t inodes_per_block = 16;
  uint64_t dir_entries_per_block = 64;  // ~64 B per dirent
};

enum class FsKind : uint8_t { kExt2, kExt3, kXfs };

const char* FsKindName(FsKind kind);

class FileSystem {
 public:
  // `clock` may be null (timestamps stay 0); used only for mtime/ctime.
  FileSystem(Bytes device_capacity, const FsLayoutParams& params, VirtualClock* clock);

  // Rebinds the clock timestamps are drawn from. The multi-thread engine
  // points this at the acting thread's cursor around every step so mtime/
  // ctime reflect the thread that performed the operation.
  void BindClock(VirtualClock* clock) { clock_ = clock; }
  virtual ~FileSystem() = default;

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  virtual const char* name() const = 0;
  virtual FsKind kind() const = 0;

  // --- Namespace operations (shared implementation) ---
  //
  // Names are string_views so path components can be passed straight out of
  // the path being resolved — no per-component std::string copy.

  // Creates a file or directory under `parent`. Charges a full-directory
  // negative lookup plus dirent/bitmap/inode-table writes into `io`.
  FsResult<InodeId> Create(InodeId parent, std::string_view name, FileType type, MetaIo* io);

  // Removes a name; frees the inode and its blocks when the last link drops.
  FsStatus Unlink(InodeId parent, std::string_view name, MetaIo* io);

  // Resolves a name; charges the directory-scan cost model. (Defined inline
  // below: one call per path component, the hottest namespace entry point.)
  FsResult<InodeId> Lookup(InodeId parent, std::string_view name, MetaIo* io);

  FsResult<FileAttr> Stat(InodeId ino, MetaIo* io);  // inline below: per-op hot

  FsResult<std::vector<std::string>> ReadDir(InodeId dir, MetaIo* io);

  // Grows or shrinks the file size; shrinking frees whole pages past the new
  // end and invalidates them.
  FsStatus SetSize(InodeId ino, Bytes new_size, MetaIo* io);

  // --- Data mapping (per-FS) ---

  // Device block backing page `page_index` for reads. A missing mapping
  // within the file size is a hole: kOk with value kInvalidBlock.
  FsResult<BlockId> MapPage(InodeId ino, uint64_t page_index, MetaIo* io);

  // Ensures page `page_index` has a backing block (allocating one according
  // to the FS's layout policy) and returns it.
  FsResult<BlockId> AllocatePage(InodeId ino, uint64_t page_index, MetaIo* io);

  // --- Per-FS behaviour knobs ---

  // The journal needs the I/O scheduler, which exists only after the machine
  // is assembled; journaled file systems get one attached post-construction
  // (null for ext2). Ownership lives here so the VFS's per-op journal probe
  // is one member load, not a virtual call.
  void AttachJournal(std::unique_ptr<Journal> journal) { journal_ = std::move(journal); }
  Journal* journal() { return journal_.get(); }
  const Journal* journal() const { return journal_.get(); }

  virtual ReadaheadConfig readahead_config() const = 0;
  // Extra per-operation CPU cost (journaling bookkeeping etc.).
  virtual Nanos per_op_cpu_overhead() const { return 0; }

  // --- Device-fault error semantics ---

  // Called by the VFS when a metadata read or a metadata/log write failed
  // permanently at the block layer (the retry policy was exhausted).
  // Journaled file systems react with errors=remount-ro: the journal is
  // aborted and the fs refuses further mutations with kReadOnly; ext2
  // soldiers on and merely counts the failure.
  void NoteMetaIoFailure();

  // Policy hook behind NoteMetaIoFailure. Default: remount read-only iff a
  // journal is attached (atomicity is gone once its writes are lost).
  virtual bool RemountRoOnWriteError() const { return journal_ != nullptr; }

  bool read_only() const { return read_only_; }
  bool journal_aborted() const { return journal_ != nullptr && journal_->aborted(); }
  uint64_t meta_io_failures() const { return meta_io_failures_; }

  // --- Introspection / fsck ---

  // fsck-lite: every mapped block allocated exactly once, dirents point at
  // live inodes, size/allocated accounting consistent. On failure `error`
  // describes the first violation.
  bool CheckConsistency(std::string* error) const;

  // Appends every block an offline metadata scan (fsck passes 1+2) must
  // read: group bitmaps and inode tables, each inode's mapping meta blocks
  // (indirect / extent nodes), and directory data blocks. Drives the
  // no-journal crash-recovery cost model (see src/sim/recovery.h).
  void AppendMetadataBlocks(std::vector<BlockId>* blocks) const;

  const Inode* FindInode(InodeId ino) const;
  const Directory* FindDir(InodeId ino) const;
  Bytes block_size() const { return params_.block_size; }
  uint32_t sectors_per_block() const { return static_cast<uint32_t>(params_.block_size / 512); }
  const FsLayoutParams& layout() const { return params_; }
  const BlockAllocator& allocator() const { return alloc_; }
  uint64_t live_inode_count() const { return inodes_.size(); }

 protected:
  // --- Layout/cost policy hooks ---

  // Inode-reference forms of the data-mapping API; the public InodeId
  // wrappers resolve the inode once and dispatch here, and internal callers
  // that already hold the inode (directory cost charging, dir-block growth)
  // skip the redundant table probe.
  virtual FsResult<BlockId> MapPageFor(const Inode& inode, uint64_t page_index, MetaIo* io) = 0;
  virtual FsResult<BlockId> AllocatePageFor(Inode& inode, uint64_t page_index, MetaIo* io) = 0;

  // Charges the meta reads a directory lookup needs to find `name`
  // (ext2/3: linear scan; xfs: btree path). `slot` is the entry's slot for a
  // positive lookup, std::nullopt for a negative one.
  virtual void ChargeDirLookup(const Inode& dir_inode, const Directory& dir,
                               std::string_view name, std::optional<uint64_t> slot,
                               MetaIo* io);

  // The linear-scan cost model shared by the base ChargeDirLookup and
  // concrete overrides: a positive lookup reads directory blocks up to and
  // including the entry's block, a negative one reads all of them. `map` is
  // the page mapper — overrides pass their own MapPageFor so the per-block
  // call resolves statically instead of through the vtable.
  template <typename MapFn>
  void ChargeLinearDirScan(const Inode& dir_inode, const Directory& dir,
                           std::optional<uint64_t> slot, MetaIo* io, MapFn&& map) {
    const uint64_t epb = params_.dir_entries_per_block;
    const uint64_t total_blocks = dir.slot_count() == 0 ? 0 : CeilDiv(dir.slot_count(), epb);
    const uint64_t last_block = !slot.has_value()
                                    ? total_blocks
                                    : std::min<uint64_t>(*slot / epb + 1, total_blocks);
    for (uint64_t page = 0; page < last_block; ++page) {
      const FsResult<BlockId> mapping = map(dir_inode, page, io);
      if (mapping.ok() && mapping.value != kInvalidBlock) {
        io->reads.push_back({dir_inode.ino, page, mapping.value});
      }
    }
  }

  // Placement group for a new inode.
  virtual uint64_t PickGroup(const Inode& parent, FileType type);

  // Frees every block of `inode` (data + mapping meta), recording bitmap
  // writes and page invalidations.
  virtual void FreeAllBlocks(Inode& inode, MetaIo* io) = 0;

  // Frees pages >= first_page (truncate support).
  virtual void FreePagesFrom(Inode& inode, uint64_t first_page, MetaIo* io) = 0;

  // Appends every device block owned by `inode` (data + meta) for fsck.
  virtual void AppendOwnedBlocks(const Inode& inode, std::vector<BlockId>* blocks) const = 0;

  // --- Shared helpers for subclasses ---

  Inode* MutableInode(InodeId ino);
  Directory* MutableDir(InodeId ino);
  Nanos Now() const;

  // Inode-table block holding `ino` (meta read on any inode access).
  BlockId InodeTableBlock(const Inode& inode) const;
  BlockId GroupStart(uint64_t group) const { return group * params_.group_blocks; }
  BlockId BlockBitmapBlock(uint64_t group) const { return GroupStart(group) + 1; }
  BlockId InodeBitmapBlock(uint64_t group) const { return GroupStart(group) + 2; }
  // First inode-table block (after superblock copy + the two bitmaps).
  BlockId InodeTableStart(uint64_t group) const { return GroupStart(group) + 3; }
  // First block usable for data in `group`.
  BlockId GroupDataStart(uint64_t group) const {
    return GroupStart(group) + params_.group_header_blocks;
  }

  // Ensures the directory has capacity for `slot`; allocates dir data pages
  // via AllocatePage as needed. Returns the dir data block of the slot.
  FsResult<BlockId> EnsureDirSlotBlock(Inode& dir_inode, uint64_t slot, MetaIo* io);

  // Allocates a fresh inode in a group chosen by PickGroup, charging the
  // inode bitmap + table writes. Returns null on inode exhaustion.
  Inode* AllocateInode(const Inode& parent, FileType type, MetaIo* io);

  FsLayoutParams params_;
  VirtualClock* clock_;
  BlockAllocator alloc_;
  // Directory contents live inside their Inode (Inode::dir); there is no
  // separate directory table to probe.
  InodeTable inodes_;
  std::vector<uint64_t> group_inode_counts_;
  std::vector<uint64_t> group_local_inodes_;  // next inode-table slot per group
  InodeId next_ino_ = kRootInode;
  uint64_t next_dir_group_ = 0;
  uint64_t reserved_blocks_ = 0;  // mkfs-reserved (headers, journal) for fsck accounting
  std::unique_ptr<Journal> journal_;
  bool read_only_ = false;         // entered on meta failure when the policy says so
  uint64_t meta_io_failures_ = 0;  // permanent metadata/log I/O failures observed

 private:
  void InitGroups();
};

inline FsResult<InodeId> FileSystem::Lookup(InodeId parent, std::string_view name, MetaIo* io) {
  Inode* parent_inode = inodes_.Find(parent);
  if (parent_inode == nullptr) {
    return FsResult<InodeId>::Error(FsStatus::kNotFound);
  }
  if (parent_inode->type != FileType::kDirectory) {
    return FsResult<InodeId>::Error(FsStatus::kNotDir);
  }
  const Directory* dir = parent_inode->dir.get();
  const std::optional<Directory::Entry> entry = dir->Find(name);
  if (!entry.has_value()) {
    ChargeDirLookup(*parent_inode, *dir, name, std::nullopt, io);
    return FsResult<InodeId>::Error(FsStatus::kNotFound);
  }
  ChargeDirLookup(*parent_inode, *dir, name, entry->slot, io);
  return FsResult<InodeId>::Ok(entry->ino);
}

inline FsResult<FileAttr> FileSystem::Stat(InodeId ino, MetaIo* io) {
  const Inode* inode = inodes_.Find(ino);
  if (inode == nullptr) {
    return FsResult<FileAttr>::Error(FsStatus::kNotFound);
  }
  io->AddMetaRead(inode->itable_block);
  FileAttr attr;
  attr.ino = inode->ino;
  attr.type = inode->type;
  attr.size = inode->size;
  attr.allocated_blocks = inode->allocated_blocks;
  attr.link_count = inode->link_count;
  attr.mtime = inode->mtime;
  attr.ctime = inode->ctime;
  return FsResult<FileAttr>::Ok(attr);
}

}  // namespace fsbench

#endif  // SRC_SIM_FILESYSTEM_H_
