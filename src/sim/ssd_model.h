// Multi-channel NVMe-class flash device model (DAOS/SPDK lineage).
//
// Where the rotational DiskModel is dominated by mechanical positioning, an
// SSD's service time is flat per page — the win comes from parallelism:
// the controller drives `channels` independent flash channels, so requests
// landing on distinct channels overlap in time. The device reports that
// topology through DeviceModel::channels()/ChannelOf(), and the
// IoScheduler's kMultiQueue mode keeps one busy-until timeline per channel,
// which is what makes aggregate throughput RISE with queue depth until the
// channels saturate (the HDD's single timeline makes it collapse instead).
//
// Timing of one request (no RNG anywhere — the model is a pure function of
// the request sequence):
//   command_overhead                    controller + protocol
//   + read_latency | program_latency    NAND media time (flat)
//   + ceil(pages / channels) * page transfer at channel_xfer_rate
//   + foreground GC stalls (writes only, see below)
// Logical pages stripe round-robin across channels (page i -> channel
// i % channels), so a large sequential request spreads over every channel
// and its transfer cost is the per-channel share — sequential and random
// throughput differ only by queue-depth effects, as on real flash.
//
// Writes go through a page-mapping FTL: each logical page append-writes
// into the channel's active erase block and invalidates its previous
// physical copy. When a channel's free-block pool drops to gc_low_blocks,
// garbage collection picks the sealed block with the fewest valid pages
// (greedy victim), relocates those pages (read + program each) and erases
// the block — all charged to the triggering host write. That stall is write
// amplification made visible; DiskStats::{gc_page_moves, gc_erases,
// total_gc_time} record it.
//
// Fault behavior (FaultPlan verdicts, injected extents, remapping, death
// latch) comes from the DeviceModel base unchanged: the redundancy layer's
// scrub/rebuild and the block layer's retry/remap policy work against an
// SSD exactly as against a disk. A failed attempt charges controller +
// media + transfer + error_recovery_time but does not mutate the FTL (the
// program never completed).
#ifndef SRC_SIM_SSD_MODEL_H_
#define SRC_SIM_SSD_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/device_model.h"
#include "src/util/units.h"

namespace fsbench {

// Parameters of an 8-channel datacenter-class NVMe drive (read ~70 us,
// program ~220 us, 1 MiB erase blocks, ~500 MB/s per channel).
struct SsdParams {
  Bytes capacity = 250 * kGiB;  // host-visible logical capacity
  uint32_t sector_bytes = 512;
  // Independent flash channels; requests to distinct channels overlap under
  // the multi-queue scheduler.
  uint32_t channels = 8;
  // Flash page: the FTL mapping unit and the media program/read unit.
  Bytes page_bytes = 4 * kKiB;
  uint32_t pages_per_block = 256;  // erase block = 1 MiB at 4 KiB pages
  // Physical spare space per channel beyond its logical share; what GC
  // breathes with. 0.07 ~= consumer drives' 7%.
  double overprovision = 0.07;
  Nanos read_latency = 70 * kMicrosecond;     // NAND tR + ECC
  Nanos program_latency = 220 * kMicrosecond; // NAND tProg
  Nanos erase_latency = 2 * kMillisecond;     // block erase
  Nanos command_overhead = 5 * kMicrosecond;  // controller + NVMe protocol
  uint64_t channel_xfer_rate = 500 * 1000 * 1000;  // bytes/second per channel
  // GC trigger: reclaim when a channel's free-block pool is at or below
  // this many blocks.
  uint32_t gc_low_blocks = 2;
  // Error-recovery charge per failed attempt (read-retry voltage sweeps,
  // soft-decode). Same role as DiskParams::error_recovery_time.
  Nanos error_recovery_time = 0;
};

class SsdModel : public DeviceModel {
 public:
  explicit SsdModel(const SsdParams& params);

  DeviceKind kind() const override { return DeviceKind::kSsd; }

  AccessResult AccessEx(const IoRequest& req, Nanos now) override;

  uint32_t channels() const override { return params_.channels; }
  uint32_t ChannelOf(uint64_t lba) const override {
    return static_cast<uint32_t>((lba / sectors_per_page_) % params_.channels);
  }

  const SsdParams& params() const { return params_; }
  // Time to move one page over a channel (exposed for tests).
  Nanos page_transfer_time() const { return page_transfer_time_; }
  uint64_t sectors_per_page() const { return sectors_per_page_; }
  // Erased blocks currently available on `channel` (exposed for tests).
  size_t FreeBlocks(uint32_t channel) const { return chans_[channel].free.size(); }

 private:
  static constexpr uint64_t kNoBlock = ~0ULL;
  static constexpr uint64_t kInvalidLpn = ~0ULL;

  enum class BlockState : uint8_t { kFree, kActive, kSealed };

  struct Block {
    uint32_t valid = 0;    // live pages (owner slots != kInvalidLpn)
    uint32_t written = 0;  // next append slot
    BlockState state = BlockState::kFree;
    // Logical owner per physical page slot; allocated lazily on first use so
    // untouched capacity costs no memory. kInvalidLpn marks a dead page.
    std::vector<uint64_t> owner;
  };

  struct Channel {
    uint64_t host_active = kNoBlock;  // append target for host writes
    uint64_t gc_active = kNoBlock;    // append target for GC relocation
    // Erased blocks, highest id first so pop_back hands out the lowest id
    // (deterministic allocation order).
    std::vector<uint64_t> free;
  };

  // Appends one page into the channel's host or GC stream, running GC first
  // when the host stream needs a new block and the pool is low. Returns the
  // physical page number; GC time is added to *gc_cost.
  uint64_t AllocPage(uint32_t channel, bool for_gc, Nanos* gc_cost);
  uint64_t TakeFreeBlock(uint32_t channel);
  void CollectGarbage(uint32_t channel, Nanos* gc_cost);
  uint64_t PickVictim(uint32_t channel) const;
  // Marks the old physical copy of a page dead.
  void InvalidatePpn(uint64_t ppn);
  // Maps one logical page write through the FTL; returns GC stall time.
  Nanos WritePage(uint64_t lpn);

  SsdParams params_;
  uint64_t sectors_per_page_;
  uint64_t blocks_per_channel_;
  Nanos page_transfer_time_;

  std::vector<Block> blocks_;   // global block id = channel * blocks_per_channel_ + i
  std::vector<Channel> chans_;
  // Logical page -> physical page. Lookup/insert/erase only (never
  // iterated), so hash order cannot leak into results.
  std::unordered_map<uint64_t, uint64_t> page_map_;
};

}  // namespace fsbench

#endif  // SRC_SIM_SSD_MODEL_H_
