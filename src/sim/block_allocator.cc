#include "src/sim/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace fsbench {

BlockAllocator::BlockAllocator(uint64_t total_blocks, uint64_t group_blocks)
    : total_blocks_(total_blocks), group_blocks_(group_blocks) {
  assert(total_blocks_ > 0);
  assert(group_blocks_ > 0);
  bitmap_.assign((total_blocks_ + 63) / 64, 0);
  const uint64_t groups = (total_blocks_ + group_blocks_ - 1) / group_blocks_;
  group_free_.assign(groups, group_blocks_);
  // The trailing group may be short.
  const uint64_t tail = total_blocks_ % group_blocks_;
  if (tail != 0) {
    group_free_.back() = tail;
  }
}

bool BlockAllocator::TestBit(BlockId block) const {
  return (bitmap_[block / 64] >> (block % 64)) & 1;
}

void BlockAllocator::SetBit(BlockId block) {
  assert(!TestBit(block));
  bitmap_[block / 64] |= 1ULL << (block % 64);
  --group_free_[GroupOf(block)];
  ++used_;
}

void BlockAllocator::ClearBit(BlockId block) {
  assert(TestBit(block));
  bitmap_[block / 64] &= ~(1ULL << (block % 64));
  ++group_free_[GroupOf(block)];
  --used_;
}

BlockId BlockAllocator::FindFree(BlockId from, BlockId to) const {
  to = std::min<BlockId>(to, total_blocks_);
  for (BlockId b = from; b < to;) {
    const uint64_t word = bitmap_[b / 64];
    if (word == ~0ULL) {
      // Skip the rest of a fully allocated word.
      b = (b / 64 + 1) * 64;
      continue;
    }
    if (!((word >> (b % 64)) & 1)) {
      return b;
    }
    ++b;
  }
  return kInvalidBlock;
}

Extent BlockAllocator::FindRun(BlockId from, BlockId to, uint64_t min_count,
                               uint64_t max_count) const {
  to = std::min<BlockId>(to, total_blocks_);
  BlockId b = from;
  while (b < to) {
    const BlockId start = FindFree(b, to);
    if (start == kInvalidBlock) {
      break;
    }
    BlockId end = start;
    while (end < to && end - start < max_count && !TestBit(end)) {
      ++end;
    }
    if (end - start >= min_count) {
      return Extent{start, end - start};
    }
    b = end + 1;
  }
  return Extent{kInvalidBlock, 0};
}

std::optional<BlockId> BlockAllocator::AllocateBlock(BlockId goal) {
  if (used_ == total_blocks_) {
    return std::nullopt;
  }
  goal = std::min<BlockId>(goal, total_blocks_ - 1);
  if (!TestBit(goal)) {
    SetBit(goal);
    ++stats_.allocations;
    ++stats_.goal_hits;
    return goal;
  }
  // Forward scan within the goal group, then wrap within the group.
  const uint64_t group = GroupOf(goal);
  const BlockId group_start = group * group_blocks_;
  const BlockId group_end = std::min<BlockId>(group_start + group_blocks_, total_blocks_);
  if (group_free_[group] > 0) {
    BlockId b = FindFree(goal + 1, group_end);
    if (b == kInvalidBlock) {
      b = FindFree(group_start, goal);
    }
    if (b != kInvalidBlock) {
      SetBit(b);
      ++stats_.allocations;
      return b;
    }
  }
  // Spill to the nearest non-full group (alternating out from the goal).
  ++stats_.group_spills;
  const uint64_t groups = group_free_.size();
  for (uint64_t d = 1; d < groups; ++d) {
    for (const int64_t dir : {1, -1}) {
      const int64_t g = static_cast<int64_t>(group) + dir * static_cast<int64_t>(d);
      if (g < 0 || g >= static_cast<int64_t>(groups) || group_free_[g] == 0) {
        continue;
      }
      const BlockId s = static_cast<BlockId>(g) * group_blocks_;
      const BlockId e = std::min<BlockId>(s + group_blocks_, total_blocks_);
      const BlockId b = FindFree(s, e);
      assert(b != kInvalidBlock);
      SetBit(b);
      ++stats_.allocations;
      return b;
    }
  }
  return std::nullopt;
}

std::optional<Extent> BlockAllocator::AllocateExtent(BlockId goal, uint64_t min_count,
                                                     uint64_t max_count) {
  assert(min_count > 0 && min_count <= max_count);
  if (free_blocks() < min_count) {
    return std::nullopt;
  }
  goal = std::min<BlockId>(goal, total_blocks_ - 1);
  const uint64_t group = GroupOf(goal);
  const BlockId group_start = group * group_blocks_;
  const BlockId group_end = std::min<BlockId>(group_start + group_blocks_, total_blocks_);

  Extent run = FindRun(goal, group_end, min_count, max_count);
  if (run.count == 0) {
    run = FindRun(group_start, group_end, min_count, max_count);
  }
  if (run.count == 0) {
    // Alternating group scan outward from the goal group.
    ++stats_.group_spills;
    const uint64_t groups = group_free_.size();
    for (uint64_t d = 1; d < groups && run.count == 0; ++d) {
      for (const int64_t dir : {1, -1}) {
        const int64_t g = static_cast<int64_t>(group) + dir * static_cast<int64_t>(d);
        if (g < 0 || g >= static_cast<int64_t>(groups) || group_free_[g] < min_count) {
          continue;
        }
        const BlockId s = static_cast<BlockId>(g) * group_blocks_;
        const BlockId e = std::min<BlockId>(s + group_blocks_, total_blocks_);
        run = FindRun(s, e, min_count, max_count);
        if (run.count != 0) {
          break;
        }
      }
    }
  }
  if (run.count == 0) {
    return std::nullopt;
  }
  for (BlockId b = run.start; b < run.start + run.count; ++b) {
    SetBit(b);
  }
  stats_.allocations += run.count;
  if (run.start == goal) {
    ++stats_.goal_hits;
  }
  return run;
}

std::vector<Extent> BlockAllocator::AllocateBlocks(BlockId goal, uint64_t count) {
  std::vector<Extent> extents;
  if (free_blocks() < count) {
    return extents;
  }
  uint64_t remaining = count;
  BlockId cursor = goal;
  while (remaining > 0) {
    std::optional<Extent> run = AllocateExtent(cursor, 1, remaining);
    if (!run.has_value()) {
      // Should not happen given the up-front free-space check.
      for (const Extent& e : extents) {
        Free(e);
      }
      return {};
    }
    extents.push_back(*run);
    remaining -= run->count;
    cursor = run->start + run->count;
  }
  return extents;
}

void BlockAllocator::ReserveRange(const Extent& extent) {
  for (BlockId b = extent.start; b < extent.start + extent.count; ++b) {
    SetBit(b);
  }
}

void BlockAllocator::Free(const Extent& extent) {
  for (BlockId b = extent.start; b < extent.start + extent.count; ++b) {
    ClearBit(b);
  }
  stats_.frees += extent.count;
}

bool BlockAllocator::IsAllocated(BlockId block) const { return TestBit(block); }

bool BlockAllocator::CheckInvariants() const {
  uint64_t used = 0;
  std::vector<uint64_t> group_used(group_free_.size(), 0);
  for (BlockId b = 0; b < total_blocks_; ++b) {
    if (TestBit(b)) {
      ++used;
      ++group_used[GroupOf(b)];
    }
  }
  if (used != used_) {
    return false;
  }
  for (size_t g = 0; g < group_free_.size(); ++g) {
    const uint64_t size = g + 1 == group_free_.size() && total_blocks_ % group_blocks_ != 0
                              ? total_blocks_ % group_blocks_
                              : group_blocks_;
    if (group_used[g] + group_free_[g] != size) {
      return false;
    }
  }
  return true;
}

}  // namespace fsbench
