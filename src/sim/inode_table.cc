#include "src/sim/inode_table.h"

#include <utility>

namespace fsbench {

Inode* InodeTable::Insert(Inode&& inode) {
  assert(inode.ino != kInvalidInode);
  // Keep the load factor at or under 0.7 so probe runs stay short.
  if ((size_ + 1) * 10 > index_.size() * 7) {
    Grow();
  }
  const size_t slot = Probe(inode.ino);
  assert(index_[slot].ino == kInvalidInode);

  uint32_t pos;
  if (!free_.empty()) {
    pos = free_.back();
    free_.pop_back();
    slab_[pos] = std::move(inode);
  } else {
    pos = static_cast<uint32_t>(slab_.size());
    slab_.push_back(std::move(inode));
  }
  index_[slot] = IndexSlot{slab_[pos].ino, pos};
  ++size_;
  return &slab_[pos];
}

void InodeTable::Erase(InodeId ino) {
  size_t hole = Probe(ino);
  if (index_[hole].ino != ino) {
    return;
  }
  slab_[index_[hole].pos] = Inode{};  // release the inode's own storage now
  free_.push_back(index_[hole].pos);
  --size_;

  // Backward-shift deletion: walk the probe run after the hole, moving back
  // any entry probing ran past it, so no tombstones accumulate.
  size_t slot = hole;
  for (;;) {
    slot = (slot + 1) & mask_;
    if (index_[slot].ino == kInvalidInode) {
      break;
    }
    const size_t home = Mix(index_[slot].ino) & mask_;
    const size_t hole_distance = (slot - hole) & mask_;
    const size_t home_distance = (slot - home) & mask_;
    if (home_distance < hole_distance) {
      continue;  // its home lies strictly after the hole; still reachable
    }
    index_[hole] = index_[slot];
    hole = slot;
  }
  index_[hole] = IndexSlot{};
}

void InodeTable::Grow() {
  std::vector<IndexSlot> old = std::move(index_);
  index_.assign(old.size() * 2, IndexSlot{});
  mask_ = index_.size() - 1;
  for (const IndexSlot& slot : old) {
    if (slot.ino != kInvalidInode) {
      index_[Probe(slot.ino)] = slot;
    }
  }
}

}  // namespace fsbench
