// Crash injection and mount-time recovery.
//
// A crash at virtual time T is resolved in three steps:
//   1. The durable frontier: the scheduler assigns completion times to every
//      write the OS had issued (the platter keeps spinning through what was
//      already queued), and the ShadowDisk tells which blocks those writes
//      made durable by T. Everything dirty in the page cache is lost.
//   2. The recovery point: walking the transaction log's commit history in
//      order, a committed transaction survives iff its commit record was
//      durable (checkpointed transactions: iff their home blocks were);
//      the walk stops at the first gap — JBD replay stops at the first bad
//      record — and later commits are the discarded torn tail. The highest
//      surviving operation watermark is the recovered state. A file system
//      without a journal falls back to its last stable point (cache clean,
//      device idle), which is exactly why ext2 loses more.
//   3. The recovery cost: journal replay (sequential log reads + home
//      writes) or, without a journal, a full fsck metadata scan — simulated
//      against a fresh disk to yield mount-time latency and I/O counts, the
//      new benchmark dimensions.
//
// The recovered *state* is reconstructed by deterministic re-execution of
// the first `recovery_watermark` operations on a fresh machine (the
// experiment harness's replay check) — the simulator's bookkeeping
// equivalent of reading the replayed image back from disk.
#ifndef SRC_SIM_RECOVERY_H_
#define SRC_SIM_RECOVERY_H_

#include <cstdint>

#include "src/sim/machine.h"

namespace fsbench {

struct CrashReport {
  Nanos crash_time = 0;
  uint64_t ops_issued = 0;          // ops dispatched before the crash
  uint64_t recovery_watermark = 0;  // ops whose effects survive recovery
  bool used_journal = false;

  // Journal replay accounting (used_journal == true).
  uint64_t durable_txns = 0;   // committed transactions that survive
  uint64_t replayed_txns = 0;  // survivors replayed from the log
  uint64_t torn_txns = 0;      // discarded: commit record not durable / past a gap
  uint64_t replay_log_blocks = 0;   // sequential log reads during replay
  uint64_t replay_home_blocks = 0;  // home-location writes during replay

  // fsck accounting (used_journal == false).
  uint64_t fsck_blocks = 0;  // metadata blocks the offline scan reads

  Nanos recovery_latency = 0;  // simulated mount-time recovery duration

  // What the crash destroyed.
  uint64_t dirty_pages_lost = 0;  // page-cache dirty pages at the crash
  uint64_t volatile_blocks = 0;   // blocks whose last write was in flight

  // Filled by the harness's replay check (experiment.cc): the recovered
  // state passed CheckConsistency.
  bool recovered_consistent = false;
};

// Pulls the plug on `machine` at `crash_time` and simulates mount-time
// recovery. Requires Machine::EnableCrashTracking() to have been on for the
// whole run. `ops_issued` is the number of operations dispatched before the
// crash; `stable_watermark` the engine's last all-durable op boundary (the
// no-journal recovery point). Mutates the machine's scheduler (drains it) —
// call only once the run is over.
CrashReport SimulateCrashRecovery(Machine& machine, Nanos crash_time, uint64_t ops_issued,
                                  uint64_t stable_watermark);

}  // namespace fsbench

#endif  // SRC_SIM_RECOVERY_H_
