// Deterministic pseudo-random number generation for the simulator and the
// workload generators.
//
// Benchmark reproducibility is a central theme of the paper: every stochastic
// decision in fsbench flows through an explicitly seeded Rng so a run is a
// pure function of its configuration. The generator is xoshiro256** seeded
// via splitmix64 (Blackman & Vigna), which is small, fast, and has no
// observable correlations at the scales we use.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace fsbench {

// splitmix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** generator. Copyable so workloads can fork substreams.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be nonzero. Uses Lemire rejection so
  // the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Zipf-distributed rank in [0, n) with exponent theta in (0, 1].
  // Uses the rejection method of Gray et al.; O(1) per sample after O(1)
  // setup per (n, theta) pair cached internally.
  uint64_t NextZipf(uint64_t n, double theta);

  // Derives an independent generator; the i-th fork of a given Rng is stable
  // across runs.
  Rng Fork();

 private:
  std::array<uint64_t, 4> s_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  // Cached Zipf setup for the last (n, theta) pair.
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_zetan_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace fsbench

#endif  // SRC_UTIL_RNG_H_
