#include "src/util/ascii.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace fsbench {

namespace {
const char kSeparatorSentinel[] = "\x01";
}  // namespace

void AsciiTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void AsciiTable::AddSeparator() { rows_.push_back({kSeparatorSentinel}); }

std::string AsciiTable::Render(int indent) const {
  const size_t columns = header_.size();
  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < columns; ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      continue;
    }
    for (size_t c = 0; c < row.size() && c < columns; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const std::string pad(static_cast<size_t>(indent), ' ');
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << pad;
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < columns) {
        out << "  ";
      }
    }
    out << '\n';
  };
  auto emit_separator = [&] {
    out << pad;
    for (size_t c = 0; c < columns; ++c) {
      out << std::string(widths[c], '-');
      if (c + 1 < columns) {
        out << "  ";
      }
    }
    out << '\n';
  };

  emit_row(header_);
  emit_separator();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      emit_separator();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

std::string AsciiBar(double value, double max_value, int width) {
  if (value <= 0.0 || max_value <= 0.0 || width <= 0) {
    return std::string();
  }
  int chars = static_cast<int>(value / max_value * width + 0.5);
  chars = std::clamp(chars, 1, width);
  return std::string(static_cast<size_t>(chars), '#');
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr uint64_t kKi = 1024;
  constexpr uint64_t kMi = kKi * 1024;
  constexpr uint64_t kGi = kMi * 1024;
  char buf[64];
  if (bytes >= kGi) {
    const double v = static_cast<double>(bytes) / static_cast<double>(kGi);
    std::snprintf(buf, sizeof(buf), v == static_cast<uint64_t>(v) ? "%.0fGiB" : "%.1fGiB", v);
  } else if (bytes >= kMi) {
    const double v = static_cast<double>(bytes) / static_cast<double>(kMi);
    std::snprintf(buf, sizeof(buf), v == static_cast<uint64_t>(v) ? "%.0fMiB" : "%.1fMiB", v);
  } else if (bytes >= kKi) {
    const double v = static_cast<double>(bytes) / static_cast<double>(kKi);
    std::snprintf(buf, sizeof(buf), v == static_cast<uint64_t>(v) ? "%.0fKiB" : "%.1fKiB", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatNanos(int64_t nanos) {
  char buf[64];
  const double ns = static_cast<double>(nanos);
  if (nanos >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (nanos >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (nanos >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  }
  return buf;
}

}  // namespace fsbench
