// Minimal ASCII rendering primitives shared by the report module and the
// bench binaries: aligned tables and horizontal bar strips.
#ifndef SRC_UTIL_ASCII_H_
#define SRC_UTIL_ASCII_H_

#include <string>
#include <vector>

namespace fsbench {

// Column-aligned text table. Cells are free-form strings; numeric formatting
// is the caller's business. Rendering pads every column to its widest cell.
class AsciiTable {
 public:
  // Sets the header row. Determines the column count; later rows may be
  // shorter (missing cells render empty) but not longer.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row.
  void AddRow(std::vector<std::string> row);

  // Appends a horizontal separator line.
  void AddSeparator();

  // Renders with `indent` leading spaces on every line.
  std::string Render(int indent = 0) const;

 private:
  std::vector<std::string> header_;
  // A row with the single sentinel cell "\x01" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

// Renders `value` as a bar of '#' characters scaled so `max_value` maps to
// `width` characters. Values <= 0 render empty; a nonzero value renders at
// least one character so small populations stay visible.
std::string AsciiBar(double value, double max_value, int width);

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats a byte count using binary units (e.g. "64MiB", "1.5GiB").
std::string FormatBytes(uint64_t bytes);

// Formats a nanosecond duration with an adaptive unit (ns/us/ms/s).
std::string FormatNanos(int64_t nanos);

}  // namespace fsbench

#endif  // SRC_UTIL_ASCII_H_
