#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace fsbench {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // xoshiro's all-zero state is invalid; splitmix cannot produce four zero
  // outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound != 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) {
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta <= 1.0);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zetan = 0.0;
    // Exact zeta for small n; integral approximation for large n keeps setup
    // O(1) while staying within ~1% of the exact distribution.
    if (n <= 10000) {
      for (uint64_t i = 1; i <= n; ++i) {
        zetan += 1.0 / std::pow(static_cast<double>(i), theta);
      }
    } else {
      double zeta_head = 0.0;
      for (uint64_t i = 1; i <= 10000; ++i) {
        zeta_head += 1.0 / std::pow(static_cast<double>(i), theta);
      }
      const double tail = (std::pow(static_cast<double>(n), 1.0 - theta) -
                           std::pow(10000.0, 1.0 - theta)) /
                          (1.0 - theta);
      zetan = zeta_head + tail;
    }
    zipf_zetan_ = zetan;
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zetan);
  }
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) {
    return 1;
  }
  const double rank = static_cast<double>(zipf_n_) *
                      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_);
  auto result = static_cast<uint64_t>(rank);
  if (result >= zipf_n_) {
    result = zipf_n_ - 1;
  }
  return result;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace fsbench
