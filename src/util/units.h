// Common unit types and helpers for virtual time and storage sizes.
//
// All simulated time in fsbench is int64_t nanoseconds of *virtual* time;
// all sizes are uint64_t bytes. These aliases and constants keep call sites
// readable and conversions explicit.
#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

#include <cstdint>

namespace fsbench {

// Virtual time, nanoseconds. Signed so durations and differences are natural.
using Nanos = int64_t;

// Storage size / offset, bytes.
using Bytes = uint64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// Converts a nanosecond duration to (fractional) seconds.
constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / kSecond; }

// Converts (fractional) seconds to nanoseconds, truncating toward zero.
constexpr Nanos FromSeconds(double seconds) {
  return static_cast<Nanos>(seconds * static_cast<double>(kSecond));
}

// Converts (fractional) milliseconds to nanoseconds, truncating toward zero.
constexpr Nanos FromMillis(double millis) {
  return static_cast<Nanos>(millis * static_cast<double>(kMillisecond));
}

// Integer ceiling division; used pervasively for page/block rounding.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace fsbench

#endif  // SRC_UTIL_UNITS_H_
