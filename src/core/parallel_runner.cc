#include "src/core/parallel_runner.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace fsbench {

namespace {

thread_local bool t_in_parallel_cell = false;

// One worker's task store. Tasks are distributed before any worker starts
// and none are ever produced afterwards, so the deque is bounded by the
// initial share and a drained pool means the run is over — no condition
// variable, no sleep, no ambient time anywhere near result-affecting code.
struct WorkerDeque {
  std::mutex mu;
  std::deque<size_t> tasks;  // owner pops the front; thieves take the back
};

class CellPool {
 public:
  CellPool(size_t count, int workers) : deques_(static_cast<size_t>(workers)) {
    // Round-robin seeding spreads expensive neighbouring cells (sweep rows
    // tend to get monotonically heavier) across workers up front, so
    // stealing is the trim, not the plan.
    for (size_t i = 0; i < count; ++i) {
      deques_[i % deques_.size()].tasks.push_back(i);
    }
  }

  // Pops the next task for worker `w`: front of its own deque, else the
  // back of the fullest other deque (classic work stealing — the thief
  // takes from the cold end). Returns false when every deque is empty,
  // which — tasks being fixed up front — is the permanent end state.
  bool Next(size_t w, size_t* index) {
    {
      WorkerDeque& own = deques_[w];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.tasks.empty()) {
        *index = own.tasks.front();
        own.tasks.pop_front();
        return true;
      }
    }
    // Victim scan: deterministic order (w+1, w+2, ...) keeps the scan
    // simple; which thief wins a race only moves work between host
    // threads, never between result slots.
    for (size_t step = 1; step < deques_.size(); ++step) {
      WorkerDeque& victim = deques_[(w + step) % deques_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        *index = victim.tasks.back();
        victim.tasks.pop_back();
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<WorkerDeque> deques_;
};

void RunInline(size_t count, const std::function<void(size_t)>& fn,
               std::vector<std::string>* errors) {
  for (size_t i = 0; i < count; ++i) {
    try {
      fn(i);
    } catch (const std::exception& e) {
      (*errors)[i] = e.what();
    } catch (...) {
      (*errors)[i] = "unknown exception";
    }
  }
}

}  // namespace

int ResolveJobs(int jobs) {
  if (jobs >= 1) {
    return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool InParallelCell() { return t_in_parallel_cell; }

std::vector<std::string> RunCells(size_t count, int jobs,
                                  const std::function<void(size_t)>& fn) {
  std::vector<std::string> errors(count);
  const int resolved = ResolveJobs(jobs);
  if (count <= 1 || resolved == 1 || t_in_parallel_cell) {
    RunInline(count, fn, &errors);
    return errors;
  }

  const size_t workers = std::min(static_cast<size_t>(resolved), count);
  CellPool pool(count, static_cast<int>(workers));
  auto worker_loop = [&pool, &fn, &errors](size_t w) {
    t_in_parallel_cell = true;
    size_t index = 0;
    while (pool.Next(w, &index)) {
      try {
        fn(index);
      } catch (const std::exception& e) {
        errors[index] = e.what();
      } catch (...) {
        errors[index] = "unknown exception";
      }
    }
    t_in_parallel_cell = false;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);  // the calling thread is worker 0
  for (std::thread& t : threads) {
    t.join();
  }
  return errors;
}

}  // namespace fsbench
