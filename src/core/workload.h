// Workload abstraction: a generator of single file-system operations
// against a simulated Machine.
//
// The experiment runner owns timing: it snapshots the virtual clock around
// each Step() call, so a workload only performs the operation and says what
// kind it was. Setup() and Prewarm() run before measurement (Setup uses the
// untimed VFS helpers where appropriate — the moral equivalent of
// Filebench's preallocation phase).
#ifndef SRC_CORE_WORKLOAD_H_
#define SRC_CORE_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/metrics.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace fsbench {

struct WorkloadContext {
  Machine* machine = nullptr;
  Vfs* vfs = nullptr;
  Rng rng{0};
  // Simulated thread identity: index 0 in single-threaded runs. `cursor` is
  // the clock this thread's operations charge time against; the engine binds
  // it into the machine before every Step, so a workload that wants to
  // observe its own virtual time must read the cursor, not the machine's
  // base clock.
  int thread = 0;
  VirtualClock* cursor = nullptr;

  // Binding the base clock as the default cursor (single-threaded runs;
  // the MT engine re-points `cursor` per thread).
  explicit WorkloadContext(Machine* m, uint64_t seed, int thread_index = 0)
      : machine(m), vfs(&m->vfs()), rng(seed), thread(thread_index),
        cursor(&m->clock()) {}  // detlint: base-clock
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Untimed preparation (create the working set).
  virtual FsStatus Setup(WorkloadContext& ctx) = 0;

  // Optional untimed cache prewarm, for steady-state experiments.
  virtual FsStatus Prewarm(WorkloadContext& ctx) {
    (void)ctx;
    return FsStatus::kOk;
  }

  // Performs exactly one operation; returns its type. The caller measures
  // the virtual-time delta around this call.
  virtual FsResult<OpType> Step(WorkloadContext& ctx) = 0;
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

// Per-thread workload construction for the multi-thread engine: called once
// per simulated thread with the thread index, so variants can give each
// thread a disjoint slice of the namespace (Filebench's nthreads model).
using ThreadedWorkloadFactory = std::function<std::unique_ptr<Workload>(int thread)>;

}  // namespace fsbench

#endif  // SRC_CORE_WORKLOAD_H_
