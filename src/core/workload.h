// Workload abstraction: a generator of single file-system operations
// against a simulated Machine.
//
// The experiment runner owns timing: it snapshots the virtual clock around
// each Step() call, so a workload only performs the operation and says what
// kind it was. Setup() and Prewarm() run before measurement (Setup uses the
// untimed VFS helpers where appropriate — the moral equivalent of
// Filebench's preallocation phase).
#ifndef SRC_CORE_WORKLOAD_H_
#define SRC_CORE_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/metrics.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace fsbench {

struct WorkloadContext {
  Machine* machine = nullptr;
  Vfs* vfs = nullptr;
  Rng rng{0};

  explicit WorkloadContext(Machine* m, uint64_t seed)
      : machine(m), vfs(&m->vfs()), rng(seed) {}
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Untimed preparation (create the working set).
  virtual FsStatus Setup(WorkloadContext& ctx) = 0;

  // Optional untimed cache prewarm, for steady-state experiments.
  virtual FsStatus Prewarm(WorkloadContext& ctx) {
    (void)ctx;
    return FsStatus::kOk;
  }

  // Performs exactly one operation; returns its type. The caller measures
  // the virtual-time delta around this call.
  virtual FsResult<OpType> Step(WorkloadContext& ctx) = 0;
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

}  // namespace fsbench

#endif  // SRC_CORE_WORKLOAD_H_
