#include "src/core/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fsbench {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::rel_stddev_pct() const {
  return mean() == 0.0 ? 0.0 : 100.0 * stddev() / std::abs(mean());
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> values) {
  Summary summary;
  if (values.empty()) {
    return summary;
  }
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  std::sort(values.begin(), values.end());
  summary.count = stats.count();
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.rel_stddev_pct = stats.rel_stddev_pct();
  summary.min = stats.min();
  summary.max = stats.max();
  summary.median = PercentileSorted(values, 0.5);
  summary.p25 = PercentileSorted(values, 0.25);
  summary.p75 = PercentileSorted(values, 0.75);
  if (summary.count >= 2) {
    const double se = summary.stddev / std::sqrt(static_cast<double>(summary.count));
    summary.ci95_half_width = TCritical(static_cast<double>(summary.count - 1)) * se;
  }
  return summary;
}

namespace {

// Lentz's continued fraction for the incomplete beta (Numerical Recipes
// betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) {
      break;
    }
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) + a * std::log(x) +
      b * std::log(1.0 - x);
  const double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  assert(df > 0.0);
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double TCritical(double df, double confidence) {
  assert(df > 0.0);
  assert(confidence > 0.0 && confidence < 1.0);
  const double target = 0.5 + confidence / 2.0;  // upper quantile
  double lo = 0.0;
  double hi = 1.0e3;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

WelchResult WelchTTest(const std::vector<double>& a, const std::vector<double>& b) {
  WelchResult result;
  if (a.size() < 2 || b.size() < 2) {
    return result;
  }
  RunningStats sa;
  RunningStats sb;
  for (double v : a) {
    sa.Add(v);
  }
  for (double v : b) {
    sb.Add(v);
  }
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  const double va = sa.variance() / na;
  const double vb = sb.variance() / nb;
  result.mean_diff = sa.mean() - sb.mean();
  const double se = std::sqrt(va + vb);
  if (se == 0.0) {
    result.df = na + nb - 2.0;
    result.p_value = result.mean_diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t = result.mean_diff / se;
  // Welch–Satterthwaite degrees of freedom.
  result.df = (va + vb) * (va + vb) /
              (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  result.p_value = 2.0 * (1.0 - StudentTCdf(std::abs(result.t), result.df));
  const double tcrit = TCritical(result.df);
  result.ci95_lo = result.mean_diff - tcrit * se;
  result.ci95_hi = result.mean_diff + tcrit * se;
  return result;
}

size_t RunsForRelativePrecision(const Summary& pilot, double target_rel) {
  if (pilot.count < 2 || pilot.mean == 0.0 || target_rel <= 0.0) {
    return 2;
  }
  // Half-width = t* . s / sqrt(n) <= target_rel * mean, using z ~= 1.96 as
  // the asymptotic critical value, then round up and clamp.
  const double s_over_mean = pilot.stddev / std::abs(pilot.mean);
  const double n = std::pow(1.96 * s_over_mean / target_rel, 2.0);
  return std::max<size_t>(2, static_cast<size_t>(std::ceil(n)));
}

}  // namespace fsbench
