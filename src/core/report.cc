#include "src/core/report.h"

#include <algorithm>
#include <sstream>

#include "src/core/modality.h"
#include "src/util/ascii.h"

namespace fsbench {

std::string RenderSweepTable(const std::vector<SweepRow>& rows) {
  AsciiTable table;
  table.SetHeader({"file size", "ops/s (mean)", "stddev", "rel stddev %", "95% CI half",
                   "hit ratio"});
  for (const SweepRow& row : rows) {
    table.AddRow({FormatBytes(row.file_size), FormatDouble(row.throughput.mean, 1),
                  FormatDouble(row.throughput.stddev, 1),
                  FormatDouble(row.throughput.rel_stddev_pct, 2),
                  FormatDouble(row.throughput.ci95_half_width, 1),
                  FormatDouble(row.cache_hit_ratio, 3)});
  }
  return table.Render();
}

std::string RenderHistogram(const LatencyHistogram& histogram, int bar_width) {
  std::ostringstream out;
  const int first = std::max(0, histogram.FirstBucket() - 1);
  const int last =
      histogram.LastBucket() < 0 ? 0 : std::min(LatencyHistogram::kBuckets - 1,
                                                histogram.LastBucket() + 1);
  double max_share = 0.0;
  for (int b = 0; b <= LatencyHistogram::kBuckets - 1; ++b) {
    max_share = std::max(max_share, histogram.SharePct(b));
  }
  out << "  bucket  latency>=   % ops\n";
  for (int b = first; b <= last; ++b) {
    const double share = histogram.SharePct(b);
    char line[64];
    std::snprintf(line, sizeof(line), "  %5d  %9s  %5.1f  ", b,
                  FormatNanos(LatencyHistogram::BucketLowerBound(b)).c_str(), share);
    out << line << AsciiBar(share, max_share, bar_width) << '\n';
  }
  const std::vector<Mode> modes = DetectModes(histogram);
  out << "  modes: " << modes.size();
  for (const Mode& mode : modes) {
    out << "  [peak 2^" << mode.peak_bucket << "ns ("
        << FormatNanos(LatencyHistogram::BucketLowerBound(mode.peak_bucket)) << "), "
        << FormatDouble(mode.mass, 1) << "% of ops]";
  }
  out << '\n';
  return out.str();
}

std::string RenderTimelines(const std::vector<std::string>& names,
                            const std::vector<std::vector<double>>& series, Nanos interval) {
  AsciiTable table;
  std::vector<std::string> header{"t (s)"};
  header.insert(header.end(), names.begin(), names.end());
  table.SetHeader(std::move(header));
  size_t longest = 0;
  for (const auto& s : series) {
    longest = std::max(longest, s.size());
  }
  for (size_t i = 0; i < longest; ++i) {
    std::vector<std::string> row{
        FormatDouble(ToSeconds(interval) * static_cast<double>(i + 1), 0)};
    for (const auto& s : series) {
      row.push_back(i < s.size() ? FormatDouble(s[i], 0) : "");
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

std::string RenderHistogramTimeline(const std::vector<LatencyHistogram>& slices, Nanos slice) {
  // Density grid: rows = time slices, columns = buckets 8..28 (covering
  // 256ns .. 268ms, the paper's interesting range).
  constexpr int kLo = 8;
  constexpr int kHi = 28;
  static const char kDensity[] = " .:-=+*#%@";
  std::ostringstream out;
  out << "  time(s) | latency buckets 2^" << kLo << "ns .. 2^" << kHi
      << "ns (each column one bucket; darker = more ops)\n";
  for (size_t i = 0; i < slices.size(); ++i) {
    char label[32];
    std::snprintf(label, sizeof(label), "  %6.0f  | ",
                  ToSeconds(slice) * static_cast<double>(i + 1));
    out << label;
    for (int b = kLo; b <= kHi; ++b) {
      const double share = slices[i].SharePct(b);
      const int level =
          std::min<int>(9, static_cast<int>(share / 100.0 * 9.99 * 2.0));  // saturate at 50%
      out << kDensity[level];
    }
    out << '\n';
  }
  return out.str();
}

std::string RenderTransition(const TransitionResult& transition, const std::string& param_unit,
                             double param_scale) {
  std::ostringstream out;
  if (!transition.found) {
    out << "  no transition found\n";
    return out.str();
  }
  out << "  transition bracket: [" << FormatDouble(transition.param_lo / param_scale, 2) << ", "
      << FormatDouble(transition.param_hi / param_scale, 2) << "] " << param_unit
      << "  (width " << FormatDouble(transition.width() / param_scale, 2) << " " << param_unit
      << ")\n";
  out << "  metric across the cliff: " << FormatDouble(transition.metric_lo, 1) << " -> "
      << FormatDouble(transition.metric_hi, 1) << "  (factor "
      << FormatDouble(transition.drop_factor, 1) << "x)\n";
  out << "  evaluations: " << transition.samples.size() << "\n";
  return out.str();
}

std::string RenderNanoSuite(const std::vector<NanoResult>& results) {
  AsciiTable table;
  table.SetHeader({"dimension", "nano-benchmark", "value", "unit", "rel stddev %", "note"});
  Dimension last = Dimension::kIo;
  bool first_row = true;
  for (const NanoResult& result : results) {
    if (!first_row && result.dimension != last) {
      table.AddSeparator();
    }
    first_row = false;
    last = result.dimension;
    table.AddRow({DimensionName(result.dimension), result.name, FormatDouble(result.value, 2),
                  result.unit, FormatDouble(result.across_runs.rel_stddev_pct, 1), result.note});
  }
  return table.Render();
}

std::string RenderComparison(const ComparisonReport& report) {
  std::ostringstream out;
  AsciiTable table;
  table.SetHeader({"system", "ops/s (mean)", "stddev", "95% CI"});
  auto ci = [](const Summary& s) {
    return "[" + FormatDouble(s.ci95_lo(), 1) + ", " + FormatDouble(s.ci95_hi(), 1) + "]";
  };
  table.AddRow({report.name_a, FormatDouble(report.a.mean, 1),
                FormatDouble(report.a.stddev, 1), ci(report.a)});
  table.AddRow({report.name_b, FormatDouble(report.b.mean, 1),
                FormatDouble(report.b.stddev, 1), ci(report.b)});
  out << table.Render();
  out << "  Welch t = " << FormatDouble(report.welch.t, 2)
      << ", df = " << FormatDouble(report.welch.df, 1)
      << ", p = " << FormatDouble(report.welch.p_value, 4) << "\n";
  out << "  verdict: " << report.verdict << "\n";
  for (const std::string& caveat : report.caveats) {
    out << "  caveat: " << caveat << "\n";
  }
  return out.str();
}

std::string CsvTimelines(const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series, Nanos interval) {
  std::ostringstream out;
  out << "t_seconds";
  for (const std::string& name : names) {
    out << ',' << name;
  }
  out << '\n';
  size_t longest = 0;
  for (const auto& s : series) {
    longest = std::max(longest, s.size());
  }
  for (size_t i = 0; i < longest; ++i) {
    out << FormatDouble(ToSeconds(interval) * static_cast<double>(i + 1), 0);
    for (const auto& s : series) {
      out << ',';
      if (i < s.size()) {
        out << FormatDouble(s[i], 2);
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string CsvHistogram(const LatencyHistogram& histogram) {
  std::ostringstream out;
  out << "bucket,lower_bound_ns,count,share_pct\n";
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    out << b << ',' << LatencyHistogram::BucketLowerBound(b) << ',' << histogram.count(b) << ','
        << FormatDouble(histogram.SharePct(b), 4) << '\n';
  }
  return out.str();
}

std::string CsvSweep(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << "file_size_mib,ops_per_sec,stddev,rel_stddev_pct,ci95_half,hit_ratio\n";
  for (const SweepRow& row : rows) {
    out << row.file_size / kMiB << ',' << FormatDouble(row.throughput.mean, 2) << ','
        << FormatDouble(row.throughput.stddev, 2) << ','
        << FormatDouble(row.throughput.rel_stddev_pct, 2) << ','
        << FormatDouble(row.throughput.ci95_half_width, 2) << ','
        << FormatDouble(row.cache_hit_ratio, 4) << '\n';
  }
  return out.str();
}

}  // namespace fsbench
